/**
 * @file
 * Exact table-lookup pr() vs SPRT sampling on small Life sensors.
 *
 * Two workloads:
 *
 *  1. Per-conditional: blinker rule conditionals with sigma
 *     self-calibrated (using the exact backend) so the true
 *     probability sits next to the 0.5 test threshold. This is the
 *     SPRT's worst case — the sequential test drifts to its
 *     1000-sample cap and returns Inconclusive — and the exact
 *     path's headline: a single enumeration of the small sensor
 *     graph answers in closed form at flat cost. A decisive variant
 *     (low sigma birth rule) is reported alongside so the easy
 *     regime is visible too.
 *
 *  2. Full board steps: ExactBayesLife with exact routing on vs
 *     forced off (every rule conditional through the SPRT), at a
 *     sigma sweep, reporting cell updates per second.
 *
 * Emits BENCH_exact_pr.json for the bench-compare CI gate; the
 * "speedup/near_threshold" entry is the acceptance metric (exact
 * >= 10x the SPRT path on a supported graph).
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/core.hpp"
#include "life/board.hpp"
#include "life/noisy_sensor.hpp"
#include "life/variants.hpp"

using namespace uncertain;

namespace {

/** A deterministic board: a blinker plus pseudo-random fill. */
life::Board
makeBoard(std::size_t side)
{
    life::Board board(side, side);
    Rng rng(0x5eedULL + side);
    for (std::size_t y = 0; y < side; ++y)
        for (std::size_t x = 0; x < side; ++x)
            board.setAlive(x, y, rng.nextBool(0.4));
    board.setAlive(0, side / 2, true);
    board.setAlive(1, side / 2, true);
    board.setAlive(2, side / 2, true);
    return board;
}

/** The 3x3 blinker: row y = 1 alive. */
life::Board
blinker()
{
    life::Board board(3, 3);
    board.setAlive(0, 1, true);
    board.setAlive(1, 1, true);
    board.setAlive(2, 1, true);
    return board;
}

/**
 * The birth-rule conditional for cell (1, 0) of the blinker (three
 * live neighbors, five in-range sensors): approxEqual(count, 3, 0.5)
 * over five declared Bernoulli leaves (2^5 joint states).
 */
Uncertain<bool>
birthCondition(const life::Board& board, double sigma)
{
    life::NoisySensor sensor(sigma);
    Uncertain<double> count(0.0);
    for (auto [nx, ny] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {0, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}) {
        count = count + sensor.senseNeighborExact(board, nx, ny);
    }
    return approxEqual(count, 3.0, 0.5);
}

/**
 * The survival-rule conditional for corner cell (0, 0) of the
 * blinker (two live of three in-range sensors, 2^3 joint states):
 * approxEqual(count, 2, 0.5). Its probability crosses 0.5 inside
 * the sigma sweep, which makes it the SPRT's worst case.
 */
Uncertain<bool>
cornerSurvivalCondition(const life::Board& board, double sigma)
{
    life::NoisySensor sensor(sigma);
    Uncertain<double> count(0.0);
    for (auto [nx, ny] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 0}, {0, 1}, {1, 1}}) {
        count = count + sensor.senseNeighborExact(board, nx, ny);
    }
    return approxEqual(count, 2.0, 0.5);
}

struct PathResult
{
    double seconds;
    std::uint64_t samples;
};

PathResult
stepRepeatedly(const life::LifeVariant& variant,
               const life::Board& board, std::size_t reps)
{
    Rng rng(91);
    std::uint64_t samples = 0;
    double seconds = bench::timeSeconds([&] {
        for (std::size_t r = 0; r < reps; ++r) {
            life::Board working = board;
            samples += life::stepNoisy(working, variant, rng)
                           .samplesDrawn;
        }
    });
    return {seconds, samples};
}

void
conditionalRow(bench::Table& table,
               std::vector<std::pair<std::string, double>>& json,
               const std::string& label,
               const Uncertain<bool>& condition, std::size_t reps)
{
    const double p = exact::probability(condition);

    Rng rng(17);
    core::ConditionalOptions sampled;
    sampled.exactRouting = core::ExactRouting::Never;

    // Both loops are short enough that scheduler noise dominates a
    // single pass; report the best of several timed passes (after a
    // warmup) as is conventional for microbenchmarks.
    constexpr std::size_t kPasses = 5;
    double exactSeconds = 0.0;
    double sprtSeconds = 0.0;
    std::uint64_t sprtSamples = 0;
    for (std::size_t pass = 0; pass <= kPasses; ++pass) {
        const double exactPass = bench::timeSeconds([&] {
            for (std::size_t r = 0; r < reps; ++r)
                (void)condition.evaluate(0.5, {}, rng);
        });
        std::uint64_t passSamples = 0;
        const double sprtPass = bench::timeSeconds([&] {
            for (std::size_t r = 0; r < reps; ++r)
                passSamples +=
                    condition.evaluate(0.5, sampled, rng).samplesUsed;
        });
        if (pass == 0)
            continue; // warmup
        if (pass == 1 || exactPass < exactSeconds)
            exactSeconds = exactPass;
        if (pass == 1 || sprtPass < sprtSeconds)
            sprtSeconds = sprtPass;
        sprtSamples = passSamples;
    }

    const double exactRate = reps / exactSeconds;
    const double sprtRate = reps / sprtSeconds;
    table.mixedRow({label, std::to_string(p),
                    std::to_string(exactRate),
                    std::to_string(sprtRate),
                    std::to_string(exactRate / sprtRate),
                    std::to_string(static_cast<double>(sprtSamples)
                                   / static_cast<double>(reps))});
    json.emplace_back("exact_pr/" + label, exactRate);
    json.emplace_back("sprt_pr/" + label, sprtRate);
    json.emplace_back("speedup/" + label, exactRate / sprtRate);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Exact enumeration vs SPRT for Life rule "
                  "conditionals (small boards)");
    const bool paper = bench::hasFlag(argc, argv, "--paper");
    const std::size_t reps =
        static_cast<std::size_t>(bench::intFlag(
            argc, argv, "--reps", paper ? 200 : 40));
    const std::size_t prReps =
        static_cast<std::size_t>(bench::intFlag(
            argc, argv, "--pr-reps", paper ? 2000 : 1000));

    std::vector<std::pair<std::string, double>> json;

    // ------------------------------------------------------------
    // Per-conditional: decisive vs near-threshold.
    // ------------------------------------------------------------
    // Self-calibrate the hard case: scan sigma for the corner-cell
    // survival rule whose exact probability is closest to the 0.5
    // threshold. The backend itself prices each candidate in a few
    // microseconds, which is the point of having a closed form.
    double hardSigma = 0.5;
    double hardDistance = 1.0;
    life::Board board = blinker();
    for (double sigma = 0.300; sigma <= 1.200; sigma += 0.005) {
        const double p = exact::probability(
            cornerSurvivalCondition(board, sigma));
        if (std::abs(p - 0.5) < hardDistance) {
            hardDistance = std::abs(p - 0.5);
            hardSigma = sigma;
        }
    }

    std::printf("\nPer-conditional pr(): blinker rule conditionals "
                "(2^5 joint states for the\nbirth rule, 2^3 for the "
                "corner survival rule)\n\n");
    bench::Table prTable({"case", "exact p", "exact pr/s",
                          "sprt pr/s", "speedup", "sprt samp/pr"});
    conditionalRow(prTable, json, "decisive",
                   birthCondition(board, 0.35), prReps);
    conditionalRow(prTable, json, "near_threshold",
                   cornerSurvivalCondition(board, hardSigma), prReps);
    std::printf("\nNear-threshold (sigma %.3f): the SPRT drifts to "
                "its sample cap and returns\nInconclusive; the exact "
                "lookup answers the same query in closed form at\n"
                "flat cost. Decisive conditionals are cheap for both "
                "paths.\n",
                hardSigma);

    // ------------------------------------------------------------
    // Full board steps under ExactBayesLife.
    // ------------------------------------------------------------
    std::printf("\nFull board steps: ExactBayesLife, exact routing "
                "vs SPRT for every rule test\n\n");
    bench::Table table({"board", "sigma", "exact upd/s",
                        "sprt upd/s", "speedup", "sprt samp/upd"});
    for (std::size_t side : {3u, 4u}) {
        for (double sigma : {0.35, hardSigma}) {
            life::ExactBayesLife exactPath(sigma);
            core::ConditionalOptions sampled;
            sampled.exactRouting = core::ExactRouting::Never;
            life::ExactBayesLife sprtPath(sigma, sampled);

            life::Board stepBoard = makeBoard(side);
            const double updates =
                static_cast<double>(reps * side * side);

            PathResult exactRun =
                stepRepeatedly(exactPath, stepBoard, reps);
            PathResult sprtRun =
                stepRepeatedly(sprtPath, stepBoard, reps);

            const double exactRate = updates / exactRun.seconds;
            const double sprtRate = updates / sprtRun.seconds;
            char label[32];
            std::snprintf(label, sizeof label, "%zux%zu/s%.2f",
                          side, side, sigma);
            table.mixedRow(
                {label, std::to_string(sigma),
                 std::to_string(exactRate),
                 std::to_string(sprtRate),
                 std::to_string(exactRate / sprtRate),
                 std::to_string(
                     static_cast<double>(sprtRun.samples)
                     / updates)});
            json.emplace_back(std::string("exact_step/") + label,
                              exactRate);
            json.emplace_back(std::string("sprt_step/") + label,
                              sprtRate);
        }
    }

    std::printf("\nExact conditionals draw zero samples; the SPRT "
                "columns are the sampling bill\nthe closed form "
                "retires.\n");
    bench::writeBenchJson("BENCH_exact_pr.json", json);
    return 0;
}
