/**
 * @file
 * Ablation: SPRT operating characteristics. Sweeps the true
 * Bernoulli parameter across the threshold and reports acceptance
 * rates and average sample numbers for several (indifference, alpha)
 * settings — the efficiency/accuracy dial of section 4.3.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "stats/sprt.hpp"
#include "support/rng.hpp"

using namespace uncertain;

namespace {

void
sweepConfiguration(double indifference, double alpha,
                   std::size_t trials, Rng& rng)
{
    std::printf("--- indifference %.2f, alpha = beta = %.2f ---\n",
                indifference, alpha);
    bench::Table table({"true p", "accept-alt rate",
                        "inconclusive", "mean samples"});
    for (double p : {0.30, 0.40, 0.45, 0.48, 0.50, 0.52, 0.55, 0.60,
                     0.70}) {
        std::size_t acceptAlt = 0;
        std::size_t inconclusive = 0;
        std::size_t totalSamples = 0;
        for (std::size_t t = 0; t < trials; ++t) {
            stats::SprtOptions options;
            options.indifference = indifference;
            options.alpha = alpha;
            options.beta = alpha;
            options.maxSamples = 2000;
            stats::Sprt test(0.5, options);
            while (!test.isDecided() && !test.isCapped())
                test.add(rng.nextBool(p));
            totalSamples += test.samplesUsed();
            switch (test.decision()) {
              case stats::TestDecision::AcceptAlternative:
                ++acceptAlt;
                break;
              case stats::TestDecision::Inconclusive:
                ++inconclusive;
                break;
              case stats::TestDecision::AcceptNull:
                break;
            }
        }
        table.row({p, static_cast<double>(acceptAlt) / trials,
                   static_cast<double>(inconclusive) / trials,
                   static_cast<double>(totalSamples) / trials});
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Ablation: SPRT operating characteristics around "
                  "threshold 0.5");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    const std::size_t trials = paper ? 10000 : 1500;
    Rng rng(42);

    sweepConfiguration(0.05, 0.05, trials, rng);
    sweepConfiguration(0.10, 0.05, trials, rng);
    sweepConfiguration(0.05, 0.01, trials, rng);

    std::printf("Shape checks: the accept-alternative curve is a "
                "sharp sigmoid through\nthe indifference band; "
                "sample cost peaks at the threshold and falls\n"
                "off steeply; a wider indifference band buys cheaper "
                "decisions at the\ncost of a wider ambiguous zone; "
                "smaller alpha costs more samples.\n");
    return 0;
}
