/**
 * @file
 * Figure 16: precision and recall of Parakeet's edge detection as a
 * function of the conditional threshold alpha, against the single
 * precision/recall point Parrot locks developers into. Paper
 * anchors: Parrot gives ~100% recall at ~64% precision; raising
 * alpha trades recall for precision.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch.hpp"
#include "nn/parakeet.hpp"
#include "nn/sobel.hpp"
#include "stats/precision_recall.hpp"

using namespace uncertain;
using namespace uncertain::nn;

int
main(int argc, char** argv)
{
    bench::banner("Figure 16: Parakeet precision/recall vs. "
                  "conditional threshold alpha");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    std::string engine = bench::engineFlag(argc, argv);
    // --engine batch: the per-patch SPRT evidence draws over the PPD
    // pool leaf run through columnar plans (a new plan per predict()
    // leaf — PlanCache churn by design).
    core::BatchSampler sampler;
    const bool batch = engine == "batch";
    const std::size_t trainCount = paper ? 5000 : 2000;
    const std::size_t evalCount = paper ? 500 : 400;

    // The generalization-error regime (see DESIGN.md): pixel noise
    // blurs the flat/edge boundary, the 9-4-1 network under modest
    // training smooths across it and over-reports edges — Parrot's
    // high-recall / low-precision corner — and the HMC posterior is
    // wide enough that evidence thresholds genuinely move the
    // operating point.
    const double pixelNoise = 0.06;
    Rng rng(16);
    Dataset train = makeSobelDataset(trainCount, rng, pixelNoise);
    ParakeetOptions options;
    options.topology = {9, 4, 1};
    options.sgd.epochs = 25;
    options.hmc.burnIn = 200;
    options.hmc.posteriorSamples = 64;
    options.hmc.thinning = 5;
    options.hmc.noiseSigma = 0.2;
    options.hmcDataLimit = 500;
    Parakeet model = Parakeet::train(train, options, rng);

    Dataset eval = makeSobelDataset(evalCount, rng, pixelNoise);
    std::printf("train %zu / eval %zu patches [paper: 5000 / 500]; "
                "edge = s(p) > %.2f\n\n",
                trainCount, evalCount, kEdgeThreshold);

    // Parrot: the one point developers are locked into.
    stats::ConfusionMatrix parrot;
    for (std::size_t i = 0; i < eval.size(); ++i) {
        bool truth = eval.targets[i] > kEdgeThreshold;
        parrot.add(truth, model.parrotPredict(eval.inputs[i])
                              > kEdgeThreshold);
    }
    std::printf("Parrot point estimate: precision %.3f, recall %.3f "
                "[paper: 0.64, 1.00]\n\n",
                parrot.precision(), parrot.recall());

    core::ConditionalOptions conditional;
    conditional.sprt.maxSamples = 400;

    bench::Table table({"alpha", "precision", "recall", "f1",
                        "edges reported"});
    for (double alpha : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                         0.9}) {
        stats::ConfusionMatrix matrix;
        for (std::size_t i = 0; i < eval.size(); ++i) {
            bool truth = eval.targets[i] > kEdgeThreshold;
            auto evidence =
                model.predict(eval.inputs[i]) > kEdgeThreshold;
            matrix.add(truth,
                       batch ? evidence.pr(alpha, conditional, rng,
                                           sampler)
                             : evidence.pr(alpha, conditional, rng));
        }
        table.row({alpha, matrix.precision(), matrix.recall(),
                   matrix.f1(),
                   static_cast<double>(matrix.truePositives()
                                       + matrix.falsePositives())});
    }

    std::printf("\nShape checks (Figure 16): precision rises and "
                "recall falls as alpha\ngrows; low alpha reproduces "
                "Parrot's high-recall/low-precision corner,\nhigh "
                "alpha trades the other way. Developers pick the "
                "balance.\n");
    return 0;
}
