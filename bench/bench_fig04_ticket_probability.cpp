/**
 * @file
 * Figure 4: probability of issuing a speeding ticket at a 60 mph
 * limit, as a function of true speed and GPS accuracy, when the
 * conditional naively compares the measured speed to the limit.
 * Anchor: true speed 57 mph at 4 m accuracy gives ~32% false
 * tickets (paper section 2). Also prints the section-2 anchor that
 * two 4 m fixes compound to a ~12.7 mph 95% speed interval.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/inspect.hpp"
#include "gps/gps_library.hpp"
#include "gps/sensor.hpp"
#include "stats/summary.hpp"

using namespace uncertain;
using namespace uncertain::gps;

namespace {

double
ticketProbability(double trueSpeedMph, double epsilon,
                  std::size_t trials, Rng& rng)
{
    GeoCoordinate start{47.62, -122.35};
    GeoCoordinate end =
        destination(start, 0.5, trueSpeedMph / kMpsToMph);
    int tickets = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        GpsSensor sensor(epsilon); // memoryless: worst case
        GpsFix f1 = sensor.read(start, 0.0, rng);
        GpsFix f2 = sensor.read(end, 1.0, rng);
        tickets += naiveSpeedMph(f1, f2) > 60.0 ? 1 : 0;
    }
    return static_cast<double>(tickets)
           / static_cast<double>(trials);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Figure 4: Pr[ticket] at a 60 mph limit vs. true "
                  "speed and GPS accuracy");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    bool verbose = bench::hasFlag(argc, argv, "--verbose");
    std::string engine = bench::engineFlag(argc, argv);
    const std::size_t trials = paper ? 200000 : 20000;
    Rng rng(4);
    core::BatchSampler batchSampler;

    // Section 2 anchor: speed 95% CI from two 4 m fixes.
    {
        auto a = getLocation({{47.62, -122.35}, 4.0, 0.0});
        auto b = getLocation({{47.62, -122.35}, 4.0, 1.0});
        auto speed = uncertainSpeedMph(a, b, 1.0);
        std::vector<double> samples =
            engine == "batch"
                ? speed.takeSamples(40000, rng, batchSampler)
                : speed.takeSamples(40000, rng);
        std::sort(samples.begin(), samples.end());
        std::printf("speed 95%% CI from two 4 m fixes: %.1f mph "
                    "[paper: 12.7]\n\n",
                    samples[static_cast<std::size_t>(
                        0.95 * samples.size())]);
        if (engine == "batch" && verbose) {
            std::printf(
                "plan (speed): %s\n\n",
                core::planReport(core::planStats(speed, batchSampler),
                                 batchSampler.planCache()->stats(),
                                 batchSampler.blockSize())
                    .c_str());
        }
    }

    std::vector<double> epsilons{2.0, 4.0, 8.0, 16.0};
    std::vector<std::string> header{"true mph"};
    for (double e : epsilons)
        header.push_back("eps=" + std::to_string(static_cast<int>(e))
                         + "m");
    bench::Table table(header);

    for (double speed : {50.0, 53.0, 55.0, 57.0, 59.0, 60.0, 61.0,
                         63.0, 65.0, 70.0}) {
        std::vector<double> row{speed};
        for (double epsilon : epsilons)
            row.push_back(
                ticketProbability(speed, epsilon, trials, rng));
        table.row(row);
    }

    std::printf("\nAnchor: 57 mph at eps=4 m should sit near 0.32 "
                "(paper: 32%%).\nShape: probabilities rise toward 0.5 "
                "at the limit and the curves\nflatten as accuracy "
                "degrades — larger eps means more false tickets\n"
                "below the limit and more missed tickets above it.\n");
    return 0;
}
