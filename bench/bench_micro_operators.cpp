/**
 * @file
 * Microbenchmarks (google-benchmark): the runtime costs behind the
 * abstraction — graph construction, ancestral sampling at varying
 * depths, memoized shared nodes, conditional evaluation, E(), and
 * the parallel batch engine on a --threads-style axis (the benchmark
 * argument is the thread count).
 */

#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>

#include "core/core.hpp"
#include "random/gaussian.hpp"

using namespace uncertain;

namespace {

Uncertain<double>
gaussianLeaf()
{
    return core::fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
}

/** Chain of @p depth additions over fresh leaves. */
Uncertain<double>
buildChain(int depth)
{
    auto acc = gaussianLeaf();
    for (int i = 1; i < depth; ++i)
        acc = acc + gaussianLeaf();
    return acc;
}

void
BM_GraphConstruction(benchmark::State& state)
{
    const int depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto chain = buildChain(depth);
        benchmark::DoNotOptimize(chain.node().get());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphConstruction)->Range(1, 256)->Complexity();

void
BM_AncestralSampling(benchmark::State& state)
{
    const int depth = static_cast<int>(state.range(0));
    auto chain = buildChain(depth);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(chain.sample(rng));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AncestralSampling)->Range(1, 256)->Complexity();

void
BM_SharedNodeSampling(benchmark::State& state)
{
    // Diamond sharing: 2^k paths but only k nodes; memoization must
    // keep this linear in nodes, not paths.
    const int levels = static_cast<int>(state.range(0));
    auto node = gaussianLeaf();
    for (int i = 0; i < levels; ++i)
        node = node + node;
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(node.sample(rng));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SharedNodeSampling)->DenseRange(2, 20, 6)->Complexity();

void
BM_ConditionalEasy(benchmark::State& state)
{
    auto variable = core::fromDistribution(
        std::make_shared<random::Gaussian>(8.0, 1.0));
    auto condition = variable > 4.0;
    Rng rng(3);
    core::ConditionalOptions options;
    for (auto _ : state)
        benchmark::DoNotOptimize(condition.pr(0.5, options, rng));
}
BENCHMARK(BM_ConditionalEasy);

void
BM_ConditionalHard(benchmark::State& state)
{
    auto variable = core::fromDistribution(
        std::make_shared<random::Gaussian>(4.05, 1.0));
    auto condition = variable > 4.0;
    Rng rng(4);
    core::ConditionalOptions options;
    options.sprt.maxSamples = 1000;
    for (auto _ : state)
        benchmark::DoNotOptimize(condition.pr(0.5, options, rng));
}
BENCHMARK(BM_ConditionalHard);

void
BM_ExpectedValue(benchmark::State& state)
{
    auto chain = buildChain(8);
    Rng rng(5);
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(chain.expectedValue(n, rng));
}
BENCHMARK(BM_ExpectedValue)->Arg(100)->Arg(1000);

void
BM_ExpectedValueAdaptive(benchmark::State& state)
{
    auto chain = buildChain(8);
    Rng rng(6);
    stats::AdaptiveMeanOptions options;
    // The chain's mean is ~0, so use an absolute target.
    options.absoluteTolerance = 0.1;
    for (auto _ : state) {
        auto result = chain.expectedValueAdaptive(options, rng);
        benchmark::DoNotOptimize(result.mean);
    }
}
BENCHMARK(BM_ExpectedValueAdaptive);

void
BM_LeafSampling(benchmark::State& state)
{
    auto leaf = gaussianLeaf();
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(leaf.sample(rng));
}
BENCHMARK(BM_LeafSampling);

// ----------------------------------------------------------------------
// Parallel batch engine. The argument is the thread count; compare
// against BM_SerialTakeSamples for the serial-vs-parallel speedup (a
// single-core host shows ~1x plus dispatch overhead; a multi-core
// host should approach the thread count on the deep chain).
// ----------------------------------------------------------------------

void
BM_SerialTakeSamples(benchmark::State& state)
{
    auto chain = buildChain(static_cast<int>(state.range(0)));
    Rng rng(8);
    const std::size_t n = 10000;
    for (auto _ : state) {
        auto samples = chain.takeSamples(n, rng);
        benchmark::DoNotOptimize(samples.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SerialTakeSamples)->Arg(8)->Arg(64);

void
BM_ParallelTakeSamples(benchmark::State& state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    auto chain = buildChain(static_cast<int>(state.range(1)));
    Rng rng(8);
    core::ParallelSampler sampler(
        core::ParallelOptions{threads, 1024});
    const std::size_t n = 10000;
    for (auto _ : state) {
        auto samples = chain.takeSamples(n, rng, sampler);
        benchmark::DoNotOptimize(samples.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ParallelTakeSamples)
    ->ArgsProduct({{1, 2, 4, 8}, {8, 64}});

void
BM_ParallelConditional(benchmark::State& state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    auto variable = core::fromDistribution(
        std::make_shared<random::Gaussian>(4.05, 1.0));
    auto condition = variable > 4.0;
    Rng rng(9);
    core::ConditionalOptions options;
    options.sprt.maxSamples = 1000;
    core::ParallelSampler sampler(
        core::ParallelOptions{threads, 256});
    for (auto _ : state)
        benchmark::DoNotOptimize(
            condition.pr(0.5, options, rng, sampler));
}
BENCHMARK(BM_ParallelConditional)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
