/**
 * @file
 * Microbenchmarks (google-benchmark): the runtime costs behind the
 * abstraction — graph construction, ancestral sampling at varying
 * depths, memoized shared nodes, conditional evaluation, E(), and
 * the parallel batch engine on a --threads-style axis (the benchmark
 * argument is the thread count).
 *
 * --engine {tree,batch} selects the sampling engine for the
 * bulk-sampling benchmarks (BM_TakeSamples, BM_ExpectedValue, the
 * conditionals): "tree" walks the DAG once per sample, "batch" runs
 * the compiled columnar plan. Run once per engine and compare
 * items_per_second; the engine is recorded in the benchmark context.
 *
 * --optimizer {on,off} toggles the batch-plan optimizer passes (CSE,
 * constant folding, fusion, buffer reuse) for every batch sampler in
 * the run — CI runs both and scripts/bench_compare.py diffs the two
 * JSONs. --verbose prints the optimized-plan report for the
 * BM_TakeSamples graphs before the benchmarks run.
 *
 * --backend {auto,jit,simd,scalar} selects the execution backend for
 * the batch plans AND (via the process-wide force-scalar switch) the
 * RNG-fill/ziggurat layers: "scalar" is the honest baseline for SIMD
 * speedups, "simd" the kernel-strip rung CI gates at >= 1.3x on the
 * depth-64 chain, "jit" the compiled-fragment rung gated at >= 1.25x
 * over simd (scripts/bench_compare.py --backend-gate). Under
 * --backend jit the harness also measures compile-time amortization —
 * first-block vs steady-state throughput and the break-even block
 * count — and records it in the benchmark context.
 */

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "core/core.hpp"
#include "core/inspect.hpp"
#include "core/jit/jit_compiler.hpp"
#include "random/gaussian.hpp"

using namespace uncertain;

namespace {

/** Engine axis for the bulk-sampling benchmarks; set by --engine. */
std::string g_engine = "tree";
/** Optimizer axis for the batch engine; set by --optimizer. */
std::string g_optimizer = "on";
/** Backend axis for the batch engine; set by --backend. */
std::string g_backend = "auto";
/** g_backend resolved by bench::applyBackend() in main(). */
simd::ExecBackend g_backendEnum = simd::ExecBackend::Auto;
bool g_verbose = false;

bool
useBatchEngine()
{
    return g_engine == "batch";
}

core::PlanOptions
optimizerOptions()
{
    auto options = g_optimizer == "on" ? core::PlanOptions{}
                                       : core::PlanOptions::disabled();
    // The backend axis overrides disabled()'s scalar default: the two
    // axes are independent (an unoptimized plan can still run its
    // per-step strips through the vector kernels).
    options.backend = g_backendEnum;
    return options;
}

core::BatchOptions
batchOptions()
{
    core::BatchOptions options;
    options.optimizer = optimizerOptions();
    return options;
}

Uncertain<double>
gaussianLeaf()
{
    return core::fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
}

/** Chain of @p depth additions over fresh leaves. */
Uncertain<double>
buildChain(int depth)
{
    auto acc = gaussianLeaf();
    for (int i = 1; i < depth; ++i)
        acc = acc + gaussianLeaf();
    return acc;
}

void
BM_GraphConstruction(benchmark::State& state)
{
    const int depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto chain = buildChain(depth);
        benchmark::DoNotOptimize(chain.node().get());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphConstruction)->Range(1, 256)->Complexity();

void
BM_AncestralSampling(benchmark::State& state)
{
    const int depth = static_cast<int>(state.range(0));
    auto chain = buildChain(depth);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(chain.sample(rng));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AncestralSampling)->Range(1, 256)->Complexity();

void
BM_SharedNodeSampling(benchmark::State& state)
{
    // Diamond sharing: 2^k paths but only k nodes; memoization must
    // keep this linear in nodes, not paths.
    const int levels = static_cast<int>(state.range(0));
    auto node = gaussianLeaf();
    for (int i = 0; i < levels; ++i)
        node = node + node;
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(node.sample(rng));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SharedNodeSampling)->DenseRange(2, 20, 6)->Complexity();

void
BM_ConditionalEasy(benchmark::State& state)
{
    auto variable = core::fromDistribution(
        std::make_shared<random::Gaussian>(8.0, 1.0));
    auto condition = variable > 4.0;
    Rng rng(3);
    core::ConditionalOptions options;
    core::BatchSampler batchSampler(batchOptions());
    for (auto _ : state) {
        bool decision = useBatchEngine()
                            ? condition.pr(0.5, options, rng,
                                           batchSampler)
                            : condition.pr(0.5, options, rng);
        benchmark::DoNotOptimize(decision);
    }
}
BENCHMARK(BM_ConditionalEasy);

void
BM_ConditionalHard(benchmark::State& state)
{
    auto variable = core::fromDistribution(
        std::make_shared<random::Gaussian>(4.05, 1.0));
    auto condition = variable > 4.0;
    Rng rng(4);
    core::ConditionalOptions options;
    options.sprt.maxSamples = 1000;
    core::BatchSampler batchSampler(batchOptions());
    for (auto _ : state) {
        bool decision = useBatchEngine()
                            ? condition.pr(0.5, options, rng,
                                           batchSampler)
                            : condition.pr(0.5, options, rng);
        benchmark::DoNotOptimize(decision);
    }
}
BENCHMARK(BM_ConditionalHard);

void
BM_ExpectedValue(benchmark::State& state)
{
    auto chain = buildChain(8);
    Rng rng(5);
    core::BatchSampler batchSampler(batchOptions());
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        double mean = useBatchEngine()
                          ? chain.expectedValue(n, rng, batchSampler)
                          : chain.expectedValue(n, rng);
        benchmark::DoNotOptimize(mean);
    }
}
BENCHMARK(BM_ExpectedValue)->Arg(100)->Arg(1000);

void
BM_ExpectedValueAdaptive(benchmark::State& state)
{
    auto chain = buildChain(8);
    Rng rng(6);
    stats::AdaptiveMeanOptions options;
    // The chain's mean is ~0, so use an absolute target.
    options.absoluteTolerance = 0.1;
    for (auto _ : state) {
        auto result = chain.expectedValueAdaptive(options, rng);
        benchmark::DoNotOptimize(result.mean);
    }
}
BENCHMARK(BM_ExpectedValueAdaptive);

void
BM_LeafSampling(benchmark::State& state)
{
    auto leaf = gaussianLeaf();
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(leaf.sample(rng));
}
BENCHMARK(BM_LeafSampling);

// ----------------------------------------------------------------------
// Bulk sampling engines. BM_TakeSamples honours --engine: run once
// with --engine tree and once with --engine batch and compare
// items_per_second for the tree-walk vs columnar-plan speedup. The
// parallel variant's argument is the thread count; on a single-core
// host it shows ~1x plus dispatch overhead, on a multi-core host it
// should approach the thread count on the deep chain.
// ----------------------------------------------------------------------

void
BM_TakeSamples(benchmark::State& state)
{
    auto chain = buildChain(static_cast<int>(state.range(0)));
    Rng rng(8);
    core::BatchSampler batchSampler(batchOptions());
    const std::size_t n = 10000;
    for (auto _ : state) {
        auto samples = useBatchEngine()
                           ? chain.takeSamples(n, rng, batchSampler)
                           : chain.takeSamples(n, rng);
        benchmark::DoNotOptimize(samples.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_TakeSamples)->Arg(8)->Arg(64);

/** Depth-@p depth chain of elementwise ops over ONE leaf: acc
 *  alternates * and + with plain constants, so every step after the
 *  leaf is a fusable elementwise op and the optimizer folds the whole
 *  chain into fused register strips. This is the strip-execution
 *  benchmark: per sample, one Gaussian draw and @p depth micro-ops,
 *  where the scalar-vs-simd backend gap is the strip kernels alone
 *  (BM_TakeSamples is leaf/RNG-dominated and measures the ziggurat
 *  path instead). */
Uncertain<double>
buildElementwiseChain(int depth)
{
    auto acc = gaussianLeaf();
    for (int i = 0; i < depth / 2; ++i)
        acc = acc * 1.0101 + 0.25;
    return acc;
}

void
BM_ElementwiseChain(benchmark::State& state)
{
    auto chain =
        buildElementwiseChain(static_cast<int>(state.range(0)));
    Rng rng(8);
    core::BatchSampler batchSampler(batchOptions());
    const std::size_t n = 10000;
    for (auto _ : state) {
        auto samples = useBatchEngine()
                           ? chain.takeSamples(n, rng, batchSampler)
                           : chain.takeSamples(n, rng);
        benchmark::DoNotOptimize(samples.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ElementwiseChain)->Arg(8)->Arg(64);

void
BM_ParallelTakeSamples(benchmark::State& state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    auto chain = buildChain(static_cast<int>(state.range(1)));
    Rng rng(8);
    core::ParallelSampler sampler(
        core::ParallelOptions{threads, 1024, optimizerOptions()});
    const std::size_t n = 10000;
    for (auto _ : state) {
        auto samples = chain.takeSamples(n, rng, sampler);
        benchmark::DoNotOptimize(samples.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ParallelTakeSamples)
    ->ArgsProduct({{1, 2, 4, 8}, {8, 64}});

void
BM_ParallelConditional(benchmark::State& state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    auto variable = core::fromDistribution(
        std::make_shared<random::Gaussian>(4.05, 1.0));
    auto condition = variable > 4.0;
    Rng rng(9);
    core::ConditionalOptions options;
    options.sprt.maxSamples = 1000;
    core::ParallelSampler sampler(
        core::ParallelOptions{threads, 256, optimizerOptions()});
    for (auto _ : state)
        benchmark::DoNotOptimize(
            condition.pr(0.5, options, rng, sampler));
}
BENCHMARK(BM_ParallelConditional)->Arg(1)->Arg(2)->Arg(4);

/**
 * Compile-time amortization of the JIT backend on the depth-64
 * elementwise chain: the first block pays plan build plus fragment
 * compilation; every later block runs the cached native code. Pitting
 * the steady-state per-block gain over the SIMD rung against the
 * one-off compile cost gives the break-even block count. Printed to
 * stderr and recorded in the benchmark context so BENCH_jit.json
 * carries the numbers.
 */
void
reportJitAmortization()
{
    if (!jit::available()) {
        std::fprintf(stderr,
                     "jit amortization: JIT unavailable (codegen %s), "
                     "plans fall back to simd/scalar\n",
                     jit::codegenIsaName());
        benchmark::AddCustomContext("jit_available", "false");
        return;
    }
    const int depth = 64;
    const std::size_t block = 1024;
    const std::size_t steadyBlocks = 200;
    Rng rng(10);

    // Fresh graph + sampler per backend so the first takeSamples call
    // really compiles (no plan-cache or fragment-cache reuse).
    jit::clearFragmentCache();
    auto measure = [&](simd::ExecBackend backend, double* firstSec,
                       double* steadySec,
                       std::uint64_t* compileNanos) {
        auto chain = buildElementwiseChain(depth);
        core::BatchOptions options;
        options.blockSize = block;
        options.optimizer = optimizerOptions();
        options.optimizer.backend = backend;
        core::BatchSampler sampler(options);
        *firstSec = bench::timeSeconds([&] {
            benchmark::DoNotOptimize(
                chain.takeSamples(block, rng, sampler).data());
        });
        *steadySec = bench::timeSeconds([&] {
                         for (std::size_t i = 0; i < steadyBlocks; ++i)
                             benchmark::DoNotOptimize(
                                 chain.takeSamples(block, rng, sampler)
                                     .data());
                     })
                     / static_cast<double>(steadyBlocks);
        *compileNanos =
            core::planStats(chain, sampler).jitCompileNanos;
    };

    double jitFirst = 0.0, jitSteady = 0.0;
    double simdFirst = 0.0, simdSteady = 0.0;
    std::uint64_t jitCompile = 0, simdCompile = 0;
    measure(simd::ExecBackend::Jit, &jitFirst, &jitSteady,
            &jitCompile);
    measure(simd::ExecBackend::Simd, &simdFirst, &simdSteady,
            &simdCompile);

    const double compileSec = static_cast<double>(jitCompile) * 1e-9;
    const double gainPerBlock = simdSteady - jitSteady;
    const double breakEven =
        gainPerBlock > 0.0 ? compileSec / gainPerBlock : -1.0;
    const double n = static_cast<double>(block);
    std::fprintf(
        stderr,
        "jit amortization (BM_ElementwiseChain/%d, block %zu): "
        "compile %.1f us; first block %.3g M items/s, steady %.3g M "
        "items/s (simd steady %.3g M); break-even %.1f blocks\n",
        depth, block, static_cast<double>(jitCompile) * 1e-3,
        n / jitFirst * 1e-6, n / jitSteady * 1e-6,
        n / simdSteady * 1e-6, breakEven);

    char buf[64];
    benchmark::AddCustomContext("jit_available", "true");
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(jitCompile) * 1e-3);
    benchmark::AddCustomContext("jit_compile_us", buf);
    std::snprintf(buf, sizeof buf, "%.0f", n / jitFirst);
    benchmark::AddCustomContext("jit_first_block_items_per_second",
                                buf);
    std::snprintf(buf, sizeof buf, "%.0f", n / jitSteady);
    benchmark::AddCustomContext("jit_steady_items_per_second", buf);
    std::snprintf(buf, sizeof buf, "%.2f", breakEven);
    benchmark::AddCustomContext("jit_break_even_blocks", buf);
}

/**
 * Strip "--engine X" / "--engine=X", "--optimizer X" /
 * "--optimizer=X", and "--verbose" from the argument vector (google
 * benchmark rejects flags it does not know) and record the choices.
 */
void
parseLocalFlags(int* argc, char** argv)
{
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < *argc) {
            g_engine = argv[++i];
        } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
            g_engine = argv[i] + 9;
        } else if (std::strcmp(argv[i], "--optimizer") == 0
                   && i + 1 < *argc) {
            g_optimizer = argv[++i];
        } else if (std::strncmp(argv[i], "--optimizer=", 12) == 0) {
            g_optimizer = argv[i] + 12;
        } else if (std::strcmp(argv[i], "--backend") == 0
                   && i + 1 < *argc) {
            g_backend = argv[++i];
        } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
            g_backend = argv[i] + 10;
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            g_verbose = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
}

} // namespace

int
main(int argc, char** argv)
{
    parseLocalFlags(&argc, argv);
    if (g_engine != "tree" && g_engine != "batch") {
        std::fprintf(stderr,
                     "unknown --engine '%s' (expected tree or batch)\n",
                     g_engine.c_str());
        return 2;
    }
    if (g_optimizer != "on" && g_optimizer != "off") {
        std::fprintf(stderr,
                     "unknown --optimizer '%s' (expected on or off)\n",
                     g_optimizer.c_str());
        return 2;
    }
    if (g_backend != "auto" && g_backend != "jit"
        && g_backend != "simd" && g_backend != "scalar") {
        std::fprintf(stderr,
                     "unknown --backend '%s' (expected auto, jit, "
                     "simd or scalar)\n",
                     g_backend.c_str());
        return 2;
    }
    g_backendEnum = bench::applyBackend(g_backend);
    benchmark::AddCustomContext("engine", g_engine);
    benchmark::AddCustomContext("optimizer", g_optimizer);
    benchmark::AddCustomContext("backend", g_backend);
    benchmark::AddCustomContext(
        "isa", simd::isaName(simd::activeIsa()));
    if (g_backend == "jit")
        reportJitAmortization();
    if (g_verbose) {
        core::BatchSampler sampler(batchOptions());
        Rng rng(8);
        for (int depth : {8, 64}) {
            auto chain = buildElementwiseChain(depth);
            chain.takeSamples(sampler.blockSize(), rng, sampler);
            std::fprintf(
                stderr, "plan BM_ElementwiseChain/%d: %s\n", depth,
                core::planReport(core::planStats(chain, sampler),
                                 sampler.planCache()->stats(),
                                 sampler.blockSize(),
                                 core::planExecCounters(chain, sampler))
                    .c_str());
        }
        for (int depth : {8, 64}) {
            auto chain = buildChain(depth);
            // Draw one batch first so the execution counters in the
            // report reflect a real pass, not just compilation.
            chain.takeSamples(sampler.blockSize(), rng, sampler);
            std::fprintf(
                stderr, "plan BM_TakeSamples/%d: %s\n", depth,
                core::planReport(core::planStats(chain, sampler),
                                 sampler.planCache()->stats(),
                                 sampler.blockSize(),
                                 core::planExecCounters(chain, sampler))
                    .c_str());
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
