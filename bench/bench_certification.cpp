/**
 * @file
 * Production-scale certification sweep: runs the full roster of
 * TV-distance certificates — every distribution on both sampling
 * paths, the trig-free GPS leaf, batch-engine columns through
 * optimized plans, and both resampling kernels — and writes the
 * certificates as BENCH_certification.json. The scheduled
 * certification-nightly.yml job runs this with --nightly (>= 1e7
 * draws per certificate, K = 1024, delta = 1e-9) and archives the
 * JSON; scripts/bench_compare.py understands the document's
 * "certifications" key and diffs tv_upper_bound (lower is better)
 * plus draw throughput across nightlies.
 *
 * Exit code: non-zero if ANY certificate fails, so the nightly job
 * goes red on a sampler regression without parsing the JSON.
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch.hpp"
#include "core/core.hpp"
#include "gps/geo.hpp"
#include "gps/gps_library.hpp"
#include "gps/sensor.hpp"
#include "inference/resample.hpp"
#include "random/beta.hpp"
#include "random/binomial.hpp"
#include "random/discrete.hpp"
#include "random/gamma.hpp"
#include "random/gaussian.hpp"
#include "random/poisson.hpp"
#include "random/rayleigh.hpp"
#include "random/student_t.hpp"
#include "stats/certify.hpp"
#include "support/rng.hpp"

using namespace uncertain;

namespace {

/** Fixed base seed: certificates are reproducible run to run. */
constexpr std::uint64_t kSeedBase = 0x5eedce7f1ca7e00ULL;

struct Roster
{
    std::vector<stats::CertifyResult> results;
    stats::CertifyOptions options;
    std::uint64_t nextSeed = 1;
    bool allPassed = true;

    void
    addContinuous(const std::string& name,
                  const stats::BulkSampler& sampler,
                  const random::Distribution& truth)
    {
        Rng rng(kSeedBase ^ (nextSeed++ * 0x9e3779b97f4a7c15ULL));
        results.push_back(stats::certifyContinuous(name, sampler,
                                                   truth, rng,
                                                   options));
        allPassed = allPassed && results.back().pass;
    }

    void
    addDiscrete(const std::string& name,
                const stats::BulkSampler& sampler,
                const std::vector<double>& values,
                const std::vector<double>& probabilities)
    {
        Rng rng(kSeedBase ^ (nextSeed++ * 0x9e3779b97f4a7c15ULL));
        results.push_back(stats::certifyDiscrete(name, sampler, values,
                                                 probabilities, rng,
                                                 options));
        allPassed = allPassed && results.back().pass;
    }
};

void
certifyDistributions(Roster& roster)
{
    const std::vector<std::pair<std::string, random::DistributionPtr>>
        continuous = {
            {"gaussian_standard",
             std::make_shared<random::Gaussian>(0.0, 1.0)},
            {"gaussian_shifted",
             std::make_shared<random::Gaussian>(-2.5, 3.0)},
            {"rayleigh_gps",
             std::make_shared<random::Rayleigh>(
                 random::Rayleigh::fromHorizontalAccuracy(4.0))},
            {"beta_2p5_1p5",
             std::make_shared<random::Beta>(2.5, 1.5)},
            {"beta_0p7_0p4",
             std::make_shared<random::Beta>(0.7, 0.4)},
            {"gamma_boost_0p5",
             std::make_shared<random::Gamma>(0.5, 2.0)},
            {"gamma_squeeze_3",
             std::make_shared<random::Gamma>(3.0, 1.5)},
            {"student_t_5",
             std::make_shared<random::StudentT>(5.0)},
            {"student_t_1p5",
             std::make_shared<random::StudentT>(1.5)},
        };
    for (const auto& [name, dist] : continuous) {
        roster.addContinuous(name + "/bulk", stats::bulkSampler(dist),
                             *dist);
        roster.addContinuous(name + "/scalar",
                             stats::scalarSampler(dist), *dist);
    }

    const std::vector<std::pair<std::string, random::DistributionPtr>>
        discrete = {
            {"binomial_inversion_40",
             std::make_shared<random::Binomial>(40, 0.3)},
            {"binomial_btpe_200",
             std::make_shared<random::Binomial>(200, 0.4)},
            {"binomial_btpe_reflected_3000",
             std::make_shared<random::Binomial>(3000, 0.65)},
            {"binomial_skip_2000",
             std::make_shared<random::Binomial>(2000, 0.004)},
            {"poisson_knuth_4p2",
             std::make_shared<random::Poisson>(4.2)},
            {"poisson_ptrs_80",
             std::make_shared<random::Poisson>(80.0)},
        };
    for (const auto& [name, dist] : discrete) {
        std::vector<double> values;
        std::vector<double> probabilities;
        if (!dist->finiteSupport(values, probabilities)) {
            std::fprintf(stderr, "%s surfaces no finite support\n",
                         name.c_str());
            std::exit(1);
        }
        roster.addDiscrete(name + "/bulk", stats::bulkSampler(dist),
                           values, probabilities);
        roster.addDiscrete(name + "/scalar",
                           stats::scalarSampler(dist), values,
                           probabilities);
    }
}

void
certifyEngines(Roster& roster)
{
    // GPS leaf, radially Rayleigh on both engines.
    const gps::GeoCoordinate center{47.6205, -122.3493};
    const double accuracy = 4.0;
    random::Rayleigh radial(
        random::Rayleigh::fromHorizontalAccuracy(accuracy));
    for (bool batch : {false, true}) {
        auto location = gps::getLocation({center, accuracy, 0.0});
        auto sampler = std::make_shared<core::BatchSampler>();
        stats::BulkSampler draw = [location, sampler, batch, center](
                                      Rng& rng, double* out,
                                      std::size_t n) {
            auto coords = batch
                              ? location.takeSamples(n, rng, *sampler)
                              : location.takeSamples(n, rng);
            for (std::size_t i = 0; i < n; ++i)
                out[i] = gps::distanceMeters(center, coords[i]);
        };
        roster.addContinuous(batch ? "gps_leaf/batch"
                                   : "gps_leaf/scalar",
                             draw, radial);
    }

    // Batch plans with closed-form Gaussian root laws.
    auto leaf = [](double mu, double sigma) {
        return core::fromDistribution(
            std::make_shared<random::Gaussian>(mu, sigma));
    };
    const std::vector<
        std::pair<std::string,
                  std::pair<Uncertain<double>, random::Gaussian>>>
        plans = {
            {"batch_plan/affine",
             {leaf(0.0, 1.0) * 2.0 + 3.0,
              random::Gaussian(3.0, 2.0)}},
            {"batch_plan/shared_leaf",
             {[&] {
                  auto g = leaf(0.0, 1.0);
                  return g + g;
              }(),
              random::Gaussian(0.0, 2.0)}},
            {"batch_plan/independent_sum",
             {leaf(1.0, 1.0) + leaf(-1.0, 2.0),
              random::Gaussian(0.0, std::sqrt(5.0))}},
        };
    for (const auto& [name, plan] : plans) {
        auto expr = plan.first;
        auto sampler = std::make_shared<core::BatchSampler>();
        stats::BulkSampler draw = [expr, sampler](Rng& rng,
                                                  double* out,
                                                  std::size_t n) {
            auto samples = expr.takeSamples(n, rng, *sampler);
            for (std::size_t i = 0; i < n; ++i)
                out[i] = samples[i];
        };
        roster.addContinuous(name, draw, plan.second);
    }

    // Resampling kernels against the normalized weight law.
    std::vector<double> values;
    std::vector<double> weights;
    double total = 0.0;
    for (std::size_t i = 0; i < 16; ++i) {
        values.push_back(static_cast<double>(i));
        const double w = 1.0
                         + 0.5 * static_cast<double>((i * 7) % 13)
                         + (i == 5 ? 20.0 : 0.0);
        weights.push_back(w);
        total += w;
    }
    std::vector<double> probabilities;
    for (double w : weights)
        probabilities.push_back(w / total);

    roster.addDiscrete(
        "resample/multinomial",
        stats::scalarSampler(
            std::make_shared<random::Discrete>(values, weights)),
        values, probabilities);
    stats::BulkSampler systematic =
        [values, weights, total](Rng& rng, double* out,
                                 std::size_t n) {
            auto indices = inference::detail::systematicIndices(
                weights, total, n, rng);
            for (std::size_t i = 0; i < n; ++i)
                out[i] = values[indices[i]];
        };
    roster.addDiscrete("resample/systematic", systematic, values,
                       probabilities);
}

} // namespace

int
main(int argc, char** argv)
{
    Roster roster;
    roster.options.samples = static_cast<std::size_t>(
        bench::intFlag(argc, argv, "--samples", 1L << 21));
    roster.options.cells = static_cast<std::size_t>(
        bench::intFlag(argc, argv, "--cells", 512));
    roster.options.delta =
        std::atof(bench::stringFlag(argc, argv, "--delta", "1e-6")
                      .c_str());
    if (bench::hasFlag(argc, argv, "--nightly")) {
        // The production configuration of the nightly job.
        roster.options.samples = 10'000'000;
        roster.options.cells = 1024;
        roster.options.delta = 1e-9;
    }
    const std::string out =
        bench::stringFlag(argc, argv, "--out",
                          "BENCH_certification.json");

    std::printf("Certification sweep: N = %zu, K = %zu, "
                "delta = %g\n\n",
                roster.options.samples, roster.options.cells,
                roster.options.delta);
    certifyDistributions(roster);
    certifyEngines(roster);

    // bench::Table's 16-char columns are too narrow for sampler
    // names like binomial_btpe_reflected_3000/scalar.
    std::printf("%-36s%-16s%-16s%-12s%s\n", "sampler",
                "tv_upper_bound", "threshold", "Msamples/s", "pass");
    std::printf("%-36s%-16s%-16s%-12s%s\n",
                "-----------------------------------",
                "---------------", "---------------", "-----------",
                "----");
    for (const auto& r : roster.results)
        std::printf("%-36s%-16.3e%-16.3e%-12.1f%s\n",
                    r.sampler.c_str(), r.tvUpperBound, r.threshold,
                    r.samplesPerSecond / 1e6, r.pass ? "yes" : "NO");

    std::FILE* file = std::fopen(out.c_str(), "w");
    if (file == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    const std::string json = stats::certificationJson(roster.results);
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    std::printf("\nwrote %zu certificates to %s\n",
                roster.results.size(), out.c_str());

    if (!roster.allPassed) {
        std::fprintf(stderr,
                     "certification sweep: at least one sampler "
                     "FAILED its certificate\n");
        return 1;
    }
    return 0;
}
