/**
 * @file
 * Figure 13 + the section 5.1 anchors: the GPS-Walking trace. For a
 * simulated 15-minute walk it reports, per series:
 *  - naive speed (Figure 5(a)),
 *  - E[Speed] of the uncertain speed (the "GPS speed" series),
 *  - E of the prior-improved speed (the "Improved speed" series),
 * plus the false-running-report counters (naive conditional vs.
 * evidence conditional) and the confidence-interval tightening the
 * prior delivers.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/inspect.hpp"
#include "gps/trajectory.hpp"
#include "gps/walking.hpp"
#include "stats/summary.hpp"

using namespace uncertain;
using namespace uncertain::gps;

int
main(int argc, char** argv)
{
    bench::banner("Figure 13: GPS-Walking — naive vs. E[Speed] vs. "
                  "prior-improved speed");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    bool verbose = bench::hasFlag(argc, argv, "--verbose");
    std::string engine = bench::engineFlag(argc, argv);
    const double duration = paper ? 900.0 : 300.0;
    const std::size_t evalSamples = paper ? 2000 : 400;

    Rng rng(13);
    // Each second builds a fresh speed graph, so the batch engine
    // exercises PlanCache churn/eviction by design here.
    core::BatchSampler batchSampler;
    core::BatchSampler* batch =
        engine == "batch" ? &batchSampler : nullptr;
    WalkConfig config;
    config.durationSeconds = duration;
    auto truth = simulateWalk(config, rng);

    GpsSensorConfig sensorConfig;
    sensorConfig.epsilon95 = 2.0;
    sensorConfig.correlation = 0.95;
    sensorConfig.glitchProbability = 0.03;
    sensorConfig.glitchScale = 4.0;
    GpsSensor sensor(sensorConfig);
    auto fixes = observeWalk(truth, sensor, rng);

    core::ConditionalOptions conditional;
    conditional.sprt.maxSamples = 200;
    inference::ReweightOptions reweightOptions;
    reweightOptions.proposalSamples = 1500;
    reweightOptions.resampleSize = 800;

    stats::OnlineSummary naiveSummary;
    stats::OnlineSummary gpsSummary;
    stats::OnlineSummary improvedSummary;
    stats::OnlineSummary rawWidth;
    stats::OnlineSummary improvedWidth;
    int naiveFast = 0;
    int evidenceFast = 0;
    int adviceCounts[3] = {0, 0, 0};
    double naiveMax = 0.0;
    double gpsMax = 0.0;
    double improvedMax = 0.0;

    for (std::size_t i = 1; i < fixes.size(); ++i) {
        double naive = naiveSpeedMph(fixes[i - 1], fixes[i]);
        auto speed = speedFromFixes(fixes[i - 1], fixes[i]);
        auto improved = improveSpeed(speed, reweightOptions);

        double gpsE =
            batch ? speed.expectedValue(evalSamples, rng, *batch)
                  : speed.expectedValue(evalSamples, rng);
        double improvedE =
            batch ? improved.expectedValue(evalSamples, rng, *batch)
                  : improved.expectedValue(evalSamples, rng);

        naiveSummary.add(naive);
        gpsSummary.add(gpsE);
        improvedSummary.add(improvedE);
        naiveMax = std::max(naiveMax, naive);
        gpsMax = std::max(gpsMax, gpsE);
        improvedMax = std::max(improvedMax, improvedE);

        // 95% spread of each per-second distribution.
        auto rawSamples =
            batch ? speed.takeSamples(evalSamples, rng, *batch)
                  : speed.takeSamples(evalSamples, rng);
        auto impSamples =
            batch ? improved.takeSamples(evalSamples, rng, *batch)
                  : improved.takeSamples(evalSamples, rng);
        std::sort(rawSamples.begin(), rawSamples.end());
        std::sort(impSamples.begin(), impSamples.end());
        auto width = [](const std::vector<double>& xs) {
            return xs[static_cast<std::size_t>(0.975 * xs.size())]
                   - xs[static_cast<std::size_t>(0.025 * xs.size())];
        };
        rawWidth.add(width(rawSamples));
        improvedWidth.add(width(impSamples));

        naiveFast += naive > 7.0 ? 1 : 0;
        evidenceFast +=
            batch ? ((speed > 7.0).pr(0.9, conditional, rng, *batch)
                         ? 1
                         : 0)
                  : ((speed > 7.0).pr(0.9, conditional, rng) ? 1 : 0);

        // The Figure 5(b) per-second advice, through the selected
        // engine (section 5.1's GoodJob / SpeedUp / say-nothing).
        Advice advice = batch
                            ? advise(improved, conditional, rng, *batch)
                            : advise(improved, conditional);
        ++adviceCounts[static_cast<int>(advice)];
    }

    bench::Table table(
        {"series", "mean mph", "max mph", "mean 95% width"});
    table.mixedRow({"true walk",
                    std::to_string(3.0).substr(0, 6), "6.0", "-"});
    table.row({0, naiveSummary.mean(), naiveMax, 0.0});
    table.row({1, gpsSummary.mean(), gpsMax, rawWidth.mean()});
    table.row({2, improvedSummary.mean(), improvedMax,
               improvedWidth.mean()});
    std::printf("(series 0 = naive, 1 = E[Speed], 2 = improved with "
                "walking prior)\n\n");

    std::printf("seconds reported above 7 mph (running pace):\n");
    std::printf("  naive conditional:     %d   [paper: ~30-35 s]\n",
                naiveFast);
    std::printf("  evidence Pr(0.9):      %d   [paper: ~4 s]\n\n",
                evidenceFast);

    std::printf("advice on the improved speed (GoodJob / SpeedUp / "
                "say nothing): %d / %d / %d\n\n",
                adviceCounts[0], adviceCounts[1], adviceCounts[2]);

    if (batch && verbose) {
        core::PlanCacheStats cacheStats = batch->planCache()->stats();
        std::printf("batch engine: PlanCache hits %llu, misses %llu, "
                    "evictions %llu @ block %zu\n\n",
                    static_cast<unsigned long long>(cacheStats.hits),
                    static_cast<unsigned long long>(cacheStats.misses),
                    static_cast<unsigned long long>(
                        cacheStats.evictions),
                    batch->blockSize());
    }

    std::printf("Shape checks:\n");
    std::printf("  - improved max (%.1f) strips the absurd naive max "
                "(%.1f) [paper: 59 -> plausible]\n",
                improvedMax, naiveMax);
    std::printf("  - improved 95%% width (%.1f) is tighter than raw "
                "(%.1f) [Figure 13's tighter CI]\n",
                improvedWidth.mean(), rawWidth.mean());
    return 0;
}
