/**
 * @file
 * Ablation: Figure 8's shared-dependence semantics. Compares the
 * variance of B = (Y + X) + X under the correct network (one X node,
 * epoch-memoized) against the wrong network (two independent copies
 * of X), and shows the downstream effect on a conditional.
 */

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "stats/summary.hpp"

using namespace uncertain;

int
main(int argc, char** argv)
{
    bench::banner("Ablation: correct vs. wrong Bayesian network for "
                  "B = (Y + X) + X (Figure 8)");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    const std::size_t n = paper ? 1000000 : 150000;
    Rng rng(43);

    auto gaussian = [] {
        return core::fromDistribution(
            std::make_shared<random::Gaussian>(0.0, 1.0));
    };

    // Correct: both occurrences are the same node.
    auto x = gaussian();
    auto y = gaussian();
    auto correct = (y + x) + x;

    // Wrong: a second, independent leaf plays the role of the
    // second X occurrence (Figure 8(a)).
    auto xCopy = gaussian();
    auto wrong = (y + x) + xCopy;

    stats::OnlineSummary correctSummary;
    correctSummary.addAll(correct.takeSamples(n, rng));
    stats::OnlineSummary wrongSummary;
    wrongSummary.addAll(wrong.takeSamples(n, rng));

    bench::Table table({"network", "variance", "analytic"});
    table.mixedRow({"correct (shared X)",
                    std::to_string(correctSummary.variance()),
                    "5  (1 + 4*1)"});
    table.mixedRow({"wrong (independent)",
                    std::to_string(wrongSummary.variance()),
                    "3  (1 + 1 + 1)"});

    // Downstream: the wrong network understates tail probabilities.
    double pCorrect = (correct > 3.0).probability(n, rng);
    double pWrong = (wrong > 3.0).probability(n, rng);
    std::printf("\nPr[B > 3]: correct %.4f vs. wrong %.4f — the "
                "wrong network understates\nthe tail by %.1fx, which "
                "is precisely the class of bug the epoch-memoized\n"
                "sampler rules out.\n",
                pCorrect, pWrong, pCorrect / pWrong);
    return 0;
}
