/**
 * @file
 * Microbenchmarks: sampling throughput of every distribution family
 * (the cost floor under every Uncertain<T> leaf) and of the SIR
 * reweighting pipeline.
 *
 * --backend {auto,simd,scalar} pins the execution backend for the
 * bulk paths (BM_SampleManyGaussian, BM_FillDouble go through the
 * vectorized RNG-fill and ziggurat-accept kernels under auto/simd).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util.hpp"
#include "inference/reweight.hpp"
#include "random/beta.hpp"
#include "random/binomial.hpp"
#include "random/cauchy.hpp"
#include "random/discrete.hpp"
#include "random/empirical.hpp"
#include "random/gamma.hpp"
#include "random/gaussian.hpp"
#include "random/kde.hpp"
#include "random/mixture.hpp"
#include "random/poisson.hpp"
#include "random/rayleigh.hpp"
#include "random/student_t.hpp"
#include "random/truncated.hpp"
#include "random/uniform.hpp"

using namespace uncertain;

namespace {

template <typename Dist, typename... Args>
void
samplingBenchmark(benchmark::State& state, Args... args)
{
    Dist dist(args...);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
}

void
BM_SampleUniform(benchmark::State& s)
{
    samplingBenchmark<random::Uniform>(s, 0.0, 1.0);
}
BENCHMARK(BM_SampleUniform);

void
BM_SampleGaussian(benchmark::State& s)
{
    samplingBenchmark<random::Gaussian>(s, 0.0, 1.0);
}
BENCHMARK(BM_SampleGaussian);

void
BM_SampleRayleigh(benchmark::State& s)
{
    samplingBenchmark<random::Rayleigh>(s, 1.63);
}
BENCHMARK(BM_SampleRayleigh);

void
BM_SampleGamma(benchmark::State& s)
{
    samplingBenchmark<random::Gamma>(s, 4.5, 1.5);
}
BENCHMARK(BM_SampleGamma);

void
BM_SampleBeta(benchmark::State& s)
{
    samplingBenchmark<random::Beta>(s, 2.0, 5.0);
}
BENCHMARK(BM_SampleBeta);

void
BM_SampleStudentT(benchmark::State& s)
{
    samplingBenchmark<random::StudentT>(s, 8.0);
}
BENCHMARK(BM_SampleStudentT);

void
BM_SampleCauchy(benchmark::State& s)
{
    samplingBenchmark<random::Cauchy>(s, 0.0, 1.0);
}
BENCHMARK(BM_SampleCauchy);

void
BM_SamplePoissonSmallLambda(benchmark::State& s)
{
    samplingBenchmark<random::Poisson>(s, 3.5);
}
BENCHMARK(BM_SamplePoissonSmallLambda);

void
BM_SamplePoissonLargeLambda(benchmark::State& s)
{
    samplingBenchmark<random::Poisson>(s, 300.0);
}
BENCHMARK(BM_SamplePoissonLargeLambda);

void
BM_SampleBinomial(benchmark::State& s)
{
    samplingBenchmark<random::Binomial>(s, 12, 0.4);
}
BENCHMARK(BM_SampleBinomial);

void
BM_SampleDiscreteAlias(benchmark::State& state)
{
    std::vector<double> values(1000);
    std::vector<double> weights(1000);
    Rng setup(2);
    for (int i = 0; i < 1000; ++i) {
        values[i] = i;
        weights[i] = setup.nextDoubleOpen();
    }
    random::Discrete dist(values, weights);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
}
BENCHMARK(BM_SampleDiscreteAlias);

void
BM_SampleMixture(benchmark::State& state)
{
    random::Mixture dist({std::make_shared<random::Gaussian>(0.0, 1.0),
                          std::make_shared<random::Gaussian>(5.0, 2.0)},
                         {0.7, 0.3});
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
}
BENCHMARK(BM_SampleMixture);

void
BM_SampleTruncatedAnalytic(benchmark::State& state)
{
    random::Truncated dist(
        std::make_shared<random::Gaussian>(0.0, 1.0), -1.0, 1.0);
    Rng rng(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
}
BENCHMARK(BM_SampleTruncatedAnalytic);

void
BM_SampleKde(benchmark::State& state)
{
    Rng setup(6);
    std::vector<double> pool;
    random::Gaussian source(0.0, 1.0);
    for (int i = 0; i < 1000; ++i)
        pool.push_back(source.sample(setup));
    random::GaussianKde dist(pool);
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(rng));
}
BENCHMARK(BM_SampleKde);

// ----------------------------------------------------------------------
// Bulk paths: these honour --backend (the per-draw loops above are
// scalar by construction and do not).
// ----------------------------------------------------------------------

void
BM_SampleManyGaussian(benchmark::State& state)
{
    random::Gaussian dist(0.0, 1.0);
    Rng rng(9);
    std::vector<double> out(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        dist.sampleMany(rng, out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * out.size()));
}
BENCHMARK(BM_SampleManyGaussian)->Arg(1024)->Arg(65536);

void
BM_FillDouble(benchmark::State& state)
{
    Rng rng(10);
    std::vector<double> out(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        rng.fillDouble(out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * out.size()));
}
BENCHMARK(BM_FillDouble)->Arg(65536);

void
BM_ReweightPipeline(benchmark::State& state)
{
    auto estimate = core::fromDistribution(
        std::make_shared<random::Gaussian>(2.0, 1.0));
    random::Gaussian prior(0.0, 1.0);
    Rng rng(8);
    inference::ReweightOptions options;
    options.proposalSamples = static_cast<std::size_t>(state.range(0));
    options.resampleSize = options.proposalSamples / 2;
    for (auto _ : state) {
        auto posterior =
            inference::applyPrior(estimate, prior, options, rng);
        benchmark::DoNotOptimize(posterior.node().get());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReweightPipeline)->Range(256, 16384)->Complexity();

/** Strip "--backend X" / "--backend=X" (google benchmark rejects
 *  unknown flags) and record the choice. */
std::string
parseBackendFlag(int* argc, char** argv)
{
    std::string backend = "auto";
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < *argc) {
            backend = argv[++i];
        } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
            backend = argv[i] + 10;
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
    return backend;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string backend = parseBackendFlag(&argc, argv);
    if (backend != "auto" && backend != "simd"
        && backend != "scalar") {
        std::fprintf(
            stderr,
            "unknown --backend '%s' (expected auto, simd or scalar)\n",
            backend.c_str());
        return 2;
    }
    bench::applyBackend(backend);
    benchmark::AddCustomContext("backend", backend);
    benchmark::AddCustomContext(
        "isa", simd::isaName(simd::activeIsa()));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
