/**
 * @file
 * Ablation: HMC vs. the Laplace (Gaussian) approximation of the
 * Parakeet posterior — the trade-off paper section 5.3 discusses.
 * Compares training cost, PPD quality (edge-detection F1 across
 * alphas), and PPD spread.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "nn/parakeet.hpp"
#include "nn/sobel.hpp"
#include "stats/precision_recall.hpp"
#include "stats/summary.hpp"

using namespace uncertain;
using namespace uncertain::nn;

namespace {

struct Evaluation
{
    double seconds;
    double f1At05;
    double precisionAt08;
    double recallAt08;
    double meanPpdSpread;
};

Evaluation
evaluateMethod(PosteriorMethod method, const Dataset& train,
               const Dataset& eval, Rng& rng)
{
    ParakeetOptions options;
    options.topology = {9, 4, 1};
    options.sgd.epochs = 25;
    options.posterior = method;
    options.hmc.burnIn = 200;
    options.hmc.posteriorSamples = 64;
    options.hmc.thinning = 5;
    options.hmc.noiseSigma = 0.2;
    options.laplace.noiseSigma = 0.2;
    options.laplace.posteriorSamples = 64;
    options.hmcDataLimit = 500;

    auto start = std::chrono::steady_clock::now();
    Parakeet model = Parakeet::train(train, options, rng);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    core::ConditionalOptions conditional;
    conditional.sprt.maxSamples = 300;

    auto evaluateAt = [&](double alpha) {
        stats::ConfusionMatrix matrix;
        for (std::size_t i = 0; i < eval.size(); ++i) {
            bool truth = eval.targets[i] > kEdgeThreshold;
            auto evidence =
                model.predict(eval.inputs[i]) > kEdgeThreshold;
            matrix.add(truth, evidence.pr(alpha, conditional, rng));
        }
        return matrix;
    };

    stats::OnlineSummary spread;
    for (std::size_t i = 0; i < eval.size(); i += 10) {
        stats::OnlineSummary perInput;
        for (double p : model.posteriorPredictions(eval.inputs[i]))
            perInput.add(p);
        spread.add(perInput.stddev());
    }

    auto mid = evaluateAt(0.5);
    auto strict = evaluateAt(0.8);
    return {seconds, mid.f1(), strict.precision(), strict.recall(),
            spread.mean()};
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Ablation: HMC vs. Laplace posterior approximation "
                  "(Parakeet, section 5.3)");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    const std::size_t trainCount = paper ? 5000 : 2000;

    Rng rng(44);
    Dataset train = makeSobelDataset(trainCount, rng, 0.06);
    Dataset eval = makeSobelDataset(400, rng, 0.06);

    bench::Table table({"method", "train s", "f1@0.5", "prec@0.8",
                        "rec@0.8", "ppd spread"});
    auto hmc = evaluateMethod(PosteriorMethod::Hmc, train, eval, rng);
    table.mixedRow({"hmc", std::to_string(hmc.seconds),
                    std::to_string(hmc.f1At05),
                    std::to_string(hmc.precisionAt08),
                    std::to_string(hmc.recallAt08),
                    std::to_string(hmc.meanPpdSpread)});
    auto laplace =
        evaluateMethod(PosteriorMethod::Laplace, train, eval, rng);
    table.mixedRow({"laplace", std::to_string(laplace.seconds),
                    std::to_string(laplace.f1At05),
                    std::to_string(laplace.precisionAt08),
                    std::to_string(laplace.recallAt08),
                    std::to_string(laplace.meanPpdSpread)});

    std::printf("\nShape check (the paper's trade-off): Laplace "
                "trains ~50x faster and\nneeds no chain tuning — "
                "\"mitigates all these downsides\" — but its\n"
                "diagonal-Gaussian covariance overstates the PPD "
                "spread here, costing\nrecall at strict thresholds: "
                "the \"may be an inappropriate approximation\nin "
                "some cases\" caveat, quantified.\n");
    return 0;
}
