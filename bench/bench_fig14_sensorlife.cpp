/**
 * @file
 * Figure 14: SensorLife. Sweeps the sensor noise amplitude sigma and
 * reports, for NaiveLife / SensorLife / BayesLife:
 *  (a) the rate of incorrect decisions with a 95% CI, and
 *  (b) the number of samples drawn per cell update.
 *
 * Paper expectations: Naive is roughly flat around 8% (rule-boundary
 * coin flips plus the never-firing float `== 3` birth test are
 * noise-amplitude independent); Sensor errors grow with sigma but
 * stay well below Naive; Bayes makes ~no mistakes through sigma =
 * 0.4. Naive draws 1 sample/update; Sensor's cost grows with sigma;
 * Bayes sits between.
 *
 * Default is a reduced configuration (10x10 board, fewer runs);
 * --paper runs the full 20x20 x 25 generations x 50 runs.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/batch.hpp"
#include "life/variants.hpp"
#include "stats/confidence.hpp"
#include "stats/summary.hpp"

using namespace uncertain;
using namespace uncertain::life;

namespace {

struct SweepPoint
{
    double errorMean;
    double errorLo;
    double errorHi;
    double samplesPerUpdate;
};

SweepPoint
sweep(double sigma, const std::string& variantName,
      std::size_t boardSize, std::size_t generations,
      std::size_t runs, Rng& rng, core::BatchSampler* batch)
{
    core::ConditionalOptions options;
    options.sprt.batchSize = 8;
    options.sprt.maxSamples = 160;

    stats::OnlineSummary errors;
    stats::OnlineSummary samples;
    for (std::size_t r = 0; r < runs; ++r) {
        Board board(boardSize, boardSize);
        board.randomize(rng, 0.35);

        std::unique_ptr<LifeVariant> variant;
        if (variantName == "NaiveLife")
            variant = std::make_unique<NaiveLife>(sigma);
        else if (variantName == "SensorLife")
            variant = std::make_unique<SensorLife>(sigma, options);
        else if (variantName == "BayesLife")
            variant = std::make_unique<BayesLife>(sigma, options);
        else
            variant = std::make_unique<JointBayesLife>(sigma, 5,
                                                       options);
        // NaiveLife never samples an Uncertain, so only the
        // SensorLife family has an engine to switch.
        if (auto* sensorVariant =
                dynamic_cast<SensorLife*>(variant.get()))
            sensorVariant->useBatchEngine(batch);

        RunStats stats =
            runNoisyGame(board, *variant, generations, rng);
        errors.add(stats.errorRate());
        samples.add(stats.samplesPerUpdate());
    }
    stats::Interval ci =
        runs >= 2 ? stats::meanConfidenceInterval(errors)
                  : stats::Interval{errors.mean(), errors.mean()};
    return {errors.mean(), ci.lo, ci.hi, samples.mean()};
}

} // namespace

int
main(int argc, char** argv)
{
    bool paper = bench::hasFlag(argc, argv, "--paper");
    bool verbose = bench::hasFlag(argc, argv, "--verbose");
    std::string engine = bench::engineFlag(argc, argv);
    const std::size_t boardSize = paper ? 20 : 10;
    const std::size_t generations = paper ? 25 : 10;
    const std::size_t runs = paper ? 50 : 6;

    // Every cell update rebuilds its neighbor-sum graph, so the batch
    // engine here runs under constant PlanCache churn by design.
    core::BatchSampler batchSampler;
    core::BatchSampler* batch =
        engine == "batch" ? &batchSampler : nullptr;

    bench::banner("Figure 14: SensorLife error rates (a) and "
                  "sampling cost (b)");
    std::printf("board %zux%zu, %zu generations, %zu runs per point"
                "%s\n\n",
                boardSize, boardSize, generations, runs,
                paper ? " (paper scale)" : " (quick; --paper for "
                                           "full scale)");

    const std::vector<double> sigmas{0.05, 0.1, 0.15, 0.2, 0.25,
                                     0.3, 0.35, 0.4};
    // JointBayesLife is our implementation of the paper's
    // joint-likelihood future-work note (section 5.2).
    const std::vector<std::string> variants{
        "NaiveLife", "SensorLife", "BayesLife", "JointBayesLife"};

    for (const auto& name : variants) {
        std::printf("--- %s ---\n", name.c_str());
        bench::Table table({"sigma", "error rate", "ci lo", "ci hi",
                            "samples/update"});
        Rng rng(14);
        for (double sigma : sigmas) {
            SweepPoint p = sweep(sigma, name, boardSize, generations,
                                 runs, rng, batch);
            table.row({sigma, p.errorMean, p.errorLo, p.errorHi,
                       p.samplesPerUpdate});
        }
        std::printf("\n");
    }

    if (batch && verbose) {
        core::PlanCacheStats cacheStats = batch->planCache()->stats();
        std::printf("batch engine: PlanCache hits %llu, misses %llu, "
                    "evictions %llu @ block %zu\n\n",
                    static_cast<unsigned long long>(cacheStats.hits),
                    static_cast<unsigned long long>(cacheStats.misses),
                    static_cast<unsigned long long>(
                        cacheStats.evictions),
                    batch->blockSize());
    }

    std::printf(
        "Shape checks (Figure 14): Naive error is flat (boundary "
        "coin flips and the\nnever-firing float `== 3` birth test are "
        "amplitude-independent); Sensor error\nis ~0 at low sigma and "
        "grows with noise; Bayes is ~0 through sigma ~0.3 and\n"
        "breaks down near 0.4, the paper's stated limit of per-sample "
        "snapping;\nJointBayesLife (the paper's joint-likelihood "
        "future-work note) stays ~0\nthroughout. Known deviation, see "
        "EXPERIMENTS.md: past sigma ~0.3 the strict\nmore-likely-than-"
        "not reading of the continuous birth rule fails, so Sensor\n"
        "approaches Naive from below instead of staying strictly "
        "under it.\n");
    return 0;
}
