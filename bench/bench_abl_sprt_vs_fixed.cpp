/**
 * @file
 * Ablation: the paper's goal-directed SPRT sampling vs. a fixed
 * sample pool (section 4.3's claim against "previous random sampling
 * approaches, which compute with a fixed pool of samples"). For a
 * range of true probabilities we compare decision error and sampling
 * cost of the SPRT, a Pocock group-sequential test, and fixed-N
 * evaluation.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/core.hpp"
#include "random/bernoulli.hpp"

using namespace uncertain;

namespace {

struct Outcome
{
    double errorRate;
    double meanSamples;
};

Outcome
evaluateStrategy(double trueP, const core::ConditionalOptions& options,
                 std::size_t trials, Rng& rng)
{
    auto coin = Uncertain<bool>::fromSampler(
        [trueP](Rng& r) { return r.nextBool(trueP); }, "coin");
    // Truth for "Pr > 0.5": defined outside the indifference band.
    bool truth = trueP > 0.5;
    std::size_t wrong = 0;
    std::size_t totalSamples = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        auto result = coin.evaluate(0.5, options, rng);
        totalSamples += result.samplesUsed;
        if (result.toBool() != truth)
            ++wrong;
    }
    return {static_cast<double>(wrong) / trials,
            static_cast<double>(totalSamples) / trials};
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Ablation: SPRT vs. group-sequential vs. fixed-N "
                  "conditional evaluation");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    const std::size_t trials = paper ? 5000 : 800;
    Rng rng(41);

    std::vector<double> ps{0.2, 0.4, 0.45, 0.55, 0.6, 0.7, 0.9};

    core::ConditionalOptions sprt;
    sprt.sprt.maxSamples = 1000;

    core::ConditionalOptions group;
    group.strategy = core::ConditionalStrategy::GroupSequential;
    group.sprt.maxSamples = 1000;
    group.groupLooks = 5;

    core::ConditionalOptions fixedSmall;
    fixedSmall.strategy = core::ConditionalStrategy::FixedSample;
    fixedSmall.fixedSamples = 30;

    core::ConditionalOptions fixedBig;
    fixedBig.strategy = core::ConditionalStrategy::FixedSample;
    fixedBig.fixedSamples = 1000;

    struct Strategy
    {
        const char* name;
        const core::ConditionalOptions* options;
    };
    std::vector<Strategy> strategies{
        {"sprt", &sprt},
        {"group-seq(5)", &group},
        {"fixed-30", &fixedSmall},
        {"fixed-1000", &fixedBig},
    };

    for (const auto& strategy : strategies) {
        std::printf("--- %s ---\n", strategy.name);
        bench::Table table({"true p", "wrong decisions",
                            "mean samples"});
        for (double p : ps) {
            Outcome o =
                evaluateStrategy(p, *strategy.options, trials, rng);
            table.row({p, o.errorRate, o.meanSamples});
        }
        std::printf("\n");
    }

    std::printf("Shape checks: the SPRT matches fixed-1000's accuracy "
                "at a fraction of\nits cost for easy questions "
                "(p far from 0.5), and beats fixed-30's\naccuracy "
                "near the threshold by spending samples only where "
                "they are\nneeded. The group-sequential variant "
                "bounds the worst-case cost.\n");
    return 0;
}
