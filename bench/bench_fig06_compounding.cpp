/**
 * @file
 * Figure 6: computation compounds uncertainty. The distribution of
 * c = a + b is wider than either operand's.
 */

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/core.hpp"
#include "core/inspect.hpp"
#include "random/gaussian.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

using namespace uncertain;

namespace {

void
describe(const char* name, const Uncertain<double>& variable,
         std::size_t n, Rng& rng, core::BatchSampler* batch)
{
    stats::OnlineSummary summary;
    std::vector<double> samples =
        batch ? variable.takeSamples(n, rng, *batch)
              : variable.takeSamples(n, rng);
    summary.addAll(samples);
    std::printf("%s: mean %+.3f, stddev %.3f\n", name, summary.mean(),
                summary.stddev());
    stats::Histogram histogram(-8.0, 12.0, 25);
    histogram.addAll(samples);
    std::printf("%s\n", histogram.render(40).c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Figure 6: computation compounds uncertainty "
                  "(c = a + b)");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    bool verbose = bench::hasFlag(argc, argv, "--verbose");
    std::string engine = bench::engineFlag(argc, argv);
    const std::string backendName = bench::backendFlag(argc, argv);
    const simd::ExecBackend backend = bench::applyBackend(backendName);
    const std::size_t n = paper ? 400000 : 60000;

    Rng rng(6);
    core::BatchOptions batchConfig;
    batchConfig.optimizer.backend = backend;
    core::BatchSampler batchSampler(batchConfig);
    core::BatchSampler* batch =
        engine == "batch" ? &batchSampler : nullptr;
    auto a = core::fromDistribution(
        std::make_shared<random::Gaussian>(1.0, 1.0));
    auto b = core::fromDistribution(
        std::make_shared<random::Gaussian>(2.0, 1.5));
    auto c = a + b;

    describe("a ~ N(1, 1.0)  ", a, n, rng, batch);
    describe("b ~ N(2, 1.5)  ", b, n, rng, batch);
    describe("c = a + b      ", c, n, rng, batch);

    if (batch && verbose) {
        std::printf(
            "plan (c = a + b): %s\n",
            core::planReport(core::planStats(c, *batch),
                             batch->planCache()->stats(),
                             batch->blockSize(),
                             core::planExecCounters(c, *batch))
                .c_str());
    }

    if (batch && backendName == "jit") {
        // Compile-time amortization for the figure's own graph: the
        // first block pays plan build (plus fragment compilation when
        // the run is long enough to fuse), later blocks run from the
        // caches. Fresh graphs and samplers so nothing is reused.
        const std::size_t block = batchSampler.blockSize();
        const std::size_t steadyBlocks = 50;
        Rng timingRng(7);
        auto measure = [&](simd::ExecBackend be, double* firstSec,
                           double* steadySec, std::uint64_t* compileNs,
                           std::size_t* fragments) {
            auto freshA = core::fromDistribution(
                std::make_shared<random::Gaussian>(1.0, 1.0));
            auto freshB = core::fromDistribution(
                std::make_shared<random::Gaussian>(2.0, 1.5));
            auto freshC = freshA + freshB;
            core::BatchOptions config;
            config.optimizer.backend = be;
            core::BatchSampler sampler(config);
            *firstSec = bench::timeSeconds([&] {
                (void)freshC.takeSamples(block, timingRng, sampler);
            });
            *steadySec =
                bench::timeSeconds([&] {
                    for (std::size_t i = 0; i < steadyBlocks; ++i)
                        (void)freshC.takeSamples(block, timingRng,
                                                 sampler);
                })
                / static_cast<double>(steadyBlocks);
            auto stats = core::planStats(freshC, sampler);
            *compileNs = stats.jitCompileNanos;
            *fragments = stats.jitFragments;
        };
        double jitFirst = 0.0, jitSteady = 0.0;
        double simdFirst = 0.0, simdSteady = 0.0;
        std::uint64_t compileNs = 0, simdCompileNs = 0;
        std::size_t fragments = 0, simdFragments = 0;
        measure(simd::ExecBackend::Jit, &jitFirst, &jitSteady,
                &compileNs, &fragments);
        measure(simd::ExecBackend::Simd, &simdFirst, &simdSteady,
                &simdCompileNs, &simdFragments);
        const double gain = simdSteady - jitSteady;
        const double breakEven =
            gain > 0.0 ? static_cast<double>(compileNs) * 1e-9 / gain
                       : -1.0;
        std::printf(
            "jit amortization (c = a + b, block %zu): %zu fragments, "
            "compile %.1f us; first block %.3g M items/s, steady %.3g "
            "M items/s (simd steady %.3g M); break-even %.1f blocks\n",
            block, fragments, static_cast<double>(compileNs) * 1e-3,
            static_cast<double>(block) / jitFirst * 1e-6,
            static_cast<double>(block) / jitSteady * 1e-6,
            static_cast<double>(block) / simdSteady * 1e-6, breakEven);
    }

    std::printf("Shape check: stddev(c) = sqrt(1 + 2.25) = 1.80 > "
                "max(stddev(a), stddev(b)).\n");
    return 0;
}
