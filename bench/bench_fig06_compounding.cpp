/**
 * @file
 * Figure 6: computation compounds uncertainty. The distribution of
 * c = a + b is wider than either operand's.
 */

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/core.hpp"
#include "core/inspect.hpp"
#include "random/gaussian.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

using namespace uncertain;

namespace {

void
describe(const char* name, const Uncertain<double>& variable,
         std::size_t n, Rng& rng, core::BatchSampler* batch)
{
    stats::OnlineSummary summary;
    std::vector<double> samples =
        batch ? variable.takeSamples(n, rng, *batch)
              : variable.takeSamples(n, rng);
    summary.addAll(samples);
    std::printf("%s: mean %+.3f, stddev %.3f\n", name, summary.mean(),
                summary.stddev());
    stats::Histogram histogram(-8.0, 12.0, 25);
    histogram.addAll(samples);
    std::printf("%s\n", histogram.render(40).c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Figure 6: computation compounds uncertainty "
                  "(c = a + b)");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    bool verbose = bench::hasFlag(argc, argv, "--verbose");
    std::string engine = bench::engineFlag(argc, argv);
    const simd::ExecBackend backend =
        bench::applyBackend(bench::backendFlag(argc, argv));
    const std::size_t n = paper ? 400000 : 60000;

    Rng rng(6);
    core::BatchOptions batchConfig;
    batchConfig.optimizer.backend = backend;
    core::BatchSampler batchSampler(batchConfig);
    core::BatchSampler* batch =
        engine == "batch" ? &batchSampler : nullptr;
    auto a = core::fromDistribution(
        std::make_shared<random::Gaussian>(1.0, 1.0));
    auto b = core::fromDistribution(
        std::make_shared<random::Gaussian>(2.0, 1.5));
    auto c = a + b;

    describe("a ~ N(1, 1.0)  ", a, n, rng, batch);
    describe("b ~ N(2, 1.5)  ", b, n, rng, batch);
    describe("c = a + b      ", c, n, rng, batch);

    if (batch && verbose) {
        std::printf(
            "plan (c = a + b): %s\n",
            core::planReport(core::planStats(c, *batch),
                             batch->planCache()->stats(),
                             batch->blockSize(),
                             core::planExecCounters(c, *batch))
                .c_str());
    }

    std::printf("Shape check: stddev(c) = sqrt(1 + 2.25) = 1.80 > "
                "max(stddev(a), stddev(b)).\n");
    return 0;
}
