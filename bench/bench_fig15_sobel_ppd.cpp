/**
 * @file
 * Figure 15: the posterior predictive distribution of the
 * NN-approximated Sobel operator at a single input, compared with
 * Parrot's single point estimate and the true output. Searches the
 * evaluation set for an input where Parrot commits a false positive
 * that the evidence view exposes.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch.hpp"
#include "nn/parakeet.hpp"
#include "nn/sobel.hpp"
#include "stats/histogram.hpp"

using namespace uncertain;
using namespace uncertain::nn;

int
main(int argc, char** argv)
{
    bench::banner("Figure 15: Sobel posterior predictive distribution "
                  "vs. Parrot's point estimate");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    std::string engine = bench::engineFlag(argc, argv);
    // --engine batch: evidence draws over the PPD pool leaf run
    // through columnar plans instead of the per-sample tree walk.
    core::BatchSampler sampler;
    const std::size_t trainCount = paper ? 5000 : 2000;
    const std::size_t evalCount = paper ? 500 : 300;

    // Same generalization-error regime as bench_fig16 (see there).
    const double pixelNoise = 0.06;
    Rng rng(15);
    Dataset train = makeSobelDataset(trainCount, rng, pixelNoise);
    ParakeetOptions options;
    options.topology = {9, 4, 1};
    options.sgd.epochs = 25;
    options.hmc.burnIn = 200;
    options.hmc.posteriorSamples = 64;
    options.hmc.thinning = 5;
    options.hmc.noiseSigma = 0.2;
    options.hmcDataLimit = 500;
    Parakeet model = Parakeet::train(train, options, rng);
    std::printf("Parrot training RMS error: %.3f  [paper: 0.034]\n\n",
                std::sqrt(model.parrotTrainingMse()));

    // Find a Parrot false positive (non-edge reported as edge) whose
    // posterior evidence is moderate — the figure's situation, where
    // the point estimate is confident but the distribution is not.
    Dataset eval = makeSobelDataset(evalCount, rng, pixelNoise);
    auto evidenceFraction = [&](std::size_t i) {
        auto predictions = model.posteriorPredictions(eval.inputs[i]);
        std::size_t above = 0;
        for (double p : predictions)
            above += p > kEdgeThreshold ? 1 : 0;
        return static_cast<double>(above)
               / static_cast<double>(predictions.size());
    };

    std::size_t chosen = 0;
    double bestScore = 1e9;
    bool foundFalsePositive = false;
    for (std::size_t i = 0; i < eval.size(); ++i) {
        double truth = eval.targets[i];
        double parrot = model.parrotPredict(eval.inputs[i]);
        if (truth <= kEdgeThreshold && parrot > kEdgeThreshold) {
            foundFalsePositive = true;
            double score = std::abs(evidenceFraction(i) - 0.7);
            if (score < bestScore) {
                bestScore = score;
                chosen = i;
            }
        }
    }
    if (!foundFalsePositive) {
        // Fall back to the largest overestimate.
        double worstGap = -1e9;
        for (std::size_t i = 0; i < eval.size(); ++i) {
            double gap = model.parrotPredict(eval.inputs[i])
                         - eval.targets[i];
            if (gap > worstGap) {
                worstGap = gap;
                chosen = i;
            }
        }
        std::printf("(no strict false positive in this evaluation "
                    "set; showing the largest overestimate)\n");
    }
    const std::size_t worst = chosen;

    double truth = eval.targets[worst];
    double parrot = model.parrotPredict(eval.inputs[worst]);
    std::vector<double> ppd =
        model.posteriorPredictions(eval.inputs[worst]);

    std::printf("true output s(p):          %.4f\n", truth);
    std::printf("Parrot point estimate:     %.4f  (reports an edge: "
                "%s)\n",
                parrot, parrot > kEdgeThreshold ? "YES" : "no");
    auto evidence = model.predict(eval.inputs[worst]) > kEdgeThreshold;
    double pEdge = engine == "batch"
                       ? evidence.probability(4000, rng, sampler)
                       : evidence.probability(4000, rng);
    std::printf("evidence Pr[s(p) > 0.1]:   %.2f  [paper's example: "
                "0.70]\n\n",
                pEdge);

    std::printf("posterior predictive distribution (pool of %zu "
                "networks):\n",
                ppd.size());
    auto histogram = stats::Histogram::fromSamples(ppd, 20);
    std::printf("%s", histogram.render(40).c_str());
    std::printf("\nShape check: the distribution spreads around the "
                "truth; the single\nParrot value sits in its upper "
                "tail, which is exactly how the false\npositive "
                "arises.\n");
    return 0;
}
