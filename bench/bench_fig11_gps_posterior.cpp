/**
 * @file
 * Figure 11: the GPS posterior is a Rayleigh distribution over the
 * Earth's surface — the true location is *unlikely* to be at the
 * reported center, and most likely at a fixed radius from it.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "gps/gps_library.hpp"
#include "random/rayleigh.hpp"
#include "stats/histogram.hpp"

using namespace uncertain;
using namespace uncertain::gps;

int
main(int argc, char** argv)
{
    bench::banner("Figure 11: the GPS posterior "
                  "Rayleigh(eps / sqrt(ln 400))");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    const std::size_t n = paper ? 500000 : 80000;
    const double epsilon = 4.0;

    auto radial = random::Rayleigh::fromHorizontalAccuracy(epsilon);
    std::printf("horizontal accuracy eps:   %.1f m (95%% radius)\n",
                epsilon);
    std::printf("Rayleigh scale rho:        %.3f m "
                "(= eps / sqrt(ln 400))\n",
                radial.rho());
    std::printf("density mode (peak):       %.3f m from the center\n",
                radial.mode());
    std::printf("mean radial error:         %.3f m\n", radial.mean());
    std::printf("Pr[within eps]:            %.4f (by construction "
                "0.95)\n",
                radial.cdf(epsilon));
    std::printf("Pr[within 0.5 m of center]: %.4f -- the center is "
                "an unlikely place\n\n",
                radial.cdf(0.5));

    // Radial histogram of posterior samples from the library.
    GeoCoordinate center{47.62, -122.35};
    auto location = getLocation({center, epsilon, 0.0});
    Rng rng(11);
    stats::Histogram histogram(0.0, 8.0, 24);
    for (const auto& sample : location.takeSamples(n, rng))
        histogram.add(distanceMeters(center, sample));
    std::printf("radial distance from the reported fix (m):\n%s",
                histogram.render(44).c_str());
    std::printf("\nShape check: density rises from zero, peaks near "
                "rho = %.2f m, decays —\nnot a bell curve centered at "
                "the fix.\n",
                radial.mode());
    return 0;
}
