/**
 * @file
 * Figure 11: the GPS posterior is a Rayleigh distribution over the
 * Earth's surface — the true location is *unlikely* to be at the
 * reported center, and most likely at a fixed radius from it.
 *
 * On top of the shape exposition, this harness times the full
 * posterior-improvement pipeline built on that GPS model (the
 * section 5.1 chain behind Figure 13): speed from two fixes,
 * SIR-reweighted by the walking prior, then a downstream
 * distance-projection and a conditional over the posterior.
 * Axes:
 *   --engine {tree,batch}            per-sample walk vs columnar plans
 *   --scheme {multinomial,systematic} SIR resampling scheme
 *   --backend {auto,simd,scalar}     execution backend for the batch
 *                                    plans and bulk RNG/ziggurat layers
 *   --json FILE                      google-benchmark-style JSON for
 *                                    scripts/bench_compare.py
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/batch.hpp"
#include "gps/gps_library.hpp"
#include "gps/walking.hpp"
#include "random/rayleigh.hpp"
#include "stats/histogram.hpp"

using namespace uncertain;
using namespace uncertain::gps;

int
main(int argc, char** argv)
{
    bench::banner("Figure 11: the GPS posterior "
                  "Rayleigh(eps / sqrt(ln 400))");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    std::string engine = bench::engineFlag(argc, argv);
    std::string schemeName =
        bench::stringFlag(argc, argv, "--scheme", "multinomial");
    if (schemeName != "multinomial" && schemeName != "systematic") {
        std::fprintf(stderr,
                     "unknown --scheme '%s' (expected multinomial or "
                     "systematic)\n",
                     schemeName.c_str());
        return 2;
    }
    std::string jsonPath = bench::stringFlag(argc, argv, "--json", "");
    const simd::ExecBackend backend =
        bench::applyBackend(bench::backendFlag(argc, argv));
    const std::size_t n = paper ? 500000 : 80000;
    const double epsilon = 4.0;

    auto radial = random::Rayleigh::fromHorizontalAccuracy(epsilon);
    std::printf("horizontal accuracy eps:   %.1f m (95%% radius)\n",
                epsilon);
    std::printf("Rayleigh scale rho:        %.3f m "
                "(= eps / sqrt(ln 400))\n",
                radial.rho());
    std::printf("density mode (peak):       %.3f m from the center\n",
                radial.mode());
    std::printf("mean radial error:         %.3f m\n", radial.mean());
    std::printf("Pr[within eps]:            %.4f (by construction "
                "0.95)\n",
                radial.cdf(epsilon));
    std::printf("Pr[within 0.5 m of center]: %.4f -- the center is "
                "an unlikely place\n\n",
                radial.cdf(0.5));

    // Radial histogram of posterior samples from the library.
    GeoCoordinate center{47.62, -122.35};
    auto location = getLocation({center, epsilon, 0.0});
    Rng rng(11);
    stats::Histogram histogram(0.0, 8.0, 24);
    for (const auto& sample : location.takeSamples(n, rng))
        histogram.add(distanceMeters(center, sample));
    std::printf("radial distance from the reported fix (m):\n%s",
                histogram.render(44).c_str());
    std::printf("\nShape check: density rises from zero, peaks near "
                "rho = %.2f m, decays —\nnot a bell curve centered at "
                "the fix.\n\n",
                radial.mode());

    // ------------------------------------------------------------------
    // Posterior-improvement pipeline timing (--engine axis).
    // ------------------------------------------------------------------
    const std::size_t iterations = paper ? 60 : 20;
    inference::ReweightOptions options; // default pool sizes 4000/2000
    options.scheme = schemeName == "systematic"
                         ? inference::ResamplingScheme::Systematic
                         : inference::ResamplingScheme::Multinomial;
    core::BatchOptions batchConfig;
    batchConfig.optimizer.backend = backend;
    core::BatchSampler sampler(batchConfig);
    const bool batch = engine == "batch";
    if (batch)
        options.sampler = &sampler;

    const GpsFix earlier{center, 8.0, 0.0};
    const GpsFix later{destination(center, 0.3, 6.0), 8.0, 4.0};
    core::ConditionalOptions conditional;

    // One speed model for the fix pair; each iteration re-runs the
    // SIR improvement and the downstream queries against it (so the
    // batch engine's plan cache sees the same proposal graph, as a
    // deployed pipeline would).
    Uncertain<double> speed = speedFromFixes(earlier, later);

    Rng prng(1101);
    double checksum = 0.0;
    std::size_t briskCount = 0;
    // Best-of-repetitions timing: each repetition runs the full
    // pipeline loop, and the fastest one is reported, so scheduler
    // noise does not leak into the engine comparison.
    const std::size_t repetitions = 3;
    double seconds = 1e300;
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
        checksum = 0.0;
        briskCount = 0;
        double repSeconds = bench::timeSeconds([&] {
            for (std::size_t i = 0; i < iterations; ++i) {
                Uncertain<double> improved =
                    improveSpeed(speed, options, prng);
                // Downstream graph over the posterior pool leaf:
                // miles covered in the next five minutes at this
                // speed.
                Uncertain<double> projected = improved * (5.0 / 60.0);
                double mean =
                    batch
                        ? projected.expectedValue(2000, prng, sampler)
                        : projected.expectedValue(2000, prng);
                checksum += mean;
                Uncertain<bool> brisk = improved > kBriskWalkMph;
                bool decision =
                    batch ? brisk.pr(0.5, conditional, prng, sampler)
                          : brisk.pr(0.5, conditional, prng);
                briskCount += decision ? 1 : 0;
            }
        });
        seconds = std::min(seconds, repSeconds);
    }
    const double perSecond =
        static_cast<double>(iterations) / seconds;

    std::printf("posterior pipeline (%zu iterations, %zu/%zu SIR "
                "pool, %s resampling):\n",
                iterations, options.proposalSamples,
                options.resampleSize, schemeName.c_str());
    std::printf("  engine %-6s  %.3f s total, %.2f pipelines/s "
                "(mean projected %.3f mi, brisk %zu/%zu)\n",
                engine.c_str(), seconds, perSecond,
                checksum / static_cast<double>(iterations),
                briskCount, iterations);
    std::printf("\nCompare engines: run once with --engine tree and "
                "once with --engine batch;\nthe law is identical, "
                "only the sampling engine changes.\n");

    if (!jsonPath.empty()) {
        bench::writeBenchJson(
            jsonPath, {{"fig11/posterior_pipeline", perSecond}});
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}
