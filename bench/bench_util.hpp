/**
 * @file
 * Shared helpers for the figure-reproduction harnesses: aligned
 * table printing, a --paper flag that switches from the default
 * quick configuration to the paper's full experiment scale, a
 * --threads N axis for the parallel sampling engine, and a wall-clock
 * timer for serial-vs-parallel speedup rows.
 */

#ifndef UNCERTAIN_BENCH_BENCH_UTIL_HPP
#define UNCERTAIN_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/simd.hpp"

namespace uncertain {
namespace bench {

/** True when @p flag appears among the process arguments. */
inline bool
hasFlag(int argc, char** argv, const char* flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

/**
 * Value of an integer option given as "--name N" or "--name=N";
 * @p fallback when absent or malformed.
 */
inline long
intFlag(int argc, char** argv, const char* flag, long fallback)
{
    const std::size_t flagLen = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
            return std::atol(argv[i + 1]);
        if (std::strncmp(argv[i], flag, flagLen) == 0
            && argv[i][flagLen] == '=') {
            return std::atol(argv[i] + flagLen + 1);
        }
    }
    return fallback;
}

/**
 * The --threads axis shared by the harnesses: 1 (serial engine) when
 * absent.
 */
inline unsigned
threadsFlag(int argc, char** argv)
{
    long n = intFlag(argc, argv, "--threads", 1);
    return n < 1 ? 1u : static_cast<unsigned>(n);
}

/**
 * Value of a string option given as "--name value" or "--name=value";
 * @p fallback when absent.
 */
inline std::string
stringFlag(int argc, char** argv, const char* flag,
           const char* fallback)
{
    const std::size_t flagLen = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
            return argv[i + 1];
        if (std::strncmp(argv[i], flag, flagLen) == 0
            && argv[i][flagLen] == '=') {
            return argv[i] + flagLen + 1;
        }
    }
    return fallback;
}

/**
 * The --engine {tree,batch} axis: "tree" is the classic per-sample
 * DAG walk, "batch" the columnar plan engine (core::BatchSampler).
 * Exits with a usage message on any other value.
 */
inline std::string
engineFlag(int argc, char** argv)
{
    std::string engine = stringFlag(argc, argv, "--engine", "tree");
    if (engine != "tree" && engine != "batch") {
        std::fprintf(stderr,
                     "unknown --engine '%s' (expected tree or batch)\n",
                     engine.c_str());
        std::exit(2);
    }
    return engine;
}

/**
 * The --backend {auto,jit,simd,scalar} axis shared by the harnesses:
 * which execution backend batch plans use for elementwise strips.
 * Exits with a usage message on any other value.
 */
inline std::string
backendFlag(int argc, char** argv)
{
    std::string backend = stringFlag(argc, argv, "--backend", "auto");
    if (backend != "auto" && backend != "jit" && backend != "simd"
        && backend != "scalar") {
        std::fprintf(stderr,
                     "unknown --backend '%s' (expected auto, jit, "
                     "simd or scalar)\n",
                     backend.c_str());
        std::exit(2);
    }
    return backend;
}

/**
 * Map a backendFlag() value onto PlanOptions::backend, flipping the
 * process-wide force-scalar switch as a side effect: "scalar" must
 * drop the RNG-fill and ziggurat layers (which sit below the plan and
 * have no per-plan toggle) to their scalar paths together with the
 * strips, so scalar-vs-simd comparisons measure the whole stack.
 * "simd" likewise pins the plan to the kernel strips so simd-vs-jit
 * rows compare rungs rather than both resolving to the fragments.
 */
inline simd::ExecBackend
applyBackend(const std::string& backend)
{
    simd::setForceScalar(backend == "scalar");
    return backend == "scalar" ? simd::ExecBackend::Scalar
           : backend == "simd" ? simd::ExecBackend::Simd
           : backend == "jit"  ? simd::ExecBackend::Jit
                               : simd::ExecBackend::Auto;
}

/** Wall-clock seconds spent in @p fn. */
template <typename F>
double
timeSeconds(F&& fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/**
 * Write a minimal google-benchmark-compatible JSON file (the subset
 * scripts/bench_compare.py reads: benchmarks[].name and
 * items_per_second) so printf-style figure harnesses can feed the
 * same CI gate as the google-benchmark micro suites.
 */
inline void
writeBenchJson(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& itemsPerSecond)
{
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    std::fprintf(out, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < itemsPerSecond.size(); ++i) {
        std::fprintf(out,
                     "    {\"name\": \"%s\", "
                     "\"items_per_second\": %.6f}%s\n",
                     itemsPerSecond[i].first.c_str(),
                     itemsPerSecond[i].second,
                     i + 1 < itemsPerSecond.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
}

/** Print a banner naming the figure being reproduced. */
inline void
banner(const std::string& title)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("==============================================================\n");
}

/** Fixed-width row printing: header then rows of doubles. */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns)
        : columns_(std::move(columns))
    {
        for (std::size_t i = 0; i < columns_.size(); ++i)
            std::printf("%-16s", columns_[i].c_str());
        std::printf("\n");
        for (std::size_t i = 0; i < columns_.size(); ++i)
            std::printf("%-16s", "---------------");
        std::printf("\n");
    }

    void
    row(const std::vector<double>& values)
    {
        for (double v : values)
            std::printf("%-16.4f", v);
        std::printf("\n");
    }

    void
    mixedRow(const std::vector<std::string>& values)
    {
        for (const auto& v : values)
            std::printf("%-16s", v.c_str());
        std::printf("\n");
    }

  private:
    std::vector<std::string> columns_;
};

} // namespace bench
} // namespace uncertain

#endif // UNCERTAIN_BENCH_BENCH_UTIL_HPP
