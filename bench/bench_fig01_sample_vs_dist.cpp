/**
 * @file
 * Figure 1: a single sample is a poor approximation of the entire
 * distribution. Draws one sample from a Gaussian, then the full
 * histogram, and reports how misleading the single draw can be.
 *
 * --threads N adds a serial-vs-parallel batch-sampling comparison on
 * an Uncertain<double> expression graph. --engine {tree,batch}
 * selects the engine that draws the histogram's samples (through the
 * Uncertain<double> surface) and, for batch, appends a tree-vs-batch
 * throughput table on the same shared-leaf graph.
 * --backend {auto,simd,scalar} pins the execution backend for the
 * batch plans and the bulk RNG/ziggurat layers.
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <set>

#include "bench_util.hpp"
#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "support/rng.hpp"

using namespace uncertain;

namespace {

/** Serial vs parallel takeSamples over a small expression graph. */
void
reportParallelSpeedup(unsigned threads, std::size_t n)
{
    // A 5-node graph (2 leaves, 3 operators) with a shared leaf —
    // the memo-table hot path, not just raw leaf draws.
    auto x = core::fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
    auto y = core::fromDistribution(
        std::make_shared<random::Gaussian>(1.0, 2.0));
    auto expr = (y + x) + x;

    std::printf("\nParallel batch sampling of (Y + X) + X, n = %zu\n",
                n);
    bench::Table table({"threads", "seconds", "speedup", "mean"});

    Rng serialRng(11);
    std::vector<double> serialSamples;
    double serialSeconds = bench::timeSeconds([&] {
        serialSamples = expr.takeSamples(n, serialRng);
    });
    double serialMean = 0.0;
    for (double v : serialSamples)
        serialMean += v;
    serialMean /= static_cast<double>(n);
    table.row({1.0, serialSeconds, 1.0, serialMean});

    std::set<unsigned> counts{2u, 4u};
    if (threads > 1)
        counts.insert(threads);
    for (unsigned t : counts) {
        Rng rng(11);
        core::ParallelSampler sampler(core::ParallelOptions{t, 4096});
        std::vector<double> samples;
        double seconds = bench::timeSeconds(
            [&] { samples = expr.takeSamples(n, rng, sampler); });
        double mean = 0.0;
        for (double v : samples)
            mean += v;
        mean /= static_cast<double>(n);
        table.row({static_cast<double>(t), seconds,
                   serialSeconds / seconds, mean});
    }
}

/** Tree-walk vs columnar-plan throughput on (Y + X) + X. */
void
reportEngineSpeedup(std::size_t n)
{
    auto x = core::fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
    auto y = core::fromDistribution(
        std::make_shared<random::Gaussian>(1.0, 2.0));
    auto expr = (y + x) + x;

    std::printf("\nEngine comparison on (Y + X) + X, n = %zu\n", n);
    bench::Table table({"engine", "seconds", "speedup", "mean"});

    auto meanOf = [](const std::vector<double>& samples) {
        double total = 0.0;
        for (double v : samples)
            total += v;
        return total / static_cast<double>(samples.size());
    };

    Rng treeRng(11);
    std::vector<double> treeSamples;
    double treeSeconds = bench::timeSeconds(
        [&] { treeSamples = expr.takeSamples(n, treeRng); });
    table.mixedRow({"tree", std::to_string(treeSeconds), "1.0",
                    std::to_string(meanOf(treeSamples))});

    Rng batchRng(11);
    core::BatchSampler sampler;
    std::vector<double> batchSamples;
    double batchSeconds = bench::timeSeconds(
        [&] { batchSamples = expr.takeSamples(n, batchRng, sampler); });
    table.mixedRow({"batch", std::to_string(batchSeconds),
                    std::to_string(treeSeconds / batchSeconds),
                    std::to_string(meanOf(batchSamples))});
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Figure 1: one sample vs. the distribution "
                  "(Gaussian(0, 1))");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    const unsigned threads = bench::threadsFlag(argc, argv);
    const std::string engine = bench::engineFlag(argc, argv);
    bench::applyBackend(bench::backendFlag(argc, argv));
    const std::size_t n = paper ? 1000000 : 100000;

    random::Gaussian dist(0.0, 1.0);
    Rng rng(1);

    double single = dist.sample(rng);
    std::printf("single sample:          %+.3f\n", single);
    std::printf("distribution mean:      %+.3f\n", dist.mean());
    std::printf("single-sample error:    %+.3f (%.1f%% of the "
                "distribution is closer to the mean)\n\n",
                single - dist.mean(),
                100.0
                    * (dist.cdf(std::fabs(single))
                       - dist.cdf(-std::fabs(single))));

    stats::Histogram histogram(-4.0, 4.0, 33);
    stats::OnlineSummary summary;
    if (engine == "batch") {
        auto leaf = core::fromDistribution(
            std::make_shared<random::Gaussian>(0.0, 1.0));
        core::BatchSampler sampler;
        for (double x : leaf.takeSamples(n, rng, sampler)) {
            histogram.add(x);
            summary.add(x);
        }
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            double x = dist.sample(rng);
            histogram.add(x);
            summary.add(x);
        }
    }
    std::printf("%zu samples (%s engine): mean %+.4f, stddev %.4f\n\n",
                n, engine.c_str(), summary.mean(), summary.stddev());
    std::printf("%s", histogram.render(48).c_str());
    std::printf("\nPaper's point: treating the single draw as the "
                "value discards the\nentire shape above.\n");

    if (engine == "batch")
        reportEngineSpeedup(paper ? 4000000 : 1000000);
    if (threads > 1)
        reportParallelSpeedup(threads, paper ? 4000000 : 1000000);
    return 0;
}
