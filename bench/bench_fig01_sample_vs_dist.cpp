/**
 * @file
 * Figure 1: a single sample is a poor approximation of the entire
 * distribution. Draws one sample from a Gaussian, then the full
 * histogram, and reports how misleading the single draw can be.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "random/gaussian.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "support/rng.hpp"

using namespace uncertain;

int
main(int argc, char** argv)
{
    bench::banner("Figure 1: one sample vs. the distribution "
                  "(Gaussian(0, 1))");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    const std::size_t n = paper ? 1000000 : 100000;

    random::Gaussian dist(0.0, 1.0);
    Rng rng(1);

    double single = dist.sample(rng);
    std::printf("single sample:          %+.3f\n", single);
    std::printf("distribution mean:      %+.3f\n", dist.mean());
    std::printf("single-sample error:    %+.3f (%.1f%% of the "
                "distribution is closer to the mean)\n\n",
                single - dist.mean(),
                100.0
                    * (dist.cdf(std::fabs(single))
                       - dist.cdf(-std::fabs(single))));

    stats::Histogram histogram(-4.0, 4.0, 33);
    stats::OnlineSummary summary;
    for (std::size_t i = 0; i < n; ++i) {
        double x = dist.sample(rng);
        histogram.add(x);
        summary.add(x);
    }
    std::printf("%zu samples: mean %+.4f, stddev %.4f\n\n", n,
                summary.mean(), summary.stddev());
    std::printf("%s", histogram.render(48).c_str());
    std::printf("\nPaper's point: treating the single draw as the "
                "value discards the\nentire shape above.\n");
    return 0;
}
