/**
 * @file
 * Figure 3: speed computed naively from GPS produces absurd walking
 * speeds. Reproduces the paper's 15-minute walk (simulated ground
 * truth, phone-like correlated GPS errors with glitches) and prints
 * the trace statistics the paper calls out: average ~3.5 mph, tens
 * of seconds above 7 mph (running pace), absurd peaks (30-59 mph).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "gps/trajectory.hpp"
#include "gps/walking.hpp"
#include "stats/summary.hpp"

using namespace uncertain;
using namespace uncertain::gps;

int
main(int argc, char** argv)
{
    bench::banner("Figure 3: naive speed computation on GPS data");
    bool paper = bench::hasFlag(argc, argv, "--paper");

    Rng rng(3);
    WalkConfig config;
    config.durationSeconds = paper ? 900.0 : 900.0; // the full 15 min
    auto truth = simulateWalk(config, rng);

    GpsSensorConfig sensorConfig;
    sensorConfig.epsilon95 = 2.0;
    sensorConfig.correlation = 0.95;
    sensorConfig.glitchProbability = 0.03;
    sensorConfig.glitchScale = 4.0;
    GpsSensor sensor(sensorConfig);
    auto fixes = observeWalk(truth, sensor, rng);

    std::vector<double> naive;
    stats::OnlineSummary naiveSummary;
    stats::OnlineSummary truthSummary;
    int aboveRunning = 0;
    int absurd = 0;
    for (std::size_t i = 1; i < fixes.size(); ++i) {
        double mph = naiveSpeedMph(fixes[i - 1], fixes[i]);
        naive.push_back(mph);
        naiveSummary.add(mph);
        truthSummary.add(truth[i].speedMph);
        aboveRunning += mph > 7.0 ? 1 : 0;
        absurd += mph > 20.0 ? 1 : 0;
    }

    std::printf("walk duration:            %.0f s at 1 Hz\n",
                config.durationSeconds);
    std::printf("true average speed:       %.2f mph (max %.2f)\n",
                truthSummary.mean(), truthSummary.max());
    std::printf("naive average speed:      %.2f mph   [paper: 3.5]\n",
                naiveSummary.mean());
    std::printf("naive max speed:          %.1f mph   [paper: 59]\n",
                naiveSummary.max());
    std::printf("seconds above 7 mph:      %d        [paper: 35]\n",
                aboveRunning);
    std::printf("seconds above 20 mph:     %d\n\n", absurd);

    std::printf("worst 10 naive readings (mph):");
    std::vector<double> sorted = naive;
    std::sort(sorted.rbegin(), sorted.rend());
    for (int i = 0; i < 10 && i < static_cast<int>(sorted.size());
         ++i) {
        std::printf(" %.1f", sorted[static_cast<std::size_t>(i)]);
    }
    std::printf("\n\nShape check: a ~3 mph walk, yet the naive trace "
                "reports running pace\nrepeatedly and absurd peaks — "
                "compounded fix error, exactly Figure 3.\n");
    return 0;
}
