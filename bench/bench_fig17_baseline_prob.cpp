/**
 * @file
 * Figure 17 / section 6: the cost of general-purpose inference on
 * the alarm model. Rejection sampling pays ~1/Pr[alarm] model
 * executions per posterior sample (the paper measured Church taking
 * 20 s for 100 samples), while Uncertain<T>'s goal-directed
 * conditional answers its forward question in a few dozen draws.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/core.hpp"
#include "prob/mcmc.hpp"
#include "prob/model.hpp"
#include "stats/summary.hpp"

using namespace uncertain;

int
main(int argc, char** argv)
{
    bench::banner("Figure 17: probabilistic-programming baseline on "
                  "the alarm model");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    const std::size_t posteriorSamples = paper ? 1000 : 100;

    Rng rng(17);

    // Exact answer for reference.
    const double pe = 0.0001;
    const double pb = 0.001;
    const double pAlarm = pe + pb - pe * pb;
    const double exact =
        (pe * 0.7 + (1.0 - pe) * pb * 0.99) / pAlarm;
    std::printf("analytic Pr[phoneWorking | alarm] = %.4f, "
                "Pr[alarm] = %.5f\n\n",
                exact, pAlarm);

    // Rejection-sampling query (the Church-style baseline).
    auto start = std::chrono::steady_clock::now();
    auto posterior =
        prob::rejectionQuery(prob::alarmModel, posteriorSamples, rng);
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

    bench::Table table({"samples", "simulations", "accept rate",
                        "posterior mean", "seconds"});
    table.row({static_cast<double>(posterior.samples.size()),
               static_cast<double>(posterior.simulations),
               posterior.acceptanceRate(), posterior.mean(),
               elapsed});

    std::printf("\n[paper: Church needed ~20 s for 100 samples of "
                "this model; the\nbottleneck is the %.2f%% acceptance "
                "rate, which any rejection-based\nengine shares.]\n\n",
                100.0 * pAlarm);

    // Trace MH (the Church-style engine): still pays the rare-event
    // tax at initialization, then mixes by re-simulating the model
    // once per step.
    {
        prob::McmcOptions mcmcOptions;
        mcmcOptions.burnIn = 200;
        mcmcOptions.thinning = 2;
        mcmcOptions.posteriorSamples = posteriorSamples;
        start = std::chrono::steady_clock::now();
        auto chain = prob::mcmcQuery(prob::alarmModelFixedStructure,
                                     mcmcOptions, rng);
        double mcmcElapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        std::printf("trace MH:  %zu samples, %zu model executions, "
                    "mean %.4f, accept %.2f, %.4f s\n",
                    chain.samples.size(), chain.modelExecutions,
                    stats::mean(chain.samples),
                    chain.acceptanceRate, mcmcElapsed);
    }

    // Likelihood weighting: hard observations make it degenerate to
    // rejection (almost every trace carries zero weight).
    {
        auto weighted = prob::likelihoodWeightedQuery(
            prob::alarmModel, 50000, rng);
        std::printf("likelihood weighting: %zu runs, effective "
                    "sample size %.1f (hard evidence wastes "
                    "almost all of them)\n\n",
                    weighted.simulations,
                    weighted.effectiveSampleSize());
    }

    // The Uncertain<T> side: programs consuming estimates ask
    // forward questions; the SPRT needs only a handful of draws.
    auto phoneWorking = Uncertain<bool>::fromSampler(
        [](Rng& r) {
            bool earthquake = r.nextBool(0.0001);
            return earthquake ? r.nextBool(0.7) : r.nextBool(0.99);
        },
        "phoneWorking");
    core::ConditionalOptions options;
    start = std::chrono::steady_clock::now();
    auto result = phoneWorking.evaluate(0.9, options, rng);
    double uncertainElapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    std::printf("Uncertain<T> forward conditional "
                "\"Pr[phoneWorking] > 0.9\":\n");
    std::printf("  decision: %s, %zu samples, %.6f s\n",
                result.toBool() ? "true" : "false",
                result.samplesUsed, uncertainElapsed);
    std::printf("  cost ratio (baseline simulations / SPRT samples): "
                "%.0fx\n",
                static_cast<double>(posterior.simulations)
                    / static_cast<double>(result.samplesUsed));

    std::printf("\nShape check: the conditional-distribution "
                "restriction (section 6) is\nworth orders of "
                "magnitude on this model.\n");
    return 0;
}
