/**
 * @file
 * Figure 10: domain knowledge as a prior improves GPS estimates —
 * "road snapping". A user drives along a road; the GPS fix lands
 * beside it; the road prior shifts the posterior mean from the raw
 * fix toward the road, unless the fix is emphatically off-road.
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/batch.hpp"
#include "gps/gps_library.hpp"
#include "gps/roads.hpp"

using namespace uncertain;
using namespace uncertain::gps;

int
main(int argc, char** argv)
{
    bench::banner("Figure 10: road snapping via a location prior");
    bool paper = bench::hasFlag(argc, argv, "--paper");
    std::string engine = bench::engineFlag(argc, argv);

    Rng rng(10);
    const GeoCoordinate center{47.6200, -122.3500};
    // One street running north-south through the center.
    RoadNetwork road({{destination(center, M_PI, 500.0),
                       destination(center, 0.0, 500.0)}});
    RoadPrior prior(road, 6.0);

    inference::ReweightOptions options;
    options.proposalSamples = paper ? 40000 : 8000;
    options.resampleSize = paper ? 20000 : 4000;
    // --engine batch: the SIR proposal pools and the sample loops
    // below run through columnar plans over the GPS leaf's bulk
    // sampler instead of the per-sample tree walk.
    core::BatchSampler sampler;
    const bool batch = engine == "batch";
    if (batch)
        options.sampler = &sampler;

    std::printf("true position: on the road; fixes displaced east by "
                "varying amounts\n(eps = 8 m). Distances are from "
                "the road centerline, meters.\n\n");

    bench::Table table({"fix offset", "raw E dist", "snapped E dist",
                        "shift toward road"});
    double seconds = bench::timeSeconds([&] {
        for (double offsetEast : {2.0, 5.0, 10.0, 15.0, 25.0, 60.0}) {
            GeoCoordinate fixCenter =
                destination(center, M_PI / 2.0, offsetEast);
            auto raw = getLocation({fixCenter, 8.0, 0.0});
            auto snapped = snapToRoads(raw, prior, options, rng);

            auto meanRoadDistance =
                [&](const Uncertain<GeoCoordinate>& u) {
                    double total = 0.0;
                    const std::size_t n = 2000;
                    auto points = batch ? u.takeSamples(n, rng, sampler)
                                        : u.takeSamples(n, rng);
                    for (const auto& p : points)
                        total += road.distanceToNearestRoad(p);
                    return total / static_cast<double>(n);
                };

            double rawDist = meanRoadDistance(raw);
            double snappedDist = meanRoadDistance(snapped);
            table.row({offsetEast, rawDist, snappedDist,
                       rawDist - snappedDist});
        }
    });
    std::printf("\nengine %s: %.3f s for 6 snap+score pipelines\n",
                engine.c_str(), seconds);

    std::printf("\nShape check (Figure 10): the posterior mean shifts "
                "from the raw fix\ntoward the road; the shift shrinks "
                "once the fix is so far off-road that\nthe uniform "
                "floor of the prior dominates (strong contrary "
                "evidence wins).\n");
    return 0;
}
