/**
 * @file
 * Load generator for the uncertainty server: a fleet of phones each
 * posting fixes at walking cadence and asking "am I walking briskly?"
 * — Pr queries against the builtin gaussian-chain model with a
 * sprinkling of Advise queries against the gps-speed posterior.
 * Closed-loop clients drive the loopback transport as fast as the
 * server answers, which measures the sustainable query capacity; at
 * 1 Hz per phone the sustained QPS is the supportable fleet size.
 *
 * Modes:
 *   --mode coalesced   (default) cross-request batching through the
 *                      shared plan cache
 *   --mode perrequest  the stateless baseline: every request compiles
 *                      its plans from scratch, batches of one
 *
 * The CI benchmarks job runs both and gates
 * serve/sustained_qps(coalesced) >= 2x serve/sustained_qps(perrequest)
 * via scripts/bench_compare.py --backend-gate.
 *
 * Flags: --clients N, --millis M, --workers W, --json PATH, --paper.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "serve/serve.hpp"

using namespace uncertain;
using Clock = std::chrono::steady_clock;

namespace {

serve::Request
briskQuery(std::uint64_t tenant, std::uint64_t id)
{
    serve::Request request;
    request.opcode = serve::Opcode::Pr;
    request.tenantId = tenant;
    request.requestId = id;
    request.modelId = serve::kModelGaussianChain;
    // Speed-like chain: mean 3.5 + 8 * 0.125 = 4.5 mph against a
    // 4 mph cut — a genuinely sequential (non-degenerate) test.
    request.params = {3.5, 1.5, 8.0, 4.0};
    request.threshold = 0.5;
    return request;
}

serve::Request
adviseQuery(std::uint64_t tenant, std::uint64_t id)
{
    serve::Request request;
    request.opcode = serve::Opcode::Advise;
    request.tenantId = tenant;
    request.requestId = id;
    request.modelId = serve::kModelGpsSpeed;
    // One shared fix-pair geometry: phones report quantized fixes so
    // the posterior instance (and its plans) are reused fleet-wide.
    request.params = {47.6, -122.3, 30.0, 0.7, 6.0, 3.0};
    return request;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Serving throughput: phone fleet vs. the "
                  "cross-request batching server");
    const bool paper = bench::hasFlag(argc, argv, "--paper");
    const std::string mode =
        bench::stringFlag(argc, argv, "--mode", "coalesced");
    if (mode != "coalesced" && mode != "perrequest") {
        std::fprintf(stderr,
                     "bench_serve: unknown --mode '%s' "
                     "(coalesced|perrequest)\n",
                     mode.c_str());
        return 2;
    }
    const bool perRequest = (mode == "perrequest");
    const std::size_t clients = static_cast<std::size_t>(
        bench::intFlag(argc, argv, "--clients", 32));
    const long millis =
        bench::intFlag(argc, argv, "--millis", paper ? 6000 : 1500);
    const std::size_t workers = static_cast<std::size_t>(
        bench::intFlag(argc, argv, "--workers", 2));
    const std::string json =
        bench::stringFlag(argc, argv, "--json", "");

    serve::ServerOptions options;
    options.workers = workers;
    options.queueCapacity = 4096;
    if (perRequest) {
        options.sharePlans = false;
        options.maxBatch = 1;
        options.batchWindowMicros = 0;
    }
    serve::UncertainServer server(options);
    server.start();

    // Warm both model instances (the gps build runs an SIR pool)
    // outside the measured window.
    {
        serve::LoopbackClient warm(server);
        warm.call(briskQuery(0, 0));
        warm.call(adviseQuery(0, 1));
    }

    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    const auto start = Clock::now();
    const auto deadline = start + std::chrono::milliseconds(millis);
    {
        std::vector<std::thread> fleet;
        fleet.reserve(clients);
        for (std::size_t phone = 0; phone < clients; ++phone) {
            fleet.emplace_back([&, phone] {
                serve::LoopbackClient client(server);
                std::uint64_t id = 0;
                while (Clock::now() < deadline) {
                    const serve::Request request =
                        (id % 8 == 7) ? adviseQuery(phone + 1, id)
                                      : briskQuery(phone + 1, id);
                    client.send(request);
                    serve::Response response;
                    if (client.receive(response)
                        && response.status == serve::Status::Ok) {
                        ++completed;
                    } else {
                        ++failed;
                    }
                    ++id;
                }
            });
        }
        for (std::thread& phone : fleet)
            phone.join();
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    const serve::ServerStats stats = serve::serverStats(server);
    const double qps =
        elapsed > 0.0
            ? static_cast<double>(completed.load()) / elapsed
            : 0.0;

    bench::Table table({"metric", "value"});
    table.mixedRow({"mode", mode});
    table.mixedRow({"clients", std::to_string(clients)});
    table.mixedRow({"replies ok", std::to_string(completed.load())});
    table.mixedRow({"replies failed", std::to_string(failed.load())});
    table.mixedRow({"sustained qps", std::to_string(qps)});
    table.mixedRow({"1 Hz fleet capacity (phones)",
                    std::to_string(static_cast<long>(qps))});
    table.mixedRow({"p50 latency us",
                    std::to_string(stats.p50LatencyMicros)});
    table.mixedRow({"p99 latency us",
                    std::to_string(stats.p99LatencyMicros)});
    table.mixedRow({"batches", std::to_string(stats.batches)});
    table.mixedRow({"coalesced requests",
                    std::to_string(stats.coalescedRequests)});
    table.mixedRow({"max batch occupancy",
                    std::to_string(stats.batchOccupancyMax)});
    table.mixedRow({"plan cache hits",
                    std::to_string(server.planCache()->stats().hits)});
    std::printf("\n%s\n", serve::serverReport(stats).c_str());

    if (failed.load() != 0) {
        std::fprintf(stderr, "bench_serve: %llu requests failed\n",
                     static_cast<unsigned long long>(failed.load()));
        return 1;
    }

    if (!json.empty()) {
        bench::writeBenchJson(
            json,
            {
                // Shared name across modes: the coalesced-vs-
                // perrequest gate compares exactly this row.
                {"serve/sustained_qps", qps},
                // Mode-suffixed names appear in only one file each,
                // so the gate reports them without comparing.
                {"serve/p50_latency_us/" + mode,
                 stats.p50LatencyMicros},
                {"serve/p99_latency_us/" + mode,
                 stats.p99LatencyMicros},
            });
        std::printf("wrote %s\n", json.c_str());
    }
    return 0;
}
