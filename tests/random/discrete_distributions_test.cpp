/**
 * @file
 * Goodness-of-fit and edge-case tests for the discrete distributions
 * (Bernoulli, Binomial, Poisson, Discrete/alias method).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "random/bernoulli.hpp"
#include "random/binomial.hpp"
#include "random/discrete.hpp"
#include "random/poisson.hpp"
#include "stats/chi_square.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace random {
namespace {

TEST(Bernoulli, FrequenciesMatchP)
{
    Bernoulli dist(0.2);
    Rng rng = testing::testRng(21);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += dist.sampleBool(rng) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.2,
                testing::proportionTolerance(0.2, n));
}

TEST(Bernoulli, PmfAndCdf)
{
    Bernoulli dist(0.7);
    EXPECT_DOUBLE_EQ(dist.pdf(0.0), 0.3);
    EXPECT_DOUBLE_EQ(dist.pdf(1.0), 0.7);
    EXPECT_DOUBLE_EQ(dist.pdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(-0.1), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.3);
    EXPECT_DOUBLE_EQ(dist.cdf(1.0), 1.0);
    EXPECT_THROW(Bernoulli(1.2), Error);
}

TEST(Binomial, ChiSquareAgainstPmf)
{
    Binomial dist(10, 0.35);
    Rng rng = testing::testRng(22);
    const int n = 100000;
    std::vector<std::size_t> observed(11, 0);
    for (int i = 0; i < n; ++i)
        ++observed[static_cast<std::size_t>(dist.sample(rng))];
    std::vector<double> expected;
    for (int k = 0; k <= 10; ++k)
        expected.push_back(dist.pdf(k));
    auto result = stats::chiSquareGof(observed, expected);
    EXPECT_GT(result.pValue, 1e-4);
}

TEST(Binomial, DegenerateProbabilities)
{
    Rng rng = testing::testRng(23);
    Binomial zeros(20, 0.0);
    Binomial ones(20, 1.0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(zeros.sample(rng), 0.0);
        EXPECT_DOUBLE_EQ(ones.sample(rng), 20.0);
    }
}

TEST(Binomial, CdfMatchesPmfSum)
{
    Binomial dist(15, 0.6);
    double cumulative = 0.0;
    for (int k = 0; k <= 15; ++k) {
        cumulative += dist.pdf(k);
        EXPECT_NEAR(dist.cdf(k), cumulative, 1e-9) << "k=" << k;
    }
}

TEST(Binomial, LargeNSparsePathHasRightMoments)
{
    Binomial dist(2000, 0.002);
    Rng rng = testing::testRng(24);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += dist.sample(rng);
    EXPECT_NEAR(sum / n, 4.0, testing::meanTolerance(2.0, n));
}

TEST(Poisson, ChiSquareAgainstPmf)
{
    Poisson dist(4.0);
    Rng rng = testing::testRng(25);
    const int n = 100000;
    // Bin counts 0..14, 15+ pooled.
    std::vector<std::size_t> observed(16, 0);
    for (int i = 0; i < n; ++i) {
        auto k = static_cast<std::size_t>(dist.sample(rng));
        ++observed[std::min<std::size_t>(k, 15)];
    }
    std::vector<double> expected;
    double tail = 1.0;
    for (int k = 0; k < 15; ++k) {
        double mass = dist.pdf(k);
        expected.push_back(mass);
        tail -= mass;
    }
    expected.push_back(tail);
    auto result = stats::chiSquareGof(observed, expected);
    EXPECT_GT(result.pValue, 1e-4);
}

TEST(Poisson, CdfConsistentWithPmf)
{
    Poisson dist(2.5);
    double cumulative = 0.0;
    for (int k = 0; k <= 12; ++k) {
        cumulative += dist.pdf(k);
        EXPECT_NEAR(dist.cdf(k), cumulative, 1e-9) << "k=" << k;
    }
}

TEST(Discrete, AliasMethodMatchesWeights)
{
    Discrete dist({10.0, 20.0, 30.0, 40.0}, {1.0, 2.0, 3.0, 4.0});
    Rng rng = testing::testRng(26);
    const int n = 200000;
    std::map<double, int> counts;
    for (int i = 0; i < n; ++i)
        ++counts[dist.sample(rng)];
    EXPECT_NEAR(counts[10.0] / static_cast<double>(n), 0.1,
                testing::proportionTolerance(0.1, n));
    EXPECT_NEAR(counts[40.0] / static_cast<double>(n), 0.4,
                testing::proportionTolerance(0.4, n));
}

TEST(Discrete, MomentsAndQueries)
{
    Discrete dist({0.0, 1.0}, {0.25, 0.75});
    EXPECT_NEAR(dist.mean(), 0.75, 1e-12);
    EXPECT_NEAR(dist.variance(), 0.1875, 1e-12);
    EXPECT_NEAR(dist.pdf(1.0), 0.75, 1e-12);
    EXPECT_NEAR(dist.cdf(0.5), 0.25, 1e-12);
}

TEST(Discrete, HandlesZeroWeightEntries)
{
    Discrete dist({1.0, 2.0, 3.0}, {0.0, 1.0, 0.0});
    Rng rng = testing::testRng(27);
    for (int i = 0; i < 1000; ++i)
        EXPECT_DOUBLE_EQ(dist.sample(rng), 2.0);
}

TEST(Discrete, SingleValueDistribution)
{
    Discrete dist({7.5}, {3.0});
    Rng rng = testing::testRng(28);
    EXPECT_DOUBLE_EQ(dist.sample(rng), 7.5);
    EXPECT_DOUBLE_EQ(dist.mean(), 7.5);
    EXPECT_DOUBLE_EQ(dist.variance(), 0.0);
}

TEST(Discrete, RejectsInvalidConstruction)
{
    EXPECT_THROW(Discrete({}, {}), Error);
    EXPECT_THROW(Discrete({1.0}, {1.0, 2.0}), Error);
    EXPECT_THROW(Discrete({1.0, 2.0}, {0.0, 0.0}), Error);
    EXPECT_THROW(Discrete({1.0}, {-1.0}), Error);
}

TEST(Discrete, RepeatedValuesAggregateMass)
{
    Discrete dist({5.0, 5.0, 6.0}, {1.0, 1.0, 2.0});
    EXPECT_NEAR(dist.pdf(5.0), 0.5, 1e-12);
}

} // namespace
} // namespace random
} // namespace uncertain
