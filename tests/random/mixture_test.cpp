/** @file Mixture-distribution tests. */

#include <gtest/gtest.h>

#include <memory>

#include "random/gaussian.hpp"
#include "random/mixture.hpp"
#include "random/point_mass.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"
#include "stat_assert.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace random {
namespace {

Mixture
bimodal()
{
    return Mixture({std::make_shared<Gaussian>(-2.0, 0.5),
                    std::make_shared<Gaussian>(3.0, 1.0)},
                   {0.3, 0.7});
}

TEST(Mixture, MeanIsTheWeightedComponentMean)
{
    Mixture m = bimodal();
    EXPECT_NEAR(m.mean(), 0.3 * -2.0 + 0.7 * 3.0, 1e-12);
}

TEST(Mixture, VarianceFollowsTheLawOfTotalVariance)
{
    Mixture m = bimodal();
    double mu = m.mean();
    double expected = 0.3 * (0.25 + (-2.0 - mu) * (-2.0 - mu))
                      + 0.7 * (1.0 + (3.0 - mu) * (3.0 - mu));
    EXPECT_NEAR(m.variance(), expected, 1e-12);
}

TEST(Mixture, SamplesPassKsAgainstTheMixtureCdf)
{
    Mixture m = bimodal();
    Rng rng = testing::testRng(391);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(m.sample(rng));
    EXPECT_TRUE(testing::ksMatchesDistribution(xs, m));
}

TEST(Mixture, SampleMomentsMatch)
{
    Mixture m = bimodal();
    Rng rng = testing::testRng(392);
    std::vector<double> xs;
    for (int i = 0; i < 100000; ++i)
        xs.push_back(m.sample(rng));
    EXPECT_TRUE(testing::momentsMatch(xs, m.mean(), m.stddev()));
}

TEST(Mixture, PdfIsTheWeightedSum)
{
    auto a = std::make_shared<Gaussian>(0.0, 1.0);
    auto b = std::make_shared<Gaussian>(5.0, 2.0);
    Mixture m({a, b}, {1.0, 3.0});
    for (double x : {-1.0, 0.0, 2.0, 5.0}) {
        EXPECT_NEAR(m.pdf(x), 0.25 * a->pdf(x) + 0.75 * b->pdf(x),
                    1e-12);
        EXPECT_NEAR(m.cdf(x), 0.25 * a->cdf(x) + 0.75 * b->cdf(x),
                    1e-12);
    }
    EXPECT_NEAR(m.weightOf(0), 0.25, 1e-12);
    EXPECT_NEAR(m.weightOf(1), 0.75, 1e-12);
}

TEST(Mixture, GlitchyReceiverScenarioIsBimodal)
{
    // The GPS use case: 97% accurate, 3% multipath. The tail mass
    // beyond 10 m comes almost entirely from the glitch component.
    Mixture m({std::make_shared<Gaussian>(0.0, 2.0),
               std::make_shared<Gaussian>(0.0, 30.0)},
              {0.97, 0.03});
    double tail = 1.0 - m.cdf(10.0) + m.cdf(-10.0);
    double glitchTail =
        0.03 * 2.0 * (1.0 - Gaussian(0.0, 30.0).cdf(10.0));
    EXPECT_NEAR(tail, glitchTail, 0.002);
}

TEST(Mixture, ValidatesConstruction)
{
    EXPECT_THROW(Mixture({}, {}), Error);
    EXPECT_THROW(Mixture({nullptr}, {1.0}), Error);
    EXPECT_THROW(
        Mixture({std::make_shared<PointMass>(0.0)}, {0.0}), Error);
    EXPECT_THROW(Mixture({std::make_shared<PointMass>(0.0)},
                         {1.0, 2.0}),
                 Error);
}

} // namespace
} // namespace random
} // namespace uncertain
