/** @file Laplace, Weibull, and Cauchy tests. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "random/cauchy.hpp"
#include "random/chi_squared.hpp"
#include "random/exponential.hpp"
#include "random/gaussian.hpp"
#include "random/laplace.hpp"
#include "random/rayleigh.hpp"
#include "random/weibull.hpp"
#include "stats/ks_test.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace random {
namespace {

TEST(Laplace, MomentsAndSamples)
{
    Laplace dist(1.0, 2.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 1.0);
    EXPECT_DOUBLE_EQ(dist.variance(), 8.0);
    Rng rng = testing::testRng(341);
    stats::OnlineSummary s;
    for (int i = 0; i < 100000; ++i)
        s.add(dist.sample(rng));
    EXPECT_NEAR(s.mean(), 1.0,
                testing::meanTolerance(dist.stddev(), 100000));
    EXPECT_NEAR(s.variance(), 8.0, 0.5);
}

TEST(Laplace, SamplesPassKs)
{
    Laplace dist(-0.5, 1.3);
    Rng rng = testing::testRng(342);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(dist.sample(rng));
    EXPECT_GT(stats::ksTest(std::move(xs), dist).pValue, 1e-4);
}

TEST(Laplace, QuantileRoundTrip)
{
    Laplace dist(0.0, 1.0);
    for (double p : {0.01, 0.25, 0.5, 0.75, 0.99})
        EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-10);
    EXPECT_DOUBLE_EQ(dist.quantile(0.5), 0.0);
    EXPECT_THROW(Laplace(0.0, 0.0), Error);
}

TEST(Weibull, ShapeOneIsExponential)
{
    // Weibull(1, 1/lambda) == Exponential(lambda).
    Weibull weibull(1.0, 2.0);
    Exponential exponential(0.5);
    for (double x : {0.1, 0.5, 1.0, 3.0, 8.0})
        EXPECT_NEAR(weibull.cdf(x), exponential.cdf(x), 1e-12);
}

TEST(Weibull, ShapeTwoIsRayleigh)
{
    // Weibull(2, sqrt(2) rho) == Rayleigh(rho).
    double rho = 1.5;
    Weibull weibull(2.0, std::sqrt(2.0) * rho);
    Rayleigh rayleigh(rho);
    for (double x : {0.2, 1.0, 2.0, 4.0})
        EXPECT_NEAR(weibull.cdf(x), rayleigh.cdf(x), 1e-12);
}

TEST(Weibull, SamplesPassKs)
{
    Weibull dist(1.7, 2.2);
    Rng rng = testing::testRng(343);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(dist.sample(rng));
    EXPECT_GT(stats::ksTest(std::move(xs), dist).pValue, 1e-4);
}

TEST(Weibull, MeanMatchesGammaFormula)
{
    Weibull dist(2.0, 1.0);
    // E = scale * Gamma(1.5) = sqrt(pi)/2.
    EXPECT_NEAR(dist.mean(), std::sqrt(M_PI) / 2.0, 1e-10);
    Rng rng = testing::testRng(344);
    stats::OnlineSummary s;
    for (int i = 0; i < 100000; ++i)
        s.add(dist.sample(rng));
    EXPECT_NEAR(s.mean(), dist.mean(),
                testing::meanTolerance(dist.stddev(), 100000));
}

TEST(ChiSquared, MomentsMatchDegreesOfFreedom)
{
    ChiSquared dist(7.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 7.0);
    EXPECT_DOUBLE_EQ(dist.variance(), 14.0);
    EXPECT_THROW(ChiSquared(0.0), Error);
}

TEST(ChiSquared, IsTheSquaredNormInDistribution)
{
    // Sum of k squared standard normals ~ ChiSquared(k).
    const int k = 3;
    ChiSquared reference(k);
    Gaussian normal(0.0, 1.0);
    Rng rng = testing::testRng(347);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i) {
        double total = 0.0;
        for (int j = 0; j < k; ++j) {
            double z = normal.sample(rng);
            total += z * z;
        }
        xs.push_back(total);
    }
    EXPECT_GT(stats::ksTest(std::move(xs), reference).pValue, 1e-4);
}

TEST(ChiSquared, KnownCriticalValue)
{
    ChiSquared dist(1.0);
    EXPECT_NEAR(dist.cdf(3.841458820694124), 0.95, 1e-8);
}

TEST(Cauchy, QuartilesAtPlusMinusScale)
{
    Cauchy dist(2.0, 3.0);
    EXPECT_NEAR(dist.quantile(0.25), -1.0, 1e-9);
    EXPECT_NEAR(dist.quantile(0.5), 2.0, 1e-9);
    EXPECT_NEAR(dist.quantile(0.75), 5.0, 1e-9);
    EXPECT_NEAR(dist.cdf(2.0), 0.5, 1e-12);
}

TEST(Cauchy, SamplesPassKs)
{
    Cauchy dist(0.0, 1.0);
    Rng rng = testing::testRng(345);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(dist.sample(rng));
    EXPECT_GT(stats::ksTest(std::move(xs), dist).pValue, 1e-4);
}

TEST(Cauchy, MomentsDoNotExist)
{
    Cauchy dist(0.0, 1.0);
    EXPECT_THROW(dist.mean(), Error);
    EXPECT_THROW(dist.variance(), Error);
    EXPECT_THROW(Cauchy(0.0, -1.0), Error);
}

TEST(Cauchy, MedianIsStableEvenWithoutAMean)
{
    // The practical upshot for Uncertain<T>: conditionals on a
    // Cauchy (quantile questions) are fine even though E() is not.
    Cauchy dist(5.0, 1.0);
    Rng rng = testing::testRng(346);
    int above = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        above += dist.sample(rng) > 5.0 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(above) / n, 0.5,
                testing::proportionTolerance(0.5, n));
}

} // namespace
} // namespace random
} // namespace uncertain
