/**
 * @file
 * Parameterized property tests over every distribution: sampling
 * functions must actually draw from the law their analytic queries
 * describe. This is the contract Uncertain<T> leaves rely on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "random/bernoulli.hpp"
#include "random/beta.hpp"
#include "random/binomial.hpp"
#include "random/chi_squared.hpp"
#include "random/distribution.hpp"
#include "random/exponential.hpp"
#include "random/gamma.hpp"
#include "random/gaussian.hpp"
#include "random/laplace.hpp"
#include "random/lognormal.hpp"
#include "random/mixture.hpp"
#include "random/poisson.hpp"
#include "random/rayleigh.hpp"
#include "random/student_t.hpp"
#include "random/triangular.hpp"
#include "random/uniform.hpp"
#include "random/weibull.hpp"
#include "stats/ks_test.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace random {
namespace {

struct DistCase
{
    std::string label;
    std::function<DistributionPtr()> make;
    bool continuous;     //!< KS test applies
    bool hasQuantile;    //!< cdf/quantile round-trip applies
    bool hasDensityIntegral; //!< pdf integrates to 1 over quantiles
};

class DistributionProperty : public ::testing::TestWithParam<DistCase>
{};

TEST_P(DistributionProperty, SampleMeanMatchesAnalyticMean)
{
    const DistCase& c = GetParam();
    auto dist = c.make();
    Rng rng = testing::testRng(11);
    const std::size_t n = 200000;
    stats::OnlineSummary summary;
    for (std::size_t i = 0; i < n; ++i)
        summary.add(dist->sample(rng));
    EXPECT_NEAR(summary.mean(), dist->mean(),
                testing::meanTolerance(dist->stddev(), n))
        << dist->name();
}

TEST_P(DistributionProperty, SampleVarianceMatchesAnalyticVariance)
{
    const DistCase& c = GetParam();
    auto dist = c.make();
    Rng rng = testing::testRng(12);
    const std::size_t n = 200000;
    stats::OnlineSummary summary;
    for (std::size_t i = 0; i < n; ++i)
        summary.add(dist->sample(rng));
    double v = dist->variance();
    // Variance estimator tolerance: loose 10% + absolute floor.
    EXPECT_NEAR(summary.variance(), v, 0.1 * v + 1e-3) << dist->name();
}

TEST_P(DistributionProperty, SamplesPassKsAgainstOwnCdf)
{
    const DistCase& c = GetParam();
    if (!c.continuous)
        GTEST_SKIP() << "KS requires a continuous law";
    auto dist = c.make();
    Rng rng = testing::testRng(13);
    std::vector<double> xs;
    xs.reserve(20000);
    for (int i = 0; i < 20000; ++i)
        xs.push_back(dist->sample(rng));
    auto result = stats::ksTest(std::move(xs), *dist);
    EXPECT_GT(result.pValue, 1e-4) << dist->name()
                                   << " D=" << result.statistic;
}

TEST_P(DistributionProperty, CdfIsMonotoneNonDecreasing)
{
    const DistCase& c = GetParam();
    auto dist = c.make();
    Rng rng = testing::testRng(14);
    // Probe along sampled support points.
    std::vector<double> xs;
    for (int i = 0; i < 200; ++i)
        xs.push_back(dist->sample(rng));
    std::sort(xs.begin(), xs.end());
    double prev = 0.0;
    for (double x : xs) {
        double f = dist->cdf(x);
        EXPECT_GE(f, prev - 1e-12) << dist->name();
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
        prev = f;
    }
}

TEST_P(DistributionProperty, QuantileRoundTripsThroughCdf)
{
    const DistCase& c = GetParam();
    if (!c.hasQuantile)
        GTEST_SKIP() << "no analytic quantile";
    auto dist = c.make();
    for (double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
        double x = dist->quantile(p);
        EXPECT_NEAR(dist->cdf(x), p, 1e-8)
            << dist->name() << " p=" << p;
    }
}

TEST_P(DistributionProperty, DensityIntegratesToOne)
{
    const DistCase& c = GetParam();
    if (!c.hasDensityIntegral)
        GTEST_SKIP() << "no tractable density integral";
    auto dist = c.make();
    // Integrate the pdf between extreme quantiles with Simpson.
    double lo = dist->quantile(1e-7);
    double hi = dist->quantile(1.0 - 1e-7);
    const int intervals = 4096;
    double h = (hi - lo) / intervals;
    double total = 0.0;
    for (int i = 0; i <= intervals; ++i) {
        double w = (i == 0 || i == intervals) ? 1.0
                   : (i % 2 == 1)             ? 4.0
                                              : 2.0;
        total += w * dist->pdf(lo + h * i);
    }
    total *= h / 3.0;
    EXPECT_NEAR(total, 1.0, 1e-3) << dist->name();
}

TEST_P(DistributionProperty, LogPdfIsLogOfPdf)
{
    const DistCase& c = GetParam();
    if (!c.hasDensityIntegral)
        GTEST_SKIP();
    auto dist = c.make();
    Rng rng = testing::testRng(15);
    for (int i = 0; i < 100; ++i) {
        double x = dist->sample(rng);
        double pdf = dist->pdf(x);
        if (pdf > 1e-300) {
            EXPECT_NEAR(dist->logPdf(x), std::log(pdf),
                        1e-8 * std::fabs(std::log(pdf)) + 1e-9)
                << dist->name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionProperty,
    ::testing::Values(
        DistCase{"uniform",
                 [] { return std::make_shared<Uniform>(-2.0, 5.0); },
                 true, true, true},
        DistCase{"gaussian",
                 [] { return std::make_shared<Gaussian>(1.5, 2.0); },
                 true, true, true},
        DistCase{"gaussian_tight",
                 [] { return std::make_shared<Gaussian>(-4.0, 0.01); },
                 true, true, true},
        DistCase{"rayleigh",
                 [] { return std::make_shared<Rayleigh>(1.7); }, true,
                 true, true},
        DistCase{"rayleigh_gps",
                 [] {
                     return std::make_shared<Rayleigh>(
                         Rayleigh::fromHorizontalAccuracy(4.0));
                 },
                 true, true, true},
        DistCase{"exponential",
                 [] { return std::make_shared<Exponential>(0.8); },
                 true, true, true},
        DistCase{"gamma_shape_lt1",
                 [] { return std::make_shared<Gamma>(0.5, 2.0); }, true,
                 false, false},
        DistCase{"gamma_shape_gt1",
                 [] { return std::make_shared<Gamma>(4.5, 1.5); }, true,
                 false, false},
        DistCase{"beta",
                 [] { return std::make_shared<Beta>(2.0, 5.0); }, true,
                 false, false},
        DistCase{"beta_symmetric",
                 [] { return std::make_shared<Beta>(0.7, 0.7); }, true,
                 false, false},
        DistCase{"lognormal",
                 [] { return std::make_shared<LogNormal>(0.2, 0.4); },
                 true, true, true},
        DistCase{"student_t",
                 [] { return std::make_shared<StudentT>(8.0); }, true,
                 true, true},
        DistCase{"triangular",
                 [] {
                     return std::make_shared<Triangular>(-1.0, 0.5,
                                                         4.0);
                 },
                 true, true, true},
        DistCase{"bernoulli",
                 [] { return std::make_shared<Bernoulli>(0.3); }, false,
                 false, false},
        DistCase{"binomial_small",
                 [] { return std::make_shared<Binomial>(12, 0.4); },
                 false, false, false},
        DistCase{"binomial_large_sparse",
                 [] { return std::make_shared<Binomial>(500, 0.01); },
                 false, false, false},
        DistCase{"poisson_small",
                 [] { return std::make_shared<Poisson>(3.5); }, false,
                 false, false},
        DistCase{"poisson_large",
                 [] { return std::make_shared<Poisson>(80.0); }, false,
                 false, false},
        DistCase{"laplace",
                 [] { return std::make_shared<Laplace>(0.5, 1.2); },
                 true, true, true},
        DistCase{"weibull",
                 [] { return std::make_shared<Weibull>(1.7, 2.2); },
                 true, true, true},
        DistCase{"chi_squared",
                 [] { return std::make_shared<ChiSquared>(5.0); },
                 true, false, false},
        DistCase{"mixture_bimodal",
                 [] {
                     return std::make_shared<Mixture>(
                         std::vector<DistributionPtr>{
                             std::make_shared<Gaussian>(-2.0, 0.5),
                             std::make_shared<Gaussian>(3.0, 1.0)},
                         std::vector<double>{0.3, 0.7});
                 },
                 true, false, false}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
        return info.param.label;
    });

} // namespace
} // namespace random
} // namespace uncertain
