/**
 * @file
 * Ziggurat tail-region conformance: the Gaussian bulk sampler's far
 * tails, conditioned on |x| > 3 and |x| > 5, against the exact
 * conditional law. The ziggurat fast path never produces |x| beyond
 * the base layer (r = 3.4426...), so EVERY |x| > 3.44 draw comes out
 * of the Marsaglia exponential-rejection tail branch — exactly the
 * code KS over the full support barely exercises (P(|x| > 3.44) ~
 * 5.7e-4) and the |x| > 5 region (P ~ 5.7e-7) essentially never
 * sees at suite sample counts. These suites draw enough bulk samples
 * to condition on the tail and then run KS / chi-square / mass
 * checks against the folded conditional CDF.
 *
 * Draw counts scale with UNCERTAIN_TAIL_DRAWS (total Gaussian draws
 * for the |x| > 5 suite; the certification-nightly job raises it).
 * At the default 2^26 the deep tail holds ~38 expected hits: enough
 * for an exact-CDF KS test, which is valid at any sample size.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "random/distribution.hpp"
#include "random/gaussian.hpp"
#include "stat_assert.hpp"
#include "support/special_math.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace random {
namespace {

/**
 * |X| conditioned on |X| > t for X ~ N(0, 1): the folded tail law,
 * with CDF (Phi(y) - Phi(t)) / (1 - Phi(t)) rebased to the folded
 * half-line. Test-local: only cdf() and name() feed the KS helper.
 */
class FoldedGaussianTail : public Distribution
{
  public:
    explicit FoldedGaussianTail(double threshold)
        : threshold_(threshold),
          tailMass_(2.0 * (1.0 - math::normalCdf(threshold)))
    {}

    double
    sample(Rng& rng) const override
    {
        // Inverse-CDF; only used by sanity checks, never hot.
        return quantile(rng.nextDoubleOpen());
    }

    std::string
    name() const override
    {
        std::ostringstream out;
        out << "|N(0,1)| given |x| > " << threshold_;
        return out.str();
    }

    double
    cdf(double y) const override
    {
        if (y <= threshold_)
            return 0.0;
        return (2.0 * (math::normalCdf(y) - 0.5)
                - (1.0 - tailMass_))
               / tailMass_;
    }

    double
    quantile(double p) const override
    {
        const double u = 1.0 - 0.5 * tailMass_ * (1.0 - p);
        return math::normalQuantile(u);
    }

    double
    mean() const override
    {
        // E[|X| given |X| > t] = 2 phi(t) / tailMass.
        return 2.0 * math::normalPdf(threshold_) / tailMass_;
    }

    double
    variance() const override
    {
        // E[X^2 | |X|>t] = 1 + 2 t phi(t) / tailMass.
        const double m2 = 1.0
                          + 2.0 * threshold_
                                * math::normalPdf(threshold_)
                                / tailMass_;
        const double m1 = mean();
        return m2 - m1 * m1;
    }

    double tailMass() const { return tailMass_; }

  private:
    double threshold_;
    double tailMass_;
};

/** Total bulk draws for the deep-tail suite, env-scalable. */
std::size_t
tailDraws()
{
    static const std::size_t draws = [] {
        const char* env = std::getenv("UNCERTAIN_TAIL_DRAWS");
        if (env != nullptr) {
            const long long parsed = std::atoll(env);
            if (parsed > 0)
                return static_cast<std::size_t>(parsed);
        }
        return static_cast<std::size_t>(1) << 26;
    }();
    return draws;
}

/**
 * Draw @p total standard normals through the bulk ziggurat path and
 * keep |x| for every |x| > threshold, in fixed-size blocks so the
 * working set stays cache-friendly at any total.
 */
std::vector<double>
foldedTailSamples(double threshold, std::size_t total,
                  std::uint64_t seed)
{
    Rng rng = testing::testRng(seed);
    constexpr std::size_t kBlock = 1u << 16;
    std::vector<double> block(kBlock);
    std::vector<double> tail;
    std::size_t remaining = total;
    while (remaining > 0) {
        const std::size_t m = std::min(kBlock, remaining);
        Gaussian::standardSampleMany(rng, block.data(), m);
        for (std::size_t i = 0; i < m; ++i) {
            const double a = std::fabs(block[i]);
            if (a > threshold)
                tail.push_back(a);
        }
        remaining -= m;
    }
    return tail;
}

TEST(GaussianTailConformance, ThreeSigmaTailPassesKs)
{
    FoldedGaussianTail reference(3.0);
    // 2^21 draws leave ~5700 expected tail samples.
    auto tail = foldedTailSamples(3.0, 1u << 21, 7301);
    ASSERT_GT(tail.size(), 1000u);
    EXPECT_TRUE(testing::ksMatchesDistribution(tail, reference));
}

TEST(GaussianTailConformance, ThreeSigmaTailPassesChiSquare)
{
    // Equiprobable quantile cells of the conditional law; the
    // chi-square helper pools any sparse tail-of-the-tail cells.
    FoldedGaussianTail reference(3.0);
    auto tail = foldedTailSamples(3.0, 1u << 21, 7302);
    constexpr std::size_t kCells = 16;
    std::vector<std::size_t> counts(kCells, 0);
    for (double a : tail) {
        const double u = reference.cdf(a);
        auto cell = static_cast<std::size_t>(
            u * static_cast<double>(kCells));
        ++counts[std::min(cell, kCells - 1)];
    }
    std::vector<double> expected(kCells, 1.0 / kCells);
    EXPECT_TRUE(testing::chiSquareMatches(counts, expected));
}

TEST(GaussianTailConformance, ThreeSigmaTailMassAndMomentsMatch)
{
    FoldedGaussianTail reference(3.0);
    const std::size_t total = 1u << 21;
    auto tail = foldedTailSamples(3.0, total, 7303);
    const double p = reference.tailMass();
    EXPECT_NEAR(static_cast<double>(tail.size()),
                p * static_cast<double>(total),
                5.0 * std::sqrt(p * static_cast<double>(total)));
    EXPECT_TRUE(testing::momentsMatch(tail, reference.mean(),
                                      reference.stddev()));
}

TEST(GaussianTailConformance, FiveSigmaTailPassesKsAndMassCheck)
{
    // P(|x| > 5) ~ 5.7e-7: at the default 2^26 draws the expected
    // count is ~38. The exact-distribution KS test is valid at any
    // n, and the count itself is a Poisson-scale mass check on the
    // deepest branch of the tail sampler. UNCERTAIN_TAIL_DRAWS
    // raises the scale in the nightly job.
    FoldedGaussianTail reference(5.0);
    const std::size_t total = tailDraws();
    auto tail = foldedTailSamples(5.0, total, 7304);

    const double expected =
        reference.tailMass() * static_cast<double>(total);
    ASSERT_GE(tail.size(), 5u)
        << "expected ~" << expected << " deep-tail samples from "
        << total << " draws";
    EXPECT_NEAR(static_cast<double>(tail.size()), expected,
                5.0 * std::sqrt(expected) + 1.0);
    // ~40 samples: the asymptotic KS p-value is rough at this n, so
    // use a tighter alpha than the suite default — the count check
    // above is the primary mass assertion, KS only guards the shape.
    EXPECT_TRUE(testing::ksMatchesDistribution(tail, reference, 1e-3));
    // Every deep-tail value must exceed the ziggurat base layer: the
    // fast path cannot produce them by construction.
    for (double a : tail)
        ASSERT_GT(a, 5.0);
}

} // namespace
} // namespace random
} // namespace uncertain
