/**
 * @file
 * Golden-distribution conformance suite: every sampler the batch
 * engine leans on must match its own closed-form law, on both the
 * scalar sample() path and the bulk sampleMany() path. The bulk path
 * is a distinct algorithm for several distributions (pairwise
 * Box-Muller for Gaussian, fused uniform fills for Uniform /
 * Exponential / Rayleigh), so it gets its own KS + moment pass —
 * "same law, different stream" is exactly the claim that needs a
 * distance-based test (Sarkar et al., Assessing the Quality of
 * Binomial Samplers).
 *
 * Continuous laws: one-sample KS against the analytic CDF at
 * testing::kKsAlpha plus first/second-moment checks at ~5 sigma.
 * Bernoulli (discrete): chi-square over {0, 1} cells plus the same
 * moment checks. All seeds fixed via testing::testRng.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "random/bernoulli.hpp"
#include "random/beta.hpp"
#include "random/binomial.hpp"
#include "random/distribution.hpp"
#include "random/exponential.hpp"
#include "random/gamma.hpp"
#include "random/gaussian.hpp"
#include "random/mixture.hpp"
#include "random/poisson.hpp"
#include "random/rayleigh.hpp"
#include "random/student_t.hpp"
#include "random/uniform.hpp"
#include "stat_assert.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace random {
namespace {

constexpr std::size_t kSamples = 20000;

struct GoldenCase
{
    const char* name;
    DistributionPtr (*make)();
    std::uint64_t seed;
};

DistributionPtr
makeStandardGaussian()
{
    return std::make_shared<Gaussian>(0.0, 1.0);
}

DistributionPtr
makeShiftedGaussian()
{
    return std::make_shared<Gaussian>(-3.5, 2.25);
}

DistributionPtr
makeGpsRayleigh()
{
    // The paper's GPS error scale for a 4 m 95% accuracy radius.
    return std::make_shared<Rayleigh>(
        Rayleigh::fromHorizontalAccuracy(4.0));
}

DistributionPtr
makeUnitUniform()
{
    return std::make_shared<Uniform>(0.0, 1.0);
}

DistributionPtr
makeWideUniform()
{
    return std::make_shared<Uniform>(-7.0, 11.0);
}

DistributionPtr
makeExponential()
{
    return std::make_shared<Exponential>(0.75);
}

DistributionPtr
makeBimodalMixture()
{
    return std::make_shared<Mixture>(
        std::vector<DistributionPtr>{
            std::make_shared<Gaussian>(-2.0, 0.5),
            std::make_shared<Gaussian>(3.0, 1.0),
        },
        std::vector<double>{0.4, 0.6});
}

DistributionPtr
makeGoldenBeta()
{
    return std::make_shared<Beta>(2.5, 1.5);
}

DistributionPtr
makeGoldenBoostGamma()
{
    // shape < 1 exercises the Marsaglia-Tsang boost branch.
    return std::make_shared<Gamma>(0.5, 2.0);
}

DistributionPtr
makeGoldenSqueezeGamma()
{
    return std::make_shared<Gamma>(3.0, 1.5);
}

DistributionPtr
makeGoldenStudentT()
{
    // nu > 2 so both golden moments exist for the moment checks.
    return std::make_shared<StudentT>(5.0);
}

const GoldenCase kContinuousCases[] = {
    {"gaussian_standard", makeStandardGaussian, 2001},
    {"gaussian_shifted", makeShiftedGaussian, 2002},
    {"rayleigh_gps", makeGpsRayleigh, 2003},
    {"uniform_unit", makeUnitUniform, 2004},
    {"uniform_wide", makeWideUniform, 2005},
    {"exponential", makeExponential, 2006},
    {"mixture_bimodal", makeBimodalMixture, 2007},
    {"beta_2p5_1p5", makeGoldenBeta, 2008},
    {"gamma_boost_0p5", makeGoldenBoostGamma, 2009},
    {"gamma_squeeze_3", makeGoldenSqueezeGamma, 2010},
    {"student_t_5", makeGoldenStudentT, 2011},
};

std::vector<double>
scalarDraws(const Distribution& dist, std::uint64_t seed,
            std::size_t n = kSamples)
{
    Rng rng = testing::testRng(seed);
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(dist.sample(rng));
    return xs;
}

std::vector<double>
bulkDraws(const Distribution& dist, std::uint64_t seed,
          std::size_t n = kSamples)
{
    Rng rng = testing::testRng(seed);
    std::vector<double> xs(n);
    dist.sampleMany(rng, xs.data(), n);
    return xs;
}

class GoldenConformance
    : public ::testing::TestWithParam<GoldenCase>
{};

TEST_P(GoldenConformance, ScalarSamplesPassKsAgainstClosedFormCdf)
{
    auto dist = GetParam().make();
    auto xs = scalarDraws(*dist, GetParam().seed);
    EXPECT_TRUE(testing::ksMatchesDistribution(xs, *dist));
}

TEST_P(GoldenConformance, BulkSamplesPassKsAgainstClosedFormCdf)
{
    auto dist = GetParam().make();
    auto xs = bulkDraws(*dist, GetParam().seed + 50);
    EXPECT_TRUE(testing::ksMatchesDistribution(xs, *dist));
}

TEST_P(GoldenConformance, ScalarSampleMomentsMatch)
{
    auto dist = GetParam().make();
    auto xs = scalarDraws(*dist, GetParam().seed + 100);
    EXPECT_TRUE(
        testing::momentsMatch(xs, dist->mean(), dist->stddev()));
}

TEST_P(GoldenConformance, BulkSampleMomentsMatch)
{
    auto dist = GetParam().make();
    auto xs = bulkDraws(*dist, GetParam().seed + 150);
    EXPECT_TRUE(
        testing::momentsMatch(xs, dist->mean(), dist->stddev()));
}

TEST_P(GoldenConformance, ScalarAndBulkDrawTheSameLaw)
{
    // The bulk path may consume the stream differently (pairwise
    // Box-Muller keeps the sine half), so the comparison is two-sample
    // KS, not bit equality.
    auto dist = GetParam().make();
    auto scalar = scalarDraws(*dist, GetParam().seed + 200);
    auto bulk = bulkDraws(*dist, GetParam().seed + 250);
    EXPECT_TRUE(testing::ksSameDistribution(scalar, bulk));
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldenDistributions, GoldenConformance,
    ::testing::ValuesIn(kContinuousCases),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
        return std::string(info.param.name);
    });

TEST(GoldenConformanceBernoulli, ScalarCellCountsPassChiSquare)
{
    Bernoulli dist(0.37);
    auto xs = scalarDraws(dist, 2101);
    std::vector<std::size_t> counts(2, 0);
    for (double x : xs)
        ++counts[x > 0.5 ? 1 : 0];
    EXPECT_TRUE(testing::chiSquareMatches(counts, {0.63, 0.37}));
}

TEST(GoldenConformanceBernoulli, BulkCellCountsPassChiSquare)
{
    Bernoulli dist(0.37);
    auto xs = bulkDraws(dist, 2102);
    std::vector<std::size_t> counts(2, 0);
    for (double x : xs)
        ++counts[x > 0.5 ? 1 : 0];
    EXPECT_TRUE(testing::chiSquareMatches(counts, {0.63, 0.37}));
}

TEST(GoldenConformanceBernoulli, MomentsMatchOnBothPaths)
{
    Bernoulli dist(0.37);
    EXPECT_TRUE(testing::momentsMatch(scalarDraws(dist, 2103),
                                      dist.mean(), dist.stddev()));
    EXPECT_TRUE(testing::momentsMatch(bulkDraws(dist, 2104),
                                      dist.mean(), dist.stddev()));
}

// ---------------------------------------------------------------------
// Discrete golden cases: chi-square over the exact finite support
// (sparse tail cells pooled by chiSquareMatches) plus moment checks,
// on both sampling paths.
// ---------------------------------------------------------------------

struct DiscreteGoldenCase
{
    const char* name;
    DistributionPtr (*make)();
    std::uint64_t seed;
};

DistributionPtr
makeGoldenSmallBinomial()
{
    return std::make_shared<Binomial>(40, 0.3);
}

DistributionPtr
makeGoldenBtpeBinomial()
{
    return std::make_shared<Binomial>(200, 0.4);
}

DistributionPtr
makeGoldenKnuthPoisson()
{
    return std::make_shared<Poisson>(4.2);
}

DistributionPtr
makeGoldenPtrsPoisson()
{
    return std::make_shared<Poisson>(80.0);
}

const DiscreteGoldenCase kDiscreteCases[] = {
    {"binomial_inversion_40", makeGoldenSmallBinomial, 2201},
    {"binomial_btpe_200", makeGoldenBtpeBinomial, 2202},
    {"poisson_knuth_4p2", makeGoldenKnuthPoisson, 2203},
    {"poisson_ptrs_80", makeGoldenPtrsPoisson, 2204},
};

class GoldenConformanceDiscrete
    : public ::testing::TestWithParam<DiscreteGoldenCase>
{};

/** Bin integer-valued draws against the exact finite support. */
::testing::AssertionResult
supportChiSquare(const Distribution& dist,
                 const std::vector<double>& xs)
{
    std::vector<double> values;
    std::vector<double> probabilities;
    if (!dist.finiteSupport(values, probabilities))
        return ::testing::AssertionFailure()
               << dist.name() << " surfaces no finite support";
    const double first = values.front();
    std::vector<std::size_t> counts(values.size(), 0);
    for (double x : xs) {
        const auto k = static_cast<std::size_t>(x - first);
        if (k >= counts.size())
            return ::testing::AssertionFailure()
                   << "draw " << x << " outside the exact support ["
                   << values.front() << ", " << values.back() << "]";
        ++counts[k];
    }
    return testing::chiSquareMatches(counts, probabilities);
}

TEST_P(GoldenConformanceDiscrete, ScalarCountsPassChiSquare)
{
    auto dist = GetParam().make();
    EXPECT_TRUE(
        supportChiSquare(*dist, scalarDraws(*dist, GetParam().seed)));
}

TEST_P(GoldenConformanceDiscrete, BulkCountsPassChiSquare)
{
    auto dist = GetParam().make();
    EXPECT_TRUE(supportChiSquare(
        *dist, bulkDraws(*dist, GetParam().seed + 50)));
}

TEST_P(GoldenConformanceDiscrete, MomentsMatchOnBothPaths)
{
    auto dist = GetParam().make();
    EXPECT_TRUE(
        testing::momentsMatch(scalarDraws(*dist, GetParam().seed + 100),
                              dist->mean(), dist->stddev()));
    EXPECT_TRUE(
        testing::momentsMatch(bulkDraws(*dist, GetParam().seed + 150),
                              dist->mean(), dist->stddev()));
}

INSTANTIATE_TEST_SUITE_P(
    AllDiscreteGoldenDistributions, GoldenConformanceDiscrete,
    ::testing::ValuesIn(kDiscreteCases),
    [](const ::testing::TestParamInfo<DiscreteGoldenCase>& info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace random
} // namespace uncertain
