/**
 * @file
 * Golden-distribution conformance suite: every sampler the batch
 * engine leans on must match its own closed-form law, on both the
 * scalar sample() path and the bulk sampleMany() path. The bulk path
 * is a distinct algorithm for several distributions (pairwise
 * Box-Muller for Gaussian, fused uniform fills for Uniform /
 * Exponential / Rayleigh), so it gets its own KS + moment pass —
 * "same law, different stream" is exactly the claim that needs a
 * distance-based test (Sarkar et al., Assessing the Quality of
 * Binomial Samplers).
 *
 * Continuous laws: one-sample KS against the analytic CDF at
 * testing::kKsAlpha plus first/second-moment checks at ~5 sigma.
 * Bernoulli (discrete): chi-square over {0, 1} cells plus the same
 * moment checks. All seeds fixed via testing::testRng.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "random/bernoulli.hpp"
#include "random/distribution.hpp"
#include "random/exponential.hpp"
#include "random/gaussian.hpp"
#include "random/mixture.hpp"
#include "random/rayleigh.hpp"
#include "random/uniform.hpp"
#include "stat_assert.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace random {
namespace {

constexpr std::size_t kSamples = 20000;

struct GoldenCase
{
    const char* name;
    DistributionPtr (*make)();
    std::uint64_t seed;
};

DistributionPtr
makeStandardGaussian()
{
    return std::make_shared<Gaussian>(0.0, 1.0);
}

DistributionPtr
makeShiftedGaussian()
{
    return std::make_shared<Gaussian>(-3.5, 2.25);
}

DistributionPtr
makeGpsRayleigh()
{
    // The paper's GPS error scale for a 4 m 95% accuracy radius.
    return std::make_shared<Rayleigh>(
        Rayleigh::fromHorizontalAccuracy(4.0));
}

DistributionPtr
makeUnitUniform()
{
    return std::make_shared<Uniform>(0.0, 1.0);
}

DistributionPtr
makeWideUniform()
{
    return std::make_shared<Uniform>(-7.0, 11.0);
}

DistributionPtr
makeExponential()
{
    return std::make_shared<Exponential>(0.75);
}

DistributionPtr
makeBimodalMixture()
{
    return std::make_shared<Mixture>(
        std::vector<DistributionPtr>{
            std::make_shared<Gaussian>(-2.0, 0.5),
            std::make_shared<Gaussian>(3.0, 1.0),
        },
        std::vector<double>{0.4, 0.6});
}

const GoldenCase kContinuousCases[] = {
    {"gaussian_standard", makeStandardGaussian, 2001},
    {"gaussian_shifted", makeShiftedGaussian, 2002},
    {"rayleigh_gps", makeGpsRayleigh, 2003},
    {"uniform_unit", makeUnitUniform, 2004},
    {"uniform_wide", makeWideUniform, 2005},
    {"exponential", makeExponential, 2006},
    {"mixture_bimodal", makeBimodalMixture, 2007},
};

std::vector<double>
scalarDraws(const Distribution& dist, std::uint64_t seed,
            std::size_t n = kSamples)
{
    Rng rng = testing::testRng(seed);
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(dist.sample(rng));
    return xs;
}

std::vector<double>
bulkDraws(const Distribution& dist, std::uint64_t seed,
          std::size_t n = kSamples)
{
    Rng rng = testing::testRng(seed);
    std::vector<double> xs(n);
    dist.sampleMany(rng, xs.data(), n);
    return xs;
}

class GoldenConformance
    : public ::testing::TestWithParam<GoldenCase>
{};

TEST_P(GoldenConformance, ScalarSamplesPassKsAgainstClosedFormCdf)
{
    auto dist = GetParam().make();
    auto xs = scalarDraws(*dist, GetParam().seed);
    EXPECT_TRUE(testing::ksMatchesDistribution(xs, *dist));
}

TEST_P(GoldenConformance, BulkSamplesPassKsAgainstClosedFormCdf)
{
    auto dist = GetParam().make();
    auto xs = bulkDraws(*dist, GetParam().seed + 50);
    EXPECT_TRUE(testing::ksMatchesDistribution(xs, *dist));
}

TEST_P(GoldenConformance, ScalarSampleMomentsMatch)
{
    auto dist = GetParam().make();
    auto xs = scalarDraws(*dist, GetParam().seed + 100);
    EXPECT_TRUE(
        testing::momentsMatch(xs, dist->mean(), dist->stddev()));
}

TEST_P(GoldenConformance, BulkSampleMomentsMatch)
{
    auto dist = GetParam().make();
    auto xs = bulkDraws(*dist, GetParam().seed + 150);
    EXPECT_TRUE(
        testing::momentsMatch(xs, dist->mean(), dist->stddev()));
}

TEST_P(GoldenConformance, ScalarAndBulkDrawTheSameLaw)
{
    // The bulk path may consume the stream differently (pairwise
    // Box-Muller keeps the sine half), so the comparison is two-sample
    // KS, not bit equality.
    auto dist = GetParam().make();
    auto scalar = scalarDraws(*dist, GetParam().seed + 200);
    auto bulk = bulkDraws(*dist, GetParam().seed + 250);
    EXPECT_TRUE(testing::ksSameDistribution(scalar, bulk));
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldenDistributions, GoldenConformance,
    ::testing::ValuesIn(kContinuousCases),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
        return std::string(info.param.name);
    });

TEST(GoldenConformanceBernoulli, ScalarCellCountsPassChiSquare)
{
    Bernoulli dist(0.37);
    auto xs = scalarDraws(dist, 2101);
    std::vector<std::size_t> counts(2, 0);
    for (double x : xs)
        ++counts[x > 0.5 ? 1 : 0];
    EXPECT_TRUE(testing::chiSquareMatches(counts, {0.63, 0.37}));
}

TEST(GoldenConformanceBernoulli, BulkCellCountsPassChiSquare)
{
    Bernoulli dist(0.37);
    auto xs = bulkDraws(dist, 2102);
    std::vector<std::size_t> counts(2, 0);
    for (double x : xs)
        ++counts[x > 0.5 ? 1 : 0];
    EXPECT_TRUE(testing::chiSquareMatches(counts, {0.63, 0.37}));
}

TEST(GoldenConformanceBernoulli, MomentsMatchOnBothPaths)
{
    Bernoulli dist(0.37);
    EXPECT_TRUE(testing::momentsMatch(scalarDraws(dist, 2103),
                                      dist.mean(), dist.stddev()));
    EXPECT_TRUE(testing::momentsMatch(bulkDraws(dist, 2104),
                                      dist.mean(), dist.stddev()));
}

} // namespace
} // namespace random
} // namespace uncertain
