/** @file Empirical pool, KDE, truncation, and point-mass tests. */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "random/empirical.hpp"
#include "random/gaussian.hpp"
#include "random/kde.hpp"
#include "random/point_mass.hpp"
#include "random/truncated.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace random {
namespace {

TEST(Empirical, SamplesOnlyPoolValues)
{
    Empirical dist({1.0, 2.0, 3.0});
    Rng rng = testing::testRng(31);
    for (int i = 0; i < 1000; ++i) {
        double x = dist.sample(rng);
        EXPECT_TRUE(x == 1.0 || x == 2.0 || x == 3.0);
    }
}

TEST(Empirical, MomentsMatchPool)
{
    Empirical dist({2.0, 4.0, 6.0, 8.0});
    EXPECT_DOUBLE_EQ(dist.mean(), 5.0);
    EXPECT_DOUBLE_EQ(dist.variance(), 5.0);
}

TEST(Empirical, CdfIsTheEmpiricalCdf)
{
    Empirical dist({1.0, 2.0, 2.0, 10.0});
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(dist.cdf(2.0), 0.75);
    EXPECT_DOUBLE_EQ(dist.cdf(100.0), 1.0);
}

TEST(Empirical, QuantileInterpolatesOrderStatistics)
{
    Empirical dist({0.0, 10.0});
    EXPECT_DOUBLE_EQ(dist.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(dist.quantile(1.0), 10.0);
    EXPECT_THROW(dist.quantile(1.5), Error);
    EXPECT_THROW(Empirical({}), Error);
}

TEST(GaussianKde, RecoversUnderlyingDensityShape)
{
    // Pool from N(0, 1); the KDE density near 0 should approach the
    // true density.
    Gaussian source(0.0, 1.0);
    Rng rng = testing::testRng(32);
    std::vector<double> pool;
    for (int i = 0; i < 5000; ++i)
        pool.push_back(source.sample(rng));
    GaussianKde kde(pool);
    EXPECT_NEAR(kde.pdf(0.0), source.pdf(0.0), 0.05);
    EXPECT_NEAR(kde.cdf(0.0), 0.5, 0.03);
    EXPECT_NEAR(kde.mean(), 0.0, 0.05);
}

TEST(GaussianKde, SamplesHaveInflatedVarianceByBandwidth)
{
    std::vector<double> pool{-1.0, 1.0};
    GaussianKde kde(pool, 0.5);
    // Var = pool variance (1.0) + h^2 (0.25).
    EXPECT_NEAR(kde.variance(), 1.25, 1e-12);
    Rng rng = testing::testRng(33);
    stats::OnlineSummary s;
    for (int i = 0; i < 50000; ++i)
        s.add(kde.sample(rng));
    EXPECT_NEAR(s.variance(), 1.25, 0.05);
}

TEST(GaussianKde, DegeneratePoolGetsPositiveBandwidth)
{
    GaussianKde kde({3.0, 3.0, 3.0});
    EXPECT_GT(kde.bandwidth(), 0.0);
}

TEST(Truncated, SamplesStayInBounds)
{
    auto base = std::make_shared<Gaussian>(0.0, 2.0);
    Truncated dist(base, -1.0, 1.5);
    Rng rng = testing::testRng(34);
    for (int i = 0; i < 20000; ++i) {
        double x = dist.sample(rng);
        EXPECT_GE(x, -1.0);
        EXPECT_LE(x, 1.5);
    }
}

TEST(Truncated, CdfIsRenormalized)
{
    auto base = std::make_shared<Gaussian>(0.0, 1.0);
    Truncated dist(base, -1.0, 1.0);
    EXPECT_DOUBLE_EQ(dist.cdf(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(1.0), 1.0);
    EXPECT_NEAR(dist.cdf(0.0), 0.5, 1e-10);
}

TEST(Truncated, MeanOfSymmetricTruncationIsCenter)
{
    auto base = std::make_shared<Gaussian>(2.0, 1.0);
    Truncated dist(base, 0.0, 4.0);
    EXPECT_NEAR(dist.mean(), 2.0, 1e-6);
}

TEST(Truncated, KnownTruncatedGaussianMean)
{
    // One-sided truncation of N(0,1) to [0, inf) has mean
    // sqrt(2/pi) ~ 0.79788; use [0, 8] as a numerical stand-in.
    auto base = std::make_shared<Gaussian>(0.0, 1.0);
    Truncated dist(base, 0.0, 8.0);
    EXPECT_NEAR(dist.mean(), std::sqrt(2.0 / M_PI), 1e-4);
}

TEST(Truncated, RejectsEmptyMassInterval)
{
    auto base = std::make_shared<Gaussian>(0.0, 1.0);
    EXPECT_THROW(Truncated(base, 50.0, 51.0), Error);
}

TEST(PointMass, AllQueriesAreDegenerate)
{
    PointMass dist(4.2);
    Rng rng = testing::testRng(35);
    EXPECT_DOUBLE_EQ(dist.sample(rng), 4.2);
    EXPECT_DOUBLE_EQ(dist.mean(), 4.2);
    EXPECT_DOUBLE_EQ(dist.variance(), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(4.19), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(4.2), 1.0);
    EXPECT_DOUBLE_EQ(dist.quantile(0.3), 4.2);
}

} // namespace
} // namespace random
} // namespace uncertain
