/**
 * @file
 * Fault injection against the serving layer: malformed / truncated /
 * oversized frames, bad parameters, unknown models, queue-full
 * admission rejection under a deterministically blocked worker,
 * slow consumers bounded by the transport (not the server), shutdown
 * refusals, and TCP clients disconnecting mid-flight. Every scenario
 * asserts the server stays serviceable afterwards.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/operators.hpp"
#include "core/uncertain.hpp"
#include "serve/serve.hpp"
#include "serve_test_util.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

using serve::LoopbackClient;
using serve::Opcode;
using serve::Request;
using serve::Response;
using serve::ServerOptions;
using serve::Status;
using serve::UncertainServer;
using testing::serveChainRequest;
using testing::sweptServerSeed;

/**
 * A latch the blocker model's sampler parks on: enter() blocks until
 * release(), which opens the gate permanently. Lets a test hold a
 * worker mid-execution at a deterministic point.
 */
struct Gate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool entered = false;
    bool released = false;

    void
    enter()
    {
        std::unique_lock<std::mutex> lock(mutex);
        entered = true;
        cv.notify_all();
        cv.wait(lock, [this] { return released; });
    }

    void
    waitEntered()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return entered; });
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mutex);
        released = true;
        cv.notify_all();
    }
};

constexpr std::uint32_t kBlockerModel = 99;

/** Register a model whose every draw parks on @p gate until it is
 *  released (scalar sampler only — the plan's fallback loop). */
void
registerBlockerModel(UncertainServer& server, std::shared_ptr<Gate> gate)
{
    server.registerModel(
        kBlockerModel,
        [gate](const std::vector<double>&, Rng&,
               serve::ModelInstance& out) {
            Uncertain<double> x = Uncertain<double>::fromSampler(
                [gate](Rng& rng) {
                    gate->enter();
                    return rng.nextDouble();
                },
                "gate-blocked");
            out.value = x.node();
            out.event = (x > 0.5).node();
            out.fast = out.event;
            out.slow = (x < 0.5).node();
            return true;
        });
}

TEST(ServeFault, MalformedFramesAreAnsweredAndServerStaysUp)
{
    UncertainServer server;
    server.start();
    LoopbackClient client(server);

    // Arbitrary junk: too short to even carry a header.
    const std::uint8_t junk[] = {0xde, 0xad, 0xbe, 0xef};
    client.sendRaw(junk, sizeof junk);
    Response reply;
    ASSERT_TRUE(client.receive(reply));
    EXPECT_EQ(reply.status, Status::Malformed);

    // A valid request truncated mid-body.
    const std::vector<std::uint8_t> frame =
        serve::encodeRequest(serveChainRequest(Opcode::Pr, 3, 1));
    client.sendRaw(frame.data() + 4, frame.size() - 4 - 5);
    ASSERT_TRUE(client.receive(reply));
    EXPECT_EQ(reply.status, Status::Malformed);
    // The header survived the truncation, so the refusal echoes ids.
    EXPECT_EQ(reply.tenantId, 3u);
    EXPECT_EQ(reply.requestId, 1u);

    // The connection (conceptually) stays usable afterwards.
    EXPECT_EQ(client.call(serveChainRequest(Opcode::Pr, 3, 2)).status,
              Status::Ok);
    EXPECT_EQ(serve::serverStats(server).malformed, 2u);
}

TEST(ServeFault, OversizedPayloadIsAnsweredTooLarge)
{
    UncertainServer server;
    server.start();
    LoopbackClient client(server);

    const std::vector<std::uint8_t> big(
        serve::kMaxRequestFrameBytes + 1, 0);
    client.sendRaw(big.data(), big.size());
    Response reply;
    ASSERT_TRUE(client.receive(reply));
    EXPECT_EQ(reply.status, Status::TooLarge);
    EXPECT_EQ(client.call(serveChainRequest(Opcode::Pr, 1, 1)).status,
              Status::Ok);
}

TEST(ServeFault, BadParamsAndUnknownModelsAreRefused)
{
    UncertainServer server;
    server.start();
    LoopbackClient client(server);

    // sigma <= 0: the builder refuses, discovered at execution.
    Request badSigma =
        serveChainRequest(Opcode::Pr, 1, 1, 0.0, -1.0, 4.0, 0.5);
    EXPECT_EQ(client.call(badSigma).status, Status::BadRequest);

    // Pr threshold outside (0, 1): refused at admission.
    Request badThreshold = serveChainRequest(Opcode::Pr, 1, 2);
    badThreshold.threshold = 1.5;
    EXPECT_EQ(client.call(badThreshold).status, Status::BadRequest);

    // Unregistered model id: refused at admission.
    Request unknown = serveChainRequest(Opcode::Pr, 1, 3);
    unknown.modelId = 777;
    EXPECT_EQ(client.call(unknown).status, Status::UnknownModel);

    // None of that poisoned the server.
    EXPECT_EQ(client.call(serveChainRequest(Opcode::Pr, 1, 4)).status,
              Status::Ok);
    const serve::ServerStats stats = serve::serverStats(server);
    EXPECT_EQ(stats.badRequest, 2u);
    EXPECT_EQ(stats.unknownModel, 1u);
    EXPECT_EQ(stats.executed, 1u);
}

TEST(ServeFault, QueueFullRejectsWithExplicitOverloadStatus)
{
    ServerOptions options;
    options.seed = sweptServerSeed(41);
    options.queueCapacity = 2;
    options.maxBatch = 1;
    options.batchWindowMicros = 0;
    options.workers = 1;
    // Keep the blocked query cheap once the gate opens.
    options.conditional.sprt.maxSamples = 64;
    UncertainServer server(options);
    auto gate = std::make_shared<Gate>();
    registerBlockerModel(server, gate);
    server.start();
    LoopbackClient client(server);

    const auto blocked = [](std::uint64_t id) {
        Request request;
        request.opcode = Opcode::Pr;
        request.tenantId = 1;
        request.requestId = id;
        request.modelId = kBlockerModel;
        return request;
    };

    // The worker dequeues the first request and parks on the gate;
    // the queue is then provably empty.
    client.send(blocked(1));
    gate->waitEntered();
    // Fill the bounded queue to capacity, then overflow it.
    client.send(blocked(2));
    client.send(blocked(3));
    client.send(blocked(4));

    // The overflow is answered immediately — the only reply that can
    // exist while the worker is still parked.
    Response overloaded;
    ASSERT_TRUE(client.receive(overloaded));
    EXPECT_EQ(overloaded.status, Status::Overloaded);
    EXPECT_EQ(overloaded.requestId, 4u);

    // Release the gate: the parked and queued requests all complete
    // and the server stays serviceable.
    gate->release();
    for (int i = 0; i < 3; ++i) {
        Response reply;
        ASSERT_TRUE(client.receive(reply));
        EXPECT_EQ(reply.status, Status::Ok);
    }
    EXPECT_EQ(client.call(serveChainRequest(Opcode::Pr, 1, 5)).status,
              Status::Ok);

    const serve::ServerStats stats = serve::serverStats(server);
    EXPECT_EQ(stats.rejectedOverload, 1u);
    EXPECT_EQ(stats.queuePeak, 2u);
}

TEST(ServeFault, SlowConsumerIsBoundedWithoutBlockingTheServer)
{
    ServerOptions options;
    options.seed = sweptServerSeed(42);
    UncertainServer server(options);
    server.start();

    // A consumer that never drains its single-slot inbox.
    LoopbackClient slow(server, /*inboxCapacity=*/1);
    constexpr int kRequests = 5;
    for (std::uint64_t id = 0; id < kRequests; ++id) {
        Request request =
            serveChainRequest(Opcode::ExpectedValue, 8, id);
        request.sampleCount = 64;
        slow.send(request);
    }

    // A healthy client is served while the slow one backs up.
    LoopbackClient healthy(server);
    EXPECT_EQ(
        healthy.call(serveChainRequest(Opcode::Pr, 9, 1)).status,
        Status::Ok);

    // Wait (bounded) until all replies have been delivered to sinks.
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(30);
    while (serve::serverStats(server).executed < kRequests + 1
           && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(serve::serverStats(server).executed,
              static_cast<std::uint64_t>(kRequests) + 1);

    // The transport buffered one reply and dropped the rest — the
    // slow consumer's problem stayed the slow consumer's problem.
    EXPECT_EQ(slow.pendingReplies(), 1u);
    EXPECT_EQ(slow.dropped(), static_cast<std::uint64_t>(kRequests - 1));
    Response buffered;
    EXPECT_TRUE(slow.receive(buffered));
    EXPECT_EQ(buffered.status, Status::Ok);
}

TEST(ServeFault, BatchWindowBoundsALoneRequestsLatency)
{
    // With a large maxBatch a lone request must still be answered
    // after at most one batch window — coalescing never waits for a
    // batch to fill.
    ServerOptions options;
    options.seed = sweptServerSeed(43);
    options.maxBatch = 64;
    options.batchWindowMicros = 2000;
    UncertainServer server(options);
    server.start();
    LoopbackClient client(server);

    const Response reply =
        client.call(serveChainRequest(Opcode::Pr, 1, 1),
                    std::chrono::milliseconds(30000));
    EXPECT_EQ(reply.status, Status::Ok);
    const serve::ServerStats stats = serve::serverStats(server);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.batchOccupancyMax, 1u);
    EXPECT_EQ(stats.coalescedRequests, 0u);
}

TEST(ServeFault, StoppedServerRefusesWithShuttingDown)
{
    UncertainServer server;
    server.start();
    LoopbackClient client(server);
    EXPECT_EQ(client.call(serveChainRequest(Opcode::Pr, 1, 1)).status,
              Status::Ok);

    server.stop();
    Response refused;
    client.send(serveChainRequest(Opcode::Pr, 1, 2));
    ASSERT_TRUE(client.receive(refused));
    EXPECT_EQ(refused.status, Status::ShuttingDown);
    EXPECT_GE(serve::serverStats(server).shuttingDown, 1u);
}

// ---------------------------------------------------------------------
// TCP transport faults. Binding a localhost socket can be forbidden
// in sandboxes; those tests skip rather than fail there.
// ---------------------------------------------------------------------

std::unique_ptr<serve::TcpTransport>
tryBind(UncertainServer& server)
{
    try {
        return std::make_unique<serve::TcpTransport>(server);
    } catch (const Error&) {
        return nullptr;
    }
}

TEST(ServeFault, TcpRoundTripAndDisconnectMidFlight)
{
    UncertainServer server;
    server.start();
    auto transport = tryBind(server);
    if (!transport)
        GTEST_SKIP() << "cannot bind a localhost socket here";

    {
        serve::TcpClient client(transport->port());
        const Response reply =
            client.call(serveChainRequest(Opcode::Pr, 1, 1));
        EXPECT_EQ(reply.status, Status::Ok);
        EXPECT_EQ(reply.tenantId, 1u);

        // Disconnect with a request still in flight: the reply is
        // dropped by the transport, never by the server core.
        Request inflight =
            serveChainRequest(Opcode::ExpectedValue, 1, 2);
        inflight.sampleCount = 2000;
        client.send(inflight);
        client.closeAbruptly();
    }

    // The server keeps serving new connections.
    serve::TcpClient fresh(transport->port());
    EXPECT_EQ(fresh.call(serveChainRequest(Opcode::Pr, 2, 1)).status,
              Status::Ok);
    EXPECT_GE(transport->connectionsAccepted(), 2u);
    transport->stop();
}

TEST(ServeFault, TcpOversizedFrameIsRefusedAndConnectionClosed)
{
    UncertainServer server;
    server.start();
    auto transport = tryBind(server);
    if (!transport)
        GTEST_SKIP() << "cannot bind a localhost socket here";

    serve::TcpClient abusive(transport->port());
    // A length prefix claiming more than the cap: answered TooLarge,
    // then the connection is closed (the offset is untrustworthy).
    const std::uint32_t length =
        static_cast<std::uint32_t>(serve::kMaxRequestFrameBytes) + 1;
    const std::uint8_t prefix[4] = {
        static_cast<std::uint8_t>(length & 0xff),
        static_cast<std::uint8_t>((length >> 8) & 0xff),
        static_cast<std::uint8_t>((length >> 16) & 0xff),
        static_cast<std::uint8_t>((length >> 24) & 0xff)};
    abusive.sendBytes(prefix, sizeof prefix);
    Response reply;
    ASSERT_TRUE(abusive.receive(reply));
    EXPECT_EQ(reply.status, Status::TooLarge);

    // Other clients are unaffected.
    serve::TcpClient polite(transport->port());
    EXPECT_EQ(polite.call(serveChainRequest(Opcode::Pr, 1, 1)).status,
              Status::Ok);
    transport->stop();
}

} // namespace
} // namespace uncertain
