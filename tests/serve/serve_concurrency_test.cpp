/**
 * @file
 * Concurrency stress for the serving layer, run under TSan in CI
 * (suite ServeThreading is in the sanitizer filter): sixteen loopback
 * clients across multiple tenants against a multi-worker server, with
 * the concurrent replies checked bit-for-bit against a quiet
 * single-worker replay — arrival interleaving and worker scheduling
 * must never leak into results. A second test hammers submit() while
 * the server stops and insists every request is answered.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/serve.hpp"
#include "serve_test_util.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

using serve::LoopbackClient;
using serve::Opcode;
using serve::Request;
using serve::Response;
using serve::ServerOptions;
using serve::Status;
using serve::UncertainServer;
using testing::expectIdenticalReplies;
using testing::serveChainRequest;
using testing::sweptServerSeed;

/** The mixed per-client workload: tenants alternate between two
 *  chain parameterizations and cycle the read opcodes. */
Request
stressRequest(std::uint64_t tenant, std::uint64_t id)
{
    const double mu = (tenant % 2 == 0) ? 0.0 : 2.0;
    const double depth = (tenant % 2 == 0) ? 8.0 : 16.0;
    Request request = serveChainRequest(
        Opcode::Pr, tenant, id, mu, 1.0, depth, mu + 1.0);
    switch (id % 3) {
      case 0:
        break;
      case 1:
        request.opcode = Opcode::ExpectedValue;
        request.sampleCount = 200;
        break;
      default:
        request.opcode = Opcode::TakeSamples;
        request.sampleCount = 32;
        break;
    }
    return request;
}

TEST(ServeThreading, SixteenClientsMatchSingleThreadedReplay)
{
    ServerOptions options;
    options.seed = sweptServerSeed(51);
    options.workers = 2;
    options.maxBatch = 8;
    options.batchWindowMicros = 500;
    UncertainServer server(options);
    server.start();

    constexpr std::uint64_t kClients = 16;
    constexpr std::uint64_t kRequestsPerClient = 12;

    std::vector<std::vector<Response>> replies(kClients);
    std::atomic<std::uint64_t> failures{0};
    {
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (std::uint64_t t = 0; t < kClients; ++t) {
            clients.emplace_back([&, t] {
                LoopbackClient client(server);
                for (std::uint64_t id = 0; id < kRequestsPerClient;
                     ++id) {
                    Response response;
                    client.send(stressRequest(t, id));
                    if (!client.receive(response)
                        || response.status != Status::Ok) {
                        ++failures;
                        continue;
                    }
                    replies[t].push_back(response);
                }
            });
        }
        for (std::thread& client : clients)
            client.join();
    }
    ASSERT_EQ(failures.load(), 0u);

    // Quiet replay: one worker, no contention, same seed. Every
    // stressed reply must reproduce bit for bit.
    ServerOptions quiet = options;
    quiet.workers = 1;
    UncertainServer replayServer(quiet);
    replayServer.start();
    LoopbackClient replayClient(replayServer);
    for (std::uint64_t t = 0; t < kClients; ++t) {
        ASSERT_EQ(replies[t].size(), kRequestsPerClient);
        for (std::uint64_t id = 0; id < kRequestsPerClient; ++id) {
            SCOPED_TRACE(::testing::Message()
                         << "tenant " << t << " request " << id);
            expectIdenticalReplies(
                replies[t][id],
                replayClient.call(stressRequest(t, id)));
        }
    }

    // The books balance across the stress run.
    const serve::ServerStats stats = serve::serverStats(server);
    EXPECT_EQ(stats.received, kClients * kRequestsPerClient);
    EXPECT_EQ(stats.executed, kClients * kRequestsPerClient);
    std::uint64_t perTenantExecuted = 0;
    for (const auto& [tenant, slice] : stats.tenants)
        perTenantExecuted += slice.executed;
    EXPECT_EQ(perTenantExecuted, stats.executed);
    EXPECT_EQ(stats.latencySamples, stats.executed);
}

TEST(ServeThreading, StopUnderLoadAnswersEverySubmit)
{
    ServerOptions options;
    options.seed = sweptServerSeed(52);
    options.workers = 2;
    options.batchWindowMicros = 200;
    UncertainServer server(options);
    server.start();

    constexpr std::uint64_t kClients = 8;
    constexpr std::uint64_t kRequestsPerClient = 25;

    std::vector<std::unique_ptr<LoopbackClient>> clients;
    for (std::uint64_t t = 0; t < kClients; ++t)
        clients.push_back(std::make_unique<LoopbackClient>(server));

    {
        std::vector<std::thread> senders;
        for (std::uint64_t t = 0; t < kClients; ++t) {
            senders.emplace_back([&, t] {
                for (std::uint64_t id = 0; id < kRequestsPerClient;
                     ++id)
                    clients[t]->send(stressRequest(t, id));
            });
        }
        // Stop while the senders are still pushing: some requests
        // execute, the rest must be refused — never dropped.
        server.stop();
        for (std::thread& sender : senders)
            sender.join();
    }

    std::uint64_t okReplies = 0;
    std::uint64_t refusedReplies = 0;
    for (std::uint64_t t = 0; t < kClients; ++t) {
        for (std::uint64_t id = 0; id < kRequestsPerClient; ++id) {
            Response response;
            ASSERT_TRUE(clients[t]->receive(
                response, std::chrono::milliseconds(30000)))
                << "tenant " << t << " lost a reply";
            if (response.status == Status::Ok)
                ++okReplies;
            else {
                EXPECT_EQ(response.status, Status::ShuttingDown);
                ++refusedReplies;
            }
        }
    }
    EXPECT_EQ(okReplies + refusedReplies,
              kClients * kRequestsPerClient);
    const serve::ServerStats stats = serve::serverStats(server);
    EXPECT_EQ(stats.received, kClients * kRequestsPerClient);
    EXPECT_EQ(stats.executed, okReplies);
    EXPECT_EQ(stats.shuttingDown, refusedReplies);
}

} // namespace
} // namespace uncertain
