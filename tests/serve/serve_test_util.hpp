/**
 * @file
 * Shared helpers for the serve test shard: canned requests against
 * the builtin models and a field-by-field reply comparison used by
 * the reproducibility suites.
 */

#ifndef UNCERTAIN_TESTS_SERVE_TEST_UTIL_HPP
#define UNCERTAIN_TESTS_SERVE_TEST_UTIL_HPP

#include <gtest/gtest.h>

#include <cstdint>

#include "serve/serve.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace testing {

/** Gaussian-chain request: builtin model, params
 *  [mu, sigma, depth, cut]. */
inline serve::Request
serveChainRequest(serve::Opcode opcode, std::uint64_t tenant,
                  std::uint64_t id, double mu = 0.0,
                  double sigma = 1.0, double depth = 8.0,
                  double cut = 0.5)
{
    serve::Request request;
    request.opcode = opcode;
    request.tenantId = tenant;
    request.requestId = id;
    request.modelId = serve::kModelGaussianChain;
    request.params = {mu, sigma, depth, cut};
    return request;
}

/** The fix-pair parameterization the serve tests reuse for the
 *  builtin gps-speed (fig11 posterior) model. */
inline serve::Request
serveGpsRequest(serve::Opcode opcode, std::uint64_t tenant,
                std::uint64_t id)
{
    serve::Request request;
    request.opcode = opcode;
    request.tenantId = tenant;
    request.requestId = id;
    request.modelId = serve::kModelGpsSpeed;
    // [lat, lon, epsilon95, bearingRadians, distanceMeters, dtSeconds]
    request.params = {47.6, -122.3, 30.0, 0.7, 6.0, 3.0};
    return request;
}

/** Field-by-field reply comparison; the served streams are
 *  deterministic, so doubles compare exactly. */
inline void
expectIdenticalReplies(const serve::Response& a,
                       const serve::Response& b)
{
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.opcode, b.opcode);
    EXPECT_EQ(a.decision, b.decision);
    EXPECT_EQ(a.tenantId, b.tenantId);
    EXPECT_EQ(a.requestId, b.requestId);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.samplesUsed, b.samplesUsed);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i)
        EXPECT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
}

/** Server seed folded with the sweep offset so the seed sweeps of
 *  stat_flake_audit.py actually vary the served streams. */
inline std::uint64_t
sweptServerSeed(std::uint64_t salt)
{
    return 0x5eedULL
           ^ ((salt + testSeedOffset()) * 0x9e3779b97f4a7c15ULL);
}

} // namespace testing
} // namespace uncertain

#endif // UNCERTAIN_TESTS_SERVE_TEST_UTIL_HPP
