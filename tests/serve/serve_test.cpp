/**
 * @file
 * Deterministic loopback tests for the serving layer: protocol
 * round-trips, per-tenant seed reproducibility (bit-identical replies
 * across runs and arrival interleavings), coalesced-vs-direct
 * equivalence against a BatchSampler driven by hand, and statistical
 * KS entries for the served gaussian-chain law and the fig11 speed
 * posterior (suite ServeStatistical; swept by stat_flake_audit.py).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/operators.hpp"
#include "core/uncertain.hpp"
#include "gps/geo.hpp"
#include "gps/sensor.hpp"
#include "gps/walking.hpp"
#include "inference/reweight.hpp"
#include "random/gaussian.hpp"
#include "serve/serve.hpp"
#include "serve_test_util.hpp"
#include "stat_assert.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

using serve::LoopbackClient;
using serve::Opcode;
using serve::Request;
using serve::Response;
using serve::ServerOptions;
using serve::Status;
using serve::UncertainServer;
using testing::expectIdenticalReplies;
using testing::serveChainRequest;
using testing::serveGpsRequest;
using testing::sweptServerSeed;

// ---------------------------------------------------------------------
// Protocol round-trips.
// ---------------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripsThroughTheCodec)
{
    Request request;
    request.opcode = Opcode::TakeSamples;
    request.tenantId = 0x0123456789abcdefULL;
    request.requestId = 0xfedcba9876543210ULL;
    request.modelId = 42;
    request.sampleCount = 512;
    request.threshold = 0.625;
    request.params = {-1.5, 0.0, 3.25, 1e-9};

    const std::vector<std::uint8_t> frame =
        serve::encodeRequest(request);
    ASSERT_GE(frame.size(), 4u);
    // The length prefix covers exactly the rest of the frame.
    const std::size_t payload = frame.size() - 4;
    EXPECT_EQ(frame[0], payload & 0xff);
    EXPECT_EQ(frame[1], (payload >> 8) & 0xff);

    Request decoded;
    ASSERT_EQ(serve::decodeRequest(frame.data() + 4, payload, decoded),
              Status::Ok);
    EXPECT_EQ(decoded.opcode, request.opcode);
    EXPECT_EQ(decoded.tenantId, request.tenantId);
    EXPECT_EQ(decoded.requestId, request.requestId);
    EXPECT_EQ(decoded.modelId, request.modelId);
    EXPECT_EQ(decoded.sampleCount, request.sampleCount);
    EXPECT_EQ(decoded.threshold, request.threshold);
    EXPECT_EQ(decoded.params, request.params);
}

TEST(ServeProtocol, ResponseRoundTripsThroughTheCodec)
{
    Response response;
    response.status = Status::Ok;
    response.opcode = Opcode::Pr;
    response.decision = 2;
    response.tenantId = 7;
    response.requestId = 99;
    response.value = 0.8125;
    response.samplesUsed = 430;
    response.samples = {1.0, -2.5, 0.0};

    const std::vector<std::uint8_t> frame =
        serve::encodeResponse(response);
    ASSERT_GE(frame.size(), 4u);

    Response decoded;
    ASSERT_TRUE(serve::decodeResponse(frame.data() + 4,
                                      frame.size() - 4, decoded));
    expectIdenticalReplies(decoded, response);
}

TEST(ServeProtocol, DecodeRejectsBadMagicVersionAndTrailingBytes)
{
    const Request request = serveChainRequest(Opcode::Pr, 1, 1);
    std::vector<std::uint8_t> frame = serve::encodeRequest(request);
    std::vector<std::uint8_t> payload(frame.begin() + 4, frame.end());

    Request decoded;
    // Bad magic.
    std::vector<std::uint8_t> bad = payload;
    bad[0] ^= 0xff;
    EXPECT_EQ(serve::decodeRequest(bad.data(), bad.size(), decoded),
              Status::Malformed);
    // Bad version.
    bad = payload;
    bad[4] ^= 0xff;
    EXPECT_EQ(serve::decodeRequest(bad.data(), bad.size(), decoded),
              Status::Malformed);
    // Truncated body.
    EXPECT_EQ(serve::decodeRequest(payload.data(), payload.size() - 3,
                                   decoded),
              Status::Malformed);
    // Trailing bytes.
    bad = payload;
    bad.push_back(0);
    EXPECT_EQ(serve::decodeRequest(bad.data(), bad.size(), decoded),
              Status::Malformed);
    // The header parsed, so the mangled-body error recovered the ids.
    EXPECT_EQ(decoded.tenantId, request.tenantId);
    EXPECT_EQ(decoded.requestId, request.requestId);
}

TEST(ServeProtocol, DecodeRejectsOutOfRangeFields)
{
    Request request = serveChainRequest(Opcode::Pr, 1, 1);
    Request decoded;

    // Unknown opcode.
    std::vector<std::uint8_t> frame = serve::encodeRequest(request);
    frame[4 + 6] = 0x7f; // opcode low byte within the payload
    EXPECT_EQ(serve::decodeRequest(frame.data() + 4, frame.size() - 4,
                                   decoded),
              Status::BadRequest);

    // Too many params.
    request.params.assign(serve::kMaxParams + 1, 0.0);
    frame = serve::encodeRequest(request);
    EXPECT_EQ(serve::decodeRequest(frame.data() + 4, frame.size() - 4,
                                   decoded),
              Status::BadRequest);

    // TakeSamples beyond the per-reply cap.
    request = serveChainRequest(Opcode::TakeSamples, 1, 1);
    request.sampleCount =
        static_cast<std::uint32_t>(serve::kMaxSamplesPerReply + 1);
    frame = serve::encodeRequest(request);
    EXPECT_EQ(serve::decodeRequest(frame.data() + 4, frame.size() - 4,
                                   decoded),
              Status::BadRequest);
}

// ---------------------------------------------------------------------
// Per-tenant seed reproducibility.
// ---------------------------------------------------------------------

TEST(ServeRepro, RepliesAreBitIdenticalAcrossArrivalOrders)
{
    ServerOptions options;
    options.seed = sweptServerSeed(11);

    // A mixed workload across three tenants and both builtin models.
    std::vector<Request> workload;
    for (std::uint64_t tenant = 1; tenant <= 3; ++tenant) {
        workload.push_back(serveChainRequest(Opcode::Pr, tenant, 1));
        workload.push_back(
            serveChainRequest(Opcode::ExpectedValue, tenant, 2));
        Request take = serveChainRequest(Opcode::TakeSamples, tenant, 3);
        take.sampleCount = 64;
        workload.push_back(take);
        workload.push_back(serveGpsRequest(Opcode::Advise, tenant, 4));
    }

    using Key = std::pair<std::uint64_t, std::uint64_t>;
    const auto serveAll =
        [](ServerOptions opts,
           std::vector<Request> requests) -> std::map<Key, Response> {
        UncertainServer server(std::move(opts));
        server.start();
        LoopbackClient client(server);
        for (const Request& request : requests)
            client.send(request);
        std::map<Key, Response> replies;
        for (std::size_t i = 0; i < requests.size(); ++i) {
            Response response;
            EXPECT_TRUE(client.receive(response));
            EXPECT_EQ(response.status, Status::Ok);
            replies[{response.tenantId, response.requestId}] = response;
        }
        return replies;
    };

    const auto forward = serveAll(options, workload);
    std::vector<Request> reversed(workload.rbegin(), workload.rend());
    const auto backward = serveAll(options, reversed);

    ASSERT_EQ(forward.size(), workload.size());
    ASSERT_EQ(backward.size(), workload.size());
    for (const auto& [key, response] : forward) {
        SCOPED_TRACE(::testing::Message()
                     << "tenant " << key.first << " request "
                     << key.second);
        expectIdenticalReplies(response, backward.at(key));
    }
}

TEST(ServeRepro, ReplayingARequestIdYieldsTheSameReply)
{
    ServerOptions options;
    options.seed = sweptServerSeed(12);
    UncertainServer server(options);
    server.start();
    LoopbackClient client(server);

    Request take = serveChainRequest(Opcode::TakeSamples, 9, 1234);
    take.sampleCount = 128;
    const Response first = client.call(take);
    const Response replay = client.call(take);
    ASSERT_EQ(first.status, Status::Ok);
    expectIdenticalReplies(first, replay);

    // A different requestId is a different stream.
    Request other = take;
    other.requestId = 1235;
    const Response different = client.call(other);
    ASSERT_EQ(different.status, Status::Ok);
    EXPECT_NE(different.samples, first.samples);
}

TEST(ServeRepro, SharePlansAxisDoesNotChangeReplies)
{
    // Coalescing / plan sharing is a scheduling optimization: the
    // per-request-compile baseline must produce identical bits.
    ServerOptions coalesced;
    coalesced.seed = sweptServerSeed(13);

    ServerOptions perRequest = coalesced;
    perRequest.sharePlans = false;
    perRequest.maxBatch = 1;
    perRequest.batchWindowMicros = 0;

    std::vector<Request> workload;
    workload.push_back(serveChainRequest(Opcode::Pr, 5, 1));
    workload.push_back(serveChainRequest(Opcode::ExpectedValue, 5, 2));
    Request take = serveChainRequest(Opcode::TakeSamples, 6, 3);
    take.sampleCount = 96;
    workload.push_back(take);
    workload.push_back(serveGpsRequest(Opcode::Advise, 6, 4));

    UncertainServer serverA(coalesced);
    serverA.start();
    UncertainServer serverB(perRequest);
    serverB.start();
    LoopbackClient clientA(serverA);
    LoopbackClient clientB(serverB);
    for (const Request& request : workload) {
        SCOPED_TRACE(::testing::Message()
                     << "request " << request.requestId);
        expectIdenticalReplies(clientA.call(request),
                               clientB.call(request));
    }
}

TEST(ServeRepro, RebuiltInstancesReproduceAfterCacheEviction)
{
    // Capacity 1 forces the gps instance to evict the chain instance
    // and vice versa; rebuilt instances must serve identical bits
    // because the build stream is a pure function of (seed, model,
    // params).
    ServerOptions options;
    options.seed = sweptServerSeed(14);
    options.modelInstanceCapacity = 1;
    UncertainServer server(options);
    server.start();
    LoopbackClient client(server);

    Request chain = serveChainRequest(Opcode::TakeSamples, 2, 10);
    chain.sampleCount = 32;
    Request gpsTake = serveGpsRequest(Opcode::TakeSamples, 2, 11);
    gpsTake.sampleCount = 32;

    const Response chainFirst = client.call(chain);
    const Response gpsFirst = client.call(gpsTake);
    const Response chainAgain = client.call(chain); // rebuilt
    const Response gpsAgain = client.call(gpsTake); // rebuilt
    expectIdenticalReplies(chainFirst, chainAgain);
    expectIdenticalReplies(gpsFirst, gpsAgain);
    EXPECT_GE(serve::serverStats(server).modelBuilds, 3u);
}

// ---------------------------------------------------------------------
// Coalesced-vs-direct equivalence.
// ---------------------------------------------------------------------

/** The gaussian-chain graph exactly as the builtin builder shapes it;
 *  plans are pure functions of graph shape, so a locally built twin
 *  must reproduce the server's draws. */
struct ChainTwin
{
    Uncertain<double> value;
    Uncertain<bool> event;

    ChainTwin(double mu, double sigma, int depth, double cut)
        : value(core::fromDistribution(
              std::make_shared<random::Gaussian>(mu, sigma))),
          event(value > cut)
    {
        for (int i = 0; i < depth; ++i)
            value = value + serve::kGaussianChainStep;
        event = value > cut;
    }
};

TEST(ServeEquivalence, PrMatchesDirectBatchSampler)
{
    ServerOptions options;
    options.seed = sweptServerSeed(21);
    UncertainServer server(options);
    server.start();
    LoopbackClient client(server);

    const Request request =
        serveChainRequest(Opcode::Pr, 7, 42, 0.25, 1.5, 12.0, 1.0);
    Request threshold = request;
    threshold.threshold = 0.6;
    const Response response = client.call(threshold);
    ASSERT_EQ(response.status, Status::Ok);

    ChainTwin twin(0.25, 1.5, 12, 1.0);
    core::BatchSampler sampler(options.batch);
    Rng rng = Rng(options.seed).split(7).split(42);
    const core::ConditionalResult direct = sampler.evaluateCondition(
        twin.event.node(), 0.6, options.conditional, rng);

    EXPECT_EQ(response.decision,
              static_cast<std::uint16_t>(direct.decision));
    EXPECT_EQ(response.value, direct.estimate);
    EXPECT_EQ(response.samplesUsed, direct.samplesUsed);
}

TEST(ServeEquivalence, ExpectedValueAndSamplesMatchDirectBatchSampler)
{
    ServerOptions options;
    options.seed = sweptServerSeed(22);
    UncertainServer server(options);
    server.start();
    LoopbackClient client(server);

    Request ev = serveChainRequest(Opcode::ExpectedValue, 3, 8, -1.0, 0.5,
                              4.0, 0.0);
    ev.sampleCount = 500;
    const Response evReply = client.call(ev);
    ASSERT_EQ(evReply.status, Status::Ok);

    Request take = ev;
    take.opcode = Opcode::TakeSamples;
    take.requestId = 9;
    take.sampleCount = 200;
    const Response takeReply = client.call(take);
    ASSERT_EQ(takeReply.status, Status::Ok);

    ChainTwin twin(-1.0, 0.5, 4, 0.0);
    core::BatchSampler sampler(options.batch);

    Rng evRng = Rng(options.seed).split(3).split(8);
    EXPECT_EQ(evReply.value,
              sampler.expectedValue<double>(twin.value.node(), 500,
                                            evRng));

    Rng takeRng = Rng(options.seed).split(3).split(9);
    const std::vector<double> direct =
        sampler.takeSamples<double>(twin.value.node(), 200, takeRng);
    ASSERT_EQ(takeReply.samples.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(takeReply.samples[i], direct[i]) << "sample " << i;
}

TEST(ServeEquivalence, AdviseMatchesWalkingDecisionLogic)
{
    ServerOptions options;
    options.seed = sweptServerSeed(23);
    UncertainServer server(options);
    server.start();
    LoopbackClient client(server);

    // Chain mean 8 mph: clearly brisk -> GoodJob. Mean 0.5: clearly
    // slow -> SpeedUp (>= 90% evidence). Mean 3.5 with sd 1: neither
    // convincingly brisk (Pr[x > 4] ~ 0.31, far below the 0.5 bar)
    // nor >= 90% slow (Pr[x < 4] ~ 0.69), so both SPRTs accept their
    // null with a wide margin -> None. (Sitting the mean exactly on
    // the 4 mph cut would make the brisk test a coin flip.)
    const Response brisk = client.call(
        serveChainRequest(Opcode::Advise, 1, 1, 8.0, 0.5, 0.0, 0.0));
    ASSERT_EQ(brisk.status, Status::Ok);
    EXPECT_EQ(brisk.decision,
              static_cast<std::uint16_t>(gps::Advice::GoodJob));

    const Response slow = client.call(
        serveChainRequest(Opcode::Advise, 1, 2, 0.5, 0.5, 0.0, 0.0));
    ASSERT_EQ(slow.status, Status::Ok);
    EXPECT_EQ(slow.decision,
              static_cast<std::uint16_t>(gps::Advice::SpeedUp));

    const Response borderline = client.call(serveChainRequest(
        Opcode::Advise, 1, 3, 3.5, 1.0, 0.0, 0.0));
    ASSERT_EQ(borderline.status, Status::Ok);
    EXPECT_EQ(borderline.decision,
              static_cast<std::uint16_t>(gps::Advice::None));
}

TEST(ServeEquivalence, CoalescedGroupsShareThePlanCache)
{
    // Many tenants asking the same model through one batch window
    // must resolve one plan lineage, not one per request.
    ServerOptions options;
    options.seed = sweptServerSeed(24);
    options.maxBatch = 16;
    options.batchWindowMicros = 50000; // generous: gather everything
    UncertainServer server(options);
    LoopbackClient client(server);

    // Queue the whole burst before starting the workers: the first
    // gather deterministically finds all eight requests waiting.
    std::vector<Request> burst;
    for (std::uint64_t tenant = 1; tenant <= 8; ++tenant)
        burst.push_back(serveChainRequest(Opcode::Pr, tenant, 100));
    for (const Request& request : burst)
        client.send(request);
    server.start();
    for (std::size_t i = 0; i < burst.size(); ++i) {
        Response response;
        ASSERT_TRUE(client.receive(response));
        EXPECT_EQ(response.status, Status::Ok);
    }

    const serve::ServerStats stats = serve::serverStats(server);
    EXPECT_EQ(stats.executed, burst.size());
    EXPECT_GE(stats.coalescedRequests, 2u);
    EXPECT_LT(stats.batches, burst.size());
    // One event-root plan serves the whole group: compiles stay O(1)
    // in the number of requests.
    const core::PlanCacheStats cacheStats =
        server.planCache()->stats();
    EXPECT_GE(cacheStats.hits, 1u);
    EXPECT_FALSE(serverReport(stats).empty());
}

// ---------------------------------------------------------------------
// Statistical conformance of served laws (swept by stat_flake_audit).
// ---------------------------------------------------------------------

TEST(ServeStatistical, ServedGaussianChainMatchesAnalyticLaw)
{
    ServerOptions options;
    options.seed = sweptServerSeed(31);
    UncertainServer server(options);
    server.start();
    LoopbackClient client(server);

    const double mu = 1.0;
    const double sigma = 2.0;
    const double depth = 16.0;
    std::vector<double> samples;
    for (std::uint64_t id = 0; id < 4; ++id) {
        Request take =
            serveChainRequest(Opcode::TakeSamples, 40, id, mu, sigma, depth,
                         0.0);
        take.sampleCount = 1024;
        const Response reply = client.call(take);
        ASSERT_EQ(reply.status, Status::Ok);
        samples.insert(samples.end(), reply.samples.begin(),
                       reply.samples.end());
    }

    const double servedMean =
        mu + depth * serve::kGaussianChainStep;
    const random::Gaussian law(servedMean, sigma);
    EXPECT_TRUE(testing::ksMatchesDistribution(samples, law));
    EXPECT_TRUE(testing::momentsMatch(samples, servedMean, sigma));
}

TEST(ServeStatistical, ServedSpeedPosteriorMatchesDirectPipeline)
{
    // The fig11 posterior, two ways. (a) Calibrated two-sample KS:
    // two tenants draw from the SAME served pool through independent
    // per-tenant streams, so both sides are iid the same empirical
    // law and the test runs at its nominal alpha. (b) Cross-pipeline
    // moments: the served pool and a hand-built speedFromFixes +
    // improveSpeed pool are both finite SIR approximations of the
    // same posterior, so their empirical CDFs differ by O(1/sqrt(
    // resampleSize)) — more than a 2k-sample KS resolves. Compare
    // mean/sd with an explicit pool-noise term instead.
    ServerOptions options;
    options.seed = sweptServerSeed(32);
    UncertainServer server(options);
    server.start();
    LoopbackClient client(server);

    const Request base = serveGpsRequest(Opcode::TakeSamples, 50, 0);
    auto draw = [&](std::uint64_t tenant) {
        std::vector<double> samples;
        for (std::uint64_t id = 0; id < 4; ++id) {
            Request take = base;
            take.tenantId = tenant;
            take.requestId = id;
            take.sampleCount = 512;
            const Response reply = client.call(take);
            EXPECT_EQ(reply.status, Status::Ok);
            samples.insert(samples.end(), reply.samples.begin(),
                           reply.samples.end());
        }
        return samples;
    };
    const std::vector<double> served = draw(50);
    const std::vector<double> servedOther = draw(60);
    EXPECT_TRUE(testing::ksSameDistribution(served, servedOther));

    // Direct pipeline with a much larger pool: its moments stand in
    // for the true posterior's, leaving the served pool's own
    // approximation error as the dominant noise term.
    const gps::GeoCoordinate start(base.params[0], base.params[1]);
    const gps::GpsFix earlier{start, base.params[2], 0.0};
    const gps::GpsFix later{
        gps::destination(start, base.params[3], base.params[4]),
        base.params[2], base.params[5]};
    inference::ReweightOptions bigPool;
    bigPool.proposalSamples = 20000;
    bigPool.resampleSize = 10000;
    Rng rng = testing::testRng(3251);
    Uncertain<double> improved = gps::improveSpeed(
        gps::speedFromFixes(earlier, later), bigPool, rng);
    core::BatchSampler sampler;
    const std::vector<double> direct = sampler.takeSamples<double>(
        improved.node(), 8192, rng);

    stats::OnlineSummary servedSummary;
    servedSummary.addAll(served);
    servedSummary.addAll(servedOther);
    stats::OnlineSummary directSummary;
    directSummary.addAll(direct);
    const double sd = directSummary.stddev();
    // 5-sigma draw noise for the served samples plus 5-sigma pool
    // noise for the default-size served pool (resampleSize atoms).
    const std::size_t poolAtoms =
        inference::ReweightOptions{}.resampleSize;
    const double meanTol =
        testing::meanTolerance(sd, servedSummary.count()) +
        testing::meanTolerance(sd, poolAtoms);
    EXPECT_NEAR(servedSummary.mean(), directSummary.mean(), meanTol);
    const double sdTol =
        5.0 * sd *
        (std::sqrt(2.0 / static_cast<double>(servedSummary.count())) +
         std::sqrt(2.0 / static_cast<double>(poolAtoms)));
    EXPECT_NEAR(servedSummary.stddev(), sd, sdTol);
    // The walking prior truncates to [0, 10] mph; the posterior must
    // respect its support.
    for (double s : served) {
        ASSERT_GE(s, 0.0);
        ASSERT_LE(s, 10.0);
    }
}

} // namespace
} // namespace uncertain
