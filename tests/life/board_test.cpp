/** @file Exact Game of Life substrate tests. */

#include <gtest/gtest.h>

#include "life/board.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace life {
namespace {

TEST(LifeRule, MatchesTheFourPaperRules)
{
    // Live cell with 2 or 3 neighbors lives.
    EXPECT_TRUE(lifeRule(true, 2));
    EXPECT_TRUE(lifeRule(true, 3));
    // Fewer than 2: dies.
    EXPECT_FALSE(lifeRule(true, 0));
    EXPECT_FALSE(lifeRule(true, 1));
    // More than 3: dies.
    EXPECT_FALSE(lifeRule(true, 4));
    EXPECT_FALSE(lifeRule(true, 8));
    // Dead cell with exactly 3 becomes live.
    EXPECT_TRUE(lifeRule(false, 3));
    EXPECT_FALSE(lifeRule(false, 2));
    EXPECT_FALSE(lifeRule(false, 4));
}

TEST(Board, NeighborCountsRespectEdges)
{
    Board board(3, 3);
    for (std::size_t y = 0; y < 3; ++y)
        for (std::size_t x = 0; x < 3; ++x)
            board.setAlive(x, y, true);
    EXPECT_EQ(board.countLiveNeighbors(1, 1), 8);
    EXPECT_EQ(board.countLiveNeighbors(0, 0), 3);
    EXPECT_EQ(board.countLiveNeighbors(1, 0), 5);
}

TEST(Board, BlockIsAStillLife)
{
    Board board(4, 4);
    board.setAlive(1, 1, true);
    board.setAlive(1, 2, true);
    board.setAlive(2, 1, true);
    board.setAlive(2, 2, true);
    EXPECT_TRUE(board.stepExact() == board);
}

TEST(Board, BlinkerOscillatesWithPeriodTwo)
{
    Board board(5, 5);
    board.setAlive(1, 2, true);
    board.setAlive(2, 2, true);
    board.setAlive(3, 2, true);

    Board next = board.stepExact();
    EXPECT_FALSE(next == board);
    EXPECT_TRUE(next.alive(2, 1));
    EXPECT_TRUE(next.alive(2, 2));
    EXPECT_TRUE(next.alive(2, 3));
    EXPECT_TRUE(next.stepExact() == board);
}

TEST(Board, LoneCellDiesAndStaysDead)
{
    Board board(3, 3);
    board.setAlive(1, 1, true);
    Board next = board.stepExact();
    EXPECT_EQ(next.population(), 0u);
    EXPECT_EQ(next.stepExact().population(), 0u);
}

TEST(Board, RandomizeHitsTheRequestedDensity)
{
    Board board(50, 50);
    Rng rng = testing::testRng(201);
    board.randomize(rng, 0.35);
    double density = static_cast<double>(board.population())
                     / static_cast<double>(board.cellCount());
    EXPECT_NEAR(density, 0.35,
                testing::proportionTolerance(0.35, 2500));
}

TEST(Board, ValidatesArguments)
{
    EXPECT_THROW(Board(0, 5), Error);
    Board board(2, 2);
    EXPECT_THROW(board.alive(2, 0), Error);
    EXPECT_THROW(board.setAlive(0, 2, true), Error);
    Rng rng = testing::testRng(202);
    EXPECT_THROW(board.randomize(rng, 1.5), Error);
}

TEST(Board, RenderShowsPopulation)
{
    Board board(2, 1);
    board.setAlive(0, 0, true);
    EXPECT_EQ(board.render(), "#.\n");
}

} // namespace
} // namespace life
} // namespace uncertain
