/**
 * @file
 * Alternative noise models for the SensorLife sensors: the paper
 * claims Beta-distributed (non-negative, bounded) noise "does not
 * appreciably change our results" — these tests pin that claim.
 */

#include <gtest/gtest.h>

#include "life/variants.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace life {
namespace {

core::ConditionalOptions
lifeOptions()
{
    core::ConditionalOptions options;
    options.sprt.batchSize = 8;
    options.sprt.maxSamples = 160;
    return options;
}

TEST(ShiftedBetaNoise, HasTheRequestedMoments)
{
    Board board(2, 1);
    board.setAlive(0, 0, true);
    NoisySensor sensor(0.25, NoiseModel::ShiftedBeta);
    Rng rng = testing::testRng(371);

    stats::OnlineSummary s;
    for (int i = 0; i < 100000; ++i)
        s.add(sensor.read(board, 0, 0, rng));
    EXPECT_NEAR(s.mean(), 1.0, testing::meanTolerance(0.25, 100000));
    EXPECT_NEAR(s.stddev(), 0.25, 0.01);
}

TEST(ShiftedBetaNoise, ReadingsAreBounded)
{
    Board board(2, 1);
    NoisySensor sensor(0.2, NoiseModel::ShiftedBeta);
    Rng rng = testing::testRng(372);
    // Beta(2,2) support is [0,1]; shifted/scaled noise is bounded by
    // +- 0.5 * sigma / sd(Beta22) ~ +- 2.24 sigma.
    double bound = 0.5 * 0.2 / std::sqrt(0.05) + 1e-9;
    for (int i = 0; i < 20000; ++i) {
        double v = sensor.read(board, 0, 0, rng);
        EXPECT_GE(v, -bound);
        EXPECT_LE(v, bound);
    }
}

TEST(ShiftedBetaNoise, DoesNotAppreciablyChangeSensorLifeResults)
{
    // The paper's sentence, as a test: error rates under Gaussian
    // and Beta noise of equal sigma agree to within a small margin.
    const double sigma = 0.2;
    Rng rng = testing::testRng(373);
    Board board(12, 12);
    board.randomize(rng, 0.35);

    auto errorWith = [&](NoiseModel model) {
        stats::OnlineSummary errors;
        for (int run = 0; run < 4; ++run) {
            SensorLife variant(sigma, lifeOptions(), model);
            errors.add(
                runNoisyGame(board, variant, 6, rng).errorRate());
        }
        return errors.mean();
    };

    double gaussian = errorWith(NoiseModel::Gaussian);
    double beta = errorWith(NoiseModel::ShiftedBeta);
    EXPECT_NEAR(gaussian, beta, 0.02);
}

TEST(ShiftedBetaNoise, BayesLifeStillSnapsCorrectly)
{
    Board board(3, 3);
    board.setAlive(0, 0, true);
    board.setAlive(1, 0, true);
    board.setAlive(2, 0, true);

    BayesLife variant(0.2, lifeOptions(), NoiseModel::ShiftedBeta);
    Rng rng = testing::testRng(374);
    int births = 0;
    for (int i = 0; i < 100; ++i)
        births += variant.updateCell(board, 1, 1, rng).willBeAlive;
    EXPECT_GE(births, 95);
}

} // namespace
} // namespace life
} // namespace uncertain
