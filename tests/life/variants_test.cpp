/**
 * @file
 * Noisy-Life variant tests: the ordering the paper's Figure 14
 * reports (Bayes <= Sensor < Naive in errors; Naive = 1 sample,
 * Bayes <= Sensor in sampling cost) plus zero-noise sanity.
 */

#include <gtest/gtest.h>

#include "life/variants.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace life {
namespace {

core::ConditionalOptions
lifeOptions()
{
    core::ConditionalOptions options;
    options.sprt.batchSize = 8;
    options.sprt.maxSamples = 160;
    return options;
}

Board
randomBoard(std::uint64_t seed)
{
    Board board(12, 12);
    Rng rng = testing::testRng(seed);
    board.randomize(rng, 0.35);
    return board;
}

TEST(NoisySensor, ZeroSigmaIsPerfect)
{
    Board board = randomBoard(211);
    NoisySensor sensor(0.0);
    Rng rng = testing::testRng(212);
    for (std::size_t y = 0; y < board.height(); ++y) {
        for (std::size_t x = 0; x < board.width(); ++x) {
            double expected = board.alive(x, y) ? 1.0 : 0.0;
            EXPECT_DOUBLE_EQ(sensor.read(board, x, y, rng), expected);
        }
    }
}

TEST(NoisySensor, ReadingsCenterOnTheTruth)
{
    Board board(2, 1);
    board.setAlive(0, 0, true);
    NoisySensor sensor(0.3);
    Rng rng = testing::testRng(213);
    double sumAlive = 0.0;
    double sumDead = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sumAlive += sensor.read(board, 0, 0, rng);
        sumDead += sensor.read(board, 1, 0, rng);
    }
    EXPECT_NEAR(sumAlive / n, 1.0, testing::meanTolerance(0.3, n));
    EXPECT_NEAR(sumDead / n, 0.0, testing::meanTolerance(0.3, n));
}

TEST(NoisySensor, FixedWrapperSnapsToHypotheses)
{
    Board board(2, 1);
    board.setAlive(0, 0, true);
    NoisySensor sensor(0.2);
    auto fixed = sensor.senseNeighborFixed(board, 0, 0);
    Rng rng = testing::testRng(214);
    for (double v : fixed.takeSamples(500, rng))
        EXPECT_TRUE(v == 0.0 || v == 1.0);
}

TEST(SensorLife, PerfectSensorsReproduceExactRules)
{
    Board board = randomBoard(215);
    SensorLife variant(0.0, lifeOptions());
    Rng rng = testing::testRng(216);
    for (std::size_t y = 0; y < board.height(); ++y) {
        for (std::size_t x = 0; x < board.width(); ++x) {
            auto decision = variant.updateCell(board, x, y, rng);
            EXPECT_EQ(decision.willBeAlive, board.nextStateExact(x, y))
                << "cell (" << x << ", " << y << ")";
        }
    }
}

TEST(BayesLife, PerfectSensorsReproduceExactRules)
{
    Board board = randomBoard(217);
    BayesLife variant(0.0, lifeOptions());
    Rng rng = testing::testRng(218);
    for (std::size_t y = 0; y < board.height(); ++y) {
        for (std::size_t x = 0; x < board.width(); ++x) {
            auto decision = variant.updateCell(board, x, y, rng);
            EXPECT_EQ(decision.willBeAlive, board.nextStateExact(x, y));
        }
    }
}

TEST(NaiveLife, BirthRuleAlmostNeverFiresUnderNoise)
{
    // A dead cell with exactly 3 live neighbors: exact rules say
    // birth, but `sum == 3.0` on a continuous sum is almost surely
    // false — a structural uncertainty bug of the naive port.
    Board board(3, 3);
    board.setAlive(0, 0, true);
    board.setAlive(1, 0, true);
    board.setAlive(2, 0, true);
    ASSERT_EQ(board.countLiveNeighbors(1, 1), 3);
    ASSERT_TRUE(board.nextStateExact(1, 1));

    NaiveLife variant(0.1);
    Rng rng = testing::testRng(219);
    int births = 0;
    for (int i = 0; i < 500; ++i)
        births += variant.updateCell(board, 1, 1, rng).willBeAlive;
    EXPECT_EQ(births, 0);
}

TEST(SensorLife, BirthRuleSurvivesModerateNoise)
{
    Board board(3, 3);
    board.setAlive(0, 0, true);
    board.setAlive(1, 0, true);
    board.setAlive(2, 0, true);

    SensorLife variant(0.1, lifeOptions());
    Rng rng = testing::testRng(220);
    int births = 0;
    for (int i = 0; i < 100; ++i)
        births += variant.updateCell(board, 1, 1, rng).willBeAlive;
    EXPECT_GE(births, 95);
}

TEST(NaiveLife, BoundaryCountsAreCoinFlips)
{
    // A live cell with exactly 2 neighbors sits on the `< 2` rule
    // boundary: any noise makes the naive comparison a coin flip.
    Board board(3, 3);
    board.setAlive(1, 1, true);
    board.setAlive(0, 0, true);
    board.setAlive(2, 2, true);
    ASSERT_EQ(board.countLiveNeighbors(1, 1), 2);
    ASSERT_TRUE(board.nextStateExact(1, 1));

    NaiveLife variant(0.05);
    Rng rng = testing::testRng(221);
    int wrong = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        wrong += variant.updateCell(board, 1, 1, rng).willBeAlive
                     ? 0
                     : 1;
    EXPECT_NEAR(static_cast<double>(wrong) / n, 0.5,
                testing::proportionTolerance(0.5, n));
}

TEST(SensorLife, BoundaryCountsFallThroughToTheCurrentState)
{
    // The same boundary cell: SensorLife's hypothesis tests are
    // inconclusive, the chain falls through, the cell keeps living —
    // which is the correct decision.
    Board board(3, 3);
    board.setAlive(1, 1, true);
    board.setAlive(0, 0, true);
    board.setAlive(2, 2, true);

    SensorLife variant(0.05, lifeOptions());
    Rng rng = testing::testRng(222);
    int correct = 0;
    for (int i = 0; i < 100; ++i)
        correct += variant.updateCell(board, 1, 1, rng).willBeAlive;
    EXPECT_GE(correct, 95);
}

TEST(Variants, ErrorOrderingMatchesFigure14a)
{
    const double sigma = 0.2;
    Board board = randomBoard(223);
    Rng rng = testing::testRng(224);

    NaiveLife naive(sigma);
    SensorLife sensor(sigma, lifeOptions());
    BayesLife bayes(sigma, lifeOptions());

    auto naiveStats = runNoisyGame(board, naive, 6, rng);
    auto sensorStats = runNoisyGame(board, sensor, 6, rng);
    auto bayesStats = runNoisyGame(board, bayes, 6, rng);

    EXPECT_GT(naiveStats.errorRate(), sensorStats.errorRate());
    EXPECT_LE(bayesStats.errorRate(), sensorStats.errorRate());
    EXPECT_LT(bayesStats.errorRate(), 0.01);
}

TEST(Variants, SampleCostOrderingMatchesFigure14b)
{
    const double sigma = 0.2;
    Board board = randomBoard(225);
    Rng rng = testing::testRng(226);

    NaiveLife naive(sigma);
    SensorLife sensor(sigma, lifeOptions());
    BayesLife bayes(sigma, lifeOptions());

    auto naiveStats = runNoisyGame(board, naive, 4, rng);
    auto sensorStats = runNoisyGame(board, sensor, 4, rng);
    auto bayesStats = runNoisyGame(board, bayes, 4, rng);

    EXPECT_DOUBLE_EQ(naiveStats.samplesPerUpdate(), 1.0);
    EXPECT_GT(sensorStats.samplesPerUpdate(), 1.0);
    EXPECT_GT(bayesStats.samplesPerUpdate(), 1.0);
    EXPECT_LT(bayesStats.samplesPerUpdate(),
              sensorStats.samplesPerUpdate());
}

TEST(JointBayesLife, PerfectSensorsReproduceExactRules)
{
    Board board = randomBoard(229);
    JointBayesLife variant(0.0, 5, lifeOptions());
    Rng rng = testing::testRng(230);
    for (std::size_t y = 0; y < board.height(); ++y) {
        for (std::size_t x = 0; x < board.width(); ++x) {
            auto decision = variant.updateCell(board, x, y, rng);
            EXPECT_EQ(decision.willBeAlive, board.nextStateExact(x, y));
        }
    }
}

TEST(JointBayesLife, SurvivesNoiseThatBreaksPerSampleSnapping)
{
    // The paper: "At noise levels higher than sigma = 0.4,
    // considering individual samples in isolation breaks down. A
    // better implementation could calculate joint likelihoods with
    // multiple samples." That better implementation must stay
    // essentially error-free at sigma = 0.45.
    const double sigma = 0.45;
    Board board = randomBoard(231);
    Rng rng = testing::testRng(232);

    JointBayesLife joint(sigma, 7, lifeOptions());
    auto jointStats = runNoisyGame(board, joint, 5, rng);
    EXPECT_LT(jointStats.errorRate(), 0.01);

    BayesLife perSample(sigma, lifeOptions());
    auto perSampleStats = runNoisyGame(board, perSample, 5, rng);
    EXPECT_GT(perSampleStats.errorRate(), jointStats.errorRate());
}

TEST(JointBayesLife, AccountsForExtraReadsInSampleCost)
{
    Board board = randomBoard(233);
    Rng rng = testing::testRng(234);
    JointBayesLife variant(0.1, 5, lifeOptions());
    auto decision = variant.updateCell(board, 1, 1, rng);
    // samplesDrawn is in raw-reading units: a multiple of 5.
    EXPECT_EQ(decision.samplesDrawn % 5, 0u);
    EXPECT_GT(decision.samplesDrawn, 0u);
}

TEST(JointBayesLife, ValidatesReadCount)
{
    EXPECT_THROW(JointBayesLife(0.1, 0), Error);
}

TEST(Variants, StepNoisyAdvancesTheBoard)
{
    Board board = randomBoard(227);
    Board before = board;
    SensorLife variant(0.05, lifeOptions());
    Rng rng = testing::testRng(228);
    auto stats = stepNoisy(board, variant, rng);
    EXPECT_EQ(stats.cellUpdates, before.cellCount());
    EXPECT_FALSE(board == before);
    // At low noise the noisy step should mostly agree with exact.
    EXPECT_LT(stats.errorRate(), 0.05);
}

} // namespace
} // namespace life
} // namespace uncertain
