/** @file MLP forward/backward tests, including finite differences. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/mlp.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace nn {
namespace {

TEST(Mlp, ParameterCountMatchesTopology)
{
    // 9 -> 8 -> 1: 9*8 + 8 + 8*1 + 1 = 89 (Parrot's Sobel network).
    Mlp network({9, 8, 1});
    EXPECT_EQ(network.parameterCount(), 89u);

    Mlp linear({1, 1});
    EXPECT_EQ(linear.parameterCount(), 2u);
}

TEST(Mlp, LinearNetworkComputesAffineFunction)
{
    Mlp network({1, 1});
    // weights = [w, b]: y = w x + b (output layer is linear).
    std::vector<double> weights{2.0, -1.0};
    EXPECT_DOUBLE_EQ(network.forward(weights, {3.0}), 5.0);
    EXPECT_DOUBLE_EQ(network.forward(weights, {0.0}), -1.0);
}

TEST(Mlp, HiddenLayerAppliesTanh)
{
    // 1 -> 1 -> 1 with unit weights, zero biases: y = tanh(x).
    Mlp network({1, 1, 1});
    std::vector<double> weights{1.0, 0.0, 1.0, 0.0};
    EXPECT_NEAR(network.forward(weights, {0.7}), std::tanh(0.7),
                1e-12);
}

TEST(Mlp, GradientMatchesFiniteDifferences)
{
    Mlp network({3, 4, 1});
    Rng rng = testing::testRng(231);
    std::vector<double> weights = network.initialWeights(rng);
    std::vector<double> input{0.3, -0.7, 1.2};
    const double target = 0.25;

    std::vector<double> grad(network.parameterCount(), 0.0);
    network.accumulateGradient(weights, input, target, grad);

    const double h = 1e-6;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        std::vector<double> plus = weights;
        std::vector<double> minus = weights;
        plus[i] += h;
        minus[i] -= h;
        double rp = network.forward(plus, input) - target;
        double rm = network.forward(minus, input) - target;
        double numeric = (0.5 * rp * rp - 0.5 * rm * rm) / (2.0 * h);
        EXPECT_NEAR(grad[i], numeric, 1e-5)
            << "parameter " << i;
    }
}

TEST(Mlp, GradientAccumulatesAcrossExamples)
{
    Mlp network({2, 1});
    std::vector<double> weights{1.0, 1.0, 0.0};
    std::vector<double> gradOnce(3, 0.0);
    network.accumulateGradient(weights, {1.0, 2.0}, 0.0, gradOnce);

    std::vector<double> gradTwice(3, 0.0);
    network.accumulateGradient(weights, {1.0, 2.0}, 0.0, gradTwice);
    network.accumulateGradient(weights, {1.0, 2.0}, 0.0, gradTwice);

    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(gradTwice[i], 2.0 * gradOnce[i], 1e-12);
}

TEST(Mlp, ResidualIsReturned)
{
    Mlp network({1, 1});
    std::vector<double> weights{1.0, 0.0};
    std::vector<double> grad(2, 0.0);
    double r = network.accumulateGradient(weights, {2.0}, 0.5, grad);
    EXPECT_DOUBLE_EQ(r, 1.5);
}

TEST(Mlp, MeanSquaredError)
{
    Mlp network({1, 1});
    std::vector<double> weights{1.0, 0.0}; // identity
    Dataset data;
    data.inputs = {{1.0}, {2.0}};
    data.targets = {1.5, 1.5};
    // Residuals -0.5 and 0.5: MSE = 0.25.
    EXPECT_DOUBLE_EQ(network.meanSquaredError(weights, data), 0.25);
}

TEST(Mlp, ValidatesShapes)
{
    EXPECT_THROW(Mlp({5}), Error);
    EXPECT_THROW(Mlp({3, 2}), Error); // output must be width 1
    Mlp network({2, 1});
    std::vector<double> weights{1.0, 1.0, 0.0};
    EXPECT_THROW(network.forward(weights, {1.0}), Error);
    EXPECT_THROW(network.forward({1.0}, {1.0, 2.0}), Error);
}

} // namespace
} // namespace nn
} // namespace uncertain
