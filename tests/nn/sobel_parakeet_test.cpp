/** @file Sobel workload and Parakeet model tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/parakeet.hpp"
#include "nn/sobel.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace nn {
namespace {

TEST(Sobel, FlatPatchHasZeroResponse)
{
    Patch flat;
    flat.fill(0.6);
    EXPECT_NEAR(sobel(flat), 0.0, 1e-12);
}

TEST(Sobel, VerticalStepEdgeHasKnownResponse)
{
    // Left column 0, right column 1, middle column 0.5: Gx = 4,
    // Gy = 0, normalized = 4 / (4 sqrt 2) = 1/sqrt(2).
    Patch step{0.0, 0.5, 1.0, 0.0, 0.5, 1.0, 0.0, 0.5, 1.0};
    EXPECT_NEAR(sobel(step), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Sobel, ResponseIsRotationInvariantForTransposedPatch)
{
    Patch p{0.1, 0.2, 0.9, 0.3, 0.4, 0.8, 0.0, 0.6, 0.7};
    Patch t{p[0], p[3], p[6], p[1], p[4], p[7], p[2], p[5], p[8]};
    EXPECT_NEAR(sobel(p), sobel(t), 1e-12);
}

TEST(Sobel, ResponseIsBoundedToUnitInterval)
{
    Rng rng = testing::testRng(251);
    for (int i = 0; i < 1000; ++i) {
        Patch p;
        for (double& v : p)
            v = rng.nextDouble();
        double s = sobel(p);
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST(SyntheticImage, PixelsAreValidIntensities)
{
    Rng rng = testing::testRng(252);
    SyntheticImage image(32, rng);
    for (std::size_t y = 0; y < image.size(); ++y) {
        for (std::size_t x = 0; x < image.size(); ++x) {
            EXPECT_GE(image.at(x, y), 0.0);
            EXPECT_LE(image.at(x, y), 1.0);
        }
    }
    EXPECT_THROW(image.at(32, 0), Error);
    EXPECT_THROW(image.patchAt(0, 5), Error);
}

TEST(SyntheticImage, ContainsBothEdgesAndFlatRegions)
{
    Rng rng = testing::testRng(253);
    int edges = 0;
    int flats = 0;
    for (int trial = 0; trial < 10; ++trial) {
        SyntheticImage image(32, rng);
        for (std::size_t y = 1; y + 1 < 32; ++y) {
            for (std::size_t x = 1; x + 1 < 32; ++x) {
                double s = sobel(image.patchAt(x, y));
                edges += s > kEdgeThreshold ? 1 : 0;
                flats += s <= kEdgeThreshold ? 1 : 0;
            }
        }
    }
    EXPECT_GT(edges, 100);
    EXPECT_GT(flats, 1000);
}

TEST(MakeSobelDataset, ShapesAndLabelsAreConsistent)
{
    Rng rng = testing::testRng(254);
    Dataset data = makeSobelDataset(500, rng);
    ASSERT_EQ(data.size(), 500u);
    for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(data.inputs[i].size(), 9u);
        Patch p;
        std::copy(data.inputs[i].begin(), data.inputs[i].end(),
                  p.begin());
        EXPECT_DOUBLE_EQ(data.targets[i], sobel(p));
    }
}

class ParakeetFixture : public ::testing::Test
{
  protected:
    // Train one small model for every test in this suite; training
    // is the expensive part.
    static void
    SetUpTestSuite()
    {
        Rng rng = testing::testRng(255);
        Dataset data = makeSobelDataset(800, rng);
        ParakeetOptions options;
        options.sgd.epochs = 120;
        options.hmc.burnIn = 150;
        options.hmc.thinning = 4;
        options.hmc.posteriorSamples = 40;
        options.hmcDataLimit = 400;
        model_ = new Parakeet(Parakeet::train(data, options, rng));
    }

    static void
    TearDownTestSuite()
    {
        delete model_;
        model_ = nullptr;
    }

    static Parakeet* model_;
};

Parakeet* ParakeetFixture::model_ = nullptr;

TEST_F(ParakeetFixture, ParrotLearnsTheSobelOperator)
{
    // The paper reports ~3.4% RMS error for Parrot; our synthetic
    // substrate should land in the same ballpark (< 10%).
    EXPECT_LT(std::sqrt(model_->parrotTrainingMse()), 0.10);
}

TEST_F(ParakeetFixture, PoolHasTheRequestedSize)
{
    EXPECT_EQ(model_->poolSize(), 40u);
}

TEST_F(ParakeetFixture, PpdSamplesComeFromThePool)
{
    Rng rng = testing::testRng(256);
    std::vector<double> input(9, 0.5);
    auto ppd = model_->predict(input);
    auto poolPredictions = model_->posteriorPredictions(input);
    for (double draw : ppd.takeSamples(200, rng)) {
        bool found = false;
        for (double p : poolPredictions)
            found = found || p == draw;
        EXPECT_TRUE(found);
    }
}

TEST_F(ParakeetFixture, PpdHasNonZeroSpread)
{
    Rng rng = testing::testRng(257);
    Patch step{0.0, 0.5, 1.0, 0.0, 0.5, 1.0, 0.0, 0.5, 1.0};
    std::vector<double> input(step.begin(), step.end());
    auto ppd = model_->predict(input);
    stats::OnlineSummary s;
    s.addAll(ppd.takeSamples(500, rng));
    EXPECT_GT(s.stddev(), 0.0);
}

TEST_F(ParakeetFixture, EvidenceThresholdsTradePrecisionForRecall)
{
    // Higher alpha must predict fewer (or equal) edges.
    Rng rng = testing::testRng(258);
    Dataset eval = makeSobelDataset(150, rng);
    core::ConditionalOptions options;
    options.sprt.maxSamples = 200;
    int lowCount = 0;
    int highCount = 0;
    for (const auto& input : eval.inputs) {
        auto evidence = model_->predict(input) > kEdgeThreshold;
        if (evidence.pr(0.2, options, rng))
            ++lowCount;
        if (evidence.pr(0.9, options, rng))
            ++highCount;
    }
    EXPECT_LE(highCount, lowCount);
}

} // namespace
} // namespace nn
} // namespace uncertain
