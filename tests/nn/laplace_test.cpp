/** @file Laplace-approximation posterior tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "inference/conjugate.hpp"
#include "nn/laplace.hpp"
#include "nn/parakeet.hpp"
#include "nn/sobel.hpp"
#include "nn/trainer.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace nn {
namespace {

TEST(Laplace, LinearModelMatchesTheExactPosteriorWidth)
{
    // y = w x with fixed design: the weight posterior is exactly
    // Gaussian, so the Laplace approximation must be exact. With
    // unit inputs the model is y = w (plus the bias mixing, which we
    // suppress by holding inputs at 1 and folding the bias into a
    // second coordinate with the same design).
    Rng rng = testing::testRng(441);
    Dataset data;
    const int n = 50;
    for (int i = 0; i < n; ++i) {
        data.inputs.push_back({1.0});
        data.targets.push_back(0.7);
    }
    Mlp network({1, 1});
    std::vector<double> mode{0.7, 0.0};

    LaplaceOptions options;
    options.noiseSigma = 0.1;
    options.priorSigma = 10.0;
    options.posteriorSamples = 4000;
    auto fit = laplaceApproximate(network, data, mode, options, rng);

    // For y = w*1 + b, both coordinates see the same design:
    // H = n/sigma_n^2 + 1/sigma_w^2.
    double expectedSd =
        1.0 / std::sqrt(n / (0.1 * 0.1) + 1.0 / (10.0 * 10.0));
    EXPECT_NEAR(fit.weightStddevs[0], expectedSd, 1e-12);
    EXPECT_NEAR(fit.weightStddevs[1], expectedSd, 1e-12);

    stats::OnlineSummary slope;
    for (const auto& w : fit.pool)
        slope.add(w[0]);
    EXPECT_NEAR(slope.mean(), 0.7, 5.0 * expectedSd / std::sqrt(4000.0));
    EXPECT_NEAR(slope.stddev(), expectedSd, 0.1 * expectedSd);
}

TEST(Laplace, MoreDataTightensThePosterior)
{
    Rng rng = testing::testRng(442);
    Mlp network({1, 1});
    std::vector<double> mode{0.5, 0.0};
    LaplaceOptions options;
    options.posteriorSamples = 1;

    auto widthFor = [&](int n) {
        Dataset data;
        for (int i = 0; i < n; ++i) {
            data.inputs.push_back({1.0});
            data.targets.push_back(0.5);
        }
        return laplaceApproximate(network, data, mode, options, rng)
            .weightStddevs[0];
    };
    EXPECT_LT(widthFor(1000), widthFor(10));
}

TEST(Laplace, ValidatesInput)
{
    Rng rng = testing::testRng(443);
    Mlp network({1, 1});
    Dataset data;
    data.inputs.push_back({1.0});
    data.targets.push_back(0.0);
    EXPECT_THROW(
        laplaceApproximate(network, data, {1.0}, {}, rng), Error);
    LaplaceOptions bad;
    bad.noiseSigma = 0.0;
    EXPECT_THROW(
        laplaceApproximate(network, data, {1.0, 0.0}, bad, rng),
        Error);
}

TEST(Laplace, ParakeetLaplaceModeProducesAWorkingPpd)
{
    Rng rng = testing::testRng(444);
    Dataset train = makeSobelDataset(600, rng, 0.04);
    ParakeetOptions options;
    options.topology = {9, 4, 1};
    options.sgd.epochs = 60;
    options.posterior = PosteriorMethod::Laplace;
    options.laplace.posteriorSamples = 64;
    options.laplace.noiseSigma = 0.1;
    options.hmcDataLimit = 400;
    Parakeet model = Parakeet::train(train, options, rng);

    EXPECT_EQ(model.poolSize(), 64u);
    std::vector<double> input(9, 0.5);
    stats::OnlineSummary s;
    s.addAll(model.predict(input).takeSamples(500, rng));
    EXPECT_GT(s.stddev(), 0.0); // genuine spread
    // Centered near the Parrot mode prediction.
    EXPECT_NEAR(s.mean(), model.parrotPredict(input),
                5.0 * s.stddev());
}

TEST(Laplace, AgreesWithHmcOnPosteriorScaleForALinearModel)
{
    // Same linear-Gaussian problem through both machines: the PPD
    // standard deviations should agree to a small factor.
    Rng rng = testing::testRng(445);
    Dataset data;
    for (int i = 0; i < 80; ++i) {
        double x = rng.nextRange(-1.0, 1.0);
        data.inputs.push_back({x});
        data.targets.push_back(0.8 * x - 0.3);
    }
    Mlp network({1, 1});
    SgdOptions sgdOptions;
    sgdOptions.epochs = 200;
    auto sgd = trainSgd(network, data, sgdOptions, rng);

    HmcOptions hmcOptions;
    hmcOptions.noiseSigma = 0.1;
    hmcOptions.priorSigma = 5.0;
    hmcOptions.burnIn = 300;
    hmcOptions.thinning = 5;
    hmcOptions.posteriorSamples = 200;
    auto chain =
        sampleHmc(network, data, sgd.weights, hmcOptions, rng);

    LaplaceOptions laplaceOptions;
    laplaceOptions.noiseSigma = 0.1;
    laplaceOptions.priorSigma = 5.0;
    laplaceOptions.posteriorSamples = 200;
    auto fit = laplaceApproximate(network, data, sgd.weights,
                                  laplaceOptions, rng);

    stats::OnlineSummary hmcSlope;
    for (const auto& w : chain.pool)
        hmcSlope.add(w[0]);
    stats::OnlineSummary laplaceSlope;
    for (const auto& w : fit.pool)
        laplaceSlope.add(w[0]);

    EXPECT_NEAR(hmcSlope.mean(), laplaceSlope.mean(), 0.1);
    EXPECT_LT(laplaceSlope.stddev(), 3.0 * hmcSlope.stddev());
    EXPECT_GT(laplaceSlope.stddev(), hmcSlope.stddev() / 3.0);
}

} // namespace
} // namespace nn
} // namespace uncertain
