/** @file SGD trainer and HMC sampler tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/hmc.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace nn {
namespace {

/** y = 0.8 x - 0.3 with tiny noise. */
Dataset
linearDataset(std::size_t n, Rng& rng)
{
    Dataset data;
    for (std::size_t i = 0; i < n; ++i) {
        double x = rng.nextRange(-1.0, 1.0);
        data.inputs.push_back({x});
        data.targets.push_back(0.8 * x - 0.3
                               + 0.01 * (rng.nextDouble() - 0.5));
    }
    return data;
}

TEST(TrainSgd, LearnsALinearFunction)
{
    Rng rng = testing::testRng(241);
    Dataset data = linearDataset(200, rng);
    Mlp network({1, 1});
    SgdOptions options;
    options.epochs = 300;
    options.learningRate = 0.1;
    auto result = trainSgd(network, data, options, rng);
    EXPECT_NEAR(result.weights[0], 0.8, 0.05);
    EXPECT_NEAR(result.weights[1], -0.3, 0.05);
    EXPECT_LT(network.meanSquaredError(result.weights, data), 1e-3);
}

TEST(TrainSgd, LossDecreasesOverTraining)
{
    Rng rng = testing::testRng(242);
    Dataset data = linearDataset(200, rng);
    Mlp network({1, 4, 1});
    SgdOptions options;
    options.epochs = 100;
    auto result = trainSgd(network, data, options, rng);
    ASSERT_EQ(result.epochMse.size(), 100u);
    EXPECT_LT(result.epochMse.back(), result.epochMse.front());
}

TEST(TrainSgd, LearnsANonlinearFunction)
{
    // y = x^2 on [-1, 1] needs the hidden layer.
    Rng rng = testing::testRng(243);
    Dataset data;
    for (int i = 0; i < 400; ++i) {
        double x = rng.nextRange(-1.0, 1.0);
        data.inputs.push_back({x});
        data.targets.push_back(x * x);
    }
    Mlp network({1, 8, 1});
    SgdOptions options;
    options.epochs = 400;
    options.learningRate = 0.05;
    auto result = trainSgd(network, data, options, rng);
    EXPECT_LT(network.meanSquaredError(result.weights, data), 5e-3);
    EXPECT_NEAR(network.forward(result.weights, {0.5}), 0.25, 0.1);
}

TEST(SampleHmc, PosteriorMeanMatchesConjugateForLinearModel)
{
    // Linear network, y = w x (no bias effect isolated by symmetric
    // inputs): with a Gaussian prior and Gaussian noise the weight
    // posterior is Gaussian with known moments. Check the HMC pool's
    // mean lands near the ridge estimate.
    Rng rng = testing::testRng(244);
    Dataset data = linearDataset(100, rng);
    Mlp network({1, 1});

    SgdOptions sgdOptions;
    sgdOptions.epochs = 200;
    auto sgd = trainSgd(network, data, sgdOptions, rng);

    HmcOptions options;
    options.noiseSigma = 0.1;
    options.priorSigma = 5.0;
    options.burnIn = 300;
    options.thinning = 5;
    options.posteriorSamples = 100;
    auto result = sampleHmc(network, data, sgd.weights, options, rng);

    ASSERT_EQ(result.pool.size(), 100u);
    stats::OnlineSummary slope;
    for (const auto& w : result.pool)
        slope.add(w[0]);
    EXPECT_NEAR(slope.mean(), 0.8, 0.1);
    // The chain must actually move.
    EXPECT_GT(slope.stddev(), 1e-4);
}

TEST(SampleHmc, AcceptanceRateNearTarget)
{
    Rng rng = testing::testRng(245);
    Dataset data = linearDataset(50, rng);
    Mlp network({1, 1});
    std::vector<double> start{0.8, -0.3};
    HmcOptions options;
    options.burnIn = 400;
    options.posteriorSamples = 50;
    options.thinning = 2;
    options.targetAcceptance = 0.8;
    auto result = sampleHmc(network, data, start, options, rng);
    EXPECT_GT(result.acceptanceRate, 0.5);
    EXPECT_LE(result.acceptanceRate, 1.0);
}

TEST(SampleHmc, ThinnedChainHasUsableEffectiveSampleSize)
{
    // The paper thins ("retain every Mth sample") because successive
    // HMC draws are dependent; the retained pool must behave like a
    // reasonably independent sample.
    Rng rng = testing::testRng(247);
    Dataset data = linearDataset(100, rng);
    Mlp network({1, 1});
    std::vector<double> start{0.8, -0.3};
    HmcOptions options;
    options.burnIn = 300;
    options.thinning = 10;
    options.posteriorSamples = 150;
    auto result = sampleHmc(network, data, start, options, rng);

    std::vector<double> slopes;
    for (const auto& w : result.pool)
        slopes.push_back(w[0]);
    double ess = stats::effectiveSampleSize(slopes);
    EXPECT_GT(ess, 0.3 * static_cast<double>(slopes.size()));
}

TEST(SampleHmc, PoolSpreadShrinksWithMoreData)
{
    Rng rng = testing::testRng(246);
    Mlp network({1, 1});
    std::vector<double> start{0.8, -0.3};
    HmcOptions options;
    options.burnIn = 300;
    options.posteriorSamples = 80;
    options.thinning = 3;

    auto spreadFor = [&](std::size_t n) {
        Dataset data = linearDataset(n, rng);
        auto result = sampleHmc(network, data, start, options, rng);
        stats::OnlineSummary s;
        for (const auto& w : result.pool)
            s.add(w[0]);
        return s.stddev();
    };

    double small = spreadFor(20);
    double large = spreadFor(500);
    EXPECT_LT(large, small);
}

} // namespace
} // namespace nn
} // namespace uncertain
