/** @file Trace-based Metropolis-Hastings tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "inference/conjugate.hpp"
#include "prob/mcmc.hpp"
#include "random/gaussian.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace prob {
namespace {

double
temperatureModel(Sampler& s)
{
    double temperature = s.gaussian(20.0, 5.0);
    s.factor(random::Gaussian(temperature, 2.0).logPdf(25.0));
    return temperature;
}

TEST(Mcmc, GaussianPosteriorMatchesConjugate)
{
    Rng rng = testing::testRng(511);
    McmcOptions options;
    options.burnIn = 1000;
    options.thinning = 10;
    options.posteriorSamples = 3000;
    auto result = mcmcQuery(temperatureModel, options, rng);

    random::Gaussian exact = inference::gaussianPosterior(
        random::Gaussian(20.0, 5.0), 25.0, 2.0);
    stats::OnlineSummary s;
    s.addAll(result.samples);
    EXPECT_EQ(result.samples.size(), 3000u);
    EXPECT_NEAR(s.mean(), exact.mu(), 0.2);
    EXPECT_NEAR(s.stddev(), exact.sigma(), 0.3);
    EXPECT_GT(result.acceptanceRate, 0.05);
}

TEST(Mcmc, HardObserveConditionsTheChain)
{
    // Two flips; observe at least one head; query the first flip.
    // Posterior Pr[first = heads | >= 1 head] = 0.5 / 0.75 = 2/3.
    Rng rng = testing::testRng(512);
    McmcOptions options;
    options.burnIn = 2000;
    options.thinning = 5;
    options.posteriorSamples = 8000;
    auto result = mcmcQuery(
        [](Sampler& s) {
            bool first = s.flip(0.5);
            bool second = s.flip(0.5);
            s.observe(first || second);
            return first ? 1.0 : 0.0;
        },
        options, rng);
    EXPECT_NEAR(stats::mean(result.samples), 2.0 / 3.0, 0.03);
}

TEST(Mcmc, MultipleLatentsMix)
{
    // x, y ~ N(0,1); observe x + y ~ 2 (soft). Posterior mean of x
    // is 1 (symmetric split of the evidence, precisions 1 and 1/2
    // on the sum with noise 0.5: posterior mean of x+y is
    // 2*(2/2.25)/... — use wide tolerance and symmetry instead).
    Rng rng = testing::testRng(513);
    McmcOptions options;
    options.burnIn = 2000;
    options.thinning = 10;
    options.posteriorSamples = 4000;
    auto xResult = mcmcQuery(
        [](Sampler& s) {
            double x = s.gaussian(0.0, 1.0);
            double y = s.gaussian(0.0, 1.0);
            s.factor(random::Gaussian(x + y, 0.5).logPdf(2.0));
            return x;
        },
        options, rng);
    double xMean = stats::mean(xResult.samples);
    // Exact: posterior mean of x+y is 2 * 2/(2+0.25) = 1.7778, and
    // by symmetry E[x] is half that.
    EXPECT_NEAR(xMean, 0.8889, 0.1);
}

TEST(Mcmc, FixedStructureAlarmModelRunsWithoutStructureErrors)
{
    // The literal paper model changes its choice structure with
    // `earthquake`; the fixed-structure rewrite must be replayable.
    // (Posterior accuracy is not asserted here: single-site MH mixes
    // across the rare earthquake mode on ~40k-step timescales, which
    // is exactly the Church-is-slow point of Figure 17.)
    Rng rng = testing::testRng(517);
    McmcOptions options;
    options.burnIn = 500;
    options.thinning = 2;
    options.posteriorSamples = 500;
    auto result =
        mcmcQuery(alarmModelFixedStructure, options, rng);
    EXPECT_EQ(result.samples.size(), 500u);
    for (double v : result.samples)
        EXPECT_TRUE(v == 0.0 || v == 1.0);
    EXPECT_GT(stats::mean(result.samples), 0.8);
}

TEST(Mcmc, FixedStructureRewriteMatchesTheOriginalPosterior)
{
    // Same posterior through rejection sampling for both programs.
    Rng rng = testing::testRng(518);
    auto original = rejectionQuery(alarmModel, 3000, rng);
    auto rewritten =
        rejectionQuery(alarmModelFixedStructure, 3000, rng);
    EXPECT_NEAR(original.mean(), rewritten.mean(), 0.02);
}

TEST(Mcmc, RejectsStructureChangingModels)
{
    Rng rng = testing::testRng(514);
    McmcOptions options;
    options.burnIn = 10;
    options.posteriorSamples = 10;
    EXPECT_THROW(mcmcQuery(
                     [](Sampler& s) {
                         // Parameters depend on an earlier draw:
                         // the replay check must fire.
                         double a = s.uniform(0.0, 1.0);
                         return s.gaussian(a, 1.0);
                     },
                     options, rng),
                 Error);
}

TEST(Mcmc, ImpossibleEvidenceFailsInitialization)
{
    Rng rng = testing::testRng(515);
    McmcOptions options;
    options.maxInitAttempts = 1000;
    options.posteriorSamples = 10;
    EXPECT_THROW(mcmcQuery(
                     [](Sampler& s) {
                         (void)s.flip(0.5);
                         s.observe(false);
                         return 0.0;
                     },
                     options, rng),
                 Error);
}

TEST(Mcmc, DeterministicModelIsRejected)
{
    Rng rng = testing::testRng(516);
    McmcOptions options;
    options.posteriorSamples = 10;
    EXPECT_THROW(
        mcmcQuery([](Sampler&) { return 1.0; }, options, rng), Error);
}

} // namespace
} // namespace prob
} // namespace uncertain
