/** @file Likelihood-weighting (soft conditioning) tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "inference/conjugate.hpp"
#include "prob/model.hpp"
#include "random/gaussian.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace prob {
namespace {

/**
 * Latent temperature ~ N(20, 5); a sensor reads 25 with N(0, 2)
 * noise, scored with factor(). The exact posterior is the Gaussian
 * conjugate update.
 */
double
temperatureModel(Sampler& s)
{
    double temperature = s.gaussian(20.0, 5.0);
    s.factor(random::Gaussian(temperature, 2.0).logPdf(25.0));
    return temperature;
}

TEST(LikelihoodWeighting, MatchesTheConjugatePosterior)
{
    Rng rng = testing::testRng(421);
    auto result = likelihoodWeightedQuery(temperatureModel, 50000,
                                          rng);
    random::Gaussian exact = inference::gaussianPosterior(
        random::Gaussian(20.0, 5.0), 25.0, 2.0);
    EXPECT_NEAR(result.mean(), exact.mu(), 0.1);
}

TEST(LikelihoodWeighting, NeverDiscardsSoftTraces)
{
    Rng rng = testing::testRng(422);
    auto result = likelihoodWeightedQuery(temperatureModel, 5000,
                                          rng);
    EXPECT_EQ(result.samples.size(), 5000u);
    EXPECT_EQ(result.simulations, 5000u);
}

TEST(LikelihoodWeighting, EffectiveSampleSizeReflectsMismatch)
{
    Rng rng = testing::testRng(423);
    // Weak evidence: posterior ~ prior, weights nearly uniform.
    auto weak = likelihoodWeightedQuery(
        [](Sampler& s) {
            double t = s.gaussian(20.0, 5.0);
            s.factor(random::Gaussian(t, 50.0).logPdf(21.0));
            return t;
        },
        5000, rng);
    // Sharp evidence far in the tail: weights concentrate.
    auto sharp = likelihoodWeightedQuery(
        [](Sampler& s) {
            double t = s.gaussian(20.0, 5.0);
            s.factor(random::Gaussian(t, 0.1).logPdf(40.0));
            return t;
        },
        5000, rng);
    EXPECT_GT(weak.effectiveSampleSize(),
              10.0 * sharp.effectiveSampleSize());
}

TEST(LikelihoodWeighting, HardObserveStillRejects)
{
    Rng rng = testing::testRng(424);
    auto result = likelihoodWeightedQuery(
        [](Sampler& s) {
            bool heads = s.flip(0.5);
            s.observe(heads);
            return heads ? 1.0 : 0.0;
        },
        2000, rng);
    // Roughly half the traces survive, and all survivors are heads.
    EXPECT_NEAR(static_cast<double>(result.samples.size()), 1000.0,
                100.0);
    EXPECT_NEAR(result.mean(), 1.0, 1e-12);
}

TEST(LikelihoodWeighting, FactorValidatesInput)
{
    Rng rng = testing::testRng(425);
    Sampler sampler(rng);
    EXPECT_THROW(sampler.factor(std::nan("")), Error);
    sampler.factor(1.5); // positive log weights are legal
    EXPECT_DOUBLE_EQ(sampler.logWeight(), 1.5);
}

TEST(LikelihoodWeighting, EmptyOrZeroWeightResultsThrow)
{
    Rng rng = testing::testRng(426);
    auto impossible = likelihoodWeightedQuery(
        [](Sampler& s) {
            s.observe(false);
            return 0.0;
        },
        100, rng);
    EXPECT_TRUE(impossible.samples.empty());
    EXPECT_THROW(impossible.mean(), Error);
}

} // namespace
} // namespace prob
} // namespace uncertain
