/**
 * @file
 * The prob -> core bridge: generative-model posteriors consumed as
 * Uncertain<double> values.
 */

#include <gtest/gtest.h>

#include "core/core.hpp"
#include "prob/model.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace prob {
namespace {

TEST(QueryAsUncertain, AlarmPosteriorSupportsConditionals)
{
    Rng rng = testing::testRng(381);
    auto phoneWorking = queryAsUncertain(alarmModel, 2000, rng);

    // Pr[phoneWorking | alarm] ~ 0.964: strong evidence above 0.9,
    // none above 0.99.
    core::ConditionalOptions options;
    options.sprt.maxSamples = 2000;
    auto asEvent = phoneWorking > 0.5; // pool values are 0/1
    EXPECT_TRUE(asEvent.pr(0.9, options, rng));
    EXPECT_FALSE(asEvent.pr(0.99, options, rng));
}

TEST(QueryAsUncertain, PosteriorMeanMatchesAnalytic)
{
    const double pe = 0.0001;
    const double pb = 0.001;
    const double expected = (pe * 0.7 + (1.0 - pe) * pb * 0.99)
                            / (pe + pb - pe * pb);
    Rng rng = testing::testRng(382);
    auto posterior = queryAsUncertain(alarmModel, 4000, rng);
    EXPECT_NEAR(posterior.expectedValue(20000, rng), expected, 0.02);
}

TEST(QueryAsUncertain, ComposesWithTheOperatorAlgebra)
{
    Rng rng = testing::testRng(383);
    auto posterior = queryAsUncertain(alarmModel, 1000, rng);
    // Arbitrary downstream computation: a risk score.
    auto risk = (1.0 - posterior) * 100.0;
    double e = risk.expectedValue(20000, rng);
    EXPECT_GT(e, 0.5);
    EXPECT_LT(e, 15.0);
}

TEST(QueryAsUncertain, ThrowsWhenEvidenceIsImpossible)
{
    Rng rng = testing::testRng(384);
    EXPECT_THROW(queryAsUncertain(
                     [](Sampler& s) {
                         s.observe(false);
                         return 0.0;
                     },
                     10, rng, 1000),
                 Error);
}

} // namespace
} // namespace prob
} // namespace uncertain
