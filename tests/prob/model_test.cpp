/** @file Church-style rejection-sampling baseline tests. */

#include <gtest/gtest.h>

#include "prob/model.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace prob {
namespace {

TEST(Sampler, FlipMatchesProbability)
{
    Rng rng = testing::testRng(261);
    Sampler sampler(rng);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += sampler.flip(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25,
                testing::proportionTolerance(0.25, n));
}

TEST(Sampler, ObserveRejectsTheTrace)
{
    Rng rng = testing::testRng(262);
    Sampler sampler(rng);
    EXPECT_FALSE(sampler.rejected());
    sampler.observe(true);
    EXPECT_FALSE(sampler.rejected());
    sampler.observe(false);
    EXPECT_TRUE(sampler.rejected());
    sampler.observe(true); // rejection is sticky
    EXPECT_TRUE(sampler.rejected());
}

TEST(RejectionQuery, UnconditionedModelAcceptsEverything)
{
    Rng rng = testing::testRng(263);
    auto result = rejectionQuery(
        [](Sampler& s) { return s.flip(0.5) ? 1.0 : 0.0; }, 1000, rng);
    EXPECT_EQ(result.samples.size(), 1000u);
    EXPECT_EQ(result.simulations, 1000u);
    EXPECT_DOUBLE_EQ(result.acceptanceRate(), 1.0);
    EXPECT_NEAR(result.mean(), 0.5, 0.1);
}

TEST(RejectionQuery, ConditioningInflatesSimulationCount)
{
    // Observe a 1-in-100 event: ~100 simulations per sample.
    Rng rng = testing::testRng(264);
    auto result = rejectionQuery(
        [](Sampler& s) {
            bool rare = s.flip(0.01);
            s.observe(rare);
            return 1.0;
        },
        200, rng);
    EXPECT_EQ(result.samples.size(), 200u);
    EXPECT_GT(result.simulations, 200u * 50);
    EXPECT_NEAR(result.acceptanceRate(), 0.01, 0.005);
}

TEST(RejectionQuery, GivesUpAtTheSimulationCap)
{
    Rng rng = testing::testRng(265);
    auto result = rejectionQuery(
        [](Sampler& s) {
            s.observe(false); // impossible evidence
            return 0.0;
        },
        10, rng, 5000);
    EXPECT_TRUE(result.samples.empty());
    EXPECT_EQ(result.simulations, 5000u);
}

TEST(AlarmModel, PosteriorMatchesTheAnalyticAnswer)
{
    // Pr[phone | alarm] by total probability over the four worlds:
    //   Pr[alarm] = 1 - (1 - 1e-4)(1 - 1e-3)
    //   phone is 0.7 under earthquake, 0.99 otherwise.
    const double pe = 0.0001;
    const double pb = 0.001;
    const double pAlarm = pe + pb - pe * pb;
    const double pPhoneAndAlarm =
        pe * 0.7 + (1.0 - pe) * pb * 0.99;
    const double expected = pPhoneAndAlarm / pAlarm;

    Rng rng = testing::testRng(266);
    auto result = rejectionQuery(alarmModel, 3000, rng);
    ASSERT_EQ(result.samples.size(), 3000u);
    EXPECT_NEAR(result.mean(), expected, 0.02);
    // The paper's complaint: only ~0.11% of traces are accepted.
    EXPECT_NEAR(result.acceptanceRate(), pAlarm, pAlarm);
    EXPECT_LT(result.acceptanceRate(), 0.005);
}

TEST(RejectionQuery, ValidatesArguments)
{
    Rng rng = testing::testRng(267);
    EXPECT_THROW(rejectionQuery(Model{}, 10, rng), Error);
    EXPECT_THROW(
        rejectionQuery([](Sampler&) { return 0.0; }, 0, rng), Error);
}

} // namespace
} // namespace prob
} // namespace uncertain
