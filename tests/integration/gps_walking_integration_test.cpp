/**
 * @file
 * End-to-end GPS-Walking integration: trajectory simulator -> GPS
 * sensor -> uncertain library -> application decisions, reproducing
 * the qualitative claims of paper section 5.1 at test scale.
 */

#include <gtest/gtest.h>

#include <vector>

#include "gps/trajectory.hpp"
#include "gps/walking.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace gps {
namespace {

struct WalkRun
{
    std::vector<TruePosition> truth;
    std::vector<GpsFix> fixes;
};

WalkRun
makeRun(double durationSeconds, std::uint64_t seed,
        GpsSensor sensor = GpsSensor::phone())
{
    WalkRun run;
    Rng rng = testing::testRng(seed);
    WalkConfig config;
    config.durationSeconds = durationSeconds;
    run.truth = simulateWalk(config, rng);
    run.fixes = observeWalk(run.truth, sensor, rng);
    return run;
}

TEST(GpsWalkingIntegration, NaiveSpeedsContainAbsurdValues)
{
    // Figure 3's artifact: a 3 mph walk whose naive speed trace
    // shows running pace and absurd spikes, caused by fix-error
    // jumps compounding through the speed division.
    GpsSensorConfig config;
    config.epsilon95 = 2.0;
    config.correlation = 0.95;
    config.glitchProbability = 0.05;
    config.glitchScale = 4.0;
    WalkRun run = makeRun(600.0, 271, GpsSensor(config));

    double worst = 0.0;
    int aboveRunningPace = 0;
    for (std::size_t i = 1; i < run.fixes.size(); ++i) {
        double mph = naiveSpeedMph(run.fixes[i - 1], run.fixes[i]);
        worst = std::max(worst, mph);
        aboveRunningPace += mph > 7.0 ? 1 : 0;
    }
    // Ground truth never exceeds 6 mph, yet the naive computation
    // reports running pace many times and absurd peaks.
    EXPECT_GT(aboveRunningPace, 10);
    EXPECT_GT(worst, 15.0);
}

TEST(GpsWalkingIntegration, EvidenceConditionalReducesFalseFastReports)
{
    // The paper reduces false "running" reports by evaluating
    // evidence instead of the raw point estimate. With the
    // independent per-fix posterior our library exposes, the
    // implicit operator cannot shrink estimates (there is no prior),
    // so the reproduction uses the explicit evidence operator the
    // paper's own app applies for false-positive control
    // (.Pr(0.9)); see EXPERIMENTS.md.
    GpsSensorConfig config;
    config.epsilon95 = 2.0;
    config.correlation = 0.95;
    config.glitchProbability = 0.05;
    config.glitchScale = 2.2;
    WalkRun run = makeRun(600.0, 272, GpsSensor(config));

    Rng rng = testing::testRng(273);
    core::ConditionalOptions options;
    options.sprt.maxSamples = 200;

    int naiveFast = 0;
    int uncertainFast = 0;
    int trulyFast = 0;
    for (std::size_t i = 1; i < run.fixes.size(); ++i) {
        bool truthFast = run.truth[i].speedMph > 7.0;
        trulyFast += truthFast ? 1 : 0;

        naiveFast +=
            naiveSpeedMph(run.fixes[i - 1], run.fixes[i]) > 7.0 ? 1
                                                                : 0;

        auto speed = speedFromFixes(run.fixes[i - 1], run.fixes[i]);
        uncertainFast += (speed > 7.0).pr(0.9, options, rng) ? 1 : 0;
    }
    EXPECT_EQ(trulyFast, 0);
    EXPECT_GT(naiveFast, 5);
    // Section 5.1's shape: a large reduction in false reports.
    EXPECT_LT(uncertainFast * 2, naiveFast);
}

TEST(GpsWalkingIntegration, PriorImprovedSpeedTracksGroundTruth)
{
    WalkRun run = makeRun(120.0, 274);
    Rng rng = testing::testRng(275);
    inference::ReweightOptions reweightOptions;
    reweightOptions.proposalSamples = 2000;
    reweightOptions.resampleSize = 1000;

    double rawError = 0.0;
    double improvedError = 0.0;
    int steps = 0;
    for (std::size_t i = 1; i < run.fixes.size(); i += 5) {
        auto speed = speedFromFixes(run.fixes[i - 1], run.fixes[i]);
        auto improved = inference::applyPrior(
            speed, *walkingSpeedPrior(), reweightOptions, rng);
        double truth = run.truth[i].speedMph;
        rawError += std::abs(speed.expectedValue(500, rng) - truth);
        improvedError +=
            std::abs(improved.expectedValue(500, rng) - truth);
        ++steps;
    }
    // Figure 13: the prior removes the absurd values and tightens
    // the estimates toward truth on average.
    EXPECT_LT(improvedError, rawError);
}

TEST(GpsWalkingIntegration, AdviceIsMostlySpeedUpForAnAverageWalker)
{
    // Ground truth ~3 mph: GoodJob (evidence of > 4 mph) should be
    // rare, and with wide per-second error many steps are None.
    WalkRun run = makeRun(200.0, 276, GpsSensor::phone(1.5));
    seedGlobalRng(testing::testRng(277).nextU64());

    int goodJob = 0;
    int speedUp = 0;
    int none = 0;
    for (std::size_t i = 1; i < run.fixes.size(); ++i) {
        auto speed = speedFromFixes(run.fixes[i - 1], run.fixes[i]);
        switch (advise(speed)) {
          case Advice::GoodJob:
            ++goodJob;
            break;
          case Advice::SpeedUp:
            ++speedUp;
            break;
          case Advice::None:
            ++none;
            break;
        }
    }
    int total = goodJob + speedUp + none;
    EXPECT_LT(goodJob, total / 3);
    EXPECT_GT(none + speedUp, 2 * total / 3);
}

} // namespace
} // namespace gps
} // namespace uncertain
