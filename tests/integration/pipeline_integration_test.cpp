/**
 * @file
 * Cross-module integrations: SensorLife over multiple noise levels,
 * Parakeet edge detection against ground truth, and an
 * Uncertain<T>-vs-rejection-sampling comparison on a forward query.
 */

#include <gtest/gtest.h>

#include <memory>

#include "life/variants.hpp"
#include "nn/parakeet.hpp"
#include "nn/sobel.hpp"
#include "prob/model.hpp"
#include "random/gaussian.hpp"
#include "stats/precision_recall.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

TEST(SensorLifeIntegration, SensorErrorsGrowWithNoiseLevel)
{
    core::ConditionalOptions options;
    options.sprt.batchSize = 8;
    options.sprt.maxSamples = 120;

    Rng rng = testing::testRng(281);
    life::Board board(10, 10);
    board.randomize(rng, 0.35);

    double lowNoise =
        life::runNoisyGame(board, life::SensorLife(0.05, options), 5,
                           rng)
            .errorRate();
    double highNoise =
        life::runNoisyGame(board, life::SensorLife(0.45, options), 5,
                           rng)
            .errorRate();
    EXPECT_LT(lowNoise, highNoise);
    EXPECT_LT(lowNoise, 0.02);
}

TEST(ParakeetIntegration, PrecisionRisesWithTheEvidenceThreshold)
{
    Rng rng = testing::testRng(282);
    nn::Dataset train = nn::makeSobelDataset(800, rng);
    nn::ParakeetOptions options;
    options.sgd.epochs = 120;
    options.hmc.burnIn = 150;
    options.hmc.thinning = 4;
    options.hmc.posteriorSamples = 40;
    options.hmcDataLimit = 400;
    auto model = nn::Parakeet::train(train, options, rng);

    nn::Dataset eval = nn::makeSobelDataset(250, rng);
    core::ConditionalOptions conditional;
    conditional.sprt.maxSamples = 200;

    auto evaluateAt = [&](double alpha) {
        stats::ConfusionMatrix matrix;
        for (std::size_t i = 0; i < eval.size(); ++i) {
            bool truth = eval.targets[i] > nn::kEdgeThreshold;
            auto evidence =
                model.predict(eval.inputs[i]) > nn::kEdgeThreshold;
            matrix.add(truth, evidence.pr(alpha, conditional, rng));
        }
        return matrix;
    };

    auto lax = evaluateAt(0.15);
    auto strict = evaluateAt(0.9);
    // Figure 16's trade-off: stricter evidence -> higher precision,
    // lower (or equal) recall.
    EXPECT_GE(strict.precision(), lax.precision());
    EXPECT_LE(strict.recall(), lax.recall());
    // And the detector must actually work at all.
    EXPECT_GT(lax.recall(), 0.5);
}

TEST(BaselineIntegration, ForwardQueriesAreCheapForUncertainT)
{
    // The alarm model's *forward* marginal Pr[phoneWorking] needs no
    // conditioning; Uncertain<T> answers it with a handful of SPRT
    // samples, while the posterior query pays 1/Pr[alarm] per sample
    // in rejection sampling. This is the efficiency asymmetry of
    // paper section 6.
    Rng rng = testing::testRng(283);

    auto phoneWorking = Uncertain<bool>::fromSampler(
        [](Rng& r) {
            bool earthquake = r.nextBool(0.0001);
            return earthquake ? r.nextBool(0.7) : r.nextBool(0.99);
        },
        "phoneWorking");
    core::ConditionalOptions options;
    auto result = phoneWorking.evaluate(0.5, options, rng);
    EXPECT_EQ(result.decision, stats::TestDecision::AcceptAlternative);
    EXPECT_LT(result.samplesUsed, 200u);

    auto posterior = prob::rejectionQuery(prob::alarmModel, 100, rng);
    EXPECT_GT(posterior.simulations, 10000u);
    EXPECT_GT(static_cast<double>(posterior.simulations)
                  / static_cast<double>(result.samplesUsed),
              100.0);
}

TEST(EndToEnd, CompoundComputationThroughEveryOperator)
{
    // One expression exercising arithmetic, comparison, logical ops,
    // expected value, and conditionals together.
    Rng rng = testing::testRng(284);
    auto a = core::fromDistribution(
        std::make_shared<random::Gaussian>(2.0, 0.5));
    auto b = core::fromDistribution(
        std::make_shared<random::Gaussian>(3.0, 0.5));

    auto expr = (a * 2.0 + b) / 2.0 - 1.0; // mean (4 + 3)/2 - 1 = 2.5
    EXPECT_NEAR(expr.expectedValue(20000, rng), 2.5, 0.05);

    auto inBand = (expr > 2.0) && (expr < 3.0);
    core::ConditionalOptions options;
    EXPECT_TRUE(inBand.pr(0.5, options, rng));
    EXPECT_FALSE((!inBand).pr(0.5, options, rng));
}

} // namespace
} // namespace uncertain
