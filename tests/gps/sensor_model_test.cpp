/**
 * @file
 * GPS sensor error-process tests: the AR(1)/glitch receiver model
 * must keep the paper's Rayleigh marginal while adding the temporal
 * correlation that shapes real traces.
 */

#include <gtest/gtest.h>

#include <vector>

#include "gps/sensor.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/ks_test.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace gps {
namespace {

const GeoCoordinate kHome{47.6420, -122.1370};

TEST(SensorModel, ValidatesConfiguration)
{
    GpsSensorConfig config;
    config.epsilon95 = 0.0;
    EXPECT_THROW(GpsSensor{config}, Error);
    config = GpsSensorConfig{};
    config.correlation = 1.0;
    EXPECT_THROW(GpsSensor{config}, Error);
    config = GpsSensorConfig{};
    config.glitchProbability = 1.5;
    EXPECT_THROW(GpsSensor{config}, Error);
    config = GpsSensorConfig{};
    config.glitchScale = 0.5;
    EXPECT_THROW(GpsSensor{config}, Error);
}

TEST(SensorModel, CorrelatedErrorsKeepTheRayleighMarginal)
{
    GpsSensorConfig config;
    config.epsilon95 = 4.0;
    config.correlation = 0.9;
    GpsSensor sensor(config);
    Rng rng = testing::testRng(351);

    // Discard a warmup, then check the stationary radial law.
    std::vector<double> radii;
    for (int i = 0; i < 21000; ++i) {
        GpsFix fix = sensor.read(kHome, i, rng);
        if (i >= 1000)
            radii.push_back(distanceMeters(kHome, fix.coordinate));
    }
    // KS against the Rayleigh marginal. Correlated samples inflate
    // the KS statistic, so test a thinned subsequence.
    std::vector<double> thinned;
    for (std::size_t i = 0; i < radii.size(); i += 40)
        thinned.push_back(radii[i]);
    auto result = stats::ksTest(thinned, sensor.errorModel());
    EXPECT_GT(result.pValue, 1e-4);
}

TEST(SensorModel, ErrorsAreTemporallyCorrelated)
{
    GpsSensorConfig config;
    config.epsilon95 = 4.0;
    config.correlation = 0.95;
    GpsSensor sensor(config);
    Rng rng = testing::testRng(352);

    std::vector<double> east;
    GeoCoordinate reference = destination(kHome, M_PI / 2.0, 1000.0);
    for (int i = 0; i < 5000; ++i) {
        GpsFix fix = sensor.read(kHome, i, rng);
        // Project the error loosely onto the east axis by comparing
        // longitudes.
        east.push_back(fix.coordinate.longitude - kHome.longitude);
    }
    EXPECT_GT(stats::autocorrelation(east, 1), 0.85);
    (void)reference;
}

TEST(SensorModel, IndependentConfigurationIsUncorrelated)
{
    GpsSensor sensor(4.0);
    Rng rng = testing::testRng(353);
    std::vector<double> east;
    for (int i = 0; i < 5000; ++i) {
        GpsFix fix = sensor.read(kHome, i, rng);
        east.push_back(fix.coordinate.longitude - kHome.longitude);
    }
    EXPECT_NEAR(stats::autocorrelation(east, 1), 0.0, 0.05);
}

TEST(SensorModel, GlitchesProduceErrorJumps)
{
    GpsSensorConfig calm;
    calm.epsilon95 = 2.0;
    calm.correlation = 0.95;
    GpsSensorConfig glitchy = calm;
    glitchy.glitchProbability = 0.05;
    glitchy.glitchScale = 5.0;

    Rng rng = testing::testRng(354);
    auto maxJump = [&](GpsSensorConfig config) {
        GpsSensor sensor(config);
        Rng local = rng.fork();
        GpsFix previous = sensor.read(kHome, 0, local);
        double worst = 0.0;
        for (int i = 1; i < 2000; ++i) {
            GpsFix fix = sensor.read(kHome, i, local);
            worst = std::max(worst,
                             distanceMeters(previous.coordinate,
                                            fix.coordinate));
            previous = fix;
        }
        return worst;
    };

    EXPECT_GT(maxJump(glitchy), 2.0 * maxJump(calm));
}

TEST(SensorModel, PhonePresetIsCorrelatedAndGlitchy)
{
    GpsSensor sensor = GpsSensor::phone(3.0);
    EXPECT_DOUBLE_EQ(sensor.horizontalAccuracy(), 3.0);
    EXPECT_GT(sensor.config().correlation, 0.5);
    EXPECT_GT(sensor.config().glitchProbability, 0.0);
}

} // namespace
} // namespace gps
} // namespace uncertain
