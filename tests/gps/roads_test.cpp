/** @file Road network, road prior, and generic-SIR snapping tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "gps/gps_library.hpp"
#include "gps/roads.hpp"
#include "inference/generic_reweight.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace gps {
namespace {

const GeoCoordinate kCenter{47.6200, -122.3500};

RoadNetwork
northSouthRoad()
{
    return RoadNetwork({{destination(kCenter, M_PI, 500.0),
                         destination(kCenter, 0.0, 500.0)}});
}

TEST(RoadNetwork, DistanceToAPointOnTheRoadIsZero)
{
    RoadNetwork road = northSouthRoad();
    EXPECT_NEAR(road.distanceToNearestRoad(kCenter), 0.0, 0.02);
    GeoCoordinate along = destination(kCenter, 0.0, 200.0);
    EXPECT_NEAR(road.distanceToNearestRoad(along), 0.0, 0.05);
}

TEST(RoadNetwork, PerpendicularOffsetIsTheDistance)
{
    RoadNetwork road = northSouthRoad();
    for (double offset : {3.0, 10.0, 50.0}) {
        GeoCoordinate beside =
            destination(kCenter, M_PI / 2.0, offset);
        EXPECT_NEAR(road.distanceToNearestRoad(beside), offset,
                    0.05 + offset * 1e-3)
            << "offset " << offset;
    }
}

TEST(RoadNetwork, BeyondTheEndpointMeasuresToTheEndpoint)
{
    RoadNetwork road = northSouthRoad();
    GeoCoordinate past = destination(kCenter, 0.0, 600.0);
    EXPECT_NEAR(road.distanceToNearestRoad(past), 100.0, 0.5);
}

TEST(RoadNetwork, GridCoversBothDirections)
{
    RoadNetwork grid = RoadNetwork::grid(kCenter, 100.0, 3);
    EXPECT_EQ(grid.segmentCount(), 6u);
    // Any point within the grid is at most half a spacing from a
    // street.
    Rng rng = testing::testRng(361);
    for (int i = 0; i < 200; ++i) {
        double east = rng.nextRange(-100.0, 100.0);
        double north = rng.nextRange(-100.0, 100.0);
        GeoCoordinate p = destination(
            destination(kCenter, M_PI / 2.0, east), 0.0, north);
        EXPECT_LE(grid.distanceToNearestRoad(p), 50.0 + 0.5);
    }
    EXPECT_THROW(RoadNetwork({}), Error);
    EXPECT_THROW(RoadNetwork::grid(kCenter, 0.0, 3), Error);
}

TEST(RoadPrior, DensityPeaksOnTheRoadWithAFloor)
{
    RoadPrior prior(northSouthRoad(), 5.0, 1e-3);
    double onRoad = prior.logDensity(kCenter);
    double nearRoad =
        prior.logDensity(destination(kCenter, M_PI / 2.0, 5.0));
    double farAway =
        prior.logDensity(destination(kCenter, M_PI / 2.0, 500.0));
    double fartherAway =
        prior.logDensity(destination(kCenter, M_PI / 2.0, 2000.0));
    EXPECT_GT(onRoad, nearRoad);
    EXPECT_GT(nearRoad, farAway);
    // The uniform floor: far off-road the density stops decaying.
    EXPECT_NEAR(farAway, fartherAway, 1e-9);
    EXPECT_THROW(RoadPrior(northSouthRoad(), 0.0), Error);
    EXPECT_THROW(RoadPrior(northSouthRoad(), 5.0, 2.0), Error);
}

TEST(SnapToRoads, PosteriorMovesTowardTheRoad)
{
    Rng rng = testing::testRng(362);
    RoadPrior prior(northSouthRoad(), 6.0);
    GeoCoordinate fixCenter = destination(kCenter, M_PI / 2.0, 10.0);
    auto raw = getLocation({fixCenter, 8.0, 0.0});
    inference::ReweightOptions options;
    options.proposalSamples = 8000;
    options.resampleSize = 4000;
    auto snapped = snapToRoads(raw, prior, options, rng);

    RoadNetwork road = northSouthRoad();
    auto meanDistance = [&](const Uncertain<GeoCoordinate>& u) {
        double total = 0.0;
        for (const auto& p : u.takeSamples(2000, rng))
            total += road.distanceToNearestRoad(p);
        return total / 2000.0;
    };
    EXPECT_LT(meanDistance(snapped), meanDistance(raw) - 1.0);
}

TEST(SnapToRoads, EmphaticallyOffRoadEvidenceWins)
{
    // Figure 10's caveat: with the fix far from any road, the floor
    // dominates and snapping barely moves the posterior.
    Rng rng = testing::testRng(363);
    RoadPrior prior(northSouthRoad(), 6.0);
    GeoCoordinate fixCenter = destination(kCenter, M_PI / 2.0, 80.0);
    auto raw = getLocation({fixCenter, 4.0, 0.0});
    inference::ReweightOptions options;
    options.proposalSamples = 8000;
    options.resampleSize = 4000;
    auto snapped = snapToRoads(raw, prior, options, rng);

    EnuOffset rawMean{0.0, 0.0};
    EnuOffset snappedMean{0.0, 0.0};
    for (const auto& p : raw.takeSamples(2000, rng)) {
        EnuOffset o = localOffsetMeters(kCenter, p);
        rawMean.east += o.east / 2000.0;
        rawMean.north += o.north / 2000.0;
    }
    for (const auto& p : snapped.takeSamples(2000, rng)) {
        EnuOffset o = localOffsetMeters(kCenter, p);
        snappedMean.east += o.east / 2000.0;
        snappedMean.north += o.north / 2000.0;
    }
    EXPECT_NEAR(snappedMean.east, rawMean.east, 1.0);
}

TEST(GenericReweight, WorksOverNonScalarTypes)
{
    // Uniform square posterior restricted to the right half-plane.
    Rng rng = testing::testRng(364);
    auto square = Uncertain<gps::EnuOffset>::fromSampler(
        [](Rng& r) {
            return EnuOffset{r.nextRange(-1.0, 1.0),
                             r.nextRange(-1.0, 1.0)};
        },
        "square");
    auto result = inference::reweightSamples(
        square,
        [](const EnuOffset& p) {
            return p.east >= 0.0
                       ? 0.0
                       : -std::numeric_limits<double>::infinity();
        },
        inference::ReweightOptions{4000, 2000}, rng);
    for (const auto& p : result.posterior.takeSamples(1000, rng))
        EXPECT_GE(p.east, 0.0);
    // Half the proposals carry weight: ESS ~ half the pool.
    EXPECT_NEAR(result.effectiveSampleSize, 2000.0, 200.0);
}

TEST(GenericReweight, ThrowsOnZeroOverlap)
{
    Rng rng = testing::testRng(365);
    auto point = Uncertain<double>::fromSampler(
        [](Rng&) { return 1.0; }, "one");
    EXPECT_THROW(
        inference::reweightSamples(
            point,
            [](double) {
                return -std::numeric_limits<double>::infinity();
            },
            inference::ReweightOptions{100, 50}, rng),
        Error);
}

} // namespace
} // namespace gps
} // namespace uncertain
