/** @file Geodesy tests: haversine distances and destination points. */

#include <gtest/gtest.h>

#include <cmath>

#include "gps/geo.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace gps {
namespace {

TEST(Geo, DistanceToSelfIsZero)
{
    GeoCoordinate p{47.6, -122.3};
    EXPECT_DOUBLE_EQ(distanceMeters(p, p), 0.0);
}

TEST(Geo, DistanceIsSymmetric)
{
    GeoCoordinate a{47.6, -122.3};
    GeoCoordinate b{47.7, -122.2};
    EXPECT_NEAR(distanceMeters(a, b), distanceMeters(b, a), 1e-9);
}

TEST(Geo, OneDegreeOfLatitudeIsAbout111Km)
{
    GeoCoordinate a{0.0, 0.0};
    GeoCoordinate b{1.0, 0.0};
    EXPECT_NEAR(distanceMeters(a, b), 111195.0, 50.0);
}

TEST(Geo, LongitudeDegreesShrinkWithLatitude)
{
    GeoCoordinate equatorA{0.0, 0.0};
    GeoCoordinate equatorB{0.0, 1.0};
    GeoCoordinate northA{60.0, 0.0};
    GeoCoordinate northB{60.0, 1.0};
    double atEquator = distanceMeters(equatorA, equatorB);
    double atSixty = distanceMeters(northA, northB);
    EXPECT_NEAR(atSixty / atEquator, 0.5, 0.01); // cos(60 deg)
}

TEST(Geo, DestinationTravelsTheRequestedDistance)
{
    GeoCoordinate start{47.6420, -122.1370};
    Rng rng = testing::testRng(161);
    for (int i = 0; i < 50; ++i) {
        double bearing = rng.nextRange(0.0, 2.0 * M_PI);
        double meters = rng.nextRange(0.5, 5000.0);
        GeoCoordinate end = destination(start, bearing, meters);
        EXPECT_NEAR(distanceMeters(start, end), meters,
                    meters * 1e-6 + 1e-6);
    }
}

TEST(Geo, DestinationNorthIncreasesLatitudeOnly)
{
    GeoCoordinate start{10.0, 20.0};
    GeoCoordinate end = destination(start, 0.0, 1000.0);
    EXPECT_GT(end.latitude, start.latitude);
    EXPECT_NEAR(end.longitude, start.longitude, 1e-9);
}

TEST(Geo, DestinationEastIncreasesLongitude)
{
    GeoCoordinate start{10.0, 20.0};
    GeoCoordinate end = destination(start, M_PI / 2.0, 1000.0);
    EXPECT_GT(end.longitude, start.longitude);
    EXPECT_NEAR(end.latitude, start.latitude, 1e-4);
}

TEST(Geo, OppositeBearingsRoundTrip)
{
    GeoCoordinate start{47.0, -122.0};
    GeoCoordinate out = destination(start, 1.2, 800.0);
    GeoCoordinate back = destination(out, 1.2 + M_PI, 800.0);
    // Great-circle bearings change along the path, so the reverse
    // leg does not retrace exactly; sub-meter over 800 m is correct.
    EXPECT_NEAR(distanceMeters(start, back), 0.0, 1.0);
}

TEST(Geo, CoordinateArithmeticIsComponentWise)
{
    GeoCoordinate a{1.0, 2.0};
    GeoCoordinate b{0.5, -1.0};
    GeoCoordinate sum = a + b;
    EXPECT_DOUBLE_EQ(sum.latitude, 1.5);
    EXPECT_DOUBLE_EQ(sum.longitude, 1.0);
    GeoCoordinate scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled.latitude, 2.0);
    GeoCoordinate halved = a / 2.0;
    EXPECT_DOUBLE_EQ(halved.longitude, 1.0);
    EXPECT_TRUE(a == GeoCoordinate(1.0, 2.0));
}

TEST(Geo, UnitConversions)
{
    EXPECT_NEAR(toRadians(180.0), M_PI, 1e-12);
    EXPECT_NEAR(toDegrees(M_PI / 2.0), 90.0, 1e-12);
    EXPECT_NEAR(10.0 * kMpsToMph, 22.369362920544, 1e-9);
}

} // namespace
} // namespace gps
} // namespace uncertain
