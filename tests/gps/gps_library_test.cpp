/**
 * @file
 * GPS sensor/library tests, anchored on the paper's quantitative
 * claims: 95% of fixes fall within the horizontal-accuracy radius,
 * and a pair of 4 m fixes yields a speed with a ~12.7 mph 95%
 * confidence radius (section 2).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gps/gps_library.hpp"
#include "gps/sensor.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace gps {
namespace {

const GeoCoordinate kHome{47.6420, -122.1370};

TEST(GpsSensor, ErrorsRespectTheAdvertised95PercentRadius)
{
    GpsSensor sensor(4.0);
    Rng rng = testing::testRng(171);
    const int n = 20000;
    int inside = 0;
    for (int i = 0; i < n; ++i) {
        GpsFix fix = sensor.read(kHome, 0.0, rng);
        if (distanceMeters(kHome, fix.coordinate) <= 4.0)
            ++inside;
    }
    double p = static_cast<double>(inside) / n;
    EXPECT_NEAR(p, 0.95, testing::proportionTolerance(0.95, n));
}

TEST(GpsSensor, ReportsTheConfiguredAccuracy)
{
    GpsSensor sensor(7.5);
    Rng rng = testing::testRng(172);
    GpsFix fix = sensor.read(kHome, 3.0, rng);
    EXPECT_DOUBLE_EQ(fix.horizontalAccuracy, 7.5);
    EXPECT_DOUBLE_EQ(fix.timeSeconds, 3.0);
}

TEST(GetLocation, PosteriorSpreadsAroundTheFix)
{
    GpsFix fix{kHome, 4.0, 0.0};
    auto location = getLocation(fix);
    Rng rng = testing::testRng(173);
    const int n = 20000;
    int inside = 0;
    stats::OnlineSummary radial;
    for (const auto& sample : location.takeSamples(n, rng)) {
        double r = distanceMeters(kHome, sample);
        radial.add(r);
        if (r <= 4.0)
            ++inside;
    }
    // 95% of posterior mass within epsilon of the fix center.
    EXPECT_NEAR(static_cast<double>(inside) / n, 0.95,
                testing::proportionTolerance(0.95, n));
    // Rayleigh mean = rho * sqrt(pi/2) with rho = 4/sqrt(ln 400).
    double rho = 4.0 / std::sqrt(std::log(400.0));
    EXPECT_NEAR(radial.mean(), rho * std::sqrt(M_PI / 2.0), 0.05);
}

TEST(GetLocation, TrueLocationIsRarelyAtTheCenter)
{
    // Figure 11's point: the mode of the radial error is away from
    // zero, so very little mass sits within a small disc.
    GpsFix fix{kHome, 4.0, 0.0};
    auto location = getLocation(fix);
    Rng rng = testing::testRng(174);
    int nearCenter = 0;
    const int n = 20000;
    for (const auto& sample : location.takeSamples(n, rng)) {
        if (distanceMeters(kHome, sample) < 0.25)
            ++nearCenter;
    }
    EXPECT_LT(static_cast<double>(nearCenter) / n, 0.02);
}

TEST(UncertainDistance, TwoCleanFixesGiveTheTrueDistance)
{
    GeoCoordinate away = destination(kHome, 0.3, 100.0);
    auto a = getLocation({kHome, 0.01, 0.0});
    auto b = getLocation({away, 0.01, 1.0});
    Rng rng = testing::testRng(175);
    EXPECT_NEAR(uncertainDistance(a, b).expectedValue(2000, rng),
                100.0, 0.1);
}

TEST(UncertainSpeed, PaperAnchor95PercentIntervalIs12Point7Mph)
{
    // Two stationary fixes with 4 m accuracy, 1 s apart: the paper
    // says the speed's 95% confidence radius is 12.7 mph.
    auto a = getLocation({kHome, 4.0, 0.0});
    auto b = getLocation({kHome, 4.0, 1.0});
    auto speed = uncertainSpeedMph(a, b, 1.0);
    Rng rng = testing::testRng(176);
    std::vector<double> samples = speed.takeSamples(40000, rng);
    std::sort(samples.begin(), samples.end());
    double q95 = samples[static_cast<std::size_t>(0.95
                                                  * samples.size())];
    EXPECT_NEAR(q95, 12.7, 0.4);
}

TEST(UncertainSpeed, StationaryUserStillShowsPositiveSpeed)
{
    // The bias that produces Figure 3's absurd readings: |error|/dt
    // is strictly positive even when the user does not move.
    auto a = getLocation({kHome, 4.0, 0.0});
    auto b = getLocation({kHome, 4.0, 1.0});
    auto speed = uncertainSpeedMph(a, b, 1.0);
    Rng rng = testing::testRng(177);
    EXPECT_GT(speed.expectedValue(5000, rng), 3.0);
}

TEST(NaiveSpeed, MatchesPointEstimateArithmetic)
{
    GeoCoordinate away = destination(kHome, 1.0, 10.0);
    GpsFix f1{kHome, 4.0, 0.0};
    GpsFix f2{away, 4.0, 2.0};
    // 10 m in 2 s = 5 m/s.
    EXPECT_NEAR(naiveSpeedMph(f1, f2), 5.0 * kMpsToMph, 1e-6);
    EXPECT_THROW(naiveSpeedMph(f2, f1), Error);
}

} // namespace
} // namespace gps
} // namespace uncertain
