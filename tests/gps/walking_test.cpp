/** @file GPS-Walking application logic and trajectory tests. */

#include <gtest/gtest.h>

#include <memory>

#include "gps/trajectory.hpp"
#include "gps/walking.hpp"
#include "random/gaussian.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace gps {
namespace {

Uncertain<double>
speedDistribution(double mean, double sigma)
{
    return core::fromDistribution(
        std::make_shared<random::Gaussian>(mean, sigma));
}

TEST(Advise, ClearlyFastUserGetsGoodJob)
{
    Rng rngSeed = testing::testRng(181);
    seedGlobalRng(rngSeed.nextU64());
    EXPECT_EQ(advise(speedDistribution(6.0, 0.5)), Advice::GoodJob);
}

TEST(Advise, ClearlySlowUserGetsSpeedUp)
{
    seedGlobalRng(testing::testRng(182).nextU64());
    EXPECT_EQ(advise(speedDistribution(2.0, 0.5)), Advice::SpeedUp);
}

TEST(Advise, BorderlineSlowUserIsNotAdmonished)
{
    // Somewhat under 4 mph with wide error: Pr[slow] ~ 0.63, which
    // clears neither the implicit 0.5 bar for GoodJob (Pr[fast] ~
    // 0.37) nor the 0.9 bar for SpeedUp — the developer chose to
    // avoid false accusations, so the app says nothing.
    seedGlobalRng(testing::testRng(183).nextU64());
    EXPECT_EQ(advise(speedDistribution(3.5, 1.5)), Advice::None);
}

TEST(Advise, NaiveVersionAlwaysSpeaks)
{
    EXPECT_EQ(naiveAdvise(4.5), Advice::GoodJob);
    EXPECT_EQ(naiveAdvise(3.9), Advice::SpeedUp);
    // No inconclusive option exists for the naive program.
}

TEST(WalkingPrior, AssignsNoMassToAbsurdSpeeds)
{
    auto prior = walkingSpeedPrior();
    Rng rng = testing::testRng(184);
    for (int i = 0; i < 5000; ++i) {
        double v = prior->sample(rng);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 10.0);
    }
    EXPECT_DOUBLE_EQ(prior->pdf(59.0), 0.0);
    EXPECT_GT(prior->pdf(3.0), prior->pdf(9.0));
}

TEST(ImproveSpeed, PullsAbsurdEstimatesIntoTheHumanRange)
{
    // A wildly uncertain "59 mph" estimate (Figure 3's artifact)
    // must come back to plausible walking speed under the prior
    // (Figure 13's improvement).
    Rng rng = testing::testRng(185);
    seedGlobalRng(rng.nextU64());
    auto absurd = speedDistribution(30.0, 20.0);
    auto improved = improveSpeed(absurd);
    double e = improved.expectedValue(4000);
    EXPECT_LE(e, 10.0);
    EXPECT_GE(e, 0.0);
}

TEST(ImproveSpeed, TightensTheConfidenceInterval)
{
    Rng rng = testing::testRng(186);
    seedGlobalRng(rng.nextU64());
    auto noisy = speedDistribution(5.0, 6.0);
    auto improved = improveSpeed(noisy);

    stats::OnlineSummary before;
    before.addAll(noisy.takeSamples(4000));
    stats::OnlineSummary after;
    after.addAll(improved.takeSamples(4000));
    EXPECT_LT(after.stddev(), before.stddev());
}

TEST(Trajectory, ProducesTheConfiguredDuration)
{
    WalkConfig config;
    config.durationSeconds = 120.0;
    Rng rng = testing::testRng(187);
    auto walk = simulateWalk(config, rng);
    ASSERT_EQ(walk.size(), 121u);
    EXPECT_DOUBLE_EQ(walk.front().timeSeconds, 0.0);
    EXPECT_DOUBLE_EQ(walk.back().timeSeconds, 120.0);
}

TEST(Trajectory, SpeedsStayInTheHumanWalkingRange)
{
    WalkConfig config;
    Rng rng = testing::testRng(188);
    auto walk = simulateWalk(config, rng);
    stats::OnlineSummary speeds;
    for (const auto& p : walk) {
        EXPECT_GE(p.speedMph, 0.0);
        EXPECT_LE(p.speedMph, 6.0);
        speeds.add(p.speedMph);
    }
    EXPECT_NEAR(speeds.mean(), 3.0, 1.0);
}

TEST(Trajectory, ConsecutivePositionsAreConsistentWithSpeed)
{
    WalkConfig config;
    Rng rng = testing::testRng(189);
    auto walk = simulateWalk(config, rng);
    for (std::size_t i = 1; i < walk.size(); ++i) {
        double meters = distanceMeters(walk[i - 1].coordinate,
                                       walk[i].coordinate);
        // Step length equals the post-update speed times 1 s.
        EXPECT_NEAR(meters, walk[i].speedMph / kMpsToMph, 1e-6);
    }
}

TEST(Trajectory, ObserveWalkPreservesTimestamps)
{
    WalkConfig config;
    config.durationSeconds = 30.0;
    Rng rng = testing::testRng(190);
    auto walk = simulateWalk(config, rng);
    GpsSensor sensor(4.0);
    auto fixes = observeWalk(walk, sensor, rng);
    ASSERT_EQ(fixes.size(), walk.size());
    for (std::size_t i = 0; i < fixes.size(); ++i) {
        EXPECT_DOUBLE_EQ(fixes[i].timeSeconds, walk[i].timeSeconds);
        EXPECT_DOUBLE_EQ(fixes[i].horizontalAccuracy, 4.0);
        // A 4 m sensor almost never errs by a kilometer.
        EXPECT_LT(distanceMeters(fixes[i].coordinate,
                                 walk[i].coordinate),
                  1000.0);
    }
}

} // namespace
} // namespace gps
} // namespace uncertain
