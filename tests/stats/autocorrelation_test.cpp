/** @file Autocorrelation and effective-sample-size tests. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "random/gaussian.hpp"
#include "stats/autocorrelation.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

/** AR(1) series with coefficient @p phi and unit innovations. */
std::vector<double>
ar1Series(double phi, std::size_t n, Rng& rng)
{
    std::vector<double> xs;
    xs.reserve(n);
    double x = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        x = phi * x + random::Gaussian::standardSample(rng);
        xs.push_back(x);
    }
    return xs;
}

TEST(Autocorrelation, LagZeroIsOne)
{
    Rng rng = testing::testRng(331);
    auto xs = ar1Series(0.5, 1000, rng);
    EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
}

TEST(Autocorrelation, Ar1MatchesPhiAtLagOne)
{
    Rng rng = testing::testRng(332);
    for (double phi : {0.2, 0.5, 0.8}) {
        auto xs = ar1Series(phi, 50000, rng);
        EXPECT_NEAR(autocorrelation(xs, 1), phi, 0.03)
            << "phi = " << phi;
        EXPECT_NEAR(autocorrelation(xs, 2), phi * phi, 0.04);
    }
}

TEST(Autocorrelation, WhiteNoiseIsUncorrelated)
{
    Rng rng = testing::testRng(333);
    auto xs = ar1Series(0.0, 50000, rng);
    for (std::size_t lag : {1u, 5u, 20u})
        EXPECT_NEAR(autocorrelation(xs, lag), 0.0, 0.02);
}

TEST(Autocorrelation, FunctionStartsAtOneAndDecays)
{
    Rng rng = testing::testRng(334);
    auto xs = ar1Series(0.9, 20000, rng);
    auto acf = autocorrelationFunction(xs, 10);
    ASSERT_EQ(acf.size(), 11u);
    EXPECT_DOUBLE_EQ(acf[0], 1.0);
    EXPECT_GT(acf[1], acf[5]);
    EXPECT_GT(acf[5], acf[10] - 0.05);
}

TEST(Autocorrelation, ValidatesInput)
{
    EXPECT_THROW(autocorrelation({1.0}, 0), Error);
    EXPECT_THROW(autocorrelation({1.0, 2.0}, 2), Error);
    EXPECT_THROW(autocorrelation({3.0, 3.0, 3.0}, 1), Error);
}

TEST(EffectiveSampleSize, WhiteNoiseKeepsNearlyAllSamples)
{
    Rng rng = testing::testRng(335);
    auto xs = ar1Series(0.0, 10000, rng);
    EXPECT_GT(effectiveSampleSize(xs), 8000.0);
}

TEST(EffectiveSampleSize, CorrelationShrinksTheChain)
{
    Rng rng = testing::testRng(336);
    auto correlated = ar1Series(0.9, 10000, rng);
    double ess = effectiveSampleSize(correlated);
    // Theoretical ESS factor for AR(1): (1-phi)/(1+phi) = 1/19.
    EXPECT_LT(ess, 1500.0);
    EXPECT_GT(ess, 200.0);
}

TEST(EffectiveSampleSize, ThinningRecoversIndependence)
{
    Rng rng = testing::testRng(337);
    auto chain = ar1Series(0.9, 100000, rng);
    std::vector<double> thinned;
    for (std::size_t i = 0; i < chain.size(); i += 50)
        thinned.push_back(chain[i]);
    // Every 50th draw of a phi=0.9 chain is essentially independent.
    EXPECT_GT(effectiveSampleSize(thinned),
              0.7 * static_cast<double>(thinned.size()));
}

} // namespace
} // namespace stats
} // namespace uncertain
