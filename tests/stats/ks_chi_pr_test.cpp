/** @file KS test, chi-square, and confusion-matrix tests. */

#include <gtest/gtest.h>

#include <vector>

#include "random/gaussian.hpp"
#include "random/uniform.hpp"
#include "stats/chi_square.hpp"
#include "stats/ks_test.hpp"
#include "stats/precision_recall.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

TEST(KsTest, AcceptsSamplesFromTheReference)
{
    random::Gaussian dist(0.0, 1.0);
    Rng rng = testing::testRng(81);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i)
        xs.push_back(dist.sample(rng));
    auto result = ksTest(std::move(xs), dist);
    EXPECT_GT(result.pValue, 0.001);
}

TEST(KsTest, RejectsSamplesFromADifferentLaw)
{
    random::Gaussian reference(0.0, 1.0);
    random::Gaussian shifted(0.5, 1.0);
    Rng rng = testing::testRng(82);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i)
        xs.push_back(shifted.sample(rng));
    auto result = ksTest(std::move(xs), reference);
    EXPECT_LT(result.pValue, 1e-6);
    EXPECT_TRUE(result.rejectAt(0.01));
}

TEST(KsTest2, SameLawAccepted)
{
    random::Uniform dist(0.0, 1.0);
    Rng rng = testing::testRng(83);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 3000; ++i) {
        xs.push_back(dist.sample(rng));
        ys.push_back(dist.sample(rng));
    }
    EXPECT_GT(ksTest2(std::move(xs), std::move(ys)).pValue, 0.001);
}

TEST(KsTest2, DifferentLawsRejected)
{
    random::Uniform a(0.0, 1.0);
    random::Uniform b(0.2, 1.2);
    Rng rng = testing::testRng(84);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 3000; ++i) {
        xs.push_back(a.sample(rng));
        ys.push_back(b.sample(rng));
    }
    EXPECT_LT(ksTest2(std::move(xs), std::move(ys)).pValue, 1e-6);
}

TEST(KolmogorovSurvival, BoundaryBehaviour)
{
    EXPECT_DOUBLE_EQ(kolmogorovSurvival(0.0), 1.0);
    EXPECT_NEAR(kolmogorovSurvival(10.0), 0.0, 1e-12);
    EXPECT_GT(kolmogorovSurvival(0.5), kolmogorovSurvival(1.5));
}

TEST(ChiSquare, UniformCountsAccepted)
{
    std::vector<std::size_t> observed{100, 98, 103, 99};
    std::vector<double> expected{1.0, 1.0, 1.0, 1.0};
    auto result = chiSquareGof(observed, expected);
    EXPECT_GT(result.pValue, 0.5);
    EXPECT_DOUBLE_EQ(result.degreesOfFreedom, 3.0);
}

TEST(ChiSquare, SkewedCountsRejected)
{
    std::vector<std::size_t> observed{400, 10, 10, 10};
    std::vector<double> expected{1.0, 1.0, 1.0, 1.0};
    EXPECT_LT(chiSquareGof(observed, expected).pValue, 1e-10);
}

TEST(ChiSquare, ValidatesInput)
{
    EXPECT_THROW(chiSquareGof({}, {}), Error);
    EXPECT_THROW(chiSquareGof({1, 2}, {1.0}), Error);
    EXPECT_THROW(chiSquareGof({1, 2}, {1.0, 0.0}), Error);
    EXPECT_THROW(chiSquareGof({1, 2}, {1.0, 1.0}, 1), Error);
}

TEST(ConfusionMatrix, CountsAndDerivedRates)
{
    ConfusionMatrix m;
    // 3 TP, 1 FP, 2 TN, 1 FN.
    m.add(true, true);
    m.add(true, true);
    m.add(true, true);
    m.add(false, true);
    m.add(false, false);
    m.add(false, false);
    m.add(true, false);

    EXPECT_EQ(m.truePositives(), 3u);
    EXPECT_EQ(m.falsePositives(), 1u);
    EXPECT_EQ(m.trueNegatives(), 2u);
    EXPECT_EQ(m.falseNegatives(), 1u);
    EXPECT_NEAR(m.precision(), 0.75, 1e-12);
    EXPECT_NEAR(m.recall(), 0.75, 1e-12);
    EXPECT_NEAR(m.f1(), 0.75, 1e-12);
    EXPECT_NEAR(m.accuracy(), 5.0 / 7.0, 1e-12);
    EXPECT_NEAR(m.falsePositiveRate(), 1.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrix, DegenerateCasesAreDefined)
{
    ConfusionMatrix m;
    EXPECT_DOUBLE_EQ(m.precision(), 1.0);
    EXPECT_DOUBLE_EQ(m.recall(), 1.0);
    EXPECT_THROW(m.accuracy(), Error);

    m.add(false, false);
    EXPECT_DOUBLE_EQ(m.recall(), 1.0); // no actual positives
    EXPECT_DOUBLE_EQ(m.falsePositiveRate(), 0.0);
}

} // namespace
} // namespace stats
} // namespace uncertain
