/** @file Bootstrap confidence-interval tests. */

#include <gtest/gtest.h>

#include <vector>

#include "random/gaussian.hpp"
#include "stats/bootstrap.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

TEST(Bootstrap, MeanIntervalAgreesWithTheTInterval)
{
    random::Gaussian dist(3.0, 2.0);
    Rng rng = testing::testRng(401);
    std::vector<double> sample;
    for (int i = 0; i < 200; ++i)
        sample.push_back(dist.sample(rng));

    auto statistic = [](const std::vector<double>& xs) {
        return mean(xs);
    };
    BootstrapOptions options;
    options.resamples = 3000;
    auto result = bootstrap(sample, statistic, options, rng);
    auto tInterval = meanConfidenceInterval(sample);

    EXPECT_NEAR(result.estimate, mean(sample), 1e-12);
    EXPECT_NEAR(result.interval.lo, tInterval.lo, 0.15);
    EXPECT_NEAR(result.interval.hi, tInterval.hi, 0.15);
}

TEST(Bootstrap, CoversTheTrueMedianAtNominalRate)
{
    random::Gaussian dist(0.0, 1.0);
    Rng rng = testing::testRng(402);
    auto statistic = [](const std::vector<double>& xs) {
        return median(xs);
    };
    BootstrapOptions options;
    options.resamples = 300;
    int covered = 0;
    const int experiments = 200;
    for (int e = 0; e < experiments; ++e) {
        std::vector<double> sample;
        for (int i = 0; i < 60; ++i)
            sample.push_back(dist.sample(rng));
        if (bootstrap(sample, statistic, options, rng)
                .interval.contains(0.0)) {
            ++covered;
        }
    }
    // Percentile bootstrap is approximate; demand >= 85% coverage.
    EXPECT_GE(covered, static_cast<int>(0.85 * experiments));
}

TEST(Bootstrap, IntervalShrinksWithSampleSize)
{
    random::Gaussian dist(0.0, 1.0);
    Rng rng = testing::testRng(403);
    auto statistic = [](const std::vector<double>& xs) {
        return mean(xs);
    };
    auto widthFor = [&](int n) {
        std::vector<double> sample;
        for (int i = 0; i < n; ++i)
            sample.push_back(dist.sample(rng));
        return bootstrap(sample, statistic, {}, rng).interval.width();
    };
    EXPECT_LT(widthFor(2000), widthFor(50));
}

TEST(Bootstrap, ValidatesInput)
{
    Rng rng = testing::testRng(404);
    auto statistic = [](const std::vector<double>& xs) {
        return mean(xs);
    };
    EXPECT_THROW(bootstrap({}, statistic, {}, rng), Error);
    BootstrapOptions bad;
    bad.resamples = 5;
    EXPECT_THROW(bootstrap({1.0, 2.0}, statistic, bad, rng), Error);
    bad = BootstrapOptions{};
    bad.confidence = 1.0;
    EXPECT_THROW(bootstrap({1.0, 2.0}, statistic, bad, rng), Error);
    EXPECT_THROW(bootstrap({1.0}, nullptr, {}, rng), Error);
}

} // namespace
} // namespace stats
} // namespace uncertain
