/**
 * @file
 * SPRT unit tests and operating-characteristic property tests: the
 * paper's accuracy claims rest on the SPRT bounding false positives
 * by alpha and false negatives by beta (section 4.3).
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "stats/sprt.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

/** Run one SPRT to its decision with Bernoulli(p) observations. */
TestDecision
runOnce(double trueP, double threshold, const SprtOptions& options,
        Rng& rng, std::size_t* samplesUsed = nullptr)
{
    Sprt test(threshold, options);
    while (!test.isDecided() && !test.isCapped())
        test.add(rng.nextBool(trueP));
    if (samplesUsed != nullptr)
        *samplesUsed = test.samplesUsed();
    return test.decision();
}

TEST(Sprt, RejectsBadParameters)
{
    EXPECT_THROW(Sprt(0.0), Error);
    EXPECT_THROW(Sprt(1.0), Error);
    SprtOptions bad;
    bad.alpha = 0.0;
    EXPECT_THROW(Sprt(0.5, bad), Error);
    bad = SprtOptions{};
    bad.indifference = 0.0;
    EXPECT_THROW(Sprt(0.5, bad), Error);
}

TEST(Sprt, ClearEvidenceDecidesQuickly)
{
    Rng rng = testing::testRng(51);
    SprtOptions options;
    options.maxSamples = 10000;
    std::size_t used = 0;
    EXPECT_EQ(runOnce(0.95, 0.5, options, rng, &used),
              TestDecision::AcceptAlternative);
    EXPECT_LT(used, 100u);

    EXPECT_EQ(runOnce(0.05, 0.5, options, rng, &used),
              TestDecision::AcceptNull);
    EXPECT_LT(used, 100u);
}

TEST(Sprt, IndifferentCaseHitsTheCap)
{
    // The absorption time of the boundary random walk is ~225 draws
    // for these parameters; a cap of 100 leaves most runs undecided.
    Rng rng = testing::testRng(52);
    SprtOptions options;
    options.maxSamples = 100;
    int inconclusive = 0;
    for (int i = 0; i < 50; ++i) {
        if (runOnce(0.5, 0.5, options, rng)
            == TestDecision::Inconclusive) {
            ++inconclusive;
        }
    }
    // At p exactly on the threshold the walk has no drift; most runs
    // should end capped rather than decided.
    EXPECT_GE(inconclusive, 25);
}

TEST(Sprt, FalsePositiveRateIsBoundedByAlpha)
{
    // H0 true with p at the null edge of the indifference region:
    // the rate of AcceptAlternative must not exceed alpha (within
    // Monte Carlo error).
    Rng rng = testing::testRng(53);
    SprtOptions options;
    options.indifference = 0.1;
    options.alpha = 0.05;
    options.beta = 0.05;
    options.maxSamples = 100000;
    const int trials = 2000;
    int falsePositives = 0;
    for (int i = 0; i < trials; ++i) {
        if (runOnce(0.4, 0.5, options, rng)
            == TestDecision::AcceptAlternative) {
            ++falsePositives;
        }
    }
    double rate = static_cast<double>(falsePositives) / trials;
    EXPECT_LE(rate, 0.05 + testing::proportionTolerance(0.05, trials));
}

TEST(Sprt, PowerIsBoundedByBeta)
{
    // H1 true with p at the alternative edge: the rate of
    // AcceptNull must not exceed beta.
    Rng rng = testing::testRng(54);
    SprtOptions options;
    options.indifference = 0.1;
    options.alpha = 0.05;
    options.beta = 0.05;
    options.maxSamples = 100000;
    const int trials = 2000;
    int falseNegatives = 0;
    for (int i = 0; i < trials; ++i) {
        if (runOnce(0.6, 0.5, options, rng)
            == TestDecision::AcceptNull) {
            ++falseNegatives;
        }
    }
    double rate = static_cast<double>(falseNegatives) / trials;
    EXPECT_LE(rate, 0.05 + testing::proportionTolerance(0.05, trials));
}

TEST(Sprt, EasierProblemsUseFewerSamples)
{
    // Wald optimality in spirit: average sample number shrinks as
    // the true p moves away from the threshold.
    Rng rng = testing::testRng(55);
    SprtOptions options;
    options.maxSamples = 100000;

    auto averageSamples = [&](double trueP) {
        std::size_t total = 0;
        const int trials = 300;
        for (int i = 0; i < trials; ++i) {
            std::size_t used = 0;
            runOnce(trueP, 0.5, options, rng, &used);
            total += used;
        }
        return static_cast<double>(total) / trials;
    };

    double near = averageSamples(0.6);
    double far = averageSamples(0.9);
    EXPECT_LT(far, near);
}

TEST(Sprt, EstimateTracksObservations)
{
    Sprt test(0.5);
    test.add(true);
    test.add(true);
    test.add(false);
    EXPECT_NEAR(test.estimate(), 2.0 / 3.0, 1e-12);
    EXPECT_EQ(test.samplesUsed(), 3u);
}

TEST(Sprt, ObservationsAfterDecisionAreIgnored)
{
    SprtOptions options;
    options.maxSamples = 100000;
    Sprt test(0.5, options);
    while (!test.isDecided())
        test.add(true);
    std::size_t used = test.samplesUsed();
    test.add(false);
    EXPECT_EQ(test.samplesUsed(), used);
    EXPECT_EQ(test.decision(), TestDecision::AcceptAlternative);
}

TEST(Sprt, ExtremeThresholdsRemainTestable)
{
    // Thresholds near the edges get clamped hypotheses but must not
    // blow up.
    Rng rng = testing::testRng(56);
    SprtOptions options;
    options.maxSamples = 5000;
    EXPECT_EQ(runOnce(0.9999, 0.99, options, rng),
              TestDecision::AcceptAlternative);
    EXPECT_EQ(runOnce(0.0001, 0.01, options, rng),
              TestDecision::AcceptNull);
}

} // namespace
} // namespace stats
} // namespace uncertain
