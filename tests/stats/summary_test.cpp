/** @file Descriptive-statistics unit tests. */

#include <gtest/gtest.h>

#include <vector>

#include "stats/summary.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

TEST(OnlineSummary, MatchesBatchFormulas)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
    OnlineSummary s;
    s.addAll(xs);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), mean(xs));
    EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(OnlineSummary, MergeEqualsSinglePass)
{
    Rng rng = testing::testRng(41);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i)
        xs.push_back(rng.nextRange(-5.0, 5.0));

    OnlineSummary whole;
    whole.addAll(xs);

    OnlineSummary left;
    OnlineSummary right;
    for (std::size_t i = 0; i < xs.size(); ++i)
        (i < 300 ? left : right).add(xs[i]);
    left.merge(right);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineSummary, MergeWithEmptyIsIdentity)
{
    OnlineSummary s;
    s.add(3.0);
    s.add(5.0);
    OnlineSummary empty;
    s.merge(empty);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);

    OnlineSummary other;
    other.merge(s);
    EXPECT_EQ(other.count(), 2u);
    EXPECT_DOUBLE_EQ(other.mean(), 4.0);
}

TEST(OnlineSummary, RequiresEnoughObservations)
{
    OnlineSummary s;
    EXPECT_THROW(s.mean(), Error);
    s.add(1.0);
    EXPECT_NO_THROW(s.mean());
    EXPECT_THROW(s.variance(), Error);
}

TEST(OnlineSummary, IsNumericallyStableForLargeOffsets)
{
    OnlineSummary s;
    // Naive sum-of-squares would lose all precision here.
    for (int i = 0; i < 1000; ++i)
        s.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
    EXPECT_NEAR(s.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics)
{
    std::vector<double> xs{10.0, 0.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 20.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 5.0);
    EXPECT_DOUBLE_EQ(median(xs), 20.0);
}

TEST(Quantile, ValidatesInput)
{
    EXPECT_THROW(quantile({}, 0.5), Error);
    EXPECT_THROW(quantile({1.0}, 1.5), Error);
    EXPECT_DOUBLE_EQ(quantile({7.0}, 0.9), 7.0);
}

TEST(Correlation, DetectsPerfectAndZeroAssociation)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    std::vector<double> linear{2.0, 4.0, 6.0, 8.0};
    std::vector<double> inverted{8.0, 6.0, 4.0, 2.0};
    EXPECT_NEAR(correlation(xs, linear), 1.0, 1e-12);
    EXPECT_NEAR(correlation(xs, inverted), -1.0, 1e-12);
    EXPECT_THROW(correlation(xs, {1.0}), Error);
    EXPECT_THROW(correlation({1.0, 1.0}, {2.0, 3.0}), Error);
}

} // namespace
} // namespace stats
} // namespace uncertain
