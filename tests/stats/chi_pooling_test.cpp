/**
 * @file
 * Unit tests for stats::chiSquareGofPooled — the sparse-cell pooling
 * front end that every chiSquareMatches assertion now runs through.
 * The chi-square null distribution is asymptotic in each cell's
 * expected count; the classical rule of thumb demands E >= 5 per
 * cell. Pooling merges adjacent sparse cells (in support order) until
 * each group clears the floor, so full-support histograms of laws
 * with long thin tails (Poisson, binomial extremes) stop producing
 * spurious rejections from near-empty cells.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "random/binomial.hpp"
#include "stat_assert.hpp"
#include "stats/chi_square.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

TEST(ChiSquarePooling, MergesLeadingSparseCellsUntilTheFloor)
{
    // Expected counts {2, 2, 1, 45, 50}: the first three cells pool
    // into one group of expected 5, the dense cells stand alone.
    const std::vector<std::size_t> observed = {3, 1, 2, 44, 50};
    const std::vector<double> expected = {0.02, 0.02, 0.01, 0.45,
                                          0.5};
    auto pooled = chiSquareGofPooled(observed, expected);
    EXPECT_DOUBLE_EQ(pooled.degreesOfFreedom, 2.0);

    const std::vector<std::size_t> byHand = {6, 44, 50};
    const std::vector<double> byHandExpected = {0.05, 0.45, 0.5};
    auto reference = chiSquareGof(byHand, byHandExpected);
    EXPECT_DOUBLE_EQ(pooled.statistic, reference.statistic);
    EXPECT_DOUBLE_EQ(pooled.pValue, reference.pValue);
}

TEST(ChiSquarePooling, TrailingSparseGroupJoinsItsLeftNeighbor)
{
    // Expected counts {50, 46, 2, 1, 1}: the trailing 4 never reaches
    // the floor and must merge into the group that ends at cell 1.
    const std::vector<std::size_t> observed = {49, 47, 1, 2, 1};
    const std::vector<double> expected = {0.50, 0.46, 0.02, 0.01,
                                          0.01};
    auto pooled = chiSquareGofPooled(observed, expected);
    EXPECT_DOUBLE_EQ(pooled.degreesOfFreedom, 1.0);

    const std::vector<std::size_t> byHand = {49, 51};
    const std::vector<double> byHandExpected = {0.50, 0.50};
    auto reference = chiSquareGof(byHand, byHandExpected);
    EXPECT_DOUBLE_EQ(pooled.statistic, reference.statistic);
}

TEST(ChiSquarePooling, AbsorbsZeroExpectedMassCells)
{
    // Raw chiSquareGof requires strictly positive expected mass; the
    // pooled variant absorbs a zero-mass cell into its group.
    const std::vector<std::size_t> observed = {48, 1, 51};
    const std::vector<double> expected = {0.5, 0.0, 0.5};
    EXPECT_THROW(chiSquareGof(observed, expected), Error);

    auto pooled = chiSquareGofPooled(observed, expected);
    EXPECT_DOUBLE_EQ(pooled.degreesOfFreedom, 1.0);
    const std::vector<std::size_t> byHand = {48, 52};
    const std::vector<double> byHandExpected = {0.5, 0.5};
    EXPECT_DOUBLE_EQ(pooled.statistic,
                     chiSquareGof(byHand, byHandExpected).statistic);
}

TEST(ChiSquarePooling, MatchesUnpooledWhenEveryCellIsDense)
{
    const std::vector<std::size_t> observed = {240, 260, 255, 245};
    const std::vector<double> expected = {0.25, 0.25, 0.25, 0.25};
    auto pooled = chiSquareGofPooled(observed, expected);
    auto raw = chiSquareGof(observed, expected);
    EXPECT_DOUBLE_EQ(pooled.statistic, raw.statistic);
    EXPECT_DOUBLE_EQ(pooled.degreesOfFreedom, raw.degreesOfFreedom);
    EXPECT_DOUBLE_EQ(pooled.pValue, raw.pValue);
}

TEST(ChiSquarePooling, SparseTailNoLongerRejectsSpuriously)
{
    // The regression that motivated pooling: a single stray count in
    // a cell whose expected count is ~0.002 contributes
    // (1 - E)^2 / E ~ 500 to the raw statistic — an astronomically
    // significant "rejection" of a perfectly calibrated histogram.
    // Pooling folds the tail cell into its dense neighbor, where one
    // count out of 2500 is exactly the noise it looks like.
    const std::vector<std::size_t> observed = {2500, 2500, 2500, 2499,
                                               1};
    const std::vector<double> expected = {0.25, 0.25, 0.25, 0.2499998,
                                          0.0000002};
    auto raw = chiSquareGof(observed, expected);
    EXPECT_TRUE(raw.rejectAt(0.01))
        << "raw statistic " << raw.statistic
        << " was expected to blow up on the sparse cell";

    auto pooled = chiSquareGofPooled(observed, expected);
    EXPECT_FALSE(pooled.rejectAt(0.01));
    EXPECT_GT(pooled.pValue, 0.5);
}

TEST(ChiSquarePooling, ThrowsWhenPoolingLeavesTooFewGroups)
{
    const std::vector<std::size_t> observed = {5, 3, 2};
    const std::vector<double> expected = {0.5, 0.25, 0.25};
    // A floor no group can meet twice collapses the histogram to a
    // single cell: no degrees of freedom left to test.
    EXPECT_THROW(chiSquareGofPooled(observed, expected, 1e6), Error);
}

TEST(ChiSquarePooling, FullSupportBinomialHistogramPasses)
{
    // End to end: bin binomial draws over the FULL exact support —
    // including k near 0 and k near n whose expected counts are far
    // below one — and assert the pooled chiSquareMatches accepts it.
    random::Binomial dist(40, 0.3);
    std::vector<double> values;
    std::vector<double> probabilities;
    ASSERT_TRUE(dist.finiteSupport(values, probabilities));

    Rng rng = testing::testRng(9101);
    std::vector<std::size_t> counts(values.size(), 0);
    for (int i = 0; i < 20000; ++i) {
        const auto k = static_cast<std::size_t>(dist.sample(rng));
        ASSERT_LT(k, counts.size());
        ++counts[k];
    }
    EXPECT_TRUE(testing::chiSquareMatches(counts, probabilities));
}

} // namespace
} // namespace stats
} // namespace uncertain
