/** @file Confidence-interval and histogram tests. */

#include <gtest/gtest.h>

#include <vector>

#include "random/gaussian.hpp"
#include "stats/confidence.hpp"
#include "stats/histogram.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

TEST(MeanConfidenceInterval, CoversTheTrueMeanAtTheNominalRate)
{
    random::Gaussian dist(3.0, 2.0);
    Rng rng = testing::testRng(61);
    const int experiments = 2000;
    const int perExperiment = 30;
    int covered = 0;
    for (int e = 0; e < experiments; ++e) {
        OnlineSummary s;
        for (int i = 0; i < perExperiment; ++i)
            s.add(dist.sample(rng));
        if (meanConfidenceInterval(s, 0.95).contains(3.0))
            ++covered;
    }
    double coverage = static_cast<double>(covered) / experiments;
    EXPECT_NEAR(coverage, 0.95,
                testing::proportionTolerance(0.95, experiments));
}

TEST(MeanConfidenceInterval, WidthShrinksWithSampleSize)
{
    random::Gaussian dist(0.0, 1.0);
    Rng rng = testing::testRng(62);
    OnlineSummary small;
    for (int i = 0; i < 20; ++i)
        small.add(dist.sample(rng));
    OnlineSummary large;
    for (int i = 0; i < 2000; ++i)
        large.add(dist.sample(rng));
    EXPECT_LT(meanConfidenceInterval(large).width(),
              meanConfidenceInterval(small).width());
}

TEST(MeanConfidenceInterval, RequiresTwoObservations)
{
    OnlineSummary s;
    s.add(1.0);
    EXPECT_THROW(meanConfidenceInterval(s), Error);
}

TEST(ProportionConfidenceInterval, ContainsPHat)
{
    auto interval = proportionConfidenceInterval(30, 100);
    EXPECT_LE(interval.lo, 0.3);
    EXPECT_GE(interval.hi, 0.3);
    EXPECT_GT(interval.lo, 0.0);
    EXPECT_LT(interval.hi, 1.0);
}

TEST(ProportionConfidenceInterval, HandlesExtremes)
{
    auto zero = proportionConfidenceInterval(0, 50);
    EXPECT_DOUBLE_EQ(zero.lo, 0.0);
    EXPECT_GT(zero.hi, 0.0);

    auto all = proportionConfidenceInterval(50, 50);
    EXPECT_DOUBLE_EQ(all.hi, 1.0);
    EXPECT_LT(all.lo, 1.0);

    EXPECT_THROW(proportionConfidenceInterval(5, 0), Error);
    EXPECT_THROW(proportionConfidenceInterval(10, 5), Error);
}

TEST(ProportionConfidenceInterval, CoversAtNominalRate)
{
    Rng rng = testing::testRng(63);
    const double p = 0.2;
    const int experiments = 2000;
    int covered = 0;
    for (int e = 0; e < experiments; ++e) {
        std::size_t hits = 0;
        for (int i = 0; i < 40; ++i)
            hits += rng.nextBool(p) ? 1 : 0;
        if (proportionConfidenceInterval(hits, 40).contains(p))
            ++covered;
    }
    double coverage = static_cast<double>(covered) / experiments;
    // Wilson is approximate for n = 40; allow a point of slack below
    // the asymptotic tolerance.
    EXPECT_GT(coverage, 0.91);
}

TEST(Histogram, CountsLandInTheRightBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(9.99);
    EXPECT_EQ(h.countAt(0), 1u);
    EXPECT_EQ(h.countAt(1), 2u);
    EXPECT_EQ(h.countAt(9), 1u);
    EXPECT_EQ(h.totalCount(), 4u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_NEAR(h.density(1), 0.5, 1e-12);
}

TEST(Histogram, ClampsOutOfRangeValues)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.countAt(0), 1u);
    EXPECT_EQ(h.countAt(3), 1u);
}

TEST(Histogram, FromSamplesSpansTheData)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    auto h = Histogram::fromSamples(xs, 4);
    EXPECT_EQ(h.totalCount(), 4u);
    std::size_t nonEmpty = 0;
    for (std::size_t i = 0; i < h.binCount(); ++i)
        nonEmpty += h.countAt(i) > 0 ? 1 : 0;
    EXPECT_EQ(nonEmpty, 4u);
}

TEST(Histogram, RenderContainsEveryBin)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    std::string text = h.render(10);
    EXPECT_NE(text.find('#'), std::string::npos);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(Histogram, RejectsInvalidConstruction)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

} // namespace
} // namespace stats
} // namespace uncertain
