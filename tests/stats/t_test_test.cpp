/** @file Welch t-test tests. */

#include <gtest/gtest.h>

#include <vector>

#include "random/gaussian.hpp"
#include "stats/t_test.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

std::vector<double>
draw(double mu, double sigma, int n, Rng& rng)
{
    random::Gaussian dist(mu, sigma);
    std::vector<double> xs;
    xs.reserve(n);
    for (int i = 0; i < n; ++i)
        xs.push_back(dist.sample(rng));
    return xs;
}

TEST(WelchTTest, DetectsAClearMeanDifference)
{
    Rng rng = testing::testRng(521);
    auto a = draw(0.0, 1.0, 200, rng);
    auto b = draw(1.0, 1.0, 200, rng);
    auto result = welchTTest(a, b);
    EXPECT_LT(result.pValue, 1e-6);
    EXPECT_LT(result.statistic, 0.0); // mean(a) < mean(b)
}

TEST(WelchTTest, AcceptsEqualMeans)
{
    Rng rng = testing::testRng(522);
    auto a = draw(3.0, 2.0, 200, rng);
    auto b = draw(3.0, 0.5, 300, rng); // unequal variances, sizes
    EXPECT_GT(welchTTest(a, b).pValue, 0.01);
}

TEST(WelchTTest, TypeIErrorNearNominal)
{
    Rng rng = testing::testRng(523);
    const int experiments = 1000;
    int rejections = 0;
    for (int e = 0; e < experiments; ++e) {
        auto a = draw(0.0, 1.0, 30, rng);
        auto b = draw(0.0, 3.0, 20, rng);
        if (welchTTest(a, b).rejectAt(0.05))
            ++rejections;
    }
    double rate = static_cast<double>(rejections) / experiments;
    EXPECT_NEAR(rate, 0.05,
                testing::proportionTolerance(0.05, experiments));
}

TEST(WelchTTest, SymmetryFlipsTheStatistic)
{
    Rng rng = testing::testRng(524);
    auto a = draw(0.0, 1.0, 100, rng);
    auto b = draw(0.5, 1.0, 100, rng);
    auto ab = welchTTest(a, b);
    auto ba = welchTTest(b, a);
    EXPECT_NEAR(ab.statistic, -ba.statistic, 1e-12);
    EXPECT_NEAR(ab.pValue, ba.pValue, 1e-12);
}

TEST(WelchTTest, DegreesOfFreedomInTheWelchRange)
{
    Rng rng = testing::testRng(525);
    auto a = draw(0.0, 1.0, 25, rng);
    auto b = draw(0.0, 1.0, 35, rng);
    auto result = welchTTest(a, b);
    EXPECT_GE(result.degreesOfFreedom, 24.0);
    EXPECT_LE(result.degreesOfFreedom, 58.0);
}

TEST(WelchTTest, ValidatesInput)
{
    EXPECT_THROW(welchTTest({1.0}, {1.0, 2.0}), Error);
    EXPECT_THROW(welchTTest({1.0, 1.0}, {2.0, 2.0}), Error);
}

} // namespace
} // namespace stats
} // namespace uncertain
