/** @file Group-sequential test and adaptive-mean tests. */

#include <gtest/gtest.h>

#include "random/gaussian.hpp"
#include "stats/sequential.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

TEST(GroupSequential, RejectsBadParameters)
{
    EXPECT_THROW(GroupSequentialTest(0.5, 0, 100), Error);
    EXPECT_THROW(GroupSequentialTest(0.5, 11, 100), Error);
    EXPECT_THROW(GroupSequentialTest(0.5, 5, 3), Error);
    EXPECT_THROW(GroupSequentialTest(0.0, 5, 100), Error);
    EXPECT_THROW(GroupSequentialTest(0.5, 5, 100, 0.1), Error);
}

TEST(GroupSequential, SampleSizeIsBoundedByDesign)
{
    Rng rng = testing::testRng(71);
    GroupSequentialTest test(0.5, 5, 500);
    while (test.decision() == TestDecision::Inconclusive
           && test.samplesUsed() < test.maxSamples()) {
        test.add(rng.nextBool(0.5));
    }
    EXPECT_LE(test.samplesUsed(), 500u);
}

TEST(GroupSequential, DetectsClearAlternativeEarly)
{
    Rng rng = testing::testRng(72);
    GroupSequentialTest test(0.5, 5, 1000);
    while (test.decision() == TestDecision::Inconclusive
           && test.samplesUsed() < test.maxSamples()) {
        test.add(rng.nextBool(0.95));
    }
    EXPECT_EQ(test.decision(), TestDecision::AcceptAlternative);
    // Should stop at the first look, not exhaust the budget.
    EXPECT_LE(test.samplesUsed(), 200u);
}

TEST(GroupSequential, DetectsClearNull)
{
    Rng rng = testing::testRng(73);
    GroupSequentialTest test(0.5, 5, 1000);
    while (test.decision() == TestDecision::Inconclusive
           && test.samplesUsed() < test.maxSamples()) {
        test.add(rng.nextBool(0.05));
    }
    EXPECT_EQ(test.decision(), TestDecision::AcceptNull);
}

TEST(GroupSequential, TypeIErrorNearNominal)
{
    Rng rng = testing::testRng(74);
    const int trials = 1000;
    int rejections = 0;
    for (int t = 0; t < trials; ++t) {
        GroupSequentialTest test(0.5, 5, 500);
        while (test.decision() == TestDecision::Inconclusive
               && test.samplesUsed() < test.maxSamples()) {
            test.add(rng.nextBool(0.5)); // H0 exactly true
        }
        if (test.decision() != TestDecision::Inconclusive)
            ++rejections;
    }
    double rate = static_cast<double>(rejections) / trials;
    // Two-sided alpha = 0.05 plus Monte Carlo slack.
    EXPECT_LE(rate, 0.05 + testing::proportionTolerance(0.05, trials));
}

TEST(AdaptiveMean, ConvergesToTheMean)
{
    random::Gaussian dist(5.0, 1.0);
    Rng rng = testing::testRng(75);
    AdaptiveMeanOptions options;
    options.relativeTolerance = 0.01;
    auto result =
        adaptiveMean([&]() { return dist.sample(rng); }, options);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.mean, 5.0, 3.0 * result.halfWidth);
    EXPECT_LE(result.halfWidth, 0.01 * std::abs(result.mean) + 1e-12);
}

TEST(AdaptiveMean, UsesFewerSamplesForTighterDistributions)
{
    Rng rng = testing::testRng(76);
    random::Gaussian tight(10.0, 0.1);
    random::Gaussian wide(10.0, 3.0);
    AdaptiveMeanOptions options;
    options.relativeTolerance = 0.005;
    auto tightResult =
        adaptiveMean([&]() { return tight.sample(rng); }, options);
    auto wideResult =
        adaptiveMean([&]() { return wide.sample(rng); }, options);
    EXPECT_LT(tightResult.samplesUsed, wideResult.samplesUsed);
}

TEST(AdaptiveMean, ReportsNonConvergenceAtTheCap)
{
    Rng rng = testing::testRng(77);
    random::Gaussian dist(0.0, 100.0); // mean ~0: relative tol hopeless
    AdaptiveMeanOptions options;
    options.relativeTolerance = 1e-6;
    options.maxSamples = 500;
    auto result =
        adaptiveMean([&]() { return dist.sample(rng); }, options);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.samplesUsed, 500u);
}

TEST(CriticalZ, MatchesKnownValues)
{
    EXPECT_NEAR(criticalZ(0.95), 1.959963984540054, 1e-8);
    EXPECT_NEAR(criticalZ(0.99), 2.5758293035489004, 1e-8);
    EXPECT_THROW(criticalZ(1.0), Error);
}

} // namespace
} // namespace stats
} // namespace uncertain
