/**
 * @file
 * Shared configuration for the certification shard (tests/certify/):
 * one env-scalable sample count so the same suites run at a
 * CI-friendly default per commit and at production scale (>= 1e7
 * draws per sampler) in the scheduled certification-nightly.yml job.
 */

#ifndef UNCERTAIN_TESTS_CERTIFY_CERTIFY_TEST_UTIL_HPP
#define UNCERTAIN_TESTS_CERTIFY_CERTIFY_TEST_UTIL_HPP

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>

#include "stats/certify.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace testing {

/**
 * Draws per certificate: UNCERTAIN_CERTIFY_SAMPLES when set (the
 * nightly job raises it to >= 1e7, where the distinguishability
 * radius drops to ~1e-2 at K = 512), else a 2^20 default sized so
 * the whole certification shard stays in unit-test wall-clock
 * per commit.
 */
inline std::size_t
certifySamples()
{
    static const std::size_t samples = [] {
        const char* env = std::getenv("UNCERTAIN_CERTIFY_SAMPLES");
        if (env != nullptr) {
            const long long parsed = std::atoll(env);
            if (parsed > 0)
                return static_cast<std::size_t>(parsed);
        }
        return static_cast<std::size_t>(1) << 20;
    }();
    return samples;
}

/** The shard's common options at the env-scaled sample count. */
inline stats::CertifyOptions
certifyOptions(std::size_t cells = 512)
{
    stats::CertifyOptions options;
    options.samples = certifySamples();
    options.cells = cells;
    options.delta = 1e-6;
    return options;
}

/**
 * Assert that @p result passed its certificate, printing the full
 * (epsilon, delta) record on failure so a red nightly names the
 * sampler, the bound, and the scale it was judged at.
 */
inline ::testing::AssertionResult
certifiedPass(const stats::CertifyResult& result)
{
    if (result.pass)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << result.sampler << " failed certification: tvEstimate "
           << result.tvEstimate << " > threshold " << result.threshold
           << " (N " << result.samples << ", K " << result.cells
           << ", delta " << result.delta << ", tvUpperBound "
           << result.tvUpperBound << ")";
}

} // namespace testing
} // namespace uncertain

#endif // UNCERTAIN_TESTS_CERTIFY_CERTIFY_TEST_UTIL_HPP
