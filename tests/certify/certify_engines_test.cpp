/**
 * @file
 * Statistical-distance certification of the sampling ENGINES — the
 * paths between a leaf law and the numbers a program actually
 * consumes:
 *
 *  - the trig-free GPS leaf (gps::getLocation's bulk column fill),
 *    certified radially against the closed-form Rayleigh error law
 *    on both the scalar tree walk and the batch-engine column path;
 *  - batch-engine columns drawn through optimized BatchPlans (CSE,
 *    folding, fusion, buffer reuse) over graphs whose root law is
 *    closed-form, so a plan-rewrite bug that preserves per-node laws
 *    but breaks the joint law is caught at the root;
 *  - both resampling kernels behind SIR: the multinomial alias table
 *    (random::Discrete, the exact code path reweight() draws pool
 *    entries from) and the systematic low-variance walker
 *    (inference::detail::systematicIndices), certified against the
 *    normalized weight law.
 *
 * Sample counts scale with UNCERTAIN_CERTIFY_SAMPLES (see
 * certify_test_util.hpp); the nightly job runs these at >= 1e7.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "certify/certify_test_util.hpp"
#include "core/batch.hpp"
#include "core/core.hpp"
#include "gps/geo.hpp"
#include "gps/gps_library.hpp"
#include "gps/sensor.hpp"
#include "inference/resample.hpp"
#include "random/discrete.hpp"
#include "random/gaussian.hpp"
#include "random/rayleigh.hpp"
#include "stats/certify.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

// ---------------------------------------------------------------
// Trig-free GPS leaf: the radial error of getLocation() is exactly
// Rayleigh(rho) with rho from the fix's horizontal accuracy, on both
// sampling paths (the scalar path draws bearing + Rayleigh radius,
// the bulk path two ziggurat Gaussian displacement columns — same
// law by construction, which is precisely the claim to certify).
// ---------------------------------------------------------------

constexpr double kGpsAccuracyMeters = 4.0;
const gps::GeoCoordinate kGpsCenter{47.6205, -122.3493};

BulkSampler
gpsRadialSampler(bool batch)
{
    gps::GpsFix fix{kGpsCenter, kGpsAccuracyMeters, 0.0};
    auto location = gps::getLocation(fix);
    auto sampler = std::make_shared<core::BatchSampler>();
    return [location, sampler, batch](Rng& rng, double* out,
                                      std::size_t n) {
        std::vector<gps::GeoCoordinate> coords =
            batch ? location.takeSamples(n, rng, *sampler)
                  : location.takeSamples(n, rng);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = gps::distanceMeters(kGpsCenter, coords[i]);
    };
}

TEST(CertificationEngines, GpsLeafScalarPathIsRayleighRadially)
{
    random::Rayleigh truth(
        random::Rayleigh::fromHorizontalAccuracy(kGpsAccuracyMeters));
    Rng rng = testing::testRng(4201);
    auto r = certifyContinuous("gps_leaf/scalar",
                               gpsRadialSampler(false), truth, rng,
                               testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

TEST(CertificationEngines, GpsLeafBatchColumnIsRayleighRadially)
{
    random::Rayleigh truth(
        random::Rayleigh::fromHorizontalAccuracy(kGpsAccuracyMeters));
    Rng rng = testing::testRng(4202);
    auto r = certifyContinuous("gps_leaf/batch",
                               gpsRadialSampler(true), truth, rng,
                               testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

// ---------------------------------------------------------------
// Batch-engine columns through optimized plans. Each graph's root
// law is closed-form Gaussian, so the certified claim covers the
// whole pipeline: leaf bulk fills, fused elementwise kernels, CSE'd
// shared leaves, and constant folding.
// ---------------------------------------------------------------

BulkSampler
batchRootSampler(Uncertain<double> expr)
{
    auto sampler = std::make_shared<core::BatchSampler>();
    return [expr, sampler](Rng& rng, double* out, std::size_t n) {
        std::vector<double> samples = expr.takeSamples(n, rng, *sampler);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = samples[i];
    };
}

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return core::fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

TEST(CertificationEngines, BatchAffinePlanKeepsTheGaussianLaw)
{
    // 2 G + 3 with G ~ N(0,1): folding and kernel fusion across the
    // scale and shift nodes must leave exactly N(3, 2^2).
    auto expr = gaussianLeaf(0.0, 1.0) * 2.0 + 3.0;
    random::Gaussian truth(3.0, 2.0);
    Rng rng = testing::testRng(4211);
    auto r = certifyContinuous("batch_plan/affine",
                               batchRootSampler(expr), truth, rng,
                               testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

TEST(CertificationEngines, BatchSharedLeafPlanKeepsFigure8Semantics)
{
    // G + G over ONE shared leaf is 2G ~ N(0, 2^2), not N(0, 2):
    // the certificate rejects any plan rewrite that re-draws a CSE'd
    // leaf independently.
    auto g = gaussianLeaf(0.0, 1.0);
    auto expr = g + g;
    random::Gaussian truth(0.0, 2.0);
    Rng rng = testing::testRng(4212);
    auto r = certifyContinuous("batch_plan/shared_leaf",
                               batchRootSampler(expr), truth, rng,
                               testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

TEST(CertificationEngines, BatchIndependentSumPlanConvolvesLaws)
{
    // Two distinct leaves must stay independent: N(1,1) + N(-1,2)
    // = N(0, sqrt(5)^2).
    auto expr = gaussianLeaf(1.0, 1.0) + gaussianLeaf(-1.0, 2.0);
    random::Gaussian truth(0.0, std::sqrt(5.0));
    Rng rng = testing::testRng(4213);
    auto r = certifyContinuous("batch_plan/independent_sum",
                               batchRootSampler(expr), truth, rng,
                               testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

// ---------------------------------------------------------------
// Resampling kernels: pool-entry marginal law vs normalized weights.
// ---------------------------------------------------------------

/** An uneven weighted support standing in for a proposal pool. */
struct WeightedPool
{
    std::vector<double> values;
    std::vector<double> weights;
    std::vector<double> probabilities; //!< weights normalized

    WeightedPool()
    {
        double total = 0.0;
        for (std::size_t i = 0; i < 16; ++i) {
            values.push_back(static_cast<double>(i));
            // Deterministic uneven weights spanning two orders of
            // magnitude, like a real importance-weight profile.
            const double w =
                1.0 + 0.5 * static_cast<double>((i * 7) % 13)
                + (i == 5 ? 20.0 : 0.0);
            weights.push_back(w);
            total += w;
        }
        for (double w : weights)
            probabilities.push_back(w / total);
    }
};

TEST(CertificationEngines, MultinomialResamplerMatchesWeightLaw)
{
    // reweight()'s multinomial scheme draws pool entries from
    // random::Discrete's alias table; certify that exact object.
    WeightedPool pool;
    auto table = std::make_shared<random::Discrete>(pool.values,
                                                    pool.weights);
    Rng rng = testing::testRng(4221);
    auto r = certifyDiscrete("resample/multinomial",
                             scalarSampler(table), pool.values,
                             pool.probabilities, rng,
                             testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

TEST(CertificationEngines, SystematicResamplerMatchesWeightLaw)
{
    // One systematicIndices() walk per block: entries within a block
    // are negatively correlated by design (copy counts deviate from
    // n w_i by less than one), which concentrates the cell counts
    // FASTER than i.i.d. draws — the certificate's threshold is
    // calibrated for i.i.d., so it is conservative here.
    WeightedPool pool;
    double total = 0.0;
    for (double w : pool.weights)
        total += w;
    BulkSampler systematic = [pool, total](Rng& rng, double* out,
                                           std::size_t n) {
        const std::vector<std::size_t> indices =
            inference::detail::systematicIndices(pool.weights, total,
                                                 n, rng);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = pool.values[indices[i]];
    };
    Rng rng = testing::testRng(4222);
    auto r = certifyDiscrete("resample/systematic", systematic,
                             pool.values, pool.probabilities, rng,
                             testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

} // namespace
} // namespace stats
} // namespace uncertain
