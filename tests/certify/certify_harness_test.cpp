/**
 * @file
 * Unit tests of the certification harness math (stats/certify.hpp):
 * the plug-in TV estimator, the (epsilon, delta) certificate
 * formulas, the pass/fail decision, the sampler adapters, and the
 * BENCH_certification.json serializer. Everything here is
 * deterministic (fixed counts or fixed seeds at small N), so the
 * suite lives in the `certification` CTest shard but costs unit-test
 * time.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "random/gaussian.hpp"
#include "random/uniform.hpp"
#include "stats/certify.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

TEST(CertificationHarness, TvEstimateIsHalfL1Distance)
{
    // phat = (0.5, 0.3, 0.2) vs q = (0.4, 0.4, 0.2):
    // L1 = 0.1 + 0.1 + 0 = 0.2, TV = 0.1.
    auto r = certifyFromCounts("hand", {50, 30, 20}, {0.4, 0.4, 0.2},
                               1e-3);
    EXPECT_NEAR(r.tvEstimate, 0.1, 1e-12);
    EXPECT_EQ(r.samples, 100u);
    EXPECT_EQ(r.cells, 3u);
}

TEST(CertificationHarness, ThresholdAndEpsilonMatchTheFormulas)
{
    const double delta = 1e-4;
    const std::vector<double> q = {0.25, 0.25, 0.25, 0.25};
    auto r = certifyFromCounts("hand", {250, 250, 250, 250}, q, delta);

    const double n = 1000.0;
    double nullBias = 0.0;
    for (double qk : q)
        nullBias += std::sqrt(qk * (1.0 - qk) / n);
    const double deviation = std::sqrt(2.0 * std::log(1.0 / delta) / n);
    EXPECT_NEAR(r.threshold, 0.5 * (nullBias + deviation), 1e-12);
    EXPECT_NEAR(r.epsilon, 0.5 * (std::sqrt(4.0 / n) + deviation),
                1e-12);
    EXPECT_NEAR(r.tvUpperBound, r.tvEstimate + r.epsilon, 1e-12);
    // Exactly proportional counts: tvEstimate 0, certificate passes.
    EXPECT_EQ(r.tvEstimate, 0.0);
    EXPECT_TRUE(r.pass);
}

TEST(CertificationHarness, GrossMismatchFailsTheCertificate)
{
    // Half the mass is in the wrong cell: TV = 0.25, far beyond any
    // threshold at N = 10000.
    auto r = certifyFromCounts("biased", {7500, 2500}, {0.5, 0.5},
                               1e-6);
    EXPECT_NEAR(r.tvEstimate, 0.25, 1e-12);
    EXPECT_FALSE(r.pass);
    EXPECT_GT(r.tvUpperBound, 0.25);
}

TEST(CertificationHarness, ThresholdShrinksWithSampleCount)
{
    // The distinguishability radius must tighten as N grows — the
    // whole point of certifying at production sample counts.
    auto small = certifyFromCounts("n", {500, 500}, {0.5, 0.5}, 1e-6);
    auto large = certifyFromCounts(
        "n", {5000000, 5000000}, {0.5, 0.5}, 1e-6);
    EXPECT_LT(large.threshold, small.threshold);
    EXPECT_LT(large.epsilon, small.epsilon);
    EXPECT_LT(large.threshold + large.epsilon, 0.0021);
}

TEST(CertificationHarness, RejectsMalformedInputs)
{
    EXPECT_THROW(certifyFromCounts("bad", {}, {}, 1e-6), Error);
    EXPECT_THROW(certifyFromCounts("bad", {1, 2}, {0.5}, 1e-6), Error);
    EXPECT_THROW(certifyFromCounts("bad", {1, 2}, {0.9, 0.2}, 1e-6),
                 Error);
    EXPECT_THROW(certifyFromCounts("bad", {1, 2}, {0.5, 0.5}, 0.0),
                 Error);
    EXPECT_THROW(certifyFromCounts("bad", {0, 0}, {0.5, 0.5}, 1e-6),
                 Error);
}

TEST(CertificationHarness, ContinuousPitCellsAreEquiprobable)
{
    // A perfect Uniform(0,1) sampler against itself: with the
    // probability-integral transform every cell has expectation
    // exactly 1/K, so the certificate must pass (false-rejection
    // probability is delta = 1e-6).
    auto dist = std::make_shared<random::Uniform>(0.0, 1.0);
    CertifyOptions options;
    options.samples = 1u << 16;
    options.cells = 64;
    Rng rng = testing::testRng(9001);
    auto r = certifyContinuous("uniform-self", bulkSampler(dist),
                               *dist, rng, options);
    EXPECT_TRUE(r.pass);
    EXPECT_EQ(r.cells, 64u);
    EXPECT_EQ(r.samples, options.samples);
    EXPECT_GT(r.samplesPerSecond, 0.0);
}

TEST(CertificationHarness, ContinuousCatchesAWrongScale)
{
    // Sampler N(0, 1.1^2) certified against N(0, 1): TV ~ 0.038,
    // an order of magnitude beyond the threshold at this N.
    auto truth = std::make_shared<random::Gaussian>(0.0, 1.0);
    auto wrong = std::make_shared<random::Gaussian>(0.0, 1.1);
    CertifyOptions options;
    options.samples = 1u << 19;
    Rng rng = testing::testRng(9002);
    auto r = certifyContinuous("wrong-scale", bulkSampler(wrong),
                               *truth, rng, options);
    EXPECT_FALSE(r.pass);
    EXPECT_GT(r.tvEstimate, r.threshold * 2.0);
}

TEST(CertificationHarness, ScalarAndBulkAdaptersDrawTheSameLaw)
{
    auto dist = std::make_shared<random::Gaussian>(1.0, 2.0);
    CertifyOptions options;
    options.samples = 1u << 18;
    Rng rngScalar = testing::testRng(9003);
    Rng rngBulk = testing::testRng(9004);
    auto scalar = certifyContinuous("scalar", scalarSampler(dist),
                                    *dist, rngScalar, options);
    auto bulk = certifyContinuous("bulk", bulkSampler(dist), *dist,
                                  rngBulk, options);
    EXPECT_TRUE(scalar.pass);
    EXPECT_TRUE(bulk.pass);
}

TEST(CertificationHarness, DiscreteOverflowCellCountsAgainstSampler)
{
    // A "sampler" that emits a value outside the declared support 10%
    // of the time: the overflow cell has zero expected mass, so every
    // stray draw contributes fully to the distance.
    BulkSampler stray = [](Rng& rng, double* out, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = rng.nextDouble() < 0.1 ? 99.0
                     : rng.nextDouble() < 0.5 ? 0.0
                                              : 1.0;
    };
    CertifyOptions options;
    options.samples = 1u << 16;
    Rng rng = testing::testRng(9005);
    auto r = certifyDiscrete("stray", stray, {0.0, 1.0}, {0.5, 0.5},
                             rng, options);
    EXPECT_FALSE(r.pass);
    EXPECT_GT(r.tvEstimate, 0.05);
    // Overflow cell is reported in the cell count.
    EXPECT_EQ(r.cells, 3u);
}

TEST(CertificationHarness, JsonSerializesEveryCertificateField)
{
    auto r = certifyFromCounts("gaussian/ziggurat", {50, 50},
                               {0.5, 0.5}, 1e-6);
    r.seconds = 0.25;
    r.samplesPerSecond = 400.0;
    const std::string json = certificationJson({r});
    for (const char* key :
         {"\"certifications\"", "\"name\": \"gaussian/ziggurat\"",
          "\"samples\": 100", "\"cells\": 2", "\"delta\"",
          "\"tv_estimate\"", "\"threshold\"", "\"epsilon\"",
          "\"tv_upper_bound\"", "\"pass\": true", "\"seconds\"",
          "\"samples_per_second\""}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "missing " << key << " in:\n"
            << json;
    }
}

} // namespace
} // namespace stats
} // namespace uncertain
