/**
 * @file
 * Statistical-distance certification of the distribution library:
 * every law the engines lean on, on BOTH the scalar sample() path and
 * the bulk sampleMany() path, gets an explicit (epsilon, delta)
 * TV-distance certificate against its ground truth — the closed-form
 * CDF through equiprobable PIT cells for continuous laws, the exact
 * pmf (the same table the src/exact enumeration backend consumes) for
 * finite-support laws. Runs at testing::certifySamples() draws per
 * certificate: a CI default per commit, >= 1e7 in the scheduled
 * certification-nightly.yml job.
 *
 * Each certified regime is pinned explicitly: the ziggurat Gaussian
 * bulk path vs the Box-Muller scalar path, binomial small-n
 * inversion / BTPE / geometric-skip, Poisson Knuth / PTRS, gamma
 * boost (shape < 1) and squeeze (shape >= 1), and the gamma-ratio
 * constructions behind Beta and Student-t.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "certify/certify_test_util.hpp"
#include "random/beta.hpp"
#include "random/binomial.hpp"
#include "random/gamma.hpp"
#include "random/gaussian.hpp"
#include "random/poisson.hpp"
#include "random/student_t.hpp"
#include "stats/certify.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

struct ContinuousCase
{
    const char* name;
    random::DistributionPtr (*make)();
    std::uint64_t seed;
};

random::DistributionPtr
makeStandardGaussian()
{
    return std::make_shared<random::Gaussian>(0.0, 1.0);
}

random::DistributionPtr
makeShiftedGaussian()
{
    return std::make_shared<random::Gaussian>(-2.5, 3.0);
}

random::DistributionPtr
makeBeta()
{
    return std::make_shared<random::Beta>(2.5, 1.5);
}

random::DistributionPtr
makeSkewedBeta()
{
    // Both shapes below 1: the gamma boost path on both columns.
    return std::make_shared<random::Beta>(0.7, 0.4);
}

random::DistributionPtr
makeBoostGamma()
{
    // shape < 1: Marsaglia-Tsang boost (shape + 1 plus u^(1/shape)).
    return std::make_shared<random::Gamma>(0.5, 2.0);
}

random::DistributionPtr
makeSqueezeGamma()
{
    // shape >= 1: the plain hoisted-constant squeeze loop.
    return std::make_shared<random::Gamma>(3.0, 1.5);
}

random::DistributionPtr
makeStudentT()
{
    return std::make_shared<random::StudentT>(5.0);
}

random::DistributionPtr
makeHeavyStudentT()
{
    // nu = 1.5: heavy tails, still a proper CDF for the PIT cells.
    return std::make_shared<random::StudentT>(1.5);
}

const ContinuousCase kContinuousCases[] = {
    {"gaussian_standard", makeStandardGaussian, 4001},
    {"gaussian_shifted", makeShiftedGaussian, 4002},
    {"beta_2p5_1p5", makeBeta, 4003},
    {"beta_0p7_0p4", makeSkewedBeta, 4004},
    {"gamma_boost_0p5", makeBoostGamma, 4005},
    {"gamma_squeeze_3", makeSqueezeGamma, 4006},
    {"student_t_5", makeStudentT, 4007},
    {"student_t_1p5", makeHeavyStudentT, 4008},
};

class CertificationContinuous
    : public ::testing::TestWithParam<ContinuousCase>
{};

TEST_P(CertificationContinuous, BulkSamplerCarriesTvCertificate)
{
    auto dist = GetParam().make();
    Rng rng = testing::testRng(GetParam().seed);
    auto r = certifyContinuous(std::string(GetParam().name) + "/bulk",
                               bulkSampler(dist), *dist, rng,
                               testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

TEST_P(CertificationContinuous, ScalarSamplerCarriesTvCertificate)
{
    auto dist = GetParam().make();
    Rng rng = testing::testRng(GetParam().seed + 500);
    auto r = certifyContinuous(
        std::string(GetParam().name) + "/scalar", scalarSampler(dist),
        *dist, rng, testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

INSTANTIATE_TEST_SUITE_P(
    AllContinuousLaws, CertificationContinuous,
    ::testing::ValuesIn(kContinuousCases),
    [](const ::testing::TestParamInfo<ContinuousCase>& info) {
        return std::string(info.param.name);
    });

struct DiscreteCase
{
    const char* name;
    random::DistributionPtr (*make)();
    std::uint64_t seed;
};

random::DistributionPtr
makeSmallBinomial()
{
    // n <= 64: the exact CDF-inversion table.
    return std::make_shared<random::Binomial>(40, 0.3);
}

random::DistributionPtr
makeBtpeBinomial()
{
    // n r >= 30 at large n: the BTPE hat with exact acceptance.
    return std::make_shared<random::Binomial>(200, 0.4);
}

random::DistributionPtr
makeReflectedBtpeBinomial()
{
    // p > 1/2 exercises the r = 1 - p reflection around BTPE.
    return std::make_shared<random::Binomial>(3000, 0.65);
}

random::DistributionPtr
makeSkipBinomial()
{
    // Large n, tiny n r: the geometric waiting-time skip.
    return std::make_shared<random::Binomial>(2000, 0.004);
}

random::DistributionPtr
makeKnuthPoisson()
{
    return std::make_shared<random::Poisson>(4.2);
}

random::DistributionPtr
makePtrsPoisson()
{
    return std::make_shared<random::Poisson>(80.0);
}

const DiscreteCase kDiscreteCases[] = {
    {"binomial_inversion_40", makeSmallBinomial, 4101},
    {"binomial_btpe_200", makeBtpeBinomial, 4102},
    {"binomial_btpe_reflected_3000", makeReflectedBtpeBinomial, 4103},
    {"binomial_skip_2000", makeSkipBinomial, 4104},
    {"poisson_knuth_4p2", makeKnuthPoisson, 4105},
    {"poisson_ptrs_80", makePtrsPoisson, 4106},
};

class CertificationDiscrete
    : public ::testing::TestWithParam<DiscreteCase>
{};

/**
 * The exact finite-support table (the enumeration oracle's view of
 * the leaf) is the ground truth for both paths; failing to surface
 * one is itself a test failure for these laws.
 */
void
exactSupport(const random::Distribution& dist,
             std::vector<double>& values,
             std::vector<double>& probabilities)
{
    ASSERT_TRUE(dist.finiteSupport(values, probabilities))
        << dist.name() << " must surface a finite support";
}

TEST_P(CertificationDiscrete, BulkSamplerMatchesExactPmf)
{
    auto dist = GetParam().make();
    std::vector<double> values;
    std::vector<double> probabilities;
    exactSupport(*dist, values, probabilities);
    Rng rng = testing::testRng(GetParam().seed);
    auto r = certifyDiscrete(std::string(GetParam().name) + "/bulk",
                             bulkSampler(dist), values, probabilities,
                             rng, testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

TEST_P(CertificationDiscrete, ScalarSamplerMatchesExactPmf)
{
    auto dist = GetParam().make();
    std::vector<double> values;
    std::vector<double> probabilities;
    exactSupport(*dist, values, probabilities);
    Rng rng = testing::testRng(GetParam().seed + 500);
    auto r = certifyDiscrete(std::string(GetParam().name) + "/scalar",
                             scalarSampler(dist), values,
                             probabilities, rng,
                             testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

INSTANTIATE_TEST_SUITE_P(
    AllDiscreteLaws, CertificationDiscrete,
    ::testing::ValuesIn(kDiscreteCases),
    [](const ::testing::TestParamInfo<DiscreteCase>& info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace stats
} // namespace uncertain
