/**
 * @file
 * Power demonstration for the certification harness: a deliberately
 * corrupted ziggurat Gaussian sampler that the TV-distance
 * certificate rejects deterministically but the suite's existing
 * alpha = 0.01 KS assertion at its 20000-sample scale does NOT
 * reliably catch — the motivating claim of the statistical-distance
 * framework (Sarkar, Chakraborty & Meel, CAV 2025).
 *
 * The corruption is a zero-mean ripple in the layer-width table:
 * blocks of eight ziggurat layers get their wn constants scaled by
 * alternately +5% and -5%. Every coarse statistic survives — the
 * mean and variance are intact to ~1e-3, and the CDF deviation stays
 * below the KS critical distance at suite scale (~0.0115 at
 * n = 20000) because adjacent blocks push the cumulative error in
 * opposite directions. But the DENSITY is wrong by several percent
 * in alternating bands, which the 512-cell partition TV accumulates
 * without sign cancellation: tvEstimate lands ~40% above the
 * certificate threshold at N = 2^21 and the gap widens with N.
 *
 * The faithful twin of the corrupted sampler (same code, ripple 0)
 * is certified PASS in the same run, pinning the rejection on the
 * table corruption rather than on the test-local reimplementation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "certify/certify_test_util.hpp"
#include "random/gaussian.hpp"
#include "stats/certify.hpp"
#include "stats/ks_test.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace stats {
namespace {

/**
 * Test-local 128-layer Marsaglia-Tsang ziggurat, built by the same
 * recurrence as src/random/gaussian.cpp, with an optional
 * alternating-block corruption of the layer-width table.
 */
struct RippledZiggurat
{
    std::uint32_t kn[128];
    double wn[128];
    double fn[128];

    explicit RippledZiggurat(double ripple)
    {
        const double m1 = 2147483648.0; // 2^31
        double dn = 3.442619855899;
        double tn = dn;
        const double vn = 9.91256303526217e-3;
        const double q = vn / std::exp(-0.5 * dn * dn);
        kn[0] = static_cast<std::uint32_t>((dn / q) * m1);
        kn[1] = 0;
        wn[0] = q / m1;
        wn[127] = dn / m1;
        fn[0] = 1.0;
        fn[127] = std::exp(-0.5 * dn * dn);
        for (int i = 126; i >= 1; --i) {
            dn = std::sqrt(
                -2.0 * std::log(vn / dn + std::exp(-0.5 * dn * dn)));
            kn[i + 1] = static_cast<std::uint32_t>((dn / tn) * m1);
            tn = dn;
            fn[i] = std::exp(-0.5 * dn * dn);
            wn[i] = dn / m1;
        }
        if (ripple != 0.0) {
            // Blocks of 8 layers scaled alternately up and down:
            // zero-mean at the table level, several percent wrong at
            // the density level.
            for (int i = 1; i < 127; ++i)
                wn[i] *= 1.0 + (((i / 8) % 2) ? ripple : -ripple);
        }
    }

    double
    draw(Rng& rng) const
    {
        for (;;) {
            const auto hz = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(rng.nextU64()));
            const std::uint32_t iz =
                static_cast<std::uint32_t>(hz) & 127u;
            const std::uint32_t mag =
                hz < 0 ? ~static_cast<std::uint32_t>(hz) + 1u
                       : static_cast<std::uint32_t>(hz);
            if (mag < kn[iz])
                return static_cast<double>(hz) * wn[iz];
            const double r = 3.442619855899;
            const double x = static_cast<double>(hz) * wn[iz];
            if (iz == 0) {
                double xt;
                double yt;
                do {
                    xt = -std::log(uniOpen(rng.nextU64())) / r;
                    yt = -std::log(uniOpen(rng.nextU64()));
                } while (yt + yt < xt * xt);
                return hz > 0 ? r + xt : -(r + xt);
            }
            if (fn[iz] + uniOpen(rng.nextU64()) * (fn[iz - 1] - fn[iz])
                < std::exp(-0.5 * x * x))
                return x;
        }
    }

    static double
    uniOpen(std::uint64_t bits)
    {
        return (static_cast<double>(bits >> 11) + 0.5)
               * (1.0 / 9007199254740992.0);
    }
};

/** The demo's corruption amplitude: see the file comment. */
constexpr double kRipple = 0.05;

/**
 * The power demo needs enough draws for the defect's TV (~0.004
 * above the null bias) to clear the threshold; 2^21 is the floor
 * even when the shard default is lower.
 */
CertifyOptions
powerOptions()
{
    CertifyOptions options = testing::certifyOptions();
    options.samples = std::max(options.samples,
                               static_cast<std::size_t>(1) << 21);
    return options;
}

BulkSampler
zigguratSampler(const RippledZiggurat& zig)
{
    return [&zig](Rng& rng, double* out, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = zig.draw(rng);
    };
}

TEST(CertificationPower, FaithfulTableCopyIsCertified)
{
    RippledZiggurat faithful(0.0);
    random::Gaussian truth(0.0, 1.0);
    Rng rng = testing::testRng(4301);
    auto r = certifyContinuous("ziggurat/faithful-copy",
                               zigguratSampler(faithful), truth, rng,
                               powerOptions());
    EXPECT_TRUE(testing::certifiedPass(r));
}

TEST(CertificationPower, RippledTableIsRejectedByCertification)
{
    RippledZiggurat corrupt(kRipple);
    random::Gaussian truth(0.0, 1.0);
    Rng rng = testing::testRng(4302);
    auto r = certifyContinuous("ziggurat/rippled",
                               zigguratSampler(corrupt), truth, rng,
                               powerOptions());
    EXPECT_FALSE(r.pass)
        << "corrupted ziggurat passed certification: tvEstimate "
        << r.tvEstimate << " <= threshold " << r.threshold;
    // The certificate's universal bound must cover the real defect.
    EXPECT_GT(r.tvUpperBound, r.threshold);
}

TEST(CertificationPower, RippledTableSlipsPastTheSuiteKsAssertion)
{
    // The exact assertion the conformance suites run: one-sample KS
    // at alpha = 0.01 over 20000 draws. Across 20 fixed seeds the
    // corrupted sampler must be missed in the overwhelming majority
    // of runs (the observed rate is 0/20; <= 3 keeps the assertion
    // robust under UNCERTAIN_TEST_SEED_OFFSET sweeps) — while its
    // coarse moments stay indistinguishable from N(0, 1).
    RippledZiggurat corrupt(kRipple);
    random::Gaussian truth(0.0, 1.0);
    constexpr std::size_t kSuiteSamples = 20000;
    int rejections = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng = testing::testRng(4310 + seed);
        std::vector<double> xs(kSuiteSamples);
        for (double& x : xs)
            x = corrupt.draw(rng);
        if (ksTest(xs, truth).rejectAt(0.01))
            ++rejections;
    }
    EXPECT_LE(rejections, 3)
        << "the KS assertion reliably catches this corruption after "
           "all; pick a defect below its detection radius";

    Rng rng = testing::testRng(4333);
    std::vector<double> xs(1u << 20);
    for (double& x : xs)
        x = corrupt.draw(rng);
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size());
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(std::sqrt(var), 1.0, 0.01);
}

} // namespace
} // namespace stats
} // namespace uncertain
