/** @file Discrete Bayes and conjugate-update tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "inference/conjugate.hpp"
#include "inference/discrete_bayes.hpp"
#include "inference/likelihood.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace inference {
namespace {

TEST(DiscreteBayes, BinarySensorMapEqualsNearestHypothesis)
{
    // The BayesLife derivation: with equal priors and symmetric
    // Gaussian likelihoods around 0 and 1, the MAP hypothesis is
    // whichever of 0/1 is closer to the reading.
    std::vector<Hypothesis> hypotheses{{0.0, 0.5}, {1.0, 0.5}};
    for (double reading : {-0.7, 0.1, 0.49, 0.51, 0.9, 1.8}) {
        GaussianLikelihood likelihood(reading, 0.3);
        DiscretePosterior posterior(hypotheses, likelihood);
        double expected = reading > 0.5 ? 1.0 : 0.0;
        EXPECT_DOUBLE_EQ(posterior.mapValue(), expected)
            << "reading = " << reading;
    }
}

TEST(DiscreteBayes, PosteriorMatchesBayesRuleByHand)
{
    // Two hypotheses, unequal priors, explicit likelihoods.
    std::vector<Hypothesis> hypotheses{{0.0, 0.9}, {1.0, 0.1}};
    GaussianLikelihood likelihood(1.0, 0.5);
    DiscretePosterior posterior(hypotheses, likelihood);

    double l0 = std::exp(likelihood.logLikelihood(0.0)) * 0.9;
    double l1 = std::exp(likelihood.logLikelihood(1.0)) * 0.1;
    EXPECT_NEAR(posterior.probability(0), l0 / (l0 + l1), 1e-10);
    EXPECT_NEAR(posterior.probability(1), l1 / (l0 + l1), 1e-10);
    EXPECT_NEAR(posterior.probability(0) + posterior.probability(1),
                1.0, 1e-12);
}

TEST(DiscreteBayes, StrongPriorOverridesWeakEvidence)
{
    std::vector<Hypothesis> hypotheses{{0.0, 0.999}, {1.0, 0.001}};
    GaussianLikelihood likelihood(0.6, 0.5); // slightly favors 1
    DiscretePosterior posterior(hypotheses, likelihood);
    EXPECT_DOUBLE_EQ(posterior.mapValue(), 0.0);
}

TEST(DiscreteBayes, PosteriorMeanInterpolates)
{
    std::vector<Hypothesis> hypotheses{{0.0, 0.5}, {1.0, 0.5}};
    GaussianLikelihood likelihood(0.5, 0.4); // perfectly ambiguous
    DiscretePosterior posterior(hypotheses, likelihood);
    EXPECT_NEAR(posterior.mean(), 0.5, 1e-10);
}

TEST(DiscreteBayes, ZeroPriorHypothesisGetsZeroPosterior)
{
    std::vector<Hypothesis> hypotheses{{0.0, 1.0}, {1.0, 0.0}};
    GaussianLikelihood likelihood(1.0, 0.1); // evidence screams "1"
    DiscretePosterior posterior(hypotheses, likelihood);
    EXPECT_DOUBLE_EQ(posterior.probability(1), 0.0);
    EXPECT_DOUBLE_EQ(posterior.mapValue(), 0.0);
}

TEST(DiscreteBayes, ValidatesInput)
{
    GaussianLikelihood likelihood(0.0, 1.0);
    EXPECT_THROW(DiscretePosterior({}, likelihood), Error);
    EXPECT_THROW(
        DiscretePosterior({{0.0, -1.0}}, likelihood), Error);
    EXPECT_THROW(
        DiscretePosterior({{0.0, 0.0}, {1.0, 0.0}}, likelihood),
        Error);
    DiscretePosterior ok({{0.0, 1.0}}, likelihood);
    EXPECT_THROW(ok.probability(5), Error);
}

TEST(Conjugate, GaussianPosteriorInterpolatesPrecisionWeighted)
{
    random::Gaussian prior(0.0, 1.0);
    auto post = gaussianPosterior(prior, 2.0, 1.0);
    EXPECT_NEAR(post.mu(), 1.0, 1e-12);
    EXPECT_NEAR(post.sigma(), std::sqrt(0.5), 1e-12);
}

TEST(Conjugate, ManyObservationsOverwhelmThePrior)
{
    random::Gaussian prior(0.0, 1.0);
    auto post = gaussianPosterior(prior, 5.0, 1.0, 10000);
    EXPECT_NEAR(post.mu(), 5.0, 0.01);
    EXPECT_LT(post.sigma(), 0.02);
}

TEST(Conjugate, BetaBernoulliCounts)
{
    random::Beta prior(1.0, 1.0);
    auto post = betaPosterior(prior, 7, 3);
    EXPECT_DOUBLE_EQ(post.a(), 8.0);
    EXPECT_DOUBLE_EQ(post.b(), 4.0);
    EXPECT_NEAR(post.mean(), 8.0 / 12.0, 1e-12);
}

TEST(Conjugate, ValidatesParameters)
{
    random::Gaussian prior(0.0, 1.0);
    EXPECT_THROW(gaussianPosterior(prior, 1.0, 0.0), Error);
    EXPECT_THROW(gaussianPosterior(prior, 1.0, 1.0, 0), Error);
}

} // namespace
} // namespace inference
} // namespace uncertain
