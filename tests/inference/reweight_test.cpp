/**
 * @file
 * Bayesian reweighting (SIR) tests: the sampled posterior must match
 * the exact conjugate posterior where one exists, and the diagnostics
 * must flag pathological cases.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/core.hpp"
#include "inference/conjugate.hpp"
#include "inference/reweight.hpp"
#include "random/gaussian.hpp"
#include "random/uniform.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace inference {
namespace {

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return core::fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

TEST(Reweight, GaussianTimesGaussianMatchesConjugatePosterior)
{
    // Estimate N(2, 1) reweighted by prior N(0, 1): the posterior is
    // N(1, 1/2) — precision-weighted fusion.
    Rng rng = testing::testRng(151);
    auto estimate = gaussianLeaf(2.0, 1.0);
    random::Gaussian prior(0.0, 1.0);
    ReweightOptions options;
    options.proposalSamples = 40000;
    options.resampleSize = 20000;
    auto posterior = applyPrior(estimate, prior, options, rng);

    stats::OnlineSummary s;
    for (double v : posterior.takeSamples(20000, rng))
        s.add(v);
    EXPECT_NEAR(s.mean(), 1.0, 0.05);
    EXPECT_NEAR(s.variance(), 0.5, 0.05);
}

TEST(Reweight, PosteriorFromPriorMatchesConjugateUpdate)
{
    // Prior N(0, 2), one observation 3.0 with noise sigma 1:
    // exact posterior from the conjugate formulas.
    Rng rng = testing::testRng(152);
    random::Gaussian prior(0.0, 2.0);
    GaussianLikelihood likelihood(3.0, 1.0);
    ReweightOptions options;
    options.proposalSamples = 40000;
    options.resampleSize = 20000;
    auto posterior =
        posteriorFromPrior(prior, likelihood, options, rng);

    random::Gaussian exact = gaussianPosterior(prior, 3.0, 1.0);
    stats::OnlineSummary s;
    for (double v : posterior.takeSamples(20000, rng))
        s.add(v);
    EXPECT_NEAR(s.mean(), exact.mu(), 0.05);
    EXPECT_NEAR(s.stddev(), exact.sigma(), 0.05);
}

TEST(Reweight, UniformPriorIsANoOpOnTheSupport)
{
    Rng rng = testing::testRng(153);
    auto estimate = gaussianLeaf(0.0, 0.5);
    random::Uniform prior(-100.0, 100.0);
    ReweightOptions options;
    options.proposalSamples = 20000;
    options.resampleSize = 10000;
    auto posterior = applyPrior(estimate, prior, options, rng);
    stats::OnlineSummary s;
    for (double v : posterior.takeSamples(10000, rng))
        s.add(v);
    EXPECT_NEAR(s.mean(), 0.0, 0.05);
    EXPECT_NEAR(s.stddev(), 0.5, 0.05);
}

TEST(Reweight, PriorTruncatesAbsurdValues)
{
    // The paper's walking-speed scenario: wide estimate, prior kills
    // the >10 mph region entirely.
    Rng rng = testing::testRng(154);
    auto estimate = gaussianLeaf(20.0, 15.0);
    random::Uniform prior(0.0, 10.0);
    ReweightOptions options;
    auto posterior = applyPrior(estimate, prior, options, rng);
    for (double v : posterior.takeSamples(2000, rng)) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 10.0);
    }
}

TEST(Reweight, EffectiveSampleSizeDropsWithMismatch)
{
    Rng rng = testing::testRng(155);
    ReweightOptions options;
    options.proposalSamples = 5000;

    auto wellMatched = reweight(
        gaussianLeaf(0.0, 1.0),
        [](double x) { return random::Gaussian(0.0, 1.0).logPdf(x); },
        options, rng);
    auto mismatched = reweight(
        gaussianLeaf(0.0, 1.0),
        [](double x) { return random::Gaussian(4.0, 0.2).logPdf(x); },
        options, rng);
    EXPECT_GT(wellMatched.effectiveSampleSize,
              mismatched.effectiveSampleSize * 10.0);
}

TEST(Reweight, EssIsIndependentOfResampleSize)
{
    // The documented contract: the ESS is computed on the
    // PRE-resampling proposal weights, so for a fixed seed it does
    // not move when resampleSize changes.
    auto essWithResampleSize = [](std::size_t resampleSize) {
        Rng rng = testing::testRng(158);
        ReweightOptions options;
        options.proposalSamples = 2000;
        options.resampleSize = resampleSize;
        return reweight(
                   gaussianLeaf(0.0, 1.0),
                   [](double x) {
                       return random::Gaussian(1.0, 0.5).logPdf(x);
                   },
                   options, rng)
            .effectiveSampleSize;
    };
    EXPECT_DOUBLE_EQ(essWithResampleSize(10),
                     essWithResampleSize(4000));
}

TEST(Reweight, LowEssWarningThresholdTrips)
{
    Rng rng = testing::testRng(159);
    ReweightOptions options;
    options.proposalSamples = 2000;
    options.resampleSize = 500;
    options.essWarnFraction = 0.5;
    double reportedEss = -1.0;
    options.onLowEss = [&](double ess, std::size_t) {
        reportedEss = ess;
    };
    auto mismatched = reweight(
        gaussianLeaf(0.0, 1.0),
        [](double x) { return random::Gaussian(4.0, 0.1).logPdf(x); },
        options, rng);
    EXPECT_TRUE(mismatched.lowEss);
    EXPECT_DOUBLE_EQ(reportedEss, mismatched.effectiveSampleSize);

    // Healthy overlap: the flag stays down and the callback silent.
    reportedEss = -1.0;
    auto matched = reweight(
        gaussianLeaf(0.0, 1.0),
        [](double x) { return random::Gaussian(0.0, 1.0).logPdf(x); },
        options, rng);
    EXPECT_FALSE(matched.lowEss);
    EXPECT_EQ(reportedEss, -1.0);
}

TEST(Reweight, SystematicSchemeMatchesConjugateMoments)
{
    // Same conjugate scenario as the multinomial test above, under
    // the low-variance systematic resampler.
    Rng rng = testing::testRng(160);
    auto estimate = gaussianLeaf(2.0, 1.0);
    random::Gaussian prior(0.0, 1.0);
    ReweightOptions options;
    options.proposalSamples = 40000;
    options.resampleSize = 20000;
    options.scheme = ResamplingScheme::Systematic;
    auto posterior = applyPrior(estimate, prior, options, rng);

    stats::OnlineSummary s;
    for (double v : posterior.takeSamples(20000, rng))
        s.add(v);
    EXPECT_NEAR(s.mean(), 1.0, 0.05);
    EXPECT_NEAR(s.variance(), 0.5, 0.05);
}

TEST(Reweight, ThrowsWhenSupportsDoNotOverlap)
{
    Rng rng = testing::testRng(156);
    auto estimate = gaussianLeaf(0.0, 0.1);
    random::Uniform prior(50.0, 51.0);
    ReweightOptions options;
    options.proposalSamples = 1000;
    EXPECT_THROW(applyPrior(estimate, prior, options, rng), Error);
}

TEST(Reweight, ValidatesOptions)
{
    Rng rng = testing::testRng(157);
    auto estimate = gaussianLeaf(0.0, 1.0);
    ReweightOptions options;
    options.proposalSamples = 1;
    EXPECT_THROW(
        reweight(estimate, [](double) { return 0.0; }, options, rng),
        Error);
}

TEST(Likelihood, GaussianLikelihoodPeaksAtTheObservation)
{
    GaussianLikelihood lik(2.0, 0.5);
    EXPECT_GT(lik.logLikelihood(2.0), lik.logLikelihood(1.0));
    EXPECT_NEAR(lik.logLikelihood(1.5), lik.logLikelihood(2.5), 1e-12);
    EXPECT_THROW(GaussianLikelihood(0.0, 0.0), Error);
}

TEST(Likelihood, FunctionLikelihoodDelegates)
{
    FunctionLikelihood lik([](double b) { return -b * b; }, "neg-sq");
    EXPECT_DOUBLE_EQ(lik.logLikelihood(3.0), -9.0);
    EXPECT_EQ(lik.name(), "neg-sq");
}

} // namespace
} // namespace inference
} // namespace uncertain
