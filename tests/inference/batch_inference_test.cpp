/**
 * @file
 * Batched Bayesian inference: conjugate-posterior conformance of the
 * SIR engine across both sampling engines (tree walk vs columnar
 * batch plans) and both resampling schemes (multinomial vs
 * systematic), tree-vs-batch equivalence on the GPS pipelines, and
 * edge-case / unit coverage of the shared resampling kernel.
 *
 * The InferenceConformance fixture is statistical (fixed seeds, KS at
 * kKsAlpha plus first-two-moment checks) and runs in the
 * `statistical` CTest shard; GenericReweightEdge and
 * SystematicResample are deterministic unit suites.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/batch.hpp"
#include "core/core.hpp"
#include "gps/gps_library.hpp"
#include "gps/roads.hpp"
#include "gps/walking.hpp"
#include "inference/conjugate.hpp"
#include "inference/generic_reweight.hpp"
#include "inference/resample.hpp"
#include "inference/reweight.hpp"
#include "random/gaussian.hpp"
#include "random/point_mass.hpp"
#include "random/uniform.hpp"
#include "stat_assert.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace inference {
namespace {

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return core::fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

/**
 * Run the Gaussian-Gaussian conjugate scenario (prior N(0, 2), one
 * observation 3.0 with noise sigma 1) through posteriorFromPrior with
 * the given engine/scheme and check the sampled posterior against the
 * exact closed-form posterior: one-sample KS at kKsAlpha plus the
 * ~5-sigma moment check.
 */
void
expectConjugateConformance(core::BatchSampler* sampler,
                           ResamplingScheme scheme,
                           std::uint64_t seed)
{
    Rng rng = testing::testRng(seed);
    random::Gaussian prior(0.0, 2.0);
    GaussianLikelihood likelihood(3.0, 1.0);
    ReweightOptions options;
    options.proposalSamples = 40000;
    options.resampleSize = 20000;
    options.sampler = sampler;
    options.scheme = scheme;
    auto posterior =
        posteriorFromPrior(prior, likelihood, options, rng);

    random::Gaussian exact = gaussianPosterior(prior, 3.0, 1.0);
    std::vector<double> samples = posterior.takeSamples(4000, rng);
    EXPECT_TRUE(testing::ksMatchesDistribution(samples, exact));
    EXPECT_TRUE(
        testing::momentsMatch(samples, exact.mu(), exact.sigma()));
}

TEST(InferenceConformance, TreeMultinomialMatchesConjugatePosterior)
{
    expectConjugateConformance(nullptr, ResamplingScheme::Multinomial,
                               1601);
}

TEST(InferenceConformance, TreeSystematicMatchesConjugatePosterior)
{
    expectConjugateConformance(nullptr, ResamplingScheme::Systematic,
                               1602);
}

TEST(InferenceConformance, BatchMultinomialMatchesConjugatePosterior)
{
    core::BatchSampler sampler;
    expectConjugateConformance(&sampler,
                               ResamplingScheme::Multinomial, 1603);
}

TEST(InferenceConformance, BatchSystematicMatchesConjugatePosterior)
{
    core::BatchSampler sampler;
    expectConjugateConformance(&sampler, ResamplingScheme::Systematic,
                               1604);
}

TEST(InferenceConformance, ApplyPriorConformsOnBothEngines)
{
    // Estimate N(2, 1) x prior N(0, 1) => posterior N(1, 1/2), the
    // applyPrior direction of the conjugate identity.
    random::Gaussian exact(1.0, std::sqrt(0.5));
    for (bool batch : {false, true}) {
        Rng rng = testing::testRng(batch ? 1652 : 1651);
        core::BatchSampler sampler;
        ReweightOptions options;
        // Pool sizes well above the KS draw count below, so the
        // finite-pool bias of SIR stays inside the KS band.
        options.proposalSamples = 100000;
        options.resampleSize = 50000;
        if (batch)
            options.sampler = &sampler;
        auto posterior = applyPrior(gaussianLeaf(2.0, 1.0),
                                    random::Gaussian(0.0, 1.0),
                                    options, rng);
        std::vector<double> samples =
            posterior.takeSamples(3000, rng);
        EXPECT_TRUE(testing::ksMatchesDistribution(samples, exact))
            << (batch ? "batch" : "tree");
        EXPECT_TRUE(
            testing::momentsMatch(samples, exact.mu(), exact.sigma()))
            << (batch ? "batch" : "tree");
    }
}

TEST(InferenceConformance, BetaApplyPriorConformsOnBothEngines)
{
    // Estimate Beta(2.5, 1.5) x prior Beta(3, 2): the density product
    // is exactly Beta(4.5, 2.5) (betaDensityProduct), sampled through
    // the new Beta bulk path on the batch engine.
    random::Beta estimate(2.5, 1.5);
    random::Beta exact =
        betaDensityProduct(estimate, random::Beta(3.0, 2.0));
    for (bool batch : {false, true}) {
        Rng rng = testing::testRng(batch ? 1654 : 1653);
        core::BatchSampler sampler;
        ReweightOptions options;
        options.proposalSamples = 100000;
        options.resampleSize = 50000;
        if (batch)
            options.sampler = &sampler;
        auto posterior = applyPrior(
            core::fromDistribution(
                std::make_shared<random::Beta>(estimate)),
            random::Beta(3.0, 2.0), options, rng);
        std::vector<double> samples =
            posterior.takeSamples(3000, rng);
        EXPECT_TRUE(testing::ksMatchesDistribution(samples, exact))
            << (batch ? "batch" : "tree");
        EXPECT_TRUE(testing::momentsMatch(samples, exact.mean(),
                                          exact.stddev()))
            << (batch ? "batch" : "tree");
    }
}

TEST(InferenceConformance, GammaApplyPriorConformsOnBothEngines)
{
    // Estimate Gamma(3, 1.5) x prior Gamma(2, 1): exactly
    // Gamma(4, 2.5) by gammaDensityProduct.
    random::Gamma estimate(3.0, 1.5);
    random::Gamma exact =
        gammaDensityProduct(estimate, random::Gamma(2.0, 1.0));
    for (bool batch : {false, true}) {
        Rng rng = testing::testRng(batch ? 1656 : 1655);
        core::BatchSampler sampler;
        ReweightOptions options;
        options.proposalSamples = 100000;
        options.resampleSize = 50000;
        if (batch)
            options.sampler = &sampler;
        auto posterior = applyPrior(
            core::fromDistribution(
                std::make_shared<random::Gamma>(estimate)),
            random::Gamma(2.0, 1.0), options, rng);
        std::vector<double> samples =
            posterior.takeSamples(3000, rng);
        EXPECT_TRUE(testing::ksMatchesDistribution(samples, exact))
            << (batch ? "batch" : "tree");
        EXPECT_TRUE(testing::momentsMatch(samples, exact.mean(),
                                          exact.stddev()))
            << (batch ? "batch" : "tree");
    }
}

TEST(ConjugateHooks, DensityProductsAndGammaPoissonAreExact)
{
    random::Beta beta =
        betaDensityProduct(random::Beta(2.0, 5.0),
                           random::Beta(3.5, 1.5));
    EXPECT_DOUBLE_EQ(beta.a(), 4.5);
    EXPECT_DOUBLE_EQ(beta.b(), 5.5);
    EXPECT_THROW(betaDensityProduct(random::Beta(0.4, 1.0),
                                    random::Beta(0.5, 1.0)),
                 Error);

    random::Gamma gamma =
        gammaDensityProduct(random::Gamma(3.0, 1.5),
                            random::Gamma(2.5, 0.5));
    EXPECT_DOUBLE_EQ(gamma.shape(), 4.5);
    EXPECT_DOUBLE_EQ(gamma.rate(), 2.0);
    EXPECT_THROW(gammaDensityProduct(random::Gamma(0.3, 1.0),
                                     random::Gamma(0.6, 1.0)),
                 Error);

    random::Gamma posterior =
        gammaPoissonPosterior(random::Gamma(2.0, 0.5), 17, 4);
    EXPECT_DOUBLE_EQ(posterior.shape(), 19.0);
    EXPECT_DOUBLE_EQ(posterior.rate(), 4.5);
}

TEST(InferenceConformance, TreeAndBatchAgreeOnGpsSpeedPosterior)
{
    // The Figure 11/13 pipeline: speed from two fixes, improved by
    // the walking prior. The engines consume different streams by
    // contract, so the pools differ draw-by-draw but must be
    // KS-indistinguishable, and both runs must report a healthy ESS.
    gps::GeoCoordinate center{47.62, -122.35};
    const gps::GpsFix earlier{center, 8.0, 0.0};
    const gps::GpsFix later{gps::destination(center, 0.3, 6.0), 8.0,
                            4.0};
    auto speed = gps::speedFromFixes(earlier, later);

    // Both posteriors are finite pools, so the KS comparison sees
    // pool-level Monte Carlo noise on top of any engine disagreement.
    // At the default 4000/2000 pool the pools' own fluctuation is the
    // same order as the KS radius and the test is seed-fragile (the
    // stat_flake_audit sweep rejects on most offsets); 40000/20000
    // puts pool noise well inside the radius so only a real engine
    // divergence can reject.
    ReweightOptions treeOptions;
    treeOptions.proposalSamples = 40000;
    treeOptions.resampleSize = 20000;
    Rng treeRng = testing::testRng(1611);
    auto tree = reweightBulk(
        speed,
        [](const double* values, double* logWeights, std::size_t n) {
            gps::walkingSpeedPrior()->logPdfMany(values, logWeights,
                                                 n);
        },
        treeOptions, treeRng);

    core::BatchSampler sampler;
    ReweightOptions batchOptions;
    batchOptions.proposalSamples = 40000;
    batchOptions.resampleSize = 20000;
    batchOptions.sampler = &sampler;
    Rng batchRng = testing::testRng(1611);
    auto batch = reweightBulk(
        speed,
        [](const double* values, double* logWeights, std::size_t n) {
            gps::walkingSpeedPrior()->logPdfMany(values, logWeights,
                                                 n);
        },
        batchOptions, batchRng);

    EXPECT_GT(tree.effectiveSampleSize, 100.0);
    EXPECT_GT(batch.effectiveSampleSize, 100.0);
    Rng drawRng = testing::testRng(1612);
    EXPECT_TRUE(testing::ksSameDistribution(
        tree.posterior.takeSamples(4000, drawRng),
        batch.posterior.takeSamples(4000, drawRng)));
}

TEST(InferenceConformance, TreeAndBatchAgreeOnRoadSnapping)
{
    // The Figure 10 pipeline over GeoCoordinate (generic SIR): snap a
    // displaced fix onto a road and compare the posterior road
    // distances across engines.
    gps::GeoCoordinate center{47.62, -122.35};
    gps::RoadNetwork road({{gps::destination(center, M_PI, 500.0),
                            gps::destination(center, 0.0, 500.0)}});
    gps::RoadPrior prior(road, 6.0);
    auto raw = gps::getLocation(
        {gps::destination(center, M_PI / 2.0, 10.0), 8.0, 0.0});

    ReweightOptions options;
    options.proposalSamples = 8000;
    options.resampleSize = 4000;
    Rng treeRng = testing::testRng(1613);
    auto tree = gps::snapToRoads(raw, prior, options, treeRng);

    core::BatchSampler sampler;
    options.sampler = &sampler;
    Rng batchRng = testing::testRng(1613);
    auto batch = gps::snapToRoads(raw, prior, options, batchRng);

    auto roadDistances = [&](const Uncertain<gps::GeoCoordinate>& u,
                             std::uint64_t seed) {
        Rng rng = testing::testRng(seed);
        std::vector<double> out;
        for (const auto& p : u.takeSamples(3000, rng))
            out.push_back(road.distanceToNearestRoad(p));
        return out;
    };
    EXPECT_TRUE(
        testing::ksSameDistribution(roadDistances(tree, 1614),
                                    roadDistances(batch, 1614)));
}

TEST(InferenceConformance, SprtDecisionParityOnPosteriorConditional)
{
    // Conditionals over the improved-speed posterior must decide the
    // same way under both engines: the ~3.4 mph walk is clearly
    // faster than 0.5 mph and clearly not faster than kBriskWalkMph.
    gps::GeoCoordinate center{47.62, -122.35};
    const gps::GpsFix earlier{center, 8.0, 0.0};
    const gps::GpsFix later{gps::destination(center, 0.3, 6.0), 8.0,
                            4.0};
    auto speed = gps::speedFromFixes(earlier, later);
    core::ConditionalOptions conditional;

    for (bool batch : {false, true}) {
        core::BatchSampler sampler;
        ReweightOptions options;
        if (batch)
            options.sampler = &sampler;
        Rng rng = testing::testRng(1615);
        auto improved = gps::improveSpeed(speed, options, rng);
        auto brisk = improved > gps::kBriskWalkMph;
        auto moving = improved > 0.5;
        const bool briskDecision =
            batch ? brisk.pr(0.5, conditional, rng, sampler)
                  : brisk.pr(0.5, conditional, rng);
        const bool movingDecision =
            batch ? moving.pr(0.5, conditional, rng, sampler)
                  : moving.pr(0.5, conditional, rng);
        EXPECT_FALSE(briskDecision)
            << (batch ? "batch" : "tree");
        EXPECT_TRUE(movingDecision) << (batch ? "batch" : "tree");
    }
}

TEST(InferenceConformance, SameSeedSameEngineIsDeterministic)
{
    // Within one engine the SIR operator is a pure function of the
    // seed: rerunning yields the identical ESS and posterior pool.
    auto run = [](bool batch) {
        core::BatchSampler sampler;
        ReweightOptions options;
        options.proposalSamples = 4000;
        options.resampleSize = 2000;
        if (batch)
            options.sampler = &sampler;
        Rng rng = testing::testRng(1616);
        auto result = applyPrior(gaussianLeaf(2.0, 1.0),
                                 random::Gaussian(0.0, 1.0), options,
                                 rng);
        Rng drawRng = testing::testRng(1617);
        return result.takeSamples(500, drawRng);
    };
    for (bool batch : {false, true}) {
        std::vector<double> first = run(batch);
        std::vector<double> second = run(batch);
        EXPECT_EQ(first, second) << (batch ? "batch" : "tree");
    }
}

// ---------------------------------------------------------------------
// Edge cases of the generic SIR kernel.
// ---------------------------------------------------------------------

TEST(GenericReweightEdge, ThrowsWhenAllWeightsAreZero)
{
    Rng rng = testing::testRng(1621);
    auto source = gaussianLeaf(0.0, 0.1);
    ReweightOptions options;
    options.proposalSamples = 500;
    EXPECT_THROW(
        reweightSamples(
            source,
            [](double) {
                return -std::numeric_limits<double>::infinity();
            },
            options, rng),
        Error);
}

TEST(GenericReweightEdge, RequiresAtLeastTwoProposals)
{
    Rng rng = testing::testRng(1622);
    auto source = gaussianLeaf(0.0, 1.0);
    ReweightOptions options;
    options.proposalSamples = 1;
    EXPECT_THROW(
        reweightSamples(source, [](double) { return 0.0; }, options,
                        rng),
        Error);
}

TEST(GenericReweightEdge, TwoProposalPoolWorks)
{
    Rng rng = testing::testRng(1623);
    auto source = gaussianLeaf(5.0, 1.0);
    ReweightOptions options;
    options.proposalSamples = 2;
    options.resampleSize = 8;
    auto result = reweightSamples(
        source, [](double) { return 0.0; }, options, rng);
    // Every posterior draw must be one of the two proposals.
    std::vector<double> pool = result.posterior.takeSamples(64, rng);
    std::vector<double> distinct;
    for (double v : pool) {
        bool seen = false;
        for (double d : distinct)
            seen = seen || d == v;
        if (!seen)
            distinct.push_back(v);
    }
    EXPECT_LE(distinct.size(), 2u);
    EXPECT_LE(result.effectiveSampleSize, 2.0 + 1e-12);
}

TEST(GenericReweightEdge, ResampleSizeMayExceedProposalPool)
{
    Rng rng = testing::testRng(1624);
    auto source = gaussianLeaf(0.0, 1.0);
    ReweightOptions options;
    options.proposalSamples = 16;
    options.resampleSize = 256;
    for (ResamplingScheme scheme : {ResamplingScheme::Multinomial,
                                    ResamplingScheme::Systematic}) {
        options.scheme = scheme;
        auto result = reweightSamples(
            source, [](double) { return 0.0; }, options, rng);
        std::vector<double> pool =
            result.posterior.takeSamples(512, rng);
        std::vector<double> distinct;
        for (double v : pool) {
            bool seen = false;
            for (double d : distinct)
                seen = seen || d == v;
            if (!seen)
                distinct.push_back(v);
        }
        EXPECT_LE(distinct.size(), 16u);
    }
}

TEST(GenericReweightEdge, PointMassProposalsHaveExactlyFullEss)
{
    // A point-mass source gives identical proposals, hence equal
    // weights under any log-weight: the Kish ESS is exactly the
    // proposal count (degenerate but perfect overlap).
    Rng rng = testing::testRng(1625);
    auto source = core::fromDistribution(
        std::make_shared<random::PointMass>(3.0));
    ReweightOptions options;
    options.proposalSamples = 100;
    options.resampleSize = 50;
    auto result = reweightSamples(
        source,
        [](double x) { return random::Gaussian(0.0, 1.0).logPdf(x); },
        options, rng);
    EXPECT_DOUBLE_EQ(result.effectiveSampleSize, 100.0);
}

TEST(GenericReweightEdge, EssIsComputedBeforeResampling)
{
    // Same seed, wildly different resampleSize: the ESS is a property
    // of the proposal weights alone, so it must be bit-identical.
    auto essWithResampleSize = [](std::size_t resampleSize) {
        Rng rng = testing::testRng(1626);
        ReweightOptions options;
        options.proposalSamples = 2000;
        options.resampleSize = resampleSize;
        return reweightSamples(
                   core::fromDistribution(
                       std::make_shared<random::Gaussian>(0.0, 1.0)),
                   [](double x) {
                       return random::Gaussian(1.0, 0.5).logPdf(x);
                   },
                   options, rng)
            .effectiveSampleSize;
    };
    EXPECT_DOUBLE_EQ(essWithResampleSize(10),
                     essWithResampleSize(4000));
}

TEST(GenericReweightEdge, LowEssThresholdRaisesFlagAndCallback)
{
    Rng rng = testing::testRng(1627);
    auto source = gaussianLeaf(0.0, 1.0);
    ReweightOptions options;
    options.proposalSamples = 2000;
    options.resampleSize = 500;
    options.essWarnFraction = 0.5;
    double reportedEss = -1.0;
    std::size_t reportedProposals = 0;
    options.onLowEss = [&](double ess, std::size_t proposals) {
        reportedEss = ess;
        reportedProposals = proposals;
    };
    // Concentrated weight: only proposals near 4 sigma matter.
    auto mismatched = reweightSamples(
        source,
        [](double x) { return random::Gaussian(4.0, 0.1).logPdf(x); },
        options, rng);
    EXPECT_TRUE(mismatched.lowEss);
    EXPECT_GT(reportedEss, 0.0);
    EXPECT_LT(reportedEss, 1000.0);
    EXPECT_EQ(reportedProposals, 2000u);
    EXPECT_DOUBLE_EQ(reportedEss, mismatched.effectiveSampleSize);

    // Well-matched weights stay above the threshold: no flag, no
    // callback.
    reportedEss = -1.0;
    auto matched = reweightSamples(
        source, [](double) { return 0.0; }, options, rng);
    EXPECT_FALSE(matched.lowEss);
    EXPECT_EQ(reportedEss, -1.0);
}

TEST(GenericReweightEdge, ZeroWarnFractionStaysSilent)
{
    Rng rng = testing::testRng(1628);
    ReweightOptions options;
    options.proposalSamples = 1000;
    options.resampleSize = 100;
    bool called = false;
    options.onLowEss = [&](double, std::size_t) { called = true; };
    auto result = reweightSamples(
        gaussianLeaf(0.0, 1.0),
        [](double x) { return random::Gaussian(5.0, 0.05).logPdf(x); },
        options, rng);
    EXPECT_FALSE(result.lowEss);
    EXPECT_FALSE(called);
}

// ---------------------------------------------------------------------
// Systematic resampling kernel.
// ---------------------------------------------------------------------

TEST(SystematicResample, EqualWeightsYieldEachIndexExactlyOnce)
{
    Rng rng = testing::testRng(1631);
    std::vector<double> weights(64, 1.0);
    auto indices =
        detail::systematicIndices(weights, 64.0, 64, rng);
    ASSERT_EQ(indices.size(), 64u);
    for (std::size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(indices[i], i);
}

TEST(SystematicResample, ConcentratedWeightYieldsOnlyThatIndex)
{
    Rng rng = testing::testRng(1632);
    std::vector<double> weights(10, 0.0);
    weights[7] = 1.0;
    auto indices = detail::systematicIndices(weights, 1.0, 20, rng);
    ASSERT_EQ(indices.size(), 20u);
    for (std::size_t index : indices)
        EXPECT_EQ(index, 7u);
}

TEST(SystematicResample, IndicesAreNonDecreasingAndProportional)
{
    Rng rng = testing::testRng(1633);
    std::vector<double> weights{1.0, 3.0, 1.0, 3.0};
    auto indices = detail::systematicIndices(weights, 8.0, 800, rng);
    ASSERT_EQ(indices.size(), 800u);
    std::vector<std::size_t> counts(4, 0);
    for (std::size_t i = 1; i < indices.size(); ++i)
        EXPECT_GE(indices[i], indices[i - 1]);
    for (std::size_t index : indices)
        ++counts[index];
    // Systematic copy counts deviate from n*w by strictly less than
    // one stratum.
    EXPECT_NEAR(static_cast<double>(counts[0]), 100.0, 1.0);
    EXPECT_NEAR(static_cast<double>(counts[1]), 300.0, 1.0);
    EXPECT_NEAR(static_cast<double>(counts[2]), 100.0, 1.0);
    EXPECT_NEAR(static_cast<double>(counts[3]), 300.0, 1.0);
}

TEST(SystematicResample, ConsumesExactlyOneDraw)
{
    Rng a = testing::testRng(1634);
    Rng b = testing::testRng(1634);
    std::vector<double> weights(16, 1.0);
    (void)detail::systematicIndices(weights, 16.0, 32, a);
    (void)b.nextRange(0.0, 16.0 / 32.0);
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

} // namespace
} // namespace inference
} // namespace uncertain
