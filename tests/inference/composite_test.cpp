/** @file Compositional-prior tests (inference/composite.hpp). */

#include <gtest/gtest.h>

#include <memory>

#include "core/core.hpp"
#include "inference/composite.hpp"
#include "random/gaussian.hpp"
#include "random/uniform.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace inference {
namespace {

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return core::fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

TEST(CompositePrior, LogDensityIsTheSumOfComponents)
{
    auto a = std::make_shared<random::Gaussian>(0.0, 1.0);
    auto b = std::make_shared<random::Gaussian>(1.0, 2.0);
    CompositePrior priors({a, b});
    EXPECT_NEAR(priors.logDensity(0.5),
                a->logPdf(0.5) + b->logPdf(0.5), 1e-12);
}

TEST(CompositePrior, ExponentsTemperComponents)
{
    auto a = std::make_shared<random::Gaussian>(0.0, 1.0);
    CompositePrior priors({});
    priors.add(a, 2.0);
    EXPECT_NEAR(priors.logDensity(1.0), 2.0 * a->logPdf(1.0), 1e-12);
    EXPECT_THROW(priors.add(a, 0.0), Error);
    EXPECT_THROW(priors.add(nullptr), Error);
}

TEST(ApplyPriors, TwoGaussianPriorsFuseLikeSequentialUpdates)
{
    // estimate N(2,1) x prior N(0,1) x prior N(1,1): the posterior
    // is Gaussian with precision 3 and mean (2 + 0 + 1)/3 = 1.
    Rng rng = testing::testRng(321);
    auto estimate = gaussianLeaf(2.0, 1.0);
    CompositePrior priors(
        {std::make_shared<random::Gaussian>(0.0, 1.0),
         std::make_shared<random::Gaussian>(1.0, 1.0)});
    ReweightOptions options;
    options.proposalSamples = 40000;
    options.resampleSize = 20000;
    auto posterior = applyPriors(estimate, priors, options, rng);

    stats::OnlineSummary s;
    s.addAll(posterior.takeSamples(20000, rng));
    EXPECT_NEAR(s.mean(), 1.0, 0.05);
    EXPECT_NEAR(s.variance(), 1.0 / 3.0, 0.05);
}

TEST(ApplyPriors, MixAndMatchWindowsIntersect)
{
    // The paper's maps+calendar+physics scenario in miniature: two
    // interval constraints intersect.
    Rng rng = testing::testRng(322);
    auto estimate = gaussianLeaf(5.0, 10.0);
    CompositePrior priors(
        {std::make_shared<random::Uniform>(0.0, 6.0),
         std::make_shared<random::Uniform>(4.0, 20.0)});
    ReweightOptions options;
    auto posterior = applyPriors(estimate, priors, options, rng);
    for (double v : posterior.takeSamples(3000, rng)) {
        EXPECT_GE(v, 4.0);
        EXPECT_LE(v, 6.0);
    }
}

TEST(ApplyPriors, SingleComponentMatchesApplyPrior)
{
    Rng rngA = testing::testRng(323);
    Rng rngB = testing::testRng(323);
    auto estimate = gaussianLeaf(2.0, 1.0);
    random::Gaussian prior(0.0, 1.0);

    ReweightOptions options;
    options.proposalSamples = 20000;
    options.resampleSize = 10000;

    auto viaComposite = applyPriors(
        estimate,
        CompositePrior({std::make_shared<random::Gaussian>(0.0, 1.0)}),
        options, rngA);
    auto viaSingle = applyPrior(estimate, prior, options, rngB);

    // Identical streams and weights: identical resampled pools.
    stats::OnlineSummary a;
    a.addAll(viaComposite.takeSamples(5000, rngA));
    stats::OnlineSummary b;
    b.addAll(viaSingle.takeSamples(5000, rngB));
    EXPECT_NEAR(a.mean(), b.mean(), 1e-9);
}

TEST(ApplyPriors, RejectsEmptyComposite)
{
    Rng rng = testing::testRng(324);
    auto estimate = gaussianLeaf(0.0, 1.0);
    CompositePrior priors({});
    ReweightOptions options;
    EXPECT_THROW(applyPriors(estimate, priors, options, rng), Error);
}

} // namespace
} // namespace inference
} // namespace uncertain
