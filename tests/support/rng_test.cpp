/** @file Engine and Rng facade unit tests. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "stat_assert.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

TEST(SplitMix64, IsDeterministicForASeed)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next() ? 1 : 0;
    EXPECT_GE(differing, 60);
}

TEST(Xoshiro256, IsDeterministicForASeed)
{
    Xoshiro256StarStar a(7);
    Xoshiro256StarStar b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, JumpProducesDisjointPrefix)
{
    Xoshiro256StarStar a(7);
    Xoshiro256StarStar b(7);
    b.jump();
    std::set<std::uint64_t> fromA;
    for (int i = 0; i < 1000; ++i)
        fromA.insert(a.next());
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(fromA.count(b.next()));
}

TEST(Pcg32, IsDeterministicForASeed)
{
    Pcg32 a(99, 3);
    Pcg32 b(99, 3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, StreamsDiffer)
{
    Pcg32 a(99, 3);
    Pcg32 b(99, 4);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next() ? 1 : 0;
    EXPECT_GE(differing, 60);
}

TEST(Rng, NextDoubleIsInHalfOpenUnitInterval)
{
    Rng rng = testing::testRng(1);
    for (int i = 0; i < 100000; ++i) {
        double u = rng.nextDouble();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, NextDoubleOpenAvoidsEndpoints)
{
    Rng rng = testing::testRng(2);
    for (int i = 0; i < 100000; ++i) {
        double u = rng.nextDoubleOpen();
        EXPECT_GT(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, NextDoubleIsUniformByChiSquare)
{
    Rng rng = testing::testRng(3);
    std::vector<std::size_t> counts(20, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        auto bin = static_cast<std::size_t>(rng.nextDouble() * 20.0);
        ++counts[bin];
    }
    std::vector<double> expected(20, 1.0);
    EXPECT_TRUE(testing::chiSquareMatches(counts, expected, 1e-4));
}

TEST(Rng, NextBelowStaysBelowBound)
{
    Rng rng = testing::testRng(4);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(7), 7u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng rng = testing::testRng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextBelowRejectsZeroBound)
{
    Rng rng = testing::testRng(6);
    EXPECT_THROW(rng.nextBelow(0), Error);
}

TEST(Rng, NextRangeRespectsBounds)
{
    Rng rng = testing::testRng(7);
    for (int i = 0; i < 10000; ++i) {
        double x = rng.nextRange(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
    EXPECT_THROW(rng.nextRange(1.0, 1.0), Error);
}

TEST(Rng, NextBoolMatchesProbability)
{
    Rng rng = testing::testRng(8);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    double pHat = static_cast<double>(hits) / n;
    EXPECT_NEAR(pHat, 0.3, testing::proportionTolerance(0.3, n));
    EXPECT_THROW(rng.nextBool(1.5), Error);
}

TEST(Rng, NextBoolEdgeProbabilities)
{
    Rng rng = testing::testRng(9);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, ForkedStreamsAreUncorrelated)
{
    Rng parent = testing::testRng(10);
    Rng child = parent.fork();
    // Correlation of two long uniform streams should be ~0.
    const int n = 20000;
    double sxy = 0.0;
    double sx = 0.0;
    double sy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = parent.nextDouble();
        double y = child.nextDouble();
        sx += x;
        sy += y;
        sxy += x * y;
        sxx += x * x;
        syy += y * y;
    }
    double cov = sxy / n - (sx / n) * (sy / n);
    double vx = sxx / n - (sx / n) * (sx / n);
    double vy = syy / n - (sy / n) * (sy / n);
    double corr = cov / std::sqrt(vx * vy);
    EXPECT_NEAR(corr, 0.0, 5.0 / std::sqrt(static_cast<double>(n)));
}

TEST(Rng, GlobalRngIsReseedable)
{
    seedGlobalRng(123);
    double a = globalRng().nextDouble();
    seedGlobalRng(123);
    double b = globalRng().nextDouble();
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace uncertain
