/** @file Error-reporting macro tests. */

#include <gtest/gtest.h>

#include <string>

#include "support/error.hpp"

namespace uncertain {
namespace {

TEST(Require, PassesOnTrueCondition)
{
    EXPECT_NO_THROW(UNCERTAIN_REQUIRE(1 + 1 == 2, "arithmetic works"));
}

TEST(Require, ThrowsUncertainErrorWithMessage)
{
    try {
        UNCERTAIN_REQUIRE(false, "the message");
        FAIL() << "expected uncertain::Error";
    } catch (const Error& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("the message"), std::string::npos);
        EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
    }
}

TEST(Require, ErrorIsARuntimeError)
{
    EXPECT_THROW(UNCERTAIN_REQUIRE(false, "x"), std::runtime_error);
}

} // namespace
} // namespace uncertain
