/**
 * @file
 * Seeded random finite-support DAG generator for the exact-oracle
 * property suites.
 *
 * Graphs are built so the exact backend and the stochastic engines
 * are comparable with zero arithmetic slop: leaf supports are small
 * *integers* (exactly representable doubles) and the operator pool is
 * closed over integer values (+, -, *, min, max, select), so every
 * node's support is a set of exactly-representable values — a sampled
 * double either equals a support value bit-for-bit or the engine is
 * wrong. Node reuse draws operands from a growing pool, which
 * produces the shared-leaf diamonds that distinguish Figure 8(b)
 * semantics from naive independent re-draws; select() operands give
 * comparison-driven branch nodes.
 *
 * Determinism: the whole graph is a pure function of (seed, options).
 * A failing seed reported by the property suite reproduces the exact
 * graph.
 */

#ifndef UNCERTAIN_TESTS_SUPPORT_GRAPH_GEN_HPP
#define UNCERTAIN_TESTS_SUPPORT_GRAPH_GEN_HPP

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "random/binomial.hpp"
#include "random/poisson.hpp"

namespace uncertain {
namespace testing {

struct GraphGenOptions
{
    std::size_t maxLeaves = 6;      //!< stochastic leaves (>= 1)
    std::size_t maxLeafSupport = 4; //!< values per leaf (>= 2)
    std::size_t ops = 12;           //!< inner nodes appended
    /**
     * Allow at most ONE distribution-backed leaf per graph — a small
     * Binomial (n in 2..5) or a truncated small-lambda Poisson —
     * exercising the fromDistribution finite-support surfacing the
     * enumeration oracle consumes. Capped at one so the joint support
     * stays bounded (the truncated Poisson support is the widest at
     * ~18 integer values).
     */
    bool distributionLeaves = true;
};

/**
 * Deterministically generate a finite-support expression DAG from
 * @p seed. Joint support is bounded by maxLeafSupport^maxLeaves times
 * the widest distribution-leaf support (4096 x ~18 states at the
 * defaults), well inside every enumeration limit used by the suites.
 */
inline Uncertain<double>
randomFiniteGraph(std::uint64_t seed,
                  const GraphGenOptions& options = {})
{
    // SplitMix-style seed scramble so consecutive seeds do not
    // produce correlated mt19937 states.
    std::mt19937_64 gen(seed * 0x9e3779b97f4a7c15ULL
                        + 0xbf58476d1ce4e5b9ULL);
    auto pickIndex = [&gen](std::size_t lo, std::size_t hi) {
        return std::uniform_int_distribution<std::size_t>(lo, hi)(gen);
    };

    std::vector<Uncertain<double>> pool;
    const std::size_t leaves = pickIndex(1, options.maxLeaves);
    for (std::size_t i = 0; i < leaves; ++i) {
        const std::size_t supportSize =
            pickIndex(2, options.maxLeafSupport);
        std::vector<int> candidates = {-2, -1, 0, 1, 2, 3};
        std::shuffle(candidates.begin(), candidates.end(), gen);
        std::vector<double> values;
        std::vector<double> weights;
        for (std::size_t v = 0; v < supportSize; ++v) {
            values.push_back(static_cast<double>(candidates[v]));
            weights.push_back(
                static_cast<double>(pickIndex(1, 8)));
        }
        pool.push_back(core::fromFiniteSupport<double>(
            values, weights, "gen" + std::to_string(i)));
    }

    // Roughly half the graphs get one distribution-backed leaf whose
    // finite support comes from Binomial::finiteSupport or the
    // truncated Poisson::finiteSupport — integer-valued, so the
    // corpus stays closed over exactly-representable doubles.
    if (options.distributionLeaves && pickIndex(0, 1) == 0) {
        if (pickIndex(0, 1) == 0) {
            const auto n =
                static_cast<std::uint32_t>(pickIndex(2, 5));
            const double p =
                0.15 + 0.1 * static_cast<double>(pickIndex(1, 7));
            pool.push_back(core::fromDistribution(
                std::make_shared<random::Binomial>(n, p)));
        }
        else {
            const double lambda =
                0.25 * static_cast<double>(pickIndex(2, 5));
            pool.push_back(core::fromDistribution(
                std::make_shared<random::Poisson>(lambda)));
        }
    }

    auto pick = [&]() {
        return pool[pickIndex(0, pool.size() - 1)];
    };

    for (std::size_t i = 0; i < options.ops; ++i) {
        switch (pickIndex(0, 6)) {
          case 0:
            pool.push_back(pick() + pick());
            break;
          case 1:
            pool.push_back(pick() - pick());
            break;
          case 2:
            // Clamp products so repeated multiplication cannot leave
            // the exactly-representable integer range (values stay
            // <= 1e12 < 2^53 even before the clamp re-bounds them).
            pool.push_back(
                uncertain::clamp(pick() * pick(), -1.0e6, 1.0e6));
            break;
          case 3:
            pool.push_back(uncertain::min(pick(), pick()));
            break;
          case 4:
            pool.push_back(uncertain::max(pick(), pick()));
            break;
          case 5:
            pool.push_back(
                uncertain::select(pick() < pick(), pick(), pick()));
            break;
          case 6:
            // Point-mass mixing exercises constant folding.
            pool.push_back(pick()
                           + static_cast<double>(pickIndex(0, 3)));
            break;
        }
    }

    // Tie the tail of the pool together so late nodes (and their
    // shared subgraphs) are reachable from the root.
    Uncertain<double> root = pool.back();
    root = root + pick();
    return root;
}

} // namespace testing
} // namespace uncertain

#endif // UNCERTAIN_TESTS_SUPPORT_GRAPH_GEN_HPP
