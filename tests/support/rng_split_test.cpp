/**
 * @file
 * Deterministic stream splitting (Rng::split): the child-stream
 * family must be a pure function of (parent state, index), pairwise
 * statistically independent, and stable across platforms — the
 * properties the parallel sampling engine's bit-exactness guarantee
 * rests on. The independence checks follow the statistical-distance
 * discipline of the binomial-sampler-quality literature: chi-square
 * uniformity, cross-correlation, and autocorrelation of interleaved
 * streams.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "stats/autocorrelation.hpp"
#include "stat_assert.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

TEST(RngSplit, IsAPureFunctionOfStateAndIndex)
{
    Rng rng = testing::testRng(700);
    Rng a = rng.split(7);
    Rng b = rng.split(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngSplit, DoesNotAdvanceTheParent)
{
    Rng a = testing::testRng(701);
    Rng b = testing::testRng(701);
    for (std::uint64_t i = 0; i < 64; ++i)
        (void)a.split(i);
    // The parent stream is untouched by any number of splits.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngSplit, AdvanceChangesTheFamily)
{
    Rng rng = testing::testRng(702);
    Rng before = rng.split(0);
    rng.advance();
    Rng after = rng.split(0);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += before.nextU64() != after.nextU64() ? 1 : 0;
    EXPECT_GE(differing, 60);
}

TEST(RngSplit, AdjacentIndicesDiverge)
{
    Rng rng = testing::testRng(703);
    for (std::uint64_t index = 0; index < 8; ++index) {
        Rng a = rng.split(index);
        Rng b = rng.split(index + 1);
        int differing = 0;
        for (int i = 0; i < 64; ++i)
            differing += a.nextU64() != b.nextU64() ? 1 : 0;
        EXPECT_GE(differing, 60) << "indices " << index << ", "
                                 << index + 1;
    }
}

TEST(RngSplit, ChildStreamsDoNotOverlap)
{
    // 16 children x 1000 draws: every 64-bit output distinct. A
    // collision would mean two streams share a subsequence (or the
    // engine's quality collapsed); the birthday bound makes a chance
    // collision ~1e-11.
    Rng rng = testing::testRng(704);
    std::set<std::uint64_t> seen;
    const int kStreams = 16;
    const int kDraws = 1000;
    for (int s = 0; s < kStreams; ++s) {
        Rng child = rng.split(static_cast<std::uint64_t>(s));
        for (int i = 0; i < kDraws; ++i)
            EXPECT_TRUE(seen.insert(child.nextU64()).second)
                << "stream " << s << " draw " << i;
    }
}

TEST(RngSplit, ChildStreamsArePairwiseUncorrelated)
{
    Rng rng = testing::testRng(705);
    const int n = 20000;
    const int kStreams = 4;
    std::vector<std::vector<double>> streams(kStreams);
    for (int s = 0; s < kStreams; ++s) {
        Rng child = rng.split(static_cast<std::uint64_t>(s));
        streams[s].reserve(n);
        for (int i = 0; i < n; ++i)
            streams[s].push_back(child.nextDouble());
    }
    for (int a = 0; a < kStreams; ++a) {
        for (int b = a + 1; b < kStreams; ++b) {
            double sxy = 0.0, sx = 0.0, sy = 0.0;
            for (int i = 0; i < n; ++i) {
                sx += streams[a][i];
                sy += streams[b][i];
                sxy += streams[a][i] * streams[b][i];
            }
            double cov = sxy / n - (sx / n) * (sy / n);
            double corr = cov / (1.0 / 12.0); // Var U(0,1) = 1/12
            EXPECT_NEAR(corr, 0.0,
                        5.0 / std::sqrt(static_cast<double>(n)))
                << "streams " << a << ", " << b;
        }
    }
}

TEST(RngSplit, InterleavedStreamsShowNoAutocorrelation)
{
    // Round-robin interleaving of 8 children: any structural
    // relationship between the streams appears as autocorrelation at
    // lags that are multiples of the stream count.
    Rng rng = testing::testRng(706);
    const int kStreams = 8;
    const int kPerStream = 4000;
    std::vector<Rng> children;
    for (int s = 0; s < kStreams; ++s)
        children.push_back(rng.split(static_cast<std::uint64_t>(s)));
    std::vector<double> interleaved;
    interleaved.reserve(kStreams * kPerStream);
    for (int i = 0; i < kPerStream; ++i)
        for (int s = 0; s < kStreams; ++s)
            interleaved.push_back(children[s].nextDouble());
    for (std::size_t lag : {1u, 2u, 4u, 8u, 16u}) {
        double rho = stats::autocorrelation(interleaved, lag);
        EXPECT_NEAR(rho, 0.0,
                    5.0 / std::sqrt(static_cast<double>(
                              interleaved.size())))
            << "lag " << lag;
    }
}

TEST(RngSplit, ChildOutputIsUniformByChiSquare)
{
    Rng rng = testing::testRng(707);
    Rng child = rng.split(3);
    std::vector<std::size_t> counts(20, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<std::size_t>(child.nextDouble() * 20.0)];
    std::vector<double> expected(20, 1.0);
    EXPECT_TRUE(testing::chiSquareMatches(counts, expected, 1e-4));
}

TEST(RngSplit, PooledChildrenAreUniformByChiSquare)
{
    // The union of many short child prefixes — exactly the draws a
    // parallel batch consumes — must itself be uniform.
    Rng rng = testing::testRng(708);
    std::vector<std::size_t> counts(20, 0);
    const int kStreams = 512;
    const int kPerStream = 200;
    for (int s = 0; s < kStreams; ++s) {
        Rng child = rng.split(static_cast<std::uint64_t>(s));
        for (int i = 0; i < kPerStream; ++i)
            ++counts[static_cast<std::size_t>(child.nextDouble()
                                              * 20.0)];
    }
    std::vector<double> expected(20, 1.0);
    EXPECT_TRUE(testing::chiSquareMatches(counts, expected, 1e-4));
}

TEST(RngSplit, GoldenValuesAreStableAcrossPlatforms)
{
    // split() is pure fixed-width integer arithmetic, so these values
    // must hold on every platform and standard library. Regenerate
    // only if the derivation scheme itself changes (that breaks
    // recorded experiment reproducibility — bump a major version).
    Rng rng(0x5eedULL);

    Rng c0 = rng.split(0);
    EXPECT_EQ(c0.nextU64(), 0x0fd0490fab651cd0ULL);
    EXPECT_EQ(c0.nextU64(), 0xefbd82793edd0d56ULL);
    EXPECT_EQ(c0.nextU64(), 0x631d849558b980b5ULL);

    Rng c1 = rng.split(1);
    EXPECT_EQ(c1.nextU64(), 0x0a0f71ce45966da0ULL);
    EXPECT_EQ(c1.nextU64(), 0xccdb1527d1bae801ULL);

    Rng c41 = rng.split(41);
    EXPECT_EQ(c41.nextU64(), 0x4cefcf0a07000a91ULL);
    EXPECT_EQ(c41.nextU64(), 0x6e77b9c66c5704bbULL);

    rng.advance();
    EXPECT_EQ(rng.split(0).nextU64(), 0xe88066bf07a07ba8ULL);
}

} // namespace
} // namespace uncertain
