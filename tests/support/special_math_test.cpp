/** @file Special-function accuracy tests against known values. */

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace math {
namespace {

TEST(NormalCdf, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447460685429, 1e-10);
    EXPECT_NEAR(normalCdf(-1.0), 0.15865525393145705, 1e-10);
    EXPECT_NEAR(normalCdf(1.959963984540054), 0.975, 1e-9);
    EXPECT_NEAR(normalCdf(-6.0), 9.865876450377018e-10, 1e-14);
}

TEST(NormalPdf, KnownValues)
{
    EXPECT_NEAR(normalPdf(0.0), 0.3989422804014327, 1e-12);
    EXPECT_NEAR(normalPdf(1.0), 0.24197072451914337, 1e-12);
    EXPECT_NEAR(normalPdf(-2.0), normalPdf(2.0), 1e-15);
}

TEST(NormalQuantile, RoundTripsWithCdf)
{
    for (double p : {1e-6, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9,
                     0.975, 0.999, 1.0 - 1e-6}) {
        double x = normalQuantile(p);
        EXPECT_NEAR(normalCdf(x), p, 1e-9) << "p = " << p;
    }
}

TEST(NormalQuantile, KnownCriticalValues)
{
    EXPECT_NEAR(normalQuantile(0.975), 1.959963984540054, 1e-8);
    EXPECT_NEAR(normalQuantile(0.95), 1.6448536269514722, 1e-8);
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-10);
}

TEST(NormalQuantile, RejectsOutOfDomain)
{
    EXPECT_THROW(normalQuantile(0.0), Error);
    EXPECT_THROW(normalQuantile(1.0), Error);
    EXPECT_THROW(normalQuantile(-0.5), Error);
}

TEST(LogGamma, MatchesFactorials)
{
    EXPECT_NEAR(logGamma(1.0), 0.0, 1e-12);
    EXPECT_NEAR(logGamma(2.0), 0.0, 1e-12);
    EXPECT_NEAR(logGamma(5.0), std::log(24.0), 1e-10);
    EXPECT_NEAR(logGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(RegularizedGamma, BoundaryBehaviour)
{
    EXPECT_DOUBLE_EQ(regularizedGammaP(2.0, 0.0), 0.0);
    EXPECT_NEAR(regularizedGammaP(1.0, 1e9), 1.0, 1e-12);
    EXPECT_NEAR(regularizedGammaP(3.0, 2.0)
                    + regularizedGammaQ(3.0, 2.0),
                1.0, 1e-12);
}

TEST(RegularizedGamma, ExponentialSpecialCase)
{
    // P(1, x) = 1 - e^{-x}.
    for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
        EXPECT_NEAR(regularizedGammaP(1.0, x), 1.0 - std::exp(-x),
                    1e-10)
            << "x = " << x;
    }
}

TEST(RegularizedBeta, SymmetryAndUniformCase)
{
    // I_x(1, 1) = x (uniform CDF).
    for (double x : {0.0, 0.25, 0.5, 0.75, 1.0})
        EXPECT_NEAR(regularizedBeta(x, 1.0, 1.0), x, 1e-10);
    // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
    EXPECT_NEAR(regularizedBeta(0.3, 2.0, 5.0),
                1.0 - regularizedBeta(0.7, 5.0, 2.0), 1e-10);
}

TEST(RegularizedBeta, KnownValue)
{
    // I_{0.5}(2, 2) = 0.5 by symmetry of Beta(2, 2).
    EXPECT_NEAR(regularizedBeta(0.5, 2.0, 2.0), 0.5, 1e-10);
    // Beta(1, 2) cdf is 1 - (1-x)^2.
    EXPECT_NEAR(regularizedBeta(0.25, 1.0, 2.0),
                1.0 - 0.75 * 0.75, 1e-10);
}

TEST(ChiSquareCdf, KnownCriticalValues)
{
    // 95th percentile of chi2(1) is 3.841...
    EXPECT_NEAR(chiSquareCdf(3.841458820694124, 1.0), 0.95, 1e-8);
    // chi2(2) is Exponential(1/2).
    EXPECT_NEAR(chiSquareCdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-10);
    EXPECT_DOUBLE_EQ(chiSquareCdf(-1.0, 3.0), 0.0);
}

TEST(StudentTCdf, MatchesKnownValues)
{
    EXPECT_NEAR(studentTCdf(0.0, 5.0), 0.5, 1e-12);
    // t(1) is Cauchy: CDF(1) = 3/4.
    EXPECT_NEAR(studentTCdf(1.0, 1.0), 0.75, 1e-9);
    // 97.5th percentile of t(10) is 2.228...
    EXPECT_NEAR(studentTCdf(2.2281388519649385, 10.0), 0.975, 1e-8);
    // Symmetry.
    EXPECT_NEAR(studentTCdf(-1.3, 7.0) + studentTCdf(1.3, 7.0), 1.0,
                1e-10);
}

TEST(StudentTCdf, ApproachesNormalForLargeNu)
{
    EXPECT_NEAR(studentTCdf(1.0, 1e6), normalCdf(1.0), 1e-5);
}

} // namespace
} // namespace math
} // namespace uncertain
