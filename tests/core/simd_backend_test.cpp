/**
 * @file
 * Acceptance suite for the SIMD execution backend (core/simd_kernels
 * + the PlanOptions::backend axis). The backend's contract is strict:
 * vectorization is a pure speed transform, never a semantic one, so
 * almost every test here asserts BIT identity, not statistical
 * closeness. Pillars:
 *
 *  1. Kernel parity — every lane-pack kernel, invoked with every Isa
 *     the dispatcher knows about, reproduces the scalar emulation bit
 *     for bit, including NaN propagation, signed zeros, infinities
 *     and odd tail lengths (kernels clamp unsupported Isas, so
 *     passing all of them is safe on any host).
 *  2. Broadcast-constant forms — binaryF64ConstB/ConstA equal the
 *     column kernel over a splatted column for every op.
 *  3. RNG fills — the leapfrogged xoshiro fills retrace the exact
 *     serial orbit: same outputs, same final engine state, same
 *     double mapping as Rng::nextDouble.
 *  4. Ziggurat — Gaussian::sampleMany under the vector accept pass is
 *     bit-identical to the forced-scalar path.
 *  5. Plan equivalence — all 16 optimizer toggle combinations x
 *     {Auto, Jit, Simd, Scalar} backends produce identical sample
 *     streams, and PlanStats/exec counters report the backend
 *     truthfully. The JIT rung gets its own parity tests (IEEE edge
 *     cases, odd tails, forced fallback, fragment-cache races) since
 *     it emits machine code instead of calling kernels.
 *  6. Law conformance — KS and TV-certification entries for the
 *     SIMD-backed ziggurat and an optimized-plan root column
 *     (SimdBackendStatistical.* / SimdBackendCertification.* run in
 *     the statistical and certification CTest shards).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/core.hpp"
#include "core/inspect.hpp"
#include "core/jit/jit_compiler.hpp"
#include "core/simd.hpp"
#include "core/simd_kernels.hpp"
#include "random/gaussian.hpp"
#include "random/rayleigh.hpp"
#include "stats/certify.hpp"
#include "support/rng.hpp"

#include "certify/certify_test_util.hpp"
#include "stat_assert.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

/** RAII for the process-wide force-scalar switch. */
class ForceScalarGuard
{
  public:
    explicit ForceScalarGuard(bool force) : prev_(simd::forceScalar())
    {
        simd::setForceScalar(force);
    }
    ~ForceScalarGuard() { simd::setForceScalar(prev_); }

  private:
    bool prev_;
};

/** RAII for the process-wide JIT kill switch. */
class ForceJitOffGuard
{
  public:
    explicit ForceJitOffGuard(bool off) : prev_(jit::forceDisabled())
    {
        jit::setForceDisabled(off);
    }
    ~ForceJitOffGuard() { jit::setForceDisabled(prev_); }

  private:
    bool prev_;
};

/** Every Isa the dispatcher knows; kernels clamp unsupported ones. */
constexpr simd::Isa kIsas[] = {simd::Isa::Scalar, simd::Isa::Sse2,
                               simd::Isa::Avx2, simd::Isa::Neon};

/** Lengths covering sub-pack, pack-aligned and unrolled+tail cases. */
constexpr std::size_t kLengths[] = {1, 2, 3, 4, 7, 8, 15, 16,
                                    17, 31, 64, 100};

/** Deterministic f64 operands seasoned with every IEEE edge case. */
std::vector<double>
edgeCaseDoubles(std::size_t n, std::uint64_t seed)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double edges[] = {0.0,   -0.0, 1.0,    -1.0, inf,
                            -inf,  nan,  1e-308, -2.5, 1e17};
    Rng rng = testing::testRng(seed);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Mostly ordinary values, every 5th an edge case, so compare
        // predicates see both true and false lanes next to NaNs.
        out[i] = (i % 5 == 0) ? edges[rng.nextU64() % 10]
                              : rng.nextDouble() * 20.0 - 10.0;
    }
    return out;
}

bool
bitIdentical(const std::vector<double>& a, const std::vector<double>& b)
{
    return a.size() == b.size()
           && (a.empty()
               || std::memcmp(a.data(), b.data(),
                              a.size() * sizeof(double)) == 0);
}

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

Uncertain<double>
rayleighLeaf(double rho)
{
    return fromDistribution(std::make_shared<random::Rayleigh>(rho));
}

/**
 * A strip-heavy graph exercising the whole kernel surface: fused f64
 * chains with point-mass operands (the broadcast-constant micro-ops),
 * a shared leaf (CSE), negation, division, and a comparison/select
 * through the conditional operators.
 */
Uncertain<double>
stripHeavyGraph()
{
    auto x = gaussianLeaf(0.0, 1.0);
    auto y = rayleighLeaf(1.63);
    auto chain = ((x * 1.0101 + 0.25) * 0.5 - 1.5) / 0.75;
    auto shared = (y + x) + x;
    return chain + shared * 0.125 - (-y);
}

PlanOptions
toggleCombo(unsigned mask, simd::ExecBackend backend)
{
    PlanOptions options;
    options.cse = (mask & 1u) != 0;
    options.constantFolding = (mask & 2u) != 0;
    options.fuseElementwise = (mask & 4u) != 0;
    options.reuseBuffers = (mask & 8u) != 0;
    options.backend = backend;
    return options;
}

std::vector<double>
planSamples(const Uncertain<double>& expr, const PlanOptions& options,
            std::size_t n, std::uint64_t seed,
            std::size_t blockSize = 1024)
{
    Rng rng = testing::testRng(seed);
    BatchSampler sampler(BatchOptions{blockSize, options});
    return expr.takeSamples(n, rng, sampler);
}

// ---- 1. lane-pack kernel parity -------------------------------------

TEST(SimdBackend, IsaIntrospectionIsConsistent)
{
    EXPECT_EQ(simd::laneWidth(simd::Isa::Scalar), 1u);
    EXPECT_GE(simd::laneWidth(simd::compiledIsa()), 1u);
    EXPECT_STREQ(simd::isaName(simd::Isa::Scalar), "scalar");
    EXPECT_STREQ(simd::isaName(simd::Isa::Avx2), "avx2");

    // activeIsa is min(compiled, detected) unless forced scalar.
    ForceScalarGuard off(false);
    EXPECT_LE(static_cast<int>(simd::activeIsa()),
              static_cast<int>(simd::compiledIsa()));
    {
        ForceScalarGuard on(true);
        EXPECT_EQ(simd::activeIsa(), simd::Isa::Scalar);
        EXPECT_TRUE(simd::forceScalar());
    }
    EXPECT_FALSE(simd::forceScalar());
}

TEST(SimdBackend, BinaryF64MatchesScalarAcrossIsas)
{
    const simd::BinF64 ops[] = {simd::BinF64::Add, simd::BinF64::Sub,
                                simd::BinF64::Mul, simd::BinF64::Div,
                                simd::BinF64::Min, simd::BinF64::Max};
    for (std::size_t n : kLengths) {
        const auto a = edgeCaseDoubles(n, 11);
        const auto b = edgeCaseDoubles(n, 12);
        for (auto op : ops) {
            std::vector<double> ref(n);
            simd::binaryF64(simd::Isa::Scalar, op, a.data(), b.data(),
                            ref.data(), n);
            for (auto isa : kIsas) {
                std::vector<double> out(n, -777.0);
                simd::binaryF64(isa, op, a.data(), b.data(),
                                out.data(), n);
                EXPECT_TRUE(bitIdentical(ref, out))
                    << "op " << static_cast<int>(op) << " isa "
                    << simd::isaName(isa) << " n " << n;
            }
        }
    }
}

TEST(SimdBackend, ConstBroadcastFormsMatchColumnKernel)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double consts[] = {1.0101, -0.0, 0.25, nan,
                             std::numeric_limits<double>::infinity()};
    const simd::BinF64 ops[] = {simd::BinF64::Add, simd::BinF64::Sub,
                                simd::BinF64::Mul, simd::BinF64::Div,
                                simd::BinF64::Min, simd::BinF64::Max};
    for (std::size_t n : kLengths) {
        const auto col = edgeCaseDoubles(n, 21);
        for (double c : consts) {
            const std::vector<double> splat(n, c);
            for (auto op : ops) {
                std::vector<double> refB(n);
                simd::binaryF64(simd::Isa::Scalar, op, col.data(),
                                splat.data(), refB.data(), n);
                std::vector<double> refA(n);
                simd::binaryF64(simd::Isa::Scalar, op, splat.data(),
                                col.data(), refA.data(), n);
                for (auto isa : kIsas) {
                    std::vector<double> outB(n, -777.0);
                    simd::binaryF64ConstB(isa, op, col.data(), c,
                                          outB.data(), n);
                    EXPECT_TRUE(bitIdentical(refB, outB))
                        << "ConstB op " << static_cast<int>(op)
                        << " isa " << simd::isaName(isa) << " n " << n;
                    std::vector<double> outA(n, -777.0);
                    simd::binaryF64ConstA(isa, op, c, col.data(),
                                          outA.data(), n);
                    EXPECT_TRUE(bitIdentical(refA, outA))
                        << "ConstA op " << static_cast<int>(op)
                        << " isa " << simd::isaName(isa) << " n " << n;
                }
            }
        }
    }
}

TEST(SimdBackend, CompareF64MatchesScalarAcrossIsas)
{
    const simd::Cmp ops[] = {simd::Cmp::Lt, simd::Cmp::Gt,
                             simd::Cmp::Le, simd::Cmp::Ge,
                             simd::Cmp::Eq, simd::Cmp::Ne};
    for (std::size_t n : kLengths) {
        auto a = edgeCaseDoubles(n, 31);
        auto b = edgeCaseDoubles(n, 32);
        // Force some equal lanes so Eq/Le/Ge see true cases.
        for (std::size_t i = 0; i < n; i += 3)
            b[i] = a[i];
        for (auto op : ops) {
            std::vector<std::uint8_t> ref(n);
            simd::compareF64(simd::Isa::Scalar, op, a.data(), b.data(),
                             ref.data(), n);
            for (auto isa : kIsas) {
                std::vector<std::uint8_t> out(n, 0xCC);
                simd::compareF64(isa, op, a.data(), b.data(),
                                 out.data(), n);
                EXPECT_EQ(ref, out)
                    << "cmp " << static_cast<int>(op) << " isa "
                    << simd::isaName(isa) << " n " << n;
            }
        }
    }
}

TEST(SimdBackend, IntegerAndBoolKernelsMatchScalarAcrossIsas)
{
    for (std::size_t n : kLengths) {
        Rng rng = testing::testRng(41);
        std::vector<std::int32_t> a32(n), b32(n);
        std::vector<std::int64_t> a64(n), b64(n);
        std::vector<std::uint8_t> ab(n), bb(n);
        for (std::size_t i = 0; i < n; ++i) {
            a32[i] = static_cast<std::int32_t>(rng.nextU64());
            b32[i] = static_cast<std::int32_t>(rng.nextU64());
            a64[i] = static_cast<std::int64_t>(rng.nextU64());
            b64[i] = static_cast<std::int64_t>(rng.nextU64());
            ab[i] = static_cast<std::uint8_t>(rng.nextU64() & 1u);
            bb[i] = static_cast<std::uint8_t>(rng.nextU64() & 1u);
            if (i % 3 == 0) // equal lanes for the compare predicates
                b32[i] = a32[i];
        }

        const simd::BinI32 i32Ops[] = {
            simd::BinI32::Add, simd::BinI32::Sub, simd::BinI32::Mul,
            simd::BinI32::Min, simd::BinI32::Max};
        for (auto op : i32Ops) {
            std::vector<std::int32_t> ref(n), out(n, -7);
            simd::binaryI32(simd::Isa::Scalar, op, a32.data(),
                            b32.data(), ref.data(), n);
            for (auto isa : kIsas) {
                simd::binaryI32(isa, op, a32.data(), b32.data(),
                                out.data(), n);
                EXPECT_EQ(ref, out) << "i32 op " << static_cast<int>(op)
                                    << " isa " << simd::isaName(isa);
            }
        }

        const simd::Cmp cmpOps[] = {simd::Cmp::Lt, simd::Cmp::Gt,
                                    simd::Cmp::Le, simd::Cmp::Ge,
                                    simd::Cmp::Eq, simd::Cmp::Ne};
        for (auto op : cmpOps) {
            std::vector<std::uint8_t> ref(n), out(n, 0xCC);
            simd::compareI32(simd::Isa::Scalar, op, a32.data(),
                             b32.data(), ref.data(), n);
            for (auto isa : kIsas) {
                simd::compareI32(isa, op, a32.data(), b32.data(),
                                 out.data(), n);
                EXPECT_EQ(ref, out)
                    << "i32 cmp " << static_cast<int>(op) << " isa "
                    << simd::isaName(isa);
            }
        }

        const simd::BinI64 i64Ops[] = {simd::BinI64::Add,
                                       simd::BinI64::Sub};
        for (auto op : i64Ops) {
            std::vector<std::int64_t> ref(n), out(n, -7);
            simd::binaryI64(simd::Isa::Scalar, op, a64.data(),
                            b64.data(), ref.data(), n);
            for (auto isa : kIsas) {
                simd::binaryI64(isa, op, a64.data(), b64.data(),
                                out.data(), n);
                EXPECT_EQ(ref, out) << "i64 op " << static_cast<int>(op)
                                    << " isa " << simd::isaName(isa);
            }
        }

        const simd::BoolOp boolOps[] = {simd::BoolOp::And,
                                        simd::BoolOp::Or};
        for (auto op : boolOps) {
            std::vector<std::uint8_t> ref(n), out(n, 0xCC);
            simd::boolBinary(simd::Isa::Scalar, op, ab.data(),
                             bb.data(), ref.data(), n);
            for (auto isa : kIsas) {
                simd::boolBinary(isa, op, ab.data(), bb.data(),
                                 out.data(), n);
                EXPECT_EQ(ref, out)
                    << "bool op " << static_cast<int>(op) << " isa "
                    << simd::isaName(isa);
            }
        }
        {
            std::vector<std::uint8_t> ref(n), out(n, 0xCC);
            simd::boolNot(simd::Isa::Scalar, ab.data(), ref.data(), n);
            for (auto isa : kIsas) {
                simd::boolNot(isa, ab.data(), out.data(), n);
                EXPECT_EQ(ref, out) << "boolNot " << simd::isaName(isa);
            }
        }
    }
}

TEST(SimdBackend, NegAndSelectMatchScalarAcrossIsas)
{
    for (std::size_t n : kLengths) {
        const auto x = edgeCaseDoubles(n, 51);
        const auto y = edgeCaseDoubles(n, 52);
        Rng rng = testing::testRng(53);
        std::vector<std::uint8_t> c(n);
        for (auto& v : c)
            v = static_cast<std::uint8_t>(rng.nextU64() & 1u);

        std::vector<double> refNeg(n);
        simd::negF64(simd::Isa::Scalar, x.data(), refNeg.data(), n);
        std::vector<double> refSel(n);
        simd::selectF64(simd::Isa::Scalar, c.data(), x.data(),
                        y.data(), refSel.data(), n);
        for (auto isa : kIsas) {
            std::vector<double> outNeg(n, -777.0), outSel(n, -777.0);
            simd::negF64(isa, x.data(), outNeg.data(), n);
            simd::selectF64(isa, c.data(), x.data(), y.data(),
                            outSel.data(), n);
            EXPECT_TRUE(bitIdentical(refNeg, outNeg))
                << "neg " << simd::isaName(isa) << " n " << n;
            EXPECT_TRUE(bitIdentical(refSel, outSel))
                << "select " << simd::isaName(isa) << " n " << n;
        }
    }
}

// ---- 3. RNG fills ----------------------------------------------------

TEST(SimdBackend, XoshiroFillU64RetracesTheSerialOrbit)
{
    const std::uint64_t seed = 0xFEEDFACE12345678ull;
    for (std::size_t n : {std::size_t{1}, std::size_t{3},
                          std::size_t{4}, std::size_t{17},
                          std::size_t{256}, std::size_t{1001}}) {
        // The serial orbit: a plain next() loop plus the final state.
        Xoshiro256StarStar engine(seed);
        std::vector<std::uint64_t> ref(n);
        for (auto& w : ref)
            w = engine.next();
        const std::array<std::uint64_t, 4> refState = engine.state();

        for (auto isa : kIsas) {
            Xoshiro256StarStar twin(seed);
            std::array<std::uint64_t, 4> state = twin.state();
            std::vector<std::uint64_t> out(n, 0xDEADull);
            simd::xoshiroFillU64(isa, state.data(), out.data(), n);
            EXPECT_EQ(ref, out)
                << "fill " << simd::isaName(isa) << " n " << n;
            EXPECT_EQ(refState, state)
                << "state " << simd::isaName(isa) << " n " << n;
        }
    }
}

TEST(SimdBackend, XoshiroFillDoubleMatchesRngMapping)
{
    // Rng(seed) wraps Xoshiro256StarStar(seed), so an engine with the
    // same seed starts in the exact state the facade draws from.
    const std::uint64_t seed = 97;
    const std::size_t n = 513; // odd: exercises the vector tail
    for (bool open : {false, true}) {
        Rng rng(seed);
        std::vector<double> ref(n);
        for (auto& v : ref)
            v = open ? rng.nextDoubleOpen() : rng.nextDouble();

        // The kernel, at every Isa, over the raw engine state.
        for (auto isa : kIsas) {
            Xoshiro256StarStar twin(seed);
            std::array<std::uint64_t, 4> state = twin.state();
            std::vector<double> out(n, -777.0);
            simd::xoshiroFillDouble(isa, state.data(), out.data(), n,
                                    open);
            EXPECT_TRUE(bitIdentical(ref, out))
                << "fillDouble " << simd::isaName(isa) << " open="
                << open;
        }

        // The Rng facade's bulk fill, forced-scalar and not.
        for (bool force : {false, true}) {
            ForceScalarGuard guard(force);
            Rng fresh(seed);
            std::vector<double> viaRng(n, -777.0);
            if (open)
                fresh.fillDoubleOpen(viaRng.data(), n);
            else
                fresh.fillDouble(viaRng.data(), n);
            EXPECT_TRUE(bitIdentical(ref, viaRng))
                << "Rng fill open=" << open << " force-scalar="
                << force;
        }
    }
}

TEST(SimdBackend, RngBulkFillsMatchScalarDraws)
{
    const std::size_t n = 777;
    Rng a = testing::testRng(61);
    Rng b = testing::testRng(61);
    std::vector<std::uint64_t> filled(n);
    a.fillU64(filled.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(filled[i], b.nextU64()) << "word " << i;
    // Post-fill the streams stay in lockstep.
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

// ---- 4. ziggurat -----------------------------------------------------

TEST(SimdBackend, GaussianSampleManyBitIdenticalToForcedScalar)
{
    random::Gaussian dist(-1.5, 2.25);
    const std::size_t n = 40000; // enough to hit tail/wedge rejects
    std::vector<double> vec(n), scal(n);
    {
        ForceScalarGuard guard(false);
        Rng rng = testing::testRng(71);
        dist.sampleMany(rng, vec.data(), n);
    }
    {
        ForceScalarGuard guard(true);
        Rng rng = testing::testRng(71);
        dist.sampleMany(rng, scal.data(), n);
    }
    EXPECT_TRUE(bitIdentical(vec, scal));
}

// ---- 5. plan equivalence and observability ---------------------------

TEST(SimdBackend, PlanOutputsBitIdenticalAcrossBackendsAndToggles)
{
    auto expr = stripHeavyGraph();
    const std::size_t n = 6000;
    const std::uint64_t seed = 81;

    // Reference: everything off, scalar interpreter — the literal
    // transcription semantics every configuration must reproduce.
    const auto ref = planSamples(expr, PlanOptions::disabled(), n,
                                 seed);
    const simd::ExecBackend backends[] = {simd::ExecBackend::Auto,
                                          simd::ExecBackend::Jit,
                                          simd::ExecBackend::Simd,
                                          simd::ExecBackend::Scalar};
    for (unsigned mask = 0; mask < 16; ++mask) {
        for (auto backend : backends) {
            auto samples = planSamples(
                expr, toggleCombo(mask, backend), n, seed);
            EXPECT_TRUE(bitIdentical(ref, samples))
                << "toggle mask " << mask << " backend "
                << simd::backendName(backend);
        }
    }
}

TEST(SimdBackend, AutoBackendFallsBackUnderForceScalar)
{
    auto expr = stripHeavyGraph();
    PlanOptions options; // Auto backend, all passes on
    {
        ForceScalarGuard guard(true);
        auto stats = planStats(expr, options);
        EXPECT_FALSE(stats.simdStrips);
        EXPECT_STREQ(stats.isa, "scalar");
        EXPECT_EQ(stats.laneWidth, 1u);
        EXPECT_EQ(stats.simdStripOps, 0u);
    }
    {
        ForceScalarGuard guard(false);
        auto stats = planStats(expr, options);
        if (simd::activeIsa() != simd::Isa::Scalar) {
            EXPECT_TRUE(stats.simdStrips);
            EXPECT_GE(stats.laneWidth, 2u);
            EXPECT_GT(stats.simdStripOps, 0u);
        } else {
            EXPECT_FALSE(stats.simdStrips);
        }
    }
}

TEST(SimdBackend, PlanStatsReportTheRequestedBackend)
{
    auto expr = stripHeavyGraph();

    PlanOptions scalar;
    scalar.backend = simd::ExecBackend::Scalar;
    auto scalarStats = planStats(expr, scalar);
    EXPECT_EQ(scalarStats.backendRequested, simd::ExecBackend::Scalar);
    EXPECT_FALSE(scalarStats.simdStrips);
    EXPECT_EQ(scalarStats.simdStripOps, 0u);
    EXPECT_GT(scalarStats.scalarStripOps, 0u);
    EXPECT_NE(scalarStats.toString().find("backend scalar"),
              std::string::npos);

    PlanOptions forced;
    forced.backend = simd::ExecBackend::Simd;
    auto simdStats = planStats(expr, forced);
    EXPECT_EQ(simdStats.backendRequested, simd::ExecBackend::Simd);
    // Simd is forced even on a scalar-only host: the kernels emulate.
    EXPECT_TRUE(simdStats.simdStrips);
    EXPECT_GT(simdStats.simdStripOps, 0u);
    EXPECT_NE(simdStats.toString().find("backend simd"),
              std::string::npos);
}

TEST(SimdBackend, ExecCountersObserveVectorStrips)
{
    auto expr = stripHeavyGraph();
    const std::size_t n = 4096;

    PlanOptions forced;
    forced.backend = simd::ExecBackend::Simd;
    BatchSampler simdSampler(BatchOptions{1024, forced});
    Rng rngA = testing::testRng(91);
    (void)expr.takeSamples(n, rngA, simdSampler);
    auto simdExec = planExecCounters(expr, simdSampler);
    EXPECT_GT(simdExec.blocksExecuted, 0u);
    EXPECT_GT(simdExec.stripsExecuted, 0u);
    EXPECT_GT(simdExec.simdStripsExecuted, 0u);

    PlanOptions scalar;
    scalar.backend = simd::ExecBackend::Scalar;
    BatchSampler scalarSampler(BatchOptions{1024, scalar});
    Rng rngB = testing::testRng(91);
    (void)expr.takeSamples(n, rngB, scalarSampler);
    auto scalarExec = planExecCounters(expr, scalarSampler);
    EXPECT_GT(scalarExec.stripsExecuted, 0u);
    EXPECT_EQ(scalarExec.simdStripsExecuted, 0u);
    // Explicit Simd/Scalar requests never route through fragments.
    EXPECT_EQ(simdExec.jitStripsExecuted, 0u);
    EXPECT_EQ(scalarExec.jitStripsExecuted, 0u);
}

// ---- 5b. the JIT rung ------------------------------------------------

/**
 * A graph that pushes every IEEE edge case through the emitter's whole
 * op surface: ±inf and ±0 products, NaN-poisoned lanes, NaN-aware
 * min/max blends, a comparison against NaN (always false) feeding a
 * select, and a division whose operand lanes hit inf/inf and 0/0.
 */
Uncertain<double>
ieeeEdgeGraph()
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    auto x = gaussianLeaf(0.0, 1.0);
    auto y = rayleighLeaf(0.8);
    auto signedZeros = x * 0.0;   // ±0 tracking sign(x)
    auto signedInfs = x * inf;    // ±inf, NaN at x == ±0
    auto poisoned = x + nan;      // NaN every lane
    auto blended = min(signedInfs, y) + max(poisoned, signedZeros);
    auto chosen = select(x < nan, poisoned, y); // NaN compare: false
    return blended + chosen / signedInfs;       // inf/inf, 0/0 lanes
}

TEST(SimdBackend, JitPlanHandlesIeeeEdgeCasesAndOddTails)
{
    auto expr = ieeeEdgeGraph();
    // 2017 % 1024 = 993 = 3 full strips + a 225-element tail, so the
    // fragment's full-strip path and the fallback tail path both run
    // and must agree with the interpreter bit for bit (NaN payloads
    // included — bitIdentical, not ==).
    const std::size_t n = 2017;
    const std::uint64_t seed = 83;
    const auto ref = planSamples(expr, PlanOptions::disabled(), n,
                                 seed);
    PlanOptions jitOpt;
    jitOpt.backend = simd::ExecBackend::Jit;
    EXPECT_TRUE(bitIdentical(ref, planSamples(expr, jitOpt, n, seed)));
    for (unsigned mask = 0; mask < 16; ++mask) {
        auto samples = planSamples(
            expr, toggleCombo(mask, simd::ExecBackend::Jit), n, seed);
        EXPECT_TRUE(bitIdentical(ref, samples)) << "toggle " << mask;
    }
}

TEST(SimdBackend, JitBackendReportsStatsAndCounters)
{
    auto expr = stripHeavyGraph();
    PlanOptions options;
    options.backend = simd::ExecBackend::Jit;
    auto stats = planStats(expr, options);
    EXPECT_EQ(stats.backendRequested, simd::ExecBackend::Jit);
    EXPECT_NE(stats.toString().find("backend jit"), std::string::npos);
    if (!jit::available()) {
        EXPECT_FALSE(stats.jitStrips);
        EXPECT_EQ(stats.jitFragments, 0u);
        return;
    }
    EXPECT_TRUE(stats.jitStrips);
    EXPECT_GT(stats.jitStripOps, 0u);
    EXPECT_GT(stats.jitFragments, 0u);
    EXPECT_GT(stats.jitCodeBytes, 0u);
    EXPECT_NE(stats.toString().find("-> jit"), std::string::npos);
    EXPECT_NE(stats.toString().find(" fragments "), std::string::npos);

    BatchSampler sampler(BatchOptions{1024, options});
    Rng rng = testing::testRng(92);
    (void)expr.takeSamples(4096, rng, sampler);
    auto exec = planExecCounters(expr, sampler);
    EXPECT_GT(exec.jitStripsExecuted, 0u);
    EXPECT_LE(exec.jitStripsExecuted, exec.stripsExecuted);
}

TEST(SimdBackend, JitForcedFallbackLandsOnSimd)
{
    auto expr = stripHeavyGraph();
    const std::size_t n = 3000;
    const std::uint64_t seed = 82;
    const auto ref = planSamples(expr, PlanOptions::disabled(), n,
                                 seed);

    ForceJitOffGuard off(true);
    EXPECT_FALSE(jit::available());

    // An explicit Jit request downgrades to the SIMD strips; the
    // request is still recorded so the report shows the downgrade
    // ("backend jit -> simd").
    PlanOptions options;
    options.backend = simd::ExecBackend::Jit;
    auto stats = planStats(expr, options);
    EXPECT_EQ(stats.backendRequested, simd::ExecBackend::Jit);
    EXPECT_FALSE(stats.jitStrips);
    EXPECT_EQ(stats.jitFragments, 0u);
    EXPECT_TRUE(stats.simdStrips);
    EXPECT_GT(stats.simdStripOps, 0u);
    EXPECT_NE(stats.toString().find("backend jit -> simd"),
              std::string::npos);
    EXPECT_TRUE(bitIdentical(ref, planSamples(expr, options, n, seed)));

    // Auto likewise skips the fragment rung while the switch is off.
    auto autoStats = planStats(expr, PlanOptions{});
    EXPECT_FALSE(autoStats.jitStrips);
}

TEST(SimdBackend, JitRefusesUnsupportedIntOpsAndFallsBack)
{
    // int32 deliberately has no JIT lowering (core/jit/jit_form.hpp),
    // so this fused i32 chain must refuse and fall back to the SIMD
    // strips — bit-for-bit against the scalar backend.
    auto die = Uncertain<int>::fromSampler(
        [](Rng& rng) { return static_cast<int>(rng.nextBelow(6)) + 1; },
        "d6");
    auto expr = die * Uncertain<int>(3) + die;

    PlanOptions jitOpt;
    jitOpt.backend = simd::ExecBackend::Jit;
    auto stats = BatchPlan::compile(expr.node(), jitOpt)->stats();
    EXPECT_FALSE(stats.jitStrips);
    EXPECT_EQ(stats.jitFragments, 0u);

    PlanOptions scalarOpt;
    scalarOpt.backend = simd::ExecBackend::Scalar;
    Rng rngA = testing::testRng(84);
    Rng rngB = testing::testRng(84);
    BatchSampler jitSampler(BatchOptions{1024, jitOpt});
    BatchSampler scalarSampler(BatchOptions{1024, scalarOpt});
    EXPECT_EQ(expr.takeSamples(4000, rngA, jitSampler),
              expr.takeSamples(4000, rngB, scalarSampler));
}

TEST(SimdBackend, JitFragmentCacheSharedAcrossPlansAndThreads)
{
    if (!jit::available())
        GTEST_SKIP() << "plan-level JIT unavailable on this host";
    jit::clearFragmentCache();

    // Distinct graphs with identical shape: every thread compiles its
    // own plan, but the strip signatures coincide, so the process-wide
    // fragment cache is hit concurrently — the TSan shard runs this
    // test to certify the cache locking.
    PlanOptions options;
    options.backend = simd::ExecBackend::Jit;
    const std::size_t n = 2048;
    const std::uint64_t seed = 86;
    const auto ref = planSamples(stripHeavyGraph(), options, n, seed);

    constexpr int kThreads = 4;
    std::vector<std::vector<double>> out(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&out, &options, t] {
            out[t] = planSamples(stripHeavyGraph(), options, 2048, 86);
        });
    for (auto& th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_TRUE(bitIdentical(ref, out[t])) << "thread " << t;

    auto frag = jit::fragmentCacheStats();
    EXPECT_GT(frag.size, 0u);
    EXPECT_GT(frag.hits, 0u); // same-shape plans shared compiled code
}

// ---- 6. law conformance ----------------------------------------------

TEST(SimdBackendStatistical, FusedAffineChainFollowsTheAnalyticLaw)
{
    // x ~ N(1, 2); ((x * 3 + 1) - 0.5) * 0.25 ~ N(0.875, 1.5). The
    // chain's point-mass operands ride the broadcast-constant
    // micro-ops under the SIMD backend.
    auto expr = ((gaussianLeaf(1.0, 2.0) * 3.0 + 1.0) - 0.5) * 0.25;
    PlanOptions options;
    options.backend = simd::ExecBackend::Simd;
    auto samples = planSamples(expr, options, 30000, 101);
    random::Gaussian truth(0.875, 1.5);
    EXPECT_TRUE(testing::ksMatchesDistribution(samples, truth));
    EXPECT_TRUE(testing::momentsMatch(samples, 0.875, 1.5));
}

TEST(SimdBackendStatistical, ZigguratSampleManyMatchesTheLaw)
{
    // No force-scalar here: on hosts with a vector unit this runs the
    // vector accept pass; elsewhere it degrades to the scalar layer.
    random::Gaussian dist(0.5, 1.75);
    const std::size_t n = 50000;
    std::vector<double> samples(n);
    Rng rng = testing::testRng(103);
    dist.sampleMany(rng, samples.data(), n);
    EXPECT_TRUE(testing::ksMatchesDistribution(samples, dist));
    EXPECT_TRUE(testing::momentsMatch(samples, 0.5, 1.75));
}

TEST(SimdBackendCertification, ZigguratVectorAcceptCertified)
{
    auto dist = std::make_shared<random::Gaussian>(-2.0, 0.8);
    Rng rng = testing::testRng(111);
    auto result = stats::certifyContinuous(
        "gaussian-ziggurat-simd", stats::bulkSampler(dist), *dist, rng,
        testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(result));
}

TEST(SimdBackendCertification, OptimizedPlanRootColumnCertified)
{
    // Root column of a fully optimized SIMD-backed plan; the affine
    // chain keeps the root law closed-form.
    auto expr = (gaussianLeaf(0.0, 1.0) * 1.25 - 0.5) * 0.8 + 2.0;
    random::Gaussian truth(1.6, 1.0);

    PlanOptions options;
    options.backend = simd::ExecBackend::Simd;
    auto sampler = [expr, options](Rng& rng, double* out,
                                   std::size_t n) {
        BatchSampler batch(BatchOptions{8192, options});
        auto samples = expr.takeSamples(n, rng, batch);
        std::copy(samples.begin(), samples.end(), out);
    };
    Rng rng = testing::testRng(113);
    auto result = stats::certifyContinuous(
        "batch-plan-root-simd", sampler, truth, rng,
        testing::certifyOptions());
    EXPECT_TRUE(testing::certifiedPass(result));
}

} // namespace
} // namespace core
} // namespace uncertain
