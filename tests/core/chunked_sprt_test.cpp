/**
 * @file
 * Edge-case coverage for chunk-wise SPRT evaluation
 * (core/conditional.hpp evaluateConditionChunked). The chunk sampler
 * here is scripted — a pure function of the absolute sample index —
 * so each test controls the exact observation sequence and can check
 * the contract precisely: decisions and samplesUsed match a serial
 * test fed the same sequence, chunks never overlap or exceed the
 * sample budget, and overshoot is bounded by one chunk.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/conditional.hpp"
#include "stats/sprt.hpp"

namespace uncertain {
namespace core {
namespace {

/** Scripted Bernoulli source: observation i = pattern(i). */
struct ScriptedSource
{
    std::function<bool(std::size_t)> pattern;
    /** Every (offset, count) window requested, in order. */
    std::vector<std::pair<std::size_t, std::size_t>> requests;

    auto
    chunkSampler()
    {
        return [this](std::size_t offset, std::size_t count,
                      std::uint8_t* out) {
            requests.emplace_back(offset, count);
            for (std::size_t i = 0; i < count; ++i)
                out[i] = pattern(offset + i) ? 1 : 0;
        };
    }

    /** The serial reference: evaluateCondition over the same script. */
    ConditionalResult
    serialReference(double threshold,
                    const ConditionalOptions& options) const
    {
        std::size_t next = 0;
        return evaluateCondition([&]() { return pattern(next++); },
                                 threshold, options);
    }

    std::size_t
    totalDrawn() const
    {
        std::size_t total = 0;
        for (const auto& request : requests)
            total += request.second;
        return total;
    }
};

TEST(ChunkedSprt, BoundaryCrossedMidChunkStopsAtTheSerialSampleSize)
{
    // All-true evidence decides well inside the first 64-wide chunk;
    // samplesUsed must be the serial decision point, not the chunk
    // end, and the overshoot (drawn - used) stays under one chunk.
    ScriptedSource source{[](std::size_t) { return true; }, {}};
    ConditionalOptions options;
    const std::size_t chunk = 64;
    auto result = evaluateConditionChunked(source.chunkSampler(), 0.5,
                                           options, chunk);
    auto serial = source.serialReference(0.5, options);

    EXPECT_EQ(result.decision, stats::TestDecision::AcceptAlternative);
    EXPECT_EQ(result.decision, serial.decision);
    EXPECT_EQ(result.samplesUsed, serial.samplesUsed);
    EXPECT_LT(result.samplesUsed, chunk);
    EXPECT_EQ(source.requests.size(), 1u);
    EXPECT_LT(source.totalDrawn() - result.samplesUsed, chunk);
}

TEST(ChunkedSprt, ChunkSizeOneReproducesTheSerialTestExactly)
{
    // Degenerate chunking: every observation is its own chunk, so
    // decision, estimate, and samplesUsed are all bit-for-bit the
    // serial test's, with zero overshoot.
    auto pattern = [](std::size_t i) { return i % 3 != 0; }; // p = 2/3
    ScriptedSource source{pattern, {}};
    ConditionalOptions options;
    auto result = evaluateConditionChunked(source.chunkSampler(), 0.5,
                                           options, 1);
    auto serial = source.serialReference(0.5, options);

    EXPECT_EQ(result.decision, serial.decision);
    EXPECT_EQ(result.samplesUsed, serial.samplesUsed);
    EXPECT_DOUBLE_EQ(result.estimate, serial.estimate);
    EXPECT_EQ(source.totalDrawn(), result.samplesUsed);
    // The schedule is the identity: offset i, count 1.
    for (std::size_t i = 0; i < source.requests.size(); ++i) {
        EXPECT_EQ(source.requests[i].first, i);
        EXPECT_EQ(source.requests[i].second, 1u);
    }
}

TEST(ChunkedSprt, ChunkLargerThanBudgetIsClampedToTheBudget)
{
    // chunk >> maxSamples: the request must be clamped so the source
    // is never asked for more than the budget, and a deciding
    // sequence still decides.
    ScriptedSource source{[](std::size_t) { return true; }, {}};
    ConditionalOptions options;
    options.sprt.maxSamples = 100;
    auto result = evaluateConditionChunked(source.chunkSampler(), 0.5,
                                           options, 100000);

    EXPECT_EQ(result.decision, stats::TestDecision::AcceptAlternative);
    ASSERT_EQ(source.requests.size(), 1u);
    EXPECT_EQ(source.requests[0].first, 0u);
    EXPECT_EQ(source.requests[0].second, 100u);
}

TEST(ChunkedSprt, BudgetExhaustionWithoutDecisionIsInconclusive)
{
    // Perfectly alternating evidence sits at the threshold: the LLR
    // oscillates inside Wald's boundaries forever, so the test must
    // stop at exactly maxSamples with Inconclusive — never loop, never
    // draw past the budget.
    ScriptedSource source{[](std::size_t i) { return i % 2 == 0; }, {}};
    ConditionalOptions options;
    options.sprt.maxSamples = 500;
    const std::size_t chunk = 64;
    auto result = evaluateConditionChunked(source.chunkSampler(), 0.5,
                                           options, chunk);
    auto serial = source.serialReference(0.5, options);

    EXPECT_EQ(result.decision, stats::TestDecision::Inconclusive);
    EXPECT_EQ(result.samplesUsed, 500u);
    EXPECT_EQ(result.decision, serial.decision);
    EXPECT_EQ(result.samplesUsed, serial.samplesUsed);
    EXPECT_NEAR(result.estimate, 0.5, 1e-9);
    // Chunks tile [0, maxSamples) exactly: consecutive, no overlap,
    // final short chunk clamped to the remaining budget.
    std::size_t expectedOffset = 0;
    for (const auto& request : source.requests) {
        EXPECT_EQ(request.first, expectedOffset);
        EXPECT_LE(request.second, chunk);
        expectedOffset += request.second;
    }
    EXPECT_EQ(expectedOffset, 500u);
}

TEST(ChunkedSprt, CappedMidChunkDoesNotOvershootTheBudget)
{
    // Budget not a multiple of the chunk: the final chunk must shrink
    // to the remainder rather than read past maxSamples.
    ScriptedSource source{[](std::size_t i) { return i % 2 == 0; }, {}};
    ConditionalOptions options;
    options.sprt.maxSamples = 130;
    auto result = evaluateConditionChunked(source.chunkSampler(), 0.5,
                                           options, 64);

    EXPECT_EQ(result.decision, stats::TestDecision::Inconclusive);
    EXPECT_EQ(result.samplesUsed, 130u);
    EXPECT_EQ(source.totalDrawn(), 130u);
    ASSERT_EQ(source.requests.size(), 3u);
    EXPECT_EQ(source.requests[2].second, 2u);
}

TEST(ChunkedSprt, GroupSequentialChunksAtLookBoundaries)
{
    // The group-sequential path chunks per look; an always-true
    // sequence decides at the first look, after exactly
    // maxSamples / looks draws.
    ScriptedSource source{[](std::size_t) { return true; }, {}};
    ConditionalOptions options;
    options.strategy = ConditionalStrategy::GroupSequential;
    options.groupLooks = 5;
    options.sprt.maxSamples = 1000;
    auto result =
        evaluateConditionChunked(source.chunkSampler(), 0.5, options);

    EXPECT_EQ(result.decision, stats::TestDecision::AcceptAlternative);
    ASSERT_GE(source.requests.size(), 1u);
    EXPECT_EQ(source.requests[0].second, 200u);
}

} // namespace
} // namespace core
} // namespace uncertain
