/**
 * @file
 * Bayesian-network node tests: epoch memoization (the paper's
 * Figure 8 shared-dependence semantics), graph topology, and DOT
 * export.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

TEST(SampleContext, EpochsAreUniqueAndIncreasing)
{
    Rng rng = testing::testRng(91);
    SampleContext a(rng);
    auto first = a.epoch();
    a.newEpoch();
    EXPECT_GT(a.epoch(), first);

    SampleContext b(rng);
    EXPECT_NE(b.epoch(), a.epoch());
}

TEST(Node, LeafDrawsFreshValuesAcrossEpochs)
{
    auto x = gaussianLeaf(0.0, 1.0);
    Rng rng = testing::testRng(92);
    SampleContext ctx(rng);
    double a = x.node()->sample(ctx);
    ctx.newEpoch();
    double b = x.node()->sample(ctx);
    EXPECT_NE(a, b);
}

TEST(Node, MemoizationGivesOneDrawPerEpoch)
{
    auto x = gaussianLeaf(0.0, 1.0);
    Rng rng = testing::testRng(93);
    SampleContext ctx(rng);
    double a = x.node()->sample(ctx);
    double b = x.node()->sample(ctx);
    EXPECT_EQ(a, b); // same epoch: identical draw
}

TEST(Node, SharedSubexpressionIsSampledOnce)
{
    // Figure 8: B = (Y + X) + X must treat both X occurrences as the
    // same variable. Then B - Y - 2X == 0 identically.
    auto x = gaussianLeaf(0.0, 1.0);
    auto y = gaussianLeaf(0.0, 1.0);
    auto a = y + x;
    auto b = a + x;
    auto residual = b - y - (x * 2.0);
    Rng rng = testing::testRng(94);
    // Zero up to floating-point association error; without sharing
    // the residual would be a fresh Gaussian draw of unit scale.
    for (int i = 0; i < 100; ++i)
        EXPECT_NEAR(residual.sample(rng), 0.0, 1e-12);

    // Exact identity where no re-association is involved.
    auto zero = x - x;
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(zero.sample(rng), 0.0);
}

TEST(Node, SharedDependenceDoublesVarianceContribution)
{
    // Var[(Y + X) + X] = Var[Y] + 4 Var[X] (correct network), not
    // Var[Y] + 2 Var[X] (the wrong network of Figure 8(a)).
    auto x = gaussianLeaf(0.0, 1.0);
    auto y = gaussianLeaf(0.0, 1.0);
    auto b = (y + x) + x;
    Rng rng = testing::testRng(95);
    stats::OnlineSummary s;
    for (auto v : b.takeSamples(100000, rng))
        s.add(v);
    EXPECT_NEAR(s.variance(), 5.0, 0.25);
}

TEST(Node, PointMassNeverConsumesRandomness)
{
    Uncertain<double> five(5.0);
    Rng a = testing::testRng(96);
    Rng b = testing::testRng(96);
    (void)five.sample(a);
    // The stream is untouched: both generators still agree.
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(GraphNode, GraphSizeCountsUniqueNodes)
{
    auto x = gaussianLeaf(0.0, 1.0);
    auto y = gaussianLeaf(0.0, 1.0);
    auto b = (y + x) + x; // 2 leaves + 2 inner nodes = 4 unique
    EXPECT_EQ(b.graphSize(), 4u);

    auto c = x + x; // 1 leaf + 1 inner
    EXPECT_EQ(c.graphSize(), 2u);
}

TEST(GraphNode, OpNamesDescribeTheComputation)
{
    auto x = gaussianLeaf(1.0, 2.0);
    auto sum = x + 3.0;
    EXPECT_EQ(sum.node()->opName(), "+");
    auto children = sum.node()->children();
    ASSERT_EQ(children.size(), 2u);
    EXPECT_EQ(children[0]->opName(), "leaf:Gaussian(1, 2)");
    EXPECT_EQ(children[1]->opName(), "pointmass");
}

TEST(Dot, ExportContainsNodesAndEdges)
{
    auto x = gaussianLeaf(0.0, 1.0);
    auto y = gaussianLeaf(0.0, 1.0);
    auto c = x + y;
    std::string dot = toDot(c);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("\"+\""), std::string::npos);
    EXPECT_NE(dot.find("leaf:Gaussian"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    // Two leaves feeding one inner node: exactly two edges.
    std::size_t edges = 0;
    for (std::size_t pos = dot.find("->"); pos != std::string::npos;
         pos = dot.find("->", pos + 1)) {
        ++edges;
    }
    EXPECT_EQ(edges, 2u);
}

TEST(Dot, SharedNodesAppearOnce)
{
    auto x = gaussianLeaf(0.0, 1.0);
    auto b = (x + x) + x;
    std::string dot = toDot(b);
    std::size_t leaves = 0;
    for (std::size_t pos = dot.find("leaf:"); pos != std::string::npos;
         pos = dot.find("leaf:", pos + 1)) {
        ++leaves;
    }
    EXPECT_EQ(leaves, 1u);
}

} // namespace
} // namespace core
} // namespace uncertain
