/**
 * @file
 * Conditional-semantics tests: implicit/explicit operators, ternary
 * fall-through, evaluation strategies, and sampling-effort counters.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return core::fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

TEST(Conditional, ImplicitOperatorIsMoreLikelyThanNot)
{
    Rng rng = testing::testRng(131);
    auto fast = gaussianLeaf(6.0, 1.0);
    auto slow = gaussianLeaf(2.0, 1.0);
    core::ConditionalOptions options;

    EXPECT_TRUE((fast > 4.0).pr(0.5, options, rng));
    EXPECT_FALSE((slow > 4.0).pr(0.5, options, rng));

    // The contextual-conversion form the paper's code uses.
    if (fast > 4.0) {
        SUCCEED();
    } else {
        FAIL() << "implicit conditional should have fired";
    }
}

TEST(Conditional, ExplicitThresholdDemandsStrongerEvidence)
{
    Rng rng = testing::testRng(132);
    // Pr[a > 4] ~ 0.84: passes 0.5, passes 0.7, fails 0.95.
    auto a = gaussianLeaf(5.0, 1.0);
    core::ConditionalOptions options;
    EXPECT_TRUE((a > 4.0).pr(0.5, options, rng));
    EXPECT_TRUE((a > 4.0).pr(0.7, options, rng));
    EXPECT_FALSE((a > 4.0).pr(0.95, options, rng));
}

TEST(Conditional, TernaryLogicNeitherBranchMayFire)
{
    // The paper's A < B ... else if A >= B example: when the
    // distributions overlap heavily, neither conditional's evidence
    // is significant and both read as false.
    Rng rng = testing::testRng(133);
    auto a = gaussianLeaf(0.0, 1.0);
    auto b = gaussianLeaf(0.02, 1.0);
    core::ConditionalOptions options;
    options.sprt.maxSamples = 500;

    bool first = (a < b).pr(0.5, options, rng);
    bool second = (a >= b).pr(0.5, options, rng);
    EXPECT_FALSE(first);
    EXPECT_FALSE(second);
}

TEST(Conditional, EvaluateExposesTheTernaryDecision)
{
    Rng rng = testing::testRng(134);
    auto a = gaussianLeaf(0.0, 1.0);
    core::ConditionalOptions options;
    options.sprt.maxSamples = 400;

    auto balanced = (a > 0.0).evaluate(0.5, options, rng);
    EXPECT_EQ(balanced.decision, stats::TestDecision::Inconclusive);
    EXPECT_FALSE(balanced.toBool());
    EXPECT_EQ(balanced.samplesUsed, 400u);

    auto clear = (a > -5.0).evaluate(0.5, options, rng);
    EXPECT_EQ(clear.decision, stats::TestDecision::AcceptAlternative);
    EXPECT_TRUE(clear.toBool());
    EXPECT_LT(clear.samplesUsed, 100u);
}

TEST(Conditional, SamplingEffortScalesWithDifficulty)
{
    Rng rng = testing::testRng(135);
    core::ConditionalOptions options;
    options.sprt.maxSamples = 5000;

    auto easy = (gaussianLeaf(8.0, 1.0) > 4.0).evaluate(0.5, options,
                                                        rng);
    auto hard = (gaussianLeaf(4.3, 1.0) > 4.0).evaluate(0.5, options,
                                                        rng);
    EXPECT_LT(easy.samplesUsed, hard.samplesUsed);
}

TEST(Conditional, GroupSequentialStrategyAgreesOnClearCases)
{
    Rng rng = testing::testRng(136);
    core::ConditionalOptions options;
    options.strategy = core::ConditionalStrategy::GroupSequential;
    options.sprt.maxSamples = 1000;
    auto a = gaussianLeaf(6.0, 1.0);
    EXPECT_TRUE((a > 4.0).pr(0.5, options, rng));
    EXPECT_FALSE((a < 4.0).pr(0.5, options, rng));
}

TEST(Conditional, FixedSampleStrategyAlwaysSpendsItsBudget)
{
    Rng rng = testing::testRng(137);
    core::ConditionalOptions options;
    options.strategy = core::ConditionalStrategy::FixedSample;
    options.fixedSamples = 321;
    auto a = gaussianLeaf(10.0, 1.0);
    auto result = (a > 4.0).evaluate(0.5, options, rng);
    EXPECT_EQ(result.samplesUsed, 321u);
    EXPECT_TRUE(result.toBool());
}

TEST(Conditional, ProbabilityEstimateIsUnbiased)
{
    Rng rng = testing::testRng(138);
    auto a = gaussianLeaf(0.0, 1.0);
    double p = (a > 0.0).probability(100000, rng);
    EXPECT_NEAR(p, 0.5, testing::proportionTolerance(0.5, 100000));
}

TEST(Conditional, RejectsDegenerateThresholds)
{
    Rng rng = testing::testRng(139);
    auto a = gaussianLeaf(0.0, 1.0);
    core::ConditionalOptions options;
    EXPECT_THROW((a > 0.0).pr(0.0, options, rng), Error);
    EXPECT_THROW((a > 0.0).pr(1.0, options, rng), Error);
}

TEST(EvalStats, CountersTrackSamplingWork)
{
    core::resetEvalStats();
    Rng rng = testing::testRng(140);
    auto a = gaussianLeaf(8.0, 1.0);

    EXPECT_EQ(core::evalStats().rootSamples, 0u);
    (void)a.sample(rng);
    EXPECT_EQ(core::evalStats().rootSamples, 1u);

    (void)a.expectedValue(100, rng);
    EXPECT_EQ(core::evalStats().rootSamples, 101u);
    EXPECT_EQ(core::evalStats().expectations, 1u);

    core::ConditionalOptions options;
    auto result = (a > 4.0).evaluate(0.5, options, rng);
    EXPECT_EQ(core::evalStats().conditionals, 1u);
    EXPECT_EQ(core::evalStats().rootSamples, 101u + result.samplesUsed);

    core::resetEvalStats();
    EXPECT_EQ(core::evalStats().rootSamples, 0u);
}

TEST(Correlated, JointSamplerSharesOneDrawPerPass)
{
    // Perfectly anti-correlated pair: first + second == 0 always.
    auto [first, second] =
        core::makeCorrelated<double, double>(
            [](Rng& rng) {
                double z = rng.nextRange(-1.0, 1.0);
                return std::pair<double, double>{z, -z};
            },
            "antithetic");
    auto sum = first + second;
    Rng rng = testing::testRng(141);
    for (int i = 0; i < 200; ++i)
        EXPECT_DOUBLE_EQ(sum.sample(rng), 0.0);
}

TEST(Correlated, MarginalsStillVaryAcrossPasses)
{
    auto [first, second] =
        core::makeCorrelated<double, double>(
            [](Rng& rng) {
                double z = rng.nextRange(0.0, 1.0);
                return std::pair<double, double>{z, z * z};
            },
            "square-pair");
    Rng rng = testing::testRng(142);
    double a = first.sample(rng);
    double b = first.sample(rng);
    EXPECT_NE(a, b);
    EXPECT_NEAR(second.expectedValue(50000, rng), 1.0 / 3.0, 0.01);
}

} // namespace
} // namespace uncertain
