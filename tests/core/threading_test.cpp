/**
 * @file
 * Concurrency contract tests: one graph per thread is supported (the
 * documented usage), per-thread global generators are independent,
 * and epoch allocation never collides across threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

TEST(Threading, IndependentGraphsOnIndependentThreads)
{
    constexpr int kThreads = 8;
    std::vector<double> means(kThreads, 0.0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &means] {
            // Each thread builds and samples its own graph with its
            // own generator.
            Rng rng = testing::testRng(
                static_cast<std::uint64_t>(500 + t));
            auto a = fromDistribution(
                std::make_shared<random::Gaussian>(
                    static_cast<double>(t), 1.0));
            auto expr = (a + 1.0) * 2.0;
            means[t] = expr.expectedValue(20000, rng);
        });
    }
    for (auto& thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_NEAR(means[t], 2.0 * (t + 1.0), 0.1) << "thread " << t;
}

TEST(Threading, EpochsAreGloballyUniqueAcrossThreads)
{
    constexpr int kThreads = 8;
    constexpr int kEpochsPerThread = 2000;
    std::vector<std::vector<std::uint64_t>> perThread(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &perThread] {
            Rng rng = testing::testRng(
                static_cast<std::uint64_t>(520 + t));
            SampleContext ctx(rng);
            perThread[t].reserve(kEpochsPerThread);
            for (int i = 0; i < kEpochsPerThread; ++i) {
                perThread[t].push_back(ctx.epoch());
                ctx.newEpoch();
            }
        });
    }
    for (auto& thread : threads)
        thread.join();

    std::set<std::uint64_t> all;
    for (const auto& epochs : perThread)
        for (std::uint64_t e : epochs)
            EXPECT_TRUE(all.insert(e).second)
                << "duplicate epoch " << e;
}

TEST(Threading, GlobalRngIsPerThread)
{
    // Each thread gets its own deterministic stream; concurrent use
    // must not interleave or crash.
    constexpr int kThreads = 6;
    std::vector<double> sums(kThreads, 0.0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &sums] {
            seedGlobalRng(static_cast<std::uint64_t>(t));
            double total = 0.0;
            for (int i = 0; i < 10000; ++i)
                total += globalRng().nextDouble();
            sums[t] = total;
        });
    }
    for (auto& thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_NEAR(sums[t], 5000.0, 200.0);
}

TEST(Threading, EvalStatsAreThreadLocal)
{
    resetEvalStats();
    std::atomic<bool> childSawZero{false};
    std::thread child([&childSawZero] {
        resetEvalStats();
        Rng rng = testing::testRng(530);
        auto a = fromDistribution(
            std::make_shared<random::Gaussian>(0.0, 1.0));
        (void)a.sample(rng);
        childSawZero = evalStats().rootSamples == 1;
    });
    child.join();
    EXPECT_TRUE(childSawZero);
    // The child's sampling did not touch this thread's counters.
    EXPECT_EQ(evalStats().rootSamples, 0u);
}

} // namespace
} // namespace core
} // namespace uncertain
