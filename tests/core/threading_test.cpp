/**
 * @file
 * Concurrency contract tests. Since the memo-table refactor, nodes
 * are immutable and all per-pass state lives in the SampleContext, so
 * ONE SHARED GRAPH may be sampled concurrently from many threads —
 * each with its own context and generator. These tests pin that
 * contract: concurrent takeSamples on a shared graph, shared-leaf
 * (Figure 8) correctness under parallelism, a many-contexts stress
 * test, plus the original per-thread guarantees (independent global
 * generators, globally unique epochs, thread-local eval stats). Run
 * under ThreadSanitizer in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

TEST(Threading, IndependentGraphsOnIndependentThreads)
{
    constexpr int kThreads = 8;
    std::vector<double> means(kThreads, 0.0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &means] {
            // Each thread builds and samples its own graph with its
            // own generator.
            Rng rng = testing::testRng(
                static_cast<std::uint64_t>(500 + t));
            auto a = fromDistribution(
                std::make_shared<random::Gaussian>(
                    static_cast<double>(t), 1.0));
            auto expr = (a + 1.0) * 2.0;
            means[t] = expr.expectedValue(20000, rng);
        });
    }
    for (auto& thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_NEAR(means[t], 2.0 * (t + 1.0), 0.1) << "thread " << t;
}

TEST(Threading, EpochsAreGloballyUniqueAcrossThreads)
{
    constexpr int kThreads = 8;
    constexpr int kEpochsPerThread = 2000;
    std::vector<std::vector<std::uint64_t>> perThread(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &perThread] {
            Rng rng = testing::testRng(
                static_cast<std::uint64_t>(520 + t));
            SampleContext ctx(rng);
            perThread[t].reserve(kEpochsPerThread);
            for (int i = 0; i < kEpochsPerThread; ++i) {
                perThread[t].push_back(ctx.epoch());
                ctx.newEpoch();
            }
        });
    }
    for (auto& thread : threads)
        thread.join();

    std::set<std::uint64_t> all;
    for (const auto& epochs : perThread)
        for (std::uint64_t e : epochs)
            EXPECT_TRUE(all.insert(e).second)
                << "duplicate epoch " << e;
}

TEST(Threading, GlobalRngIsPerThread)
{
    // Each thread gets its own deterministic stream; concurrent use
    // must not interleave or crash.
    constexpr int kThreads = 6;
    std::vector<double> sums(kThreads, 0.0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &sums] {
            seedGlobalRng(static_cast<std::uint64_t>(t));
            double total = 0.0;
            for (int i = 0; i < 10000; ++i)
                total += globalRng().nextDouble();
            sums[t] = total;
        });
    }
    for (auto& thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_NEAR(sums[t], 5000.0, 200.0);
}

TEST(Threading, ConcurrentTakeSamplesOnASharedGraph)
{
    // One graph, eight threads, each drawing its own batch through
    // its own generator/context. Every batch must see the correct
    // distribution: mean 2(mu + 1) = 8 for mu = 3.
    constexpr int kThreads = 8;
    auto a = fromDistribution(
        std::make_shared<random::Gaussian>(3.0, 1.0));
    auto expr = (a + 1.0) * 2.0;
    std::vector<double> means(kThreads, 0.0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &expr, &means] {
            Rng rng = testing::testRng(
                static_cast<std::uint64_t>(540 + t));
            stats::OnlineSummary s;
            for (double v : expr.takeSamples(20000, rng))
                s.add(v);
            means[t] = s.mean();
        });
    }
    for (auto& thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_NEAR(means[t], 8.0, 0.1) << "thread " << t;
}

TEST(Threading, SharedLeafSemanticsHoldInEveryThread)
{
    // Figure 8(b) under concurrency: both X occurrences in (Y+X)+X
    // must see one draw per epoch in every thread, so the residual
    // B - Y - 2X is ~0 for every sample on every thread, and the
    // variance of B is Var[Y] + 4 Var[X] = 5.
    constexpr int kThreads = 8;
    auto x = fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
    auto y = fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
    auto b = (y + x) + x;
    auto residual = b - y - (x * 2.0);
    std::vector<int> badResiduals(kThreads, 0);
    std::vector<double> variances(kThreads, 0.0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back(
            [t, &residual, &b, &badResiduals, &variances] {
                Rng rng = testing::testRng(
                    static_cast<std::uint64_t>(560 + t));
                for (double v : residual.takeSamples(2000, rng)) {
                    if (std::abs(v) > 1e-12)
                        ++badResiduals[t];
                }
                stats::OnlineSummary s;
                for (double v : b.takeSamples(50000, rng))
                    s.add(v);
                variances[t] = s.variance();
            });
    }
    for (auto& thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(badResiduals[t], 0) << "thread " << t;
        EXPECT_NEAR(variances[t], 5.0, 0.35) << "thread " << t;
    }
}

TEST(Threading, ManyContextsOnOneGraphStress)
{
    // 16 threads x 64 short-lived contexts each, all over one shared
    // graph, interleaving single draws and epoch churn. Exercises
    // memo-table create/destroy under maximal context turnover; run
    // under TSan this is the data-race canary for the design.
    constexpr int kThreads = 16;
    constexpr int kContextsPerThread = 64;
    auto x = fromDistribution(
        std::make_shared<random::Gaussian>(1.0, 2.0));
    auto expr = (x * x) + x - 0.5;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &expr, &failures] {
            Rng rng = testing::testRng(
                static_cast<std::uint64_t>(580 + t));
            for (int c = 0; c < kContextsPerThread; ++c) {
                SampleContext ctx(rng);
                for (int i = 0; i < 20; ++i) {
                    double v = expr.node()->sample(ctx);
                    if (!std::isfinite(v))
                        ++failures;
                    ctx.newEpoch();
                }
            }
        });
    }
    for (auto& thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(Threading, ParallelSamplersOnDistinctThreadsShareAGraph)
{
    // Each thread drives its own ParallelSampler (each with its own
    // pool) over the same graph — contexts nest two levels deep in
    // the concurrency hierarchy.
    constexpr int kThreads = 4;
    auto x = fromDistribution(
        std::make_shared<random::Gaussian>(2.0, 1.0));
    auto expr = x + x; // shared leaf
    std::vector<double> means(kThreads, 0.0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &expr, &means] {
            Rng rng = testing::testRng(
                static_cast<std::uint64_t>(600 + t));
            ParallelSampler sampler(ParallelOptions{2, 128});
            means[t] = expr.expectedValue(20000, rng, sampler);
        });
    }
    for (auto& thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_NEAR(means[t], 4.0, 0.1) << "thread " << t;
}

TEST(Threading, EvalStatsAreThreadLocal)
{
    resetEvalStats();
    std::atomic<bool> childSawZero{false};
    std::thread child([&childSawZero] {
        resetEvalStats();
        Rng rng = testing::testRng(530);
        auto a = fromDistribution(
            std::make_shared<random::Gaussian>(0.0, 1.0));
        (void)a.sample(rng);
        childSawZero = evalStats().rootSamples == 1;
    });
    child.join();
    EXPECT_TRUE(childSawZero);
    // The child's sampling did not touch this thread's counters.
    EXPECT_EQ(evalStats().rootSamples, 0u);
}

} // namespace
} // namespace core
} // namespace uncertain
