/**
 * @file
 * E-based total ordering tests, plus failure injection: leaves whose
 * sampling functions throw must propagate cleanly (no corruption of
 * later evaluations).
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/core.hpp"
#include "core/ordering.hpp"
#include "random/gaussian.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

TEST(Ordering, SortsWellSeparatedDistributionsByMean)
{
    Rng rng = testing::testRng(501);
    std::vector<Uncertain<double>> values{
        gaussianLeaf(5.0, 1.0), gaussianLeaf(-2.0, 1.0),
        gaussianLeaf(9.0, 1.0), gaussianLeaf(1.0, 1.0)};
    auto order = rankByExpectedValue(values, 4000, rng);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1u); // -2
    EXPECT_EQ(order[1], 3u); //  1
    EXPECT_EQ(order[2], 0u); //  5
    EXPECT_EQ(order[3], 2u); //  9
}

TEST(Ordering, SortInPlaceYieldsAscendingExpectations)
{
    Rng rng = testing::testRng(502);
    std::vector<Uncertain<double>> values;
    for (double mu : {3.0, -1.0, 7.0, 0.0, 5.0})
        values.push_back(gaussianLeaf(mu, 0.5));
    sortByExpectedValue(values, 4000, rng);
    double previous = values.front().expectedValue(4000, rng);
    for (std::size_t i = 1; i < values.size(); ++i) {
        double current = values[i].expectedValue(4000, rng);
        EXPECT_GT(current, previous - 0.2);
        previous = current;
    }
}

TEST(Ordering, OverlappingDistributionsStillGetATotalOrder)
{
    // Direct `<` between these would be inconclusive; E always
    // produces an order (the paper's point about sorting).
    Rng rng = testing::testRng(503);
    std::vector<Uncertain<double>> values{
        gaussianLeaf(0.00, 5.0), gaussianLeaf(0.01, 5.0),
        gaussianLeaf(0.02, 5.0)};
    auto order = rankByExpectedValue(values, 1000, rng);
    // Some permutation of all indices: a strict total order.
    std::vector<bool> seen(3, false);
    for (std::size_t i : order) {
        ASSERT_LT(i, 3u);
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
    }
}

TEST(Ordering, PointMassesSortExactly)
{
    Rng rng = testing::testRng(504);
    std::vector<Uncertain<double>> values{
        Uncertain<double>(3.0), Uncertain<double>(1.0),
        Uncertain<double>(2.0)};
    sortByExpectedValue(values, 16, rng);
    EXPECT_DOUBLE_EQ(values[0].sample(rng), 1.0);
    EXPECT_DOUBLE_EQ(values[1].sample(rng), 2.0);
    EXPECT_DOUBLE_EQ(values[2].sample(rng), 3.0);
}

// ----------------------------------------------------------------------
// Failure injection.
// ----------------------------------------------------------------------

Uncertain<double>
throwingLeaf(int throwAfter)
{
    auto counter = std::make_shared<int>(0);
    return Uncertain<double>::fromSampler(
        [counter, throwAfter](Rng& rng) {
            if (++*counter > throwAfter)
                throw std::runtime_error("sensor disconnected");
            return rng.nextDouble();
        },
        "flaky");
}

TEST(FailureInjection, LeafExceptionPropagatesFromSample)
{
    Rng rng = testing::testRng(505);
    auto flaky = throwingLeaf(0);
    EXPECT_THROW((void)flaky.sample(rng), std::runtime_error);
}

TEST(FailureInjection, ExceptionPropagatesThroughComputations)
{
    Rng rng = testing::testRng(506);
    auto flaky = throwingLeaf(0) + gaussianLeaf(0.0, 1.0);
    EXPECT_THROW((void)flaky.sample(rng), std::runtime_error);
    EXPECT_THROW((void)flaky.expectedValue(100, rng),
                 std::runtime_error);
}

TEST(FailureInjection, ExceptionPropagatesFromConditionals)
{
    Rng rng = testing::testRng(507);
    auto condition = throwingLeaf(5) > 0.5;
    ConditionalOptions options;
    EXPECT_THROW((void)condition.pr(0.5, options, rng),
                 std::runtime_error);
}

TEST(FailureInjection, HealthyGraphsAreUnaffectedAfterAFailure)
{
    Rng rng = testing::testRng(508);
    auto flaky = throwingLeaf(3);
    auto healthy = gaussianLeaf(2.0, 1.0);

    // Use up the flaky leaf's budget.
    try {
        (void)flaky.expectedValue(100, rng);
    } catch (const std::runtime_error&) {
    }

    // Unrelated graphs keep working: no shared poisoned state.
    EXPECT_NEAR(healthy.expectedValue(20000, rng), 2.0, 0.1);
    if (healthy > 0.0) {
        SUCCEED();
    } else {
        FAIL() << "healthy conditional misfired after injection";
    }
}

TEST(FailureInjection, PartiallyFailingLeafCanRecoverMidGraph)
{
    // A leaf that throws only once: the first pass fails, later
    // passes succeed, and the epoch cache never serves a value from
    // the failed pass.
    Rng rng = testing::testRng(509);
    auto fragile = Uncertain<double>::fromSampler(
        [count = std::make_shared<int>(0)](Rng&) {
            if (++*count == 1)
                throw std::runtime_error("transient");
            return 7.0;
        },
        "transient");
    auto doubled = fragile * 2.0;
    EXPECT_THROW((void)doubled.sample(rng), std::runtime_error);
    EXPECT_DOUBLE_EQ(doubled.sample(rng), 14.0);
}

} // namespace
} // namespace core
} // namespace uncertain
