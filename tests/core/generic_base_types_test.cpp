/**
 * @file
 * Uncertain<T> over non-scalar base types (the paper's
 * GeoCoordinate is "a pair of doubles ... and so is numeric") and
 * the global-generator convenience overloads.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/core.hpp"
#include "gps/gps_library.hpp"
#include "random/gaussian.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

TEST(GenericBaseTypes, ExpectedValueOfGeoCoordinate)
{
    // E over a vector-like type: the posterior around a fix must
    // average back to (nearly) the fix center.
    gps::GeoCoordinate center{47.64, -122.14};
    auto location = gps::getLocation({center, 4.0, 0.0});
    Rng rng = testing::testRng(541);
    gps::GeoCoordinate mean = location.expectedValue(20000, rng);
    EXPECT_LT(gps::distanceMeters(center, mean), 0.1);
}

TEST(GenericBaseTypes, ArithmeticOnGeoCoordinates)
{
    // Midpoint of two uncertain locations via the lifted algebra.
    gps::GeoCoordinate a{10.0, 20.0};
    gps::GeoCoordinate b{12.0, 24.0};
    Uncertain<gps::GeoCoordinate> ua(a);
    Uncertain<gps::GeoCoordinate> ub(b);
    auto midpoint = (ua + ub) / 2.0;
    Rng rng = testing::testRng(542);
    gps::GeoCoordinate m = midpoint.sample(rng);
    EXPECT_DOUBLE_EQ(m.latitude, 11.0);
    EXPECT_DOUBLE_EQ(m.longitude, 22.0);
}

TEST(GenericBaseTypes, UncertainIntArithmetic)
{
    auto die = Uncertain<int>::fromSampler(
        [](Rng& rng) { return static_cast<int>(rng.nextBelow(6)) + 1; },
        "d6");
    auto two = die + die; // two rolls? No: the SAME roll, doubled.
    Rng rng = testing::testRng(543);
    for (int v : two.takeSamples(100, rng))
        EXPECT_EQ(v % 2, 0); // always even: shared leaf
    // E[2 * d6] = 7.
    EXPECT_NEAR(static_cast<double>(two.expectedValue(40000, rng)),
                7.0, 0.2);
}

TEST(GenericBaseTypes, GlobalGeneratorOverloadsWork)
{
    seedGlobalRng(testing::testRng(544).nextU64());
    auto g = fromDistribution(
        std::make_shared<random::Gaussian>(5.0, 1.0));

    EXPECT_NEAR(g.expectedValue(20000), 5.0, 0.1);
    EXPECT_EQ(g.takeSamples(17).size(), 17u);
    (void)g.sample();

    auto high = g > 3.0;
    EXPECT_NEAR(high.probability(20000), 0.977, 0.02);
    EXPECT_TRUE(high.pr());
    EXPECT_TRUE(high.pr(0.9));

    auto adaptive = g.expectedValueAdaptive();
    EXPECT_NEAR(adaptive.mean, 5.0, 0.2);
}

TEST(GenericBaseTypes, DescribeSkewedDistributionQuantiles)
{
    // Rayleigh is right-skewed: mean > median, q975 far from q025.
    auto r = fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
    auto skewed = uncertain::exp(r); // lognormal
    Rng rng = testing::testRng(545);
    Description d = describe(skewed, 30000, rng);
    EXPECT_GT(d.mean, d.median);
    EXPECT_NEAR(d.median, 1.0, 0.05);
    EXPECT_GT(d.q975 - d.median, d.median - d.q025);
}

TEST(GenericBaseTypes, LiftedComparisonOfGeoCoordinateComponents)
{
    // Comparisons lift through map: "is the fix north of the line?".
    gps::GeoCoordinate center{47.64, -122.14};
    auto location = gps::getLocation({center, 4.0, 0.0});
    auto northing = location.map(
        [](const gps::GeoCoordinate& p) { return p.latitude; },
        "latitude");
    Rng rng = testing::testRng(546);
    double p = (northing > center.latitude).probability(20000, rng);
    EXPECT_NEAR(p, 0.5, 0.02); // isotropic error
}

} // namespace
} // namespace core
} // namespace uncertain
