/** @file Coverage for DOT escaping, graph sizes, and misc paths. */

#include <gtest/gtest.h>

#include <memory>

#include "core/core.hpp"
#include "gps/geo.hpp"
#include "random/gaussian.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

TEST(Dot, EscapesQuotesAndBackslashesInLabels)
{
    auto leaf = Uncertain<double>::fromSampler(
        [](Rng& rng) { return rng.nextDouble(); },
        "weird \"label\" with \\ backslash");
    std::string dot = toDot(leaf);
    EXPECT_NE(dot.find("\\\"label\\\""), std::string::npos);
    EXPECT_NE(dot.find("\\\\ backslash"), std::string::npos);
}

TEST(GraphNode, DeepChainSizeIsLinear)
{
    auto acc = core::fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
    for (int i = 0; i < 100; ++i)
        acc = acc + 1.0;
    // Each `+ 1.0` adds one inner node and one point-mass leaf.
    EXPECT_EQ(acc.graphSize(), 1u + 200u);
}

TEST(GraphNode, DiamondSharingKeepsSizeLogarithmicInPaths)
{
    auto node = core::fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
    for (int i = 0; i < 20; ++i)
        node = node + node; // 2^20 paths
    EXPECT_EQ(node.graphSize(), 21u);
    // And sampling it is instantaneous thanks to memoization.
    Rng rng = testing::testRng(531);
    (void)node.sample(rng);
}

TEST(UncertainBool, TakeSamplesProducesBooleans)
{
    auto coin = Uncertain<bool>::fromSampler(
        [](Rng& rng) { return rng.nextBool(0.5); }, "coin");
    Rng rng = testing::testRng(532);
    auto samples = coin.takeSamples(100, rng);
    ASSERT_EQ(samples.size(), 100u);
    int heads = 0;
    for (bool b : samples)
        heads += b ? 1 : 0;
    EXPECT_GT(heads, 20);
    EXPECT_LT(heads, 80);
}

TEST(Geo, LocalOffsetMatchesDestinationRoundTrip)
{
    gps::GeoCoordinate origin{47.6, -122.3};
    gps::GeoCoordinate moved = gps::destination(origin, 0.0, 120.0);
    gps::EnuOffset offset = gps::localOffsetMeters(origin, moved);
    EXPECT_NEAR(offset.north, 120.0, 0.05);
    EXPECT_NEAR(offset.east, 0.0, 0.05);

    moved = gps::destination(origin, M_PI / 2.0, 75.0);
    offset = gps::localOffsetMeters(origin, moved);
    EXPECT_NEAR(offset.east, 75.0, 0.1);
    EXPECT_NEAR(offset.north, 0.0, 0.1);
}

TEST(FixedSampleStrategy, ThresholdBoundaryFavorsTheNull)
{
    // With estimate exactly at the threshold the strict inequality
    // keeps the branch untaken.
    auto coin = Uncertain<bool>::fromSampler(
        [flip = std::make_shared<int>(0)](Rng&) {
            return (++*flip % 2) == 0; // exactly half true
        },
        "alternating");
    ConditionalOptions options;
    options.strategy = ConditionalStrategy::FixedSample;
    options.fixedSamples = 100;
    Rng rng = testing::testRng(533);
    auto result = coin.evaluate(0.5, options, rng);
    EXPECT_DOUBLE_EQ(result.estimate, 0.5);
    EXPECT_FALSE(result.toBool());
}

} // namespace
} // namespace core
} // namespace uncertain
