/**
 * @file
 * Statistical-equivalence suite for the parallel sampling engine: the
 * refactor must change nothing observable. Three pillars:
 *
 *  1. Bit-exact determinism — a fixed seed produces the identical
 *     sample vector at 1, 2, and 8 threads (block-keyed split
 *     streams), and the parallel engine is bit-identical to the
 *     serial BatchSampler at the same block size.
 *  2. Distributional equivalence — two-sample KS tests at
 *     testing::kKsAlpha between serial and parallel sample sets on
 *     the Figure 8 graph topologies (independent leaves, shared
 *     leaves, mixtures), via tests/stat_assert.hpp.
 *  3. Decision parity — chunk-wise SPRT conditionals accept/reject at
 *     the same rates as the serial SPRT at the paper's operating
 *     points, with sample sizes within one chunk.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "random/mixture.hpp"
#include "random/rayleigh.hpp"
#include "stats/summary.hpp"
#include "stat_assert.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

Uncertain<double>
rayleighLeaf(double rho)
{
    return fromDistribution(std::make_shared<random::Rayleigh>(rho));
}

Uncertain<double>
mixtureLeaf()
{
    return fromDistribution(std::make_shared<random::Mixture>(
        std::vector<random::DistributionPtr>{
            std::make_shared<random::Gaussian>(-2.0, 0.5),
            std::make_shared<random::Gaussian>(3.0, 1.0),
        },
        std::vector<double>{0.4, 0.6}));
}

/** The Figure 8(b) shared-leaf topology: (Y + X) + X. */
Uncertain<double>
sharedLeafGraph()
{
    auto x = gaussianLeaf(0.0, 1.0);
    auto y = gaussianLeaf(0.0, 1.0);
    return (y + x) + x;
}

std::vector<double>
parallelSamples(const Uncertain<double>& expr, std::size_t n,
                unsigned threads, std::uint64_t seed,
                std::size_t chunk = 256)
{
    Rng rng = testing::testRng(seed);
    ParallelSampler sampler(ParallelOptions{threads, chunk});
    return expr.takeSamples(n, rng, sampler);
}

TEST(ParallelEquivalence, BitExactAcrossThreadCounts)
{
    const std::size_t n = 10000;
    for (auto make :
         {+[] { return gaussianLeaf(0.0, 1.0); },
          +[] { return rayleighLeaf(1.63); }, +[] { return mixtureLeaf(); },
          +[] { return sharedLeafGraph(); }}) {
        auto expr = make();
        auto one = parallelSamples(expr, n, 1, 800);
        auto two = parallelSamples(expr, n, 2, 800);
        auto eight = parallelSamples(expr, n, 8, 800);
        EXPECT_EQ(one, two);
        EXPECT_EQ(one, eight);
    }
}

TEST(ParallelEquivalence, BitExactToSerialBatchSamplerAtEqualBlockSize)
{
    // The block partition defines the stream family, so the parallel
    // engine at any thread count must reproduce the serial columnar
    // engine exactly when chunkSize == blockSize. This is also the
    // regression test for the threads == 1 inline fast path: with the
    // pool bypassed, the chunk loop must still be the same execution.
    auto expr = sharedLeafGraph();
    const std::size_t n = 5000;
    Rng batchRng = testing::testRng(801);
    BatchSampler batch(BatchOptions{256});
    auto serial = expr.takeSamples(n, batchRng, batch);
    for (unsigned threads : {1u, 4u}) {
        auto parallel = parallelSamples(expr, n, threads, 801, 256);
        EXPECT_EQ(serial, parallel) << "threads " << threads;
    }
}

TEST(ParallelEquivalence, RepeatedCallsAdvanceTheStreamFamily)
{
    auto expr = gaussianLeaf(0.0, 1.0);
    Rng rng = testing::testRng(802);
    ParallelSampler sampler(ParallelOptions{2, 256});
    auto first = expr.takeSamples(1000, rng, sampler);
    auto second = expr.takeSamples(1000, rng, sampler);
    EXPECT_NE(first, second);
}

TEST(ParallelEquivalence, SerialVsParallelKsGaussian)
{
    auto expr = gaussianLeaf(0.0, 1.0) * 2.0 + 1.0;
    const std::size_t n = 20000;
    Rng serialRng = testing::testRng(803);
    auto serial = expr.takeSamples(n, serialRng);
    auto parallel = parallelSamples(expr, n, 8, 804);
    EXPECT_TRUE(testing::ksSameDistribution(serial, parallel));
}

TEST(ParallelEquivalence, SerialVsParallelKsRayleigh)
{
    auto expr = rayleighLeaf(1.63);
    const std::size_t n = 20000;
    Rng serialRng = testing::testRng(805);
    auto serial = expr.takeSamples(n, serialRng);
    auto parallel = parallelSamples(expr, n, 8, 806);
    EXPECT_TRUE(testing::ksSameDistribution(serial, parallel));
}

TEST(ParallelEquivalence, SerialVsParallelKsMixture)
{
    auto expr = mixtureLeaf();
    const std::size_t n = 20000;
    Rng serialRng = testing::testRng(807);
    auto serial = expr.takeSamples(n, serialRng);
    auto parallel = parallelSamples(expr, n, 8, 808);
    EXPECT_TRUE(testing::ksSameDistribution(serial, parallel));
}

TEST(ParallelEquivalence, SerialVsParallelKsSharedLeafGraph)
{
    // Shared-leaf topology: parallel sampling must preserve the
    // Figure 8(b) semantics (one X draw per pass), so the variance is
    // Var[Y] + 4 Var[X] = 5 and the KS test sees the same law.
    auto expr = sharedLeafGraph();
    const std::size_t n = 20000;
    Rng serialRng = testing::testRng(809);
    auto serial = expr.takeSamples(n, serialRng);
    auto parallel = parallelSamples(expr, n, 8, 810);
    EXPECT_TRUE(testing::ksSameDistribution(serial, parallel));

    stats::OnlineSummary summary;
    for (double v : parallel)
        summary.add(v);
    EXPECT_NEAR(summary.variance(), 5.0, 0.4);
}

TEST(ParallelEquivalence, SharedSubexpressionResidualIsZeroInParallel)
{
    // B - Y - 2X must be identically ~0 in every parallel chunk; a
    // per-thread double draw of X would make it a unit-scale residual.
    auto x = gaussianLeaf(0.0, 1.0);
    auto y = gaussianLeaf(0.0, 1.0);
    auto residual = ((y + x) + x) - y - (x * 2.0);
    auto values = parallelSamples(residual, 5000, 8, 811);
    for (double v : values)
        ASSERT_NEAR(v, 0.0, 1e-12);
}

TEST(ParallelEquivalence, ExpectedValueBitExactAcrossThreadCounts)
{
    auto expr = sharedLeafGraph();
    double results[3];
    unsigned threadCounts[3] = {1, 2, 8};
    for (int i = 0; i < 3; ++i) {
        Rng rng = testing::testRng(812);
        ParallelSampler sampler(
            ParallelOptions{threadCounts[i], 256});
        results[i] = expr.expectedValue(20000, rng, sampler);
    }
    EXPECT_DOUBLE_EQ(results[0], results[1]);
    EXPECT_DOUBLE_EQ(results[0], results[2]);
    EXPECT_NEAR(results[0], 0.0, testing::meanTolerance(2.24, 20000));
}

TEST(ParallelEquivalence, ProbabilityMatchesSerialEstimate)
{
    auto speed = gaussianLeaf(4.2, 1.0);
    auto cond = speed > 4.0;
    const std::size_t n = 50000;
    Rng serialRng = testing::testRng(813);
    double serial = cond.probability(n, serialRng);
    Rng parallelRng = testing::testRng(814);
    ParallelSampler sampler(ParallelOptions{8, 512});
    double parallel = cond.probability(n, parallelRng, sampler);
    EXPECT_NEAR(parallel, serial,
                2.0 * testing::proportionTolerance(0.58, n));
}

TEST(ParallelEquivalence, SprtDecisionParityAtOperatingPoints)
{
    // Paper operating points: true Pr well above / below the 0.5
    // threshold must produce the same decisions chunk-wise as
    // serially, every time.
    struct Point
    {
        double mu;
        bool expected;
    };
    const Point points[] = {{4.8, true}, {3.2, false}};
    ConditionalOptions options;
    ParallelSampler sampler(ParallelOptions{4, 128});
    for (const auto& point : points) {
        auto cond = gaussianLeaf(point.mu, 1.0) > 4.0;
        for (int trial = 0; trial < 20; ++trial) {
            Rng serialRng = testing::testRng(
                820 + static_cast<std::uint64_t>(trial));
            Rng parallelRng = testing::testRng(
                860 + static_cast<std::uint64_t>(trial));
            bool serial = cond.pr(0.5, options, serialRng);
            bool parallel =
                cond.pr(0.5, options, parallelRng, sampler);
            EXPECT_EQ(serial, point.expected) << "mu " << point.mu;
            EXPECT_EQ(parallel, point.expected) << "mu " << point.mu;
        }
    }
}

TEST(ParallelEquivalence, SprtAcceptanceRateParityNearThreshold)
{
    // Near the indifference region the decision is stochastic; the
    // chunk-wise test must accept at a rate statistically equal to
    // the serial test's.
    auto cond = gaussianLeaf(4.1, 1.0) > 4.0; // Pr ~ 0.54
    ConditionalOptions options;
    options.sprt.maxSamples = 400;
    ParallelSampler sampler(ParallelOptions{4, 64});
    const int kTrials = 200;
    int serialAccepts = 0;
    int parallelAccepts = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
        Rng serialRng =
            testing::testRng(900 + static_cast<std::uint64_t>(trial));
        Rng parallelRng = testing::testRng(
            1900 + static_cast<std::uint64_t>(trial));
        serialAccepts += cond.pr(0.5, options, serialRng) ? 1 : 0;
        parallelAccepts +=
            cond.pr(0.5, options, parallelRng, sampler) ? 1 : 0;
    }
    double serialRate = serialAccepts / double(kTrials);
    double parallelRate = parallelAccepts / double(kTrials);
    // Two independent proportions, 5-sigma-ish envelope.
    EXPECT_NEAR(parallelRate, serialRate,
                2.0 * testing::proportionTolerance(0.5, kTrials));
}

TEST(ParallelEquivalence, ChunkedSprtSampleSizeStaysWithinAChunk)
{
    auto cond = gaussianLeaf(4.5, 1.0) > 4.0;
    ConditionalOptions options;
    ParallelSampler sampler(ParallelOptions{4, 64});
    const std::size_t chunk = std::max<std::size_t>(
        options.sprt.batchSize, 4 * 64);
    for (int trial = 0; trial < 10; ++trial) {
        Rng rng =
            testing::testRng(950 + static_cast<std::uint64_t>(trial));
        auto result = cond.evaluate(0.5, options, rng, sampler);
        EXPECT_EQ(result.decision,
                  stats::TestDecision::AcceptAlternative);
        // The test stops within the chunk it decided in.
        EXPECT_LE(result.samplesUsed, chunk);
    }
}

TEST(ParallelEquivalence, FixedAndGroupSequentialStrategiesWork)
{
    auto cond = gaussianLeaf(4.6, 1.0) > 4.0;
    ParallelSampler sampler(ParallelOptions{4, 128});

    ConditionalOptions fixed;
    fixed.strategy = ConditionalStrategy::FixedSample;
    fixed.fixedSamples = 500;
    Rng rngA = testing::testRng(970);
    auto fixedResult = cond.evaluate(0.5, fixed, rngA, sampler);
    EXPECT_EQ(fixedResult.decision,
              stats::TestDecision::AcceptAlternative);
    EXPECT_EQ(fixedResult.samplesUsed, 500u);

    ConditionalOptions group;
    group.strategy = ConditionalStrategy::GroupSequential;
    Rng rngB = testing::testRng(971);
    auto groupResult = cond.evaluate(0.5, group, rngB, sampler);
    EXPECT_EQ(groupResult.decision,
              stats::TestDecision::AcceptAlternative);
}

} // namespace
} // namespace core
} // namespace uncertain
