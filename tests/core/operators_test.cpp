/**
 * @file
 * The Table 1 operator algebra: arithmetic propagates moments
 * correctly, comparisons produce the right Bernoulli parameters,
 * logical operators compose events, plain values coerce to point
 * masses, and mixed base types lift.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "random/uniform.hpp"
#include "stats/summary.hpp"
#include "support/special_math.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return core::fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

stats::OnlineSummary
summarize(const Uncertain<double>& u, std::size_t n, std::uint64_t seed)
{
    Rng rng = testing::testRng(seed);
    stats::OnlineSummary s;
    for (double v : u.takeSamples(n, rng))
        s.add(v);
    return s;
}

TEST(Arithmetic, SumOfIndependentGaussians)
{
    auto a = gaussianLeaf(4.0, 1.0);
    auto b = gaussianLeaf(5.0, 2.0);
    auto c = a + b;
    auto s = summarize(c, 100000, 101);
    EXPECT_NEAR(s.mean(), 9.0, testing::meanTolerance(std::sqrt(5.0),
                                                      100000));
    EXPECT_NEAR(s.variance(), 5.0, 0.2);
}

TEST(Arithmetic, DifferenceCancelsMeansAddsVariances)
{
    auto a = gaussianLeaf(10.0, 1.5);
    auto b = gaussianLeaf(4.0, 2.0);
    auto s = summarize(a - b, 100000, 102);
    EXPECT_NEAR(s.mean(), 6.0, testing::meanTolerance(2.5, 100000));
    EXPECT_NEAR(s.variance(), 1.5 * 1.5 + 4.0, 0.3);
}

TEST(Arithmetic, ProductOfIndependentVariables)
{
    auto a = gaussianLeaf(3.0, 0.5);
    auto b = gaussianLeaf(2.0, 0.5);
    auto s = summarize(a * b, 100000, 103);
    EXPECT_NEAR(s.mean(), 6.0, 0.05);
    // Var[XY] = (muX^2 + sX^2)(muY^2 + sY^2) - muX^2 muY^2.
    double expected = (9.25 * 4.25) - 36.0;
    EXPECT_NEAR(s.variance(), expected, 0.3);
}

TEST(Arithmetic, DivisionByPointMass)
{
    auto a = gaussianLeaf(8.0, 2.0);
    auto s = summarize(a / 2.0, 100000, 104);
    EXPECT_NEAR(s.mean(), 4.0, 0.05);
    EXPECT_NEAR(s.variance(), 1.0, 0.05);
}

TEST(Arithmetic, ScalarCoercionBothSides)
{
    auto a = gaussianLeaf(1.0, 1.0);
    auto left = 10.0 - a;
    auto right = a + 2;
    EXPECT_NEAR(summarize(left, 50000, 105).mean(), 9.0, 0.05);
    EXPECT_NEAR(summarize(right, 50000, 106).mean(), 3.0, 0.05);
}

TEST(Arithmetic, UnaryNegation)
{
    auto a = gaussianLeaf(3.0, 1.0);
    EXPECT_NEAR(summarize(-a, 50000, 107).mean(), -3.0, 0.05);
}

TEST(Arithmetic, ComputationCompoundsUncertainty)
{
    // Figure 6: the result of a + b is wider than either operand.
    auto a = gaussianLeaf(0.0, 1.0);
    auto b = gaussianLeaf(0.0, 1.0);
    auto c = a + b;
    EXPECT_GT(summarize(c, 50000, 108).stddev(),
              summarize(a, 50000, 109).stddev() * 1.3);
}

TEST(Comparison, BernoulliParameterMatchesAnalyticTail)
{
    auto a = gaussianLeaf(4.0, 1.0);
    Uncertain<bool> gt = a > 5.0;
    Rng rng = testing::testRng(110);
    double p = gt.probability(100000, rng);
    double expected = 1.0 - math::normalCdf(1.0);
    EXPECT_NEAR(p, expected, testing::proportionTolerance(expected,
                                                          100000));
}

TEST(Comparison, AllOrderOperatorsAreConsistent)
{
    auto a = gaussianLeaf(0.0, 1.0);
    Rng rng = testing::testRng(111);
    // Pr[a < 0] + Pr[a >= 0] must be 1 on identical sampling: check
    // via complementary estimates on separate streams.
    double pLt = (a < 0.0).probability(50000, rng);
    double pGe = (a >= 0.0).probability(50000, rng);
    EXPECT_NEAR(pLt + pGe, 1.0, 0.02);
    double pLe = (a <= 0.0).probability(50000, rng);
    double pGt = (a > 0.0).probability(50000, rng);
    EXPECT_NEAR(pLe + pGt, 1.0, 0.02);
}

TEST(Comparison, ExactEqualityOfContinuousIsAlmostSurelyFalse)
{
    auto a = gaussianLeaf(0.0, 1.0);
    auto b = gaussianLeaf(0.0, 1.0);
    Rng rng = testing::testRng(112);
    EXPECT_DOUBLE_EQ((a == b).probability(5000, rng), 0.0);
    // But a variable always equals itself (shared node).
    EXPECT_DOUBLE_EQ((a == a).probability(5000, rng), 1.0);
}

TEST(Comparison, ApproxEqualHasTheIntervalProbability)
{
    auto a = gaussianLeaf(3.0, 1.0);
    Rng rng = testing::testRng(113);
    double p = approxEqual(a, 3.0, 0.5).probability(100000, rng);
    double expected = math::normalCdf(0.5) - math::normalCdf(-0.5);
    EXPECT_NEAR(p, expected, testing::proportionTolerance(expected,
                                                          100000));
}

TEST(Comparison, NotEqualOnDiscreteBaseType)
{
    auto die = Uncertain<int>::fromSampler(
        [](Rng& rng) { return static_cast<int>(rng.nextBelow(6)) + 1; },
        "d6");
    Rng rng = testing::testRng(114);
    double p = (die == 3).probability(60000, rng);
    EXPECT_NEAR(p, 1.0 / 6.0,
                testing::proportionTolerance(1.0 / 6.0, 60000));
    double pNe = (die != 3).probability(60000, rng);
    EXPECT_NEAR(pNe, 5.0 / 6.0,
                testing::proportionTolerance(5.0 / 6.0, 60000));
}

TEST(Logical, ConjunctionSharesDrawsAcrossOperands)
{
    // Pr[3 < a && a < 5] must be the interval probability, not the
    // product of marginals: both comparisons see the same draw.
    auto a = gaussianLeaf(4.0, 1.0);
    auto both = (a > 3.0) && (a < 5.0);
    Rng rng = testing::testRng(115);
    double p = both.probability(100000, rng);
    double expected = math::normalCdf(1.0) - math::normalCdf(-1.0);
    EXPECT_NEAR(p, expected, testing::proportionTolerance(expected,
                                                          100000));
}

TEST(Logical, DisjunctionAndNegation)
{
    auto a = gaussianLeaf(0.0, 1.0);
    auto either = (a < -1.0) || (a > 1.0);
    Rng rng = testing::testRng(116);
    double expected = 2.0 * (1.0 - math::normalCdf(1.0));
    EXPECT_NEAR(either.probability(100000, rng), expected,
                testing::proportionTolerance(expected, 100000));

    auto neither = !either;
    EXPECT_NEAR(neither.probability(100000, rng), 1.0 - expected,
                testing::proportionTolerance(expected, 100000));
}

TEST(Logical, MixingWithPlainBools)
{
    auto a = gaussianLeaf(10.0, 0.1);
    Rng rng = testing::testRng(117);
    EXPECT_NEAR((true && (a > 5.0)).probability(1000, rng), 1.0, 1e-12);
    EXPECT_NEAR((false && (a > 5.0)).probability(1000, rng), 0.0,
                1e-12);
    EXPECT_NEAR((false || (a > 5.0)).probability(1000, rng), 1.0,
                1e-12);
}

TEST(Logical, ExcludedMiddleHoldsUnderSharedSampling)
{
    // x < 2 || x >= 2 is a tautology only because both operands share
    // the same draw per pass.
    auto x = gaussianLeaf(2.0, 5.0);
    auto tautology = (x < 2.0) || (x >= 2.0);
    Rng rng = testing::testRng(118);
    EXPECT_DOUBLE_EQ(tautology.probability(5000, rng), 1.0);
}

TEST(Lift, MixedBaseTypesFollowTheFunctor)
{
    // Real division of integers: Int -> Int -> Double (the paper's
    // example of a lifted operator with any type).
    auto numerator = Uncertain<int>::fromSampler(
        [](Rng& rng) { return static_cast<int>(rng.nextBelow(10)); },
        "digit");
    auto ratio = core::liftBinary(
        [](int a, int b) {
            return static_cast<double>(a) / static_cast<double>(b);
        },
        numerator, Uncertain<int>(4), "intdiv");
    static_assert(
        std::is_same_v<decltype(ratio), Uncertain<double>>);
    Rng rng = testing::testRng(119);
    EXPECT_NEAR(ratio.expectedValue(50000, rng), 4.5 / 4.0, 0.02);
}

TEST(Lift, MapAppliesArbitraryFunctions)
{
    auto u = core::fromDistribution(
        std::make_shared<random::Uniform>(0.0, 1.0));
    auto squared = u.map([](double x) { return x * x; }, "square");
    Rng rng = testing::testRng(120);
    EXPECT_NEAR(squared.expectedValue(100000, rng), 1.0 / 3.0, 0.01);
}

TEST(ExpectedValue, MatchesDistributionMean)
{
    auto a = gaussianLeaf(7.0, 3.0);
    Rng rng = testing::testRng(121);
    EXPECT_NEAR(a.expectedValue(100000, rng), 7.0,
                testing::meanTolerance(3.0, 100000));
}

TEST(ExpectedValue, AdaptiveConvergesToTheMean)
{
    auto a = gaussianLeaf(20.0, 2.0);
    Rng rng = testing::testRng(122);
    stats::AdaptiveMeanOptions options;
    options.relativeTolerance = 0.005;
    auto result = a.expectedValueAdaptive(options, rng);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.mean, 20.0, 0.5);
}

TEST(ExpectedValue, PointMassIsExact)
{
    Uncertain<double> five(5.0);
    Rng rng = testing::testRng(123);
    EXPECT_DOUBLE_EQ(five.expectedValue(10, rng), 5.0);
}

} // namespace
} // namespace uncertain
