/**
 * @file
 * PlanCache behaviour under churn (core/batch.hpp): bounded LRU
 * eviction with counters, no stale plans after a root is rebuilt at a
 * possibly recycled address, and thread safety when one cache is
 * shared between samplers. The staleness guarantee rests on the plan
 * pinning its graph alive while cached — a live cache key can never
 * alias a recycled node address, and once an entry is evicted its key
 * is gone, so a recycled address simply misses.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "core/core.hpp"
#include "core/jit/jit_compiler.hpp"
#include "core/simd.hpp"
#include "random/gaussian.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

Uncertain<double>
gaussianLeaf()
{
    return fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
}

/** A throwaway graph whose exact sample value identifies it. */
Uncertain<double>
taggedConstGraph(double tag)
{
    return Uncertain<double>(tag) * Uncertain<double>(2.0)
           + Uncertain<double>(1.0);
}

TEST(PlanCache, EvictsLeastRecentlyUsedAtCapacity)
{
    PlanCache cache(4);
    std::vector<Uncertain<double>> roots;
    for (int i = 0; i < 6; ++i)
        roots.push_back(taggedConstGraph(static_cast<double>(i)));

    for (const auto& root : roots)
        cache.planFor(root.node());
    EXPECT_EQ(cache.size(), 4u);
    auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 6u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.hits, 0u);

    // The two oldest (0, 1) are gone; the four newest hit.
    for (int i = 2; i < 6; ++i)
        cache.planFor(roots[static_cast<std::size_t>(i)].node());
    EXPECT_EQ(cache.stats().hits, 4u);
    cache.planFor(roots[0].node());
    EXPECT_EQ(cache.stats().misses, 7u);
}

TEST(PlanCache, TouchingAnEntryProtectsItFromEviction)
{
    PlanCache cache(2);
    auto a = taggedConstGraph(1.0);
    auto b = taggedConstGraph(2.0);
    auto c = taggedConstGraph(3.0);
    cache.planFor(a.node());
    cache.planFor(b.node());
    cache.planFor(a.node()); // a becomes MRU
    cache.planFor(c.node()); // evicts b, not a
    EXPECT_EQ(cache.stats().evictions, 1u);
    cache.planFor(a.node());
    EXPECT_EQ(cache.stats().misses, 3u); // a still cached
    cache.planFor(b.node());
    EXPECT_EQ(cache.stats().misses, 4u); // b was the victim
}

TEST(PlanCache, DistinctOptimizerConfigsGetDistinctPlans)
{
    PlanCache cache;
    auto expr = gaussianLeaf() + gaussianLeaf();
    auto optimized = cache.planFor(expr.node(), PlanOptions{});
    auto plain = cache.planFor(expr.node(), PlanOptions::disabled());
    EXPECT_NE(optimized.get(), plain.get());
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.planFor(expr.node(), PlanOptions{}).get(),
              optimized.get());
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCache, BackendAndJitAvailabilityAreKeyed)
{
    // One cache shared between samplers that request different
    // backends must hold one plan per backend — a Jit plan served to
    // a Scalar sampler (or vice versa) would silently run the wrong
    // code. The key also folds in the execution environment (active
    // ISA, JIT availability), so flipping a process-wide kill switch
    // invalidates rather than aliases.
    PlanCache cache;
    auto expr = gaussianLeaf() * Uncertain<double>(3.0)
                + Uncertain<double>(0.5);

    PlanOptions jitOpt;
    jitOpt.backend = simd::ExecBackend::Jit;
    PlanOptions simdOpt;
    simdOpt.backend = simd::ExecBackend::Simd;
    PlanOptions scalarOpt;
    scalarOpt.backend = simd::ExecBackend::Scalar;

    auto jitPlan = cache.planFor(expr.node(), jitOpt);
    auto simdPlan = cache.planFor(expr.node(), simdOpt);
    auto scalarPlan = cache.planFor(expr.node(), scalarOpt);
    EXPECT_NE(jitPlan.get(), simdPlan.get());
    EXPECT_NE(jitPlan.get(), scalarPlan.get());
    EXPECT_NE(simdPlan.get(), scalarPlan.get());
    EXPECT_EQ(cache.stats().misses, 3u);

    // Same backend again: hits, not recompiles.
    EXPECT_EQ(cache.planFor(expr.node(), jitOpt).get(), jitPlan.get());
    EXPECT_EQ(cache.stats().hits, 1u);

    // Flip the JIT kill switch: the environment byte changes, so an
    // Auto/Jit request misses instead of reusing the fragment-backed
    // plan compiled while the JIT was live.
    const bool jitWasOn = jit::available();
    jit::setForceDisabled(true);
    auto jitOffPlan = cache.planFor(expr.node(), jitOpt);
    jit::setForceDisabled(false);
    if (jitWasOn) {
        EXPECT_NE(jitOffPlan.get(), jitPlan.get());
        EXPECT_FALSE(jitOffPlan->stats().jitStrips);
    }

    // Likewise force-scalar: an Auto plan built under the switch must
    // not be served once the vector unit is visible again.
    auto autoPlan = cache.planFor(expr.node(), PlanOptions{});
    simd::setForceScalar(true);
    auto forcedPlan = cache.planFor(expr.node(), PlanOptions{});
    simd::setForceScalar(false);
    if (simd::activeIsa() != simd::Isa::Scalar) {
        EXPECT_NE(forcedPlan.get(), autoPlan.get());
        EXPECT_FALSE(forcedPlan->stats().simdStrips);
        EXPECT_FALSE(forcedPlan->stats().jitStrips);
    }
}

TEST(PlanCache, NeverReturnsStalePlanUnderRootChurn)
{
    // Rebuild-and-drop roots through a tiny cache so entries are
    // evicted and node addresses get recycled by the allocator. Every
    // returned plan must compute *its* root's value — a stale plan
    // for a recycled address would produce a different constant.
    auto cache = std::make_shared<PlanCache>(4);
    Rng rng = testing::testRng(60);
    for (int i = 0; i < 100; ++i) {
        BatchSampler sampler(BatchOptions{}, cache);
        auto expr = taggedConstGraph(static_cast<double>(i));
        auto samples = expr.takeSamples(64, rng, sampler);
        for (double v : samples)
            ASSERT_EQ(v, static_cast<double>(i) * 2.0 + 1.0)
                << "stale plan at iteration " << i;
    }
    EXPECT_GE(cache->stats().evictions, 90u);
}

TEST(PlanCache, SharedAcrossSamplersReusesOnePlan)
{
    auto cache = std::make_shared<PlanCache>();
    auto expr = gaussianLeaf() * Uncertain<double>(3.0);
    BatchSampler first(BatchOptions{}, cache);
    BatchSampler second(BatchOptions{}, cache);
    Rng rng = testing::testRng(61);
    first.takeSamples(expr.node(), 256, rng);
    second.takeSamples(expr.node(), 256, rng);
    auto stats = cache->stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_GE(stats.hits, 1u);
}

TEST(PlanCache, ThreadSafeWhenSharedWithParallelSampler)
{
    // One cache shared by a ParallelSampler and per-thread
    // BatchSamplers, hammered concurrently with both a shared root
    // and thread-private churning roots. Run under TSan in CI.
    auto cache = std::make_shared<PlanCache>(8);
    auto shared = gaussianLeaf() + gaussianLeaf();
    const auto sharedNode = shared.node();

    std::vector<std::thread> threads;
    std::vector<int> failures(4, 0);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            Rng rng = testing::testRng(
                static_cast<std::uint64_t>(70 + t));
            BatchSampler sampler(BatchOptions{}, cache);
            for (int i = 0; i < 25; ++i) {
                auto tagged = taggedConstGraph(
                    static_cast<double>(t * 1000 + i));
                auto values = tagged.takeSamples(32, rng, sampler);
                for (double v : values)
                    if (v
                        != static_cast<double>(t * 1000 + i) * 2.0
                               + 1.0)
                        ++failures[static_cast<std::size_t>(t)];
                auto draws =
                    sampler.takeSamples(sharedNode, 128, rng);
                if (draws.size() != 128)
                    ++failures[static_cast<std::size_t>(t)];
            }
        });
    }
    ParallelSampler parallel(ParallelOptions{2, 256}, cache);
    Rng rng = testing::testRng(62);
    for (int i = 0; i < 25; ++i)
        parallel.takeSamples(sharedNode, 512, rng);
    for (auto& thread : threads)
        thread.join();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0)
            << "thread " << t;
}

TEST(PlanCache, EvictedPlanStaysUsableWhileHeld)
{
    PlanCache cache(1);
    auto a = gaussianLeaf() * Uncertain<double>(2.0);
    auto b = gaussianLeaf() + Uncertain<double>(1.0);
    auto planA = cache.planFor(a.node());
    cache.planFor(b.node()); // evicts a's entry
    EXPECT_EQ(cache.stats().evictions, 1u);
    // The handed-out shared_ptr (and its pinned graph) stay valid.
    auto ws = planA->makeWorkspace();
    Rng rng = testing::testRng(63);
    planA->runBlock(ws, rng, 0, 128);
    EXPECT_EQ(planA->leafCount(), 1u);
}

} // namespace
} // namespace core
} // namespace uncertain
