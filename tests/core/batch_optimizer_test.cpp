/**
 * @file
 * Pass-by-pass unit tests for the batch-plan optimizer
 * (core/batch_plan.hpp). The contract under test: every pass — and
 * every combination of passes — leaves the drawn samples bit-identical
 * to the unoptimized plan, while PlanStats reports what each pass
 * actually did.
 *
 *  - structural CSE merges structurally equal interior nodes but
 *    never merges distinct stochastic leaves (Figure 8 SSA semantics);
 *  - constant folding matches scalar evaluation exactly and hoists
 *    the splats out of the per-block loop;
 *  - fusion is bit-exact on integer/comparison ops and (at least)
 *    KS-equivalent at testing::kKsAlpha on floating-point chains — on
 *    this implementation it is in fact bit-exact there too, because
 *    no pass reassociates floating point;
 *  - buffer reuse produces identical output to no-reuse plans while
 *    materializing fewer columns.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/core.hpp"
#include "core/inspect.hpp"
#include "random/gaussian.hpp"
#include "stat_assert.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

Uncertain<double>
gaussianLeaf(double mu = 0.0, double sigma = 1.0)
{
    return fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

/** Chain of @p depth additions over fresh leaves (the bench graph). */
Uncertain<double>
buildChain(int depth)
{
    auto acc = gaussianLeaf();
    for (int i = 1; i < depth; ++i)
        acc = acc + gaussianLeaf();
    return acc;
}

template <typename T>
std::vector<T>
samplesWith(const Uncertain<T>& expr, const PlanOptions& optimizer,
            std::size_t n, std::uint64_t seed,
            std::size_t blockSize = 1024)
{
    Rng rng = testing::testRng(seed);
    BatchSampler sampler(BatchOptions{blockSize, optimizer});
    return expr.takeSamples(n, rng, sampler);
}

PlanOptions
optionsFromMask(unsigned mask)
{
    PlanOptions options;
    options.cse = (mask & 1u) != 0;
    options.constantFolding = (mask & 2u) != 0;
    options.fuseElementwise = (mask & 4u) != 0;
    options.reuseBuffers = (mask & 8u) != 0;
    return options;
}

// ---------------------------------------------------------------------
// Structural CSE.
// ---------------------------------------------------------------------

TEST(BatchOptimizer, CseMergesStructurallyEqualInteriorNodes)
{
    // Two *distinct* (x + y) node objects over the same leaves. The
    // tree walk memoizes x and y per epoch, so both sums take equal
    // values; the optimizer must prove that structurally and share
    // one column.
    auto x = gaussianLeaf();
    auto y = gaussianLeaf();
    auto s1 = x + y;
    auto s2 = x + y;
    ASSERT_NE(s1.node().get(), s2.node().get());
    auto expr = s1 * s2;

    auto stats = planStats(expr);
    EXPECT_EQ(stats.columnsLowered, 5u); // x, y, s1, s2, product
    EXPECT_EQ(stats.leafColumns, 2u);
    EXPECT_EQ(stats.cseMerged, 1u);
    EXPECT_EQ(stats.deadStepsRemoved, 0u);

    auto optimized = samplesWith(expr, PlanOptions{}, 6000, 42);
    auto plain = samplesWith(expr, PlanOptions::disabled(), 6000, 42);
    EXPECT_EQ(optimized, plain);

    // (x + y)^2 is nonnegative; a bad merge with a fresh draw is not.
    for (double v : optimized)
        ASSERT_GE(v, 0.0);
}

TEST(BatchOptimizer, CseNeverMergesDistinctStochasticLeaves)
{
    // x + y over iid leaves: the leaves are structurally identical
    // (same distribution, same parameters) but statistically
    // distinct. Var[x + y] = 2; a leaf merge would produce 2x with
    // variance 4.
    auto expr = gaussianLeaf() + gaussianLeaf();
    auto stats = planStats(expr);
    EXPECT_EQ(stats.cseMerged, 0u);
    EXPECT_EQ(stats.leafColumns, 2u);

    auto samples = samplesWith(expr, PlanOptions{}, 20000, 43);
    EXPECT_TRUE(
        testing::momentsMatch(samples, 0.0, std::sqrt(2.0)));

    // And the deliberate share keeps its Figure 8 variance of 4.
    auto x = gaussianLeaf();
    auto shared = x + x;
    auto sharedSamples = samplesWith(shared, PlanOptions{}, 20000, 44);
    EXPECT_TRUE(testing::momentsMatch(sharedSamples, 0.0, 2.0));
}

TEST(BatchOptimizer, CseSkipsStatefulFunctors)
{
    // clamp carries captured bounds: two clamp nodes have the same
    // functor *type* but different state, so they must not merge.
    auto x = gaussianLeaf();
    auto narrow = clamp(x, -0.5, 0.5);
    auto wide = clamp(x, -2.0, 2.0);
    auto expr = narrow + wide;

    auto optimized = samplesWith(expr, PlanOptions{}, 6000, 45);
    auto plain = samplesWith(expr, PlanOptions::disabled(), 6000, 45);
    EXPECT_EQ(optimized, plain);
}

// ---------------------------------------------------------------------
// Constant folding.
// ---------------------------------------------------------------------

TEST(BatchOptimizer, ConstantFoldingMatchesScalarEvaluation)
{
    // A pure point-mass subtree folds to one hoisted splat whose
    // value matches scalar arithmetic exactly.
    Uncertain<double> c(2.5);
    auto expr = c * 4.0 + 1.5;

    auto stats = planStats(expr);
    EXPECT_EQ(stats.constantsFolded, 2u);
    EXPECT_EQ(stats.constantsHoisted, 1u); // only the root survives DCE
    EXPECT_GE(stats.deadStepsRemoved, 2u);

    auto samples = samplesWith(expr, PlanOptions{}, 3000, 46);
    for (double v : samples)
        ASSERT_EQ(v, 2.5 * 4.0 + 1.5);
}

TEST(BatchOptimizer, ConstantSubtreeUnderStochasticRootFolds)
{
    // leaf + (2.0 * 3.0): the constant subtree collapses, the sum
    // does not, and the output is bit-identical to the unoptimized
    // plan (same scalar constant feeds the same add kernel).
    auto expr = gaussianLeaf() + Uncertain<double>(2.0) * 3.0;

    auto stats = planStats(expr);
    EXPECT_EQ(stats.constantsFolded, 1u);
    EXPECT_EQ(stats.constantsHoisted, 1u);

    auto optimized = samplesWith(expr, PlanOptions{}, 6000, 47);
    auto plain = samplesWith(expr, PlanOptions::disabled(), 6000, 47);
    EXPECT_EQ(optimized, plain);
}

TEST(BatchOptimizer, HoistedConstantsSurviveShrinkingBlocks)
{
    // n not divisible by blockSize: the last block is shorter, and a
    // later call reuses the workspace with a shorter first block. The
    // hoisted splat must still cover every index read.
    auto expr = gaussianLeaf() * Uncertain<double>(2.0)
                + Uncertain<double>(7.0);
    Rng rng = testing::testRng(48);
    BatchSampler sampler(BatchOptions{512, PlanOptions{}});
    auto first = expr.takeSamples(1200, rng, sampler);
    auto second = expr.takeSamples(300, rng, sampler);
    Rng plainRng = testing::testRng(48);
    BatchSampler plain(BatchOptions{512, PlanOptions::disabled()});
    auto firstPlain = expr.takeSamples(1200, plainRng, plain);
    auto secondPlain = expr.takeSamples(300, plainRng, plain);
    EXPECT_EQ(first, firstPlain);
    EXPECT_EQ(second, secondPlain);
}

// ---------------------------------------------------------------------
// Elementwise fusion.
// ---------------------------------------------------------------------

TEST(BatchOptimizer, FusedComparisonOpsAreBitExact)
{
    // Boolean root over a fused arithmetic chain: comparisons and
    // logical combines are integer-valued, so optimized and
    // unoptimized plans must agree exactly, element by element.
    auto x = gaussianLeaf();
    auto y = gaussianLeaf();
    auto expr = ((x * 2.0 + y) > 0.5) && (x < 1.0);

    auto stats = planStats(expr);
    EXPECT_GE(stats.fusedKernels, 1u);
    EXPECT_GE(stats.fusedOps, 2u);

    auto optimized = samplesWith(expr, PlanOptions{}, 8000, 49);
    auto plain = samplesWith(expr, PlanOptions::disabled(), 8000, 49);
    EXPECT_EQ(optimized, plain);
}

TEST(BatchOptimizer, FusedFpChainMatchesUnfused)
{
    // Deep unary/binary fp chain — the Fig. 6 compounding-error
    // shape. The ISSUE requires KS-equivalence at alpha; this
    // implementation never reassociates fp, so assert bit-exactness
    // too (the stronger regression guard).
    auto acc = gaussianLeaf();
    for (int i = 0; i < 12; ++i)
        acc = acc * 1.01 + 0.125 - gaussianLeaf(0.0, 0.01);

    auto fusedOn = PlanOptions{};
    auto fusedOff = PlanOptions{};
    fusedOff.fuseElementwise = false;
    auto fused = samplesWith(acc, fusedOn, 20000, 50);
    auto unfused = samplesWith(acc, fusedOff, 20000, 50);
    EXPECT_TRUE(testing::ksSameDistribution(fused, unfused));
    EXPECT_EQ(fused, unfused);
}

// ---------------------------------------------------------------------
// Buffer reuse.
// ---------------------------------------------------------------------

TEST(BatchOptimizer, BufferReuseIsOutputInvariant)
{
    auto expr = buildChain(16);
    auto reuseOn = PlanOptions{};
    auto reuseOff = PlanOptions{};
    reuseOff.reuseBuffers = false;
    auto recycled = samplesWith(expr, reuseOn, 10000, 51);
    auto plain = samplesWith(expr, reuseOff, 10000, 51);
    EXPECT_EQ(recycled, plain);
}

TEST(BatchOptimizer, BufferReuseShrinksDepth64WorkspaceAtLeast2x)
{
    // The acceptance graph: depth-64 chain of fresh leaves. 127
    // logical columns must map onto far fewer physical ones; the
    // acceptance criterion is >= 2x less peak workspace.
    auto expr = buildChain(64);
    auto stats = planStats(expr);
    EXPECT_EQ(stats.columnsLowered, 127u);
    EXPECT_EQ(stats.leafColumns, 64u);
    EXPECT_LT(stats.columnsMaterialized, stats.columnsLowered);
    EXPECT_LE(stats.bytesPerSampleMaterialized * 2,
              stats.bytesPerSampleLowered);
    EXPECT_LE(stats.peakWorkspaceBytes(8192) * 2,
              stats.unoptimizedWorkspaceBytes(8192));
}

// ---------------------------------------------------------------------
// The whole pipeline.
// ---------------------------------------------------------------------

/** A graph exercising every pass at once: shared structural dups,
 *  constant subtrees, fusable fp chains, and a comparison. */
Uncertain<double>
representativeGraph()
{
    auto x = gaussianLeaf();
    auto y = gaussianLeaf(1.0, 2.0);
    auto s1 = x + y;
    auto s2 = x + y;                       // CSE candidate
    auto k = Uncertain<double>(3.0) * 2.0; // folds to 6
    auto chain = (s1 * s2 - k) * 0.25 + 1.0;
    for (int i = 0; i < 4; ++i)
        chain = chain * 0.99 + 0.01;
    return chain;
}

TEST(BatchOptimizer, AllToggleCombinationsAreBitIdentical)
{
    auto expr = representativeGraph();
    auto baseline =
        samplesWith(expr, PlanOptions::disabled(), 8000, 52, 768);
    for (unsigned mask = 0; mask < 16; ++mask) {
        auto samples =
            samplesWith(expr, optionsFromMask(mask), 8000, 52, 768);
        EXPECT_EQ(samples, baseline) << "pass mask " << mask;
    }
}

TEST(BatchOptimizer, ParallelSamplerRunsOptimizedPlansUnchanged)
{
    // ParallelSampler at chunkSize == blockSize is bit-identical to
    // BatchSampler; that must keep holding with the optimizer on in
    // one engine and off in the other.
    auto expr = representativeGraph();
    const std::size_t n = 6000;

    Rng batchRng = testing::testRng(53);
    BatchSampler batch(BatchOptions{512, PlanOptions::disabled()});
    auto serial = expr.takeSamples(n, batchRng, batch);

    for (unsigned threads : {1u, 2u, 4u}) {
        Rng rng = testing::testRng(53);
        ParallelSampler parallel(
            ParallelOptions{threads, 512, PlanOptions{}});
        auto chunked = expr.takeSamples(n, rng, parallel);
        EXPECT_EQ(chunked, serial) << "threads " << threads;
    }
}

TEST(BatchOptimizer, OptimizerIsOnByDefault)
{
    PlanOptions defaults;
    EXPECT_TRUE(defaults.cse);
    EXPECT_TRUE(defaults.constantFolding);
    EXPECT_TRUE(defaults.fuseElementwise);
    EXPECT_TRUE(defaults.reuseBuffers);
    BatchOptions batchDefaults;
    EXPECT_TRUE(batchDefaults.optimizer.cse);
    ParallelOptions parallelDefaults;
    EXPECT_TRUE(parallelDefaults.optimizer.reuseBuffers);
}

} // namespace
} // namespace core
} // namespace uncertain
