/** @file Lifted math-function tests (core/functions.hpp). */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "random/uniform.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

Uncertain<double>
uniformLeaf(double lo, double hi)
{
    return core::fromDistribution(
        std::make_shared<random::Uniform>(lo, hi));
}

TEST(Functions, SqrtOfUniformHasKnownMean)
{
    // E[sqrt(U(0,1))] = 2/3.
    auto u = uniformLeaf(0.0, 1.0);
    Rng rng = testing::testRng(301);
    EXPECT_NEAR(uncertain::sqrt(u).expectedValue(100000, rng),
                2.0 / 3.0, 0.005);
}

TEST(Functions, ExpLogRoundTripIsExact)
{
    auto u = uniformLeaf(0.5, 2.0);
    auto roundTrip = uncertain::log(uncertain::exp(u)) - u;
    Rng rng = testing::testRng(302);
    for (int i = 0; i < 100; ++i)
        EXPECT_NEAR(roundTrip.sample(rng), 0.0, 1e-12);
}

TEST(Functions, AbsOfSymmetricGaussianHasHalfNormalMean)
{
    auto g = core::fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
    Rng rng = testing::testRng(303);
    // E|N(0,1)| = sqrt(2/pi).
    EXPECT_NEAR(uncertain::abs(g).expectedValue(100000, rng),
                std::sqrt(2.0 / M_PI), 0.01);
    EXPECT_NEAR(uncertain::fabs(g).expectedValue(100000, rng),
                std::sqrt(2.0 / M_PI), 0.01);
}

TEST(Functions, PowWithScalarExponent)
{
    auto u = uniformLeaf(0.0, 1.0);
    Rng rng = testing::testRng(304);
    // E[U^3] = 1/4.
    EXPECT_NEAR(uncertain::pow(u, 3.0).expectedValue(100000, rng),
                0.25, 0.005);
}

TEST(Functions, PowWithUncertainExponentSharesDraws)
{
    // x^1 with an uncertain exponent fixed at a point mass.
    auto u = uniformLeaf(1.0, 2.0);
    auto same = uncertain::pow(u, Uncertain<double>(1.0)) - u;
    Rng rng = testing::testRng(305);
    for (int i = 0; i < 50; ++i)
        EXPECT_NEAR(same.sample(rng), 0.0, 1e-12);
}

TEST(Functions, MinMaxAreOrderedPerSample)
{
    auto a = uniformLeaf(0.0, 1.0);
    auto b = uniformLeaf(0.0, 1.0);
    auto lo = uncertain::min(a, b);
    auto hi = uncertain::max(a, b);
    auto ordered = lo <= hi;
    Rng rng = testing::testRng(306);
    EXPECT_DOUBLE_EQ(ordered.probability(2000, rng), 1.0);
    // E[min(U,U)] = 1/3, E[max(U,U)] = 2/3.
    EXPECT_NEAR(lo.expectedValue(100000, rng), 1.0 / 3.0, 0.005);
    EXPECT_NEAR(hi.expectedValue(100000, rng), 2.0 / 3.0, 0.005);
}

TEST(Functions, MinOfAVariableWithItselfIsItself)
{
    auto a = uniformLeaf(0.0, 1.0);
    auto zero = uncertain::min(a, a) - a;
    Rng rng = testing::testRng(307);
    for (int i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(zero.sample(rng), 0.0);
}

TEST(Functions, ClampRestrictsTheSupport)
{
    auto g = core::fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 5.0));
    auto clamped = uncertain::clamp(g, -1.0, 1.0);
    Rng rng = testing::testRng(308);
    for (double v : clamped.takeSamples(2000, rng)) {
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(Functions, BetweenMatchesTheIntervalProbability)
{
    auto u = uniformLeaf(0.0, 1.0);
    Rng rng = testing::testRng(309);
    double p = between(u, 0.25, 0.75).probability(100000, rng);
    EXPECT_NEAR(p, 0.5, testing::proportionTolerance(0.5, 100000));
}

TEST(Functions, RoundingFunctionsQuantize)
{
    auto u = uniformLeaf(0.0, 10.0);
    auto gap = uncertain::ceil(u) - uncertain::floor(u);
    Rng rng = testing::testRng(310);
    // ceil - floor is 1 almost surely (0 only on exact integers).
    EXPECT_NEAR(gap.expectedValue(20000, rng), 1.0, 1e-9);
    auto rounded = uncertain::round(u) - u;
    for (double v : rounded.takeSamples(1000, rng))
        EXPECT_LE(std::fabs(v), 0.5);
}

TEST(Functions, TrigIdentityHoldsPerSample)
{
    auto u = uniformLeaf(-3.0, 3.0);
    auto identity = uncertain::sin(u) * uncertain::sin(u)
                    + uncertain::cos(u) * uncertain::cos(u);
    Rng rng = testing::testRng(311);
    for (int i = 0; i < 100; ++i)
        EXPECT_NEAR(identity.sample(rng), 1.0, 1e-12);
}

} // namespace
} // namespace uncertain
