/**
 * @file
 * Parameterized sweep over every conditional-evaluation strategy x
 * threshold: all strategies must agree on clear-cut questions, and
 * the sequential ones must respect their sample budgets.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/core.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

struct StrategyCase
{
    std::string label;
    ConditionalStrategy strategy;
};

using Param = std::tuple<StrategyCase, double>; // strategy, threshold

class ConditionalStrategySweep
    : public ::testing::TestWithParam<Param>
{
  protected:
    ConditionalOptions
    options() const
    {
        ConditionalOptions o;
        o.strategy = std::get<0>(GetParam()).strategy;
        o.sprt.maxSamples = 2000;
        o.fixedSamples = 500;
        return o;
    }

    double threshold() const { return std::get<1>(GetParam()); }
};

TEST_P(ConditionalStrategySweep, CertainEventAlwaysPasses)
{
    Rng rng = testing::testRng(431);
    auto sure = Uncertain<bool>::fromSampler(
        [](Rng&) { return true; }, "always");
    EXPECT_TRUE(sure.pr(threshold(), options(), rng));
}

TEST_P(ConditionalStrategySweep, ImpossibleEventNeverPasses)
{
    Rng rng = testing::testRng(432);
    auto never = Uncertain<bool>::fromSampler(
        [](Rng&) { return false; }, "never");
    EXPECT_FALSE(never.pr(threshold(), options(), rng));
}

TEST_P(ConditionalStrategySweep, ClearMarginsDecideCorrectly)
{
    Rng rng = testing::testRng(433);
    double t = threshold();
    // p well above / below the threshold (outside any indifference
    // band).
    double pHigh = std::min(0.98, t + 0.25);
    double pLow = std::max(0.02, t - 0.25);
    if (pHigh > t + 0.12) {
        auto likely = Uncertain<bool>::fromSampler(
            [pHigh](Rng& r) { return r.nextBool(pHigh); }, "likely");
        EXPECT_TRUE(likely.pr(t, options(), rng))
            << "p=" << pHigh << " t=" << t;
    }
    if (pLow < t - 0.12) {
        auto unlikely = Uncertain<bool>::fromSampler(
            [pLow](Rng& r) { return r.nextBool(pLow); }, "unlikely");
        EXPECT_FALSE(unlikely.pr(t, options(), rng))
            << "p=" << pLow << " t=" << t;
    }
}

TEST_P(ConditionalStrategySweep, SampleBudgetIsRespected)
{
    Rng rng = testing::testRng(434);
    auto coin = Uncertain<bool>::fromSampler(
        [](Rng& r) { return r.nextBool(0.5); }, "coin");
    auto result = coin.evaluate(threshold(), options(), rng);
    std::size_t budget =
        options().strategy == ConditionalStrategy::FixedSample
            ? options().fixedSamples
            : options().sprt.maxSamples;
    EXPECT_LE(result.samplesUsed, budget);
    EXPECT_GE(result.samplesUsed, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndThresholds, ConditionalStrategySweep,
    ::testing::Combine(
        ::testing::Values(
            StrategyCase{"sprt", ConditionalStrategy::Sprt},
            StrategyCase{"groupseq",
                         ConditionalStrategy::GroupSequential},
            StrategyCase{"fixed", ConditionalStrategy::FixedSample}),
        ::testing::Values(0.2, 0.5, 0.8, 0.95)),
    [](const ::testing::TestParamInfo<Param>& info) {
        auto threshold = static_cast<int>(
            std::get<1>(info.param) * 100.0);
        return std::get<0>(info.param).label + "_t"
               + std::to_string(threshold);
    });

} // namespace
} // namespace core
} // namespace uncertain
