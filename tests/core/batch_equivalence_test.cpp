/**
 * @file
 * Acceptance suite for the columnar batch engine (core/batch.hpp):
 * the compiled plan must draw from exactly the law of the per-sample
 * tree walk. Pillars:
 *
 *  1. Distributional equivalence — two-sample KS at testing::kKsAlpha
 *     between tree-walk and batch sample sets on the Figure 8
 *     topologies (Gaussian, Rayleigh, mixture, shared-leaf).
 *  2. Shared-leaf (SSA) semantics — in the lowered plan both
 *     occurrences of X in (Y + X) + X read one column, so the
 *     residual B - Y - 2X is identically zero and Var[(Y+X)+X] = 5.
 *  3. Engine determinism — same seed, same output, across block
 *     boundaries and plan-cache hits; ParallelSampler at any thread
 *     count is bit-identical to BatchSampler at chunkSize ==
 *     blockSize.
 *  4. Decision parity — batched-evidence SPRT conditionals agree with
 *     the serial SPRT at the paper's operating points.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "random/mixture.hpp"
#include "random/rayleigh.hpp"
#include "stats/summary.hpp"
#include "stat_assert.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

Uncertain<double>
gaussianLeaf(double mu, double sigma)
{
    return fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
}

Uncertain<double>
rayleighLeaf(double rho)
{
    return fromDistribution(std::make_shared<random::Rayleigh>(rho));
}

Uncertain<double>
mixtureLeaf()
{
    return fromDistribution(std::make_shared<random::Mixture>(
        std::vector<random::DistributionPtr>{
            std::make_shared<random::Gaussian>(-2.0, 0.5),
            std::make_shared<random::Gaussian>(3.0, 1.0),
        },
        std::vector<double>{0.4, 0.6}));
}

/** The Figure 8(b) shared-leaf topology: (Y + X) + X. */
Uncertain<double>
sharedLeafGraph()
{
    auto x = gaussianLeaf(0.0, 1.0);
    auto y = gaussianLeaf(0.0, 1.0);
    return (y + x) + x;
}

std::vector<double>
batchSamples(const Uncertain<double>& expr, std::size_t n,
             std::uint64_t seed, std::size_t blockSize = 1024)
{
    Rng rng = testing::testRng(seed);
    BatchSampler sampler(BatchOptions{blockSize});
    return expr.takeSamples(n, rng, sampler);
}

TEST(BatchEquivalence, TreeWalkVsBatchKsGaussian)
{
    auto expr = gaussianLeaf(0.0, 1.0) * 2.0 + 1.0;
    const std::size_t n = 20000;
    Rng treeRng = testing::testRng(1003);
    auto tree = expr.takeSamples(n, treeRng);
    auto batch = batchSamples(expr, n, 1004);
    EXPECT_TRUE(testing::ksSameDistribution(tree, batch));
}

TEST(BatchEquivalence, TreeWalkVsBatchKsRayleigh)
{
    auto expr = rayleighLeaf(1.63);
    const std::size_t n = 20000;
    Rng treeRng = testing::testRng(1005);
    auto tree = expr.takeSamples(n, treeRng);
    auto batch = batchSamples(expr, n, 1006);
    EXPECT_TRUE(testing::ksSameDistribution(tree, batch));
}

TEST(BatchEquivalence, TreeWalkVsBatchKsMixture)
{
    auto expr = mixtureLeaf();
    const std::size_t n = 20000;
    Rng treeRng = testing::testRng(1007);
    auto tree = expr.takeSamples(n, treeRng);
    auto batch = batchSamples(expr, n, 1008);
    EXPECT_TRUE(testing::ksSameDistribution(tree, batch));
}

TEST(BatchEquivalence, TreeWalkVsBatchKsSharedLeafGraph)
{
    auto expr = sharedLeafGraph();
    const std::size_t n = 20000;
    Rng treeRng = testing::testRng(1009);
    auto tree = expr.takeSamples(n, treeRng);
    auto batch = batchSamples(expr, n, 1010);
    EXPECT_TRUE(testing::ksSameDistribution(tree, batch));

    // Figure 8(b): Var[(Y+X)+X] = Var[Y] + 4 Var[X] = 5, not the
    // naive 2 + 1 = 3 a per-occurrence redraw would give.
    stats::OnlineSummary summary;
    for (double v : batch)
        summary.add(v);
    EXPECT_NEAR(summary.variance(), 5.0, 0.4);
}

TEST(BatchEquivalence, SharedSubexpressionResidualIsZeroInBatch)
{
    // B - Y - 2X is identically zero only if every occurrence of X
    // (and Y) reads the same column — the lowered plan's SSA form of
    // the epoch memo.
    auto x = gaussianLeaf(0.0, 1.0);
    auto y = gaussianLeaf(0.0, 1.0);
    auto residual = ((y + x) + x) - y - (x * 2.0);
    auto values = batchSamples(residual, 5000, 1011, 512);
    for (double v : values)
        ASSERT_NEAR(v, 0.0, 1e-12);
}

TEST(BatchEquivalence, SameSeedIsBitIdenticalAcrossCalls)
{
    // Second call compiles nothing (plan cache hit) and must still
    // reproduce the first exactly from an equal Rng state.
    auto expr = sharedLeafGraph();
    BatchSampler sampler(BatchOptions{256});
    Rng rngA = testing::testRng(1012);
    Rng rngB = testing::testRng(1012);
    auto first = expr.takeSamples(4000, rngA, sampler);
    auto second = expr.takeSamples(4000, rngB, sampler);
    EXPECT_EQ(first, second);
}

TEST(BatchEquivalence, RepeatedCallsAdvanceTheStreamFamily)
{
    auto expr = gaussianLeaf(0.0, 1.0);
    Rng rng = testing::testRng(1013);
    BatchSampler sampler;
    auto first = expr.takeSamples(1000, rng, sampler);
    auto second = expr.takeSamples(1000, rng, sampler);
    EXPECT_NE(first, second);
}

TEST(BatchEquivalence, BlockBoundariesDoNotDistortTheLaw)
{
    // n deliberately not a multiple of blockSize: the tail block is
    // shorter and must still follow the same law.
    auto expr = sharedLeafGraph();
    auto odd = batchSamples(expr, 20001, 1014, 4096);
    auto tiny = batchSamples(expr, 20001, 1015, 17);
    EXPECT_TRUE(testing::ksSameDistribution(odd, tiny));
}

TEST(BatchEquivalence, ParallelEngineMatchesBatchBitExactly)
{
    // Acceptance criterion: ParallelSampler (inline 1-thread path and
    // pooled path alike) is the batch engine over a different
    // scheduler, so at chunkSize == blockSize outputs are identical
    // bit for bit.
    auto expr = sharedLeafGraph();
    const std::size_t n = 10000;
    auto batch = batchSamples(expr, n, 1016, 512);
    for (unsigned threads : {1u, 2u, 8u}) {
        Rng rng = testing::testRng(1016);
        ParallelSampler parallel(ParallelOptions{threads, 512});
        auto samples = expr.takeSamples(n, rng, parallel);
        EXPECT_EQ(batch, samples) << "threads " << threads;
    }
}

TEST(BatchEquivalence, ExpectedValueMatchesTreeWalkWithinTolerance)
{
    auto expr = sharedLeafGraph();
    const std::size_t n = 20000;
    Rng rng = testing::testRng(1017);
    BatchSampler sampler;
    double batch = expr.expectedValue(n, rng, sampler);
    // sd of (Y+X)+X is sqrt(5) ~ 2.24.
    EXPECT_NEAR(batch, 0.0, testing::meanTolerance(2.24, n));
}

TEST(BatchEquivalence, ProbabilityMatchesSerialEstimate)
{
    auto speed = gaussianLeaf(4.2, 1.0);
    auto cond = speed > 4.0;
    const std::size_t n = 50000;
    Rng serialRng = testing::testRng(1018);
    double serial = cond.probability(n, serialRng);
    Rng batchRng = testing::testRng(1019);
    BatchSampler sampler(BatchOptions{2048});
    double batch = cond.probability(n, batchRng, sampler);
    EXPECT_NEAR(batch, serial,
                2.0 * testing::proportionTolerance(0.58, n));
}

TEST(BatchEquivalence, SprtDecisionParityAtOperatingPoints)
{
    struct Point
    {
        double mu;
        bool expected;
    };
    const Point points[] = {{4.8, true}, {3.2, false}};
    ConditionalOptions options;
    BatchSampler sampler;
    for (const auto& point : points) {
        auto cond = gaussianLeaf(point.mu, 1.0) > 4.0;
        for (int trial = 0; trial < 20; ++trial) {
            Rng serialRng = testing::testRng(
                1820 + static_cast<std::uint64_t>(trial));
            Rng batchRng = testing::testRng(
                1860 + static_cast<std::uint64_t>(trial));
            bool serial = cond.pr(0.5, options, serialRng);
            bool batch = cond.pr(0.5, options, batchRng, sampler);
            EXPECT_EQ(serial, point.expected) << "mu " << point.mu;
            EXPECT_EQ(batch, point.expected) << "mu " << point.mu;
        }
    }
}

TEST(BatchEquivalence, PointMassColumnsAreConstant)
{
    auto expr = gaussianLeaf(0.0, 1.0) * 0.0 + 42.0;
    auto values = batchSamples(expr, 3000, 1020);
    for (double v : values)
        ASSERT_EQ(v, 42.0);
}

TEST(BatchEquivalence, CorrelatedLeavesShareOneDrawPerSample)
{
    // makeCorrelated routes both marginals through one pair-typed
    // leaf; the lowered plan must keep that sharing, so first - second
    // of a perfectly correlated joint is identically zero.
    auto joint = makeCorrelated<double, double>(
        [](Rng& rng) {
            double v = rng.nextDouble();
            return std::pair<double, double>{v, v};
        },
        "diag");
    auto residual = joint.first - joint.second;
    auto values = batchSamples(residual, 2000, 1021);
    for (double v : values)
        ASSERT_EQ(v, 0.0);
}

} // namespace
} // namespace core
} // namespace uncertain
