/** @file describe() inspection tests. */

#include <gtest/gtest.h>

#include <memory>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace core {
namespace {

TEST(Describe, SummarizesAGaussianFaithfully)
{
    auto g = fromDistribution(
        std::make_shared<random::Gaussian>(10.0, 2.0));
    Rng rng = testing::testRng(411);
    Description d = describe(g, 20000, rng);

    EXPECT_EQ(d.samples, 20000u);
    EXPECT_NEAR(d.mean, 10.0, 0.1);
    EXPECT_NEAR(d.stddev, 2.0, 0.1);
    EXPECT_NEAR(d.median, 10.0, 0.1);
    EXPECT_NEAR(d.q025, 10.0 - 1.96 * 2.0, 0.2);
    EXPECT_NEAR(d.q975, 10.0 + 1.96 * 2.0, 0.2);
    EXPECT_TRUE(d.meanCi.contains(10.0));
    EXPECT_LT(d.min, d.q025);
    EXPECT_GT(d.max, d.q975);
}

TEST(Describe, PointMassIsDegenerate)
{
    Uncertain<double> five(5.0);
    Rng rng = testing::testRng(412);
    Description d = describe(five, 100, rng);
    EXPECT_DOUBLE_EQ(d.mean, 5.0);
    EXPECT_DOUBLE_EQ(d.min, 5.0);
    EXPECT_DOUBLE_EQ(d.max, 5.0);
    EXPECT_DOUBLE_EQ(d.q025, 5.0);
    EXPECT_DOUBLE_EQ(d.q975, 5.0);
}

TEST(Describe, ToStringContainsTheKeyNumbers)
{
    Uncertain<double> five(5.0);
    Rng rng = testing::testRng(413);
    std::string text = describe(five, 100, rng).toString();
    EXPECT_NE(text.find("5.000"), std::string::npos);
    EXPECT_NE(text.find("+/-"), std::string::npos);
    EXPECT_NE(text.find("95%"), std::string::npos);
    EXPECT_NE(text.find("100 samples"), std::string::npos);
}

TEST(Describe, WorksThroughComputations)
{
    auto g = fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
    auto shifted = g * 3.0 + 100.0;
    Rng rng = testing::testRng(414);
    Description d = describe(shifted, 20000, rng);
    EXPECT_NEAR(d.mean, 100.0, 0.2);
    EXPECT_NEAR(d.stddev, 3.0, 0.15);
}

TEST(Describe, RequiresEnoughSamples)
{
    Uncertain<double> five(5.0);
    Rng rng = testing::testRng(415);
    EXPECT_THROW(describe(five, 8, rng), Error);
}

TEST(Describe, CountsTowardEvalStats)
{
    resetEvalStats();
    Uncertain<double> five(5.0);
    Rng rng = testing::testRng(416);
    (void)describe(five, 64, rng);
    EXPECT_EQ(evalStats().rootSamples, 64u);
}

} // namespace
} // namespace core
} // namespace uncertain
