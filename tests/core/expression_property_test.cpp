/**
 * @file
 * Randomized expression-tree property tests: build random affine
 * expressions over Gaussian leaves (with deliberate leaf sharing)
 * and check the sampled moments against exact affine propagation —
 * a whole-pipeline check of graph construction, coercion, sharing,
 * and ancestral sampling.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

/**
 * An affine expression c0 + sum_i c_i * X_i over shared leaves,
 * tracked symbolically alongside the Uncertain graph.
 */
struct AffineExpression
{
    Uncertain<double> value;
    double constant;
    std::vector<double> coefficients; // one per leaf

    double
    exactMean(const std::vector<double>& leafMeans) const
    {
        double m = constant;
        for (std::size_t i = 0; i < coefficients.size(); ++i)
            m += coefficients[i] * leafMeans[i];
        return m;
    }

    double
    exactVariance(const std::vector<double>& leafSigmas) const
    {
        double v = 0.0;
        for (std::size_t i = 0; i < coefficients.size(); ++i) {
            double c = coefficients[i] * leafSigmas[i];
            v += c * c;
        }
        return v;
    }
};

class ExpressionFuzzer
{
  public:
    ExpressionFuzzer(std::size_t leafCount, Rng& rng) : rng_(rng)
    {
        for (std::size_t i = 0; i < leafCount; ++i) {
            double mu = rng_.nextRange(-5.0, 5.0);
            double sigma = rng_.nextRange(0.2, 2.0);
            leafMeans_.push_back(mu);
            leafSigmas_.push_back(sigma);
            leaves_.push_back(core::fromDistribution(
                std::make_shared<random::Gaussian>(mu, sigma)));
        }
    }

    /** A random affine expression of the given depth. */
    AffineExpression
    build(int depth)
    {
        if (depth == 0) {
            // Leaf or scalar.
            if (rng_.nextBool(0.25)) {
                double c = rng_.nextRange(-3.0, 3.0);
                return {Uncertain<double>(c), c,
                        std::vector<double>(leaves_.size(), 0.0)};
            }
            std::size_t pick = static_cast<std::size_t>(
                rng_.nextBelow(leaves_.size()));
            std::vector<double> coefficients(leaves_.size(), 0.0);
            coefficients[pick] = 1.0;
            return {leaves_[pick], 0.0, std::move(coefficients)};
        }

        AffineExpression lhs = build(depth - 1);
        // Affine-preserving operations: +, -, scalar *, scalar /,
        // unary -.
        switch (rng_.nextBelow(5)) {
          case 0: {
            AffineExpression rhs = build(depth - 1);
            AffineExpression out{lhs.value + rhs.value,
                                 lhs.constant + rhs.constant,
                                 lhs.coefficients};
            for (std::size_t i = 0; i < out.coefficients.size(); ++i)
                out.coefficients[i] += rhs.coefficients[i];
            return out;
          }
          case 1: {
            AffineExpression rhs = build(depth - 1);
            AffineExpression out{lhs.value - rhs.value,
                                 lhs.constant - rhs.constant,
                                 lhs.coefficients};
            for (std::size_t i = 0; i < out.coefficients.size(); ++i)
                out.coefficients[i] -= rhs.coefficients[i];
            return out;
          }
          case 2: {
            double k = rng_.nextRange(-2.0, 2.0);
            AffineExpression out{lhs.value * k, lhs.constant * k,
                                 lhs.coefficients};
            for (double& c : out.coefficients)
                c *= k;
            return out;
          }
          case 3: {
            double k = rng_.nextRange(1.0, 3.0); // avoid /0
            AffineExpression out{lhs.value / k, lhs.constant / k,
                                 lhs.coefficients};
            for (double& c : out.coefficients)
                c /= k;
            return out;
          }
          default: {
            AffineExpression out{-lhs.value, -lhs.constant,
                                 lhs.coefficients};
            for (double& c : out.coefficients)
                c = -c;
            return out;
          }
        }
    }

    const std::vector<double>& leafMeans() const { return leafMeans_; }
    const std::vector<double>& leafSigmas() const
    {
        return leafSigmas_;
    }

  private:
    Rng& rng_;
    std::vector<Uncertain<double>> leaves_;
    std::vector<double> leafMeans_;
    std::vector<double> leafSigmas_;
};

class ExpressionProperty : public ::testing::TestWithParam<int>
{};

TEST_P(ExpressionProperty, MomentsMatchExactAffinePropagation)
{
    Rng rng = testing::testRng(
        static_cast<std::uint64_t>(440 + GetParam()));
    ExpressionFuzzer fuzzer(4, rng);
    AffineExpression expr = fuzzer.build(4);

    double exactMean = expr.exactMean(fuzzer.leafMeans());
    double exactVar = expr.exactVariance(fuzzer.leafSigmas());

    const std::size_t n = 60000;
    stats::OnlineSummary s;
    for (double v : expr.value.takeSamples(n, rng))
        s.add(v);

    double sd = std::sqrt(exactVar);
    EXPECT_NEAR(s.mean(), exactMean,
                testing::meanTolerance(sd, n) + 1e-9)
        << "graph size " << expr.value.graphSize();
    // Variance estimator tolerance (loose; 4th-moment driven).
    EXPECT_NEAR(s.variance(), exactVar, 0.08 * exactVar + 1e-9);
}

TEST_P(ExpressionProperty, SubtractionOfSelfIsZero)
{
    Rng rng = testing::testRng(
        static_cast<std::uint64_t>(460 + GetParam()));
    ExpressionFuzzer fuzzer(3, rng);
    AffineExpression expr = fuzzer.build(3);
    auto zero = expr.value - expr.value;
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(zero.sample(rng), 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExpressionProperty,
                         ::testing::Range(0, 12));

} // namespace
} // namespace uncertain
