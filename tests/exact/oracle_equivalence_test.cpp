/**
 * @file
 * Ground-truth oracle suite: the exact enumeration backend computes
 * closed-form pmfs for a corpus of finite-support graphs, and every
 * stochastic engine (per-sample tree walk, chunk-parallel, columnar
 * batch, optimized batch) must draw samples consistent with those
 * pmfs — matched bit-for-bit to the support (the corpus is closed
 * over exactly-representable integers) and judged by chi-square and
 * moment tests. The same corpus checks SPRT decisions against the
 * exact probabilities at well-separated thresholds, and ExactBayesLife
 * is validated as a zero-sample drop-in for the Life case study.
 *
 * Alpha levels: each corpus graph runs 4 engines x 1 chi-square, so
 * the suite-wide false-positive budget is controlled by running the
 * distance tests at alpha = 1e-4 (fixed seeds; a failure means an
 * engine diverged from the oracle, not bad luck).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "life/board.hpp"
#include "life/variants.hpp"
#include "random/binomial.hpp"
#include "random/discrete.hpp"
#include "random/poisson.hpp"
#include "stat_assert.hpp"
#include "support/graph_gen.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

using core::bernoulliEvent;
using core::fromFiniteSupport;

constexpr double kOracleAlpha = 1e-4;
constexpr std::size_t kSamplesPerEngine = 4000;

struct CorpusGraph
{
    std::string name;
    Uncertain<double> graph;
};

Uncertain<double>
intLeaf(std::vector<double> values, std::vector<double> weights,
        const std::string& label)
{
    return fromFiniteSupport<double>(std::move(values),
                                     std::move(weights), label);
}

/**
 * ~20 finite-support graphs spanning the supported operator set:
 * shared-leaf diamonds, select chains, comparison trees, min/max
 * lattices, distribution-backed leaves, and seeded random DAGs.
 * All supports are small integers, so sampled values either equal a
 * support value exactly or the engine is wrong.
 */
std::vector<CorpusGraph>
corpus()
{
    std::vector<CorpusGraph> graphs;
    auto add = [&](std::string name, Uncertain<double> g) {
        graphs.push_back({std::move(name), std::move(g)});
    };

    auto coin = intLeaf({0, 1}, {0.5, 0.5}, "coin");
    auto skew = intLeaf({0, 1}, {0.2, 0.8}, "skew");
    auto die = intLeaf({1, 2, 3, 4, 5, 6}, {1, 1, 1, 1, 1, 1}, "die");
    auto tri = intLeaf({-1, 0, 2}, {1, 2, 1}, "tri");

    add("single-leaf", die);
    add("shared-diamond", coin + coin);
    add("independent-sum", coin + intLeaf({0, 1}, {0.5, 0.5}, "c2"));
    add("figure8", (tri + coin) + coin);
    add("affine", die * 3.0 - 2.0);
    add("square-shared", die * die);
    add("difference-shared", die - die); // identically zero
    add("min-max-lattice",
        uncertain::min(die, tri) + uncertain::max(coin, tri));
    add("clamped", uncertain::clamp(tri * die, -4.0, 4.0));
    add("select-simple",
        uncertain::select(bernoulliEvent(0.3, "gate"), die, tri));
    add("select-shared-cond",
        uncertain::select(die >= 4.0, die, 0.0 - die));
    add("select-chain",
        uncertain::select(coin > 0.5,
                          uncertain::select(skew > 0.5, die, tri),
                          uncertain::select(tri < 0.0, coin, die)));
    add("comparison-tree",
        uncertain::select(((die < tri + 4.0) && (coin > 0.0))
                              || (skew > 0.5),
                          die + tri, die - tri));
    add("approx-band",
        uncertain::select(approxEqual(die, 3.0, 1.0), 1.0, 0.0)
            + coin);
    add("deep-chain", ((die + coin) * 2.0 - tri) + (die - coin));
    add("discrete-dist",
        core::fromDistribution(std::make_shared<random::Discrete>(
            std::vector<double>{-2.0, 0.0, 3.0},
            std::vector<double>{1.0, 3.0, 2.0})));
    add("binomial-dist",
        core::fromDistribution(
            std::make_shared<random::Binomial>(6, 0.4)));
    add("poisson-dist",
        core::fromDistribution(
            std::make_shared<random::Poisson>(1.25)));
    add("poisson-plus-binomial",
        core::fromDistribution(
            std::make_shared<random::Poisson>(0.75))
            + core::fromDistribution(
                  std::make_shared<random::Binomial>(4, 0.35)));

    // Neighbor-count shape of a 3x3 Life cell: eight Bernoulli
    // sensor leaves folded into a sum (the ExactBayesLife graph).
    Uncertain<double> neighborSum(0.0);
    for (int i = 0; i < 8; ++i) {
        neighborSum =
            neighborSum
            + uncertain::select(
                  bernoulliEvent(i % 2 ? 0.9 : 0.1,
                                 "sensor" + std::to_string(i)),
                  1.0, 0.0);
    }
    add("life-neighbor-sum", neighborSum);

    add("random-dag-7", testing::randomFiniteGraph(7));
    add("random-dag-23", testing::randomFiniteGraph(23));
    add("random-dag-61", testing::randomFiniteGraph(61));

    return graphs;
}

/**
 * Map each sample to its index in the pmf's (sorted, exact) support.
 * A sample that matches no support value is an engine bug and fails
 * the calling test immediately.
 */
bool
binSamples(const std::vector<double>& samples,
           const exact::Pmf<double>& pmf, const std::string& context,
           std::vector<std::size_t>& counts)
{
    counts.assign(pmf.entries.size(), 0);
    for (double sample : samples) {
        auto it = std::lower_bound(
            pmf.entries.begin(), pmf.entries.end(), sample,
            [](const auto& entry, double v) {
                return entry.first < v;
            });
        if (it == pmf.entries.end() || it->first != sample) {
            ADD_FAILURE() << context << ": sampled value " << sample
                          << " is not in the exact support";
            return false;
        }
        ++counts[static_cast<std::size_t>(
            it - pmf.entries.begin())];
    }
    return true;
}

/**
 * Chi-square with low-expectation cells pooled: cells whose expected
 * count at @p n falls below 8 are merged into one overflow cell so
 * the asymptotic distribution of the statistic holds. Returns true
 * when fewer than two pooled cells remain (nothing to test beyond
 * the exact-support match already performed).
 */
::testing::AssertionResult
pooledChiSquare(const std::vector<std::size_t>& counts,
                const exact::Pmf<double>& pmf, std::size_t n)
{
    std::vector<std::size_t> observed;
    std::vector<double> expected;
    std::size_t pooledCount = 0;
    double pooledMass = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double cellExpectation =
            pmf.entries[i].second * static_cast<double>(n);
        if (cellExpectation < 8.0) {
            pooledCount += counts[i];
            pooledMass += pmf.entries[i].second;
        }
        else {
            observed.push_back(counts[i]);
            expected.push_back(pmf.entries[i].second);
        }
    }
    if (pooledMass > 0.0) {
        observed.push_back(pooledCount);
        expected.push_back(pooledMass);
    }
    if (observed.size() < 2)
        return ::testing::AssertionSuccess();
    return testing::chiSquareMatches(observed, expected, kOracleAlpha);
}

void
checkEngineAgainstOracle(const std::string& engine,
                         const CorpusGraph& entry,
                         const exact::Pmf<double>& pmf,
                         const std::vector<double>& samples)
{
    const std::string context = entry.name + " / " + engine;
    std::vector<std::size_t> counts;
    if (!binSamples(samples, pmf, context, counts))
        return;
    EXPECT_TRUE(pooledChiSquare(counts, pmf, samples.size()))
        << context;
    const double sd = pmf.stddev();
    if (sd > 1e-9) {
        EXPECT_TRUE(testing::momentsMatch(samples,
                                          pmf.expectedValue(), sd))
            << context;
    }
}

// ----------------------------------------------------------------------
// ExactOracle
// ----------------------------------------------------------------------

TEST(ExactOracle, EveryCorpusPmfIsNormalizedToTwelveDigits)
{
    for (const auto& entry : corpus()) {
        auto pmf = exact::pmf(entry.graph);
        EXPECT_LE(std::abs(pmf.mass() - 1.0), 1e-12) << entry.name;
        EXPECT_FALSE(pmf.entries.empty()) << entry.name;
        EXPECT_TRUE(std::is_sorted(
            pmf.entries.begin(), pmf.entries.end(),
            [](const auto& a, const auto& b) {
                return a.first < b.first;
            }))
            << entry.name;
    }
}

TEST(ExactOracle, TreeEngineMatchesExactPmf)
{
    std::uint64_t seed = 1100;
    for (const auto& entry : corpus()) {
        auto pmf = exact::pmf(entry.graph);
        Rng rng = testing::testRng(seed++);
        checkEngineAgainstOracle(
            "tree", entry, pmf,
            entry.graph.takeSamples(kSamplesPerEngine, rng));
    }
}

TEST(ExactOracle, ParallelEngineMatchesExactPmf)
{
    core::ParallelSampler sampler(2u);
    std::uint64_t seed = 1200;
    for (const auto& entry : corpus()) {
        auto pmf = exact::pmf(entry.graph);
        Rng rng = testing::testRng(seed++);
        checkEngineAgainstOracle(
            "parallel", entry, pmf,
            entry.graph.takeSamples(kSamplesPerEngine, rng, sampler));
    }
}

TEST(ExactOracle, BatchEngineMatchesExactPmf)
{
    core::BatchSampler sampler;
    std::uint64_t seed = 1300;
    for (const auto& entry : corpus()) {
        auto pmf = exact::pmf(entry.graph);
        Rng rng = testing::testRng(seed++);
        checkEngineAgainstOracle(
            "batch", entry, pmf,
            entry.graph.takeSamples(kSamplesPerEngine, rng, sampler));
    }
}

TEST(ExactOracle, UnoptimizedBatchEngineMatchesExactPmf)
{
    core::BatchOptions options;
    options.optimizer = core::PlanOptions::disabled();
    core::BatchSampler sampler(options);
    std::uint64_t seed = 1400;
    for (const auto& entry : corpus()) {
        auto pmf = exact::pmf(entry.graph);
        Rng rng = testing::testRng(seed++);
        checkEngineAgainstOracle(
            "batch-unoptimized", entry, pmf,
            entry.graph.takeSamples(kSamplesPerEngine, rng, sampler));
    }
}

TEST(ExactOracle, SprtDecisionsMatchExactProbabilities)
{
    // At thresholds at least 0.15 away from the true probability the
    // sequential test practically never errs; its decision must agree
    // with the closed-form comparison. The sampled side runs with
    // exact routing off so this genuinely exercises the SPRT.
    core::ConditionalOptions sampled;
    sampled.exactRouting = core::ExactRouting::Never;
    std::uint64_t seed = 1500;
    for (const auto& entry : corpus()) {
        const double cut = exact::expectedValue(entry.graph);
        auto event = entry.graph < cut;
        const double p = exact::probability(event);
        for (double threshold : {0.2, 0.5, 0.8}) {
            if (std::abs(p - threshold) < 0.15)
                continue;
            Rng rng = testing::testRng(seed++);
            auto viaSprt = event.evaluate(threshold, sampled, rng);
            auto viaExact = exact::evaluate(event, threshold);
            EXPECT_EQ(viaExact.decision,
                      p > threshold
                          ? stats::TestDecision::AcceptAlternative
                          : stats::TestDecision::AcceptNull)
                << entry.name << " @ " << threshold;
            EXPECT_EQ(viaSprt.decision, viaExact.decision)
                << entry.name << " @ " << threshold << " (exact p "
                << p << ", SPRT estimate " << viaSprt.estimate
                << ")";
            EXPECT_EQ(viaExact.samplesUsed, 0u);
            EXPECT_GE(viaSprt.samplesUsed, 1u);
        }
    }
}

// ----------------------------------------------------------------------
// ExactLife
// ----------------------------------------------------------------------

life::Board
blinkerBoard()
{
    life::Board board(3, 3);
    board.setAlive(0, 1, true);
    board.setAlive(1, 1, true);
    board.setAlive(2, 1, true);
    return board;
}

TEST(ExactLife, ExactBayesLifeDrawsZeroSamples)
{
    life::ExactBayesLife variant(0.3);
    life::Board board = blinkerBoard();
    Rng rng = testing::testRng(1600);
    auto stats = life::stepNoisy(board, variant, rng);
    EXPECT_EQ(stats.cellUpdates, 9u);
    EXPECT_EQ(stats.samplesDrawn, 0u);
}

TEST(ExactLife, ExactBayesLifeIsDeterministic)
{
    // Closed-form conditionals consume no randomness: two runs with
    // different generators must produce identical boards.
    life::ExactBayesLife variant(0.35);
    life::Board a = blinkerBoard();
    life::Board b = blinkerBoard();
    Rng rngA = testing::testRng(1601);
    Rng rngB = testing::testRng(9999);
    life::stepNoisy(a, variant, rngA);
    life::stepNoisy(b, variant, rngB);
    for (std::size_t y = 0; y < a.height(); ++y)
        for (std::size_t x = 0; x < a.width(); ++x)
            EXPECT_EQ(a.alive(x, y), b.alive(x, y))
                << "(" << x << ", " << y << ")";
}

TEST(ExactLife, LowNoiseExactBayesLifeMatchesExactRule)
{
    // At sigma = 0.05 the snap flip probability is Phi(-10) ~ 8e-24:
    // every decision must equal the exact Life rule, still without
    // drawing a single sample.
    life::ExactBayesLife variant(0.05);
    life::Board board = blinkerBoard();
    Rng rng = testing::testRng(1602);
    for (int generation = 0; generation < 4; ++generation) {
        auto stats = life::stepNoisy(board, variant, rng);
        EXPECT_EQ(stats.wrongDecisions, 0u)
            << "generation " << generation;
        EXPECT_EQ(stats.samplesDrawn, 0u);
    }
}

TEST(ExactLife, ExactCountMatchesSensorGraphPmf)
{
    // The ExactBayesLife neighbor count of the blinker center: two
    // certain-alive neighbors plus six possibly-flipped dead ones.
    const double sigma = 0.3;
    life::NoisySensor sensor(sigma);
    life::Board board = blinkerBoard();
    Uncertain<double> sum(0.0);
    for (auto [nx, ny] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {0, 0}, {1, 0}, {2, 0}, {0, 1}, {2, 1},
             {0, 2}, {1, 2}, {2, 2}}) {
        sum = sum + sensor.senseNeighborExact(board, nx, ny);
    }
    auto pmf = exact::pmf(sum);
    EXPECT_LE(std::abs(pmf.mass() - 1.0), 1e-12);

    const double flip = sensor.snapFlipProbability();
    // E[sum] = 2(1 - flip) + 6 flip.
    EXPECT_NEAR(pmf.expectedValue(), 2.0 + 4.0 * flip, 1e-12);
    // Pr[sum = 0]: both live sensors flip, all six dead stay quiet.
    EXPECT_NEAR(pmf.probabilityOf(0.0),
                flip * flip * std::pow(1.0 - flip, 6.0), 1e-12);
}

} // namespace
} // namespace uncertain
