/**
 * @file
 * Unit tests for the exact enumeration backend (src/exact): support
 * tables, shared-leaf joint semantics, refusal behavior, discrete
 * conditioning, and the conditional router in core/uncertain.hpp —
 * including the point-mass short-circuit regression (a deterministic
 * pr() must not burn SPRT samples) and the fallback paths.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/core.hpp"
#include "random/bernoulli.hpp"
#include "random/binomial.hpp"
#include "random/discrete.hpp"
#include "random/gaussian.hpp"
#include "random/point_mass.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

using core::bernoulliEvent;
using core::fromFiniteSupport;

// ----------------------------------------------------------------------
// ExactBackend: support tables and queries.
// ----------------------------------------------------------------------

TEST(ExactBackend, LeafPmfMatchesDeclaredSupport)
{
    auto die = fromFiniteSupport<double>(
        {1, 2, 3, 4, 5, 6}, {1, 1, 1, 1, 1, 1}, "die");
    auto pmf = exact::pmf(die);
    ASSERT_EQ(pmf.entries.size(), 6u);
    for (const auto& [value, p] : pmf.entries)
        EXPECT_NEAR(p, 1.0 / 6.0, 1e-15) << "value " << value;
    EXPECT_NEAR(pmf.mass(), 1.0, 1e-12);
    EXPECT_NEAR(pmf.expectedValue(), 3.5, 1e-12);
    EXPECT_NEAR(pmf.variance(), 35.0 / 12.0, 1e-12);
}

TEST(ExactBackend, WeightsAreNormalizedAndZerosDropped)
{
    auto x = fromFiniteSupport<double>({0, 1, 2}, {3, 0, 1}, "x");
    auto pmf = exact::pmf(x);
    ASSERT_EQ(pmf.entries.size(), 2u);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(0.0), 0.75);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(1.0), 0.0);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(2.0), 0.25);
}

TEST(ExactBackend, PointMassGraphIsSingleton)
{
    Uncertain<double> three(3.0);
    auto pmf = exact::pmf(three + three * 2.0);
    ASSERT_EQ(pmf.entries.size(), 1u);
    EXPECT_DOUBLE_EQ(pmf.entries[0].first, 9.0);
    EXPECT_DOUBLE_EQ(pmf.entries[0].second, 1.0);
}

TEST(ExactBackend, SharedLeafDiamondStaysPerfectlyCorrelated)
{
    // x + x under Figure 8(b) semantics is 2x, never a convolution:
    // both occurrences read the same leaf digit.
    auto x = fromFiniteSupport<double>({0, 1}, {0.5, 0.5}, "x");
    auto pmf = exact::pmf(x + x);
    ASSERT_EQ(pmf.entries.size(), 2u);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(0.0), 0.5);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(2.0), 0.5);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(1.0), 0.0);
}

TEST(ExactBackend, IndependentLeavesConvolve)
{
    auto x = fromFiniteSupport<double>({0, 1}, {0.5, 0.5}, "x");
    auto y = fromFiniteSupport<double>({0, 1}, {0.5, 0.5}, "y");
    auto pmf = exact::pmf(x + y);
    ASSERT_EQ(pmf.entries.size(), 3u);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(0.0), 0.25);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(1.0), 0.5);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(2.0), 0.25);
}

TEST(ExactBackend, FigureEightGraphSharesTheInnerLeaf)
{
    // (y + x) + x: x enters twice, y once — Pr[sum = 2x + y] joint.
    auto x = fromFiniteSupport<double>({0, 1}, {0.5, 0.5}, "x");
    auto y = fromFiniteSupport<double>({0, 10}, {0.5, 0.5}, "y");
    auto pmf = exact::pmf((y + x) + x);
    ASSERT_EQ(pmf.entries.size(), 4u);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(0.0), 0.25);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(2.0), 0.25);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(10.0), 0.25);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(12.0), 0.25);
}

TEST(ExactBackend, SelectRoutesPerJointAssignment)
{
    auto coin = bernoulliEvent(0.25, "coin");
    auto a = fromFiniteSupport<double>({1, 2}, {0.5, 0.5}, "a");
    auto pmf = exact::pmf(uncertain::select(coin, a, 0.0));
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(0.0), 0.75);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(1.0), 0.125);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(2.0), 0.125);
    EXPECT_NEAR(pmf.mass(), 1.0, 1e-12);
}

TEST(ExactBackend, SelectSharesConditionWithBranches)
{
    // select(x < 1, x, -x): the branch and the condition read the
    // same draw of x, so the result is -x exactly when x >= 1.
    auto x = fromFiniteSupport<double>({0, 1, 2}, {1, 1, 2}, "x");
    auto pmf = exact::pmf(uncertain::select(x < 1.0, x, 0.0 - x));
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(0.0), 0.25);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(-1.0), 0.25);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(-2.0), 0.5);
}

TEST(ExactBackend, ComparisonTreeProbability)
{
    auto a = fromFiniteSupport<double>({1, 3}, {0.5, 0.5}, "a");
    auto b = fromFiniteSupport<double>({2, 4}, {0.5, 0.5}, "b");
    // Pr[a < b] = 1 - Pr[a=3, b=2] = 0.75.
    EXPECT_DOUBLE_EQ(exact::probability(a < b), 0.75);
    // Boolean algebra over shared comparisons stays joint.
    auto event = (a < b) && (b > 1.0);
    EXPECT_DOUBLE_EQ(exact::probability(event), 0.75);
}

TEST(ExactBackend, ExpectedValueClosedForm)
{
    auto x = fromFiniteSupport<double>({0, 1}, {0.25, 0.75}, "x");
    auto y = fromFiniteSupport<double>({0, 2}, {0.5, 0.5}, "y");
    EXPECT_NEAR(exact::expectedValue(x * 4.0 + y), 4.0, 1e-12);
}

TEST(ExactBackend, ConditionedPmfIsBayesRule)
{
    auto die = fromFiniteSupport<double>(
        {1, 2, 3, 4, 5, 6}, {1, 1, 1, 1, 1, 1}, "die");
    auto posterior = exact::conditioned(die, die >= 4.0);
    ASSERT_EQ(posterior.entries.size(), 3u);
    for (double v : {4.0, 5.0, 6.0})
        EXPECT_NEAR(posterior.probabilityOf(v), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(posterior.mass(), 1.0, 1e-12);
}

TEST(ExactBackend, ConditioningPropagatesThroughSharedLeaves)
{
    // Observe x + y = 2 with x, y fair {0,1}+{0,2}: only (0,2) fits.
    auto x = fromFiniteSupport<double>({0, 1}, {0.5, 0.5}, "x");
    auto y = fromFiniteSupport<double>({0, 2}, {0.5, 0.5}, "y");
    auto posterior =
        exact::conditioned(x, approxEqual(x + y, 2.0, 0.25));
    ASSERT_EQ(posterior.entries.size(), 1u);
    EXPECT_DOUBLE_EQ(posterior.probabilityOf(0.0), 1.0);
}

TEST(ExactBackend, ConditioningOnImpossibleEvidenceThrows)
{
    auto x = fromFiniteSupport<double>({0, 1}, {0.5, 0.5}, "x");
    EXPECT_THROW((void)exact::conditioned(x, x > 5.0), Error);
}

TEST(ExactBackend, RefusesOpaqueSamplerLeaf)
{
    auto opaque = Uncertain<double>::fromSampler(
        [](Rng& rng) { return rng.nextDouble(); }, "opaque");
    auto result = exact::query(opaque + 1.0);
    EXPECT_FALSE(result.supported);
    EXPECT_NE(result.reason.find("opaque"), std::string::npos);
    EXPECT_THROW((void)exact::pmf(opaque + 1.0), exact::Unsupported);
}

TEST(ExactBackend, RefusesContinuousDistributionLeaf)
{
    auto gaussian = core::fromDistribution(
        std::make_shared<random::Gaussian>(0.0, 1.0));
    EXPECT_FALSE(exact::supports(gaussian));
    EXPECT_TRUE(exact::supports(gaussian > 0.0)
                == false); // comparisons do not launder leaves
}

TEST(ExactBackend, RefusesBeyondStateBound)
{
    Uncertain<double> sum(0.0);
    for (int i = 0; i < 8; ++i) {
        sum = sum
              + fromFiniteSupport<double>({0, 1, 2, 3},
                                          {1, 1, 1, 1},
                                          "w" + std::to_string(i));
    }
    // 4^8 = 65536 joint states: accepted at the default bound,
    // refused at a tight one.
    EXPECT_TRUE(exact::supports(sum));
    exact::EnumerationLimits tight;
    tight.maxJointStates = 1u << 10;
    auto refusal = exact::query(sum, tight);
    EXPECT_FALSE(refusal.supported);
    EXPECT_NE(refusal.reason.find("bound"), std::string::npos);
}

TEST(ExactBackend, QueryReportsEnumerationSize)
{
    auto x = fromFiniteSupport<double>({0, 1, 2}, {1, 1, 1}, "x");
    auto y = fromFiniteSupport<double>({0, 1}, {1, 1}, "y");
    auto result = exact::query(x + y + x);
    ASSERT_TRUE(result.supported);
    EXPECT_EQ(result.leaves, 2u);
    EXPECT_EQ(result.states, 6u);
}

TEST(ExactBackend, DiscreteDistributionLeafIsExact)
{
    auto discrete = core::fromDistribution(
        std::make_shared<random::Discrete>(
            std::vector<double>{-1.0, 0.0, 1.0},
            std::vector<double>{1.0, 2.0, 1.0}));
    ASSERT_TRUE(exact::supports(discrete));
    auto pmf = exact::pmf(discrete);
    EXPECT_DOUBLE_EQ(pmf.probabilityOf(0.0), 0.5);
    EXPECT_NEAR(exact::probability(discrete >= 0.0), 0.75, 1e-15);
}

TEST(ExactBackend, BernoulliAndPointMassDistributionsAreExact)
{
    auto bernoulli = core::fromDistribution(
        std::make_shared<random::Bernoulli>(0.3));
    EXPECT_NEAR(exact::probability(bernoulli > 0.5), 0.3, 1e-15);

    auto point = core::fromDistribution(
        std::make_shared<random::PointMass>(2.5));
    EXPECT_DOUBLE_EQ(exact::pmf(point).probabilityOf(2.5), 1.0);
}

TEST(ExactBackend, BinomialSupportMatchesMoments)
{
    auto binomial = core::fromDistribution(
        std::make_shared<random::Binomial>(10, 0.3));
    auto pmf = exact::pmf(binomial);
    ASSERT_EQ(pmf.entries.size(), 11u);
    EXPECT_NEAR(pmf.mass(), 1.0, 1e-12);
    EXPECT_NEAR(pmf.expectedValue(), 3.0, 1e-10);
    EXPECT_NEAR(pmf.variance(), 2.1, 1e-10);
}

TEST(ExactBackend, ExactReportPrintsPmfOrRefusal)
{
    auto x = fromFiniteSupport<double>({0, 1}, {0.5, 0.5}, "x");
    auto report = core::exactReport(x + x);
    EXPECT_NE(report.find("exact pmf over 2 values"),
              std::string::npos);
    auto opaque = Uncertain<double>::fromSampler(
        [](Rng& rng) { return rng.nextDouble(); }, "noise");
    EXPECT_NE(core::exactReport(opaque).find("unsupported"),
              std::string::npos);
}

// ----------------------------------------------------------------------
// ExactRouting: the conditional router in Uncertain::evaluate.
// ----------------------------------------------------------------------

TEST(ExactRouting, PointMassTrueShortCircuitsWithoutSamples)
{
    // Regression for the latent edge case: pr() on a deterministic
    // graph used to burn a full SPRT run to conclude Pr = 1.
    Rng rng = testing::testRng(901);
    core::resetEvalStats();
    Uncertain<bool> sure(true);
    auto result = sure.evaluate(0.9, {}, rng);
    EXPECT_EQ(result.decision, stats::TestDecision::AcceptAlternative);
    EXPECT_DOUBLE_EQ(result.estimate, 1.0);
    EXPECT_EQ(result.samplesUsed, 0u);
    EXPECT_EQ(core::evalStats().rootSamples, 0u);
    EXPECT_EQ(core::evalStats().conditionals, 1u);
}

TEST(ExactRouting, PointMassFalseShortCircuitsWithoutSamples)
{
    Rng rng = testing::testRng(902);
    core::resetEvalStats();
    Uncertain<bool> never(false);
    auto result = never.evaluate(0.1, {}, rng);
    EXPECT_EQ(result.decision, stats::TestDecision::AcceptNull);
    EXPECT_DOUBLE_EQ(result.estimate, 0.0);
    EXPECT_EQ(result.samplesUsed, 0u);
    EXPECT_EQ(core::evalStats().rootSamples, 0u);
}

TEST(ExactRouting, PointMassBranchesStillDecideUnderSprt)
{
    // Both regression branches must also hold on the sampling path:
    // with routing off, the SPRT sees an all-true (all-false) stream
    // and decides the same way, now at a positive sample cost.
    Rng rng = testing::testRng(903);
    core::ConditionalOptions sampled;
    sampled.exactRouting = core::ExactRouting::Never;

    auto sure = Uncertain<bool>(true).evaluate(0.9, sampled, rng);
    EXPECT_EQ(sure.decision, stats::TestDecision::AcceptAlternative);
    EXPECT_GE(sure.samplesUsed, 1u);

    auto never = Uncertain<bool>(false).evaluate(0.1, sampled, rng);
    EXPECT_EQ(never.decision, stats::TestDecision::AcceptNull);
    EXPECT_GE(never.samplesUsed, 1u);
}

TEST(ExactRouting, FiniteGraphAnswersWithoutSampling)
{
    Rng rng = testing::testRng(904);
    core::resetEvalStats();
    auto event = bernoulliEvent(0.9);
    auto result = event.evaluate(0.5, {}, rng);
    EXPECT_EQ(result.decision, stats::TestDecision::AcceptAlternative);
    EXPECT_NEAR(result.estimate, 0.9, 1e-12);
    EXPECT_EQ(result.samplesUsed, 0u);
    EXPECT_EQ(core::evalStats().rootSamples, 0u);
    EXPECT_TRUE(event.pr(0.5, {}, rng));
    EXPECT_FALSE(event.pr(0.95, {}, rng));
}

TEST(ExactRouting, NeverOptionForcesSequentialTest)
{
    Rng rng = testing::testRng(905);
    core::resetEvalStats();
    core::ConditionalOptions sampled;
    sampled.exactRouting = core::ExactRouting::Never;
    auto result = bernoulliEvent(0.9).evaluate(0.5, sampled, rng);
    EXPECT_EQ(result.decision, stats::TestDecision::AcceptAlternative);
    EXPECT_GE(result.samplesUsed, 1u);
    EXPECT_GE(core::evalStats().rootSamples, 1u);
}

TEST(ExactRouting, UnsupportedGraphFallsBackToSampling)
{
    Rng rng = testing::testRng(906);
    core::resetEvalStats();
    auto likely = Uncertain<bool>::fromSampler(
        [](Rng& r) { return r.nextBool(0.9); }, "likely");
    auto result = likely.evaluate(0.5, {}, rng);
    EXPECT_EQ(result.decision, stats::TestDecision::AcceptAlternative);
    EXPECT_GE(result.samplesUsed, 1u);
    EXPECT_GE(core::evalStats().rootSamples, 1u);
}

TEST(ExactRouting, StateBoundSendsLargeGraphsToSampling)
{
    Rng rng = testing::testRng(907);
    Uncertain<bool> event = bernoulliEvent(0.7);
    core::ConditionalOptions tiny;
    tiny.exactMaxStates = 1; // even a single Bernoulli exceeds this
    auto result = event.evaluate(0.5, tiny, rng);
    EXPECT_GE(result.samplesUsed, 1u);
}

TEST(ExactRouting, ParallelAndBatchOverloadsRouteExactly)
{
    Rng rng = testing::testRng(908);
    core::resetEvalStats();
    auto event = bernoulliEvent(0.8);

    core::ParallelSampler parallel(2u);
    auto viaParallel = event.evaluate(0.5, {}, rng, parallel);
    EXPECT_EQ(viaParallel.samplesUsed, 0u);
    EXPECT_NEAR(viaParallel.estimate, 0.8, 1e-12);

    core::BatchSampler batch;
    auto viaBatch = event.evaluate(0.5, {}, rng, batch);
    EXPECT_EQ(viaBatch.samplesUsed, 0u);
    EXPECT_NEAR(viaBatch.estimate, 0.8, 1e-12);
    EXPECT_EQ(core::evalStats().rootSamples, 0u);
}

TEST(ExactRouting, RejectsDegenerateThresholdsOnTheExactPath)
{
    Rng rng = testing::testRng(909);
    auto event = bernoulliEvent(0.5);
    EXPECT_THROW((void)event.evaluate(0.0, {}, rng), Error);
    EXPECT_THROW((void)event.evaluate(1.0, {}, rng), Error);
    EXPECT_THROW((void)exact::pr(event, 0.0), Error);
}

TEST(ExactRouting, ExactNamespaceEvaluateMatchesRouter)
{
    Rng rng = testing::testRng(910);
    auto event = bernoulliEvent(0.6);
    auto viaExact = exact::evaluate(event, 0.5);
    auto viaRouter = event.evaluate(0.5, {}, rng);
    EXPECT_EQ(viaExact.decision, viaRouter.decision);
    EXPECT_DOUBLE_EQ(viaExact.estimate, viaRouter.estimate);
    EXPECT_EQ(viaExact.samplesUsed, viaRouter.samplesUsed);
}

} // namespace
} // namespace uncertain
