/**
 * @file
 * Property suite over seeded random finite-support DAGs
 * (tests/support/graph_gen.hpp): for every generated graph the exact
 * pmf must normalize to 1e-12, the optimized batch plan must produce
 * the *bit-identical* sample stream of the unoptimized plan (the
 * sharp form of "CSE never merges distinct stochastic leaves and
 * liveness never aliases a live column"), the optimized samples must
 * pass a chi-square test against the exact pmf, and the leaf counts
 * seen by the graph walk, the exact backend, and both batch plans
 * must agree.
 *
 * Graph count is UNCERTAIN_ORACLE_GRAPHS (default 200; the scheduled
 * CI job raises it to 2000). Failing seeds are appended to
 * oracle_failure_seeds.txt in the working directory so CI can upload
 * them as an artifact; re-running a seed through
 * testing::randomFiniteGraph reproduces the exact graph.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "stat_assert.hpp"
#include "support/graph_gen.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace {

constexpr std::size_t kSamplesPerGraph = 2000;
// Per-graph alpha: at 2000 graphs in the scheduled run the expected
// number of false rejections is 2e-3.
constexpr double kPropertyAlpha = 1e-6;

std::size_t
graphCount()
{
    if (const char* env = std::getenv("UNCERTAIN_ORACLE_GRAPHS")) {
        const long parsed = std::atol(env);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    return 200;
}

/** Distinct stochastic leaves reachable from @p node (graph walk). */
std::size_t
countGraphLeaves(const core::NodePtr<double>& root)
{
    std::set<const core::GraphNode*> visited;
    std::size_t leaves = 0;
    std::vector<const core::GraphNode*> stack{root.get()};
    while (!stack.empty()) {
        const core::GraphNode* node = stack.back();
        stack.pop_back();
        if (!visited.insert(node).second)
            continue;
        auto children = node->children();
        if (children.empty()
            && node->opName().rfind("leaf:", 0) == 0) {
            ++leaves;
        }
        for (const auto& child : children)
            stack.push_back(child.get());
    }
    return leaves;
}

struct SeedFailure
{
    std::uint64_t seed;
    std::string what;
};

void
reportFailures(const std::vector<SeedFailure>& failures)
{
    if (failures.empty())
        return;
    std::ofstream out("oracle_failure_seeds.txt", std::ios::app);
    for (const auto& failure : failures) {
        out << failure.seed << " " << failure.what << "\n";
        ADD_FAILURE() << "seed " << failure.seed << ": "
                      << failure.what;
    }
}

/**
 * Chi-square of @p samples against @p pmf with low-expectation cells
 * pooled (see oracle_equivalence_test.cpp). Returns an empty string
 * on success, a diagnostic otherwise. A sample outside the exact
 * support is reported as its own failure mode.
 */
std::string
chiSquareAgainstPmf(const std::vector<double>& samples,
                    const exact::Pmf<double>& pmf)
{
    std::vector<std::size_t> counts(pmf.entries.size(), 0);
    for (double sample : samples) {
        std::size_t index = pmf.entries.size();
        for (std::size_t i = 0; i < pmf.entries.size(); ++i) {
            if (pmf.entries[i].first == sample) {
                index = i;
                break;
            }
        }
        if (index == pmf.entries.size())
            return "sample " + std::to_string(sample)
                   + " outside exact support";
        ++counts[index];
    }

    std::vector<std::size_t> observed;
    std::vector<double> expected;
    std::size_t pooledCount = 0;
    double pooledMass = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double cellExpectation =
            pmf.entries[i].second
            * static_cast<double>(samples.size());
        if (cellExpectation < 8.0) {
            pooledCount += counts[i];
            pooledMass += pmf.entries[i].second;
        }
        else {
            observed.push_back(counts[i]);
            expected.push_back(pmf.entries[i].second);
        }
    }
    if (pooledMass > 0.0) {
        observed.push_back(pooledCount);
        expected.push_back(pooledMass);
    }
    if (observed.size() < 2)
        return "";
    auto result =
        testing::chiSquareMatches(observed, expected, kPropertyAlpha);
    return result ? "" : result.message();
}

TEST(ExactProperty, RandomGraphsSatisfyOracleInvariants)
{
    const std::size_t graphs = graphCount();
    std::vector<SeedFailure> failures;

    core::BatchOptions unoptimizedOptions;
    unoptimizedOptions.optimizer = core::PlanOptions::disabled();

    for (std::uint64_t seed = 1; seed <= graphs; ++seed) {
        auto graph = testing::randomFiniteGraph(seed);
        auto check = [&](bool ok, const std::string& what) {
            if (!ok)
                failures.push_back({seed, what});
            return ok;
        };

        // 1. The exact pmf exists and is normalized to 1e-12.
        auto support = exact::query(graph);
        if (!check(support.supported,
                   "exact backend refused: " + support.reason))
            continue;
        auto pmf = exact::pmf(graph);
        check(std::abs(pmf.mass() - 1.0) <= 1e-12,
              "pmf mass " + std::to_string(pmf.mass()));

        // 2. Optimized and unoptimized batch plans produce the
        //    bit-identical stream from the same generator state: the
        //    optimizer may only remove work, never change results.
        core::BatchSampler optimized;
        core::BatchSampler unoptimized(unoptimizedOptions);
        Rng rngA = testing::testRng(seed * 2 + 1);
        Rng rngB = testing::testRng(seed * 2 + 1);
        auto fast =
            graph.takeSamples(kSamplesPerGraph, rngA, optimized);
        auto slow =
            graph.takeSamples(kSamplesPerGraph, rngB, unoptimized);
        bool identical = fast == slow;
        check(identical, "optimized batch stream diverged from "
                         "unoptimized plan");

        // 3. The optimized stream follows the exact law.
        if (identical) {
            std::string chi = chiSquareAgainstPmf(fast, pmf);
            check(chi.empty(), "optimized batch vs exact pmf: " + chi);
        }

        // 4. Leaf counts agree everywhere: the graph walk, the exact
        //    enumeration, and both plans (CSE must never merge two
        //    distinct stochastic leaves, liveness must never drop or
        //    alias a live leaf column).
        const std::size_t graphLeaves = countGraphLeaves(graph.node());
        auto optimizedStats = core::planStats(graph);
        auto unoptimizedStats =
            core::planStats(graph, core::PlanOptions::disabled());
        check(support.leaves == graphLeaves,
              "exact backend saw "
                  + std::to_string(support.leaves)
                  + " leaves, graph walk found "
                  + std::to_string(graphLeaves));
        check(optimizedStats.leafColumns == graphLeaves,
              "optimized plan lowered "
                  + std::to_string(optimizedStats.leafColumns)
                  + " leaf columns for "
                  + std::to_string(graphLeaves) + " leaves");
        check(unoptimizedStats.leafColumns == graphLeaves,
              "unoptimized plan lowered "
                  + std::to_string(unoptimizedStats.leafColumns)
                  + " leaf columns for "
                  + std::to_string(graphLeaves) + " leaves");
    }

    reportFailures(failures);
    RecordProperty("graphs", static_cast<int>(graphs));
}

TEST(ExactProperty, GeneratorIsDeterministicPerSeed)
{
    // A reported failure seed must reproduce the same graph: same
    // support, same probabilities, same optimized sample stream.
    for (std::uint64_t seed : {3u, 17u, 99u}) {
        auto a = testing::randomFiniteGraph(seed);
        auto b = testing::randomFiniteGraph(seed);
        auto pa = exact::pmf(a);
        auto pb = exact::pmf(b);
        ASSERT_EQ(pa.entries.size(), pb.entries.size()) << seed;
        for (std::size_t i = 0; i < pa.entries.size(); ++i) {
            EXPECT_EQ(pa.entries[i].first, pb.entries[i].first);
            EXPECT_DOUBLE_EQ(pa.entries[i].second,
                             pb.entries[i].second);
        }
        core::BatchSampler sampler;
        Rng rngA = testing::testRng(seed);
        Rng rngB = testing::testRng(seed);
        EXPECT_EQ(a.takeSamples(256, rngA, sampler),
                  b.takeSamples(256, rngB, sampler))
            << seed;
    }
}

} // namespace
} // namespace uncertain
