/**
 * @file
 * Shared helpers for the test suite: deterministic generators and
 * statistical assertion tolerances.
 *
 * Statistical tests use fixed seeds, so they are deterministic; the
 * tolerances are still chosen at the 5-6 sigma level so that changing
 * a seed (or an upstream consumer of the stream) does not make them
 * brittle.
 */

#ifndef UNCERTAIN_TESTS_TEST_UTIL_HPP
#define UNCERTAIN_TESTS_TEST_UTIL_HPP

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "support/rng.hpp"

namespace uncertain {
namespace testing {

/**
 * Suite-wide seed displacement, read once from
 * UNCERTAIN_TEST_SEED_OFFSET (default 0: the historical fixed
 * streams). scripts/stat_flake_audit.py sweeps this across many
 * values to measure each statistical test's actual rejection rate
 * against its alpha budget — with the offset at 0 every run is
 * bit-reproducible, so flakiness is invisible without the sweep.
 */
inline std::uint64_t
testSeedOffset()
{
    static const std::uint64_t offset = [] {
        const char* env = std::getenv("UNCERTAIN_TEST_SEED_OFFSET");
        return env ? std::strtoull(env, nullptr, 10)
                   : std::uint64_t{0};
    }();
    return offset;
}

/** A deterministic generator for a test, offset by a local seed. */
inline Rng
testRng(std::uint64_t seed = 1)
{
    return Rng(0xabcdef1234567890ULL
               ^ ((seed + testSeedOffset())
                  * 0x9e3779b97f4a7c15ULL));
}

/**
 * Tolerance for a Monte Carlo mean with @p n samples of a variable
 * with standard deviation @p sd, at ~5 sigma of the estimator.
 */
inline double
meanTolerance(double sd, std::size_t n)
{
    return 5.0 * sd / std::sqrt(static_cast<double>(n));
}

/**
 * Tolerance for an empirical proportion around @p p with @p n
 * samples, at ~5 sigma.
 */
inline double
proportionTolerance(double p, std::size_t n)
{
    double sd = std::sqrt(p * (1.0 - p));
    return 5.0 * sd / std::sqrt(static_cast<double>(n)) + 1e-12;
}

} // namespace testing
} // namespace uncertain

#endif // UNCERTAIN_TESTS_TEST_UTIL_HPP
