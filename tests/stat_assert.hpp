/**
 * @file
 * Shared statistical assertion library for the test suite.
 *
 * Every sampler change in this repo is accepted or rejected by
 * distance-based statistical tests (KS, chi-square) plus moment
 * checks, in the spirit of Sarkar et al., "Assessing the Quality of
 * Binomial Samplers". This header is the single home for those
 * assertions so that every suite runs them with the same conventions:
 *
 *  - Fixed seeds. Callers draw their samples from
 *    testing::testRng(seed) with a per-test seed, so a failure is
 *    reproducible, not flaky. A failing assertion means the sampler
 *    (or its stream discipline) changed, never that the dice were
 *    unlucky tonight.
 *  - Documented alpha levels. Distance tests run at kKsAlpha /
 *    kChiSquareAlpha = 0.01: for the fixed seeds in the suite a true
 *    sampler fails with probability ~1%, re-rolled only when a seed
 *    changes. Moment checks use the ~5-sigma tolerances of
 *    test_util.hpp, which are effectively zero false-positive.
 *
 * All helpers return ::testing::AssertionResult so failures print the
 * statistic, the p-value, and the alpha they were judged at:
 *
 *   EXPECT_TRUE(testing::ksMatchesDistribution(samples, gaussian));
 *   EXPECT_TRUE(testing::ksSameDistribution(serial, batch));
 *   EXPECT_TRUE(testing::momentsMatch(samples, mu, sigma));
 *   EXPECT_TRUE(testing::chiSquareMatches(counts, probabilities));
 */

#ifndef UNCERTAIN_TESTS_STAT_ASSERT_HPP
#define UNCERTAIN_TESTS_STAT_ASSERT_HPP

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "random/distribution.hpp"
#include "stats/chi_square.hpp"
#include "stats/ks_test.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace uncertain {
namespace testing {

/** Significance level for Kolmogorov-Smirnov distance tests. */
constexpr double kKsAlpha = 0.01;

/** Significance level for chi-square goodness-of-fit tests. */
constexpr double kChiSquareAlpha = 0.01;

/**
 * One-sample KS test: do @p samples follow @p reference's analytic
 * CDF? Fails when the p-value drops below @p alpha.
 */
inline ::testing::AssertionResult
ksMatchesDistribution(const std::vector<double>& samples,
                      const random::Distribution& reference,
                      double alpha = kKsAlpha)
{
    auto ks = stats::ksTest(samples, reference);
    if (!ks.rejectAt(alpha))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << samples.size() << " samples reject " << reference.name()
           << ": KS statistic " << ks.statistic << ", p " << ks.pValue
           << " < alpha " << alpha;
}

/**
 * Two-sample KS test: were @p xs and @p ys drawn from the same law?
 * The workhorse of engine-equivalence suites (serial vs parallel vs
 * batch), where no analytic CDF exists for the compared expression.
 */
inline ::testing::AssertionResult
ksSameDistribution(const std::vector<double>& xs,
                   const std::vector<double>& ys,
                   double alpha = kKsAlpha)
{
    auto ks = stats::ksTest2(xs, ys);
    if (!ks.rejectAt(alpha))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "samples (" << xs.size() << ", " << ys.size()
           << ") reject equality: KS statistic " << ks.statistic
           << ", p " << ks.pValue << " < alpha " << alpha;
}

/**
 * First- and second-moment check: the sample mean must lie within
 * ~5 sigma of @p mean (estimator sd = sd/sqrt(n)) and the sample
 * standard deviation within ~5 sigma of @p sd. The sd tolerance uses
 * sd*sqrt(2/n) — twice the normal-theory estimator sd — so the check
 * stays ~5 sigma for laws with excess kurtosis up to ~6 (exponential)
 * instead of silently tightening on heavy tails.
 */
inline ::testing::AssertionResult
momentsMatch(const std::vector<double>& samples, double mean,
             double sd)
{
    stats::OnlineSummary summary;
    summary.addAll(samples);
    const std::size_t n = summary.count();
    const double meanTol = meanTolerance(sd, n);
    if (std::abs(summary.mean() - mean) > meanTol)
        return ::testing::AssertionFailure()
               << "sample mean " << summary.mean() << " outside "
               << mean << " +/- " << meanTol << " (n " << n << ")";
    const double sdTol =
        5.0 * sd * std::sqrt(2.0 / static_cast<double>(n));
    if (std::abs(summary.stddev() - sd) > sdTol)
        return ::testing::AssertionFailure()
               << "sample sd " << summary.stddev() << " outside " << sd
               << " +/- " << sdTol << " (n " << n << ")";
    return ::testing::AssertionSuccess();
}

/**
 * Pearson chi-square goodness-of-fit of @p observed cell counts
 * against @p expected cell probabilities (normalized internally).
 * For discrete samplers (Bernoulli, binomial, discrete mixtures)
 * where a KS test is inappropriate.
 *
 * Adjacent cells whose expected count falls below 5 are pooled
 * (stats::chiSquareGofPooled) before the statistic is computed: the
 * chi-square null distribution is asymptotic and a sparse tail —
 * e.g. a Poisson histogram cut at its far quantiles — yields
 * spurious rejections if its near-empty cells each contribute a
 * (O - E)^2 / E term with E << 1.
 */
inline ::testing::AssertionResult
chiSquareMatches(const std::vector<std::size_t>& observed,
                 const std::vector<double>& expected,
                 double alpha = kChiSquareAlpha)
{
    auto gof = stats::chiSquareGofPooled(observed, expected);
    if (!gof.rejectAt(alpha))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "chi-square " << gof.statistic << " on "
           << gof.degreesOfFreedom << " dof rejects: p " << gof.pValue
           << " < alpha " << alpha;
}

} // namespace testing
} // namespace uncertain

#endif // UNCERTAIN_TESTS_STAT_ASSERT_HPP
