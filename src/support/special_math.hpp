/**
 * @file
 * Special functions backing distribution CDFs, quantiles, and the
 * hypothesis tests in src/stats. Implemented from the standard
 * series/continued-fraction formulations so the library has no
 * external numeric dependencies.
 */

#ifndef UNCERTAIN_SUPPORT_SPECIAL_MATH_HPP
#define UNCERTAIN_SUPPORT_SPECIAL_MATH_HPP

namespace uncertain {
namespace math {

/** Standard normal probability density at @p x. */
double normalPdf(double x);

/** Standard normal cumulative distribution Phi(x). */
double normalCdf(double x);

/**
 * Inverse standard normal CDF (the probit function), accurate to
 * ~1e-9 via Acklam's rational approximation plus one Halley step.
 * Requires p in (0, 1).
 */
double normalQuantile(double p);

/** Natural log of the gamma function for x > 0. */
double logGamma(double x);

/**
 * Regularized lower incomplete gamma P(a, x) = gamma(a, x)/Gamma(a)
 * for a > 0, x >= 0. Series for x < a + 1, continued fraction
 * otherwise.
 */
double regularizedGammaP(double a, double x);

/** Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x). */
double regularizedGammaQ(double a, double x);

/**
 * Regularized incomplete beta I_x(a, b) for a, b > 0 and x in [0, 1],
 * by the Lentz continued-fraction evaluation.
 */
double regularizedBeta(double x, double a, double b);

/** Natural log of the beta function B(a, b). */
double logBeta(double a, double b);

/** Chi-square CDF with @p k degrees of freedom. */
double chiSquareCdf(double x, double k);

/** Student-t CDF with @p nu degrees of freedom. */
double studentTCdf(double t, double nu);

} // namespace math
} // namespace uncertain

#endif // UNCERTAIN_SUPPORT_SPECIAL_MATH_HPP
