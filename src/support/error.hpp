/**
 * @file
 * Error reporting for the Uncertain<T> library.
 *
 * Two categories of failure, following the gem5 fatal/panic split:
 *  - uncertain::Error is thrown for user mistakes (bad arguments,
 *    invalid distribution parameters). Callers may catch and recover.
 *  - UNCERTAIN_ASSERT aborts on internal invariant violations, i.e.,
 *    bugs in this library itself.
 */

#ifndef UNCERTAIN_SUPPORT_ERROR_HPP
#define UNCERTAIN_SUPPORT_ERROR_HPP

#include <stdexcept>
#include <string>

namespace uncertain {

/**
 * Exception thrown on user error: invalid parameters, out-of-domain
 * arguments, or misuse of the API.
 */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {}
};

namespace detail {

/** Throws uncertain::Error with file/line context. [[noreturn]] */
[[noreturn]] void
throwError(const char* file, int line, const std::string& message);

/** Prints an assertion failure and aborts. [[noreturn]] */
[[noreturn]] void
assertFail(const char* file, int line, const char* expr,
           const std::string& message);

} // namespace detail

} // namespace uncertain

/**
 * Validate a user-supplied condition; throws uncertain::Error with a
 * formatted message when the condition is false.
 */
#define UNCERTAIN_REQUIRE(cond, message)                                    \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::uncertain::detail::throwError(__FILE__, __LINE__, (message)); \
        }                                                                   \
    } while (false)

/**
 * Check an internal invariant; aborts with a diagnostic when violated.
 * A failure here is a bug in the library, never a user error.
 */
#define UNCERTAIN_ASSERT(cond, message)                                    \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::uncertain::detail::assertFail(__FILE__, __LINE__, #cond,     \
                                            (message));                   \
        }                                                                  \
    } while (false)

#endif // UNCERTAIN_SUPPORT_ERROR_HPP
