#include "support/rng.hpp"

#include <atomic>

#include "core/simd_kernels.hpp"
#include "support/error.hpp"

namespace uncertain {

namespace {

inline std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed)
{
    SplitMix64 expander(seed);
    for (auto& word : state_)
        word = expander.next();
    // An all-zero state is the one invalid state; the SplitMix64
    // expansion of any seed cannot produce it, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t
Xoshiro256StarStar::next()
{
    const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl64(state_[3], 45);

    return result;
}

void
Xoshiro256StarStar::jump()
{
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL,
    };

    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump) {
        for (int bit = 0; bit < 64; ++bit) {
            if (word & (1ULL << bit)) {
                s0 ^= state_[0];
                s1 ^= state_[1];
                s2 ^= state_[2];
                s3 ^= state_[3];
            }
            next();
        }
    }
    state_ = {s0, s1, s2, s3};
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1) | 1)
{
    next();
    state_ += seed;
    next();
}

std::uint32_t
Pcg32::next()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

double
Rng::nextDouble()
{
    // 53 high bits scaled by 2^-53 gives the canonical [0, 1) double.
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::nextDoubleOpen()
{
    // (x + 0.5) * 2^-53 lies strictly inside (0, 1) for all x.
    return (static_cast<double>(nextU64() >> 11) + 0.5) * 0x1.0p-53;
}

double
Rng::nextRange(double lo, double hi)
{
    UNCERTAIN_REQUIRE(lo < hi, "Rng::nextRange requires lo < hi");
    return lo + (hi - lo) * nextDouble();
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    UNCERTAIN_REQUIRE(bound > 0, "Rng::nextBelow requires bound > 0");
    // Rejection to remove modulo bias (Lemire-style threshold).
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t raw = nextU64();
        if (raw >= threshold)
            return raw % bound;
    }
}

bool
Rng::nextBool(double p)
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0,
                      "Rng::nextBool requires p in [0, 1]");
    return nextDouble() < p;
}

// The bulk fills go through the simd kernel layer, pinned to the
// scalar implementation. The leapfrogged vector fills exist and are
// bit-identical (tests drive them with an explicit Isa), but the
// xoshiro transition is a short serial dependency chain the scalar
// engine already retires at ~3 cycles/word; the 4-lane leapfrog must
// run four vector transitions per pack to keep every lane on the
// serial orbit, so it saves no work and measures ~25% slower on
// issue-width-bound AVX2 cores. Since the output is bit-identical
// either way, preferring the scalar loop here is purely a speed
// choice and invisible to every caller.

void
Rng::fillU64(std::uint64_t* out, std::size_t n)
{
    simd::xoshiroFillU64(simd::Isa::Scalar, engine_.state_.data(), out,
                         n);
}

void
Rng::fillDouble(double* out, std::size_t n)
{
    simd::xoshiroFillDouble(simd::Isa::Scalar, engine_.state_.data(),
                            out, n, /*open=*/false);
}

void
Rng::fillDoubleOpen(double* out, std::size_t n)
{
    simd::xoshiroFillDouble(simd::Isa::Scalar, engine_.state_.data(),
                            out, n, /*open=*/true);
}

namespace {

/** SplitMix64 finalizer as a stand-alone 64-bit mixing function. */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng
Rng::split(std::uint64_t streamIndex) const
{
    // Fold the full 256-bit state and the stream index through the
    // SplitMix64 finalizer. Each input word is mixed before being
    // absorbed so that low-entropy indices (0, 1, 2, ...) still flip
    // about half the seed bits between adjacent children.
    const auto& s = engine_.state();
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t word : s)
        h = mix64(h ^ mix64(word));
    h = mix64(h ^ mix64(streamIndex + 0xbf58476d1ce4e5b9ULL));
    // The child seed is expanded to a full 256-bit state by the
    // Xoshiro256StarStar(seed) constructor via SplitMix64.
    return Rng(h);
}

Rng
Rng::fork()
{
    Xoshiro256StarStar child = engine_;
    child.jump();
    engine_.jump();
    engine_.jump();
    return Rng(child);
}

namespace {

std::atomic<std::uint64_t> threadSeedCounter{0x5eedULL};

} // namespace

Rng&
globalRng()
{
    thread_local Rng rng(threadSeedCounter.fetch_add(
        0x9e3779b97f4a7c15ULL, std::memory_order_relaxed));
    return rng;
}

void
seedGlobalRng(std::uint64_t seed)
{
    globalRng() = Rng(seed);
}

} // namespace uncertain
