#include "support/special_math.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace uncertain {
namespace math {

namespace {

constexpr double kSqrt2 = 1.4142135623730950488;
constexpr double kInvSqrt2Pi = 0.39894228040143267794;
constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;

} // namespace

double
normalPdf(double x)
{
    return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / kSqrt2);
}

double
normalQuantile(double p)
{
    UNCERTAIN_REQUIRE(p > 0.0 && p < 1.0,
                      "normalQuantile requires p in (0, 1)");

    // Acklam's rational approximation (relative error < 1.15e-9).
    static constexpr double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00,
    };
    static constexpr double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01,
    };
    static constexpr double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00,  2.938163982698783e+00,
    };
    static constexpr double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00,
    };

    constexpr double plow = 0.02425;
    double x;
    if (p < plow) {
        double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
             + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - plow) {
        double q = p - 0.5;
        double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
             + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r
               + 1.0);
    } else {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
              + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step drives the error to ~1e-15.
    double e = normalCdf(x) - p;
    double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

double
logGamma(double x)
{
    UNCERTAIN_REQUIRE(x > 0.0, "logGamma requires x > 0");
    return std::lgamma(x);
}

namespace {

/** Series expansion of P(a, x), valid (fast) for x < a + 1. */
double
gammaPSeries(double a, double x)
{
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < kMaxIterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * kEpsilon)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - logGamma(a));
}

/** Lentz continued fraction for Q(a, x), valid (fast) for x >= a + 1. */
double
gammaQContinuedFraction(double a, double x)
{
    constexpr double kTiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / kTiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= kMaxIterations; ++i) {
        double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < kTiny)
            d = kTiny;
        c = b + an / c;
        if (std::fabs(c) < kTiny)
            c = kTiny;
        d = 1.0 / d;
        double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < kEpsilon)
            break;
    }
    return h * std::exp(-x + a * std::log(x) - logGamma(a));
}

} // namespace

double
regularizedGammaP(double a, double x)
{
    UNCERTAIN_REQUIRE(a > 0.0 && x >= 0.0,
                      "regularizedGammaP requires a > 0 and x >= 0");
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
regularizedGammaQ(double a, double x)
{
    return 1.0 - regularizedGammaP(a, x);
}

double
logBeta(double a, double b)
{
    return logGamma(a) + logGamma(b) - logGamma(a + b);
}

namespace {

/** Lentz continued fraction for the incomplete beta. */
double
betaContinuedFraction(double x, double a, double b)
{
    constexpr double kTiny = 1e-300;
    double qab = a + b;
    double qap = a + 1.0;
    double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < kTiny)
        d = kTiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIterations; ++m) {
        double dm = static_cast<double>(m);
        double aa = dm * (b - dm) * x / ((qam + 2.0 * dm) * (a + 2.0 * dm));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny)
            d = kTiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny)
            c = kTiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + dm) * (qab + dm) * x
             / ((a + 2.0 * dm) * (qap + 2.0 * dm));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny)
            d = kTiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny)
            c = kTiny;
        d = 1.0 / d;
        double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < kEpsilon)
            break;
    }
    return h;
}

} // namespace

double
regularizedBeta(double x, double a, double b)
{
    UNCERTAIN_REQUIRE(a > 0.0 && b > 0.0,
                      "regularizedBeta requires a, b > 0");
    UNCERTAIN_REQUIRE(x >= 0.0 && x <= 1.0,
                      "regularizedBeta requires x in [0, 1]");
    if (x == 0.0)
        return 0.0;
    if (x == 1.0)
        return 1.0;

    double front =
        std::exp(a * std::log(x) + b * std::log(1.0 - x) - logBeta(a, b));
    // Use the symmetry relation to stay in the rapidly-converging
    // region of the continued fraction.
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(x, a, b) / a;
    return 1.0 - front * betaContinuedFraction(1.0 - x, b, a) / b;
}

double
chiSquareCdf(double x, double k)
{
    UNCERTAIN_REQUIRE(k > 0.0, "chiSquareCdf requires k > 0");
    if (x <= 0.0)
        return 0.0;
    return regularizedGammaP(0.5 * k, 0.5 * x);
}

double
studentTCdf(double t, double nu)
{
    UNCERTAIN_REQUIRE(nu > 0.0, "studentTCdf requires nu > 0");
    if (t == 0.0)
        return 0.5;
    double x = nu / (nu + t * t);
    double tail = 0.5 * regularizedBeta(x, 0.5 * nu, 0.5);
    return t > 0.0 ? 1.0 - tail : tail;
}

} // namespace math
} // namespace uncertain
