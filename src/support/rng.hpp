/**
 * @file
 * Pseudo-random number engines and the Rng facade.
 *
 * The library implements its own engines so that sampling behaviour is
 * reproducible across standard libraries and platforms:
 *  - SplitMix64: seed expander (Steele, Lea & Flood, OOPSLA 2014).
 *  - Xoshiro256StarStar: default engine (Blackman & Vigna, 2018).
 *  - Pcg32: small-state alternative engine (O'Neill, 2014).
 *
 * The Rng facade wraps an engine and provides the uniform deviates the
 * distribution classes in src/random build on. Engines satisfy
 * std::uniform_random_bit_generator, so they also interoperate with
 * <random> if a user prefers the standard distributions.
 */

#ifndef UNCERTAIN_SUPPORT_RNG_HPP
#define UNCERTAIN_SUPPORT_RNG_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace uncertain {

/**
 * SplitMix64: a tiny 64-bit generator used to expand a single seed
 * into the larger state vectors of the main engines. Also usable as a
 * (statistically weaker) engine in its own right.
 */
class SplitMix64
{
  public:
    using result_type = std::uint64_t;

    explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Advance the state and return the next 64-bit output. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t
    max()
    {
        return std::numeric_limits<std::uint64_t>::max();
    }

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256** 1.0, the library's default engine: 256 bits of state,
 * period 2^256 - 1, excellent statistical quality, and a jump()
 * function that provides 2^128 non-overlapping subsequences for
 * independent streams.
 */
class Xoshiro256StarStar
{
  public:
    using result_type = std::uint64_t;

    /** Seeds the 256-bit state by running SplitMix64 on @p seed. */
    explicit Xoshiro256StarStar(std::uint64_t seed = 0xdeadbeefcafef00dULL);

    /** Advance the state and return the next 64-bit output. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    /**
     * Jump ahead by 2^128 steps. Calling jump() on a copy yields a
     * stream guaranteed not to overlap the original for 2^128 draws.
     */
    void jump();

    /**
     * Read-only snapshot of the 256-bit state. Used to derive child
     * streams deterministically (Rng::split) without advancing the
     * engine.
     */
    const std::array<std::uint64_t, 4>& state() const { return state_; }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t
    max()
    {
        return std::numeric_limits<std::uint64_t>::max();
    }

  private:
    // Rng's bulk fills hand the raw state to the leapfrogged SIMD
    // fill kernels (core/simd_kernels.hpp), which advance it in place
    // exactly as the equivalent run of next() calls would.
    friend class Rng;

    std::array<std::uint64_t, 4> state_;
};

/**
 * PCG-XSH-RR 64/32 (pcg32): 64 bits of state, 32-bit output. Provided
 * as a small-state alternative and to cross-check engine independence
 * in tests.
 */
class Pcg32
{
  public:
    using result_type = std::uint32_t;

    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Advance the state and return the next 32-bit output. */
    std::uint32_t next();

    std::uint32_t operator()() { return next(); }

    static constexpr std::uint32_t min() { return 0; }
    static constexpr std::uint32_t
    max()
    {
        return std::numeric_limits<std::uint32_t>::max();
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

/**
 * Facade over the default engine providing the uniform deviates that
 * every distribution in src/random is built from. One Rng instance is
 * a single stream; fork() splits off an independent stream.
 *
 * Not thread-safe; use one Rng (or fork) per thread.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t nextU64() { return engine_.next(); }

    std::uint64_t operator()() { return nextU64(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t
    max()
    {
        return std::numeric_limits<std::uint64_t>::max();
    }

    /** Uniform double in [0, 1) with 53 random bits. */
    double nextDouble();

    /** Uniform double in (0, 1); never returns exactly 0 or 1. */
    double nextDoubleOpen();

    /** Uniform double in [lo, hi). Requires lo < hi. */
    double nextRange(double lo, double hi);

    /** Unbiased uniform integer in [0, bound). Requires bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Bernoulli(p) draw. */
    bool nextBool(double p = 0.5);

    /**
     * Bulk fills: write @p n consecutive deviates into @p out, exactly
     * as the corresponding scalar call would produce them in a loop.
     * These exist so the columnar batch kernels (core/batch_plan.hpp)
     * can fill a whole leaf column without paying the facade call per
     * element; the stream advances by the same amount as n scalar
     * draws.
     */
    void fillU64(std::uint64_t* out, std::size_t n);

    /** n values of nextDouble() into @p out. */
    void fillDouble(double* out, std::size_t n);

    /** n values of nextDoubleOpen() into @p out. */
    void fillDoubleOpen(double* out, std::size_t n);

    /**
     * Split off an independent stream: the result is a copy of this
     * engine jumped ahead 2^128 steps, and this engine is jumped once
     * more so the parent and all forks are pairwise non-overlapping.
     */
    Rng fork();

    /**
     * Deterministic, counter-based child stream: hashes the current
     * 256-bit state together with @p streamIndex into a fresh engine
     * seed. Unlike fork(), split() does NOT advance this generator,
     * so the family { split(0), split(1), ... } is a pure function of
     * (state, index). This is what makes batch sample i identical no
     * matter which thread draws it: every worker derives stream i
     * from the same parent snapshot. Uses only fixed-width integer
     * ops, so results are identical across platforms. Distinct
     * indices give statistically independent streams (SplitMix64
     * finalization; see tests/support/rng_split_test.cpp).
     */
    Rng split(std::uint64_t streamIndex) const;

    /**
     * Advance this generator by one draw. Call after handing out
     * split() children for a batch so the next batch derives a fresh
     * stream family.
     */
    void advance() { (void)nextU64(); }

  private:
    explicit Rng(const Xoshiro256StarStar& engine) : engine_(engine) {}

    Xoshiro256StarStar engine_;
};

/**
 * Per-thread default generator used when a sampling call is made
 * without an explicit Rng. Deterministically seeded per thread;
 * reseedable for reproducible runs.
 */
Rng& globalRng();

/** Reseed the calling thread's global generator. */
void seedGlobalRng(std::uint64_t seed);

} // namespace uncertain

#endif // UNCERTAIN_SUPPORT_RNG_HPP
