#include "support/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace uncertain {
namespace detail {

void
throwError(const char* file, int line, const std::string& message)
{
    std::ostringstream out;
    out << message << " (" << file << ":" << line << ")";
    throw Error(out.str());
}

void
assertFail(const char* file, int line, const char* expr,
           const std::string& message)
{
    std::fprintf(stderr,
                 "uncertain: internal assertion `%s` failed at %s:%d: %s\n",
                 expr, file, line, message.c_str());
    std::abort();
}

} // namespace detail
} // namespace uncertain
