/**
 * @file
 * Trace-based single-site Metropolis-Hastings: the inference
 * algorithm Church-family languages actually run (the paper's
 * related-work baseline, section 6). A trace records every primitive
 * random choice a model makes; each MH step resamples one site from
 * its prior, replays the model, and accepts with probability
 * min(1, exp(W' - W)) where W is the trace's accumulated factor/
 * observe log weight.
 *
 * Restriction: the model's control flow must make the same sequence
 * of primitive choices on every execution (fixed structure). Models
 * whose choice structure depends on sampled values are rejected with
 * an Error rather than silently producing a biased chain.
 */

#ifndef UNCERTAIN_PROB_MCMC_HPP
#define UNCERTAIN_PROB_MCMC_HPP

#include <cstddef>
#include <vector>

#include "prob/model.hpp"

namespace uncertain {
namespace prob {

/** MH tuning. */
struct McmcOptions
{
    std::size_t burnIn = 500;
    std::size_t thinning = 5;
    std::size_t posteriorSamples = 1000;
    /** Attempts to find an initial trace with non-zero weight. */
    std::size_t maxInitAttempts = 1000000;
};

/** MH output. */
struct McmcResult
{
    std::vector<double> samples;
    double acceptanceRate;
    std::size_t modelExecutions;
};

/**
 * Run single-site MH over @p model. Hard observe() conditioning is
 * supported (initialization finds a satisfying trace by rejection;
 * moves breaking the constraint are never accepted); soft factor()
 * weights drive the acceptance ratio.
 */
McmcResult mcmcQuery(const Model& model, const McmcOptions& options,
                     Rng& rng);

} // namespace prob
} // namespace uncertain

#endif // UNCERTAIN_PROB_MCMC_HPP
