/**
 * @file
 * A miniature Church-style probabilistic programming engine: the
 * related-work baseline of paper section 6 (Figure 17). Generative
 * models are ordinary callables that draw random choices and declare
 * observations through a Sampler handle; queries run inference by
 * rejection sampling, whose cost explodes as the observed event gets
 * rare — the shortcoming the paper contrasts with Uncertain<T>'s
 * goal-directed conditional sampling.
 */

#ifndef UNCERTAIN_PROB_MODEL_HPP
#define UNCERTAIN_PROB_MODEL_HPP

#include <cstddef>
#include <functional>
#include <vector>

#include "support/rng.hpp"

namespace uncertain {
namespace prob {

/**
 * The handle a generative model programs against: primitive random
 * choices plus observe(). After a failed observe() the trace is
 * rejected; further choices still draw (so the model can run to
 * completion) but the trace's query value is discarded.
 */
class Sampler
{
  public:
    explicit Sampler(Rng& rng) : rng_(rng) {}
    virtual ~Sampler() = default;

    /** Bernoulli(p) choice. */
    virtual bool flip(double p);

    /** Uniform(lo, hi) choice. */
    virtual double uniform(double lo, double hi);

    /** Gaussian(mu, sigma) choice. */
    virtual double gaussian(double mu, double sigma);

    /** Condition the program on @p condition being true. */
    void observe(bool condition);

    /**
     * Soft conditioning (likelihood weighting): multiply the trace's
     * weight by exp(logWeight). Typical use: score an observed noisy
     * measurement against the trace's latent value,
     * `s.factor(Gaussian(latent, noise).logPdf(observed))`.
     */
    void factor(double logWeight);

    /** Did any hard observation fail in this trace? */
    bool rejected() const;

    /** Accumulated log weight of the trace (0 when unconditioned). */
    double logWeight() const { return logWeight_; }

  protected:
    Rng& rng() { return rng_; }

  private:
    Rng& rng_;
    double logWeight_ = 0.0;
};

/** A generative model returning the queried quantity. */
using Model = std::function<double(Sampler&)>;

/** Outcome of a rejection query. */
struct QueryResult
{
    /** Accepted query values (posterior samples). */
    std::vector<double> samples;
    /** Total model executions, accepted or not. */
    std::size_t simulations = 0;

    double
    acceptanceRate() const
    {
        return simulations == 0
                   ? 0.0
                   : static_cast<double>(samples.size())
                         / static_cast<double>(simulations);
    }

    /** Mean of the accepted samples; requires >= 1 acceptance. */
    double mean() const;
};

/**
 * Draw @p desiredSamples posterior samples from @p model by rejection
 * sampling, giving up after @p maxSimulations model executions
 * (whatever has been accepted by then is returned). Only hard
 * observe() conditioning participates; finite factor() weights are
 * invisible to rejection — use likelihoodWeightedQuery for soft
 * evidence.
 */
QueryResult rejectionQuery(const Model& model,
                           std::size_t desiredSamples, Rng& rng,
                           std::size_t maxSimulations = 100000000);

/** One weighted posterior draw. */
struct WeightedSample
{
    double value;
    double logWeight;
};

/** Outcome of a likelihood-weighting query. */
struct WeightedQueryResult
{
    std::vector<WeightedSample> samples;
    std::size_t simulations = 0;

    /** Self-normalized importance-sampling posterior mean. */
    double mean() const;

    /** Kish effective sample size of the weights. */
    double effectiveSampleSize() const;
};

/**
 * Likelihood weighting: run the model @p simulations times, keeping
 * every trace with its accumulated weight. Exact for soft
 * conditioning (factor); for hard observe() it degenerates to
 * rejection sampling's efficiency but never discards work.
 */
WeightedQueryResult likelihoodWeightedQuery(const Model& model,
                                            std::size_t simulations,
                                            Rng& rng);

/**
 * The paper's Figure 17 program: earthquakes and burglaries trigger
 * an alarm; earthquakes degrade the phone line. Observing the alarm,
 * query whether the phone still works (1.0 = working).
 */
double alarmModel(Sampler& s);

/**
 * The alarm model rewritten with a fixed choice structure (both
 * phone flips drawn unconditionally, one selected): semantically
 * identical, but compatible with the trace-MH engine of
 * prob/mcmc.hpp, whose replay requires the same primitive sequence
 * on every execution.
 */
double alarmModelFixedStructure(Sampler& s);

} // namespace prob
} // namespace uncertain

#include "core/uncertain.hpp"

namespace uncertain {
namespace prob {

/**
 * Bridge to the uncertain type: run a rejection query and wrap the
 * accepted posterior samples as an Uncertain<double> (a fixed-pool
 * sampling function). This is how a generative-model posterior can
 * flow into application code that computes and branches with
 * Uncertain<T>. Throws when no sample is accepted within
 * @p maxSimulations.
 */
Uncertain<double>
queryAsUncertain(const Model& model, std::size_t posteriorSamples,
                 Rng& rng, std::size_t maxSimulations = 100000000);

} // namespace prob
} // namespace uncertain

#endif // UNCERTAIN_PROB_MODEL_HPP
