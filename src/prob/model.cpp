#include "prob/model.hpp"

#include "random/gaussian.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace prob {

bool
Sampler::flip(double p)
{
    return rng_.nextBool(p);
}

double
Sampler::uniform(double lo, double hi)
{
    return rng_.nextRange(lo, hi);
}

double
Sampler::gaussian(double mu, double sigma)
{
    UNCERTAIN_REQUIRE(sigma > 0.0, "Sampler::gaussian: sigma > 0");
    return mu + sigma * random::Gaussian::standardSample(rng_);
}

void
Sampler::observe(bool condition)
{
    if (!condition)
        logWeight_ = -std::numeric_limits<double>::infinity();
}

void
Sampler::factor(double logWeight)
{
    UNCERTAIN_REQUIRE(!std::isnan(logWeight),
                      "factor requires a non-NaN log weight");
    logWeight_ += logWeight;
}

bool
Sampler::rejected() const
{
    return logWeight_ == -std::numeric_limits<double>::infinity();
}

double
QueryResult::mean() const
{
    return stats::mean(samples);
}

QueryResult
rejectionQuery(const Model& model, std::size_t desiredSamples, Rng& rng,
               std::size_t maxSimulations)
{
    UNCERTAIN_REQUIRE(model != nullptr, "rejectionQuery requires a model");
    UNCERTAIN_REQUIRE(desiredSamples >= 1,
                      "rejectionQuery requires >= 1 sample");

    QueryResult result;
    result.samples.reserve(desiredSamples);
    while (result.samples.size() < desiredSamples
           && result.simulations < maxSimulations) {
        Sampler sampler(rng);
        double value = model(sampler);
        ++result.simulations;
        if (!sampler.rejected())
            result.samples.push_back(value);
    }
    return result;
}

double
WeightedQueryResult::mean() const
{
    UNCERTAIN_REQUIRE(!samples.empty(),
                      "WeightedQueryResult::mean: no samples");
    double maxLog = -std::numeric_limits<double>::infinity();
    for (const WeightedSample& s : samples)
        maxLog = std::max(maxLog, s.logWeight);
    UNCERTAIN_REQUIRE(std::isfinite(maxLog),
                      "WeightedQueryResult::mean: all weights zero");
    double total = 0.0;
    double weighted = 0.0;
    for (const WeightedSample& s : samples) {
        double w = std::exp(s.logWeight - maxLog);
        total += w;
        weighted += w * s.value;
    }
    return weighted / total;
}

double
WeightedQueryResult::effectiveSampleSize() const
{
    UNCERTAIN_REQUIRE(!samples.empty(),
                      "WeightedQueryResult::effectiveSampleSize: "
                      "no samples");
    double maxLog = -std::numeric_limits<double>::infinity();
    for (const WeightedSample& s : samples)
        maxLog = std::max(maxLog, s.logWeight);
    if (!std::isfinite(maxLog))
        return 0.0;
    double total = 0.0;
    double totalSq = 0.0;
    for (const WeightedSample& s : samples) {
        double w = std::exp(s.logWeight - maxLog);
        total += w;
        totalSq += w * w;
    }
    return total * total / totalSq;
}

WeightedQueryResult
likelihoodWeightedQuery(const Model& model, std::size_t simulations,
                        Rng& rng)
{
    UNCERTAIN_REQUIRE(model != nullptr,
                      "likelihoodWeightedQuery requires a model");
    UNCERTAIN_REQUIRE(simulations >= 1,
                      "likelihoodWeightedQuery requires >= 1 run");
    WeightedQueryResult result;
    result.samples.reserve(simulations);
    for (std::size_t i = 0; i < simulations; ++i) {
        Sampler sampler(rng);
        double value = model(sampler);
        ++result.simulations;
        if (!sampler.rejected())
            result.samples.push_back({value, sampler.logWeight()});
    }
    return result;
}

Uncertain<double>
queryAsUncertain(const Model& model, std::size_t posteriorSamples,
                 Rng& rng, std::size_t maxSimulations)
{
    QueryResult result =
        rejectionQuery(model, posteriorSamples, rng, maxSimulations);
    UNCERTAIN_REQUIRE(!result.samples.empty(),
                      "queryAsUncertain: no trace satisfied the "
                      "observations within the simulation budget");
    auto pool = std::make_shared<std::vector<double>>(
        std::move(result.samples));
    return Uncertain<double>::fromSampler(
        [pool](Rng& r) {
            return (*pool)[static_cast<std::size_t>(
                r.nextBelow(pool->size()))];
        },
        "rejection-posterior(" + std::to_string(pool->size())
            + " samples)");
}

double
alarmModel(Sampler& s)
{
    bool earthquake = s.flip(0.0001);
    bool burglary = s.flip(0.001);
    bool alarm = earthquake || burglary;
    bool phoneWorking = earthquake ? s.flip(0.7) : s.flip(0.99);
    s.observe(alarm);
    return phoneWorking ? 1.0 : 0.0;
}

double
alarmModelFixedStructure(Sampler& s)
{
    bool earthquake = s.flip(0.0001);
    bool burglary = s.flip(0.001);
    bool alarm = earthquake || burglary;
    bool phoneIfQuake = s.flip(0.7);
    bool phoneIfCalm = s.flip(0.99);
    bool phoneWorking = earthquake ? phoneIfQuake : phoneIfCalm;
    s.observe(alarm);
    return phoneWorking ? 1.0 : 0.0;
}

} // namespace prob
} // namespace uncertain
