#include "prob/mcmc.hpp"

#include <cmath>
#include <cstddef>
#include <limits>

#include "support/error.hpp"

namespace uncertain {
namespace prob {

namespace {

/** Kinds of primitive random choices a trace can hold. */
enum class SiteKind
{
    Flip,
    Uniform,
    Gaussian,
};

/** One recorded primitive choice. */
struct TraceSite
{
    SiteKind kind;
    double paramA; //!< p / lo / mu
    double paramB; //!< unused / hi / sigma
    double value;
};

/**
 * Sampler that replays a previous trace, resampling exactly one site
 * from its prior, and records the resulting trace.
 */
class TraceSampler final : public Sampler
{
  public:
    /**
     * @param previous      trace to replay, or nullptr to run fresh
     * @param resampleSite  index redrawn from its prior (ignored
     *                      when previous is null)
     */
    TraceSampler(Rng& generator, const std::vector<TraceSite>* previous,
                 std::size_t resampleSite)
        : Sampler(generator), previous_(previous),
          resampleSite_(resampleSite)
    {}

    bool
    flip(double p) override
    {
        double value = nextValue(SiteKind::Flip, p, 0.0, [&] {
            return Sampler::flip(p) ? 1.0 : 0.0;
        });
        return value != 0.0;
    }

    double
    uniform(double lo, double hi) override
    {
        return nextValue(SiteKind::Uniform, lo, hi,
                         [&] { return Sampler::uniform(lo, hi); });
    }

    double
    gaussian(double mu, double sigma) override
    {
        return nextValue(SiteKind::Gaussian, mu, sigma, [&] {
            return Sampler::gaussian(mu, sigma);
        });
    }

    const std::vector<TraceSite>& trace() const { return trace_; }

  private:
    template <typename Fresh>
    double
    nextValue(SiteKind kind, double a, double b, Fresh&& fresh)
    {
        std::size_t index = trace_.size();
        double value;
        bool replay = previous_ != nullptr
                      && index != resampleSite_
                      && index < previous_->size();
        if (replay) {
            const TraceSite& site = (*previous_)[index];
            UNCERTAIN_REQUIRE(
                site.kind == kind && site.paramA == a
                    && site.paramB == b,
                "mcmcQuery requires models with a fixed choice "
                "structure (a site's kind/parameters changed "
                "between executions)");
            value = site.value;
        } else {
            value = fresh();
        }
        trace_.push_back({kind, a, b, value});
        return value;
    }

    const std::vector<TraceSite>* previous_;
    std::size_t resampleSite_;
    std::vector<TraceSite> trace_;
};

/** One executed trace with its score and query value. */
struct Execution
{
    std::vector<TraceSite> trace;
    double logWeight;
    double value;
};

Execution
execute(const Model& model, Rng& rng,
        const std::vector<TraceSite>* previous,
        std::size_t resampleSite)
{
    TraceSampler sampler(rng, previous, resampleSite);
    double value = model(sampler);
    return {sampler.trace(), sampler.logWeight(), value};
}

} // namespace

McmcResult
mcmcQuery(const Model& model, const McmcOptions& options, Rng& rng)
{
    UNCERTAIN_REQUIRE(model != nullptr, "mcmcQuery requires a model");
    UNCERTAIN_REQUIRE(options.posteriorSamples >= 1,
                      "mcmcQuery requires >= 1 posterior sample");
    UNCERTAIN_REQUIRE(options.thinning >= 1,
                      "mcmcQuery thinning must be >= 1");

    McmcResult result;
    result.modelExecutions = 0;

    // Initialization: a trace consistent with the hard evidence.
    Execution current = execute(model, rng, nullptr, 0);
    ++result.modelExecutions;
    std::size_t attempts = 1;
    while (!std::isfinite(current.logWeight)
           && attempts < options.maxInitAttempts) {
        current = execute(model, rng, nullptr, 0);
        ++result.modelExecutions;
        ++attempts;
    }
    UNCERTAIN_REQUIRE(std::isfinite(current.logWeight),
                      "mcmcQuery: could not find an initial trace "
                      "satisfying the observations");
    UNCERTAIN_REQUIRE(!current.trace.empty(),
                      "mcmcQuery: the model makes no random choices");

    std::size_t accepted = 0;
    std::size_t proposals = 0;
    result.samples.reserve(options.posteriorSamples);

    std::size_t totalSteps =
        options.burnIn + options.thinning * options.posteriorSamples;
    for (std::size_t step = 0; step < totalSteps; ++step) {
        std::size_t site = static_cast<std::size_t>(
            rng.nextBelow(current.trace.size()));
        Execution proposal =
            execute(model, rng, &current.trace, site);
        ++result.modelExecutions;
        ++proposals;

        // Single-site prior proposal: the prior terms cancel, the
        // factor weights decide.
        double logAccept = proposal.logWeight - current.logWeight;
        if (std::isfinite(proposal.logWeight)
            && std::log(rng.nextDoubleOpen()) < logAccept) {
            current = std::move(proposal);
            ++accepted;
        }

        if (step >= options.burnIn
            && (step - options.burnIn + 1) % options.thinning == 0
            && result.samples.size() < options.posteriorSamples) {
            result.samples.push_back(current.value);
        }
    }

    result.acceptanceRate =
        proposals == 0 ? 0.0
                       : static_cast<double>(accepted)
                             / static_cast<double>(proposals);
    return result;
}

} // namespace prob
} // namespace uncertain
