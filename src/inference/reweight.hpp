/**
 * @file
 * Bayesian improvement of sampled distributions (paper section 3.5).
 *
 * Posterior = prior x likelihood, computed over sampling functions by
 * sampling-importance-resampling (SIR), the sampled-distribution
 * Bayes operator of Park et al. that the paper points to: draw a
 * proposal pool from one distribution, weight each draw by the other
 * distribution's density, and resample proportionally. The result is
 * a new Uncertain<double> whose sampling function draws from the
 * reweighted pool.
 *
 * Two directions are provided:
 *  - applyPrior(estimate, prior): samples come from the estimation
 *    process (e.g. the GPS speed distribution) and are weighted by a
 *    domain-knowledge prior (e.g. plausible walking speeds). This is
 *    the "road snapping" / walking-speed pattern of sections 3.5
 *    and 5.1.
 *  - posteriorFromPrior(prior, likelihood): samples come from the
 *    prior and are weighted by an evidence likelihood.
 */

#ifndef UNCERTAIN_INFERENCE_REWEIGHT_HPP
#define UNCERTAIN_INFERENCE_REWEIGHT_HPP

#include <functional>

#include "core/uncertain.hpp"
#include "inference/likelihood.hpp"
#include "random/distribution.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace inference {

/** Tuning for sampling-importance-resampling. */
struct ReweightOptions
{
    /** Proposal pool size drawn from the source distribution. */
    std::size_t proposalSamples = 4000;
    /** Size of the resampled pool backing the posterior. */
    std::size_t resampleSize = 2000;
};

/** A reweighted distribution plus diagnostics. */
struct ReweightResult
{
    /** Posterior as a new leaf (resampled-pool sampling function). */
    Uncertain<double> posterior;
    /**
     * Kish effective sample size of the importance weights; a small
     * value relative to proposalSamples means the prior and the
     * proposal barely overlap and the posterior is unreliable.
     */
    double effectiveSampleSize;
};

/**
 * Core SIR operation: resample draws of @p source in proportion to
 * exp(logWeight(x)). Throws uncertain::Error when every weight is
 * zero (no overlap).
 */
ReweightResult reweight(const Uncertain<double>& source,
                        const std::function<double(double)>& logWeight,
                        const ReweightOptions& options, Rng& rng);

/** reweight() with the thread's global generator. */
ReweightResult reweight(const Uncertain<double>& source,
                        const std::function<double(double)>& logWeight,
                        const ReweightOptions& options = {});

/**
 * Improve an estimate with domain knowledge: posterior proportional
 * to estimate-density x prior-density, sampled from the estimate and
 * weighted by the prior.
 */
Uncertain<double> applyPrior(const Uncertain<double>& estimate,
                             const random::Distribution& prior,
                             const ReweightOptions& options, Rng& rng);

/** applyPrior() with the thread's global generator. */
Uncertain<double> applyPrior(const Uncertain<double>& estimate,
                             const random::Distribution& prior,
                             const ReweightOptions& options = {});

/**
 * Classic Bayes update over sampling functions: draw hypotheses from
 * @p prior, weight by @p likelihood of the observed evidence.
 */
Uncertain<double> posteriorFromPrior(const random::Distribution& prior,
                                     const Likelihood& likelihood,
                                     const ReweightOptions& options,
                                     Rng& rng);

/** posteriorFromPrior() with the thread's global generator. */
Uncertain<double> posteriorFromPrior(const random::Distribution& prior,
                                     const Likelihood& likelihood,
                                     const ReweightOptions& options = {});

} // namespace inference
} // namespace uncertain

#endif // UNCERTAIN_INFERENCE_REWEIGHT_HPP
