/**
 * @file
 * Bayesian improvement of sampled distributions (paper section 3.5).
 *
 * Posterior = prior x likelihood, computed over sampling functions by
 * sampling-importance-resampling (SIR), the sampled-distribution
 * Bayes operator of Park et al. that the paper points to: draw a
 * proposal pool from one distribution, weight each draw by the other
 * distribution's density, and resample proportionally. The result is
 * a new Uncertain<double> whose sampling function draws from the
 * reweighted pool.
 *
 * Two directions are provided:
 *  - applyPrior(estimate, prior): samples come from the estimation
 *    process (e.g. the GPS speed distribution) and are weighted by a
 *    domain-knowledge prior (e.g. plausible walking speeds). This is
 *    the "road snapping" / walking-speed pattern of sections 3.5
 *    and 5.1.
 *  - posteriorFromPrior(prior, likelihood): samples come from the
 *    prior and are weighted by an evidence likelihood.
 */

#ifndef UNCERTAIN_INFERENCE_REWEIGHT_HPP
#define UNCERTAIN_INFERENCE_REWEIGHT_HPP

#include <cstdio>
#include <functional>

#include "core/uncertain.hpp"
#include "inference/likelihood.hpp"
#include "inference/resample.hpp"
#include "random/distribution.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace inference {

/** Tuning for sampling-importance-resampling. */
struct ReweightOptions
{
    /** Proposal pool size drawn from the source distribution. */
    std::size_t proposalSamples = 4000;
    /** Size of the resampled pool backing the posterior. */
    std::size_t resampleSize = 2000;
    /**
     * How the posterior pool is drawn from the weighted proposals.
     * Multinomial (the default) consumes the random stream exactly as
     * earlier releases did; Systematic produces lower-variance pools
     * (see inference/resample.hpp).
     */
    ResamplingScheme scheme = ResamplingScheme::Multinomial;
    /**
     * Borrowed columnar batch engine (core::BatchSampler). When
     * non-null, the proposal pool is drawn through the sampler's
     * compiled plans — bulk leaf fills and fused elementwise kernels
     * over column blocks — instead of the per-sample tree walk. Same
     * law either way (the engine-equivalence contract of
     * core/batch.hpp), but the streams differ, so the two engines
     * produce different (equally valid) proposal pools for the same
     * seed. nullptr keeps the tree walk. The sampler is not owned and
     * must outlive the call.
     */
    core::BatchSampler* sampler = nullptr;
    /**
     * Degenerate-overlap warning threshold, as a fraction of
     * proposalSamples. When positive and the effective sample size
     * falls below essWarnFraction * proposalSamples, the low-ESS
     * condition is surfaced: onLowEss is invoked when set, otherwise
     * a one-line warning goes to stderr, and the result's lowEss flag
     * is raised either way. Zero (the default) disables the check and
     * preserves the historical silent behavior.
     */
    double essWarnFraction = 0.0;
    /** Receives (ess, proposalSamples) when the threshold trips. */
    std::function<void(double, std::size_t)> onLowEss;
};

/** A reweighted distribution plus diagnostics. */
struct ReweightResult
{
    /** Posterior as a new leaf (resampled-pool sampling function). */
    Uncertain<double> posterior;
    /**
     * Kish effective sample size (sum w)^2 / (sum w^2) of the
     * importance weights, computed on the PRE-resampling proposal
     * weights — it measures how well the proposal pool covers the
     * posterior, and is independent of resampleSize. A small value
     * relative to proposalSamples means the prior and the proposal
     * barely overlap and the posterior is unreliable; see
     * ReweightOptions::essWarnFraction to be told instead of having
     * to check manually.
     */
    double effectiveSampleSize;
    /** True when the essWarnFraction threshold tripped. */
    bool lowEss = false;
};

namespace detail {

/** Shared low-ESS surfacing for reweight()/reweightSamples(). */
inline bool
warnLowEss(double ess, const ReweightOptions& options)
{
    if (options.essWarnFraction <= 0.0)
        return false;
    const double threshold = options.essWarnFraction
                             * static_cast<double>(
                                 options.proposalSamples);
    if (ess >= threshold)
        return false;
    if (options.onLowEss) {
        options.onLowEss(ess, options.proposalSamples);
    } else {
        std::fprintf(stderr,
                     "uncertain: reweight effective sample size %.1f "
                     "of %zu proposals is below the warning "
                     "threshold %.1f; prior and estimate barely "
                     "overlap, posterior may be unreliable\n",
                     ess, options.proposalSamples, threshold);
    }
    return true;
}

} // namespace detail

/**
 * Core SIR operation: resample draws of @p source in proportion to
 * exp(logWeight(x)). Throws uncertain::Error when every weight is
 * zero (no overlap).
 */
ReweightResult reweight(const Uncertain<double>& source,
                        const std::function<double(double)>& logWeight,
                        const ReweightOptions& options, Rng& rng);

/** reweight() with the thread's global generator. */
ReweightResult reweight(const Uncertain<double>& source,
                        const std::function<double(double)>& logWeight,
                        const ReweightOptions& options = {});

/**
 * Vectorized log-weight evaluator: fill logWeights[0..n) for the
 * contiguous proposal column values[0..n). Lets weight models hoist
 * per-call constants out of the loop (see
 * Likelihood::logLikelihoodMany).
 */
using BulkLogWeight =
    std::function<void(const double* values, double* logWeights,
                       std::size_t n)>;

/**
 * reweight() with a vectorized log-weight: the proposal column is
 * weighted in one pass instead of one std::function call per sample.
 * Semantics are otherwise identical to the scalar overload.
 */
ReweightResult reweightBulk(const Uncertain<double>& source,
                            const BulkLogWeight& logWeightMany,
                            const ReweightOptions& options, Rng& rng);

/**
 * Improve an estimate with domain knowledge: posterior proportional
 * to estimate-density x prior-density, sampled from the estimate and
 * weighted by the prior.
 */
Uncertain<double> applyPrior(const Uncertain<double>& estimate,
                             const random::Distribution& prior,
                             const ReweightOptions& options, Rng& rng);

/** applyPrior() with the thread's global generator. */
Uncertain<double> applyPrior(const Uncertain<double>& estimate,
                             const random::Distribution& prior,
                             const ReweightOptions& options = {});

/**
 * Classic Bayes update over sampling functions: draw hypotheses from
 * @p prior, weight by @p likelihood of the observed evidence.
 */
Uncertain<double> posteriorFromPrior(const random::Distribution& prior,
                                     const Likelihood& likelihood,
                                     const ReweightOptions& options,
                                     Rng& rng);

/** posteriorFromPrior() with the thread's global generator. */
Uncertain<double> posteriorFromPrior(const random::Distribution& prior,
                                     const Likelihood& likelihood,
                                     const ReweightOptions& options = {});

} // namespace inference
} // namespace uncertain

#endif // UNCERTAIN_INFERENCE_REWEIGHT_HPP
