#include "inference/discrete_bayes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace uncertain {
namespace inference {

DiscretePosterior::DiscretePosterior(
    const std::vector<Hypothesis>& hypotheses,
    const Likelihood& likelihood)
{
    UNCERTAIN_REQUIRE(!hypotheses.empty(),
                      "DiscretePosterior requires >= 1 hypothesis");

    std::vector<double> logPosterior;
    logPosterior.reserve(hypotheses.size());
    double maxLog = -std::numeric_limits<double>::infinity();
    for (const Hypothesis& h : hypotheses) {
        UNCERTAIN_REQUIRE(h.prior >= 0.0,
                          "hypothesis priors must be >= 0");
        values_.push_back(h.value);
        double lp = h.prior > 0.0
                        ? std::log(h.prior)
                              + likelihood.logLikelihood(h.value)
                        : -std::numeric_limits<double>::infinity();
        logPosterior.push_back(lp);
        maxLog = std::max(maxLog, lp);
    }
    UNCERTAIN_REQUIRE(std::isfinite(maxLog),
                      "DiscretePosterior: zero posterior mass (check "
                      "priors and likelihood)");

    // The evidence Pr[v] is just the normalizer — the common
    // denominator the paper notes "we need not calculate" for MAP,
    // but we normalize anyway so probability() is meaningful.
    double total = 0.0;
    posterior_.reserve(logPosterior.size());
    for (double lp : logPosterior) {
        double p = std::exp(lp - maxLog);
        posterior_.push_back(p);
        total += p;
    }
    for (double& p : posterior_)
        p /= total;
}

double
DiscretePosterior::probability(std::size_t index) const
{
    UNCERTAIN_REQUIRE(index < posterior_.size(),
                      "hypothesis index out of range");
    return posterior_[index];
}

std::size_t
DiscretePosterior::mapIndex() const
{
    return static_cast<std::size_t>(
        std::max_element(posterior_.begin(), posterior_.end())
        - posterior_.begin());
}

double
DiscretePosterior::mapValue() const
{
    return values_[mapIndex()];
}

double
DiscretePosterior::mean() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i)
        total += values_[i] * posterior_[i];
    return total;
}

double
DiscretePosterior::valueAt(std::size_t index) const
{
    UNCERTAIN_REQUIRE(index < values_.size(),
                      "hypothesis index out of range");
    return values_[index];
}

} // namespace inference
} // namespace uncertain
