/**
 * @file
 * Exact Bayes' rule over a finite hypothesis set. This is the
 * machinery behind BayesLife (paper section 5.2): hypotheses
 * H0: s = 0 and H1: s = 1 with equal priors, Gaussian likelihood of
 * the raw sensor reading, pick the maximum-a-posteriori hypothesis.
 */

#ifndef UNCERTAIN_INFERENCE_DISCRETE_BAYES_HPP
#define UNCERTAIN_INFERENCE_DISCRETE_BAYES_HPP

#include <cstddef>
#include <vector>

#include "inference/likelihood.hpp"

namespace uncertain {
namespace inference {

/** One hypothesis: a candidate value and its prior probability. */
struct Hypothesis
{
    double value;
    double prior;
};

/** Posterior over a finite hypothesis set. */
class DiscretePosterior
{
  public:
    /**
     * Compute the posterior for @p hypotheses given @p likelihood.
     * Priors must be non-negative with positive total (normalized
     * internally); at least one hypothesis must have non-zero
     * posterior mass.
     */
    DiscretePosterior(const std::vector<Hypothesis>& hypotheses,
                      const Likelihood& likelihood);

    /** Posterior probability of hypothesis @p index. */
    double probability(std::size_t index) const;

    /** Index of the maximum-a-posteriori hypothesis. */
    std::size_t mapIndex() const;

    /** Value of the maximum-a-posteriori hypothesis. */
    double mapValue() const;

    /** Posterior mean over the hypothesis values. */
    double mean() const;

    std::size_t size() const { return values_.size(); }
    double valueAt(std::size_t index) const;

  private:
    std::vector<double> values_;
    std::vector<double> posterior_;
};

} // namespace inference
} // namespace uncertain

#endif // UNCERTAIN_INFERENCE_DISCRETE_BAYES_HPP
