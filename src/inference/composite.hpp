/**
 * @file
 * Compositional priors: the paper's anticipated future work ("the
 * application cannot easily mix and match priors from different
 * sources (e.g., maps, calendars, and physics)", section 3.5).
 *
 * A composite prior is the normalized product of several component
 * densities. Because the SIR reweighting of inference/reweight.hpp
 * only needs the weight up to a constant, the product works directly
 * in log space with no normalization step, making prior composition
 * a one-liner for applications.
 */

#ifndef UNCERTAIN_INFERENCE_COMPOSITE_HPP
#define UNCERTAIN_INFERENCE_COMPOSITE_HPP

#include <vector>

#include "core/uncertain.hpp"
#include "inference/reweight.hpp"
#include "random/distribution.hpp"

namespace uncertain {
namespace inference {

/**
 * The unnormalized product of several prior densities, usable as a
 * log-weight provider. Each component may carry an exponent
 * ("tempering") to strengthen or weaken its influence.
 */
class CompositePrior
{
  public:
    /** Component densities, all weighted with exponent 1. */
    explicit CompositePrior(
        std::vector<random::DistributionPtr> components);

    /** Add a component with an optional tempering exponent. */
    void add(random::DistributionPtr component, double exponent = 1.0);

    /** Sum of component log-densities at @p x (unnormalized). */
    double logDensity(double x) const;

    std::size_t size() const { return components_.size(); }

  private:
    std::vector<random::DistributionPtr> components_;
    std::vector<double> exponents_;
};

/**
 * Improve an estimate with several independent sources of domain
 * knowledge at once: posterior proportional to
 * estimate-density x prod_i prior_i-density. Delegates to reweight(),
 * so the full ReweightOptions surface — batch sampler, resampling
 * scheme, ESS warning threshold — applies here unchanged.
 */
Uncertain<double> applyPriors(const Uncertain<double>& estimate,
                              const CompositePrior& priors,
                              const ReweightOptions& options,
                              Rng& rng);

/** applyPriors() with the thread's global generator. */
Uncertain<double> applyPriors(const Uncertain<double>& estimate,
                              const CompositePrior& priors,
                              const ReweightOptions& options = {});

} // namespace inference
} // namespace uncertain

#endif // UNCERTAIN_INFERENCE_COMPOSITE_HPP
