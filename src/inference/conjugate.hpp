/**
 * @file
 * Closed-form conjugate Bayesian updates. Where a conjugate pair
 * applies, these give exact posteriors against which the sampled SIR
 * posteriors of inference/reweight.hpp can be validated (and they are
 * cheaper at runtime).
 */

#ifndef UNCERTAIN_INFERENCE_CONJUGATE_HPP
#define UNCERTAIN_INFERENCE_CONJUGATE_HPP

#include <cstddef>

#include "random/beta.hpp"
#include "random/gamma.hpp"
#include "random/gaussian.hpp"

namespace uncertain {
namespace inference {

/**
 * Gaussian-Gaussian update with known measurement noise: prior
 * N(mu0, sigma0^2), observation y = b + N(0, sigmaNoise^2). Returns
 * the exact posterior N(mu1, sigma1^2).
 */
random::Gaussian gaussianPosterior(const random::Gaussian& prior,
                                   double observation,
                                   double sigmaNoise);

/**
 * Gaussian-Gaussian update folding in @p n i.i.d. observations with
 * sample mean @p observationMean.
 */
random::Gaussian gaussianPosterior(const random::Gaussian& prior,
                                   double observationMean,
                                   double sigmaNoise, std::size_t n);

/**
 * Beta-Bernoulli update: prior Beta(a, b) on p, after observing
 * @p successes and @p failures. Returns Beta(a + s, b + f).
 */
random::Beta betaPosterior(const random::Beta& prior,
                           std::size_t successes, std::size_t failures);

/**
 * Normalized product of two beta densities: Beta(a0, b0) x
 * Beta(a1, b1) is proportional to Beta(a0 + a1 - 1, b0 + b1 - 1).
 * This is the exact posterior when one beta acts as the prior and
 * the other as a (beta-shaped) likelihood in applyPrior-style SIR —
 * the ground truth the sampled posterior is certified against.
 * Requires a0 + a1 > 1 and b0 + b1 > 1 for a proper posterior.
 */
random::Beta betaDensityProduct(const random::Beta& lhs,
                                const random::Beta& rhs);

/**
 * Normalized product of two gamma densities: Gamma(k0, r0) x
 * Gamma(k1, r1) is proportional to Gamma(k0 + k1 - 1, r0 + r1).
 * Requires k0 + k1 > 1.
 */
random::Gamma gammaDensityProduct(const random::Gamma& lhs,
                                  const random::Gamma& rhs);

/**
 * Gamma-Poisson update: prior Gamma(k, rate) on a Poisson mean,
 * after @p n i.i.d. counts summing to @p countTotal. Returns the
 * exact posterior Gamma(k + countTotal, rate + n).
 */
random::Gamma gammaPoissonPosterior(const random::Gamma& prior,
                                    std::size_t countTotal,
                                    std::size_t n);

} // namespace inference
} // namespace uncertain

#endif // UNCERTAIN_INFERENCE_CONJUGATE_HPP
