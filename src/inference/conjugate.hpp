/**
 * @file
 * Closed-form conjugate Bayesian updates. Where a conjugate pair
 * applies, these give exact posteriors against which the sampled SIR
 * posteriors of inference/reweight.hpp can be validated (and they are
 * cheaper at runtime).
 */

#ifndef UNCERTAIN_INFERENCE_CONJUGATE_HPP
#define UNCERTAIN_INFERENCE_CONJUGATE_HPP

#include <cstddef>

#include "random/beta.hpp"
#include "random/gaussian.hpp"

namespace uncertain {
namespace inference {

/**
 * Gaussian-Gaussian update with known measurement noise: prior
 * N(mu0, sigma0^2), observation y = b + N(0, sigmaNoise^2). Returns
 * the exact posterior N(mu1, sigma1^2).
 */
random::Gaussian gaussianPosterior(const random::Gaussian& prior,
                                   double observation,
                                   double sigmaNoise);

/**
 * Gaussian-Gaussian update folding in @p n i.i.d. observations with
 * sample mean @p observationMean.
 */
random::Gaussian gaussianPosterior(const random::Gaussian& prior,
                                   double observationMean,
                                   double sigmaNoise, std::size_t n);

/**
 * Beta-Bernoulli update: prior Beta(a, b) on p, after observing
 * @p successes and @p failures. Returns Beta(a + s, b + f).
 */
random::Beta betaPosterior(const random::Beta& prior,
                           std::size_t successes, std::size_t failures);

} // namespace inference
} // namespace uncertain

#endif // UNCERTAIN_INFERENCE_CONJUGATE_HPP
