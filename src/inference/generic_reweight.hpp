/**
 * @file
 * Sampling-importance-resampling over arbitrary base types.
 *
 * inference/reweight.hpp handles Uncertain<double>; this header
 * generalizes the same Bayes operator to any T (locations, vectors,
 * user types): draw a proposal pool from the source variable, weight
 * each draw with a caller-supplied log-weight, resample
 * proportionally, and return a new leaf over the resampled pool.
 * This is what location priors such as road snapping (paper
 * section 3.5, Figure 10) need, where the target variable is a
 * GeoCoordinate rather than a scalar.
 */

#ifndef UNCERTAIN_INFERENCE_GENERIC_REWEIGHT_HPP
#define UNCERTAIN_INFERENCE_GENERIC_REWEIGHT_HPP

#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "core/uncertain.hpp"
#include "inference/resample.hpp"
#include "inference/reweight.hpp" // ReweightOptions
#include "random/discrete.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace inference {

/** Typed analogue of ReweightResult. */
template <typename T>
struct GenericReweightResult
{
    Uncertain<T> posterior;
    /**
     * Kish effective sample size of the PRE-resampling importance
     * weights (see ReweightResult::effectiveSampleSize).
     */
    double effectiveSampleSize;
    /** True when ReweightOptions::essWarnFraction tripped. */
    bool lowEss = false;
};

/**
 * Resample draws of @p source in proportion to
 * exp(logWeight(value)). Throws when every weight is zero.
 */
template <typename T, typename LogWeight>
GenericReweightResult<T>
reweightSamples(const Uncertain<T>& source, LogWeight&& logWeight,
                const ReweightOptions& options, Rng& rng)
{
    UNCERTAIN_REQUIRE(options.proposalSamples >= 2,
                      "reweightSamples requires >= 2 proposals");
    UNCERTAIN_REQUIRE(options.resampleSize >= 1,
                      "reweightSamples requires >= 1 resample");

    // Columnar proposal pool when a batch sampler is plumbed through
    // the options; per-sample tree walk otherwise (same law, see
    // ReweightOptions::sampler).
    std::vector<T> proposals =
        options.sampler != nullptr
            ? source.takeSamples(options.proposalSamples, rng,
                                 *options.sampler)
            : source.takeSamples(options.proposalSamples, rng);

    std::vector<double> logWeights(proposals.size());
    for (std::size_t i = 0; i < proposals.size(); ++i)
        logWeights[i] = logWeight(proposals[i]);

    std::vector<double> weights;
    detail::WeightSummary summary = detail::normalizeLogWeights(
        logWeights, weights,
        "reweightSamples: all importance weights are "
        "zero; prior and estimate do not overlap");
    const bool lowEss = detail::warnLowEss(summary.ess, options);

    auto pool = std::make_shared<std::vector<T>>();
    pool->reserve(options.resampleSize);
    if (options.scheme == ResamplingScheme::Systematic) {
        for (std::size_t index : detail::systematicIndices(
                 weights, summary.total, options.resampleSize, rng))
            pool->push_back(proposals[index]);
    } else {
        std::vector<double> indices(proposals.size());
        for (std::size_t i = 0; i < proposals.size(); ++i)
            indices[i] = static_cast<double>(i);
        random::Discrete table(std::move(indices), weights);
        for (std::size_t i = 0; i < options.resampleSize; ++i) {
            pool->push_back(
                proposals[static_cast<std::size_t>(
                    table.sample(rng))]);
        }
    }

    auto posterior = core::fromPool<T>(
        std::move(pool), "posterior("
                             + std::to_string(options.resampleSize)
                             + " resamples)");
    return {std::move(posterior), summary.ess, lowEss};
}

/** reweightSamples() with the thread's global generator. */
template <typename T, typename LogWeight>
GenericReweightResult<T>
reweightSamples(const Uncertain<T>& source, LogWeight&& logWeight,
                const ReweightOptions& options = {})
{
    return reweightSamples(source,
                           std::forward<LogWeight>(logWeight),
                           options, globalRng());
}

} // namespace inference
} // namespace uncertain

#endif // UNCERTAIN_INFERENCE_GENERIC_REWEIGHT_HPP
