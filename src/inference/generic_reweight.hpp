/**
 * @file
 * Sampling-importance-resampling over arbitrary base types.
 *
 * inference/reweight.hpp handles Uncertain<double>; this header
 * generalizes the same Bayes operator to any T (locations, vectors,
 * user types): draw a proposal pool from the source variable, weight
 * each draw with a caller-supplied log-weight, resample
 * proportionally, and return a new leaf over the resampled pool.
 * This is what location priors such as road snapping (paper
 * section 3.5, Figure 10) need, where the target variable is a
 * GeoCoordinate rather than a scalar.
 */

#ifndef UNCERTAIN_INFERENCE_GENERIC_REWEIGHT_HPP
#define UNCERTAIN_INFERENCE_GENERIC_REWEIGHT_HPP

#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "core/uncertain.hpp"
#include "inference/reweight.hpp" // ReweightOptions
#include "random/discrete.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace inference {

/** Typed analogue of ReweightResult. */
template <typename T>
struct GenericReweightResult
{
    Uncertain<T> posterior;
    double effectiveSampleSize;
};

/**
 * Resample draws of @p source in proportion to
 * exp(logWeight(value)). Throws when every weight is zero.
 */
template <typename T, typename LogWeight>
GenericReweightResult<T>
reweightSamples(const Uncertain<T>& source, LogWeight&& logWeight,
                const ReweightOptions& options, Rng& rng)
{
    UNCERTAIN_REQUIRE(options.proposalSamples >= 2,
                      "reweightSamples requires >= 2 proposals");
    UNCERTAIN_REQUIRE(options.resampleSize >= 1,
                      "reweightSamples requires >= 1 resample");

    std::vector<T> proposals =
        source.takeSamples(options.proposalSamples, rng);

    std::vector<double> logWeights(proposals.size());
    double maxLog = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        logWeights[i] = logWeight(proposals[i]);
        maxLog = std::max(maxLog, logWeights[i]);
    }
    UNCERTAIN_REQUIRE(std::isfinite(maxLog),
                      "reweightSamples: all importance weights are "
                      "zero; prior and estimate do not overlap");

    std::vector<double> weights(proposals.size());
    std::vector<double> indices(proposals.size());
    double total = 0.0;
    double totalSq = 0.0;
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        weights[i] = std::exp(logWeights[i] - maxLog);
        indices[i] = static_cast<double>(i);
        total += weights[i];
        totalSq += weights[i] * weights[i];
    }
    double ess = total * total / totalSq;

    random::Discrete table(indices, weights);
    auto pool = std::make_shared<std::vector<T>>();
    pool->reserve(options.resampleSize);
    for (std::size_t i = 0; i < options.resampleSize; ++i) {
        pool->push_back(
            proposals[static_cast<std::size_t>(table.sample(rng))]);
    }

    auto posterior = Uncertain<T>::fromSampler(
        [pool](Rng& r) {
            return (*pool)[static_cast<std::size_t>(
                r.nextBelow(pool->size()))];
        },
        "posterior(" + std::to_string(options.resampleSize)
            + " resamples)");
    return {std::move(posterior), ess};
}

/** reweightSamples() with the thread's global generator. */
template <typename T, typename LogWeight>
GenericReweightResult<T>
reweightSamples(const Uncertain<T>& source, LogWeight&& logWeight,
                const ReweightOptions& options = {})
{
    return reweightSamples(source,
                           std::forward<LogWeight>(logWeight),
                           options, globalRng());
}

} // namespace inference
} // namespace uncertain

#endif // UNCERTAIN_INFERENCE_GENERIC_REWEIGHT_HPP
