/**
 * @file
 * Likelihood models for Bayesian updates (paper section 3.5 and the
 * BayesLife derivation in section 5.2).
 */

#ifndef UNCERTAIN_INFERENCE_LIKELIHOOD_HPP
#define UNCERTAIN_INFERENCE_LIKELIHOOD_HPP

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace uncertain {
namespace inference {

/**
 * A likelihood: the probability (density) of the observed evidence
 * given a hypothesized value of the target variable,
 * Pr[E = e | B = b] as a function of b.
 */
class Likelihood
{
  public:
    virtual ~Likelihood() = default;

    /** Log of Pr[evidence | value = b]. */
    virtual double logLikelihood(double b) const = 0;

    /**
     * Vectorized evaluation over a contiguous proposal column:
     * fill out[0..n) with logLikelihood(values[i]). The batched SIR
     * path (inference/reweight.hpp) weights its whole proposal pool
     * through this; override it when per-call constants can be
     * hoisted out of the loop. The default delegates element-wise.
     */
    virtual void
    logLikelihoodMany(const double* values, double* out,
                      std::size_t n) const
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = logLikelihood(values[i]);
    }

    virtual std::string name() const = 0;
};

using LikelihoodPtr = std::shared_ptr<const Likelihood>;

/**
 * Gaussian measurement model: evidence = value + N(0, sigma), i.e.
 * Pr[e | b] = N(e; b, sigma). This is exactly the sensor model of
 * SensorLife/BayesLife.
 */
class GaussianLikelihood : public Likelihood
{
  public:
    /** Requires sigma > 0. */
    GaussianLikelihood(double observed, double sigma);

    double logLikelihood(double b) const override;
    void logLikelihoodMany(const double* values, double* out,
                           std::size_t n) const override;
    std::string name() const override;

    double observed() const { return observed_; }
    double sigma() const { return sigma_; }

  private:
    double observed_;
    double sigma_;
};

/** Wrap an arbitrary callable as a likelihood. */
class FunctionLikelihood : public Likelihood
{
  public:
    FunctionLikelihood(std::function<double(double)> logLik,
                       std::string label = "custom");

    double logLikelihood(double b) const override;
    std::string name() const override { return label_; }

  private:
    std::function<double(double)> logLik_;
    std::string label_;
};

} // namespace inference
} // namespace uncertain

#endif // UNCERTAIN_INFERENCE_LIKELIHOOD_HPP
