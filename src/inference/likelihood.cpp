#include "inference/likelihood.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace inference {

GaussianLikelihood::GaussianLikelihood(double observed, double sigma)
    : observed_(observed), sigma_(sigma)
{
    UNCERTAIN_REQUIRE(sigma > 0.0,
                      "GaussianLikelihood requires sigma > 0");
}

double
GaussianLikelihood::logLikelihood(double b) const
{
    double z = (observed_ - b) / sigma_;
    return -0.5 * z * z - std::log(sigma_)
           - 0.91893853320467274178; // log(sqrt(2*pi))
}

std::string
GaussianLikelihood::name() const
{
    std::ostringstream out;
    out << "GaussianLikelihood(obs=" << observed_ << ", sigma=" << sigma_
        << ")";
    return out.str();
}

FunctionLikelihood::FunctionLikelihood(
    std::function<double(double)> logLik, std::string label)
    : logLik_(std::move(logLik)), label_(std::move(label))
{
    UNCERTAIN_REQUIRE(logLik_ != nullptr,
                      "FunctionLikelihood requires a callable");
}

double
FunctionLikelihood::logLikelihood(double b) const
{
    return logLik_(b);
}

} // namespace inference
} // namespace uncertain
