#include "inference/likelihood.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace inference {

GaussianLikelihood::GaussianLikelihood(double observed, double sigma)
    : observed_(observed), sigma_(sigma)
{
    UNCERTAIN_REQUIRE(sigma > 0.0,
                      "GaussianLikelihood requires sigma > 0");
}

double
GaussianLikelihood::logLikelihood(double b) const
{
    double z = (observed_ - b) / sigma_;
    return -0.5 * z * z - std::log(sigma_)
           - 0.91893853320467274178; // log(sqrt(2*pi))
}

void
GaussianLikelihood::logLikelihoodMany(const double* values,
                                      double* out,
                                      std::size_t n) const
{
    // Hoisted form of logLikelihood: the normalization constant and
    // 1/sigma are loop-invariant over a proposal column.
    const double invSigma = 1.0 / sigma_;
    const double constant =
        -std::log(sigma_) - 0.91893853320467274178; // log(sqrt(2*pi))
    for (std::size_t i = 0; i < n; ++i) {
        const double z = (observed_ - values[i]) * invSigma;
        out[i] = -0.5 * z * z + constant;
    }
}

std::string
GaussianLikelihood::name() const
{
    std::ostringstream out;
    out << "GaussianLikelihood(obs=" << observed_ << ", sigma=" << sigma_
        << ")";
    return out.str();
}

FunctionLikelihood::FunctionLikelihood(
    std::function<double(double)> logLik, std::string label)
    : logLik_(std::move(logLik)), label_(std::move(label))
{
    UNCERTAIN_REQUIRE(logLik_ != nullptr,
                      "FunctionLikelihood requires a callable");
}

double
FunctionLikelihood::logLikelihood(double b) const
{
    return logLik_(b);
}

} // namespace inference
} // namespace uncertain
