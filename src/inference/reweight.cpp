#include "inference/reweight.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "random/discrete.hpp"
#include "random/empirical.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace inference {

ReweightResult
reweight(const Uncertain<double>& source,
         const std::function<double(double)>& logWeight,
         const ReweightOptions& options, Rng& rng)
{
    UNCERTAIN_REQUIRE(options.proposalSamples >= 2,
                      "reweight requires >= 2 proposal samples");
    UNCERTAIN_REQUIRE(options.resampleSize >= 1,
                      "reweight requires >= 1 resample");

    std::vector<double> proposals =
        source.takeSamples(options.proposalSamples, rng);

    std::vector<double> logWeights(proposals.size());
    double maxLog = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        logWeights[i] = logWeight(proposals[i]);
        maxLog = std::max(maxLog, logWeights[i]);
    }
    UNCERTAIN_REQUIRE(std::isfinite(maxLog),
                      "reweight: all importance weights are zero; the "
                      "prior and the estimate do not overlap");

    // Normalize in log space for stability.
    std::vector<double> weights(proposals.size());
    double total = 0.0;
    double totalSq = 0.0;
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        weights[i] = std::exp(logWeights[i] - maxLog);
        total += weights[i];
        totalSq += weights[i] * weights[i];
    }
    double ess = total * total / totalSq;

    // Multinomial resampling via the alias table.
    random::Discrete table(proposals, weights);
    std::vector<double> pool;
    pool.reserve(options.resampleSize);
    for (std::size_t i = 0; i < options.resampleSize; ++i)
        pool.push_back(table.sample(rng));

    auto empirical =
        std::make_shared<random::Empirical>(std::move(pool));
    auto posterior = Uncertain<double>::fromSampler(
        [empirical](Rng& r) { return empirical->sample(r); },
        "posterior(" + std::to_string(options.resampleSize)
            + " resamples)");
    return {std::move(posterior), ess};
}

ReweightResult
reweight(const Uncertain<double>& source,
         const std::function<double(double)>& logWeight,
         const ReweightOptions& options)
{
    return reweight(source, logWeight, options, globalRng());
}

Uncertain<double>
applyPrior(const Uncertain<double>& estimate,
           const random::Distribution& prior,
           const ReweightOptions& options, Rng& rng)
{
    return reweight(
               estimate,
               [&prior](double x) { return prior.logPdf(x); }, options,
               rng)
        .posterior;
}

Uncertain<double>
applyPrior(const Uncertain<double>& estimate,
           const random::Distribution& prior,
           const ReweightOptions& options)
{
    return applyPrior(estimate, prior, options, globalRng());
}

Uncertain<double>
posteriorFromPrior(const random::Distribution& prior,
                   const Likelihood& likelihood,
                   const ReweightOptions& options, Rng& rng)
{
    // Draw hypotheses from the prior...
    auto priorSampler = Uncertain<double>::fromSampler(
        [&prior](Rng& r) { return prior.sample(r); }, prior.name());
    // ...and weight them by the evidence.
    return reweight(
               priorSampler,
               [&likelihood](double b) {
                   return likelihood.logLikelihood(b);
               },
               options, rng)
        .posterior;
}

Uncertain<double>
posteriorFromPrior(const random::Distribution& prior,
                   const Likelihood& likelihood,
                   const ReweightOptions& options)
{
    return posteriorFromPrior(prior, likelihood, options, globalRng());
}

} // namespace inference
} // namespace uncertain
