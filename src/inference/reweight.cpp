#include "inference/reweight.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "inference/resample.hpp"
#include "random/discrete.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace inference {

namespace {

/**
 * The SIR pipeline shared by the scalar and vectorized entry points:
 * proposal pool (tree walk or columnar batch plan, per
 * options.sampler), one contiguous log-weight pass, one
 * normalization/ESS pass, resampling per options.scheme, and a
 * pool-backed posterior leaf that carries a bulk sampler so
 * downstream graphs stay columnar.
 */
ReweightResult
reweightImpl(const Uncertain<double>& source,
             const BulkLogWeight& logWeightMany,
             const ReweightOptions& options, Rng& rng)
{
    UNCERTAIN_REQUIRE(options.proposalSamples >= 2,
                      "reweight requires >= 2 proposal samples");
    UNCERTAIN_REQUIRE(options.resampleSize >= 1,
                      "reweight requires >= 1 resample");

    std::vector<double> proposals =
        options.sampler != nullptr
            ? source.takeSamples(options.proposalSamples, rng,
                                 *options.sampler)
            : source.takeSamples(options.proposalSamples, rng);

    std::vector<double> logWeights(proposals.size());
    logWeightMany(proposals.data(), logWeights.data(),
                  proposals.size());

    // Normalize in log space for stability.
    std::vector<double> weights;
    detail::WeightSummary summary = detail::normalizeLogWeights(
        logWeights, weights,
        "reweight: all importance weights are zero; the "
        "prior and the estimate do not overlap");
    const bool lowEss = detail::warnLowEss(summary.ess, options);

    auto pool = std::make_shared<std::vector<double>>();
    pool->reserve(options.resampleSize);
    if (options.scheme == ResamplingScheme::Systematic) {
        for (std::size_t index : detail::systematicIndices(
                 weights, summary.total, options.resampleSize, rng))
            pool->push_back(proposals[index]);
    } else {
        // Multinomial resampling via the alias table.
        random::Discrete table(proposals, weights);
        for (std::size_t i = 0; i < options.resampleSize; ++i)
            pool->push_back(table.sample(rng));
    }

    auto posterior = core::fromPool<double>(
        std::move(pool), "posterior("
                             + std::to_string(options.resampleSize)
                             + " resamples)");
    return {std::move(posterior), summary.ess, lowEss};
}

} // namespace

ReweightResult
reweight(const Uncertain<double>& source,
         const std::function<double(double)>& logWeight,
         const ReweightOptions& options, Rng& rng)
{
    return reweightImpl(
        source,
        [&logWeight](const double* values, double* logWeights,
                     std::size_t n) {
            for (std::size_t i = 0; i < n; ++i)
                logWeights[i] = logWeight(values[i]);
        },
        options, rng);
}

ReweightResult
reweight(const Uncertain<double>& source,
         const std::function<double(double)>& logWeight,
         const ReweightOptions& options)
{
    return reweight(source, logWeight, options, globalRng());
}

ReweightResult
reweightBulk(const Uncertain<double>& source,
             const BulkLogWeight& logWeightMany,
             const ReweightOptions& options, Rng& rng)
{
    return reweightImpl(source, logWeightMany, options, rng);
}

Uncertain<double>
applyPrior(const Uncertain<double>& estimate,
           const random::Distribution& prior,
           const ReweightOptions& options, Rng& rng)
{
    // One vectorized logPdfMany pass over the proposal column; the
    // values match the scalar logPdf bit-for-bit.
    return reweightBulk(
               estimate,
               [&prior](const double* values, double* logWeights,
                        std::size_t n) {
                   prior.logPdfMany(values, logWeights, n);
               },
               options, rng)
        .posterior;
}

Uncertain<double>
applyPrior(const Uncertain<double>& estimate,
           const random::Distribution& prior,
           const ReweightOptions& options)
{
    return applyPrior(estimate, prior, options, globalRng());
}

Uncertain<double>
posteriorFromPrior(const random::Distribution& prior,
                   const Likelihood& likelihood,
                   const ReweightOptions& options, Rng& rng)
{
    // Draw hypotheses from the prior (bulk sampleMany keeps the
    // proposal column columnar under a batch sampler)...
    auto priorSampler = Uncertain<double>::fromSampler(
        [&prior](Rng& r) { return prior.sample(r); },
        [&prior](Rng& r, double* out, std::size_t n) {
            prior.sampleMany(r, out, n);
        },
        prior.name());
    // ...and weight them by the evidence, one vectorized pass.
    return reweightBulk(
               priorSampler,
               [&likelihood](const double* values, double* logWeights,
                             std::size_t n) {
                   likelihood.logLikelihoodMany(values, logWeights,
                                                n);
               },
               options, rng)
        .posterior;
}

Uncertain<double>
posteriorFromPrior(const random::Distribution& prior,
                   const Likelihood& likelihood,
                   const ReweightOptions& options)
{
    return posteriorFromPrior(prior, likelihood, options, globalRng());
}

} // namespace inference
} // namespace uncertain
