/**
 * @file
 * Shared resampling kernel for sampling-importance-resampling
 * (inference/reweight.hpp and inference/generic_reweight.hpp): weight
 * normalization with the Kish effective-sample-size diagnostic, and
 * the low-variance systematic resampler offered alongside the classic
 * multinomial scheme.
 *
 * Multinomial resampling draws each posterior pool entry
 * independently from the alias table, so the number of copies of
 * proposal i is Binomial(n, w_i) — correct but noisy. Systematic
 * resampling draws ONE uniform offset and then walks n evenly spaced
 * positions through the cumulative weights, so the copy count of each
 * proposal deviates from n*w_i by strictly less than one. Both target
 * the same posterior; the systematic pool just carries less
 * resampling noise for the same pool size.
 */

#ifndef UNCERTAIN_INFERENCE_RESAMPLE_HPP
#define UNCERTAIN_INFERENCE_RESAMPLE_HPP

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace inference {

/** How the posterior pool is drawn from the weighted proposals. */
enum class ResamplingScheme
{
    /**
     * Independent draws from the alias table (the historical scheme
     * and the default: its consumption of the random stream is
     * bit-compatible with earlier releases).
     */
    Multinomial,
    /**
     * One uniform offset, evenly spaced positions over the cumulative
     * weights: lower-variance pools at the same cost, at the price of
     * a different (still single-pass) stream consumption.
     */
    Systematic,
};

namespace detail {

/** Diagnostics of one weight-normalization pass. */
struct WeightSummary
{
    double total; //!< sum of the shifted weights exp(logW - maxLogW)
    double ess;   //!< Kish effective sample size of those weights
};

/**
 * Exponentiate @p logWeights shifted by their maximum (log-space
 * normalization for stability) into @p weights, and compute the Kish
 * effective sample size (sum w)^2 / sum w^2 in the same pass. Throws
 * uncertain::Error with @p noOverlapMessage when every weight is zero
 * (no finite log-weight).
 */
inline WeightSummary
normalizeLogWeights(const std::vector<double>& logWeights,
                    std::vector<double>& weights,
                    const char* noOverlapMessage)
{
    double maxLog = -std::numeric_limits<double>::infinity();
    for (double logW : logWeights)
        maxLog = std::max(maxLog, logW);
    UNCERTAIN_REQUIRE(std::isfinite(maxLog), noOverlapMessage);

    weights.resize(logWeights.size());
    double total = 0.0;
    double totalSq = 0.0;
    for (std::size_t i = 0; i < logWeights.size(); ++i) {
        weights[i] = std::exp(logWeights[i] - maxLog);
        total += weights[i];
        totalSq += weights[i] * weights[i];
    }
    return {total, total * total / totalSq};
}

/**
 * Systematic (low-variance) resampling: proposal indices for a pool
 * of @p resampleSize entries, drawn with a single uniform offset in
 * [0, total/resampleSize) and evenly spaced positions through the
 * cumulative @p weights. Consumes exactly one draw from @p rng.
 * Returned indices are non-decreasing; with equal weights and
 * resampleSize == weights.size() every proposal appears exactly once.
 */
inline std::vector<std::size_t>
systematicIndices(const std::vector<double>& weights, double total,
                  std::size_t resampleSize, Rng& rng)
{
    const double step = total / static_cast<double>(resampleSize);
    const double offset = rng.nextRange(0.0, step);

    std::vector<std::size_t> indices;
    indices.reserve(resampleSize);
    std::size_t i = 0;
    double cumulative = weights.empty() ? 0.0 : weights[0];
    for (std::size_t k = 0; k < resampleSize; ++k) {
        const double position =
            offset + static_cast<double>(k) * step;
        while (cumulative < position && i + 1 < weights.size()) {
            ++i;
            cumulative += weights[i];
        }
        indices.push_back(i);
    }
    return indices;
}

} // namespace detail
} // namespace inference
} // namespace uncertain

#endif // UNCERTAIN_INFERENCE_RESAMPLE_HPP
