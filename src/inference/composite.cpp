#include "inference/composite.hpp"

#include "support/error.hpp"

namespace uncertain {
namespace inference {

CompositePrior::CompositePrior(
    std::vector<random::DistributionPtr> components)
{
    for (auto& component : components)
        add(std::move(component));
}

void
CompositePrior::add(random::DistributionPtr component, double exponent)
{
    UNCERTAIN_REQUIRE(component != nullptr,
                      "CompositePrior components must be non-null");
    UNCERTAIN_REQUIRE(exponent > 0.0,
                      "CompositePrior exponents must be positive");
    components_.push_back(std::move(component));
    exponents_.push_back(exponent);
}

double
CompositePrior::logDensity(double x) const
{
    double total = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i)
        total += exponents_[i] * components_[i]->logPdf(x);
    return total;
}

Uncertain<double>
applyPriors(const Uncertain<double>& estimate,
            const CompositePrior& priors,
            const ReweightOptions& options, Rng& rng)
{
    UNCERTAIN_REQUIRE(priors.size() >= 1,
                      "applyPriors requires >= 1 component");
    return reweight(
               estimate,
               [&priors](double x) { return priors.logDensity(x); },
               options, rng)
        .posterior;
}

Uncertain<double>
applyPriors(const Uncertain<double>& estimate,
            const CompositePrior& priors,
            const ReweightOptions& options)
{
    return applyPriors(estimate, priors, options, globalRng());
}

} // namespace inference
} // namespace uncertain
