#include "inference/conjugate.hpp"

#include <cmath>

#include "support/error.hpp"

namespace uncertain {
namespace inference {

random::Gaussian
gaussianPosterior(const random::Gaussian& prior, double observation,
                  double sigmaNoise)
{
    return gaussianPosterior(prior, observation, sigmaNoise, 1);
}

random::Gaussian
gaussianPosterior(const random::Gaussian& prior, double observationMean,
                  double sigmaNoise, std::size_t n)
{
    UNCERTAIN_REQUIRE(sigmaNoise > 0.0,
                      "gaussianPosterior requires sigmaNoise > 0");
    UNCERTAIN_REQUIRE(n >= 1, "gaussianPosterior requires n >= 1");

    double precisionPrior = 1.0 / (prior.sigma() * prior.sigma());
    double precisionData =
        static_cast<double>(n) / (sigmaNoise * sigmaNoise);
    double precisionPost = precisionPrior + precisionData;
    double muPost = (precisionPrior * prior.mu()
                     + precisionData * observationMean)
                    / precisionPost;
    return {muPost, std::sqrt(1.0 / precisionPost)};
}

random::Beta
betaPosterior(const random::Beta& prior, std::size_t successes,
              std::size_t failures)
{
    return {prior.a() + static_cast<double>(successes),
            prior.b() + static_cast<double>(failures)};
}

random::Beta
betaDensityProduct(const random::Beta& lhs, const random::Beta& rhs)
{
    const double a = lhs.a() + rhs.a() - 1.0;
    const double b = lhs.b() + rhs.b() - 1.0;
    UNCERTAIN_REQUIRE(a > 0.0 && b > 0.0,
                      "betaDensityProduct: the density product is "
                      "not normalizable (needs a0 + a1 > 1 and "
                      "b0 + b1 > 1)");
    return {a, b};
}

random::Gamma
gammaDensityProduct(const random::Gamma& lhs, const random::Gamma& rhs)
{
    const double shape = lhs.shape() + rhs.shape() - 1.0;
    UNCERTAIN_REQUIRE(shape > 0.0,
                      "gammaDensityProduct: the density product is "
                      "not normalizable (needs k0 + k1 > 1)");
    return {shape, lhs.rate() + rhs.rate()};
}

random::Gamma
gammaPoissonPosterior(const random::Gamma& prior,
                      std::size_t countTotal, std::size_t n)
{
    UNCERTAIN_REQUIRE(n >= 1, "gammaPoissonPosterior requires n >= 1");
    return {prior.shape() + static_cast<double>(countTotal),
            prior.rate() + static_cast<double>(n)};
}

} // namespace inference
} // namespace uncertain
