#include "inference/conjugate.hpp"

#include <cmath>

#include "support/error.hpp"

namespace uncertain {
namespace inference {

random::Gaussian
gaussianPosterior(const random::Gaussian& prior, double observation,
                  double sigmaNoise)
{
    return gaussianPosterior(prior, observation, sigmaNoise, 1);
}

random::Gaussian
gaussianPosterior(const random::Gaussian& prior, double observationMean,
                  double sigmaNoise, std::size_t n)
{
    UNCERTAIN_REQUIRE(sigmaNoise > 0.0,
                      "gaussianPosterior requires sigmaNoise > 0");
    UNCERTAIN_REQUIRE(n >= 1, "gaussianPosterior requires n >= 1");

    double precisionPrior = 1.0 / (prior.sigma() * prior.sigma());
    double precisionData =
        static_cast<double>(n) / (sigmaNoise * sigmaNoise);
    double precisionPost = precisionPrior + precisionData;
    double muPost = (precisionPrior * prior.mu()
                     + precisionData * observationMean)
                    / precisionPost;
    return {muPost, std::sqrt(1.0 / precisionPost)};
}

random::Beta
betaPosterior(const random::Beta& prior, std::size_t successes,
              std::size_t failures)
{
    return {prior.a() + static_cast<double>(successes),
            prior.b() + static_cast<double>(failures)};
}

} // namespace inference
} // namespace uncertain
