/**
 * @file
 * Gamma distribution (shape/rate), sampled with the Marsaglia-Tsang
 * squeeze method. Also the building block for Beta and Student-t.
 */

#ifndef UNCERTAIN_RANDOM_GAMMA_HPP
#define UNCERTAIN_RANDOM_GAMMA_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Gamma(shape k, rate beta): density proportional to x^{k-1} e^{-bx}. */
class Gamma : public Distribution
{
  public:
    /** Requires shape > 0 and rate > 0. */
    Gamma(double shape, double rate);

    double sample(Rng& rng) const override;
    void sampleMany(Rng& rng, double* out, std::size_t n) const override;
    std::string name() const override;
    double logPdf(double x) const override;
    void logPdfMany(const double* xs, double* out,
                    std::size_t n) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;

    double shape() const { return shape_; }
    double rate() const { return rate_; }

    /** Draw from Gamma(shape, 1). */
    static double standardSample(Rng& rng, double shape);

    /**
     * Fill out[0..n) with Gamma(shape, 1) deviates: the
     * Marsaglia-Tsang squeeze with its (d, c) constants hoisted out
     * of the loop and the candidate normals pulled in blocks through
     * the ziggurat bulk path instead of per-draw Box-Muller. Same law
     * as standardSample(); the stream schedule differs (bulk
     * contract). Building block for Beta and Student-t columns.
     */
    static void standardSampleMany(Rng& rng, double shape, double* out,
                                   std::size_t n);

  private:
    double shape_;
    double rate_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_GAMMA_HPP
