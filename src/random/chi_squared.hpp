/**
 * @file
 * Chi-squared distribution (Gamma(k/2, 1/2)): completes the test-
 * statistic family alongside StudentT, and backs variance modeling.
 */

#ifndef UNCERTAIN_RANDOM_CHI_SQUARED_HPP
#define UNCERTAIN_RANDOM_CHI_SQUARED_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Chi-squared with k degrees of freedom. */
class ChiSquared : public Distribution
{
  public:
    /** Requires k > 0. */
    explicit ChiSquared(double k);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;

    double degreesOfFreedom() const { return k_; }

  private:
    double k_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_CHI_SQUARED_HPP
