/**
 * @file
 * Weibull distribution: a flexible non-negative error model
 * (generalizes both Exponential and Rayleigh).
 */

#ifndef UNCERTAIN_RANDOM_WEIBULL_HPP
#define UNCERTAIN_RANDOM_WEIBULL_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Weibull(shape k, scale lambda) on x >= 0. */
class Weibull : public Distribution
{
  public:
    /** Requires shape > 0 and scale > 0. */
    Weibull(double shape, double scale);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;

    double shape() const { return shape_; }
    double scale() const { return scale_; }

  private:
    double shape_;
    double scale_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_WEIBULL_HPP
