#include "random/bernoulli.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

Bernoulli::Bernoulli(double p) : p_(p)
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0,
                      "Bernoulli requires p in [0, 1]");
}

double
Bernoulli::sample(Rng& rng) const
{
    return sampleBool(rng) ? 1.0 : 0.0;
}

bool
Bernoulli::sampleBool(Rng& rng) const
{
    return rng.nextBool(p_);
}

std::string
Bernoulli::name() const
{
    std::ostringstream out;
    out << "Bernoulli(" << p_ << ")";
    return out.str();
}

double
Bernoulli::pdf(double x) const
{
    if (x == 0.0)
        return 1.0 - p_;
    if (x == 1.0)
        return p_;
    return 0.0;
}

double
Bernoulli::logPdf(double x) const
{
    double mass = pdf(x);
    return mass > 0.0 ? std::log(mass)
                      : -std::numeric_limits<double>::infinity();
}

double
Bernoulli::cdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    if (x < 1.0)
        return 1.0 - p_;
    return 1.0;
}

double
Bernoulli::mean() const
{
    return p_;
}

double
Bernoulli::variance() const
{
    return p_ * (1.0 - p_);
}

} // namespace random
} // namespace uncertain
