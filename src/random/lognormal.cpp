#include "random/lognormal.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "random/gaussian.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma)
{
    UNCERTAIN_REQUIRE(sigma > 0.0, "LogNormal requires sigma > 0");
}

double
LogNormal::sample(Rng& rng) const
{
    return std::exp(mu_ + sigma_ * Gaussian::standardSample(rng));
}

std::string
LogNormal::name() const
{
    std::ostringstream out;
    out << "LogNormal(" << mu_ << ", " << sigma_ << ")";
    return out.str();
}

double
LogNormal::logPdf(double x) const
{
    if (x <= 0.0)
        return -std::numeric_limits<double>::infinity();
    double z = (std::log(x) - mu_) / sigma_;
    return -0.5 * z * z - std::log(x * sigma_)
           - 0.91893853320467274178; // log(sqrt(2*pi))
}

double
LogNormal::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return math::normalCdf((std::log(x) - mu_) / sigma_);
}

double
LogNormal::quantile(double p) const
{
    return std::exp(mu_ + sigma_ * math::normalQuantile(p));
}

double
LogNormal::mean() const
{
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double
LogNormal::variance() const
{
    double s2 = sigma_ * sigma_;
    return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

} // namespace random
} // namespace uncertain
