/**
 * @file
 * Gaussian kernel density estimate over a sample pool: a smoothed
 * empirical distribution that supports density queries, so that
 * sample pools (e.g. Parakeet's PPD) can participate in the Bayesian
 * reweighting of src/inference.
 */

#ifndef UNCERTAIN_RANDOM_KDE_HPP
#define UNCERTAIN_RANDOM_KDE_HPP

#include <vector>

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/**
 * KDE with Gaussian kernels. Sampling draws a pool point and jitters
 * it by N(0, bandwidth^2), which is exactly a draw from the estimated
 * density.
 */
class GaussianKde : public Distribution
{
  public:
    /**
     * @param pool      the observed samples (non-empty)
     * @param bandwidth kernel width; <= 0 selects Silverman's
     *                  rule-of-thumb bandwidth automatically
     */
    explicit GaussianKde(std::vector<double> pool, double bandwidth = 0.0);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;

    double bandwidth() const { return bandwidth_; }
    const std::vector<double>& pool() const { return pool_; }

  private:
    std::vector<double> pool_;
    double bandwidth_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_KDE_HPP
