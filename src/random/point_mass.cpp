#include "random/point_mass.hpp"

#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

std::string
PointMass::name() const
{
    std::ostringstream out;
    out << "PointMass(" << value_ << ")";
    return out.str();
}

double
PointMass::pdf(double x) const
{
    // A Dirac mass has no density; report the mass function instead,
    // which is what discrete-style queries expect.
    return x == value_ ? 1.0 : 0.0;
}

double
PointMass::cdf(double x) const
{
    return x >= value_ ? 1.0 : 0.0;
}

double
PointMass::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0,
                      "PointMass::quantile requires p in [0, 1]");
    return value_;
}

} // namespace random
} // namespace uncertain
