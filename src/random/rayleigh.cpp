#include "random/rayleigh.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

Rayleigh::Rayleigh(double rho) : rho_(rho)
{
    UNCERTAIN_REQUIRE(rho > 0.0, "Rayleigh requires rho > 0");
}

Rayleigh
Rayleigh::fromHorizontalAccuracy(double epsilon95)
{
    UNCERTAIN_REQUIRE(epsilon95 > 0.0,
                      "horizontal accuracy must be positive");
    // cdf(eps) = 1 - exp(-eps^2 / (2 rho^2)) = 0.95
    //   => rho = eps / sqrt(2 ln 20) = eps / sqrt(ln 400).
    return Rayleigh(epsilon95 / std::sqrt(std::log(400.0)));
}

double
Rayleigh::sample(Rng& rng) const
{
    // Inverse-CDF: x = rho * sqrt(-2 ln(1 - u)).
    return rho_ * std::sqrt(-2.0 * std::log(rng.nextDoubleOpen()));
}

void
Rayleigh::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    rng.fillDoubleOpen(out, n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = rho_ * std::sqrt(-2.0 * std::log(out[i]));
}

std::string
Rayleigh::name() const
{
    std::ostringstream out;
    out << "Rayleigh(" << rho_ << ")";
    return out.str();
}

double
Rayleigh::pdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    double r2 = rho_ * rho_;
    return x / r2 * std::exp(-x * x / (2.0 * r2));
}

double
Rayleigh::logPdf(double x) const
{
    if (x <= 0.0)
        return -std::numeric_limits<double>::infinity();
    return std::log(x) - 2.0 * std::log(rho_)
           - x * x / (2.0 * rho_ * rho_);
}

double
Rayleigh::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return 1.0 - std::exp(-x * x / (2.0 * rho_ * rho_));
}

double
Rayleigh::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p < 1.0,
                      "Rayleigh::quantile requires p in [0, 1)");
    return rho_ * std::sqrt(-2.0 * std::log(1.0 - p));
}

double
Rayleigh::mean() const
{
    return rho_ * std::sqrt(M_PI / 2.0);
}

double
Rayleigh::variance() const
{
    return (2.0 - M_PI / 2.0) * rho_ * rho_;
}

} // namespace random
} // namespace uncertain
