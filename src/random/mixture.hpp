/**
 * @file
 * Finite mixture distribution: weighted combination of component
 * distributions. Multimodal error models (e.g. a GPS receiver that
 * is usually accurate but occasionally in multipath) are mixtures,
 * and mixtures are where point summaries mislead the most — exactly
 * the kind of distribution Uncertain<T> exists to carry around.
 */

#ifndef UNCERTAIN_RANDOM_MIXTURE_HPP
#define UNCERTAIN_RANDOM_MIXTURE_HPP

#include <vector>

#include "random/discrete.hpp"
#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Mixture of component distributions with given weights. */
class Mixture : public Distribution
{
  public:
    /**
     * Requires matching non-empty components/weights with
     * non-negative weights of positive total (normalized
     * internally).
     */
    Mixture(std::vector<DistributionPtr> components,
            std::vector<double> weights);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;

    std::size_t componentCount() const { return components_.size(); }
    double weightOf(std::size_t index) const;

  private:
    std::vector<DistributionPtr> components_;
    Discrete selector_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_MIXTURE_HPP
