/**
 * @file
 * Rayleigh distribution: the radial GPS error model the paper derives
 * in section 4.1: Pr[Location = p | GPS = sample] =
 * Rayleigh(|sample - p|; epsilon / sqrt(ln 400)).
 */

#ifndef UNCERTAIN_RANDOM_RAYLEIGH_HPP
#define UNCERTAIN_RANDOM_RAYLEIGH_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Rayleigh(rho): density x/rho^2 exp(-x^2 / (2 rho^2)) for x >= 0. */
class Rayleigh : public Distribution
{
  public:
    /** Requires rho > 0. */
    explicit Rayleigh(double rho);

    /**
     * The paper's GPS parameterization: @p epsilon95 is the sensor's
     * 95% horizontal-accuracy radius; the Rayleigh scale is
     * epsilon / sqrt(ln 400) so that cdf(epsilon) = 0.95.
     */
    static Rayleigh fromHorizontalAccuracy(double epsilon95);

    double sample(Rng& rng) const override;
    void sampleMany(Rng& rng, double* out, std::size_t n) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;

    /** Mode of the density (equals rho). */
    double mode() const { return rho_; }
    double rho() const { return rho_; }

  private:
    double rho_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_RAYLEIGH_HPP
