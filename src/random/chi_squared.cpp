#include "random/chi_squared.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "random/gamma.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

ChiSquared::ChiSquared(double k) : k_(k)
{
    UNCERTAIN_REQUIRE(k > 0.0, "ChiSquared requires k > 0");
}

double
ChiSquared::sample(Rng& rng) const
{
    return 2.0 * Gamma::standardSample(rng, 0.5 * k_);
}

std::string
ChiSquared::name() const
{
    std::ostringstream out;
    out << "ChiSquared(" << k_ << ")";
    return out.str();
}

double
ChiSquared::logPdf(double x) const
{
    if (x <= 0.0)
        return -std::numeric_limits<double>::infinity();
    double half = 0.5 * k_;
    return (half - 1.0) * std::log(x) - 0.5 * x
           - half * std::log(2.0) - math::logGamma(half);
}

double
ChiSquared::cdf(double x) const
{
    return math::chiSquareCdf(x, k_);
}

double
ChiSquared::mean() const
{
    return k_;
}

double
ChiSquared::variance() const
{
    return 2.0 * k_;
}

} // namespace random
} // namespace uncertain
