/**
 * @file
 * Point-mass (Dirac) distribution: the lifting of a plain value into
 * the uncertain algebra (Table 1's Pointmass :: T -> U<T>).
 */

#ifndef UNCERTAIN_RANDOM_POINT_MASS_HPP
#define UNCERTAIN_RANDOM_POINT_MASS_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** All probability mass at a single value. */
class PointMass : public Distribution
{
  public:
    explicit PointMass(double value) : value_(value) {}

    double sample(Rng&) const override { return value_; }
    std::string name() const override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override { return value_; }
    double variance() const override { return 0.0; }
    bool hasDensity() const override { return false; }

    bool
    finiteSupport(std::vector<double>& values,
                  std::vector<double>& probabilities) const override
    {
        values = {value_};
        probabilities = {1.0};
        return true;
    }

    double value() const { return value_; }

  private:
    double value_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_POINT_MASS_HPP
