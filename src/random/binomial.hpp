/**
 * @file
 * Binomial distribution over {0, ..., n}.
 */

#ifndef UNCERTAIN_RANDOM_BINOMIAL_HPP
#define UNCERTAIN_RANDOM_BINOMIAL_HPP

#include <cstdint>

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Binomial(n, p): number of successes in n Bernoulli(p) trials. */
class Binomial : public Distribution
{
  public:
    /** Requires p in [0, 1]. */
    Binomial(std::uint32_t n, double p);

    double sample(Rng& rng) const override;
    void sampleMany(Rng& rng, double* out, std::size_t n) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    void logPdfMany(const double* xs, double* out,
                    std::size_t n) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;

    /**
     * Support {0, ..., n} with pmf probabilities. Capped at n <= 4096
     * to keep the table a sensible size for enumeration; larger
     * binomials stay sampling-only.
     */
    bool
    finiteSupport(std::vector<double>& values,
                  std::vector<double>& probabilities) const override;

    std::uint32_t n() const { return n_; }
    double p() const { return p_; }

  private:
    std::uint32_t n_;
    double p_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_BINOMIAL_HPP
