#include "random/exponential.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

Exponential::Exponential(double lambda) : lambda_(lambda)
{
    UNCERTAIN_REQUIRE(lambda > 0.0, "Exponential requires lambda > 0");
}

double
Exponential::sample(Rng& rng) const
{
    return -std::log(rng.nextDoubleOpen()) / lambda_;
}

void
Exponential::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    rng.fillDoubleOpen(out, n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = -std::log(out[i]) / lambda_;
}

std::string
Exponential::name() const
{
    std::ostringstream out;
    out << "Exponential(" << lambda_ << ")";
    return out.str();
}

double
Exponential::pdf(double x) const
{
    return x < 0.0 ? 0.0 : lambda_ * std::exp(-lambda_ * x);
}

double
Exponential::logPdf(double x) const
{
    if (x < 0.0)
        return -std::numeric_limits<double>::infinity();
    return std::log(lambda_) - lambda_ * x;
}

double
Exponential::cdf(double x) const
{
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-lambda_ * x);
}

double
Exponential::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p < 1.0,
                      "Exponential::quantile requires p in [0, 1)");
    return -std::log(1.0 - p) / lambda_;
}

double
Exponential::mean() const
{
    return 1.0 / lambda_;
}

double
Exponential::variance() const
{
    return 1.0 / (lambda_ * lambda_);
}

} // namespace random
} // namespace uncertain
