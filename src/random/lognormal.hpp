/**
 * @file
 * Log-normal distribution.
 */

#ifndef UNCERTAIN_RANDOM_LOGNORMAL_HPP
#define UNCERTAIN_RANDOM_LOGNORMAL_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** LogNormal(mu, sigma): exp of N(mu, sigma^2). */
class LogNormal : public Distribution
{
  public:
    /** Requires sigma > 0. */
    LogNormal(double mu, double sigma);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;

    double mu() const { return mu_; }
    double sigma() const { return sigma_; }

  private:
    double mu_;
    double sigma_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_LOGNORMAL_HPP
