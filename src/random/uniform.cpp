#include "random/uniform.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi)
{
    UNCERTAIN_REQUIRE(lo < hi, "Uniform requires lo < hi");
}

double
Uniform::sample(Rng& rng) const
{
    return rng.nextRange(lo_, hi_);
}

void
Uniform::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    rng.fillDouble(out, n);
    const double width = hi_ - lo_;
    for (std::size_t i = 0; i < n; ++i)
        out[i] = lo_ + width * out[i];
}

std::string
Uniform::name() const
{
    std::ostringstream out;
    out << "Uniform(" << lo_ << ", " << hi_ << ")";
    return out.str();
}

double
Uniform::pdf(double x) const
{
    return (x >= lo_ && x < hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double
Uniform::logPdf(double x) const
{
    double density = pdf(x);
    return density > 0.0 ? std::log(density)
                         : -std::numeric_limits<double>::infinity();
}

double
Uniform::cdf(double x) const
{
    if (x <= lo_)
        return 0.0;
    if (x >= hi_)
        return 1.0;
    return (x - lo_) / (hi_ - lo_);
}

double
Uniform::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0,
                      "Uniform::quantile requires p in [0, 1]");
    return lo_ + p * (hi_ - lo_);
}

double
Uniform::mean() const
{
    return 0.5 * (lo_ + hi_);
}

double
Uniform::variance() const
{
    double width = hi_ - lo_;
    return width * width / 12.0;
}

} // namespace random
} // namespace uncertain
