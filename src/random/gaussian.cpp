#include "random/gaussian.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

Gaussian::Gaussian(double mu, double sigma) : mu_(mu), sigma_(sigma)
{
    UNCERTAIN_REQUIRE(sigma > 0.0, "Gaussian requires sigma > 0");
}

double
Gaussian::standardSample(Rng& rng)
{
    double u1 = rng.nextDoubleOpen();
    double u2 = rng.nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Gaussian::sample(Rng& rng) const
{
    return mu_ + sigma_ * standardSample(rng);
}

std::string
Gaussian::name() const
{
    std::ostringstream out;
    out << "Gaussian(" << mu_ << ", " << sigma_ << ")";
    return out.str();
}

double
Gaussian::pdf(double x) const
{
    double z = (x - mu_) / sigma_;
    return math::normalPdf(z) / sigma_;
}

double
Gaussian::logPdf(double x) const
{
    double z = (x - mu_) / sigma_;
    return -0.5 * z * z - std::log(sigma_)
           - 0.91893853320467274178; // log(sqrt(2*pi))
}

double
Gaussian::cdf(double x) const
{
    return math::normalCdf((x - mu_) / sigma_);
}

double
Gaussian::quantile(double p) const
{
    return mu_ + sigma_ * math::normalQuantile(p);
}

double
Gaussian::mean() const
{
    return mu_;
}

double
Gaussian::variance() const
{
    return sigma_ * sigma_;
}

} // namespace random
} // namespace uncertain
