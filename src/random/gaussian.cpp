#include "random/gaussian.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "core/simd_kernels.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

namespace {

/**
 * Marsaglia & Tsang ziggurat tables for the standard normal (128
 * layers). kn[i] is the integer acceptance threshold for layer i,
 * wn[i] the scaling from a 32-bit integer to a deviate, fn[i] the
 * density at the layer boundary. Built once at static-init time from
 * the classic recurrence (Marsaglia & Tsang, "The Ziggurat Method for
 * Generating Random Variables", JSS 2000).
 */
struct ZigguratTables
{
    std::uint32_t kn[128];
    double wn[128];
    double fn[128];

    ZigguratTables()
    {
        const double m1 = 2147483648.0; // 2^31
        double dn = 3.442619855899;
        double tn = dn;
        const double vn = 9.91256303526217e-3;
        const double q = vn / std::exp(-0.5 * dn * dn);
        kn[0] = static_cast<std::uint32_t>((dn / q) * m1);
        kn[1] = 0;
        wn[0] = q / m1;
        wn[127] = dn / m1;
        fn[0] = 1.0;
        fn[127] = std::exp(-0.5 * dn * dn);
        for (int i = 126; i >= 1; --i) {
            dn = std::sqrt(
                -2.0 * std::log(vn / dn + std::exp(-0.5 * dn * dn)));
            kn[i + 1] = static_cast<std::uint32_t>((dn / tn) * m1);
            tn = dn;
            fn[i] = std::exp(-0.5 * dn * dn);
            wn[i] = dn / m1;
        }
    }
};

const ZigguratTables zig;

/** Uniform in (0, 1) from 53 high bits of a 64-bit word. */
inline double
uniOpen(std::uint64_t bits)
{
    return (static_cast<double>(bits >> 11) + 0.5)
           * (1.0 / 9007199254740992.0);
}

/**
 * Ziggurat slow path for |hz| >= kn[iz]: the tail (iz == 0) or the
 * wedge between the rectangle and the density. Taken on ~2.3% of
 * draws.
 */
double
zigguratFix(Rng& rng, std::int32_t hz, std::uint32_t iz)
{
    const double r = 3.442619855899;
    double x = static_cast<double>(hz) * zig.wn[iz];
    for (;;) {
        if (iz == 0) {
            // Marsaglia's exponential-rejection normal tail.
            double xt, yt;
            do {
                xt = -std::log(uniOpen(rng.nextU64())) / r;
                yt = -std::log(uniOpen(rng.nextU64()));
            } while (yt + yt < xt * xt);
            return hz > 0 ? r + xt : -(r + xt);
        }
        if (zig.fn[iz]
                + uniOpen(rng.nextU64()) * (zig.fn[iz - 1] - zig.fn[iz])
            < std::exp(-0.5 * x * x))
            return x;
        hz = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(rng.nextU64()));
        iz = static_cast<std::uint32_t>(hz) & 127u;
        // Magnitude via unsigned negation: |INT32_MIN| overflows int.
        const std::uint32_t mag =
            hz < 0 ? ~static_cast<std::uint32_t>(hz) + 1u
                   : static_cast<std::uint32_t>(hz);
        if (mag < zig.kn[iz])
            return static_cast<double>(hz) * zig.wn[iz];
        x = static_cast<double>(hz) * zig.wn[iz];
    }
}

} // namespace

Gaussian::Gaussian(double mu, double sigma) : mu_(mu), sigma_(sigma)
{
    UNCERTAIN_REQUIRE(sigma > 0.0, "Gaussian requires sigma > 0");
}

double
Gaussian::standardSample(Rng& rng)
{
    double u1 = rng.nextDoubleOpen();
    double u2 = rng.nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Gaussian::sample(Rng& rng) const
{
    return mu_ + sigma_ * standardSample(rng);
}

void
Gaussian::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    // 128-layer ziggurat (Marsaglia & Tsang): ~97.7% of draws are one
    // integer compare plus one multiply; the wedge/tail slow path is
    // out of line. Raw 64-bit words are pulled through a stack buffer
    // via fillU64, so the fast path never crosses the Rng facade per
    // draw, and the accept test + accepted-value arithmetic run
    // vectorized over the whole buffer (simd::zigguratAccept).
    // Rejected indices come back in ascending order and are fixed up
    // with the scalar tail/wedge routine in element order — the same
    // order the old per-element loop called it — so the Rng word
    // stream and every output bit are unchanged by the vectorization.
    // Rejection and buffering consume a data-dependent number of
    // words, which is fine here: the bulk contract is "same law as
    // sample(), deterministic in the Rng state", not "same stream
    // schedule" (the KS conformance suite pins the law).
    constexpr std::size_t kBuf = 1024;
    std::uint64_t buf[kBuf];
    std::uint32_t rejects[kBuf];
    const simd::Isa isa = simd::activeIsa();
    for (std::size_t i = 0; i < n;) {
        const std::size_t have = std::min(kBuf, n - i);
        rng.fillU64(buf, have);
        const std::size_t nRejects = simd::zigguratAccept(
            isa, buf, have, zig.kn, zig.wn, mu_, sigma_, out + i,
            rejects);
        for (std::size_t r = 0; r < nRejects; ++r) {
            const std::size_t idx = rejects[r];
            const auto hz = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(buf[idx]));
            const std::uint32_t iz =
                static_cast<std::uint32_t>(hz) & 127u;
            out[i + idx] = mu_ + sigma_ * zigguratFix(rng, hz, iz);
        }
        i += have;
    }
}

void
Gaussian::standardSampleMany(Rng& rng, double* out, std::size_t n)
{
    static const Gaussian standard(0.0, 1.0);
    standard.sampleMany(rng, out, n);
}

std::string
Gaussian::name() const
{
    std::ostringstream out;
    out << "Gaussian(" << mu_ << ", " << sigma_ << ")";
    return out.str();
}

double
Gaussian::pdf(double x) const
{
    double z = (x - mu_) / sigma_;
    return math::normalPdf(z) / sigma_;
}

double
Gaussian::logPdf(double x) const
{
    double z = (x - mu_) / sigma_;
    return -0.5 * z * z - std::log(sigma_)
           - 0.91893853320467274178; // log(sqrt(2*pi))
}

void
Gaussian::logPdfMany(const double* xs, double* out,
                     std::size_t n) const
{
    // Same arithmetic in the same order as logPdf with only the
    // log(sigma) call hoisted; per-element values are bit-identical.
    const double logSigma = std::log(sigma_);
    for (std::size_t i = 0; i < n; ++i) {
        double z = (xs[i] - mu_) / sigma_;
        out[i] = -0.5 * z * z - logSigma - 0.91893853320467274178;
    }
}

double
Gaussian::cdf(double x) const
{
    return math::normalCdf((x - mu_) / sigma_);
}

double
Gaussian::quantile(double p) const
{
    return mu_ + sigma_ * math::normalQuantile(p);
}

double
Gaussian::mean() const
{
    return mu_;
}

double
Gaussian::variance() const
{
    return sigma_ * sigma_;
}

} // namespace random
} // namespace uncertain
