#include "random/gaussian.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

Gaussian::Gaussian(double mu, double sigma) : mu_(mu), sigma_(sigma)
{
    UNCERTAIN_REQUIRE(sigma > 0.0, "Gaussian requires sigma > 0");
}

double
Gaussian::standardSample(Rng& rng)
{
    double u1 = rng.nextDoubleOpen();
    double u2 = rng.nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Gaussian::sample(Rng& rng) const
{
    return mu_ + sigma_ * standardSample(rng);
}

void
Gaussian::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    // Marsaglia polar method, pairwise: each accepted (v1, v2) in the
    // unit disc yields two deviates from one log and one sqrt, with no
    // trigonometry at all. Acceptance is pi/4, so the expected uniform
    // cost is ~2.55 draws per pair; the transcendental saving against
    // the scalar path's Box-Muller (log + sqrt + cos per draw)
    // dominates. Rejection consumes a data-dependent number of draws,
    // which is fine here: the bulk contract is "same law as sample(),
    // deterministic in the Rng state", not "same stream schedule".
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        double v1, v2, s;
        do {
            v1 = 2.0 * rng.nextDouble() - 1.0;
            v2 = 2.0 * rng.nextDouble() - 1.0;
            s = v1 * v1 + v2 * v2;
        } while (s >= 1.0 || s == 0.0);
        double scale = std::sqrt(-2.0 * std::log(s) / s);
        out[i] = mu_ + sigma_ * (v1 * scale);
        out[i + 1] = mu_ + sigma_ * (v2 * scale);
    }
    if (i < n)
        out[i] = sample(rng);
}

std::string
Gaussian::name() const
{
    std::ostringstream out;
    out << "Gaussian(" << mu_ << ", " << sigma_ << ")";
    return out.str();
}

double
Gaussian::pdf(double x) const
{
    double z = (x - mu_) / sigma_;
    return math::normalPdf(z) / sigma_;
}

double
Gaussian::logPdf(double x) const
{
    double z = (x - mu_) / sigma_;
    return -0.5 * z * z - std::log(sigma_)
           - 0.91893853320467274178; // log(sqrt(2*pi))
}

double
Gaussian::cdf(double x) const
{
    return math::normalCdf((x - mu_) / sigma_);
}

double
Gaussian::quantile(double p) const
{
    return mu_ + sigma_ * math::normalQuantile(p);
}

double
Gaussian::mean() const
{
    return mu_;
}

double
Gaussian::variance() const
{
    return sigma_ * sigma_;
}

} // namespace random
} // namespace uncertain
