#include "random/discrete.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

Discrete::Discrete(std::vector<double> values, std::vector<double> weights)
    : values_(std::move(values)), probs_(std::move(weights))
{
    UNCERTAIN_REQUIRE(!values_.empty(), "Discrete requires >= 1 value");
    UNCERTAIN_REQUIRE(values_.size() == probs_.size(),
                      "Discrete requires matching values/weights sizes");
    double total = 0.0;
    for (double w : probs_) {
        UNCERTAIN_REQUIRE(w >= 0.0 && std::isfinite(w),
                          "Discrete weights must be finite and >= 0");
        total += w;
    }
    UNCERTAIN_REQUIRE(total > 0.0, "Discrete requires positive total weight");
    for (double& w : probs_)
        w /= total;
    buildAliasTable();
}

void
Discrete::buildAliasTable()
{
    const std::size_t n = probs_.size();
    aliasProb_.assign(n, 0.0);
    aliasIndex_.assign(n, 0);

    std::vector<double> scaled(n);
    std::vector<std::size_t> small;
    std::vector<std::size_t> large;
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = probs_[i] * static_cast<double>(n);
        (scaled[i] < 1.0 ? small : large).push_back(i);
    }

    while (!small.empty() && !large.empty()) {
        std::size_t s = small.back();
        small.pop_back();
        std::size_t l = large.back();
        large.pop_back();
        aliasProb_[s] = scaled[s];
        aliasIndex_[s] = l;
        scaled[l] = scaled[l] + scaled[s] - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (std::size_t i : large)
        aliasProb_[i] = 1.0;
    for (std::size_t i : small)
        aliasProb_[i] = 1.0;
}

std::size_t
Discrete::sampleIndex(Rng& rng) const
{
    std::size_t column = static_cast<std::size_t>(
        rng.nextBelow(static_cast<std::uint64_t>(probs_.size())));
    return rng.nextDouble() < aliasProb_[column] ? column
                                                 : aliasIndex_[column];
}

double
Discrete::sample(Rng& rng) const
{
    return values_[sampleIndex(rng)];
}

std::string
Discrete::name() const
{
    std::ostringstream out;
    out << "Discrete(" << values_.size() << " values)";
    return out.str();
}

double
Discrete::pdf(double x) const
{
    double mass = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (values_[i] == x)
            mass += probs_[i];
    }
    return mass;
}

double
Discrete::cdf(double x) const
{
    double total = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (values_[i] <= x)
            total += probs_[i];
    }
    return total;
}

double
Discrete::mean() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i)
        total += values_[i] * probs_[i];
    return total;
}

double
Discrete::variance() const
{
    double mu = mean();
    double total = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        double d = values_[i] - mu;
        total += d * d * probs_[i];
    }
    return total;
}

} // namespace random
} // namespace uncertain
