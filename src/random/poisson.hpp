/**
 * @file
 * Poisson distribution.
 */

#ifndef UNCERTAIN_RANDOM_POISSON_HPP
#define UNCERTAIN_RANDOM_POISSON_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Poisson(lambda) over the non-negative integers. */
class Poisson : public Distribution
{
  public:
    /** Requires lambda > 0. */
    explicit Poisson(double lambda);

    double sample(Rng& rng) const override;
    void sampleMany(Rng& rng, double* out, std::size_t n) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    void logPdfMany(const double* xs, double* out,
                    std::size_t n) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;

    /**
     * Truncated support {0, ..., kMax} where kMax is the smallest
     * count whose right tail holds less than 1e-14 of the mass,
     * renormalized to sum to 1. The truncation error is orders of
     * magnitude below what any statistical check in this repo can
     * resolve, which is the contract that admits Poisson leaves into
     * the exact enumeration backend. Returns false when kMax would
     * exceed 4096 (enormous lambda), keeping such leaves
     * sampling-only.
     */
    bool
    finiteSupport(std::vector<double>& values,
                  std::vector<double>& probabilities) const override;

    double lambda() const { return lambda_; }

  private:
    double lambda_;
    /** Constants hoisted at construction (lambda is immutable). */
    double expNegLambda_; //!< exp(-lambda), Knuth limit (small lambda)
    double logLambda_;    //!< log(lambda), PTRS accept + logPdf
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_POISSON_HPP
