/**
 * @file
 * Poisson distribution.
 */

#ifndef UNCERTAIN_RANDOM_POISSON_HPP
#define UNCERTAIN_RANDOM_POISSON_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Poisson(lambda) over the non-negative integers. */
class Poisson : public Distribution
{
  public:
    /** Requires lambda > 0. */
    explicit Poisson(double lambda);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;

    double lambda() const { return lambda_; }

  private:
    double lambda_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_POISSON_HPP
