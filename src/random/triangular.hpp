/**
 * @file
 * Triangular distribution: a simple bounded model useful as a prior
 * when only a plausible range and mode are known.
 */

#ifndef UNCERTAIN_RANDOM_TRIANGULAR_HPP
#define UNCERTAIN_RANDOM_TRIANGULAR_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Triangular(lo, mode, hi). */
class Triangular : public Distribution
{
  public:
    /** Requires lo <= mode <= hi and lo < hi. */
    Triangular(double lo, double mode, double hi);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;

  private:
    double lo_;
    double mode_;
    double hi_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_TRIANGULAR_HPP
