#include "random/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

Empirical::Empirical(std::vector<double> pool) : pool_(std::move(pool))
{
    UNCERTAIN_REQUIRE(!pool_.empty(), "Empirical requires >= 1 sample");
    sorted_ = pool_;
    std::sort(sorted_.begin(), sorted_.end());
}

double
Empirical::sample(Rng& rng) const
{
    return pool_[static_cast<std::size_t>(
        rng.nextBelow(static_cast<std::uint64_t>(pool_.size())))];
}

void
Empirical::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    // Uniform pool picks in a tight loop: one virtual dispatch per
    // column fill instead of one per draw.
    const auto size = static_cast<std::uint64_t>(pool_.size());
    for (std::size_t i = 0; i < n; ++i)
        out[i] = pool_[static_cast<std::size_t>(rng.nextBelow(size))];
}

std::string
Empirical::name() const
{
    std::ostringstream out;
    out << "Empirical(" << pool_.size() << " samples)";
    return out.str();
}

double
Empirical::cdf(double x) const
{
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin())
           / static_cast<double>(sorted_.size());
}

double
Empirical::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0,
                      "Empirical::quantile requires p in [0, 1]");
    if (sorted_.size() == 1)
        return sorted_.front();
    // Linear interpolation between order statistics (type-7).
    double h = p * static_cast<double>(sorted_.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(h));
    auto hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = h - static_cast<double>(lo);
    return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double
Empirical::mean() const
{
    double total = 0.0;
    for (double x : pool_)
        total += x;
    return total / static_cast<double>(pool_.size());
}

double
Empirical::variance() const
{
    double mu = mean();
    double total = 0.0;
    for (double x : pool_) {
        double d = x - mu;
        total += d * d;
    }
    return total / static_cast<double>(pool_.size());
}

} // namespace random
} // namespace uncertain
