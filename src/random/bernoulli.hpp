/**
 * @file
 * Bernoulli distribution: the distribution every lifted comparison
 * operator produces (paper section 3.4).
 */

#ifndef UNCERTAIN_RANDOM_BERNOULLI_HPP
#define UNCERTAIN_RANDOM_BERNOULLI_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Bernoulli(p) over {0, 1}. */
class Bernoulli : public Distribution
{
  public:
    /** Requires p in [0, 1]. */
    explicit Bernoulli(double p);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;

    /** Boolean draw, avoiding the double round-trip. */
    bool sampleBool(Rng& rng) const;

    bool
    finiteSupport(std::vector<double>& values,
                  std::vector<double>& probabilities) const override
    {
        values = {0.0, 1.0};
        probabilities = {1.0 - p_, p_};
        return true;
    }

    double p() const { return p_; }

  private:
    double p_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_BERNOULLI_HPP
