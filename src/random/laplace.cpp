#include "random/laplace.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

Laplace::Laplace(double mu, double b) : mu_(mu), b_(b)
{
    UNCERTAIN_REQUIRE(b > 0.0, "Laplace requires b > 0");
}

double
Laplace::sample(Rng& rng) const
{
    // Inverse CDF on a symmetric uniform.
    double u = rng.nextDoubleOpen() - 0.5;
    double sign = u < 0.0 ? -1.0 : 1.0;
    return mu_ - b_ * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

std::string
Laplace::name() const
{
    std::ostringstream out;
    out << "Laplace(" << mu_ << ", " << b_ << ")";
    return out.str();
}

double
Laplace::pdf(double x) const
{
    return std::exp(-std::fabs(x - mu_) / b_) / (2.0 * b_);
}

double
Laplace::logPdf(double x) const
{
    return -std::fabs(x - mu_) / b_ - std::log(2.0 * b_);
}

double
Laplace::cdf(double x) const
{
    if (x < mu_)
        return 0.5 * std::exp((x - mu_) / b_);
    return 1.0 - 0.5 * std::exp(-(x - mu_) / b_);
}

double
Laplace::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p > 0.0 && p < 1.0,
                      "Laplace::quantile requires p in (0, 1)");
    if (p < 0.5)
        return mu_ + b_ * std::log(2.0 * p);
    return mu_ - b_ * std::log(2.0 * (1.0 - p));
}

double
Laplace::mean() const
{
    return mu_;
}

double
Laplace::variance() const
{
    return 2.0 * b_ * b_;
}

} // namespace random
} // namespace uncertain
