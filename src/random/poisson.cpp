#include "random/poisson.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

Poisson::Poisson(double lambda) : lambda_(lambda)
{
    UNCERTAIN_REQUIRE(lambda > 0.0, "Poisson requires lambda > 0");
}

double
Poisson::sample(Rng& rng) const
{
    if (lambda_ < 30.0) {
        // Knuth's multiplication method.
        double limit = std::exp(-lambda_);
        double product = rng.nextDouble();
        double count = 0.0;
        while (product > limit) {
            product *= rng.nextDouble();
            count += 1.0;
        }
        return count;
    }

    // PTRS transformed rejection (Hormann, 1993) for large lambda.
    const double b = 0.931 + 2.53 * std::sqrt(lambda_);
    const double a = -0.059 + 0.02483 * b;
    const double invAlpha = 1.1239 + 1.1328 / (b - 3.4);
    const double vr = 0.9277 - 3.6224 / (b - 2.0);

    for (;;) {
        double u = rng.nextDouble() - 0.5;
        double v = rng.nextDoubleOpen();
        double us = 0.5 - std::fabs(u);
        double k = std::floor((2.0 * a / us + b) * u + lambda_ + 0.43);
        if (us >= 0.07 && v <= vr)
            return k;
        if (k < 0.0 || (us < 0.013 && v > us))
            continue;
        double logLambda = std::log(lambda_);
        if (std::log(v * invAlpha / (a / (us * us) + b))
            <= k * logLambda - lambda_ - math::logGamma(k + 1.0)) {
            return k;
        }
    }
}

std::string
Poisson::name() const
{
    std::ostringstream out;
    out << "Poisson(" << lambda_ << ")";
    return out.str();
}

double
Poisson::pdf(double x) const
{
    double k = std::round(x);
    if (k != x || k < 0.0)
        return 0.0;
    return std::exp(logPdf(x));
}

double
Poisson::logPdf(double x) const
{
    double k = std::round(x);
    if (k != x || k < 0.0)
        return -std::numeric_limits<double>::infinity();
    return k * std::log(lambda_) - lambda_ - math::logGamma(k + 1.0);
}

double
Poisson::cdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    double k = std::floor(x);
    // Pr[X <= k] = Q(k + 1, lambda).
    return math::regularizedGammaQ(k + 1.0, lambda_);
}

double
Poisson::mean() const
{
    return lambda_;
}

double
Poisson::variance() const
{
    return lambda_;
}

} // namespace random
} // namespace uncertain
