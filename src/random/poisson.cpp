#include "random/poisson.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

namespace {

/** PTRS transformed-rejection constants (Hormann, 1993). */
struct PtrsConstants
{
    double b;
    double a;
    double invAlpha;
    double vr;

    explicit PtrsConstants(double lambda)
    {
        b = 0.931 + 2.53 * std::sqrt(lambda);
        a = -0.059 + 0.02483 * b;
        invAlpha = 1.1239 + 1.1328 / (b - 3.4);
        vr = 0.9277 - 3.6224 / (b - 2.0);
    }
};

/** One Knuth-multiplication draw with exp(-lambda) precomputed. */
inline double
knuthDraw(Rng& rng, double limit)
{
    double product = rng.nextDouble();
    double count = 0.0;
    while (product > limit) {
        product *= rng.nextDouble();
        count += 1.0;
    }
    return count;
}

/** One PTRS draw with the setup constants and log(lambda) hoisted. */
inline double
ptrsDraw(Rng& rng, const PtrsConstants& c, double lambda,
         double logLambda)
{
    for (;;) {
        double u = rng.nextDouble() - 0.5;
        double v = rng.nextDoubleOpen();
        double us = 0.5 - std::fabs(u);
        double k = std::floor((2.0 * c.a / us + c.b) * u + lambda
                              + 0.43);
        if (us >= 0.07 && v <= c.vr)
            return k;
        if (k < 0.0 || (us < 0.013 && v > us))
            continue;
        if (std::log(v * c.invAlpha / (c.a / (us * us) + c.b))
            <= k * logLambda - lambda - math::logGamma(k + 1.0)) {
            return k;
        }
    }
}

} // namespace

Poisson::Poisson(double lambda)
    : lambda_(lambda), expNegLambda_(std::exp(-lambda)),
      logLambda_(std::log(lambda))
{
    UNCERTAIN_REQUIRE(lambda > 0.0, "Poisson requires lambda > 0");
}

double
Poisson::sample(Rng& rng) const
{
    if (lambda_ < 30.0)
        return knuthDraw(rng, expNegLambda_);
    PtrsConstants c(lambda_);
    return ptrsDraw(rng, c, lambda_, logLambda_);
}

void
Poisson::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    // Same per-draw algorithms as sample() with every lambda-only
    // quantity (exp(-lambda), log(lambda), the PTRS setup) computed
    // once per column instead of once per draw, and no virtual
    // dispatch inside the loop.
    if (lambda_ < 30.0) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = knuthDraw(rng, expNegLambda_);
        return;
    }
    const PtrsConstants c(lambda_);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = ptrsDraw(rng, c, lambda_, logLambda_);
}

std::string
Poisson::name() const
{
    std::ostringstream out;
    out << "Poisson(" << lambda_ << ")";
    return out.str();
}

double
Poisson::pdf(double x) const
{
    double k = std::round(x);
    if (k != x || k < 0.0)
        return 0.0;
    return std::exp(logPdf(x));
}

double
Poisson::logPdf(double x) const
{
    double k = std::round(x);
    if (k != x || k < 0.0)
        return -std::numeric_limits<double>::infinity();
    return k * logLambda_ - lambda_ - math::logGamma(k + 1.0);
}

void
Poisson::logPdfMany(const double* xs, double* out, std::size_t n) const
{
    // Same arithmetic in the same order as logPdf (log(lambda) is
    // already hoisted into the constructor); bit-identical values,
    // no virtual dispatch inside the loop.
    for (std::size_t i = 0; i < n; ++i) {
        const double k = std::round(xs[i]);
        out[i] = (k != xs[i] || k < 0.0)
                     ? -std::numeric_limits<double>::infinity()
                     : k * logLambda_ - lambda_
                           - math::logGamma(k + 1.0);
    }
}

double
Poisson::cdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    double k = std::floor(x);
    // Pr[X <= k] = Q(k + 1, lambda).
    return math::regularizedGammaQ(k + 1.0, lambda_);
}

double
Poisson::mean() const
{
    return lambda_;
}

double
Poisson::variance() const
{
    return lambda_;
}

bool
Poisson::finiteSupport(std::vector<double>& values,
                       std::vector<double>& probabilities) const
{
    constexpr std::size_t kMaxSupport = 4096;
    constexpr double kTailMass = 1e-14;

    // Walk the pmf recurrence p_{k+1} = p_k * lambda / (k + 1) until
    // the accumulated mass is within kTailMass of 1. exp(-lambda)
    // underflows near lambda ~ 745, far beyond the kMaxSupport cap,
    // so the recurrence start is safe wherever this succeeds.
    std::vector<double> pmf;
    double p = expNegLambda_;
    double mass = p;
    pmf.push_back(p);
    std::size_t k = 0;
    while (mass < 1.0 - kTailMass) {
        if (pmf.size() >= kMaxSupport || p == 0.0)
            return false;
        ++k;
        p *= lambda_ / static_cast<double>(k);
        pmf.push_back(p);
        mass += p;
    }

    values.resize(pmf.size());
    probabilities.resize(pmf.size());
    for (std::size_t i = 0; i < pmf.size(); ++i) {
        values[i] = static_cast<double>(i);
        probabilities[i] = pmf[i] / mass;
    }
    return true;
}

} // namespace random
} // namespace uncertain
