#include "random/beta.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "random/gamma.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

Beta::Beta(double a, double b) : a_(a), b_(b)
{
    UNCERTAIN_REQUIRE(a > 0.0 && b > 0.0, "Beta requires a, b > 0");
}

double
Beta::sample(Rng& rng) const
{
    double x = Gamma::standardSample(rng, a_);
    double y = Gamma::standardSample(rng, b_);
    return x / (x + y);
}

std::string
Beta::name() const
{
    std::ostringstream out;
    out << "Beta(" << a_ << ", " << b_ << ")";
    return out.str();
}

double
Beta::logPdf(double x) const
{
    if (x <= 0.0 || x >= 1.0)
        return -std::numeric_limits<double>::infinity();
    return (a_ - 1.0) * std::log(x) + (b_ - 1.0) * std::log(1.0 - x)
           - math::logBeta(a_, b_);
}

double
Beta::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    return math::regularizedBeta(x, a_, b_);
}

double
Beta::mean() const
{
    return a_ / (a_ + b_);
}

double
Beta::variance() const
{
    double s = a_ + b_;
    return a_ * b_ / (s * s * (s + 1.0));
}

} // namespace random
} // namespace uncertain
