#include "random/beta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "random/gamma.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

Beta::Beta(double a, double b) : a_(a), b_(b)
{
    UNCERTAIN_REQUIRE(a > 0.0 && b > 0.0, "Beta requires a, b > 0");
}

double
Beta::sample(Rng& rng) const
{
    double x = Gamma::standardSample(rng, a_);
    double y = Gamma::standardSample(rng, b_);
    return x / (x + y);
}

void
Beta::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    // Same X/(X+Y) construction as the scalar path, but the two gamma
    // variates arrive as bulk columns (hoisted squeeze constants,
    // ziggurat candidate normals) combined block by block so the
    // scratch stays cache-resident at any n.
    constexpr std::size_t kBlock = 4096;
    double x[kBlock];
    double y[kBlock];
    for (std::size_t base = 0; base < n; base += kBlock) {
        const std::size_t m = std::min(kBlock, n - base);
        Gamma::standardSampleMany(rng, a_, x, m);
        Gamma::standardSampleMany(rng, b_, y, m);
        for (std::size_t i = 0; i < m; ++i)
            out[base + i] = x[i] / (x[i] + y[i]);
    }
}

std::string
Beta::name() const
{
    std::ostringstream out;
    out << "Beta(" << a_ << ", " << b_ << ")";
    return out.str();
}

double
Beta::logPdf(double x) const
{
    if (x <= 0.0 || x >= 1.0)
        return -std::numeric_limits<double>::infinity();
    return (a_ - 1.0) * std::log(x) + (b_ - 1.0) * std::log(1.0 - x)
           - math::logBeta(a_, b_);
}

void
Beta::logPdfMany(const double* xs, double* out, std::size_t n) const
{
    // Same arithmetic in the same order as logPdf with the
    // logBeta(a, b) normalizer hoisted; per-element values are
    // bit-identical to the scalar logPdf.
    const double aM1 = a_ - 1.0;
    const double bM1 = b_ - 1.0;
    const double logNorm = math::logBeta(a_, b_);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = xs[i];
        out[i] = (x <= 0.0 || x >= 1.0)
                     ? -std::numeric_limits<double>::infinity()
                     : aM1 * std::log(x) + bM1 * std::log(1.0 - x)
                           - logNorm;
    }
}

double
Beta::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    return math::regularizedBeta(x, a_, b_);
}

double
Beta::mean() const
{
    return a_ / (a_ + b_);
}

double
Beta::variance() const
{
    double s = a_ + b_;
    return a_ * b_ / (s * s * (s + 1.0));
}

} // namespace random
} // namespace uncertain
