#include "random/mixture.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

namespace {

std::vector<double>
indexValues(std::size_t n)
{
    std::vector<double> values(n);
    std::iota(values.begin(), values.end(), 0.0);
    return values;
}

} // namespace

Mixture::Mixture(std::vector<DistributionPtr> components,
                 std::vector<double> weights)
    : components_(std::move(components)),
      selector_(indexValues(components_.size()), std::move(weights))
{
    for (const auto& component : components_) {
        UNCERTAIN_REQUIRE(component != nullptr,
                          "Mixture components must be non-null");
    }
}

double
Mixture::sample(Rng& rng) const
{
    return components_[selector_.sampleIndex(rng)]->sample(rng);
}

std::string
Mixture::name() const
{
    std::ostringstream out;
    out << "Mixture(" << components_.size() << " components)";
    return out.str();
}

double
Mixture::pdf(double x) const
{
    double total = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i)
        total += selector_.probabilities()[i] * components_[i]->pdf(x);
    return total;
}

double
Mixture::logPdf(double x) const
{
    return std::log(std::max(pdf(x), 1e-300));
}

double
Mixture::cdf(double x) const
{
    double total = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i)
        total += selector_.probabilities()[i] * components_[i]->cdf(x);
    return total;
}

double
Mixture::mean() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i) {
        total += selector_.probabilities()[i]
                 * components_[i]->mean();
    }
    return total;
}

double
Mixture::variance() const
{
    // Law of total variance.
    double mu = mean();
    double total = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i) {
        double w = selector_.probabilities()[i];
        double mi = components_[i]->mean();
        total += w * (components_[i]->variance()
                      + (mi - mu) * (mi - mu));
    }
    return total;
}

double
Mixture::weightOf(std::size_t index) const
{
    UNCERTAIN_REQUIRE(index < components_.size(),
                      "Mixture component index out of range");
    return selector_.probabilities()[index];
}

} // namespace random
} // namespace uncertain
