/**
 * @file
 * Cauchy distribution. Deliberately pathological: no mean or
 * variance exist, which exercises the library's behaviour when an
 * estimate's error is so heavy-tailed that E() is meaningless and
 * only conditionals (which remain well-defined) make sense.
 */

#ifndef UNCERTAIN_RANDOM_CAUCHY_HPP
#define UNCERTAIN_RANDOM_CAUCHY_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Cauchy(location x0, scale gamma). */
class Cauchy : public Distribution
{
  public:
    /** Requires gamma > 0. */
    Cauchy(double location, double scale);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    /** Throws: the Cauchy mean does not exist. */
    double mean() const override;
    /** Throws: the Cauchy variance does not exist. */
    double variance() const override;

    double location() const { return location_; }
    double scale() const { return scale_; }

  private:
    double location_;
    double scale_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_CAUCHY_HPP
