#include "random/weibull.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

Weibull::Weibull(double shape, double scale)
    : shape_(shape), scale_(scale)
{
    UNCERTAIN_REQUIRE(shape > 0.0, "Weibull requires shape > 0");
    UNCERTAIN_REQUIRE(scale > 0.0, "Weibull requires scale > 0");
}

double
Weibull::sample(Rng& rng) const
{
    // Inverse CDF.
    return scale_
           * std::pow(-std::log(rng.nextDoubleOpen()), 1.0 / shape_);
}

std::string
Weibull::name() const
{
    std::ostringstream out;
    out << "Weibull(" << shape_ << ", " << scale_ << ")";
    return out.str();
}

double
Weibull::pdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    if (x == 0.0)
        return shape_ < 1.0
                   ? std::numeric_limits<double>::infinity()
                   : (shape_ == 1.0 ? 1.0 / scale_ : 0.0);
    double z = x / scale_;
    return shape_ / scale_ * std::pow(z, shape_ - 1.0)
           * std::exp(-std::pow(z, shape_));
}

double
Weibull::logPdf(double x) const
{
    if (x <= 0.0)
        return -std::numeric_limits<double>::infinity();
    double z = x / scale_;
    return std::log(shape_ / scale_)
           + (shape_ - 1.0) * std::log(z) - std::pow(z, shape_);
}

double
Weibull::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double
Weibull::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p < 1.0,
                      "Weibull::quantile requires p in [0, 1)");
    return scale_ * std::pow(-std::log(1.0 - p), 1.0 / shape_);
}

double
Weibull::mean() const
{
    return scale_ * std::exp(math::logGamma(1.0 + 1.0 / shape_));
}

double
Weibull::variance() const
{
    double g1 = std::exp(math::logGamma(1.0 + 1.0 / shape_));
    double g2 = std::exp(math::logGamma(1.0 + 2.0 / shape_));
    return scale_ * scale_ * (g2 - g1 * g1);
}

} // namespace random
} // namespace uncertain
