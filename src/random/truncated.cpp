#include "random/truncated.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

Truncated::Truncated(DistributionPtr base, double lo, double hi)
    : base_(std::move(base)), lo_(lo), hi_(hi), cdfLo_(0.0), cdfHi_(1.0),
      analytic_(false)
{
    UNCERTAIN_REQUIRE(base_ != nullptr, "Truncated requires a base");
    UNCERTAIN_REQUIRE(lo < hi, "Truncated requires lo < hi");
    try {
        cdfLo_ = base_->cdf(lo_);
        cdfHi_ = base_->cdf(hi_);
        analytic_ = true;
    } catch (const Error&) {
        // Base has no analytic cdf: fall back to rejection sampling.
        analytic_ = false;
    }
    // Outside the try block: this must not be mistaken for a missing
    // cdf and silently swallowed.
    if (analytic_) {
        UNCERTAIN_REQUIRE(cdfHi_ > cdfLo_,
                          "Truncated: base has no mass in [lo, hi]");
    }
}

double
Truncated::sample(Rng& rng) const
{
    if (analytic_) {
        try {
            double u = cdfLo_ + (cdfHi_ - cdfLo_) * rng.nextDouble();
            return base_->quantile(u);
        } catch (const Error&) {
            // Base has cdf but no quantile: fall through to rejection.
        }
    }
    constexpr int kMaxRejections = 1 << 20;
    for (int i = 0; i < kMaxRejections; ++i) {
        double x = base_->sample(rng);
        if (x >= lo_ && x <= hi_)
            return x;
    }
    throw Error("Truncated::sample: rejection failed; the base "
                "distribution has (almost) no mass in [lo, hi]");
}

std::string
Truncated::name() const
{
    std::ostringstream out;
    out << "Truncated(" << base_->name() << ", [" << lo_ << ", " << hi_
        << "])";
    return out.str();
}

double
Truncated::pdf(double x) const
{
    if (x < lo_ || x > hi_)
        return 0.0;
    UNCERTAIN_REQUIRE(analytic_,
                      "Truncated::pdf requires an analytic base cdf");
    return base_->pdf(x) / (cdfHi_ - cdfLo_);
}

double
Truncated::logPdf(double x) const
{
    if (x < lo_ || x > hi_)
        return -std::numeric_limits<double>::infinity();
    UNCERTAIN_REQUIRE(analytic_,
                      "Truncated::logPdf requires an analytic base cdf");
    return base_->logPdf(x) - std::log(cdfHi_ - cdfLo_);
}

void
Truncated::logPdfMany(const double* xs, double* out,
                      std::size_t n) const
{
    UNCERTAIN_REQUIRE(analytic_,
                      "Truncated::logPdf requires an analytic base cdf");
    // One vectorized base pass, then the hoisted log mass and the
    // support mask; in-support values are bit-identical to logPdf.
    base_->logPdfMany(xs, out, n);
    const double logMass = std::log(cdfHi_ - cdfLo_);
    for (std::size_t i = 0; i < n; ++i) {
        if (xs[i] < lo_ || xs[i] > hi_)
            out[i] = -std::numeric_limits<double>::infinity();
        else
            out[i] = out[i] - logMass;
    }
}

double
Truncated::cdf(double x) const
{
    UNCERTAIN_REQUIRE(analytic_,
                      "Truncated::cdf requires an analytic base cdf");
    if (x <= lo_)
        return 0.0;
    if (x >= hi_)
        return 1.0;
    return (base_->cdf(x) - cdfLo_) / (cdfHi_ - cdfLo_);
}

double
Truncated::quantile(double p) const
{
    UNCERTAIN_REQUIRE(analytic_,
                      "Truncated::quantile requires an analytic base cdf");
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0,
                      "Truncated::quantile requires p in [0, 1]");
    return base_->quantile(cdfLo_ + p * (cdfHi_ - cdfLo_));
}

double
Truncated::mean() const
{
    // No closed form in general: numerically integrate over [lo, hi]
    // using the base pdf (Simpson's rule on a fine grid).
    UNCERTAIN_REQUIRE(analytic_,
                      "Truncated::mean requires an analytic base cdf");
    constexpr int kIntervals = 2048;
    double h = (hi_ - lo_) / kIntervals;
    double total = 0.0;
    for (int i = 0; i <= kIntervals; ++i) {
        double x = lo_ + h * i;
        double w = (i == 0 || i == kIntervals) ? 1.0
                   : (i % 2 == 1)              ? 4.0
                                               : 2.0;
        total += w * x * pdf(x);
    }
    return total * h / 3.0;
}

double
Truncated::variance() const
{
    UNCERTAIN_REQUIRE(analytic_,
                      "Truncated::variance requires an analytic base cdf");
    double mu = mean();
    constexpr int kIntervals = 2048;
    double h = (hi_ - lo_) / kIntervals;
    double total = 0.0;
    for (int i = 0; i <= kIntervals; ++i) {
        double x = lo_ + h * i;
        double w = (i == 0 || i == kIntervals) ? 1.0
                   : (i % 2 == 1)              ? 4.0
                                               : 2.0;
        double d = x - mu;
        total += w * d * d * pdf(x);
    }
    return total * h / 3.0;
}

} // namespace random
} // namespace uncertain
