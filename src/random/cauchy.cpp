#include "random/cauchy.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

Cauchy::Cauchy(double location, double scale)
    : location_(location), scale_(scale)
{
    UNCERTAIN_REQUIRE(scale > 0.0, "Cauchy requires scale > 0");
}

double
Cauchy::sample(Rng& rng) const
{
    // Inverse CDF; the open uniform avoids the poles of tan.
    return location_
           + scale_ * std::tan(M_PI * (rng.nextDoubleOpen() - 0.5));
}

std::string
Cauchy::name() const
{
    std::ostringstream out;
    out << "Cauchy(" << location_ << ", " << scale_ << ")";
    return out.str();
}

double
Cauchy::pdf(double x) const
{
    double z = (x - location_) / scale_;
    return 1.0 / (M_PI * scale_ * (1.0 + z * z));
}

double
Cauchy::logPdf(double x) const
{
    double z = (x - location_) / scale_;
    return -std::log(M_PI * scale_) - std::log1p(z * z);
}

double
Cauchy::cdf(double x) const
{
    return 0.5
           + std::atan((x - location_) / scale_) / M_PI;
}

double
Cauchy::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p > 0.0 && p < 1.0,
                      "Cauchy::quantile requires p in (0, 1)");
    return location_ + scale_ * std::tan(M_PI * (p - 0.5));
}

double
Cauchy::mean() const
{
    notSupported("mean (undefined for Cauchy)");
}

double
Cauchy::variance() const
{
    notSupported("variance (undefined for Cauchy)");
}

} // namespace random
} // namespace uncertain
