/**
 * @file
 * Finite discrete distribution with O(1) sampling via Walker's alias
 * method. This is the "simple map from value to probability" storage
 * the paper contrasts with sampling functions (section 3.2) — we
 * provide it both as a distribution and as the backing store for
 * discrete posteriors in src/inference.
 */

#ifndef UNCERTAIN_RANDOM_DISCRETE_HPP
#define UNCERTAIN_RANDOM_DISCRETE_HPP

#include <cstddef>
#include <vector>

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/**
 * Distribution over a finite set of real values with given weights.
 * Weights are normalized at construction.
 */
class Discrete : public Distribution
{
  public:
    /**
     * Requires values.size() == weights.size(), at least one entry,
     * all weights >= 0, and a positive total weight.
     */
    Discrete(std::vector<double> values, std::vector<double> weights);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;

    /** Sample the index of a value rather than the value itself. */
    std::size_t sampleIndex(Rng& rng) const;

    bool
    finiteSupport(std::vector<double>& values,
                  std::vector<double>& probabilities) const override
    {
        values = values_;
        probabilities = probs_;
        return true;
    }

    const std::vector<double>& values() const { return values_; }
    const std::vector<double>& probabilities() const { return probs_; }

  private:
    void buildAliasTable();

    std::vector<double> values_;
    std::vector<double> probs_;
    std::vector<double> aliasProb_;
    std::vector<std::size_t> aliasIndex_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_DISCRETE_HPP
