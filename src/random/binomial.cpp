#include "random/binomial.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

Binomial::Binomial(std::uint32_t n, double p) : n_(n), p_(p)
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0,
                      "Binomial requires p in [0, 1]");
}

double
Binomial::sample(Rng& rng) const
{
    // Direct summation for small n; BG (geometric-skip) waiting-time
    // method when n is large but np is small; otherwise inversion of
    // the recurrence would be possible, but counting is adequate for
    // the sizes this library uses.
    if (p_ == 0.0)
        return 0.0;
    if (p_ == 1.0)
        return static_cast<double>(n_);

    if (n_ <= 64) {
        std::uint32_t count = 0;
        for (std::uint32_t i = 0; i < n_; ++i)
            count += rng.nextBool(p_) ? 1 : 0;
        return static_cast<double>(count);
    }

    double pUse = std::min(p_, 1.0 - p_);
    std::uint32_t successes = 0;
    if (static_cast<double>(n_) * pUse < 30.0) {
        // Geometric skips between successes.
        double logq = std::log(1.0 - pUse);
        double position = 0.0;
        for (;;) {
            position += std::floor(std::log(rng.nextDoubleOpen()) / logq)
                        + 1.0;
            if (position > static_cast<double>(n_))
                break;
            ++successes;
        }
    } else {
        // Counting loop: acceptable because our workloads keep n
        // modest; the interface hides the algorithm choice.
        for (std::uint32_t i = 0; i < n_; ++i)
            successes += rng.nextBool(pUse) ? 1 : 0;
    }
    if (pUse != p_)
        successes = n_ - successes;
    return static_cast<double>(successes);
}

std::string
Binomial::name() const
{
    std::ostringstream out;
    out << "Binomial(" << n_ << ", " << p_ << ")";
    return out.str();
}

double
Binomial::pdf(double x) const
{
    double k = std::round(x);
    if (k != x || k < 0.0 || k > static_cast<double>(n_))
        return 0.0;
    return std::exp(logPdf(x));
}

double
Binomial::logPdf(double x) const
{
    double k = std::round(x);
    if (k != x || k < 0.0 || k > static_cast<double>(n_))
        return -std::numeric_limits<double>::infinity();
    if (p_ == 0.0)
        return k == 0.0 ? 0.0 : -std::numeric_limits<double>::infinity();
    if (p_ == 1.0) {
        return k == static_cast<double>(n_)
                   ? 0.0
                   : -std::numeric_limits<double>::infinity();
    }
    double n = static_cast<double>(n_);
    double logChoose = math::logGamma(n + 1.0) - math::logGamma(k + 1.0)
                       - math::logGamma(n - k + 1.0);
    return logChoose + k * std::log(p_) + (n - k) * std::log(1.0 - p_);
}

double
Binomial::cdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    double k = std::floor(x);
    double n = static_cast<double>(n_);
    if (k >= n)
        return 1.0;
    if (p_ == 0.0)
        return 1.0;
    if (p_ == 1.0)
        return 0.0;
    // Pr[X <= k] = I_{1-p}(n - k, k + 1).
    return math::regularizedBeta(1.0 - p_, n - k, k + 1.0);
}

double
Binomial::mean() const
{
    return static_cast<double>(n_) * p_;
}

double
Binomial::variance() const
{
    return static_cast<double>(n_) * p_ * (1.0 - p_);
}

bool
Binomial::finiteSupport(std::vector<double>& values,
                        std::vector<double>& probabilities) const
{
    if (n_ > 4096)
        return false;
    values.resize(static_cast<std::size_t>(n_) + 1);
    probabilities.resize(values.size());
    for (std::size_t k = 0; k < values.size(); ++k) {
        values[k] = static_cast<double>(k);
        probabilities[k] = pdf(static_cast<double>(k));
    }
    return true;
}

} // namespace random
} // namespace uncertain
