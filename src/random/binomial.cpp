#include "random/binomial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

namespace {

/** Small-n regime: exact CDF-table inversion over {0, ..., n}. */
constexpr std::uint32_t kSmallN = 64;

/** Large-n regime boundary: BTPE needs n * min(p, 1-p) >= this. */
constexpr double kBtpeFloor = 30.0;

/**
 * Exact inversion table for n <= kSmallN, built for the reflected
 * probability r = min(p, 1-p) so the pmf recurrence starts from
 * (1-r)^n >= 2^-n, which cannot underflow at this size. One uniform
 * per draw; a linear scan is optimal here because the expected scan
 * length is the mean n*r + O(1) and n is at most 64.
 */
struct SmallInversion
{
    double cdf[kSmallN + 1];
    std::uint32_t n;

    void
    build(std::uint32_t nTrials, double r)
    {
        n = nTrials;
        const double q = 1.0 - r;
        const double s = r / q;
        double pk = std::pow(q, static_cast<double>(n));
        double cum = 0.0;
        for (std::uint32_t k = 0; k <= n; ++k) {
            cum += pk;
            cdf[k] = cum;
            pk *= s * static_cast<double>(n - k)
                  / static_cast<double>(k + 1);
        }
    }

    double
    draw(Rng& rng) const
    {
        // Scale by the accumulated total so residual rounding in the
        // recurrence cannot leave a sliver of u above the last cell.
        const double u = rng.nextDouble() * cdf[n];
        for (std::uint32_t k = 0; k < n; ++k) {
            if (u < cdf[k])
                return static_cast<double>(k);
        }
        return static_cast<double>(n);
    }
};

/**
 * BTPE (Kachitvichyanukul & Schmeiser, "Binomial Random Variate
 * Generation", CACM 1988) for n * r >= kBtpeFloor, r = min(p, 1-p):
 * a four-region hat — inscribed triangle (immediate accept),
 * parallelogram wedges, and two exponential tails — over the scaled
 * pmf. This implementation keeps the published envelope geometry but
 * replaces the Stirling-series squeeze of Step 5.2 with the exact
 * pmf-ratio product F(y)/F(m) = prod (A/i - s): candidates fall
 * within O(sqrt(n r q)) of the mode, so the product is short, and
 * the acceptance test is then exactly the target law rather than an
 * approximation — a property the certification harness
 * (src/stats/certify.hpp) leans on.
 */
struct BtpeState
{
    double nf;
    double r;
    double q;
    double xm;
    double xl;
    double xr;
    double p1;
    double p2;
    double p3;
    double p4;
    double c;
    double lamL;
    double lamR;
    double s;
    double bigA;
    long m;

    void
    build(std::uint32_t nTrials, double rUse)
    {
        nf = static_cast<double>(nTrials);
        r = rUse;
        q = 1.0 - r;
        const double fm = nf * r + r;
        m = static_cast<long>(std::floor(fm));
        const double nrq = nf * r * q;
        p1 = std::floor(2.195 * std::sqrt(nrq) - 4.6 * q) + 0.5;
        xm = static_cast<double>(m) + 0.5;
        xl = xm - p1;
        xr = xm + p1;
        c = 0.134 + 20.5 / (15.3 + static_cast<double>(m));
        double a = (fm - xl) / (fm - xl * r);
        lamL = a * (1.0 + 0.5 * a);
        a = (xr - fm) / (xr * q);
        lamR = a * (1.0 + 0.5 * a);
        p2 = p1 * (1.0 + 2.0 * c);
        p3 = p2 + c / lamL;
        p4 = p3 + c / lamR;
        s = r / q;
        bigA = s * (nf + 1.0);
    }

    double
    draw(Rng& rng) const
    {
        for (;;) {
            const double u = rng.nextDouble() * p4;
            double v = rng.nextDoubleOpen();
            double y;
            if (u <= p1) {
                // Inscribed triangle: always under the pmf, accept.
                return std::floor(xm - p1 * v + u);
            }
            if (u <= p2) {
                // Parallelogram wedge.
                const double x = xl + (u - p1) / c;
                v = v * c + 1.0 - std::fabs(xm - x) / p1;
                if (v > 1.0 || v <= 0.0)
                    continue;
                y = std::floor(x);
            } else if (u <= p3) {
                // Left exponential tail.
                y = std::floor(xl + std::log(v) / lamL);
                if (y < 0.0)
                    continue;
                v = v * (u - p2) * lamL;
            } else {
                // Right exponential tail.
                y = std::floor(xr - std::log(v) / lamR);
                if (y > nf)
                    continue;
                v = v * (u - p3) * lamR;
            }
            // Exact acceptance: v against pmf(y)/pmf(m) via the
            // ratio recurrence pmf(i)/pmf(i-1) = A/i - s.
            const long k = static_cast<long>(y);
            double f = 1.0;
            if (m < k) {
                for (long i = m + 1; i <= k; ++i)
                    f *= bigA / static_cast<double>(i) - s;
            } else if (m > k) {
                for (long i = k + 1; i <= m; ++i)
                    f /= bigA / static_cast<double>(i) - s;
            }
            if (v <= f)
                return y;
        }
    }
};

/** One geometric-skip (waiting-time) draw for large n, small n*r. */
inline double
geometricSkipDraw(Rng& rng, std::uint32_t n, double logq)
{
    double successes = 0.0;
    double position = 0.0;
    for (;;) {
        position +=
            std::floor(std::log(rng.nextDoubleOpen()) / logq) + 1.0;
        if (position > static_cast<double>(n))
            break;
        successes += 1.0;
    }
    return successes;
}

} // namespace

Binomial::Binomial(std::uint32_t n, double p) : n_(n), p_(p)
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0,
                      "Binomial requires p in [0, 1]");
}

double
Binomial::sample(Rng& rng) const
{
    if (p_ == 0.0)
        return 0.0;
    if (p_ == 1.0)
        return static_cast<double>(n_);

    const double r = std::min(p_, 1.0 - p_);
    double y;
    if (n_ <= kSmallN) {
        SmallInversion table;
        table.build(n_, r);
        y = table.draw(rng);
    } else if (static_cast<double>(n_) * r >= kBtpeFloor) {
        BtpeState btpe;
        btpe.build(n_, r);
        y = btpe.draw(rng);
    } else {
        y = geometricSkipDraw(rng, n_, std::log(1.0 - r));
    }
    if (r != p_)
        y = static_cast<double>(n_) - y;
    return y;
}

void
Binomial::sampleMany(Rng& rng, double* out, std::size_t count) const
{
    // Same three regimes as sample() with the per-draw setup (the
    // inversion table, the BTPE hat constants, log(1-r)) hoisted out
    // of the loop.
    if (p_ == 0.0) {
        std::fill(out, out + count, 0.0);
        return;
    }
    if (p_ == 1.0) {
        std::fill(out, out + count, static_cast<double>(n_));
        return;
    }

    const double r = std::min(p_, 1.0 - p_);
    if (n_ <= kSmallN) {
        SmallInversion table;
        table.build(n_, r);
        for (std::size_t i = 0; i < count; ++i)
            out[i] = table.draw(rng);
    } else if (static_cast<double>(n_) * r >= kBtpeFloor) {
        BtpeState btpe;
        btpe.build(n_, r);
        for (std::size_t i = 0; i < count; ++i)
            out[i] = btpe.draw(rng);
    } else {
        const double logq = std::log(1.0 - r);
        for (std::size_t i = 0; i < count; ++i)
            out[i] = geometricSkipDraw(rng, n_, logq);
    }
    if (r != p_) {
        const double nf = static_cast<double>(n_);
        for (std::size_t i = 0; i < count; ++i)
            out[i] = nf - out[i];
    }
}

std::string
Binomial::name() const
{
    std::ostringstream out;
    out << "Binomial(" << n_ << ", " << p_ << ")";
    return out.str();
}

double
Binomial::pdf(double x) const
{
    double k = std::round(x);
    if (k != x || k < 0.0 || k > static_cast<double>(n_))
        return 0.0;
    return std::exp(logPdf(x));
}

double
Binomial::logPdf(double x) const
{
    double k = std::round(x);
    if (k != x || k < 0.0 || k > static_cast<double>(n_))
        return -std::numeric_limits<double>::infinity();
    if (p_ == 0.0)
        return k == 0.0 ? 0.0 : -std::numeric_limits<double>::infinity();
    if (p_ == 1.0) {
        return k == static_cast<double>(n_)
                   ? 0.0
                   : -std::numeric_limits<double>::infinity();
    }
    double n = static_cast<double>(n_);
    double logChoose = math::logGamma(n + 1.0) - math::logGamma(k + 1.0)
                       - math::logGamma(n - k + 1.0);
    return logChoose + k * std::log(p_) + (n - k) * std::log(1.0 - p_);
}

void
Binomial::logPdfMany(const double* xs, double* out,
                     std::size_t count) const
{
    // Same arithmetic in the same order as logPdf with the
    // n-and-p-only terms (logGamma(n+1), log(p), log(1-p)) hoisted;
    // per-element values are bit-identical to the scalar logPdf.
    const double n = static_cast<double>(n_);
    const double negInf = -std::numeric_limits<double>::infinity();
    if (p_ == 0.0 || p_ == 1.0) {
        const double hit = p_ == 0.0 ? 0.0 : n;
        for (std::size_t i = 0; i < count; ++i) {
            const double k = std::round(xs[i]);
            out[i] = (k == xs[i] && k == hit) ? 0.0 : negInf;
        }
        return;
    }
    const double logGammaN1 = math::logGamma(n + 1.0);
    const double logP = std::log(p_);
    const double logQ = std::log(1.0 - p_);
    for (std::size_t i = 0; i < count; ++i) {
        const double k = std::round(xs[i]);
        if (k != xs[i] || k < 0.0 || k > n) {
            out[i] = negInf;
            continue;
        }
        const double logChoose = logGammaN1 - math::logGamma(k + 1.0)
                                 - math::logGamma(n - k + 1.0);
        out[i] = logChoose + k * logP + (n - k) * logQ;
    }
}

double
Binomial::cdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    double k = std::floor(x);
    double n = static_cast<double>(n_);
    if (k >= n)
        return 1.0;
    if (p_ == 0.0)
        return 1.0;
    if (p_ == 1.0)
        return 0.0;
    // Pr[X <= k] = I_{1-p}(n - k, k + 1).
    return math::regularizedBeta(1.0 - p_, n - k, k + 1.0);
}

double
Binomial::mean() const
{
    return static_cast<double>(n_) * p_;
}

double
Binomial::variance() const
{
    return static_cast<double>(n_) * p_ * (1.0 - p_);
}

bool
Binomial::finiteSupport(std::vector<double>& values,
                        std::vector<double>& probabilities) const
{
    if (n_ > 4096)
        return false;
    values.resize(static_cast<std::size_t>(n_) + 1);
    probabilities.resize(values.size());
    for (std::size_t k = 0; k < values.size(); ++k) {
        values[k] = static_cast<double>(k);
        probabilities[k] = pdf(static_cast<double>(k));
    }
    return true;
}

} // namespace random
} // namespace uncertain
