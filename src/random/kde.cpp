#include "random/kde.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "random/gaussian.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

namespace {

double
poolStddev(const std::vector<double>& pool)
{
    double mu = 0.0;
    for (double x : pool)
        mu += x;
    mu /= static_cast<double>(pool.size());
    double ss = 0.0;
    for (double x : pool) {
        double d = x - mu;
        ss += d * d;
    }
    return std::sqrt(ss / static_cast<double>(pool.size()));
}

} // namespace

GaussianKde::GaussianKde(std::vector<double> pool, double bandwidth)
    : pool_(std::move(pool)), bandwidth_(bandwidth)
{
    UNCERTAIN_REQUIRE(!pool_.empty(), "GaussianKde requires >= 1 sample");
    if (bandwidth_ <= 0.0) {
        double sd = poolStddev(pool_);
        if (sd <= 0.0)
            sd = 1e-6; // degenerate pool: give it a sliver of width
        bandwidth_ = 1.06 * sd
                     * std::pow(static_cast<double>(pool_.size()), -0.2);
    }
}

double
GaussianKde::sample(Rng& rng) const
{
    double center = pool_[static_cast<std::size_t>(
        rng.nextBelow(static_cast<std::uint64_t>(pool_.size())))];
    return center + bandwidth_ * Gaussian::standardSample(rng);
}

std::string
GaussianKde::name() const
{
    std::ostringstream out;
    out << "GaussianKde(" << pool_.size() << " samples, h=" << bandwidth_
        << ")";
    return out.str();
}

double
GaussianKde::pdf(double x) const
{
    double total = 0.0;
    for (double center : pool_)
        total += math::normalPdf((x - center) / bandwidth_);
    return total / (static_cast<double>(pool_.size()) * bandwidth_);
}

double
GaussianKde::logPdf(double x) const
{
    return std::log(std::max(pdf(x), 1e-300));
}

double
GaussianKde::cdf(double x) const
{
    double total = 0.0;
    for (double center : pool_)
        total += math::normalCdf((x - center) / bandwidth_);
    return total / static_cast<double>(pool_.size());
}

double
GaussianKde::mean() const
{
    double total = 0.0;
    for (double x : pool_)
        total += x;
    return total / static_cast<double>(pool_.size());
}

double
GaussianKde::variance() const
{
    double mu = mean();
    double ss = 0.0;
    for (double x : pool_) {
        double d = x - mu;
        ss += d * d;
    }
    return ss / static_cast<double>(pool_.size())
           + bandwidth_ * bandwidth_;
}

} // namespace random
} // namespace uncertain
