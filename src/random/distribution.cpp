#include "random/distribution.hpp"

#include <cmath>

#include "support/error.hpp"

namespace uncertain {
namespace random {

void
Distribution::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = sample(rng);
}

double
Distribution::pdf(double x) const
{
    return std::exp(logPdf(x));
}

double
Distribution::logPdf(double) const
{
    notSupported("logPdf");
}

void
Distribution::logPdfMany(const double* xs, double* out,
                         std::size_t n) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = logPdf(xs[i]);
}

double
Distribution::cdf(double) const
{
    notSupported("cdf");
}

double
Distribution::quantile(double) const
{
    notSupported("quantile");
}

double
Distribution::mean() const
{
    notSupported("mean");
}

double
Distribution::variance() const
{
    notSupported("variance");
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

void
Distribution::notSupported(const std::string& what) const
{
    throw Error(name() + " does not support " + what);
}

} // namespace random
} // namespace uncertain
