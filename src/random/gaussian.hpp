/**
 * @file
 * Gaussian (normal) distribution, sampled with the Box-Muller
 * transform the paper cites as its canonical Gaussian sampling
 * function (section 4.1).
 */

#ifndef UNCERTAIN_RANDOM_GAUSSIAN_HPP
#define UNCERTAIN_RANDOM_GAUSSIAN_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** N(mu, sigma^2). */
class Gaussian : public Distribution
{
  public:
    /** Requires sigma > 0. */
    Gaussian(double mu, double sigma);

    double sample(Rng& rng) const override;
    void sampleMany(Rng& rng, double* out, std::size_t n) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    void logPdfMany(const double* xs, double* out,
                    std::size_t n) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;

    double mu() const { return mu_; }
    double sigma() const { return sigma_; }

    /**
     * One standard normal deviate from the basic (trigonometric)
     * Box-Muller transform. Consumes two uniforms; the second deviate
     * of the pair is discarded so that the stream position is a pure
     * function of the draw count.
     */
    static double standardSample(Rng& rng);

    /**
     * Fill out[0..n) with standard normal deviates via the same
     * 128-layer ziggurat as sampleMany(). The bulk building block for
     * distributions assembled from normal columns (Gamma's squeeze
     * candidates, Student-t's numerator).
     */
    static void standardSampleMany(Rng& rng, double* out,
                                   std::size_t n);

  private:
    double mu_;
    double sigma_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_GAUSSIAN_HPP
