#include "random/student_t.hpp"

#include <cmath>
#include <sstream>

#include "random/gamma.hpp"
#include "random/gaussian.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

StudentT::StudentT(double nu) : nu_(nu)
{
    UNCERTAIN_REQUIRE(nu > 0.0, "StudentT requires nu > 0");
}

double
StudentT::sample(Rng& rng) const
{
    double z = Gaussian::standardSample(rng);
    double chi2 = 2.0 * Gamma::standardSample(rng, 0.5 * nu_);
    return z / std::sqrt(chi2 / nu_);
}

std::string
StudentT::name() const
{
    std::ostringstream out;
    out << "StudentT(" << nu_ << ")";
    return out.str();
}

double
StudentT::logPdf(double x) const
{
    double halfNuPlus = 0.5 * (nu_ + 1.0);
    return math::logGamma(halfNuPlus) - math::logGamma(0.5 * nu_)
           - 0.5 * std::log(nu_ * M_PI)
           - halfNuPlus * std::log1p(x * x / nu_);
}

double
StudentT::cdf(double x) const
{
    return math::studentTCdf(x, nu_);
}

double
StudentT::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p > 0.0 && p < 1.0,
                      "StudentT::quantile requires p in (0, 1)");
    if (p == 0.5)
        return 0.0;

    // Bisection on the monotone CDF; good enough for test-critical
    // values, which are computed once per test.
    double lo = -1.0;
    double hi = 1.0;
    while (cdf(lo) > p)
        lo *= 2.0;
    while (cdf(hi) < p)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (cdf(mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * std::max(1.0, std::fabs(hi)))
            break;
    }
    return 0.5 * (lo + hi);
}

double
StudentT::mean() const
{
    UNCERTAIN_REQUIRE(nu_ > 1.0, "StudentT mean requires nu > 1");
    return 0.0;
}

double
StudentT::variance() const
{
    UNCERTAIN_REQUIRE(nu_ > 2.0, "StudentT variance requires nu > 2");
    return nu_ / (nu_ - 2.0);
}

} // namespace random
} // namespace uncertain
