#include "random/student_t.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "random/gamma.hpp"
#include "random/gaussian.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

StudentT::StudentT(double nu) : nu_(nu)
{
    UNCERTAIN_REQUIRE(nu > 0.0, "StudentT requires nu > 0");
}

double
StudentT::sample(Rng& rng) const
{
    double z = Gaussian::standardSample(rng);
    double chi2 = 2.0 * Gamma::standardSample(rng, 0.5 * nu_);
    return z / std::sqrt(chi2 / nu_);
}

void
StudentT::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    // Same z / sqrt(chi2 / nu) construction as the scalar path with
    // both ingredients drawn as bulk columns: ziggurat normals for
    // the numerator, hoisted-constant gamma variates for the
    // chi-square denominator, combined block by block.
    constexpr std::size_t kBlock = 4096;
    double z[kBlock];
    double g[kBlock];
    const double halfNu = 0.5 * nu_;
    for (std::size_t base = 0; base < n; base += kBlock) {
        const std::size_t m = std::min(kBlock, n - base);
        Gaussian::standardSampleMany(rng, z, m);
        Gamma::standardSampleMany(rng, halfNu, g, m);
        for (std::size_t i = 0; i < m; ++i)
            out[base + i] = z[i] / std::sqrt(2.0 * g[i] / nu_);
    }
}

std::string
StudentT::name() const
{
    std::ostringstream out;
    out << "StudentT(" << nu_ << ")";
    return out.str();
}

double
StudentT::logPdf(double x) const
{
    double halfNuPlus = 0.5 * (nu_ + 1.0);
    return math::logGamma(halfNuPlus) - math::logGamma(0.5 * nu_)
           - 0.5 * std::log(nu_ * M_PI)
           - halfNuPlus * std::log1p(x * x / nu_);
}

void
StudentT::logPdfMany(const double* xs, double* out,
                     std::size_t n) const
{
    // Same arithmetic in the same order as logPdf with the
    // nu-dependent normalizer hoisted; per-element values are
    // bit-identical to the scalar logPdf.
    const double halfNuPlus = 0.5 * (nu_ + 1.0);
    const double norm = math::logGamma(halfNuPlus)
                        - math::logGamma(0.5 * nu_)
                        - 0.5 * std::log(nu_ * M_PI);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = xs[i];
        out[i] = norm - halfNuPlus * std::log1p(x * x / nu_);
    }
}

double
StudentT::cdf(double x) const
{
    return math::studentTCdf(x, nu_);
}

double
StudentT::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p > 0.0 && p < 1.0,
                      "StudentT::quantile requires p in (0, 1)");
    if (p == 0.5)
        return 0.0;

    // Bisection on the monotone CDF; good enough for test-critical
    // values, which are computed once per test.
    double lo = -1.0;
    double hi = 1.0;
    while (cdf(lo) > p)
        lo *= 2.0;
    while (cdf(hi) < p)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (cdf(mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * std::max(1.0, std::fabs(hi)))
            break;
    }
    return 0.5 * (lo + hi);
}

double
StudentT::mean() const
{
    UNCERTAIN_REQUIRE(nu_ > 1.0, "StudentT mean requires nu > 1");
    return 0.0;
}

double
StudentT::variance() const
{
    UNCERTAIN_REQUIRE(nu_ > 2.0, "StudentT variance requires nu > 2");
    return nu_ / (nu_ - 2.0);
}

} // namespace random
} // namespace uncertain
