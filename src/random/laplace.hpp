/**
 * @file
 * Laplace (double exponential) distribution: a heavier-tailed
 * alternative sensor-noise model.
 */

#ifndef UNCERTAIN_RANDOM_LAPLACE_HPP
#define UNCERTAIN_RANDOM_LAPLACE_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Laplace(mu, b): density (1/2b) exp(-|x - mu| / b). */
class Laplace : public Distribution
{
  public:
    /** Requires b > 0. */
    Laplace(double mu, double b);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;

    double mu() const { return mu_; }
    double b() const { return b_; }

  private:
    double mu_;
    double b_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_LAPLACE_HPP
