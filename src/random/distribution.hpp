/**
 * @file
 * Abstract interface for univariate probability distributions.
 *
 * Uncertain<T> represents distributions through sampling functions
 * (paper section 3.2/4.1); the classes in this module are the "expert
 * developer" side of that contract: each knows how to draw samples,
 * and, where tractable, evaluate its density, CDF, quantiles, and
 * moments. The analytic parts back the statistics tests and the
 * Bayesian reweighting in src/inference.
 */

#ifndef UNCERTAIN_RANDOM_DISTRIBUTION_HPP
#define UNCERTAIN_RANDOM_DISTRIBUTION_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace uncertain {
namespace random {

/**
 * A univariate real-valued distribution. Subclasses must implement
 * sample(); the analytic queries have throwing defaults because not
 * every distribution is tractable (the whole reason the paper adopts
 * sampling functions).
 */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample using @p rng. */
    virtual double sample(Rng& rng) const = 0;

    /**
     * Fill out[0..n) with independent samples. The default loops over
     * sample(); distributions with a cheaper amortized form (pairwise
     * Box-Muller, bulk uniform fills) override it. Bulk draws follow
     * the same law as scalar draws but need not consume the stream
     * identically, so out[i] is not guaranteed to equal the i-th
     * scalar sample(). The columnar batch kernels
     * (core/batch_plan.hpp) are the primary consumer.
     */
    virtual void sampleMany(Rng& rng, double* out, std::size_t n) const;

    /** Human-readable name, e.g. "Gaussian(0, 1)". */
    virtual std::string name() const = 0;

    /** Probability density (or mass) at @p x. */
    virtual double pdf(double x) const;

    /** Natural log of pdf(x); overridden where direct log is stabler. */
    virtual double logPdf(double x) const;

    /**
     * Fill out[0..n) with logPdf(xs[i]). The default loops over
     * logPdf(); distributions whose log density has loop-invariant
     * pieces (a Gaussian's log(sigma), a truncation's log mass)
     * override it to hoist them. Values are bit-identical to the
     * scalar logPdf. The vectorized importance-weight pass in
     * inference/reweight is the primary consumer.
     */
    virtual void logPdfMany(const double* xs, double* out,
                            std::size_t n) const;

    /** Cumulative distribution Pr[X <= x]. */
    virtual double cdf(double x) const;

    /** Inverse CDF for p in (0, 1). */
    virtual double quantile(double p) const;

    /** Expected value. */
    virtual double mean() const;

    /** Variance. */
    virtual double variance() const;

    /** Standard deviation; defaults to sqrt(variance()). */
    virtual double stddev() const;

    /** True when pdf/cdf/... are implemented for this distribution. */
    virtual bool hasDensity() const { return true; }

    /**
     * Discrete distributions with a small explicit support override
     * this: fill @p values / @p probabilities (parallel arrays,
     * probabilities summing to 1) and return true. Consumed by
     * core::fromDistribution to admit the leaf into the exact
     * enumeration backend (src/exact). Continuous and unbounded
     * distributions keep the default false.
     */
    virtual bool
    finiteSupport(std::vector<double>& values,
                  std::vector<double>& probabilities) const
    {
        (void)values;
        (void)probabilities;
        return false;
    }

  protected:
    /** Helper for defaults: throw Error naming the missing query. */
    [[noreturn]] void notSupported(const std::string& what) const;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_DISTRIBUTION_HPP
