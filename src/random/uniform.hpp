/**
 * @file
 * Continuous uniform distribution on [lo, hi).
 */

#ifndef UNCERTAIN_RANDOM_UNIFORM_HPP
#define UNCERTAIN_RANDOM_UNIFORM_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Uniform(lo, hi): constant density 1/(hi - lo) on [lo, hi). */
class Uniform : public Distribution
{
  public:
    /** Requires lo < hi. */
    Uniform(double lo, double hi);

    double sample(Rng& rng) const override;
    void sampleMany(Rng& rng, double* out, std::size_t n) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;

    double lo() const { return lo_; }
    double hi() const { return hi_; }

  private:
    double lo_;
    double hi_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_UNIFORM_HPP
