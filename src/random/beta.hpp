/**
 * @file
 * Beta distribution, sampled as X/(X+Y) with gamma variates. The
 * paper notes Beta as the natural non-negative alternative noise
 * model for SensorLife (section 5.2).
 */

#ifndef UNCERTAIN_RANDOM_BETA_HPP
#define UNCERTAIN_RANDOM_BETA_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Beta(a, b) on (0, 1). */
class Beta : public Distribution
{
  public:
    /** Requires a > 0 and b > 0. */
    Beta(double a, double b);

    double sample(Rng& rng) const override;
    void sampleMany(Rng& rng, double* out, std::size_t n) const override;
    std::string name() const override;
    double logPdf(double x) const override;
    void logPdfMany(const double* xs, double* out,
                    std::size_t n) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;

    double a() const { return a_; }
    double b() const { return b_; }

  private:
    double a_;
    double b_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_BETA_HPP
