#include "random/triangular.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace random {

Triangular::Triangular(double lo, double mode, double hi)
    : lo_(lo), mode_(mode), hi_(hi)
{
    UNCERTAIN_REQUIRE(lo <= mode && mode <= hi && lo < hi,
                      "Triangular requires lo <= mode <= hi, lo < hi");
}

double
Triangular::sample(Rng& rng) const
{
    return quantile(rng.nextDouble());
}

std::string
Triangular::name() const
{
    std::ostringstream out;
    out << "Triangular(" << lo_ << ", " << mode_ << ", " << hi_ << ")";
    return out.str();
}

double
Triangular::pdf(double x) const
{
    if (x < lo_ || x > hi_)
        return 0.0;
    double span = hi_ - lo_;
    if (x < mode_)
        return 2.0 * (x - lo_) / (span * (mode_ - lo_));
    if (x > mode_)
        return 2.0 * (hi_ - x) / (span * (hi_ - mode_));
    return 2.0 / span;
}

double
Triangular::logPdf(double x) const
{
    double density = pdf(x);
    return density > 0.0 ? std::log(density)
                         : -std::numeric_limits<double>::infinity();
}

double
Triangular::cdf(double x) const
{
    if (x <= lo_)
        return 0.0;
    if (x >= hi_)
        return 1.0;
    double span = hi_ - lo_;
    if (x <= mode_) {
        double d = x - lo_;
        return d * d / (span * (mode_ - lo_));
    }
    double d = hi_ - x;
    return 1.0 - d * d / (span * (hi_ - mode_));
}

double
Triangular::quantile(double p) const
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0,
                      "Triangular::quantile requires p in [0, 1]");
    double span = hi_ - lo_;
    double fMode = (mode_ - lo_) / span;
    if (p < fMode)
        return lo_ + std::sqrt(p * span * (mode_ - lo_));
    return hi_ - std::sqrt((1.0 - p) * span * (hi_ - mode_));
}

double
Triangular::mean() const
{
    return (lo_ + mode_ + hi_) / 3.0;
}

double
Triangular::variance() const
{
    return (lo_ * lo_ + mode_ * mode_ + hi_ * hi_ - lo_ * mode_
            - lo_ * hi_ - mode_ * hi_)
           / 18.0;
}

} // namespace random
} // namespace uncertain
