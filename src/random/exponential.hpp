/**
 * @file
 * Exponential distribution with rate lambda.
 */

#ifndef UNCERTAIN_RANDOM_EXPONENTIAL_HPP
#define UNCERTAIN_RANDOM_EXPONENTIAL_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Exponential(lambda): density lambda e^{-lambda x} for x >= 0. */
class Exponential : public Distribution
{
  public:
    /** Requires lambda > 0. */
    explicit Exponential(double lambda);

    double sample(Rng& rng) const override;
    void sampleMany(Rng& rng, double* out, std::size_t n) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;

    double lambda() const { return lambda_; }

  private:
    double lambda_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_EXPONENTIAL_HPP
