/**
 * @file
 * Empirical distribution over a fixed sample pool.
 *
 * This is the representation Parakeet uses for the posterior
 * predictive distribution (paper section 5.3: "We execute hybrid
 * Monte Carlo offline and capture a fixed number of samples ... We use
 * these samples at runtime as a fixed pool for the sampling function")
 * and the output representation of sampling-importance-resampling in
 * src/inference.
 */

#ifndef UNCERTAIN_RANDOM_EMPIRICAL_HPP
#define UNCERTAIN_RANDOM_EMPIRICAL_HPP

#include <vector>

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/**
 * Uniform resampling from a fixed pool. Density queries are not
 * available (use GaussianKde for a smoothed density); CDF and
 * quantiles come from the order statistics.
 */
class Empirical : public Distribution
{
  public:
    /** Requires a non-empty pool. */
    explicit Empirical(std::vector<double> pool);

    double sample(Rng& rng) const override;
    void sampleMany(Rng& rng, double* out,
                    std::size_t n) const override;
    std::string name() const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;
    bool hasDensity() const override { return false; }

    const std::vector<double>& pool() const { return pool_; }
    std::size_t size() const { return pool_.size(); }

  private:
    std::vector<double> pool_;
    std::vector<double> sorted_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_EMPIRICAL_HPP
