/**
 * @file
 * Student-t distribution, used by the statistics module for
 * small-sample confidence intervals.
 */

#ifndef UNCERTAIN_RANDOM_STUDENT_T_HPP
#define UNCERTAIN_RANDOM_STUDENT_T_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/** Student-t with nu degrees of freedom. */
class StudentT : public Distribution
{
  public:
    /** Requires nu > 0. */
    explicit StudentT(double nu);

    double sample(Rng& rng) const override;
    void sampleMany(Rng& rng, double* out, std::size_t n) const override;
    std::string name() const override;
    double logPdf(double x) const override;
    void logPdfMany(const double* xs, double* out,
                    std::size_t n) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;

    double nu() const { return nu_; }

  private:
    double nu_;
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_STUDENT_T_HPP
