/**
 * @file
 * Truncation decorator: restricts any distribution to [lo, hi].
 * Used for domain-knowledge priors such as "humans walk between 0 and
 * 10 mph" (paper section 5.1).
 */

#ifndef UNCERTAIN_RANDOM_TRUNCATED_HPP
#define UNCERTAIN_RANDOM_TRUNCATED_HPP

#include "random/distribution.hpp"

namespace uncertain {
namespace random {

/**
 * Truncated(base, lo, hi): the conditional law of the base
 * distribution given lo <= X <= hi. Sampling uses inverse-CDF when
 * the base supports quantiles, otherwise rejection.
 */
class Truncated : public Distribution
{
  public:
    /**
     * Requires lo < hi and that the base assigns nonzero probability
     * to [lo, hi] (checked when the base supports cdf()).
     */
    Truncated(DistributionPtr base, double lo, double hi);

    double sample(Rng& rng) const override;
    std::string name() const override;
    double pdf(double x) const override;
    double logPdf(double x) const override;
    void logPdfMany(const double* xs, double* out,
                    std::size_t n) const override;
    double cdf(double x) const override;
    double quantile(double p) const override;
    double mean() const override;
    double variance() const override;

    double lo() const { return lo_; }
    double hi() const { return hi_; }

  private:
    DistributionPtr base_;
    double lo_;
    double hi_;
    double cdfLo_;   //!< base cdf at lo (when available)
    double cdfHi_;   //!< base cdf at hi (when available)
    bool analytic_;  //!< base supports cdf/quantile
};

} // namespace random
} // namespace uncertain

#endif // UNCERTAIN_RANDOM_TRUNCATED_HPP
