#include "random/gamma.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "random/gaussian.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

Gamma::Gamma(double shape, double rate) : shape_(shape), rate_(rate)
{
    UNCERTAIN_REQUIRE(shape > 0.0, "Gamma requires shape > 0");
    UNCERTAIN_REQUIRE(rate > 0.0, "Gamma requires rate > 0");
}

double
Gamma::standardSample(Rng& rng, double shape)
{
    // Marsaglia & Tsang (2000). For shape < 1, boost to shape + 1 and
    // scale by u^{1/shape}.
    if (shape < 1.0) {
        double u = rng.nextDoubleOpen();
        return standardSample(rng, shape + 1.0)
               * std::pow(u, 1.0 / shape);
    }

    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x;
        double v;
        do {
            x = Gaussian::standardSample(rng);
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        double u = rng.nextDoubleOpen();
        double x2 = x * x;
        if (u < 1.0 - 0.0331 * x2 * x2)
            return d * v;
        if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v)))
            return d * v;
    }
}

namespace {

/**
 * Block-refilled deviate feeds for the bulk squeeze loop: candidate
 * normals through the ziggurat bulk path, open uniforms through
 * fillDoubleOpen. Rejection consumes a data-dependent number of
 * deviates, which the bulk contract permits (same law, different
 * stream schedule than the scalar path).
 */
struct SqueezeFeed
{
    static constexpr std::size_t kBuf = 1024;
    double normals[kBuf];
    double uniforms[kBuf];
    std::size_t normalPos = kBuf;
    std::size_t uniformPos = kBuf;

    double
    nextNormal(Rng& rng)
    {
        if (normalPos == kBuf) {
            Gaussian::standardSampleMany(rng, normals, kBuf);
            normalPos = 0;
        }
        return normals[normalPos++];
    }

    double
    nextUniform(Rng& rng)
    {
        if (uniformPos == kBuf) {
            rng.fillDoubleOpen(uniforms, kBuf);
            uniformPos = 0;
        }
        return uniforms[uniformPos++];
    }
};

} // namespace

double
Gamma::sample(Rng& rng) const
{
    return standardSample(rng, shape_) / rate_;
}

void
Gamma::standardSampleMany(Rng& rng, double shape, double* out,
                          std::size_t n)
{
    if (shape < 1.0) {
        // Boost to shape + 1, then scale by u^{1/shape}: the standard
        // small-shape correction, applied as a second vectorized pass
        // over the boosted column.
        standardSampleMany(rng, shape + 1.0, out, n);
        const double invShape = 1.0 / shape;
        constexpr std::size_t kBuf = 1024;
        double uniforms[kBuf];
        for (std::size_t base = 0; base < n; base += kBuf) {
            const std::size_t m = std::min(kBuf, n - base);
            rng.fillDoubleOpen(uniforms, m);
            for (std::size_t i = 0; i < m; ++i)
                out[base + i] *= std::pow(uniforms[i], invShape);
        }
        return;
    }

    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    SqueezeFeed feed;
    for (std::size_t i = 0; i < n; ++i) {
        for (;;) {
            double x;
            double v;
            do {
                x = feed.nextNormal(rng);
                v = 1.0 + c * x;
            } while (v <= 0.0);
            v = v * v * v;
            const double u = feed.nextUniform(rng);
            const double x2 = x * x;
            if (u < 1.0 - 0.0331 * x2 * x2) {
                out[i] = d * v;
                break;
            }
            if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
                out[i] = d * v;
                break;
            }
        }
    }
}

void
Gamma::sampleMany(Rng& rng, double* out, std::size_t n) const
{
    standardSampleMany(rng, shape_, out, n);
    const double scale = 1.0 / rate_;
    for (std::size_t i = 0; i < n; ++i)
        out[i] *= scale;
}

std::string
Gamma::name() const
{
    std::ostringstream out;
    out << "Gamma(" << shape_ << ", " << rate_ << ")";
    return out.str();
}

double
Gamma::logPdf(double x) const
{
    if (x <= 0.0)
        return -std::numeric_limits<double>::infinity();
    return shape_ * std::log(rate_) + (shape_ - 1.0) * std::log(x)
           - rate_ * x - math::logGamma(shape_);
}

void
Gamma::logPdfMany(const double* xs, double* out, std::size_t n) const
{
    // Same arithmetic in the same order as logPdf with the
    // shape*log(rate) and logGamma(shape) terms hoisted; per-element
    // values are bit-identical to the scalar logPdf.
    const double shapeLogRate = shape_ * std::log(rate_);
    const double shapeM1 = shape_ - 1.0;
    const double logGammaShape = math::logGamma(shape_);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = xs[i];
        out[i] = x <= 0.0
                     ? -std::numeric_limits<double>::infinity()
                     : shapeLogRate + shapeM1 * std::log(x) - rate_ * x
                           - logGammaShape;
    }
}

double
Gamma::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return math::regularizedGammaP(shape_, rate_ * x);
}

double
Gamma::mean() const
{
    return shape_ / rate_;
}

double
Gamma::variance() const
{
    return shape_ / (rate_ * rate_);
}

} // namespace random
} // namespace uncertain
