#include "random/gamma.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "random/gaussian.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace random {

Gamma::Gamma(double shape, double rate) : shape_(shape), rate_(rate)
{
    UNCERTAIN_REQUIRE(shape > 0.0, "Gamma requires shape > 0");
    UNCERTAIN_REQUIRE(rate > 0.0, "Gamma requires rate > 0");
}

double
Gamma::standardSample(Rng& rng, double shape)
{
    // Marsaglia & Tsang (2000). For shape < 1, boost to shape + 1 and
    // scale by u^{1/shape}.
    if (shape < 1.0) {
        double u = rng.nextDoubleOpen();
        return standardSample(rng, shape + 1.0)
               * std::pow(u, 1.0 / shape);
    }

    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x;
        double v;
        do {
            x = Gaussian::standardSample(rng);
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        double u = rng.nextDoubleOpen();
        double x2 = x * x;
        if (u < 1.0 - 0.0331 * x2 * x2)
            return d * v;
        if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v)))
            return d * v;
    }
}

double
Gamma::sample(Rng& rng) const
{
    return standardSample(rng, shape_) / rate_;
}

std::string
Gamma::name() const
{
    std::ostringstream out;
    out << "Gamma(" << shape_ << ", " << rate_ << ")";
    return out.str();
}

double
Gamma::logPdf(double x) const
{
    if (x <= 0.0)
        return -std::numeric_limits<double>::infinity();
    return shape_ * std::log(rate_) + (shape_ - 1.0) * std::log(x)
           - rate_ * x - math::logGamma(shape_);
}

double
Gamma::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return math::regularizedGammaP(shape_, rate_ * x);
}

double
Gamma::mean() const
{
    return shape_ / rate_;
}

double
Gamma::variance() const
{
    return shape_ / (rate_ * rate_);
}

} // namespace random
} // namespace uncertain
