#include "life/variants.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "random/gaussian.hpp"
#include "random/mixture.hpp"

namespace uncertain {
namespace life {

namespace {

/** Invoke @p fn for every in-range neighbor of (x, y). */
template <typename F>
void
forEachNeighbor(const Board& board, std::size_t x, std::size_t y, F fn)
{
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0)
                continue;
            auto nx = static_cast<std::ptrdiff_t>(x) + dx;
            auto ny = static_cast<std::ptrdiff_t>(y) + dy;
            if (nx < 0 || ny < 0
                || nx >= static_cast<std::ptrdiff_t>(board.width())
                || ny >= static_cast<std::ptrdiff_t>(board.height())) {
                continue;
            }
            fn(static_cast<std::size_t>(nx),
               static_cast<std::size_t>(ny));
        }
    }
}

} // namespace

// ----------------------------------------------------------------------
// NaiveLife
// ----------------------------------------------------------------------

NaiveLife::NaiveLife(double sigma, NoiseModel model)
    : sensor_(sigma, model)
{}

CellDecision
NaiveLife::updateCell(const Board& board, std::size_t x, std::size_t y,
                      Rng& rng) const
{
    double sum = 0.0;
    forEachNeighbor(board, x, y, [&](std::size_t nx, std::size_t ny) {
        sum += sensor_.read(board, nx, ny, rng);
    });

    bool isAlive = board.alive(x, y);
    bool willBeAlive = isAlive;
    // The original conditionals, applied verbatim to a noisy float:
    // boundary counts become coin flips, and `sum == 3.0` is almost
    // surely false, silently disabling reproduction.
    if (isAlive && sum < 2.0)
        willBeAlive = false;
    else if (isAlive && 2.0 <= sum && sum <= 3.0)
        willBeAlive = true;
    else if (isAlive && sum > 3.0)
        willBeAlive = false;
    else if (!isAlive && sum == 3.0)
        willBeAlive = true;

    // One reading of each sensor == one sample of the sum.
    return {willBeAlive, 1};
}

// ----------------------------------------------------------------------
// SensorLife
// ----------------------------------------------------------------------

SensorLife::SensorLife(double sigma, core::ConditionalOptions options,
                       NoiseModel model)
    : sensor_(sigma, model), options_(options)
{}

Uncertain<double>
SensorLife::countLiveNeighbors(const Board& board, std::size_t x,
                               std::size_t y) const
{
    // The paper's CountLiveNeighbors: start from a point mass at 0
    // and fold each sensor in with the lifted addition operator.
    Uncertain<double> sum(0.0);
    forEachNeighbor(board, x, y, [&](std::size_t nx, std::size_t ny) {
        sum = sum + sensor_.senseNeighbor(board, nx, ny);
    });
    return sum;
}

bool
SensorLife::testCondition(const Uncertain<bool>& condition,
                          double threshold, Rng& rng) const
{
    return batch_ ? condition.pr(threshold, options_, rng, *batch_)
                  : condition.pr(threshold, options_, rng);
}

CellDecision
SensorLife::updateCell(const Board& board, std::size_t x, std::size_t y,
                       Rng& rng) const
{
    // Snapshot first: refineCount may itself draw samples (SirLife's
    // SIR proposal pool), and those belong in the per-cell cost.
    std::uint64_t before = core::evalStats().rootSamples;

    Uncertain<double> numLive =
        refineCount(countLiveNeighbors(board, x, y), rng);
    bool isAlive = board.alive(x, y);
    bool willBeAlive = isAlive;

    // Rounding semantics for the integer rule thresholds (see the
    // file comment): "< 2" means "counts to 0 or 1", i.e. < 1.5, and
    // the birth test "== 3" means "rounds to 3".
    if (isAlive) {
        if (testCondition(numLive < 1.5, 0.5, rng))
            willBeAlive = false;
        else if (testCondition((numLive >= 1.5) && (numLive <= 3.5),
                               0.5, rng))
            willBeAlive = true;
        else if (testCondition(numLive > 3.5, 0.5, rng))
            willBeAlive = false;
        // No test significant: the chain falls through and the cell
        // keeps its state (the ternary-logic default).
    } else {
        if (testCondition(approxEqual(numLive, 3.0, 0.5), 0.5, rng))
            willBeAlive = true;
    }

    std::uint64_t samples = core::evalStats().rootSamples - before;
    return {willBeAlive, samples};
}

// ----------------------------------------------------------------------
// BayesLife
// ----------------------------------------------------------------------

BayesLife::BayesLife(double sigma, core::ConditionalOptions options,
                     NoiseModel model)
    : SensorLife(sigma, options, model)
{}

Uncertain<double>
BayesLife::countLiveNeighbors(const Board& board, std::size_t x,
                              std::size_t y) const
{
    Uncertain<double> sum(0.0);
    forEachNeighbor(board, x, y, [&](std::size_t nx, std::size_t ny) {
        sum = sum + sensor_.senseNeighborFixed(board, nx, ny);
    });
    return sum;
}

// ----------------------------------------------------------------------
// ExactBayesLife
// ----------------------------------------------------------------------

ExactBayesLife::ExactBayesLife(double sigma,
                               core::ConditionalOptions options,
                               NoiseModel model)
    : SensorLife(sigma, options, model)
{}

Uncertain<double>
ExactBayesLife::countLiveNeighbors(const Board& board, std::size_t x,
                                   std::size_t y) const
{
    // Same fold as BayesLife, but over declared Bernoulli leaves:
    // the sum's joint support is finite, so every testCondition in
    // updateCell routes to the exact backend and draws no samples
    // (unless options_.exactRouting says Never).
    Uncertain<double> sum(0.0);
    forEachNeighbor(board, x, y, [&](std::size_t nx, std::size_t ny) {
        sum = sum + sensor_.senseNeighborExact(board, nx, ny);
    });
    return sum;
}

// ----------------------------------------------------------------------
// SirLife
// ----------------------------------------------------------------------

namespace {

/**
 * Domain knowledge for the neighbor count: it is (nearly) an integer
 * in 0..8. A mixture of narrow Gaussians at the integers keeps the
 * density positive everywhere (SIR needs overlapping support) while
 * concentrating the posterior at plausible counts.
 */
random::DistributionPtr
integerCountPrior()
{
    std::vector<random::DistributionPtr> components;
    std::vector<double> weights;
    for (int k = 0; k <= 8; ++k) {
        components.push_back(std::make_shared<random::Gaussian>(
            static_cast<double>(k), 0.25));
        weights.push_back(1.0);
    }
    return std::make_shared<random::Mixture>(std::move(components),
                                             std::move(weights));
}

} // namespace

SirLife::SirLife(double sigma, core::ConditionalOptions options,
                 inference::ReweightOptions reweight, NoiseModel model)
    : SensorLife(sigma, options, model),
      countPrior_(integerCountPrior()), reweight_(reweight)
{}

Uncertain<double>
SirLife::refineCount(const Uncertain<double>& numLive, Rng& rng) const
{
    // The batch engine routing piggybacks on useBatchEngine(): the
    // same sampler that evaluates the conditionals draws the SIR
    // proposal pool, and the posterior pool leaf keeps the
    // downstream conditional graphs columnar.
    inference::ReweightOptions options = reweight_;
    if (batch_ != nullptr)
        options.sampler = batch_;
    return inference::applyPrior(numLive, *countPrior_, options, rng);
}

// ----------------------------------------------------------------------
// JointBayesLife
// ----------------------------------------------------------------------

JointBayesLife::JointBayesLife(double sigma, std::size_t readsPerSample,
                               core::ConditionalOptions options)
    : SensorLife(sigma, options), readsPerSample_(readsPerSample)
{
    UNCERTAIN_REQUIRE(readsPerSample >= 1,
                      "JointBayesLife requires readsPerSample >= 1");
}

Uncertain<double>
JointBayesLife::countLiveNeighbors(const Board& board, std::size_t x,
                                   std::size_t y) const
{
    Uncertain<double> sum(0.0);
    forEachNeighbor(board, x, y, [&](std::size_t nx, std::size_t ny) {
        sum = sum
              + sensor_.senseNeighborJoint(board, nx, ny,
                                           readsPerSample_);
    });
    return sum;
}

CellDecision
JointBayesLife::updateCell(const Board& board, std::size_t x,
                           std::size_t y, Rng& rng) const
{
    CellDecision decision = SensorLife::updateCell(board, x, y, rng);
    decision.samplesDrawn *= readsPerSample_;
    return decision;
}

// ----------------------------------------------------------------------
// Harness
// ----------------------------------------------------------------------

RunStats
stepNoisy(Board& board, const LifeVariant& variant, Rng& rng)
{
    RunStats stats;
    Board next(board.width(), board.height());
    for (std::size_t y = 0; y < board.height(); ++y) {
        for (std::size_t x = 0; x < board.width(); ++x) {
            CellDecision decision = variant.updateCell(board, x, y, rng);
            bool exact = board.nextStateExact(x, y);
            ++stats.cellUpdates;
            if (decision.willBeAlive != exact)
                ++stats.wrongDecisions;
            stats.samplesDrawn += decision.samplesDrawn;
            next.setAlive(x, y, decision.willBeAlive);
        }
    }
    board = next;
    return stats;
}

RunStats
runNoisyGame(Board initial, const LifeVariant& variant,
             std::size_t generations, Rng& rng)
{
    RunStats total;
    Board board = std::move(initial);
    for (std::size_t g = 0; g < generations; ++g) {
        RunStats step = stepNoisy(board, variant, rng);
        total.cellUpdates += step.cellUpdates;
        total.wrongDecisions += step.wrongDecisions;
        total.samplesDrawn += step.samplesDrawn;
    }
    return total;
}

} // namespace life
} // namespace uncertain
