#include "life/noisy_sensor.hpp"

#include <cmath>

#include "random/beta.hpp"
#include "random/gaussian.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace life {

namespace {

// Beta(2, 2) has variance 1/20; scaling (X - 1/2) by sigma/sd gives
// a zero-mean bounded noise with standard deviation sigma.
const double kBeta22Stddev = std::sqrt(0.05);

} // namespace

NoisySensor::NoisySensor(double sigma, NoiseModel model)
    : sigma_(sigma), model_(model)
{
    UNCERTAIN_REQUIRE(sigma >= 0.0, "NoisySensor requires sigma >= 0");
}

double
NoisySensor::noise(Rng& rng) const
{
    if (sigma_ == 0.0)
        return 0.0;
    switch (model_) {
      case NoiseModel::Gaussian:
        return sigma_ * random::Gaussian::standardSample(rng);
      case NoiseModel::ShiftedBeta: {
        static const random::Beta beta(2.0, 2.0);
        return sigma_ / kBeta22Stddev * (beta.sample(rng) - 0.5);
      }
    }
    UNCERTAIN_ASSERT(false, "unknown noise model");
    return 0.0;
}

double
NoisySensor::read(const Board& board, std::size_t x, std::size_t y,
                  Rng& rng) const
{
    double truth = board.alive(x, y) ? 1.0 : 0.0;
    return truth + noise(rng);
}

Uncertain<double>
NoisySensor::senseNeighbor(const Board& board, std::size_t x,
                           std::size_t y) const
{
    double truth = board.alive(x, y) ? 1.0 : 0.0;
    // Capture *this by value into a small copy so the returned
    // variable does not dangle if the sensor goes away.
    NoisySensor self = *this;
    return Uncertain<double>::fromSampler(
        [truth, self](Rng& rng) { return truth + self.noise(rng); },
        "sensor");
}

Uncertain<double>
NoisySensor::senseNeighborFixed(const Board& board, std::size_t x,
                                std::size_t y) const
{
    // Equal priors and symmetric likelihoods around 0 and 1 make the
    // MAP hypothesis simply the nearer of the two; see the paper's
    // SenseNeighborFixed.
    return senseNeighbor(board, x, y).map(
        [](double raw) { return raw > 0.5 ? 1.0 : 0.0; }, "snap01");
}

double
NoisySensor::snapFlipProbability() const
{
    if (sigma_ == 0.0)
        return 0.0;
    switch (model_) {
      case NoiseModel::Gaussian: {
        // Truth 1 flips when 1 + noise <= 0.5, truth 0 when
        // noise > 0.5: both Phi(-0.5/sigma) for symmetric noise.
        static const random::Gaussian standard(0.0, 1.0);
        return standard.cdf(-0.5 / sigma_);
      }
      case NoiseModel::ShiftedBeta: {
        // noise = sigma/sd0 * (B - 0.5): flip iff B crosses 0.5 by
        // more than 0.5*sd0/sigma; Beta(2, 2) is symmetric so both
        // truth values flip with the same probability.
        static const random::Beta beta(2.0, 2.0);
        const double crossing = 0.5 - 0.5 * kBeta22Stddev / sigma_;
        return crossing <= 0.0 ? 0.0 : beta.cdf(crossing);
      }
    }
    UNCERTAIN_ASSERT(false, "unknown noise model");
    return 0.0;
}

Uncertain<double>
NoisySensor::senseNeighborExact(const Board& board, std::size_t x,
                                std::size_t y) const
{
    const double flip = snapFlipProbability();
    const double pOne =
        board.alive(x, y) ? 1.0 - flip : flip;
    return core::fromFiniteSupport<double>(
        {0.0, 1.0}, {1.0 - pOne, pOne}, "snapSensorExact");
}

Uncertain<double>
NoisySensor::senseNeighborJoint(const Board& board, std::size_t x,
                                std::size_t y, std::size_t reads) const
{
    UNCERTAIN_REQUIRE(reads >= 1,
                      "senseNeighborJoint requires reads >= 1");
    double truth = board.alive(x, y) ? 1.0 : 0.0;
    NoisySensor self = *this;
    return Uncertain<double>::fromSampler(
        [truth, self, reads](Rng& rng) {
            // With equal priors and equal-variance symmetric noise,
            // the joint MAP over m i.i.d. readings thresholds the
            // sample mean at 0.5.
            double total = 0.0;
            for (std::size_t i = 0; i < reads; ++i)
                total += truth + self.noise(rng);
            double mean = total / static_cast<double>(reads);
            return mean > 0.5 ? 1.0 : 0.0;
        },
        "jointSnap01");
}

} // namespace life
} // namespace uncertain
