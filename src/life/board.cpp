#include "life/board.hpp"

#include "support/error.hpp"

namespace uncertain {
namespace life {

bool
lifeRule(bool alive, int liveNeighbors)
{
    if (alive)
        return liveNeighbors == 2 || liveNeighbors == 3;
    return liveNeighbors == 3;
}

Board::Board(std::size_t width, std::size_t height)
    : width_(width), height_(height), cells_(width * height, 0)
{
    UNCERTAIN_REQUIRE(width >= 1 && height >= 1,
                      "Board requires positive dimensions");
}

std::size_t
Board::index(std::size_t x, std::size_t y) const
{
    UNCERTAIN_REQUIRE(x < width_ && y < height_,
                      "Board coordinates out of range");
    return y * width_ + x;
}

bool
Board::alive(std::size_t x, std::size_t y) const
{
    return cells_[index(x, y)] != 0;
}

void
Board::setAlive(std::size_t x, std::size_t y, bool state)
{
    cells_[index(x, y)] = state ? 1 : 0;
}

int
Board::countLiveNeighbors(std::size_t x, std::size_t y) const
{
    UNCERTAIN_REQUIRE(x < width_ && y < height_,
                      "Board coordinates out of range");
    int count = 0;
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0)
                continue;
            auto nx = static_cast<std::ptrdiff_t>(x) + dx;
            auto ny = static_cast<std::ptrdiff_t>(y) + dy;
            if (nx < 0 || ny < 0
                || nx >= static_cast<std::ptrdiff_t>(width_)
                || ny >= static_cast<std::ptrdiff_t>(height_)) {
                continue;
            }
            count += cells_[static_cast<std::size_t>(ny) * width_
                            + static_cast<std::size_t>(nx)];
        }
    }
    return count;
}

std::size_t
Board::population() const
{
    std::size_t total = 0;
    for (std::uint8_t c : cells_)
        total += c;
    return total;
}

void
Board::randomize(Rng& rng, double density)
{
    UNCERTAIN_REQUIRE(density >= 0.0 && density <= 1.0,
                      "density must be in [0, 1]");
    for (std::uint8_t& c : cells_)
        c = rng.nextBool(density) ? 1 : 0;
}

bool
Board::nextStateExact(std::size_t x, std::size_t y) const
{
    return lifeRule(alive(x, y), countLiveNeighbors(x, y));
}

Board
Board::stepExact() const
{
    Board next(width_, height_);
    for (std::size_t y = 0; y < height_; ++y)
        for (std::size_t x = 0; x < width_; ++x)
            next.setAlive(x, y, nextStateExact(x, y));
    return next;
}

std::string
Board::render() const
{
    std::string out;
    out.reserve((width_ + 1) * height_);
    for (std::size_t y = 0; y < height_; ++y) {
        for (std::size_t x = 0; x < width_; ++x)
            out.push_back(alive(x, y) ? '#' : '.');
        out.push_back('\n');
    }
    return out;
}

bool
Board::operator==(const Board& other) const
{
    return width_ == other.width_ && height_ == other.height_
           && cells_ == other.cells_;
}

} // namespace life
} // namespace uncertain
