/**
 * @file
 * Conway's Game of Life board and exact rules: the ground-truth
 * substrate of the SensorLife case study (paper section 5.2).
 */

#ifndef UNCERTAIN_LIFE_BOARD_HPP
#define UNCERTAIN_LIFE_BOARD_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace uncertain {
namespace life {

/**
 * A bounded (non-wrapping) Life board. Cells on corners and edges
 * simply have fewer neighbors, matching the paper's setup.
 */
class Board
{
  public:
    /** Requires positive dimensions. */
    Board(std::size_t width, std::size_t height);

    std::size_t width() const { return width_; }
    std::size_t height() const { return height_; }
    std::size_t cellCount() const { return width_ * height_; }

    /** Is the cell at (x, y) alive? Requires in-range coordinates. */
    bool alive(std::size_t x, std::size_t y) const;

    /** Set the state of the cell at (x, y). */
    void setAlive(std::size_t x, std::size_t y, bool state);

    /** Exact number of live neighbors of (x, y) (0..8). */
    int countLiveNeighbors(std::size_t x, std::size_t y) const;

    /** Number of live cells on the board. */
    std::size_t population() const;

    /** Randomize each cell alive with probability @p density. */
    void randomize(Rng& rng, double density = 0.35);

    /**
     * The exact next state of cell (x, y) under the classic rules:
     * survival with 2-3 neighbors, death by under/overpopulation,
     * birth with exactly 3.
     */
    bool nextStateExact(std::size_t x, std::size_t y) const;

    /** Apply the exact rules to every cell, producing the successor. */
    Board stepExact() const;

    /** Multi-line '#'/'.' rendering for debugging. */
    std::string render() const;

    bool operator==(const Board& other) const;

  private:
    std::size_t index(std::size_t x, std::size_t y) const;

    std::size_t width_;
    std::size_t height_;
    std::vector<std::uint8_t> cells_;
};

/**
 * The classic update rule as a pure function of the current state
 * and an exact integer neighbor count.
 */
bool lifeRule(bool alive, int liveNeighbors);

} // namespace life
} // namespace uncertain

#endif // UNCERTAIN_LIFE_BOARD_HPP
