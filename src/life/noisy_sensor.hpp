/**
 * @file
 * The noisy binary sensors of the SensorLife case study: each cell
 * senses whether a neighbor is alive, but the reading is the binary
 * truth plus zero-mean Gaussian noise (paper section 5.2).
 */

#ifndef UNCERTAIN_LIFE_NOISY_SENSOR_HPP
#define UNCERTAIN_LIFE_NOISY_SENSOR_HPP

#include "core/core.hpp"
#include "life/board.hpp"

namespace uncertain {
namespace life {

/**
 * The sensor noise law. The paper's construction uses zero-mean
 * Gaussian noise and notes that "choosing a non-negative noise
 * distribution, such as the Beta distribution, does not appreciably
 * change our results" — ShiftedBeta is that alternative: a zero-mean
 * scaled Beta(2, 2), bounded so readings cannot run away.
 */
enum class NoiseModel
{
    Gaussian,
    ShiftedBeta,
};

/**
 * A sensor bank over a board: reading neighbor s yields s + noise
 * with standard deviation sigma. Every read is an independent draw,
 * which is what lets SensorLife sample a sensor several times per
 * generation.
 */
class NoisySensor
{
  public:
    /** Requires sigma >= 0 (0 degenerates to a perfect sensor). */
    explicit NoisySensor(double sigma,
                         NoiseModel model = NoiseModel::Gaussian);

    /** One raw reading of the cell at (x, y). */
    double read(const Board& board, std::size_t x, std::size_t y,
                Rng& rng) const;

    /**
     * SenseNeighbor: the reading lifted into the uncertain type as a
     * leaf whose sampling function re-reads the sensor on each draw.
     */
    Uncertain<double> senseNeighbor(const Board& board, std::size_t x,
                                    std::size_t y) const;

    /**
     * SenseNeighborFixed (the BayesLife wrapper): each raw sample is
     * snapped to the maximum-a-posteriori hypothesis among s = 0 and
     * s = 1 under equal priors and the known Gaussian noise — which
     * reduces to "the closer of 0 or 1", i.e. thresholding at 0.5.
     */
    Uncertain<double> senseNeighborFixed(const Board& board,
                                         std::size_t x,
                                         std::size_t y) const;

    /**
     * The joint-likelihood extension the paper sketches for high
     * noise ("a better implementation could calculate joint
     * likelihoods with multiple samples, since each sample is drawn
     * from the same underlying distribution"): average @p reads raw
     * readings before snapping, cutting the per-draw flip rate from
     * Phi(-0.5/sigma) to Phi(-0.5*sqrt(reads)/sigma).
     */
    Uncertain<double> senseNeighborJoint(const Board& board,
                                         std::size_t x, std::size_t y,
                                         std::size_t reads) const;

    /**
     * Pr[one MAP-snapped reading reports the wrong state]: the law of
     * senseNeighborFixed is exactly Bernoulli — the snap maps the
     * continuous noise to {0, 1} — with this flip probability
     * (Phi(-0.5/sigma) for Gaussian noise, the scaled Beta(2, 2) CDF
     * for ShiftedBeta; 0 for a perfect sensor).
     */
    double snapFlipProbability() const;

    /**
     * SenseNeighborFixed as an exact-capable leaf: same Bernoulli law
     * as senseNeighborFixed, but declared as a finite-support table
     * over {0, 1} instead of a snap over an opaque continuous draw —
     * which admits the cell-update graph into the exact enumeration
     * backend (src/exact). ExactBayesLife builds its counts from
     * these.
     */
    Uncertain<double> senseNeighborExact(const Board& board,
                                         std::size_t x,
                                         std::size_t y) const;

    double sigma() const { return sigma_; }
    NoiseModel model() const { return model_; }

  private:
    /** One zero-mean noise draw with standard deviation sigma_. */
    double noise(Rng& rng) const;

    double sigma_;
    NoiseModel model_;
};

} // namespace life
} // namespace uncertain

#endif // UNCERTAIN_LIFE_NOISY_SENSOR_HPP
