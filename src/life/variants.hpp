/**
 * @file
 * The three noisy Games of Life of paper section 5.2:
 *
 *  - NaiveLife reads each sensor once, sums the raw readings, and
 *    applies the original integer-threshold conditionals verbatim to
 *    the real-valued sum. True counts sitting exactly on a rule
 *    boundary (2 or 3) become coin flips under any noise amplitude,
 *    and the birth test `sum == 3` almost never fires — which is why
 *    the paper measures a roughly constant error rate.
 *  - SensorLife wraps each sensor in Uncertain<double>; the sum is a
 *    distribution and every rule executes as a hypothesis test,
 *    re-sampling the sensors as needed. When no test is significant
 *    the else-if chain falls through and the cell keeps its state.
 *  - BayesLife adds domain knowledge: each raw sample is snapped to
 *    the MAP hypothesis in {0, 1} before summing (SenseNeighborFixed).
 *
 * Substitution note (documented in DESIGN.md): the paper's SensorLife
 * listing compares a continuous sum against the integer thresholds,
 * including `NumLive == 3`, which is a probability-zero event for
 * continuous noise. We read those comparisons with rounding
 * semantics — each integer threshold k becomes the interval boundary
 * k +/- 0.5 — which is the only interpretation under which the birth
 * rule can fire and SensorLife can outperform NaiveLife as Figure 14
 * reports. BayesLife's snapped counts are integer-valued, so for it
 * the two readings coincide.
 */

#ifndef UNCERTAIN_LIFE_VARIANTS_HPP
#define UNCERTAIN_LIFE_VARIANTS_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "core/core.hpp"
#include "inference/reweight.hpp"
#include "life/board.hpp"
#include "life/noisy_sensor.hpp"
#include "random/distribution.hpp"

namespace uncertain {
namespace life {

/** Outcome of deciding one cell. */
struct CellDecision
{
    bool willBeAlive;
    std::uint64_t samplesDrawn; //!< root draws of the neighbor sum
};

/** Interface shared by the three noisy implementations. */
class LifeVariant
{
  public:
    virtual ~LifeVariant() = default;

    virtual std::string name() const = 0;

    /** Decide the next state of cell (x, y) of @p board. */
    virtual CellDecision updateCell(const Board& board, std::size_t x,
                                    std::size_t y, Rng& rng) const = 0;
};

/** Single raw read per sensor, original conditionals verbatim. */
class NaiveLife : public LifeVariant
{
  public:
    explicit NaiveLife(double sigma,
                       NoiseModel model = NoiseModel::Gaussian);

    std::string name() const override { return "NaiveLife"; }
    CellDecision updateCell(const Board& board, std::size_t x,
                            std::size_t y, Rng& rng) const override;

  private:
    NoisySensor sensor_;
};

/** Uncertain<double> sensors, hypothesis-tested conditionals. */
class SensorLife : public LifeVariant
{
  public:
    SensorLife(double sigma, core::ConditionalOptions options = {},
               NoiseModel model = NoiseModel::Gaussian);

    std::string name() const override { return "SensorLife"; }
    CellDecision updateCell(const Board& board, std::size_t x,
                            std::size_t y, Rng& rng) const override;

    /**
     * Route the hypothesis-test conditionals through @p sampler's
     * columnar batch engine instead of the per-sample tree walk
     * (nullptr restores the tree walk). The sampler is borrowed, not
     * owned, and must outlive the variant; decisions follow the same
     * sequential tests either way. Cell graphs are rebuilt per update,
     * so this path exercises PlanCache churn by design.
     */
    void useBatchEngine(core::BatchSampler* sampler)
    {
        batch_ = sampler;
    }

  protected:
    /** numLive.pr(...) through the selected engine. */
    bool testCondition(const Uncertain<bool>& condition,
                       double threshold, Rng& rng) const;

    core::BatchSampler* batch_ = nullptr;
    /** The CountLiveNeighbors sum network for cell (x, y). */
    virtual Uncertain<double>
    countLiveNeighbors(const Board& board, std::size_t x,
                       std::size_t y) const;

    /**
     * Hook between the neighbor sum and the rule conditionals:
     * subclasses may replace the count with an improved estimate
     * (e.g. SirLife's reweighted posterior). The base implementation
     * returns the count unchanged and does not consume @p rng.
     */
    virtual Uncertain<double>
    refineCount(const Uncertain<double>& numLive, Rng& rng) const
    {
        (void)rng;
        return numLive;
    }

    NoisySensor sensor_;
    core::ConditionalOptions options_;
};

/** SensorLife with MAP-snapped sensor readings. */
class BayesLife : public SensorLife
{
  public:
    BayesLife(double sigma, core::ConditionalOptions options = {},
              NoiseModel model = NoiseModel::Gaussian);

    std::string name() const override { return "BayesLife"; }

  protected:
    Uncertain<double>
    countLiveNeighbors(const Board& board, std::size_t x,
                       std::size_t y) const override;
};

/**
 * BayesLife with its snapped sensors *declared* rather than sampled:
 * each MAP-snapped reading is exactly a Bernoulli over {0, 1} with
 * flip probability NoisySensor::snapFlipProbability(), so the cell's
 * count network is a finite-support graph (at most 2^8 = 256 joint
 * states over the 8 sensor leaves) that the exact enumeration
 * backend accepts. Every rule conditional is then answered in closed
 * form — same decisions as BayesLife at samplesDrawn == 0 — which
 * makes this variant both the fast path and the ground-truth oracle
 * for the sampled Life variants on small boards.
 */
class ExactBayesLife : public SensorLife
{
  public:
    ExactBayesLife(double sigma,
                   core::ConditionalOptions options = {},
                   NoiseModel model = NoiseModel::Gaussian);

    std::string name() const override { return "ExactBayesLife"; }

  protected:
    Uncertain<double>
    countLiveNeighbors(const Board& board, std::size_t x,
                       std::size_t y) const override;
};

/**
 * SensorLife whose neighbor count is improved with the paper's
 * section 3.5 Bayes operator instead of BayesLife's per-sample MAP
 * snap: the raw noisy sum is reweighted (sampling-importance-
 * resampling, inference/applyPrior) against a mixture-of-Gaussians
 * prior concentrated at the integer counts 0..8, and the rule
 * conditionals then hypothesis-test the resampled posterior. With
 * useBatchEngine() the SIR proposal pool, the posterior pool leaf,
 * and the conditional evidence all run through the columnar batch
 * engine — this is the "conditionals over posteriors" path the
 * tree-vs-batch SPRT parity suite exercises.
 */
class SirLife : public SensorLife
{
  public:
    SirLife(double sigma, core::ConditionalOptions options = {},
            inference::ReweightOptions reweight = countReweight(),
            NoiseModel model = NoiseModel::Gaussian);

    std::string name() const override { return "SirLife"; }

    /** Default SIR pool sizes for a per-cell count update. */
    static inference::ReweightOptions
    countReweight()
    {
        inference::ReweightOptions options;
        options.proposalSamples = 512;
        options.resampleSize = 256;
        return options;
    }

  protected:
    Uncertain<double> refineCount(const Uncertain<double>& numLive,
                                  Rng& rng) const override;

  private:
    random::DistributionPtr countPrior_;
    inference::ReweightOptions reweight_;
};

/**
 * BayesLife plus the paper's joint-likelihood extension: each PPD
 * draw of a sensor aggregates several raw readings before snapping,
 * which keeps the automaton essentially error-free past the
 * sigma = 0.4 breakdown point of per-sample snapping.
 */
class JointBayesLife : public SensorLife
{
  public:
    JointBayesLife(double sigma, std::size_t readsPerSample = 5,
                   core::ConditionalOptions options = {});

    std::string name() const override { return "JointBayesLife"; }

    /**
     * Accounts for the extra raw readings: samplesDrawn is scaled by
     * readsPerSample so sampling-cost comparisons stay honest.
     */
    CellDecision updateCell(const Board& board, std::size_t x,
                            std::size_t y, Rng& rng) const override;

  protected:
    Uncertain<double>
    countLiveNeighbors(const Board& board, std::size_t x,
                       std::size_t y) const override;

  private:
    std::size_t readsPerSample_;
};

/** Aggregate statistics of a noisy run. */
struct RunStats
{
    std::size_t cellUpdates = 0;
    std::size_t wrongDecisions = 0; //!< vs. the exact rule, per update
    std::uint64_t samplesDrawn = 0;

    double
    errorRate() const
    {
        return cellUpdates == 0
                   ? 0.0
                   : static_cast<double>(wrongDecisions)
                         / static_cast<double>(cellUpdates);
    }

    double
    samplesPerUpdate() const
    {
        return cellUpdates == 0
                   ? 0.0
                   : static_cast<double>(samplesDrawn)
                         / static_cast<double>(cellUpdates);
    }
};

/**
 * Advance @p board by one noisy generation under @p variant,
 * scoring each decision against the exact rule applied to the same
 * current board.
 */
RunStats stepNoisy(Board& board, const LifeVariant& variant, Rng& rng);

/**
 * Run @p generations noisy generations from @p initial (the paper
 * runs 25 generations of a random 20x20 board) and accumulate stats.
 */
RunStats runNoisyGame(Board initial, const LifeVariant& variant,
                      std::size_t generations, Rng& rng);

} // namespace life
} // namespace uncertain

#endif // UNCERTAIN_LIFE_VARIANTS_HPP
