#include "serve/transport.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/error.hpp"

namespace uncertain {
namespace serve {

// ----------------------------------------------------------------------
// LoopbackClient
// ----------------------------------------------------------------------

LoopbackClient::LoopbackClient(UncertainServer& server,
                               std::size_t inboxCapacity)
    : server_(&server), inbox_(std::make_shared<Inbox>())
{
    inbox_->capacity = inboxCapacity;
}

void
LoopbackClient::send(const Request& request)
{
    const auto frame = encodeRequest(request);
    // Strip the length prefix: submitFrame takes the payload the way
    // a stream transport would hand it over after reading the length.
    sendRaw(frame.data() + 4, frame.size() - 4);
}

void
LoopbackClient::sendRaw(const std::uint8_t* payload, std::size_t size)
{
    std::shared_ptr<Inbox> inbox = inbox_;
    server_->submitFrame(payload, size, [inbox](const Response& response) {
        auto frame = encodeResponse(response);
        std::lock_guard<std::mutex> lock(inbox->mutex);
        if (inbox->capacity > 0
            && inbox->frames.size() >= inbox->capacity) {
            ++inbox->dropped;
            return;
        }
        inbox->frames.push_back(std::move(frame));
        inbox->cv.notify_one();
    });
}

bool
LoopbackClient::receive(Response& out, std::chrono::milliseconds timeout)
{
    std::vector<std::uint8_t> frame;
    {
        std::unique_lock<std::mutex> lock(inbox_->mutex);
        if (!inbox_->cv.wait_for(lock, timeout, [this] {
                return !inbox_->frames.empty();
            })) {
            return false;
        }
        frame = std::move(inbox_->frames.front());
        inbox_->frames.pop_front();
    }
    return frame.size() >= 4
           && decodeResponse(frame.data() + 4, frame.size() - 4, out);
}

Response
LoopbackClient::call(const Request& request,
                     std::chrono::milliseconds timeout)
{
    send(request);
    Response response;
    UNCERTAIN_REQUIRE(receive(response, timeout),
                      "serve: loopback call timed out or reply frame "
                      "failed to decode");
    return response;
}

std::uint64_t
LoopbackClient::dropped() const
{
    std::lock_guard<std::mutex> lock(inbox_->mutex);
    return inbox_->dropped;
}

std::size_t
LoopbackClient::pendingReplies() const
{
    std::lock_guard<std::mutex> lock(inbox_->mutex);
    return inbox_->frames.size();
}

// ----------------------------------------------------------------------
// TcpTransport
// ----------------------------------------------------------------------

struct TcpTransport::Connection
{
    int fd = -1;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> outbound;
    bool closed = false;
    std::thread reader;
    std::thread writer;
};

namespace {

/** write() the whole buffer; false on error/peer reset. */
bool
writeAll(int fd, const std::uint8_t* data, std::size_t size)
{
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n = ::send(fd, data + sent, size - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/** Blocking read of exactly @p size bytes; false on EOF/error. */
bool
readAll(int fd, std::uint8_t* data, std::size_t size)
{
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, data + got, size - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        got += static_cast<std::size_t>(n);
    }
    return true;
}

std::uint32_t
readU32Le(const std::uint8_t* data)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{data[i]} << (8 * i);
    return v;
}

} // namespace

TcpTransport::TcpTransport(UncertainServer& server, std::uint16_t port)
    : server_(&server)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    UNCERTAIN_REQUIRE(listenFd_ >= 0,
                      "serve: cannot create listen socket");
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr)
            != 0
        || ::listen(listenFd_, 64) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        UNCERTAIN_REQUIRE(false,
                          "serve: cannot bind localhost listen socket");
    }
    socklen_t len = sizeof addr;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    acceptThread_ = std::thread([this] { acceptLoop(); });
}

TcpTransport::~TcpTransport()
{
    stop();
}

void
TcpTransport::stop()
{
    if (stopping_.exchange(true))
        return;
    if (listenFd_ >= 0) {
        // Shut the listener down so accept() returns; close joins it.
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::shared_ptr<Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections.swap(connections_);
    }
    for (const auto& connection : connections) {
        {
            std::lock_guard<std::mutex> lock(connection->mutex);
            connection->closed = true;
            if (connection->fd >= 0)
                ::shutdown(connection->fd, SHUT_RDWR);
        }
        connection->cv.notify_all();
        if (connection->reader.joinable())
            connection->reader.join();
        if (connection->writer.joinable())
            connection->writer.join();
        if (connection->fd >= 0) {
            ::close(connection->fd);
            connection->fd = -1;
        }
    }
}

std::uint64_t
TcpTransport::droppedReplies() const
{
    return droppedReplies_.load();
}

std::uint64_t
TcpTransport::connectionsAccepted() const
{
    return connectionsAccepted_.load();
}

void
TcpTransport::acceptLoop()
{
    while (!stopping_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener closed (stop) or broken
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto connection = std::make_shared<Connection>();
        connection->fd = fd;
        connectionsAccepted_.fetch_add(1);
        {
            std::lock_guard<std::mutex> lock(connectionsMutex_);
            connections_.push_back(connection);
        }
        connection->reader =
            std::thread([this, connection] { readerLoop(connection); });
        connection->writer =
            std::thread([this, connection] { writerLoop(connection); });
    }
}

void
TcpTransport::readerLoop(std::shared_ptr<Connection> connection)
{
    // The reply sink enqueues onto the connection's bounded outbound
    // queue; the writer thread owns the socket writes. A worker
    // calling the sink therefore never blocks on this peer's socket.
    auto sink = [this, connection](const Response& response) {
        auto frame = encodeResponse(response);
        bool notify = false;
        {
            std::lock_guard<std::mutex> lock(connection->mutex);
            if (connection->closed
                || connection->outbound.size()
                       >= kOutboundQueueFrames) {
                droppedReplies_.fetch_add(1);
            } else {
                connection->outbound.push_back(std::move(frame));
                notify = true;
            }
        }
        if (notify)
            connection->cv.notify_one();
    };

    std::vector<std::uint8_t> payload;
    for (;;) {
        std::uint8_t prefix[4];
        if (!readAll(connection->fd, prefix, sizeof prefix))
            break; // disconnect (possibly mid-flight)
        const std::uint32_t length = readU32Le(prefix);
        if (length > kMaxRequestFrameBytes) {
            // The stream offset can no longer be trusted; answer and
            // hang up.
            Response refusal;
            refusal.status = Status::TooLarge;
            sink(refusal);
            break;
        }
        payload.resize(length);
        if (length > 0
            && !readAll(connection->fd, payload.data(), length))
            break; // truncated frame / disconnect
        server_->submitFrame(payload.data(), payload.size(), sink);
    }

    {
        std::lock_guard<std::mutex> lock(connection->mutex);
        connection->closed = true;
    }
    connection->cv.notify_all();
}

void
TcpTransport::writerLoop(std::shared_ptr<Connection> connection)
{
    for (;;) {
        std::vector<std::uint8_t> frame;
        {
            std::unique_lock<std::mutex> lock(connection->mutex);
            connection->cv.wait(lock, [&] {
                return connection->closed
                       || !connection->outbound.empty();
            });
            if (connection->outbound.empty()) {
                // closed and drained
                return;
            }
            frame = std::move(connection->outbound.front());
            connection->outbound.pop_front();
        }
        if (!writeAll(connection->fd, frame.data(), frame.size())) {
            std::lock_guard<std::mutex> lock(connection->mutex);
            connection->closed = true;
            droppedReplies_.fetch_add(connection->outbound.size());
            connection->outbound.clear();
            return;
        }
    }
}

// ----------------------------------------------------------------------
// TcpClient
// ----------------------------------------------------------------------

TcpClient::TcpClient(std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    UNCERTAIN_REQUIRE(fd_ >= 0, "serve: cannot create client socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr)
        != 0) {
        ::close(fd_);
        fd_ = -1;
        UNCERTAIN_REQUIRE(false, "serve: cannot connect to localhost");
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

TcpClient::~TcpClient()
{
    closeAbruptly();
}

void
TcpClient::send(const Request& request)
{
    const auto frame = encodeRequest(request);
    sendBytes(frame.data(), frame.size());
}

void
TcpClient::sendBytes(const void* data, std::size_t size)
{
    UNCERTAIN_REQUIRE(fd_ >= 0, "serve: client socket is closed");
    UNCERTAIN_REQUIRE(
        writeAll(fd_, static_cast<const std::uint8_t*>(data), size),
        "serve: client write failed");
}

bool
TcpClient::receive(Response& out, std::chrono::milliseconds timeout)
{
    if (fd_ < 0)
        return false;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
        // A complete frame buffered already?
        if (buffer_.size() >= 4) {
            const std::uint32_t length = readU32Le(buffer_.data());
            if (buffer_.size() >= 4 + length) {
                const bool ok = decodeResponse(buffer_.data() + 4,
                                               length, out);
                buffer_.erase(buffer_.begin(),
                              buffer_.begin() + 4 + length);
                return ok;
            }
        }
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        if (remaining.count() <= 0)
            return false;
        pollfd pfd{fd_, POLLIN, 0};
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(remaining.count()));
        if (ready <= 0)
            return false;
        std::uint8_t chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n <= 0)
            return false; // server hung up
        buffer_.insert(buffer_.end(), chunk, chunk + n);
    }
}

Response
TcpClient::call(const Request& request,
                std::chrono::milliseconds timeout)
{
    send(request);
    Response response;
    UNCERTAIN_REQUIRE(receive(response, timeout),
                      "serve: tcp call timed out or reply frame "
                      "failed to decode");
    return response;
}

void
TcpClient::closeAbruptly()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace serve
} // namespace uncertain
