#include "serve/protocol.hpp"

#include <cstring>

namespace uncertain {
namespace serve {
namespace {

/** Incremental little-endian writer into a byte vector. */
class Writer
{
  public:
    explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

    void
    u16(std::uint16_t v)
    {
        out_.push_back(static_cast<std::uint8_t>(v));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        for (int shift = 0; shift < 32; shift += 8)
            out_.push_back(static_cast<std::uint8_t>(v >> shift));
    }

    void
    u64(std::uint64_t v)
    {
        for (int shift = 0; shift < 64; shift += 8)
            out_.push_back(static_cast<std::uint8_t>(v >> shift));
    }

    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

  private:
    std::vector<std::uint8_t>& out_;
};

/** Bounds-checked little-endian reader over a byte span. */
class Reader
{
  public:
    Reader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool
    u16(std::uint16_t& v)
    {
        if (size_ - pos_ < 2)
            return false;
        v = static_cast<std::uint16_t>(
            data_[pos_] | (std::uint16_t{data_[pos_ + 1]} << 8));
        pos_ += 2;
        return true;
    }

    bool
    u32(std::uint32_t& v)
    {
        if (size_ - pos_ < 4)
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
        pos_ += 4;
        return true;
    }

    bool
    u64(std::uint64_t& v)
    {
        if (size_ - pos_ < 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
        pos_ += 8;
        return true;
    }

    bool
    f64(double& v)
    {
        std::uint64_t bits = 0;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }

    bool
    done() const
    {
        return pos_ == size_;
    }

  private:
    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Prepend the u32 length of everything after the prefix. */
void
patchLengthPrefix(std::vector<std::uint8_t>& frame)
{
    const auto payload =
        static_cast<std::uint32_t>(frame.size() - 4);
    for (int i = 0; i < 4; ++i)
        frame[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(payload >> (8 * i));
}

} // namespace

std::vector<std::uint8_t>
encodeRequest(const Request& request)
{
    std::vector<std::uint8_t> frame(4, 0);
    Writer w(frame);
    w.u32(kRequestMagic);
    w.u16(kProtocolVersion);
    w.u16(static_cast<std::uint16_t>(request.opcode));
    w.u64(request.tenantId);
    w.u64(request.requestId);
    w.u32(request.modelId);
    w.u32(request.sampleCount);
    w.f64(request.threshold);
    w.u32(static_cast<std::uint32_t>(request.params.size()));
    for (double p : request.params)
        w.f64(p);
    patchLengthPrefix(frame);
    return frame;
}

std::vector<std::uint8_t>
encodeResponse(const Response& response)
{
    std::vector<std::uint8_t> frame(4, 0);
    Writer w(frame);
    w.u32(kResponseMagic);
    w.u16(kProtocolVersion);
    w.u16(static_cast<std::uint16_t>(response.status));
    w.u16(static_cast<std::uint16_t>(response.opcode));
    w.u16(response.decision);
    w.u64(response.tenantId);
    w.u64(response.requestId);
    w.f64(response.value);
    w.u64(response.samplesUsed);
    w.u32(static_cast<std::uint32_t>(response.samples.size()));
    for (double s : response.samples)
        w.f64(s);
    patchLengthPrefix(frame);
    return frame;
}

Status
decodeRequest(const std::uint8_t* data, std::size_t size, Request& out)
{
    out = Request{};
    Reader r(data, size);
    std::uint32_t magic = 0;
    std::uint16_t version = 0;
    std::uint16_t opcode = 0;
    if (!r.u32(magic) || magic != kRequestMagic)
        return Status::Malformed;
    if (!r.u16(version) || version != kProtocolVersion)
        return Status::Malformed;
    if (!r.u16(opcode))
        return Status::Malformed;
    if (!r.u64(out.tenantId) || !r.u64(out.requestId))
        return Status::Malformed;
    // Ids are recovered before the opcode is validated so error
    // replies from here down can still echo them.
    if (opcode < static_cast<std::uint16_t>(Opcode::Pr)
        || opcode > static_cast<std::uint16_t>(Opcode::Advise)) {
        return Status::BadRequest;
    }
    out.opcode = static_cast<Opcode>(opcode);
    std::uint32_t paramCount = 0;
    if (!r.u32(out.modelId) || !r.u32(out.sampleCount)
        || !r.f64(out.threshold) || !r.u32(paramCount)) {
        return Status::Malformed;
    }
    if (paramCount > kMaxParams)
        return Status::BadRequest;
    if (out.sampleCount > kMaxSampleCount)
        return Status::BadRequest;
    if (out.opcode == Opcode::TakeSamples
        && out.sampleCount > kMaxSamplesPerReply) {
        return Status::BadRequest;
    }
    out.params.resize(paramCount);
    for (std::uint32_t i = 0; i < paramCount; ++i) {
        if (!r.f64(out.params[i]))
            return Status::Malformed;
    }
    // Trailing bytes mean the sender's framing is out of step with
    // the payload it wrote; treat that as malformed rather than
    // silently ignoring the residue.
    if (!r.done())
        return Status::Malformed;
    return Status::Ok;
}

bool
decodeResponse(const std::uint8_t* data, std::size_t size,
               Response& out)
{
    out = Response{};
    Reader r(data, size);
    std::uint32_t magic = 0;
    std::uint16_t version = 0;
    std::uint16_t status = 0;
    std::uint16_t opcode = 0;
    std::uint32_t sampleCount = 0;
    if (!r.u32(magic) || magic != kResponseMagic)
        return false;
    if (!r.u16(version) || version != kProtocolVersion)
        return false;
    if (!r.u16(status)
        || status > static_cast<std::uint16_t>(Status::ShuttingDown))
        return false;
    out.status = static_cast<Status>(status);
    if (!r.u16(opcode))
        return false;
    out.opcode = static_cast<Opcode>(opcode);
    if (!r.u16(out.decision) || !r.u64(out.tenantId)
        || !r.u64(out.requestId) || !r.f64(out.value)
        || !r.u64(out.samplesUsed) || !r.u32(sampleCount)) {
        return false;
    }
    if (sampleCount > kMaxSamplesPerReply)
        return false;
    out.samples.resize(sampleCount);
    for (std::uint32_t i = 0; i < sampleCount; ++i) {
        if (!r.f64(out.samples[i]))
            return false;
    }
    return r.done();
}

} // namespace serve
} // namespace uncertain
