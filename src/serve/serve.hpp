/**
 * @file
 * Umbrella header for the serving layer: include this to get the
 * daemon (serve/server.hpp), the wire protocol (serve/protocol.hpp),
 * and the loopback/TCP transports (serve/transport.hpp).
 */

#ifndef UNCERTAIN_SERVE_SERVE_HPP
#define UNCERTAIN_SERVE_SERVE_HPP

#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

#endif // UNCERTAIN_SERVE_SERVE_HPP
