#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/operators.hpp"
#include "gps/walking.hpp"
#include "inference/reweight.hpp"
#include "random/gaussian.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace serve {
namespace {

/** Stream tag separating model-build streams from request streams. */
constexpr std::uint64_t kModelStreamTag = 0x6d6f64656cULL; // "model"

std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Order-sensitive hash of (modelId, params) for instance keys and
 *  build-stream derivation. */
std::uint64_t
hashModelParams(std::uint32_t modelId, const std::vector<double>& params)
{
    std::uint64_t h = mix64(0x9e3779b97f4a7c15ULL ^ modelId);
    for (double p : params) {
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof p);
        std::memcpy(&bits, &p, sizeof bits);
        h = mix64(h ^ bits);
    }
    return h;
}

bool
allFinite(const std::vector<double>& params)
{
    for (double p : params) {
        if (!std::isfinite(p))
            return false;
    }
    return true;
}

/**
 * Builtin model kModelGaussianChain: params [mu, sigma, depth, cut].
 * A Gaussian leaf pushed through a depth-deep elementwise chain; the
 * served law stays the analytic
 * Gaussian(mu + depth * kGaussianChainStep, sigma), so the
 * statistical shard can KS the served samples against a closed form.
 */
bool
buildGaussianChain(const std::vector<double>& params, Rng&,
                   ModelInstance& out)
{
    if (params.size() != 4 || !allFinite(params))
        return false;
    const double mu = params[0];
    const double sigma = params[1];
    const double depthRaw = params[2];
    const double cut = params[3];
    if (!(sigma > 0.0) || !(depthRaw >= 0.0 && depthRaw <= 256.0))
        return false;
    const int depth = static_cast<int>(depthRaw);

    Uncertain<double> x = core::fromDistribution(
        std::make_shared<random::Gaussian>(mu, sigma));
    for (int i = 0; i < depth; ++i)
        x = x + kGaussianChainStep;
    out.value = x.node();
    out.event = (x > cut).node();
    out.fast = (x > gps::kBriskWalkMph).node();
    out.slow = (x < gps::kBriskWalkMph).node();
    return true;
}

/**
 * Builtin model kModelGpsSpeed: params
 * [lat, lon, epsilon95, bearingRadians, distanceMeters, dtSeconds] —
 * one phone fix pair. The served value is the fig11 speed posterior:
 * speedFromFixes through the uncertain GPS library, improved by the
 * walking prior (SIR). The proposal pool draws exclusively from
 * @p buildRng, so a rebuilt instance is bit-identical.
 */
bool
buildGpsSpeed(const std::vector<double>& params, Rng& buildRng,
              ModelInstance& out)
{
    if (params.size() != 6 || !allFinite(params))
        return false;
    const double lat = params[0];
    const double lon = params[1];
    const double eps = params[2];
    const double bearing = params[3];
    const double distance = params[4];
    const double dt = params[5];
    if (!(eps > 0.0) || !(dt > 0.0) || !(distance >= 0.0)
        || std::fabs(lat) > 90.0 || std::fabs(lon) > 180.0) {
        return false;
    }

    const gps::GeoCoordinate start(lat, lon);
    const gps::GpsFix earlier{start, eps, 0.0};
    const gps::GpsFix later{gps::destination(start, bearing, distance),
                            eps, dt};
    Uncertain<double> speed = gps::speedFromFixes(earlier, later);
    Uncertain<double> improved =
        gps::improveSpeed(speed, inference::ReweightOptions{},
                          buildRng);
    out.value = improved.node();
    out.event = (improved > gps::kBriskWalkMph).node();
    out.fast = out.event;
    out.slow = (improved < gps::kBriskWalkMph).node();
    return true;
}

/** The semantic bounds decodeRequest enforces, re-checked for typed
 *  submits that bypass the codec. */
Status
validateRequest(const Request& request)
{
    if (request.opcode < Opcode::Pr || request.opcode > Opcode::Advise)
        return Status::BadRequest;
    if (request.params.size() > kMaxParams)
        return Status::BadRequest;
    if (request.sampleCount > kMaxSampleCount)
        return Status::BadRequest;
    if (request.opcode == Opcode::TakeSamples
        && request.sampleCount > kMaxSamplesPerReply) {
        return Status::BadRequest;
    }
    if (request.opcode == Opcode::Pr
        && !(request.threshold > 0.0 && request.threshold < 1.0)) {
        return Status::BadRequest;
    }
    return Status::Ok;
}

} // namespace

std::size_t
UncertainServer::InstanceKeyHash::operator()(const InstanceKey& key) const
{
    return static_cast<std::size_t>(
        hashModelParams(key.modelId, key.params));
}

UncertainServer::UncertainServer(ServerOptions options)
    : options_(std::move(options)),
      rootRng_(options_.seed),
      planCache_(std::make_shared<core::PlanCache>())
{
    UNCERTAIN_REQUIRE(options_.queueCapacity >= 1,
                      "serve: queueCapacity must be >= 1");
    UNCERTAIN_REQUIRE(options_.maxBatch >= 1,
                      "serve: maxBatch must be >= 1");
    UNCERTAIN_REQUIRE(options_.workers >= 1,
                      "serve: workers must be >= 1");
    registry_.emplace(kModelGaussianChain, buildGaussianChain);
    registry_.emplace(kModelGpsSpeed, buildGpsSpeed);
}

UncertainServer::~UncertainServer()
{
    stop();
}

void
UncertainServer::start()
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    if (started_ || stopping_)
        return;
    started_ = true;
    workers_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
UncertainServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
    workers_.clear();
    // Anything still queued (e.g. the server was never started)
    // is refused, not dropped: every accepted request gets a reply.
    std::deque<Pending> backlog;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        backlog.swap(queue_);
    }
    for (auto& pending : backlog) {
        Response refusal;
        refusal.status = Status::ShuttingDown;
        refusal.opcode = pending.request.opcode;
        refusal.tenantId = pending.request.tenantId;
        refusal.requestId = pending.request.requestId;
        reply(pending, std::move(refusal));
    }
}

bool
UncertainServer::running() const
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    return started_ && !stopping_;
}

void
UncertainServer::registerModel(std::uint32_t id, ModelBuilder builder)
{
    UNCERTAIN_REQUIRE(builder != nullptr,
                      "serve: registerModel requires a builder");
    std::lock_guard<std::mutex> lock(registryMutex_);
    registry_[id] = std::move(builder);
    // Replacing a builder invalidates instances built by the old one.
    for (auto it = instances_.begin(); it != instances_.end();) {
        if (it->first.modelId == id)
            it = instances_.erase(it);
        else
            ++it;
    }
}

void
UncertainServer::rejectNow(const Request& request, const ReplySink& sink,
                           Status status, Clock::time_point)
{
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        switch (status) {
          case Status::Overloaded: ++stats_.rejectedOverload; break;
          case Status::Malformed:
          case Status::TooLarge: ++stats_.malformed; break;
          case Status::BadRequest: ++stats_.badRequest; break;
          case Status::UnknownModel: ++stats_.unknownModel; break;
          case Status::ShuttingDown: ++stats_.shuttingDown; break;
          case Status::Ok: break;
        }
        ++stats_.tenants[request.tenantId].rejected;
    }
    Response refusal;
    refusal.status = status;
    refusal.opcode = request.opcode;
    refusal.tenantId = request.tenantId;
    refusal.requestId = request.requestId;
    if (sink)
        sink(refusal);
}

void
UncertainServer::submit(Request request, ReplySink sink)
{
    const auto now = Clock::now();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.received;
        ++stats_.tenants[request.tenantId].received;
    }
    const Status semantic = validateRequest(request);
    if (semantic != Status::Ok) {
        rejectNow(request, sink, semantic, now);
        return;
    }
    bool known;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        known = registry_.find(request.modelId) != registry_.end();
    }
    if (!known) {
        rejectNow(request, sink, Status::UnknownModel, now);
        return;
    }

    // Admission: bounded queue, reject-with-backpressure. The reject
    // reply is sent outside the queue lock.
    Status admission = Status::Ok;
    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (stopping_) {
            admission = Status::ShuttingDown;
        } else if (queue_.size() >= options_.queueCapacity) {
            admission = Status::Overloaded;
        } else {
            queue_.push_back(
                Pending{std::move(request), std::move(sink), now});
            depth = queue_.size();
        }
    }
    if (admission != Status::Ok) {
        rejectNow(request, sink, admission, now);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.admitted;
        stats_.queuePeak =
            std::max<std::uint64_t>(stats_.queuePeak, depth);
    }
    queueCv_.notify_one();
}

void
UncertainServer::submitFrame(const std::uint8_t* payload,
                             std::size_t size, ReplySink sink)
{
    if (size > kMaxRequestFrameBytes) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.received;
        }
        Request anonymous;
        rejectNow(anonymous, sink, Status::TooLarge, Clock::now());
        return;
    }
    Request request;
    const Status status = decodeRequest(payload, size, request);
    if (status != Status::Ok) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.received;
            ++stats_.tenants[request.tenantId].received;
        }
        rejectNow(request, sink, status, Clock::now());
        return;
    }
    submit(std::move(request), std::move(sink));
}

std::shared_ptr<const ModelInstance>
UncertainServer::instanceFor(std::uint32_t modelId,
                             const std::vector<double>& params,
                             bool& badParams)
{
    badParams = false;
    InstanceKey key{modelId, params};
    ModelBuilder builder;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        auto cached = instances_.find(key);
        if (cached != instances_.end())
            return cached->second;
        auto reg = registry_.find(modelId);
        if (reg == registry_.end())
            return nullptr;
        builder = reg->second;
    }

    // Build outside the lock (an SIR pool draw can take milliseconds).
    // The build stream is a pure function of (seed, modelId, params):
    // two workers racing on the same key build identical instances,
    // and the loser's copy serves identical replies.
    Rng buildRng = rootRng_.split(kModelStreamTag)
                       .split(modelId)
                       .split(hashModelParams(modelId, params));
    auto instance = std::make_shared<ModelInstance>();
    bool ok = false;
    try {
        ok = builder(params, buildRng, *instance);
    } catch (const Error&) {
        ok = false;
    }
    if (!ok || instance->value == nullptr || instance->event == nullptr
        || instance->fast == nullptr || instance->slow == nullptr) {
        badParams = true;
        return nullptr;
    }

    std::lock_guard<std::mutex> lock(registryMutex_);
    {
        std::lock_guard<std::mutex> statsLock(statsMutex_);
        ++stats_.modelBuilds;
    }
    auto cached = instances_.find(key);
    if (cached != instances_.end())
        return cached->second;
    if (instances_.size() >= options_.modelInstanceCapacity)
        instances_.clear();
    instances_.emplace(std::move(key), instance);
    return instance;
}

void
UncertainServer::workerLoop()
{
    core::BatchSampler sampler(options_.batch, planCache_);
    std::vector<Pending> batch;
    for (;;) {
        batch.clear();
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (stopping_)
                return; // stop() refuses the backlog
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }

        // Gather more work. The window bounds how long a LONE request
        // is held waiting for a companion; once the batch has peers
        // we drain whatever is queued and execute immediately —
        // replies stream out per member, so under sustained load the
        // next cohort queues up while this one runs and batches stay
        // full without ever stalling on the window (natural
        // batching). Waiting out the window with a non-trivial batch
        // would add pure latency: the clients it came from are
        // blocked on these very replies.
        const auto deadline =
            batch.front().enqueued
            + std::chrono::microseconds(options_.batchWindowMicros);
        const auto gatherUntil =
            std::max(deadline,
                     Clock::now()); // never wait negative
        while (batch.size() < options_.maxBatch) {
            std::unique_lock<std::mutex> lock(queueMutex_);
            if (queue_.empty()) {
                if (stopping_ || batch.size() > 1)
                    break;
                const bool woke = queueCv_.wait_until(
                    lock, gatherUntil, [this] {
                        return stopping_ || !queue_.empty();
                    });
                if (!woke || stopping_ || queue_.empty())
                    break;
            }
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }

        executeBatch(sampler, batch);
    }
}

void
UncertainServer::executeBatch(core::BatchSampler& sampler,
                              std::vector<Pending>& batch)
{
    // Group by model instance, order of first appearance. Requests
    // with distinct params build/fetch distinct instances and so land
    // in distinct groups; everything in one group executes against
    // the same plan-cache entries with one resolution per root.
    struct Group
    {
        std::shared_ptr<const ModelInstance> instance;
        std::vector<std::size_t> members;
    };
    std::vector<Group> groups;
    std::vector<Status> refusals(batch.size(), Status::Ok);

    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Request& request = batch[i].request;
        bool badParams = false;
        auto instance =
            instanceFor(request.modelId, request.params, badParams);
        if (instance == nullptr) {
            refusals[i] = badParams ? Status::BadRequest
                                    : Status::UnknownModel;
            continue;
        }
        auto group = std::find_if(
            groups.begin(), groups.end(), [&](const Group& g) {
                return g.instance.get() == instance.get();
            });
        if (group == groups.end()) {
            groups.push_back(Group{std::move(instance), {i}});
        } else {
            group->members.push_back(i);
        }
    }

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.batches;
        stats_.batchOccupancyMax = std::max<std::uint64_t>(
            stats_.batchOccupancyMax, batch.size());
        for (const auto& group : groups) {
            if (group.members.size() > 1)
                stats_.coalescedRequests += group.members.size();
        }
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (refusals[i] == Status::Ok)
            continue;
        Response refusal;
        refusal.status = refusals[i];
        refusal.opcode = batch[i].request.opcode;
        refusal.tenantId = batch[i].request.tenantId;
        refusal.requestId = batch[i].request.requestId;
        reply(batch[i], std::move(refusal));
    }

    for (const auto& group : groups) {
        for (std::size_t index : group.members) {
            reply(batch[index],
                  execute(sampler, batch[index].request,
                          *group.instance));
        }
    }
}

Response
UncertainServer::execute(core::BatchSampler& sampler,
                         const Request& request,
                         const ModelInstance& instance)
{
    // The request stream: a pure function of (seed, tenant, request),
    // independent of arrival order, batch grouping, worker identity,
    // and the sharePlans axis.
    Rng rng =
        rootRng_.split(request.tenantId).split(request.requestId);

    // Plan resolution per request: through the shared cache
    // (coalesced mode; hits after the group's first request) or a
    // fresh compile (the stateless per-request baseline).
    const auto planFor =
        [&](const auto& node) -> std::shared_ptr<const core::BatchPlan> {
        if (options_.sharePlans)
            return planCache_->planFor(node, options_.batch.optimizer);
        return core::BatchPlan::compile(node,
                                        options_.batch.optimizer);
    };

    Response response;
    response.opcode = request.opcode;
    response.tenantId = request.tenantId;
    response.requestId = request.requestId;

    core::ConditionalOptions conditional = options_.conditional;
    if (request.sampleCount > 0)
        conditional.sprt.maxSamples = request.sampleCount;

    try {
        switch (request.opcode) {
          case Opcode::Pr: {
            auto result = sampler.evaluateConditionPlan(
                planFor(instance.event), request.threshold,
                conditional, rng);
            response.decision =
                static_cast<std::uint16_t>(result.decision);
            response.value = result.estimate;
            response.samplesUsed = result.samplesUsed;
            break;
          }
          case Opcode::ExpectedValue: {
            const std::size_t n =
                request.sampleCount > 0
                    ? request.sampleCount
                    : options_.defaultExpectationSamples;
            response.value = sampler.expectedValuePlan<double>(
                planFor(instance.value), n, rng);
            response.samplesUsed = n;
            break;
          }
          case Opcode::TakeSamples: {
            const std::size_t n =
                request.sampleCount > 0 ? request.sampleCount
                                        : options_.defaultTakeSamples;
            response.samples = sampler.takeSamplesPlan<double>(
                planFor(instance.value), n, rng);
            response.samplesUsed = n;
            if (!response.samples.empty()) {
                double total = 0.0;
                for (double s : response.samples)
                    total += s;
                response.value =
                    total
                    / static_cast<double>(response.samples.size());
            }
            break;
          }
          case Opcode::Advise: {
            // The Figure 5(b) decision logic of gps/walking.cpp over
            // the instance's pre-built comparison roots: GoodJob on
            // more-likely-than-not fast, SpeedUp only on >= 90%
            // evidence of slow, else say nothing.
            auto fast = sampler.evaluateConditionPlan(
                planFor(instance.fast), 0.5, conditional, rng);
            response.samplesUsed = fast.samplesUsed;
            if (fast.toBool()) {
                response.decision =
                    static_cast<std::uint16_t>(gps::Advice::GoodJob);
                response.value = fast.estimate;
            } else {
                auto slow = sampler.evaluateConditionPlan(
                    planFor(instance.slow), 0.9, conditional, rng);
                response.samplesUsed += slow.samplesUsed;
                response.decision = static_cast<std::uint16_t>(
                    slow.toBool() ? gps::Advice::SpeedUp
                                  : gps::Advice::None);
                response.value = slow.estimate;
            }
            break;
          }
        }
        response.status = Status::Ok;
    } catch (const Error&) {
        response = Response{};
        response.status = Status::BadRequest;
        response.opcode = request.opcode;
        response.tenantId = request.tenantId;
        response.requestId = request.requestId;
    }
    return response;
}

void
UncertainServer::reply(const Pending& pending, Response response)
{
    const auto now = Clock::now();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        auto& tenant = stats_.tenants[pending.request.tenantId];
        if (response.status == Status::Ok) {
            ++stats_.executed;
            ++tenant.executed;
            stats_.samplesDrawn += response.samplesUsed;
            tenant.samplesUsed += response.samplesUsed;
            switch (response.opcode) {
              case Opcode::Pr: ++stats_.prQueries; break;
              case Opcode::ExpectedValue:
                ++stats_.expectedValueQueries;
                break;
              case Opcode::TakeSamples:
                ++stats_.takeSamplesQueries;
                break;
              case Opcode::Advise: ++stats_.adviseQueries; break;
            }
            latency_.record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    now - pending.enqueued)
                    .count()));
        } else {
            ++tenant.rejected;
            switch (response.status) {
              case Status::BadRequest: ++stats_.badRequest; break;
              case Status::UnknownModel: ++stats_.unknownModel; break;
              case Status::ShuttingDown: ++stats_.shuttingDown; break;
              default: break;
            }
        }
    }
    if (pending.sink)
        pending.sink(response);
}

ServerStats
UncertainServer::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ServerStats snapshot = stats_;
    snapshot.latencySamples = latency_.count();
    snapshot.p50LatencyMicros = latency_.quantile(0.50);
    snapshot.p99LatencyMicros = latency_.quantile(0.99);
    return snapshot;
}

std::string
ServerStats::toString() const
{
    std::ostringstream out;
    out << "serve: received " << received << " admitted " << admitted
        << " executed " << executed << "; rejected[overload "
        << rejectedOverload << " malformed " << malformed << " bad "
        << badRequest << " unknown " << unknownModel << " shutdown "
        << shuttingDown << "]; batches " << batches << " (coalesced "
        << coalescedRequests << ", occupancy max " << batchOccupancyMax
        << ", queue peak " << queuePeak << "); samples "
        << samplesDrawn << "; model builds " << modelBuilds
        << "; ops[pr " << prQueries << " ev " << expectedValueQueries
        << " take " << takeSamplesQueries << " advise "
        << adviseQueries << "]; latency p50 " << p50LatencyMicros
        << " us p99 " << p99LatencyMicros << " us (" << latencySamples
        << " replies); tenants " << tenants.size();
    return out.str();
}

std::string
serverReport(const ServerStats& stats)
{
    std::ostringstream out;
    out << stats.toString();
    for (const auto& [tenantId, tenant] : stats.tenants) {
        out << "\n  tenant " << tenantId << ": received "
            << tenant.received << " executed " << tenant.executed
            << " rejected " << tenant.rejected << " samples "
            << tenant.samplesUsed;
    }
    return out.str();
}

} // namespace serve
} // namespace uncertain
