/**
 * @file
 * UncertainServer: a long-lived in-process daemon answering
 * uncertainty queries for many concurrent clients — the paper's
 * Uncertain<T> turned from a fast library into a fast service.
 *
 * Architecture:
 *
 *   clients -> transport (loopback / TCP) -> admission -> queue
 *          -> coalescing worker(s) -> BatchSampler over cached plans
 *          -> reply sinks
 *
 * Coalescing: a worker drains queued requests (up to maxBatch) and
 * groups the gathered batch by model instance, so every request in a
 * group executes against the same plan-cache entry with one plan
 * resolution and a warm workspace — the columnar block machinery of
 * core/batch.hpp amortized across requests instead of within one.
 * Batches form naturally: replies stream out per member, so under
 * load the next cohort queues up while the current one executes.
 * ServerOptions::batchWindowMicros only governs a LONE request: it is
 * held at most one window waiting for a companion, never longer, and
 * a batch that already has peers executes immediately rather than
 * waiting out the window (which would add pure latency — the clients
 * it came from are blocked on these very replies).
 *
 * Admission control: the queue is bounded (queueCapacity). A submit
 * that finds it full is answered immediately with Status::Overloaded
 * — backpressure as an explicit reply, not unbounded buffering or a
 * dropped connection. The server stays serviceable throughout.
 *
 * Reproducibility: every request executes with its own generator
 *
 *     Rng(seed).split(tenantId).split(requestId)
 *
 * a pure function of (server seed, tenant, request) because split()
 * never advances its parent (support/rng.hpp). Replies are therefore
 * bit-identical across runs, across arrival interleavings, across
 * batch groupings, and across the sharePlans axis — coalescing is a
 * scheduling optimization, never a semantic one. Model instances are
 * built with an Rng derived from (seed, modelId, params) the same
 * way, so a rebuilt instance (after cache eviction) reproduces the
 * original bit for bit.
 *
 * Observability: serverStats() / serverReport() mirror the
 * planStats() / planReport() inspect API for the serving layer —
 * admission and execution counters, batch occupancy, and p50/p99
 * reply latency from a log-bucketed histogram, plus per-tenant
 * breakdowns.
 */

#ifndef UNCERTAIN_SERVE_SERVER_HPP
#define UNCERTAIN_SERVE_SERVER_HPP

#include <array>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/batch.hpp"
#include "core/uncertain.hpp"
#include "serve/protocol.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace serve {

/** Tuning for UncertainServer. */
struct ServerOptions
{
    /** Root of every derived stream (tenants, requests, models). */
    std::uint64_t seed = 0x5eedULL;

    /** Bounded-queue admission limit; beyond it submits are
     *  answered Status::Overloaded. */
    std::size_t queueCapacity = 1024;

    /** Most requests one coalesced batch may gather. */
    std::size_t maxBatch = 64;

    /**
     * Latency budget of the coalescer, microseconds: a lone dequeued
     * request is held at most this long waiting for a companion
     * before executing solo. A batch that already has two or more
     * members never waits — it drains the queue and runs. 0
     * degenerates to immediate per-request execution (with
     * maxBatch = 1, exactly the uncoalesced server).
     */
    std::size_t batchWindowMicros = 2000;

    /** Worker threads draining the queue (each owns a BatchSampler
     *  and shares the one PlanCache). */
    std::size_t workers = 1;

    /**
     * true (default): plans resolve through the shared PlanCache, so
     * concurrent requests against the same model hit one compiled
     * plan. false: every request compiles its plan from scratch — the
     * stateless per-request-execution baseline bench_serve gates
     * against. Replies are bit-identical either way.
     */
    bool sharePlans = true;

    /** Columnar engine tuning (block size, optimizer passes). */
    core::BatchOptions batch{};

    /** Base conditional tuning for Pr / Advise (a request's
     *  sampleCount overrides sprt.maxSamples). */
    core::ConditionalOptions conditional{};

    /** Draws for ExpectedValue when the request leaves
     *  sampleCount = 0. */
    std::size_t defaultExpectationSamples = 1000;

    /** Draws for TakeSamples when the request leaves
     *  sampleCount = 0. */
    std::size_t defaultTakeSamples = 256;

    /** Built model instances cached per (modelId, params); at
     *  capacity the cache resets (rebuilds reproduce exactly). */
    std::size_t modelInstanceCapacity = 64;
};

/**
 * The graph roots one (modelId, params) pair serves queries against.
 * Built once per distinct parameterization and cached; all four roots
 * share leaves, so their plans share a cache lineage too.
 */
struct ModelInstance
{
    core::NodePtr<double> value; //!< ExpectedValue / TakeSamples root
    core::NodePtr<bool> event;   //!< Pr root
    core::NodePtr<bool> fast;    //!< Advise: value > brisk threshold
    core::NodePtr<bool> slow;    //!< Advise: value < brisk threshold
};

/**
 * Builds a ModelInstance from request params. @p buildRng is derived
 * deterministically from (server seed, modelId, params) — any
 * sampling done at build time (e.g. an SIR proposal pool) must draw
 * from it and nothing else, or rebuilt instances would not reproduce.
 * Return false to refuse the params (the request is answered
 * Status::BadRequest).
 */
using ModelBuilder = std::function<bool(const std::vector<double>& params,
                                        Rng& buildRng,
                                        ModelInstance& out)>;

/** Builtin model ids registered by every server. */
constexpr std::uint32_t kModelGaussianChain = 1;
constexpr std::uint32_t kModelGpsSpeed = 2;

/**
 * Mean increment per chain level of the builtin gaussian-chain model:
 * params [mu, sigma, depth, cut] serve an analytic
 * Gaussian(mu + depth * kGaussianChainStep, sigma) through a
 * depth-deep elementwise chain (what the fused strips eat), with
 * event = value > cut.
 */
constexpr double kGaussianChainStep = 0.125;

/**
 * Bounded log-bucket latency histogram: 4 sub-buckets per octave of
 * microseconds, 256 buckets total (covers past an hour), constant
 * memory, ~19% worst-case quantile error — plenty for p50/p99
 * reporting.
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 256;

    void
    record(std::uint64_t micros)
    {
        ++buckets_[bucketOf(micros)];
        ++count_;
    }

    std::uint64_t count() const { return count_; }

    /** Approximate @p q quantile in microseconds (q in [0, 1]). */
    double
    quantile(double q) const
    {
        if (count_ == 0)
            return 0.0;
        const double target = q * static_cast<double>(count_);
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            cumulative += buckets_[i];
            if (static_cast<double>(cumulative) >= target)
                return bucketMidpoint(i);
        }
        return bucketMidpoint(kBuckets - 1);
    }

  private:
    static std::size_t
    bucketOf(std::uint64_t micros)
    {
        if (micros < 4)
            return static_cast<std::size_t>(micros);
        const int msb = std::bit_width(micros) - 1; // >= 2
        const std::size_t sub = (micros >> (msb - 2)) & 0x3u;
        const std::size_t index =
            (static_cast<std::size_t>(msb - 1) << 2) | sub;
        return index < kBuckets ? index : kBuckets - 1;
    }

    static double
    bucketMidpoint(std::size_t index)
    {
        if (index < 4)
            return static_cast<double>(index);
        const int msb = static_cast<int>(index / 4) + 1;
        const std::uint64_t sub = index % 4;
        const std::uint64_t lower =
            (std::uint64_t{1} << msb) | (sub << (msb - 2));
        const std::uint64_t width = std::uint64_t{1} << (msb - 2);
        return static_cast<double>(lower)
               + static_cast<double>(width) / 2.0;
    }

    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
};

/** Per-tenant slice of the server counters. */
struct TenantStats
{
    std::uint64_t received = 0;
    std::uint64_t executed = 0;
    std::uint64_t rejected = 0; //!< overload + malformed + refused
    std::uint64_t samplesUsed = 0;
};

/** Snapshot of the serving counters (serverStats / serverReport). */
struct ServerStats
{
    // Admission.
    std::uint64_t received = 0;         //!< frames/requests submitted
    std::uint64_t admitted = 0;         //!< entered the queue
    std::uint64_t rejectedOverload = 0; //!< bounced by admission
    std::uint64_t malformed = 0;        //!< undecodable / oversized
    std::uint64_t badRequest = 0;       //!< parsed but refused
    std::uint64_t unknownModel = 0;
    std::uint64_t shuttingDown = 0;     //!< refused during/after stop
    std::uint64_t queuePeak = 0;        //!< high-water queue depth

    // Execution.
    std::uint64_t executed = 0;          //!< requests answered Ok
    std::uint64_t batches = 0;           //!< coalesced batches run
    std::uint64_t coalescedRequests = 0; //!< requests sharing a group
    std::uint64_t batchOccupancyMax = 0; //!< largest batch gathered
    std::uint64_t samplesDrawn = 0;      //!< root draws across replies
    std::uint64_t modelBuilds = 0;       //!< instance-cache misses

    // Per-opcode executed counts.
    std::uint64_t prQueries = 0;
    std::uint64_t expectedValueQueries = 0;
    std::uint64_t takeSamplesQueries = 0;
    std::uint64_t adviseQueries = 0;

    // Reply latency (submit -> reply), microseconds.
    double p50LatencyMicros = 0.0;
    double p99LatencyMicros = 0.0;
    std::uint64_t latencySamples = 0;

    /** Per-tenant breakdown, keyed by tenantId (ordered for stable
     *  rendering). */
    std::map<std::uint64_t, TenantStats> tenants;

    /** One-line rendering in the planReport() style. */
    std::string toString() const;
};

/** Receives the reply for one submitted request. Invoked exactly once
 *  per submit, possibly from a worker thread. Must not block for long
 *  (transports buffer; see serve/transport.hpp). */
using ReplySink = std::function<void(const Response&)>;

/**
 * The daemon. start() spins up the workers; submit()/submitFrame()
 * are thread-safe and may be called from any number of transport
 * threads. stop() refuses queued and future work with
 * Status::ShuttingDown (every accepted request is still answered —
 * no reply is ever silently dropped by the server core).
 */
class UncertainServer
{
  public:
    explicit UncertainServer(ServerOptions options = {});
    ~UncertainServer();

    UncertainServer(const UncertainServer&) = delete;
    UncertainServer& operator=(const UncertainServer&) = delete;

    /** Spin up the worker threads. Idempotent. */
    void start();

    /** Stop accepting work, answer the backlog ShuttingDown, join
     *  the workers. Idempotent. */
    void stop();

    bool running() const;

    const ServerOptions& options() const { return options_; }

    /** The plan cache shared by the workers (for tests inspecting
     *  hit/miss behavior across coalesced groups). */
    const std::shared_ptr<core::PlanCache>& planCache() const
    {
        return planCache_;
    }

    /**
     * Register (or replace) a model. Builtin ids kModelGaussianChain
     * and kModelGpsSpeed are pre-registered; tests add instrumented
     * models (e.g. a latch-blocked sampler for overload tests).
     */
    void registerModel(std::uint32_t id, ModelBuilder builder);

    /** Submit a decoded request. The reply arrives through @p sink. */
    void submit(Request request, ReplySink sink);

    /**
     * Submit a raw frame payload (length prefix already stripped).
     * Undecodable payloads are answered with the relevant error
     * status through @p sink.
     */
    void submitFrame(const std::uint8_t* payload, std::size_t size,
                     ReplySink sink);

    /** Counter snapshot (thread-safe). */
    ServerStats stats() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending
    {
        Request request;
        ReplySink sink;
        Clock::time_point enqueued;
    };

    /** (modelId, params) -> built instance. */
    struct InstanceKey
    {
        std::uint32_t modelId;
        std::vector<double> params;

        bool operator==(const InstanceKey&) const = default;
    };

    struct InstanceKeyHash
    {
        std::size_t operator()(const InstanceKey& key) const;
    };

    void workerLoop();
    void executeBatch(core::BatchSampler& sampler,
                      std::vector<Pending>& batch);
    Response execute(core::BatchSampler& sampler, const Request& req,
                     const ModelInstance& instance);
    std::shared_ptr<const ModelInstance>
    instanceFor(std::uint32_t modelId,
                const std::vector<double>& params, bool& badParams);
    void reply(const Pending& pending, Response response);
    void rejectNow(const Request& request, const ReplySink& sink,
                   Status status, Clock::time_point enqueued);

    ServerOptions options_;
    Rng rootRng_; //!< Rng(options_.seed); only ever split, never advanced
    std::shared_ptr<core::PlanCache> planCache_;

    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Pending> queue_;
    bool stopping_ = false;
    bool started_ = false;
    std::vector<std::thread> workers_;

    mutable std::mutex registryMutex_;
    std::unordered_map<std::uint32_t, ModelBuilder> registry_;
    std::unordered_map<InstanceKey,
                       std::shared_ptr<const ModelInstance>,
                       InstanceKeyHash>
        instances_;

    mutable std::mutex statsMutex_;
    ServerStats stats_;
    LatencyHistogram latency_;
};

/** Counter snapshot, mirroring planStats(). */
inline ServerStats
serverStats(const UncertainServer& server)
{
    return server.stats();
}

/** One-line rendering, mirroring planReport(). */
std::string serverReport(const ServerStats& stats);

} // namespace serve
} // namespace uncertain

#endif // UNCERTAIN_SERVE_SERVER_HPP
