/**
 * @file
 * Transports feeding UncertainServer: an in-process loopback for
 * deterministic tests and a localhost TCP listener for real clients.
 *
 * Both speak the framing of serve/protocol.hpp end to end — the
 * loopback does not shortcut the codec: requests are encoded to
 * bytes, decoded by the server, and replies are encoded again before
 * the client parses them, so every test exercises the wire format.
 *
 * Slow-consumer defense: reply sinks must never block the coalescing
 * workers. The loopback inbox and each TCP connection's outbound
 * queue are therefore bounded; when a client stops draining, further
 * replies to it are counted and dropped while the server keeps
 * serving everyone else. (The server core itself never drops a
 * reply — only a transport talking to an unresponsive peer does.)
 */

#ifndef UNCERTAIN_SERVE_TRANSPORT_HPP
#define UNCERTAIN_SERVE_TRANSPORT_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace uncertain {
namespace serve {

/**
 * In-process client: submits encoded frames straight into the
 * server's admission path and collects encoded replies in a private
 * inbox. Thread-safe; many clients may share one server. The inbox
 * is held by shared_ptr, so replies arriving after the client is
 * destroyed land harmlessly instead of dangling.
 */
class LoopbackClient
{
  public:
    /**
     * @p inboxCapacity bounds buffered replies; 0 means unbounded.
     * A bounded inbox that fills drops further replies (counted by
     * dropped()) — the slow-consumer scenario of the fault tests.
     */
    explicit LoopbackClient(UncertainServer& server,
                            std::size_t inboxCapacity = 0);

    /** Encode and submit @p request; the reply lands in the inbox. */
    void send(const Request& request);

    /** Submit a raw payload (no length prefix) — for malformed-frame
     *  and truncation tests. */
    void sendRaw(const std::uint8_t* payload, std::size_t size);

    /**
     * Pop and decode the oldest reply, waiting up to @p timeout.
     * Returns false on timeout or an undecodable reply frame.
     */
    bool receive(Response& out,
                 std::chrono::milliseconds timeout
                 = std::chrono::milliseconds(10000));

    /** send() + receive(); throws uncertain::Error on timeout or a
     *  reply that fails to decode. */
    Response call(const Request& request,
                  std::chrono::milliseconds timeout
                  = std::chrono::milliseconds(10000));

    /** Replies dropped by a full bounded inbox. */
    std::uint64_t dropped() const;

    /** Replies currently buffered. */
    std::size_t pendingReplies() const;

  private:
    struct Inbox
    {
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<std::vector<std::uint8_t>> frames;
        std::size_t capacity = 0;
        std::uint64_t dropped = 0;
    };

    UncertainServer* server_;
    std::shared_ptr<Inbox> inbox_;
};

/**
 * Localhost TCP listener: accepts connections, reads request frames,
 * submits them, and writes reply frames. One reader and one writer
 * thread per connection; the writer drains a bounded outbound queue
 * so a worker's reply sink only ever enqueues (never blocks on a
 * peer's socket).
 *
 * Framing faults: an oversized frame is answered Status::TooLarge
 * and the connection is closed (the stream offset is no longer
 * trustworthy); a short read / disconnect mid-frame closes the
 * connection and any in-flight replies to it are dropped — the
 * server stays up either way.
 *
 * Construction throws uncertain::Error when the listen socket cannot
 * be bound (tests GTEST_SKIP on that in sandboxed environments).
 */
class TcpTransport
{
  public:
    static constexpr std::size_t kOutboundQueueFrames = 256;

    /** Bind 127.0.0.1:@p port (0 = ephemeral) and start accepting. */
    explicit TcpTransport(UncertainServer& server,
                          std::uint16_t port = 0);
    ~TcpTransport();

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    /** The bound port (resolved when constructed with port 0). */
    std::uint16_t port() const { return port_; }

    /** Stop accepting, close every connection, join the threads. */
    void stop();

    /** Replies dropped on full outbound queues or closed peers. */
    std::uint64_t droppedReplies() const;

    /** Connections accepted over the transport's lifetime. */
    std::uint64_t connectionsAccepted() const;

  private:
    struct Connection;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> connection);
    void writerLoop(std::shared_ptr<Connection> connection);

    UncertainServer* server_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptThread_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> droppedReplies_{0};
    std::atomic<std::uint64_t> connectionsAccepted_{0};

    std::mutex connectionsMutex_;
    std::vector<std::shared_ptr<Connection>> connections_;
};

/**
 * Minimal blocking TCP client for tests and the load generator:
 * connects to 127.0.0.1:port, sends frames, polls for replies.
 */
class TcpClient
{
  public:
    /** Connect; throws uncertain::Error on failure. */
    explicit TcpClient(std::uint16_t port);
    ~TcpClient();

    TcpClient(const TcpClient&) = delete;
    TcpClient& operator=(const TcpClient&) = delete;

    void send(const Request& request);

    /** Write raw bytes as-is (framing-fault injection). */
    void sendBytes(const void* data, std::size_t size);

    /** Read one reply frame, waiting up to @p timeout. */
    bool receive(Response& out,
                 std::chrono::milliseconds timeout
                 = std::chrono::milliseconds(10000));

    Response call(const Request& request,
                  std::chrono::milliseconds timeout
                  = std::chrono::milliseconds(10000));

    /** Hard-close the socket without reading pending replies — the
     *  disconnect-mid-flight scenario. */
    void closeAbruptly();

    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::vector<std::uint8_t> buffer_; //!< partial-frame carryover
};

} // namespace serve
} // namespace uncertain

#endif // UNCERTAIN_SERVE_TRANSPORT_HPP
