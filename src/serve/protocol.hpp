/**
 * @file
 * Wire protocol of the uncertainty server: a small length-prefixed
 * binary framing shared by the localhost TCP transport and the
 * in-process loopback transport (serve/transport.hpp).
 *
 * A frame is a 4-byte little-endian payload length followed by the
 * payload. Every multi-byte field inside the payload is little-endian
 * and explicitly serialized byte by byte, so frames are identical
 * across platforms (the same discipline as Rng::split: fixed-width
 * integer ops only).
 *
 * Request payload layout (all offsets fixed, params variable):
 *
 *   u32  magic        kRequestMagic
 *   u16  version      kProtocolVersion
 *   u16  opcode       Opcode
 *   u64  tenantId     client-chosen tenant (phone / app instance)
 *   u64  requestId    client-chosen id, unique per tenant; together
 *                     with tenantId it derives the request's RNG
 *                     stream, so replaying (tenantId, requestId)
 *                     yields a bit-identical reply
 *   u32  modelId      registered model the query runs against
 *   u32  sampleCount  n for ExpectedValue / TakeSamples; for Pr it
 *                     overrides the SPRT sample cap (0 = defaults)
 *   f64  threshold    Pr evidence threshold (ignored otherwise)
 *   u32  paramCount   <= kMaxParams
 *   f64  params[paramCount]   model parameters
 *
 * Response payload layout:
 *
 *   u32  magic        kResponseMagic
 *   u16  version      kProtocolVersion
 *   u16  status       Status (Ok or the rejection reason; admission
 *                     rejections arrive as a well-formed reply with
 *                     status Overloaded, not a dropped connection)
 *   u16  opcode       echo of the request opcode
 *   u16  decision     Pr: stats::TestDecision; Advise: gps::Advice
 *   u64  tenantId     echo
 *   u64  requestId    echo (0 when the request was too mangled to
 *                     recover one)
 *   f64  value        Pr estimate / expected value / advised speed
 *   u64  samplesUsed  samples the query consumed
 *   u32  sampleCount  TakeSamples payload size (else 0)
 *   f64  samples[sampleCount]
 *
 * Framing contract: a frame longer than kMaxRequestFrameBytes is
 * answered with status TooLarge and the connection is closed (the
 * stream offset can no longer be trusted); a payload that parses but
 * violates a bound is answered with Malformed/BadRequest and the
 * connection stays usable.
 */

#ifndef UNCERTAIN_SERVE_PROTOCOL_HPP
#define UNCERTAIN_SERVE_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uncertain {
namespace serve {

constexpr std::uint32_t kRequestMagic = 0x51435455;  //!< "UTCQ"
constexpr std::uint32_t kResponseMagic = 0x50435455; //!< "UTCP"
constexpr std::uint16_t kProtocolVersion = 1;

/** Hard cap on model parameters per request. */
constexpr std::size_t kMaxParams = 64;

/** Hard cap on an incoming request frame's payload bytes. */
constexpr std::size_t kMaxRequestFrameBytes = 1024;

/** Hard cap on samples returned by one TakeSamples reply. */
constexpr std::size_t kMaxSamplesPerReply = 8192;

/** Hard cap on sampleCount for ExpectedValue / Pr sample budgets. */
constexpr std::size_t kMaxSampleCount = std::size_t{1} << 20;

/** Query kinds the server executes. */
enum class Opcode : std::uint16_t
{
    Pr = 1,            //!< "Pr[event] > threshold" sequential test
    ExpectedValue = 2, //!< mean of sampleCount draws
    TakeSamples = 3,   //!< raw draws (bounded by kMaxSamplesPerReply)
    Advise = 4,        //!< GPS-Walking advice over the model's speed
};

/** Reply status; anything but Ok means the query did not execute. */
enum class Status : std::uint16_t
{
    Ok = 0,
    Overloaded = 1,   //!< admission control rejected (queue full)
    Malformed = 2,    //!< frame failed to parse
    UnknownModel = 3, //!< modelId not registered
    BadRequest = 4,   //!< parsed but violates a bound / model refused
    TooLarge = 5,     //!< frame beyond kMaxRequestFrameBytes
    ShuttingDown = 6, //!< server is stopping
};

/** Decoded request. */
struct Request
{
    Opcode opcode = Opcode::Pr;
    std::uint64_t tenantId = 0;
    std::uint64_t requestId = 0;
    std::uint32_t modelId = 0;
    std::uint32_t sampleCount = 0;
    double threshold = 0.5;
    std::vector<double> params;
};

/** Decoded response. */
struct Response
{
    Status status = Status::Ok;
    Opcode opcode = Opcode::Pr;
    std::uint16_t decision = 0;
    std::uint64_t tenantId = 0;
    std::uint64_t requestId = 0;
    double value = 0.0;
    std::uint64_t samplesUsed = 0;
    std::vector<double> samples;
};

/** Serialize @p request as a full frame (length prefix included). */
std::vector<std::uint8_t> encodeRequest(const Request& request);

/** Serialize @p response as a full frame (length prefix included). */
std::vector<std::uint8_t> encodeResponse(const Response& response);

/**
 * Parse a request payload (frame body, length prefix stripped).
 * Returns Status::Ok and fills @p out on success; otherwise returns
 * the rejection status and fills whatever ids could be recovered (so
 * the error reply can still echo tenant/request ids when the header
 * parsed but the body did not).
 */
Status decodeRequest(const std::uint8_t* data, std::size_t size,
                     Request& out);

/**
 * Parse a response payload (frame body, length prefix stripped).
 * Returns false on a malformed reply frame.
 */
bool decodeResponse(const std::uint8_t* data, std::size_t size,
                    Response& out);

} // namespace serve
} // namespace uncertain

#endif // UNCERTAIN_SERVE_PROTOCOL_HPP
