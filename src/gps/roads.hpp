/**
 * @file
 * Road networks as location priors: the "road snapping" behaviour of
 * paper section 3.5 and Figure 10. A prior that assigns high
 * probability near roads and low probability elsewhere pulls the GPS
 * posterior toward the road the user is actually on, unless the GPS
 * evidence to the contrary is very strong.
 */

#ifndef UNCERTAIN_GPS_ROADS_HPP
#define UNCERTAIN_GPS_ROADS_HPP

#include <vector>

#include "core/core.hpp"
#include "gps/geo.hpp"
#include "inference/reweight.hpp"

namespace uncertain {
namespace gps {

/** A straight road segment between two coordinates. */
struct RoadSegment
{
    GeoCoordinate from;
    GeoCoordinate to;
};

/** A set of road segments with distance queries. */
class RoadNetwork
{
  public:
    /** Requires at least one segment. */
    explicit RoadNetwork(std::vector<RoadSegment> segments);

    /** Distance from @p point to the nearest segment, meters. */
    double distanceToNearestRoad(const GeoCoordinate& point) const;

    std::size_t segmentCount() const { return segments_.size(); }

    /**
     * Convenience: a rectangular street grid centered at @p center
     * with @p lines north-south and east-west streets spaced
     * @p spacingMeters apart.
     */
    static RoadNetwork grid(const GeoCoordinate& center,
                            double spacingMeters, std::size_t lines);

  private:
    std::vector<RoadSegment> segments_;
};

/**
 * The road prior: an (unnormalized) density over locations that is
 * Gaussian in the distance to the nearest road, with a uniform floor
 * so strong off-road GPS evidence can still win (the "unless GPS
 * evidence to the contrary is very strong" clause).
 */
class RoadPrior
{
  public:
    /**
     * @param network       the roads
     * @param corridorSigma road-corridor width (one standard
     *                      deviation), meters; must be positive
     * @param offRoadWeight density floor relative to the on-road
     *                      peak, in (0, 1)
     */
    RoadPrior(RoadNetwork network, double corridorSigma,
              double offRoadWeight = 1e-3);

    /** Unnormalized log density at @p point. */
    double logDensity(const GeoCoordinate& point) const;

    const RoadNetwork& network() const { return network_; }

  private:
    RoadNetwork network_;
    double corridorSigma_;
    double offRoadWeight_;
};

/**
 * Snap an uncertain location onto the road network: the posterior
 * proportional to GPS-density x road-prior, via generic SIR.
 */
Uncertain<GeoCoordinate>
snapToRoads(const Uncertain<GeoCoordinate>& location,
            const RoadPrior& prior,
            const inference::ReweightOptions& options, Rng& rng);

/** snapToRoads() with the thread's global generator. */
Uncertain<GeoCoordinate>
snapToRoads(const Uncertain<GeoCoordinate>& location,
            const RoadPrior& prior,
            const inference::ReweightOptions& options = {});

} // namespace gps
} // namespace uncertain

#endif // UNCERTAIN_GPS_ROADS_HPP
