/**
 * @file
 * The GPS-Walking fitness application (paper Figure 5 and section
 * 5.1): encourage users to walk faster than 4 mph, with and without
 * the uncertain type, plus the walking-speed prior that removes the
 * absurd estimates in Figure 13.
 */

#ifndef UNCERTAIN_GPS_WALKING_HPP
#define UNCERTAIN_GPS_WALKING_HPP

#include <memory>

#include "core/core.hpp"
#include "gps/gps_library.hpp"
#include "inference/reweight.hpp"
#include "random/distribution.hpp"

namespace uncertain {
namespace gps {

/** What GPS-Walking tells the user this second. */
enum class Advice
{
    GoodJob, //!< more likely than not walking faster than 4 mph
    SpeedUp, //!< >= 90% evidence of walking slower than 4 mph
    None,    //!< evidence inconclusive: say nothing
};

/** The threshold GPS-Walking nags about, mph. */
inline constexpr double kBriskWalkMph = 4.0;

/**
 * Domain knowledge as a prior (section 5.1): "humans are incredibly
 * unlikely to walk at 60 mph or even 10 mph". A Gaussian around
 * typical walking speed truncated to [0, 10] mph.
 */
random::DistributionPtr walkingSpeedPrior();

/**
 * The Figure 5(b) decision logic:
 *   if (Speed > 4) GoodJob();
 *   else if ((Speed < 4).Pr(0.9)) SpeedUp();
 * The first conditional is the implicit more-likely-than-not
 * operator; the second demands strong evidence before admonishing
 * the user (false positives are costly there).
 */
Advice advise(const Uncertain<double>& speedMph,
              const core::ConditionalOptions& options = {});

/**
 * advise() with the conditionals' evidence drawn by the columnar
 * batch engine (optimized plans, cached per speed graph) instead of
 * the per-sample tree walk. Same decisions for the same evidence law;
 * use the --engine axis of bench_fig04/bench_fig13 to compare cost.
 */
Advice advise(const Uncertain<double>& speedMph,
              const core::ConditionalOptions& options, Rng& rng,
              core::BatchSampler& sampler);

/** The Figure 5(a) logic: naive comparisons on the point estimate. */
Advice naiveAdvise(double speedMph);

/**
 * Speed between two consecutive fixes, lifted through the uncertain
 * GPS library: getLocation on both fixes, then Distance / dt.
 */
Uncertain<double> speedFromFixes(const GpsFix& earlier,
                                 const GpsFix& later);

/**
 * The "Improved speed" series of Figure 13: the uncertain speed
 * reweighted by the walking prior. Pass options.sampler to draw the
 * SIR proposal pool through the columnar batch engine, and
 * options.scheme to select the resampling scheme
 * (see inference/reweight.hpp).
 */
Uncertain<double>
improveSpeed(const Uncertain<double>& speedMph,
             const inference::ReweightOptions& options = {});

/** improveSpeed() with an explicit generator. */
Uncertain<double>
improveSpeed(const Uncertain<double>& speedMph,
             const inference::ReweightOptions& options, Rng& rng);

} // namespace gps
} // namespace uncertain

#endif // UNCERTAIN_GPS_WALKING_HPP
