#include "gps/trajectory.hpp"

#include <algorithm>
#include <cmath>

#include "random/gaussian.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace gps {

std::vector<TruePosition>
simulateWalk(const WalkConfig& config, Rng& rng)
{
    UNCERTAIN_REQUIRE(config.durationSeconds > 0.0,
                      "walk duration must be positive");
    UNCERTAIN_REQUIRE(config.sampleIntervalSeconds > 0.0,
                      "sample interval must be positive");

    const double dt = config.sampleIntervalSeconds;
    auto steps = static_cast<std::size_t>(
        std::floor(config.durationSeconds / dt));

    std::vector<TruePosition> walk;
    walk.reserve(steps + 1);

    GeoCoordinate position = config.start;
    double heading = rng.nextRange(0.0, 2.0 * M_PI);
    double speedMph = config.meanSpeedMph;
    double pauseRemaining = 0.0;

    walk.push_back({0.0, position, speedMph});
    for (std::size_t i = 1; i <= steps; ++i) {
        // Pause state machine: occasionally stop at a crossing.
        if (pauseRemaining > 0.0) {
            pauseRemaining -= dt;
        } else if (rng.nextBool(config.pauseProbability * dt)) {
            pauseRemaining =
                -config.pauseMeanSeconds * std::log(rng.nextDoubleOpen());
        }

        // Clamped Ornstein-Uhlenbeck speed around the walking mean.
        double noise = random::Gaussian::standardSample(rng);
        speedMph += config.speedReversion
                        * (config.meanSpeedMph - speedMph) * dt
                    + config.speedJitterMph
                          * std::sqrt(2.0 * config.speedReversion * dt)
                          * noise;
        speedMph = std::clamp(speedMph, 0.0, 6.0);

        double effectiveMph = pauseRemaining > 0.0 ? 0.0 : speedMph;

        // Slow heading drift; people mostly walk straight.
        heading += config.headingDriftRadians * std::sqrt(dt)
                   * random::Gaussian::standardSample(rng);

        double meters = effectiveMph / kMpsToMph * dt;
        position = destination(position, heading, meters);
        walk.push_back(
            {static_cast<double>(i) * dt, position, effectiveMph});
    }
    return walk;
}

std::vector<GpsFix>
observeWalk(const std::vector<TruePosition>& walk, GpsSensor& sensor,
            Rng& rng)
{
    std::vector<GpsFix> fixes;
    fixes.reserve(walk.size());
    for (const TruePosition& p : walk)
        fixes.push_back(sensor.read(p.coordinate, p.timeSeconds, rng));
    return fixes;
}

} // namespace gps
} // namespace uncertain
