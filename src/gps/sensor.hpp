/**
 * @file
 * Simulated GPS hardware. Stands in for the Windows Phone GPS the
 * paper recorded with: a fix is the true location displaced by a
 * radial error whose *marginal* distribution is the paper's
 * Rayleigh(epsilon / sqrt(ln 400)) model, reported together with the
 * 95% horizontal-accuracy radius — the exact {Latitude, Longitude,
 * HorizontalAccuracy} triple of the WP API that section 2 critiques.
 *
 * Real receivers filter their solutions, so consecutive fix errors
 * are temporally correlated and occasionally jump (multipath). The
 * sensor therefore supports an AR(1) error process with sporadic
 * glitches; this is what reproduces the paper's Figure 3 trace shape
 * (mostly plausible speeds punctuated by absurd 30-59 mph spikes).
 * The default configuration is the memoryless model (independent
 * errors), whose analytic properties the anchor tests rely on.
 */

#ifndef UNCERTAIN_GPS_SENSOR_HPP
#define UNCERTAIN_GPS_SENSOR_HPP

#include "gps/geo.hpp"
#include "random/rayleigh.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace gps {

/** One GPS reading, mirroring the legacy point-estimate API. */
struct GpsFix
{
    GeoCoordinate coordinate;  //!< reported position (the "fact")
    double horizontalAccuracy; //!< 95% confidence radius, meters
    double timeSeconds;        //!< timestamp
};

/** Error-process configuration of a simulated receiver. */
struct GpsSensorConfig
{
    /** 95% horizontal-accuracy radius reported with every fix. */
    double epsilon95 = 4.0;
    /**
     * AR(1) coefficient between consecutive readings' errors.
     * 0 = independent errors (the memoryless textbook model);
     * values near 1 model the filtered solutions real receivers
     * emit. The stationary marginal stays Rayleigh regardless.
     */
    double correlation = 0.0;
    /** Per-reading probability of a multipath-style error jump. */
    double glitchProbability = 0.0;
    /** Error-scale multiplier during a glitch. */
    double glitchScale = 6.0;
};

/**
 * GPS receiver simulator. Stateful when correlation or glitches are
 * enabled (the error process persists across read() calls).
 */
class GpsSensor
{
  public:
    /** Memoryless receiver with the given accuracy radius. */
    explicit GpsSensor(double epsilon95);

    /** Fully configured receiver. */
    explicit GpsSensor(const GpsSensorConfig& config);

    /**
     * A realistic smartphone preset: strongly correlated errors with
     * occasional moderate glitches. Used by the Figure 3/13
     * reproductions.
     */
    static GpsSensor phone(double epsilon95 = 2.0);

    /** Take one reading of @p truth at time @p timeSeconds. */
    GpsFix read(const GeoCoordinate& truth, double timeSeconds,
                Rng& rng);

    double horizontalAccuracy() const { return config_.epsilon95; }
    const GpsSensorConfig& config() const { return config_; }

    /** The marginal radial error distribution implied by epsilon95. */
    const random::Rayleigh& errorModel() const { return radial_; }

  private:
    GpsSensorConfig config_;
    random::Rayleigh radial_;
    double errorEast_ = 0.0;  //!< persistent error state, meters
    double errorNorth_ = 0.0;
    bool initialized_ = false;
};

} // namespace gps
} // namespace uncertain

#endif // UNCERTAIN_GPS_SENSOR_HPP
