/**
 * @file
 * Synthetic pedestrian trajectories. Substitutes for the paper's
 * recorded 15-minute Windows Phone walk (section 5.1): a ground-truth
 * walk with realistic speed variation, sampled at 1 Hz through the
 * simulated GPS sensor. The paper's headline artifacts (59 mph
 * "walking", tens of seconds above running pace) are produced by the
 * Rayleigh fix error compounding through the speed computation, so
 * any plausible ground-truth walk reproduces them.
 */

#ifndef UNCERTAIN_GPS_TRAJECTORY_HPP
#define UNCERTAIN_GPS_TRAJECTORY_HPP

#include <cstdint>
#include <vector>

#include "gps/geo.hpp"
#include "gps/sensor.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace gps {

/** Ground truth at one instant. */
struct TruePosition
{
    double timeSeconds;
    GeoCoordinate coordinate;
    double speedMph; //!< true instantaneous speed
};

/** Configuration of a simulated walk. */
struct WalkConfig
{
    GeoCoordinate start{47.6420, -122.1370}; //!< anywhere works
    double durationSeconds = 900.0;          //!< the paper walked 15 min
    double sampleIntervalSeconds = 1.0;      //!< 1 Hz GPS
    double meanSpeedMph = 3.0;               //!< average human walk
    double speedJitterMph = 0.6;   //!< OU stationary deviation
    double speedReversion = 0.1;   //!< OU mean-reversion per second
    double pauseProbability = 0.01; //!< chance/second a pause starts
    double pauseMeanSeconds = 8.0;  //!< mean pause length
    double headingDriftRadians = 0.08; //!< heading random walk/second
};

/**
 * Generate a ground-truth walk: speed follows a clamped
 * Ornstein-Uhlenbeck process around the mean walking speed with
 * occasional pauses; heading performs a slow random walk.
 */
std::vector<TruePosition> simulateWalk(const WalkConfig& config,
                                       Rng& rng);

/**
 * Read every ground-truth position through @p sensor (mutable: the
 * sensor's error process persists across readings).
 */
std::vector<GpsFix> observeWalk(const std::vector<TruePosition>& walk,
                                GpsSensor& sensor, Rng& rng);

} // namespace gps
} // namespace uncertain

#endif // UNCERTAIN_GPS_TRAJECTORY_HPP
