#include "gps/walking.hpp"

#include "random/gaussian.hpp"
#include "random/truncated.hpp"

namespace uncertain {
namespace gps {

random::DistributionPtr
walkingSpeedPrior()
{
    // Typical walking speeds center near 3 mph; the truncation
    // encodes "nobody walks faster than 10 mph (or backwards)".
    auto base = std::make_shared<random::Gaussian>(3.0, 1.5);
    return std::make_shared<random::Truncated>(base, 0.0, 10.0);
}

Advice
advise(const Uncertain<double>& speedMph,
       const core::ConditionalOptions& options)
{
    Uncertain<bool> fast = speedMph > kBriskWalkMph;
    if (fast.pr(0.5, options))
        return Advice::GoodJob;
    Uncertain<bool> slow = speedMph < kBriskWalkMph;
    if (slow.pr(0.9, options))
        return Advice::SpeedUp;
    return Advice::None;
}

Advice
advise(const Uncertain<double>& speedMph,
       const core::ConditionalOptions& options, Rng& rng,
       core::BatchSampler& sampler)
{
    Uncertain<bool> fast = speedMph > kBriskWalkMph;
    if (fast.pr(0.5, options, rng, sampler))
        return Advice::GoodJob;
    Uncertain<bool> slow = speedMph < kBriskWalkMph;
    if (slow.pr(0.9, options, rng, sampler))
        return Advice::SpeedUp;
    return Advice::None;
}

Advice
naiveAdvise(double speedMph)
{
    if (speedMph > kBriskWalkMph)
        return Advice::GoodJob;
    // The naive program has no notion of inconclusive evidence:
    // anything not fast is admonished.
    return Advice::SpeedUp;
}

Uncertain<double>
speedFromFixes(const GpsFix& earlier, const GpsFix& later)
{
    Uncertain<GeoCoordinate> l1 = getLocation(earlier);
    Uncertain<GeoCoordinate> l2 = getLocation(later);
    return uncertainSpeedMph(l1, l2,
                             later.timeSeconds - earlier.timeSeconds);
}

Uncertain<double>
improveSpeed(const Uncertain<double>& speedMph,
             const inference::ReweightOptions& options)
{
    static const random::DistributionPtr prior = walkingSpeedPrior();
    return inference::applyPrior(speedMph, *prior, options);
}

Uncertain<double>
improveSpeed(const Uncertain<double>& speedMph,
             const inference::ReweightOptions& options, Rng& rng)
{
    static const random::DistributionPtr prior = walkingSpeedPrior();
    return inference::applyPrior(speedMph, *prior, options, rng);
}

} // namespace gps
} // namespace uncertain
