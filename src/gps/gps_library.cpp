#include "gps/gps_library.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include "random/rayleigh.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace gps {

Uncertain<GeoCoordinate>
getLocation(const GpsFix& fix)
{
    auto radial = std::make_shared<random::Rayleigh>(
        random::Rayleigh::fromHorizontalAccuracy(
            fix.horizontalAccuracy));
    GeoCoordinate center = fix.coordinate;

    std::ostringstream label;
    label << "GPS(eps=" << fix.horizontalAccuracy << "m)";
    return Uncertain<GeoCoordinate>::fromSampler(
        [center, radial](Rng& rng) {
            double bearing = rng.nextRange(0.0, 2.0 * M_PI);
            double radius = radial->sample(rng);
            return destination(center, bearing, radius);
        },
        label.str());
}

Uncertain<double>
uncertainDistance(const Uncertain<GeoCoordinate>& a,
                  const Uncertain<GeoCoordinate>& b)
{
    return core::liftBinary(
        [](const GeoCoordinate& x, const GeoCoordinate& y) {
            return distanceMeters(x, y);
        },
        a, b, "distance");
}

Uncertain<double>
uncertainSpeedMph(const Uncertain<GeoCoordinate>& a,
                  const Uncertain<GeoCoordinate>& b, double dtSeconds)
{
    UNCERTAIN_REQUIRE(dtSeconds > 0.0,
                      "uncertainSpeedMph requires dt > 0");
    // dt enters as a point mass, coerced exactly as the paper
    // describes for the denominator of Distance / dt.
    return uncertainDistance(a, b) * kMpsToMph / dtSeconds;
}

double
naiveSpeedMph(const GpsFix& earlier, const GpsFix& later)
{
    double dt = later.timeSeconds - earlier.timeSeconds;
    UNCERTAIN_REQUIRE(dt > 0.0, "naiveSpeedMph requires dt > 0");
    return distanceMeters(earlier.coordinate, later.coordinate)
           * kMpsToMph / dt;
}

} // namespace gps
} // namespace uncertain
