#include "gps/gps_library.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <sstream>
#include <vector>

#include "random/gaussian.hpp"
#include "random/rayleigh.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace gps {

Uncertain<GeoCoordinate>
getLocation(const GpsFix& fix)
{
    auto radial = std::make_shared<random::Rayleigh>(
        random::Rayleigh::fromHorizontalAccuracy(
            fix.horizontalAccuracy));
    GeoCoordinate center = fix.coordinate;

    std::ostringstream label;
    label << "GPS(eps=" << fix.horizontalAccuracy << "m)";
    // The bulk sampler fills whole columns without one std::function
    // call per draw, and replaces the per-sample spherical trig with
    // a trig-free equivalent: a Rayleigh(rho) radius with a uniform
    // bearing is exactly an isotropic pair of N(0, rho^2) north/east
    // displacements, so two ziggurat Gaussian columns produce the
    // same law with no trig, log, or rejection loop here; and at GPS
    // scales (central angle well under 1e-3 rad) the destination()
    // series truncations below are exact to double precision. Same
    // law as the scalar sampler; the stream differs, which is the
    // documented batch-engine contract.
    random::Gaussian displacement(0.0, radial->rho());
    return Uncertain<GeoCoordinate>::fromSampler(
        [center, radial](Rng& rng) {
            double bearing = rng.nextRange(0.0, 2.0 * M_PI);
            double radius = radial->sample(rng);
            return destination(center, bearing, radius);
        },
        [center, displacement](Rng& rng, GeoCoordinate* out,
                               std::size_t n) {
            const double phi1 = toRadians(center.latitude);
            const double lambda1 = toRadians(center.longitude);
            const double sinPhi1 = std::sin(phi1);
            const double cosPhi1 = std::cos(phi1);
            // The series fast path needs a small central angle and a
            // center away from the poles; otherwise fall back to the
            // exact per-element destination().
            const bool awayFromPoles = cosPhi1 > 1e-2;
            std::vector<double> north(n);
            std::vector<double> east(n);
            displacement.sampleMany(rng, north.data(), n);
            displacement.sampleMany(rng, east.data(), n);
            for (std::size_t i = 0; i < n; ++i) {
                // North / east components of the central angle:
                // a = delta * cos(bearing), b = delta * sin(bearing).
                const double a = north[i] / kEarthRadiusMeters;
                const double b = east[i] / kEarthRadiusMeters;
                const double d2 = a * a + b * b;
                if (d2 < 1e-6 && awayFromPoles) {
                    // sin(delta)/delta and cos(delta): truncation
                    // error below 1 ulp for delta < 1e-3 rad (6.4 km).
                    const double sinc =
                        1.0 - d2 * (1.0 / 6.0) * (1.0 - d2 / 20.0);
                    const double cosDelta =
                        1.0 - d2 * 0.5 * (1.0 - d2 / 12.0);
                    double sinPhi2 = sinPhi1 * cosDelta
                                     + cosPhi1 * (a * sinc);
                    sinPhi2 = std::clamp(sinPhi2, -1.0, 1.0);
                    const double cosPhi2 =
                        std::sqrt(1.0 - sinPhi2 * sinPhi2);
                    // phi2 = phi1 + asin(sin(phi2 - phi1)); the
                    // argument is O(delta), so the asin series is
                    // exact to double.
                    const double u =
                        sinPhi2 * cosPhi1 - cosPhi2 * sinPhi1;
                    const double u2 = u * u;
                    const double dPhi =
                        u * (1.0 + u2 * (1.0 / 6.0 + u2 * (3.0 / 40.0)));
                    const double y = b * sinc * cosPhi1;
                    const double x = cosDelta - sinPhi1 * sinPhi2;
                    // atan2(y, x) with x ~ cos^2(phi1) > 0 and tiny
                    // y/x: the atan series is exact to double.
                    const double t = y / x;
                    const double t2 = t * t;
                    const double dLambda =
                        t * (1.0 - t2 * (1.0 / 3.0 - t2 * 0.2));
                    out[i] = {toDegrees(phi1 + dPhi),
                              toDegrees(lambda1 + dLambda)};
                } else {
                    const double radius =
                        std::sqrt(d2) * kEarthRadiusMeters;
                    out[i] = destination(center, std::atan2(b, a),
                                         radius);
                }
            }
        },
        label.str());
}

Uncertain<double>
uncertainDistance(const Uncertain<GeoCoordinate>& a,
                  const Uncertain<GeoCoordinate>& b)
{
    return core::liftBinary(
        [](const GeoCoordinate& x, const GeoCoordinate& y) {
            return distanceMeters(x, y);
        },
        a, b, "distance");
}

Uncertain<double>
uncertainSpeedMph(const Uncertain<GeoCoordinate>& a,
                  const Uncertain<GeoCoordinate>& b, double dtSeconds)
{
    UNCERTAIN_REQUIRE(dtSeconds > 0.0,
                      "uncertainSpeedMph requires dt > 0");
    // dt enters as a point mass, coerced exactly as the paper
    // describes for the denominator of Distance / dt.
    return uncertainDistance(a, b) * kMpsToMph / dtSeconds;
}

double
naiveSpeedMph(const GpsFix& earlier, const GpsFix& later)
{
    double dt = later.timeSeconds - earlier.timeSeconds;
    UNCERTAIN_REQUIRE(dt > 0.0, "naiveSpeedMph requires dt > 0");
    return distanceMeters(earlier.coordinate, later.coordinate)
           * kMpsToMph / dt;
}

} // namespace gps
} // namespace uncertain
