#include "gps/geo.hpp"

#include <algorithm>
#include <cmath>

namespace uncertain {
namespace gps {

double
toRadians(double degrees)
{
    return degrees * M_PI / 180.0;
}

double
toDegrees(double radians)
{
    return radians * 180.0 / M_PI;
}

namespace {

/** sin(x) for |x| < 1e-3: truncation error under 1 ulp of double. */
inline double
sinSmall(double x)
{
    double x2 = x * x;
    return x * (1.0 - x2 * (1.0 / 6.0) * (1.0 - x2 / 20.0));
}

} // namespace

double
distanceMeters(const GeoCoordinate& a, const GeoCoordinate& b)
{
    double phi1 = toRadians(a.latitude);
    double phi2 = toRadians(b.latitude);
    double dPhi = phi2 - phi1;
    double dLambda = toRadians(b.longitude - a.longitude);

    // Fast path for small separations (under ~6 km, the sensor-error
    // regime every sampling loop lives in): the half-angle sines and
    // the final asin have tiny arguments, so their series truncations
    // are exact to double precision and skip three libm calls.
    if (std::abs(dPhi) < 1e-3 && std::abs(dLambda) < 1e-3) {
        double sinHalfPhi = sinSmall(0.5 * dPhi);
        double sinHalfLambda = sinSmall(0.5 * dLambda);
        double h = sinHalfPhi * sinHalfPhi
                   + std::cos(phi1) * std::cos(phi2) * sinHalfLambda
                         * sinHalfLambda;
        double z = std::sqrt(h); // z <= ~1e-3: asin series is exact
        double z2 = z * z;
        double asinZ =
            z * (1.0 + z2 * (1.0 / 6.0 + z2 * (3.0 / 40.0)));
        return 2.0 * kEarthRadiusMeters * asinZ;
    }

    double sinHalfPhi = std::sin(0.5 * dPhi);
    double sinHalfLambda = std::sin(0.5 * dLambda);
    double h = sinHalfPhi * sinHalfPhi
               + std::cos(phi1) * std::cos(phi2) * sinHalfLambda
                     * sinHalfLambda;
    return 2.0 * kEarthRadiusMeters
           * std::asin(std::min(1.0, std::sqrt(h)));
}

EnuOffset
localOffsetMeters(const GeoCoordinate& origin,
                  const GeoCoordinate& point)
{
    double north = toRadians(point.latitude - origin.latitude)
                   * kEarthRadiusMeters;
    double east = toRadians(point.longitude - origin.longitude)
                  * kEarthRadiusMeters
                  * std::cos(toRadians(origin.latitude));
    return {east, north};
}

GeoCoordinate
destination(const GeoCoordinate& start, double bearingRadians,
            double distance)
{
    double delta = distance / kEarthRadiusMeters;
    double phi1 = toRadians(start.latitude);
    double lambda1 = toRadians(start.longitude);

    double sinPhi2 = std::sin(phi1) * std::cos(delta)
                     + std::cos(phi1) * std::sin(delta)
                           * std::cos(bearingRadians);
    double phi2 = std::asin(std::clamp(sinPhi2, -1.0, 1.0));
    double y = std::sin(bearingRadians) * std::sin(delta)
               * std::cos(phi1);
    double x = std::cos(delta) - std::sin(phi1) * sinPhi2;
    double lambda2 = lambda1 + std::atan2(y, x);

    return {toDegrees(phi2), toDegrees(lambda2)};
}

} // namespace gps
} // namespace uncertain
