#include "gps/sensor.hpp"

#include <cmath>

#include "random/gaussian.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace gps {

GpsSensor::GpsSensor(double epsilon95)
    : GpsSensor(GpsSensorConfig{epsilon95, 0.0, 0.0, 6.0})
{}

GpsSensor::GpsSensor(const GpsSensorConfig& config)
    : config_(config),
      radial_(random::Rayleigh::fromHorizontalAccuracy(
          config.epsilon95))
{
    UNCERTAIN_REQUIRE(config.epsilon95 > 0.0,
                      "GpsSensor requires a positive accuracy radius");
    UNCERTAIN_REQUIRE(config.correlation >= 0.0
                          && config.correlation < 1.0,
                      "GpsSensor correlation must be in [0, 1)");
    UNCERTAIN_REQUIRE(config.glitchProbability >= 0.0
                          && config.glitchProbability <= 1.0,
                      "GpsSensor glitch probability must be in [0, 1]");
    UNCERTAIN_REQUIRE(config.glitchScale >= 1.0,
                      "GpsSensor glitch scale must be >= 1");
}

GpsSensor
GpsSensor::phone(double epsilon95)
{
    GpsSensorConfig config;
    config.epsilon95 = epsilon95;
    config.correlation = 0.95;
    config.glitchProbability = 0.02;
    config.glitchScale = 3.0;
    return GpsSensor(config);
}

GpsFix
GpsSensor::read(const GeoCoordinate& truth, double timeSeconds,
                Rng& rng)
{
    // A 2D isotropic Gaussian with per-axis sigma = rho has radial
    // magnitude Rayleigh(rho); the AR(1) update preserves that
    // stationary marginal.
    const double sigma = radial_.rho();
    const double phi = config_.correlation;

    if (!initialized_) {
        errorEast_ = sigma * random::Gaussian::standardSample(rng);
        errorNorth_ = sigma * random::Gaussian::standardSample(rng);
        initialized_ = true;
    } else if (config_.glitchProbability > 0.0
               && rng.nextBool(config_.glitchProbability)) {
        double glitchSigma = sigma * config_.glitchScale;
        errorEast_ =
            glitchSigma * random::Gaussian::standardSample(rng);
        errorNorth_ =
            glitchSigma * random::Gaussian::standardSample(rng);
    } else {
        double innovation = sigma * std::sqrt(1.0 - phi * phi);
        errorEast_ = phi * errorEast_
                     + innovation
                           * random::Gaussian::standardSample(rng);
        errorNorth_ = phi * errorNorth_
                      + innovation
                            * random::Gaussian::standardSample(rng);
    }

    double radius = std::hypot(errorEast_, errorNorth_);
    double bearing = std::atan2(errorEast_, errorNorth_);
    return {destination(truth, bearing, radius), config_.epsilon95,
            timeSeconds};
}

} // namespace gps
} // namespace uncertain
