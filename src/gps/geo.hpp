/**
 * @file
 * Geodesy primitives: GeoCoordinate ("a pair of doubles (latitude and
 * longitude) and so is numeric", paper Figure 5), great-circle
 * distance, and destination points.
 */

#ifndef UNCERTAIN_GPS_GEO_HPP
#define UNCERTAIN_GPS_GEO_HPP

namespace uncertain {
namespace gps {

/** Mean Earth radius in meters (IUGG). */
inline constexpr double kEarthRadiusMeters = 6371008.8;

/** Meters-per-second to miles-per-hour. */
inline constexpr double kMpsToMph = 2.2369362920544;

/**
 * A latitude/longitude pair in degrees. Supports the numeric
 * operators Uncertain<GeoCoordinate> needs (component-wise affine
 * arithmetic, meaningful over the small displacements GPS deals in).
 */
struct GeoCoordinate
{
    double latitude = 0.0;  //!< degrees, positive north
    double longitude = 0.0; //!< degrees, positive east

    GeoCoordinate() = default;
    GeoCoordinate(double lat, double lon) : latitude(lat), longitude(lon)
    {}

    GeoCoordinate
    operator+(const GeoCoordinate& other) const
    {
        return {latitude + other.latitude, longitude + other.longitude};
    }

    GeoCoordinate
    operator-(const GeoCoordinate& other) const
    {
        return {latitude - other.latitude, longitude - other.longitude};
    }

    GeoCoordinate
    operator*(double k) const
    {
        return {latitude * k, longitude * k};
    }

    GeoCoordinate
    operator/(double k) const
    {
        return {latitude / k, longitude / k};
    }

    bool
    operator==(const GeoCoordinate& other) const
    {
        return latitude == other.latitude
               && longitude == other.longitude;
    }
};

/** Great-circle (haversine) distance between two coordinates, meters. */
double distanceMeters(const GeoCoordinate& a, const GeoCoordinate& b);

/**
 * Coordinate reached from @p start travelling @p distance meters on
 * initial bearing @p bearingRadians (clockwise from north).
 */
GeoCoordinate destination(const GeoCoordinate& start,
                          double bearingRadians, double distanceMeters);

/**
 * Local east/north offset of @p point relative to @p origin, in
 * meters (equirectangular approximation; accurate at city scales).
 */
struct EnuOffset
{
    double east;
    double north;
};

EnuOffset localOffsetMeters(const GeoCoordinate& origin,
                            const GeoCoordinate& point);

/** Degrees to radians. */
double toRadians(double degrees);

/** Radians to degrees. */
double toDegrees(double radians);

} // namespace gps
} // namespace uncertain

#endif // UNCERTAIN_GPS_GEO_HPP
