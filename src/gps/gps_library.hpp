/**
 * @file
 * The Uncertain<T>-aware GPS library of paper section 4.1/5.1: the
 * expert-developer wrapper that exposes a GPS fix as a *distribution*
 * over locations, Uncertain<GeoCoordinate>, instead of a point plus
 * an accuracy number most callers ignore.
 */

#ifndef UNCERTAIN_GPS_GPS_LIBRARY_HPP
#define UNCERTAIN_GPS_GPS_LIBRARY_HPP

#include "core/core.hpp"
#include "gps/geo.hpp"
#include "gps/sensor.hpp"

namespace uncertain {
namespace gps {

/**
 * GPS.GetLocation (Figure 12): lift a raw fix into the uncertain
 * type. The posterior over the true location given the fix is
 * Rayleigh(epsilon / sqrt(ln 400)) radially around the reported
 * coordinate, at a uniform bearing.
 */
Uncertain<GeoCoordinate> getLocation(const GpsFix& fix);

/**
 * Lifted great-circle distance in meters between two uncertain
 * locations (an inner node applying distanceMeters()).
 */
Uncertain<double> uncertainDistance(const Uncertain<GeoCoordinate>& a,
                                    const Uncertain<GeoCoordinate>& b);

/**
 * Lifted speed in mph between two uncertain locations separated by
 * @p dtSeconds (the Speed = Distance / dt network of Figure 5(b)).
 * Requires dtSeconds > 0.
 */
Uncertain<double> uncertainSpeedMph(const Uncertain<GeoCoordinate>& a,
                                    const Uncertain<GeoCoordinate>& b,
                                    double dtSeconds);

/**
 * The legacy computation (Figure 5(a)): speed in mph from the point
 * estimates alone, ignoring the error radius. Requires dt > 0.
 */
double naiveSpeedMph(const GpsFix& earlier, const GpsFix& later);

} // namespace gps
} // namespace uncertain

#endif // UNCERTAIN_GPS_GPS_LIBRARY_HPP
